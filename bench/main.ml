(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (Section 5) through Wpinq_experiments, with per-experiment step budgets
   sized so the whole run finishes in minutes.  `bin/experiments.exe`
   exposes the same code with free knobs for longer, closer-to-paper runs.

   Part 2 runs Bechamel micro-benchmarks of the kernels those experiments
   stress: one per table/figure kernel plus the core engine primitives.

   Part 3 is the machine-readable walk benchmark: a Metropolis–Hastings
   walk on scaled-down ca-GrQc with per-step wall time bucketed by
   accept/reject, written to BENCH_wpinq.json next to the recorded
   pre-speculation baseline.  `--smoke` runs only this part, reduced, for
   CI; `--json PATH` overrides the output path. *)

module E = Wpinq_experiments.Experiments
module Prng = Wpinq_prng.Prng
module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Fit = Wpinq_infer.Fit
module Plan = Wpinq_core.Plan
module Datasets = Wpinq_data.Datasets
module Gridpath = Wpinq_postprocess.Gridpath
module Qb = Wpinq_queries.Queries.Make (Batch)
module Qf = Wpinq_queries.Queries.Make (Flow)
module Qp = Wpinq_queries.Queries.Make (Plan)

let banner title =
  Printf.printf "\n############################################################\n";
  Printf.printf "## %s\n" title;
  Printf.printf "############################################################\n%!"

let timed name f =
  let t0 = Unix.gettimeofday () in
  f ();
  Printf.printf "\n[%s finished in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)

let experiments () =
  banner "Part 1: regenerating every table and figure (scaled-down defaults)";
  let base = E.default in
  timed "table1" (fun () -> E.table1 { base with E.steps = 0 });
  timed "figure3" (fun () -> E.figure3 { base with E.steps = 3_000 });
  timed "table2" (fun () -> E.table2 { base with E.steps = 25_000 });
  timed "figure4" (fun () -> E.figure4 { base with E.steps = 12_000 });
  timed "figure5" (fun () -> E.figure5 { base with E.steps = 8_000; E.repeats = 2 });
  timed "table3" (fun () -> E.table3 base);
  timed "figure6" (fun () -> E.figure6 { base with E.steps = 6_000 });
  timed "ablations" (fun () -> E.ablations { base with E.steps = 8_000 })

(* ---------------- Bechamel micro-benchmarks ---------------- *)

open Bechamel
open Toolkit

let grqc_small = lazy (Datasets.load ~scale:0.4 Datasets.grqc)

let make_fit ~tbd scale =
  let secret = Datasets.load ~scale Datasets.grqc in
  let rng = Prng.create 7 in
  let budget = Budget.create ~name:"bench" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let target =
    if tbd then begin
      let m = Batch.noisy_count ~rng ~epsilon:0.1 (Qb.tbd ~bucket:4 sym) in
      fun flow -> Flow.Target.create (Qf.tbd ~bucket:4 flow) m
    end
    else begin
      let m = Batch.noisy_count ~rng ~epsilon:0.1 (Qb.tbi sym) in
      fun flow -> Flow.Target.create (Qf.tbi flow) m
    end
  in
  Fit.create ~rng ~seed_graph:secret ~targets:[ target ] ()

let bench_tests () =
  let rng = Prng.create 13 in
  let big_data =
    lazy (Wdata.of_list (List.init 20_000 (fun i -> (i mod 4_096, Prng.float rng 2.0))))
  in
  (* Fixtures are forced ahead of measurement so setup cost (engine build +
     initial load) never lands inside a measured run. *)
  let tbi_fit = lazy (make_fit ~tbd:false 0.4) in
  let tbd_fit = lazy (make_fit ~tbd:true 0.25) in
  ignore (Lazy.force tbi_fit);
  ignore (Lazy.force tbd_fit);
  ignore (Lazy.force grqc_small);
  let noisy_arrays =
    lazy
      (let r = Prng.create 5 in
       let v =
         Array.init 120 (fun i ->
             Float.max 0.0 (float_of_int (30 - (i / 4)) +. Prng.laplace r ~scale:3.0))
       in
       let h =
         Array.init 40 (fun i ->
             Float.max 0.0 (float_of_int (120 - (4 * i)) +. Prng.laplace r ~scale:3.0))
       in
       (v, h))
  in
  ignore (Lazy.force big_data);
  ignore (Lazy.force noisy_arrays);
  [
    (* Table 1 kernel: exact statistics of a stand-in graph. *)
    Test.make ~name:"table1/triangle_count+assortativity"
      (Staged.stage (fun () ->
           let g = Lazy.force grqc_small in
           ignore (Graph.triangle_count g + int_of_float (Graph.assortativity g))));
    (* Figure 3 kernel: one TbD-driven MCMC step. *)
    Test.make ~name:"figure3/tbd_mcmc_step"
      (Staged.stage (fun () -> ignore (Fit.step ~pow:10_000.0 (Lazy.force tbd_fit))));
    (* Table 2 / Figures 4-6 kernel: one TbI-driven MCMC step. *)
    Test.make ~name:"table2+fig4-6/tbi_mcmc_step"
      (Staged.stage (fun () -> ignore (Fit.step ~pow:10_000.0 (Lazy.force tbi_fit))));
    (* Figure 5 kernel: the Laplace mechanism itself. *)
    Test.make ~name:"figure5/laplace_sample"
      (Staged.stage (fun () -> ignore (Prng.laplace rng ~scale:10.0)));
    (* Table 3 kernel: skewed preferential-attachment generation. *)
    Test.make ~name:"table3/barabasi_albert_n2000"
      (Staged.stage (fun () ->
           ignore (Gen.barabasi_albert ~n:2_000 ~m:5 ~alpha:1.2 (Prng.create 3))));
    (* Phase-1 kernel: grid-path degree-sequence fit. *)
    Test.make ~name:"phase1/gridpath_fit"
      (Staged.stage (fun () ->
           let v, h = Lazy.force noisy_arrays in
           ignore (Gridpath.fit ~v ~h)));
    (* Engine primitives. *)
    Test.make ~name:"engine/batch_join_20k_records"
      (Staged.stage (fun () ->
           let d = Lazy.force big_data in
           ignore
             (Ops.join ~kl:(fun x -> x mod 64) ~kr:(fun x -> x mod 64)
                ~reduce:(fun a b -> (a, b))
                d d)));
    Test.make ~name:"engine/batch_group_by_20k_records"
      (Staged.stage (fun () ->
           ignore
             (Ops.group_by ~key:(fun x -> x mod 512) ~reduce:List.length (Lazy.force big_data))));
  ]

let run_benchmarks () =
  banner "Part 2: Bechamel micro-benchmarks";
  Printf.printf "(setting up fixtures...)\n%!";
  let cfg = Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.5) ~kde:(Some 1_000) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  Printf.printf "%-42s %15s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ t ] ->
              let pretty =
                if t > 1e9 then Printf.sprintf "%8.2f  s" (t /. 1e9)
                else if t > 1e6 then Printf.sprintf "%8.2f ms" (t /. 1e6)
                else if t > 1e3 then Printf.sprintf "%8.2f us" (t /. 1e3)
                else Printf.sprintf "%8.0f ns" t
              in
              Printf.printf "%-42s %15s\n%!" name pretty
          | _ -> Printf.printf "%-42s %15s\n%!" name "n/a")
        results)
    (bench_tests ())

(* ---------------- Part 3: the machine-readable walk benchmark ------------

   One TbI-driven walk on scaled-down ca-GrQc, per-step wall time bucketed
   by accept/reject.  The [baseline] block records the same run measured on
   the pre-speculation engine (rejection = full inverse re-propagation,
   per-batch list/hashtable churn); [current] is measured live.  The
   headline number is rejected_over_accepted: a rejected move used to cost
   ~2x an accepted one, the undo log brings it within 1.25x. *)

module Dataflow = Wpinq_dataflow.Dataflow

(* ---------------- Memory reporting (every machine-readable part) --------

   Each recorded part carries a [memory] block: precise heap words from
   [Gc.stat] (a full-heap walk — called once per part, after measurement)
   and the kernel's view of the process via /proc/self/status.  RSS is
   what a paper-scale budget is stated against; live words say how much
   of it is reachable state rather than GC slack. *)

let proc_status_kb () =
  let rss = ref 0 and hwm = ref 0 in
  (try
     let ic = open_in "/proc/self/status" in
     Fun.protect
       ~finally:(fun () -> close_in ic)
       (fun () ->
         try
           while true do
             let line = input_line ic in
             let grab prefix cell =
               let pl = String.length prefix in
               if String.length line > pl && String.sub line 0 pl = prefix then
                 try Scanf.sscanf (String.sub line pl (String.length line - pl)) " %d kB"
                       (fun v -> cell := v)
                 with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
             in
             grab "VmRSS:" rss;
             grab "VmHWM:" hwm
           done
         with End_of_file -> ())
   with Sys_error _ -> ());
  (!rss, !hwm)

let memory_json indent =
  let st = Gc.stat () in
  let rss_kb, peak_rss_kb = proc_status_kb () in
  let pad = String.make indent ' ' in
  String.concat "\n"
    [
      Printf.sprintf "%s\"memory\": {" pad;
      Printf.sprintf "%s  \"live_words\": %d," pad st.Gc.live_words;
      Printf.sprintf "%s  \"heap_words\": %d," pad st.Gc.heap_words;
      Printf.sprintf "%s  \"top_heap_words\": %d," pad st.Gc.top_heap_words;
      Printf.sprintf "%s  \"rss_kb\": %d," pad rss_kb;
      Printf.sprintf "%s  \"peak_rss_kb\": %d" pad peak_rss_kb;
      Printf.sprintf "%s}" pad;
    ]

(* Recorded on this repository's engine before the speculative
   propose/commit/abort rewrite (same config as the full run below:
   ca-GrQc at scale 0.4, seed 7, epsilon 0.1, pow 10^4, 2k warmup steps,
   20k measured). *)
let baseline_json =
  {|  "baseline": {
    "engine": "pre-speculation (inverse re-propagation on reject)",
    "accepted_us_per_step": 232.249,
    "rejected_us_per_step": 445.853,
    "rejected_over_accepted": 1.920,
    "minor_words_per_step": 25274.2,
    "join_fast_updates": 340936,
    "join_full_rescales": 1040
  }|}

(* ---------------- Part 4: shared-plan multi-query benchmark -------------

   All five Section-3 analyses — degree CCDF + JDD + TbD + TbI + SbI —
   through two phases, three arms each.

   Phase A is admission: three tenants each submit the five analyses
   against the protected graph.  The unshared arm lowers every submission
   through its own fresh source and context (15 full batch evaluations);
   the shared arm gives each tenant one context (intra-tenant prefixes —
   the 2-path join under TbD/TbI/SbI — evaluate once per tenant); the
   optimized arm canonicalizes every submission onto one module-wide
   source through {!Plan.optimize}, whose plan cache plus the lowering
   memo turn every repeat submission into a noise redraw over an
   already-forced dataset.  The gated wall-clock ratio is this phase's:
   it is where canonical identity does its work, and the ~3x margin is
   far outside scheduler noise.  Released values must agree bit for bit
   between the unoptimized and optimized lowerings (also gated; canonical
   accumulation + exact rules).

   Phase B is synthesis: the tenant-1 measurements fitted three ways —
   per-target pipelines, one shared context, and the optimized plans.
   Shared vs unshared walks take bit-identical steps (property-tested),
   so records-propagated-per-step is a deterministic like-for-like cost
   comparison and the optimized arm must strictly beat unshared on it
   (gated).  The optimized walk may differ from the plain one in ulps
   (rewiring a join changes incremental accumulation order); per-step
   wall times are reported but not gated — per-step cost is dominated by
   per-analysis propagation that no privacy-sound rewrite removes, so
   the honest walk-side signal is the records counter, not the clock. *)

let multi_bench ~smoke () =
  let module M = Wpinq_core.Measurement in
  banner "Part 4: shared-plan multi-query benchmark (five analyses + optimizer)";
  let scale, warmup, steps = if smoke then (0.1, 100, 1_000) else (0.12, 200, 1_500) in
  let tenants = 3 in
  Printf.printf
    "(ca-GrQc at scale %.2f: ccdf + jdd + tbd + tbi + sbi; %d tenants; %d warmup + %d \
     measured steps)\n%!"
    scale tenants warmup steps;
  let secret = Datasets.load ~scale Datasets.grqc in
  let records = Graph.directed_edges secret in
  (* One module-wide source for the shared and optimized arms; the corpus
     plans and their exact-rules canonical forms. *)
  let corpus src =
    (Qp.degree_ccdf src, Qp.jdd src, Qp.tbd src, Qp.tbi src, Qp.sbi src)
  in
  let source = Plan.source ~name:"sym" () in
  let plain = corpus source in
  let pc, pj, pt, pi, ps = plain in
  let opt =
    (Plan.optimize pc, Plan.optimize pj, Plan.optimize pt, Plan.optimize pi,
     Plan.optimize ps)
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Phase A: three tenants submit the five analyses.  Same PRNG seed and
     submission order per arm, so released values are comparable bit for
     bit across arms. *)
  let eval_unshared_tenant () =
    let rng = Prng.create 7 in
    let budget = Budget.create ~name:"bench" 1e9 in
    let count q =
      let s = Plan.source ~name:"sym" () in
      let ctx = Batch.Plans.create () in
      Batch.Plans.bind ctx s (Batch.source_records ~budget records);
      Batch.noisy_count ~rng ~epsilon:0.1 (Batch.Plans.lower ctx (q s))
    in
    ( count Qp.degree_ccdf,
      count Qp.jdd,
      count (fun s -> Qp.tbd s),
      count Qp.tbi,
      count Qp.sbi )
  in
  let eval_shared ~src (qc, qj, qt, qi, qs) =
    let rng = Prng.create 7 in
    let budget = Budget.create ~name:"bench" 1e9 in
    let ctx = Batch.Plans.create () in
    Batch.Plans.bind ctx src (Batch.source_records ~budget records);
    let count p = Batch.noisy_count ~rng ~epsilon:0.1 (Batch.Plans.lower ctx p) in
    (count qc, count qj, count qt, count qi, count qs)
  in
  (* The optimized arm's one canonical context: bound once, shared by every
     tenant, exactly as Workflow holds one module-wide source. *)
  let opt_ctx = Batch.Plans.create () in
  let opt_budget = Budget.create ~name:"bench" 1e9 in
  Batch.Plans.bind opt_ctx source (Batch.source_records ~budget:opt_budget records);
  let eval_optimized_tenant () =
    let rng = Prng.create 7 in
    let qc, qj, qt, qi, qs =
      ( Plan.optimize pc,
        Plan.optimize pj,
        Plan.optimize pt,
        Plan.optimize pi,
        Plan.optimize ps )
    in
    let count p = Batch.noisy_count ~rng ~epsilon:0.1 (Batch.Plans.lower opt_ctx p) in
    (count qc, count qj, count qt, count qi, count qs)
  in
  let _, lower_u =
    timed (fun () ->
        for _ = 1 to tenants do
          ignore (eval_unshared_tenant ())
        done)
  in
  let (mc, mj, mt, mi, ms), lower_s =
    timed (fun () ->
        let tenant1 = eval_shared ~src:source plain in
        for _ = 2 to tenants do
          let s = Plan.source ~name:"sym" () in
          ignore (eval_shared ~src:s (corpus s))
        done;
        tenant1)
  in
  let (mc', mj', mt', mi', ms'), lower_o =
    timed (fun () ->
        let tenant1 = eval_optimized_tenant () in
        for _ = 2 to tenants do
          ignore (eval_optimized_tenant ())
        done;
        tenant1)
  in
  let same m m' =
    let obs m =
      List.sort compare
        (List.map (fun (x, v) -> (x, Int64.bits_of_float v)) (M.observed m))
    in
    obs m = obs m'
  in
  let identical_measurements =
    same mc mc' && same mj mj' && same mt mt' && same mi mi' && same ms ms'
  in
  (* Each arm fits against pristine copies of the *same* measurement set,
     so lazy walk-time noise draws start from the same cursor in all
     three. *)
  let shared_fit (qc, qj, qt, qi, qs) =
    let measured =
      [
        Fit.Measured (qc, M.copy mc);
        Fit.Measured (qj, M.copy mj);
        Fit.Measured (qt, M.copy mt);
        Fit.Measured (qi, M.copy mi);
        Fit.Measured (qs, M.copy ms);
      ]
    in
    Fit.create_shared ~rng:(Prng.create 11) ~seed_graph:secret ~source ~measured ()
  in
  let unshared_fit () =
    (* A fresh plan source and lowering context per target: nothing crosses
       target boundaries. *)
    let target src p m flow =
      let ctx = Flow.Plans.create (Dataflow.engine_of (Flow.node flow)) in
      Flow.Plans.bind ctx src flow;
      Flow.Target.of_plan ctx p m
    in
    let s1 = Plan.source ~name:"sym" () in
    let s2 = Plan.source ~name:"sym" () in
    let s3 = Plan.source ~name:"sym" () in
    let s4 = Plan.source ~name:"sym" () in
    let s5 = Plan.source ~name:"sym" () in
    Fit.create ~rng:(Prng.create 11) ~seed_graph:secret
      ~targets:
        [
          target s1 (Qp.degree_ccdf s1) (M.copy mc);
          target s2 (Qp.jdd s2) (M.copy mj);
          target s3 (Qp.tbd s3) (M.copy mt);
          target s4 (Qp.tbi s4) (M.copy mi);
          target s5 (Qp.sbi s5) (M.copy ms);
        ]
      ()
  in
  let run fit =
    for _ = 1 to warmup do
      ignore (Fit.step ~pow:10_000.0 fit)
    done;
    let engine = Fit.engine fit in
    let prop0 = Dataflow.Engine.records_propagated engine in
    let work0 = Dataflow.Engine.work engine in
    let accepted = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to steps do
      if Fit.step ~pow:10_000.0 fit then incr accepted
    done;
    let wall = Unix.gettimeofday () -. t0 in
    ( !accepted,
      1e6 *. wall /. float steps,
      float steps /. wall,
      float (Dataflow.Engine.records_propagated engine - prop0) /. float steps,
      float (Dataflow.Engine.work engine - work0) /. float steps,
      Dataflow.Engine.nodes_built engine,
      Dataflow.Engine.nodes_shared engine )
  in
  let u_acc, u_us, u_sps, u_prop, u_work, u_built, u_shared = run (unshared_fit ()) in
  let s_acc, s_us, s_sps, s_prop, s_work, s_built, s_shared = run (shared_fit plain) in
  let o_acc, o_us, o_sps, o_prop, o_work, o_built, o_shared = run (shared_fit opt) in
  if s_acc <> u_acc then
    Printf.printf "WARNING: walks diverged (%d vs %d accepted) — counters not comparable\n"
      s_acc u_acc;
  if not identical_measurements then
    Printf.printf "WARNING: optimized plans released different measurement bits\n";
  let cache_hits, cache_misses = Plan.plan_cache_stats () in
  let fires = Plan.optimizer_fires () in
  Printf.printf
    "admission (%d tenants x 5 analyses): unshared %.0f ms, shared %.0f ms, optimized \
     %.0f ms (%.3fx)\n"
    tenants (1e3 *. lower_u) (1e3 *. lower_s) (1e3 *. lower_o) (lower_o /. lower_u);
  Printf.printf "unshared:  %d nodes (%d shared), %.1f records/step, %.3f us/step\n"
    u_built u_shared u_prop u_us;
  Printf.printf "shared:    %d nodes (%d shared), %.1f records/step, %.3f us/step\n"
    s_built s_shared s_prop s_us;
  Printf.printf "optimized: %d nodes (%d shared), %.1f records/step, %.3f us/step\n"
    o_built o_shared o_prop o_us;
  Printf.printf "shared vs unshared:    records %.3fx, walk wall %.3fx\n"
    (s_prop /. u_prop) (s_us /. u_us);
  Printf.printf "optimized vs unshared: records %.3fx, walk wall %.3fx\n"
    (o_prop /. u_prop) (o_us /. u_us);
  Printf.printf "optimizer: %s; plan cache %d hit(s) %d miss(es)\n%!"
    (if fires = [] then "no rewrites"
     else
       String.concat ", " (List.map (fun (r, n) -> Printf.sprintf "%s x%d" r n) fires))
    cache_hits cache_misses;
  String.concat "\n"
    [
      "  \"multi\": {";
      Printf.sprintf "    \"dataset\": \"ca-GrQc\",";
      Printf.sprintf "    \"scale\": %.2f," scale;
      "    \"queries\": [\"degree_ccdf\", \"jdd\", \"tbd\", \"tbi\", \"sbi\"],";
      Printf.sprintf "    \"tenants\": %d," tenants;
      Printf.sprintf "    \"warmup_steps\": %d," warmup;
      Printf.sprintf "    \"measured_steps\": %d," steps;
      Printf.sprintf "    \"identical_walks\": %b," (s_acc = u_acc);
      Printf.sprintf "    \"identical_measurements\": %b," identical_measurements;
      "    \"unshared\": {";
      Printf.sprintf "      \"lower_ms\": %.1f," (1e3 *. lower_u);
      Printf.sprintf "      \"nodes_built\": %d," u_built;
      Printf.sprintf "      \"nodes_shared\": %d," u_shared;
      Printf.sprintf "      \"accepted_steps\": %d," u_acc;
      Printf.sprintf "      \"rejected_steps\": %d," (steps - u_acc);
      Printf.sprintf "      \"records_propagated_per_step\": %.1f," u_prop;
      Printf.sprintf "      \"work_per_step\": %.1f," u_work;
      Printf.sprintf "      \"us_per_step\": %.3f," u_us;
      Printf.sprintf "      \"steps_per_sec\": %.1f" u_sps;
      "    },";
      "    \"shared\": {";
      Printf.sprintf "      \"lower_ms\": %.1f," (1e3 *. lower_s);
      Printf.sprintf "      \"nodes_built\": %d," s_built;
      Printf.sprintf "      \"nodes_shared\": %d," s_shared;
      Printf.sprintf "      \"accepted_steps\": %d," s_acc;
      Printf.sprintf "      \"rejected_steps\": %d," (steps - s_acc);
      Printf.sprintf "      \"records_propagated_per_step\": %.1f," s_prop;
      Printf.sprintf "      \"work_per_step\": %.1f," s_work;
      Printf.sprintf "      \"us_per_step\": %.3f," s_us;
      Printf.sprintf "      \"steps_per_sec\": %.1f" s_sps;
      "    },";
      "    \"optimized\": {";
      Printf.sprintf "      \"lower_ms\": %.1f," (1e3 *. lower_o);
      Printf.sprintf "      \"nodes_built\": %d," o_built;
      Printf.sprintf "      \"nodes_shared\": %d," o_shared;
      Printf.sprintf "      \"accepted_steps\": %d," o_acc;
      Printf.sprintf "      \"rejected_steps\": %d," (steps - o_acc);
      Printf.sprintf "      \"records_propagated_per_step\": %.1f," o_prop;
      Printf.sprintf "      \"work_per_step\": %.1f," o_work;
      Printf.sprintf "      \"us_per_step\": %.3f," o_us;
      Printf.sprintf "      \"steps_per_sec\": %.1f" o_sps;
      "    },";
      "    \"optimizer\": {";
      Printf.sprintf "      \"fires\": {%s},"
        (String.concat ", "
           (List.map (fun (r, n) -> Printf.sprintf "\"%s\": %d" r n) fires));
      Printf.sprintf "      \"plan_cache_hits\": %d," cache_hits;
      Printf.sprintf "      \"plan_cache_misses\": %d" cache_misses;
      "    },";
      Printf.sprintf "    \"records_propagated_ratio\": %.3f," (s_prop /. u_prop);
      Printf.sprintf "    \"wall_ratio\": %.3f," (lower_s /. lower_u);
      Printf.sprintf "    \"walk_wall_ratio\": %.3f," (s_us /. u_us);
      Printf.sprintf "    \"optimized_records_ratio\": %.3f," (o_prop /. u_prop);
      Printf.sprintf "    \"optimized_wall_ratio\": %.3f," (lower_o /. lower_u);
      Printf.sprintf "    \"optimized_walk_wall_ratio\": %.3f," (o_us /. u_us);
      memory_json 4;
      "  }";
    ]

(* ---------------- Part 5: parallel speculative lookahead -----------------

   The same shared-plan multi-query fit driven through [Fit.run ~jobs]: one
   arm per (jobs, width-policy) point, every arm reconstructing an
   identical fit (same secret, same measurement seed, same walk seed).
   The realized chain is bit-identical across every arm by construction —
   the arms cross-check accepted/invalid counts, final energies (bit
   patterns) and final edge arrays, and [identical_walks] records the
   verdict (the process exits nonzero if it ever goes false, which is what
   the CI multicore job asserts).  Speedups are honest wall-clock ratios
   on this host.

   On a single-core host (recommended_domain_count = 1) a jobs sweep only
   measures domain time-slicing overhead — every "speedup" is a slowdown
   by construction and says nothing about the scheduler.  The sweep is
   therefore skipped there ([sweep_status = "skipped_single_core"]) and
   only the jobs = 1 arms run: the serial reference and the adaptive-width
   policy driven inline, which still cross-checks width-invariance and
   records the per-phase counters. *)

type parallel_arm = { arm_label : string; arm_jobs : int; arm_width : Wpinq_infer.Mcmc.width }

let parallel_bench ~smoke ~max_jobs () =
  banner "Part 5: parallel speculative lookahead benchmark";
  let module Mcmc = Wpinq_infer.Mcmc in
  let scale, steps = if smoke then (0.12, 2_000) else (0.25, 8_000) in
  let host_parallelism = Domain.recommended_domain_count () in
  let single_core = host_parallelism < 2 in
  let sweep_status = if single_core then "skipped_single_core" else "run" in
  let arms =
    if single_core then
      [
        { arm_label = "fixed1"; arm_jobs = 1; arm_width = Mcmc.Fixed 1 };
        { arm_label = "adaptive1"; arm_jobs = 1; arm_width = Mcmc.Adaptive { max_width = 4 } };
      ]
    else
      let fixed =
        List.filter (fun k -> k <= max_jobs) [ 1; 2; 4 ]
        |> fun ks ->
        (if List.mem max_jobs ks then ks else ks @ [ max_jobs ])
        |> List.map (fun k ->
               { arm_label = Printf.sprintf "fixed%d" k; arm_jobs = k; arm_width = Mcmc.Fixed k })
      in
      fixed
      @ [
          {
            arm_label = Printf.sprintf "adaptive%d" max_jobs;
            arm_jobs = max_jobs;
            arm_width = Mcmc.Adaptive { max_width = 4 * max_jobs };
          };
        ]
  in
  Printf.printf
    "(ca-GrQc at scale %.2f: degree CCDF + JDD + TbD shared fit, %d steps, host \
     parallelism %d, sweep %s, arms {%s})\n%!"
    scale steps host_parallelism sweep_status
    (String.concat ", " (List.map (fun a -> a.arm_label) arms));
  let secret = Datasets.load ~scale Datasets.grqc in
  let make () =
    let rng = Prng.create 7 in
    let budget = Budget.create ~name:"bench" 1e9 in
    let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
    let mc = Batch.noisy_count ~rng ~epsilon:0.1 (Qb.degree_ccdf sym) in
    let mj = Batch.noisy_count ~rng ~epsilon:0.1 (Qb.jdd sym) in
    let mt = Batch.noisy_count ~rng ~epsilon:0.1 (Qb.tbd sym) in
    let source = Plan.source ~name:"sym" () in
    let measured =
      [
        Fit.Measured (Qp.degree_ccdf source, mc);
        Fit.Measured (Qp.jdd source, mj);
        Fit.Measured (Qp.tbd source, mt);
      ]
    in
    Fit.create_shared ~rng:(Prng.create 11) ~seed_graph:secret ~source ~measured ()
  in
  let run_arm arm =
    let fit = make () in
    let batches = ref 0 and dispatched = ref 0 and consumed = ref 0 in
    let counters = Mcmc.counters () in
    let t0 = Unix.gettimeofday () in
    let stats =
      Fit.run fit ~steps ~pow:10_000.0 ~jobs:arm.arm_jobs ~width:arm.arm_width ~counters
        ~on_batch:(fun ~dispatched:d ~consumed:c ->
          incr batches;
          dispatched := !dispatched + d;
          consumed := !consumed + c)
        ()
    in
    let wall = Unix.gettimeofday () -. t0 in
    (arm, stats, wall, !batches, !dispatched, !consumed, counters, Fit.edge_array fit)
  in
  let results = List.map run_arm arms in
  let _, ref_stats, ref_wall, _, _, _, _, ref_edges = List.hd results in
  let same (_, (s : Mcmc.stats), _, _, _, _, _, edges) =
    s.Mcmc.accepted = ref_stats.Mcmc.accepted
    && s.Mcmc.invalid = ref_stats.Mcmc.invalid
    && Int64.bits_of_float s.Mcmc.final_energy = Int64.bits_of_float ref_stats.Mcmc.final_energy
    && edges = ref_edges
  in
  let identical = List.for_all same results in
  List.iter
    (fun (arm, (s : Mcmc.stats), wall, batches, dispatched, consumed, (c : Mcmc.counters), _) ->
      Printf.printf
        "%s (jobs=%d): %.1f steps/s (%.3fs), %d accepted, %d batches, efficiency %.3f, \
         speedup %.2fx\n"
        arm.arm_label arm.arm_jobs
        (float steps /. wall)
        wall s.Mcmc.accepted batches
        (float consumed /. float (max 1 dispatched))
        (ref_wall /. wall);
      Printf.printf
        "  phases: dispatch %.0fus eval %.0fus resolve %.0fus commit %.0fus; realized K \
         %d..%d (mean %.2f)\n%!"
        c.Mcmc.dispatch_us c.Mcmc.eval_us c.Mcmc.resolve_us c.Mcmc.commit_us
        (if c.Mcmc.batches = 0 then 0 else c.Mcmc.k_min)
        c.Mcmc.k_max
        (float c.Mcmc.k_sum /. float (max 1 c.Mcmc.batches)))
    results;
  if identical then Printf.printf "all arms walked bit-identically\n%!"
  else Printf.printf "ERROR: arms diverged — the lookahead walk is not width-invariant\n%!";
  let arm_json
      (arm, (s : Mcmc.stats), wall, batches, dispatched, consumed, (c : Mcmc.counters), _) =
    let width_desc =
      match arm.arm_width with
      | Mcmc.Fixed k -> Printf.sprintf "fixed:%d" k
      | Mcmc.Adaptive { max_width } -> Printf.sprintf "adaptive:%d" max_width
      | Mcmc.Schedule _ -> "schedule"
    in
    String.concat "\n"
      [
        "      {";
        Printf.sprintf "        \"label\": %S," arm.arm_label;
        Printf.sprintf "        \"jobs\": %d," arm.arm_jobs;
        Printf.sprintf "        \"width\": %S," width_desc;
        Printf.sprintf "        \"accepted_steps\": %d," s.Mcmc.accepted;
        Printf.sprintf "        \"invalid_steps\": %d," s.Mcmc.invalid;
        Printf.sprintf "        \"rejected_steps\": %d,"
          (steps - s.Mcmc.accepted - s.Mcmc.invalid);
        Printf.sprintf "        \"acceptance_rate\": %.4f," (float s.Mcmc.accepted /. float steps);
        Printf.sprintf "        \"batches\": %d," batches;
        Printf.sprintf "        \"dispatched\": %d," dispatched;
        Printf.sprintf "        \"consumed\": %d," consumed;
        Printf.sprintf "        \"lookahead_efficiency\": %.3f,"
          (float consumed /. float (max 1 dispatched));
        Printf.sprintf "        \"k_min\": %d," (if c.Mcmc.batches = 0 then 0 else c.Mcmc.k_min);
        Printf.sprintf "        \"k_max\": %d," c.Mcmc.k_max;
        Printf.sprintf "        \"k_mean\": %.3f,"
          (float c.Mcmc.k_sum /. float (max 1 c.Mcmc.batches));
        "        \"phase_us\": {";
        Printf.sprintf "          \"dispatch\": %.0f," c.Mcmc.dispatch_us;
        Printf.sprintf "          \"eval\": %.0f," c.Mcmc.eval_us;
        Printf.sprintf "          \"resolve\": %.0f," c.Mcmc.resolve_us;
        Printf.sprintf "          \"commit\": %.0f" c.Mcmc.commit_us;
        "        },";
        Printf.sprintf "        \"commit_us_per_accept\": %.3f,"
          (c.Mcmc.commit_us /. float (max 1 s.Mcmc.accepted));
        Printf.sprintf "        \"eval_us_per_dispatched\": %.3f,"
          (c.Mcmc.eval_us /. float (max 1 dispatched));
        Printf.sprintf "        \"final_energy\": %.6f," s.Mcmc.final_energy;
        Printf.sprintf "        \"wall_s\": %.3f," wall;
        Printf.sprintf "        \"steps_per_sec\": %.1f," (float steps /. wall);
        Printf.sprintf "        \"speedup_vs_jobs1\": %.3f" (ref_wall /. wall);
        "      }";
      ]
  in
  let fragment =
    String.concat "\n"
      [
        "  \"parallel\": {";
        "    \"dataset\": \"ca-GrQc\",";
        Printf.sprintf "    \"scale\": %.2f," scale;
        "    \"queries\": [\"degree_ccdf\", \"jdd\", \"tbd\"],";
        Printf.sprintf "    \"steps\": %d," steps;
        Printf.sprintf "    \"host_parallelism\": %d," host_parallelism;
        Printf.sprintf "    \"sweep_status\": %S," sweep_status;
        Printf.sprintf "    \"identical_walks\": %b," identical;
        "    \"arms\": [";
        String.concat ",\n" (List.map arm_json results);
        "    ],";
        memory_json 4;
        "  }";
      ]
  in
  (fragment, identical)

(* ---------------- Part 6: budget-ledger service benchmark ---------------

   The mixed-tenant load generator from Wpinq_service.Loadgen: one root
   dataset budget, delegated per-tenant accounts, concurrent submitter
   domains firing plan-costed queries through the admission controller
   against a durable (fsynced WAL) ledger.  The recorded numbers are the
   admission outcomes and throughput; the recorded *verdicts* —
   [overspend_tenants] and [recovered_matches] — are the service's two
   safety properties, and the process exits nonzero if either fails. *)

module Loadgen = Wpinq_service.Loadgen
module Ledger = Wpinq_service.Ledger

let serve_bench () =
  banner "Part 6: budget-ledger service benchmark";
  let cfg = Loadgen.default in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wpinq-serve-bench-%d" (Unix.getpid ()))
  in
  let o = Loadgen.run ~log:print_endline ~dir cfg in
  (* The ledger directory was scratch state for this run only. *)
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
     Unix.rmdir dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  let ok = o.Loadgen.overspend = [] && o.Loadgen.recovered_matches in
  let fragment =
    String.concat "\n"
      [
        "  \"serve\": {";
        Printf.sprintf "    \"tenants\": %d," cfg.Loadgen.tenants;
        Printf.sprintf "    \"queries\": %d," cfg.Loadgen.queries;
        Printf.sprintf "    \"submitters\": %d," cfg.Loadgen.submitters;
        Printf.sprintf "    \"epsilon_per_use\": %g," cfg.Loadgen.epsilon;
        Printf.sprintf "    \"allocation_per_tenant\": %g," cfg.Loadgen.allocation;
        Printf.sprintf "    \"fsync\": %b," cfg.Loadgen.fsync;
        Printf.sprintf "    \"admitted\": %d," o.Loadgen.admitted;
        Printf.sprintf "    \"committed\": %d," o.Loadgen.committed;
        "    \"refused\": {";
        Printf.sprintf "      \"budget\": %d," o.Loadgen.refused_budget;
        Printf.sprintf "      \"overload\": %d," o.Loadgen.refused_overload;
        Printf.sprintf "      \"timeout\": %d," o.Loadgen.refused_timeout;
        Printf.sprintf "      \"shutdown\": %d" o.Loadgen.refused_shutdown;
        "    },";
        Printf.sprintf "    \"errors\": %d," o.Loadgen.errors;
        Printf.sprintf "    \"wall_s\": %.3f," o.Loadgen.wall_s;
        Printf.sprintf "    \"throughput_qps\": %.1f," o.Loadgen.throughput_qps;
        Printf.sprintf "    \"overspend_tenants\": %d," (List.length o.Loadgen.overspend);
        Printf.sprintf "    \"recovered_matches\": %b," o.Loadgen.recovered_matches;
        "    \"recovery\": {";
        Printf.sprintf "      \"replayed\": %d," o.Loadgen.recovery.Ledger.replayed;
        Printf.sprintf "      \"charged_on_doubt\": %d,"
          o.Loadgen.recovery.Ledger.charged_on_doubt;
        Printf.sprintf "      \"doubt_epsilon\": %g," o.Loadgen.recovery.Ledger.doubt_epsilon;
        Printf.sprintf "      \"torn_bytes\": %d," o.Loadgen.recovery.Ledger.torn_bytes;
        Printf.sprintf "      \"snapshots_rejected\": %d"
          o.Loadgen.recovery.Ledger.snapshots_rejected;
        "    },";
        memory_json 4;
        "  }";
      ]
  in
  (fragment, ok)

(* ---------------- Part 7: continual-observation benchmark --------------

   A supervised three-epoch stream with an injected transient failure and
   an exhausted schedule, so every branch of the degradation taxonomy
   (completed / merged / refused) appears in the record; then a
   head-to-head warm-vs-cold re-synthesis against the post-churn secret.
   The recorded verdicts: zero budget overspend across the degraded
   stream, and the warm start reaching the cold walk's final energy in
   strictly fewer steps. *)

module Sup = Wpinq_stream.Supervisor
module Sevent = Wpinq_stream.Event
module Workflow = Wpinq_infer.Workflow

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let stream_bench ~smoke () =
  banner "Part 7: continual-observation stream benchmark";
  let steps = if smoke then 400 else 2_000 in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wpinq-stream-bench-%d" (Unix.getpid ()))
  in
  remove_tree dir;
  (* Epoch 1 fails every attempt: a forced transient failure that
     exhausts its retries and degrades to a merged epoch. *)
  let chaos ~epoch ~attempt:_ =
    if epoch = 1 then Some "injected transient fault" else None
  in
  let cfg =
    Sup.config ~steps ~pow:100.0
      ~checkpoint_every:(max 1 (steps / 4))
      ~trace_every:(max 1 (steps / 10))
      ~retries:1 ~per_epoch:2.0 ~epochs:3 ~seed:5 ()
  in
  let sup, _ = Sup.open_dir ~chaos ~config:cfg dir in
  let n = 32 in
  let secret = Gen.clustered ~n ~community:8 ~p_in:0.8 ~extra:14 (Prng.create 19) in
  let clock = ref 0 in
  let submit ?(op = Sevent.Arrive) u v =
    incr clock;
    ignore (Sup.submit sup (Sevent.make ~time:(float !clock) ~op ~u ~v))
  in
  let wall0 = Unix.gettimeofday () in
  List.iter (fun (u, v) -> submit u v) (Graph.edges secret);
  ignore (Sup.tick sup) (* epoch 0: completed (cold start) *);
  let du, dv = List.hd (Graph.edges secret) in
  submit ~op:Sevent.Depart du dv;
  submit 0 31;
  submit 3 29;
  ignore (Sup.tick sup) (* epoch 1: chaos → merged, budget rolled *);
  submit 5 27;
  submit 2 26;
  ignore (Sup.tick sup) (* epoch 2: completed (warm start, carried ε) *);
  ignore (Sup.tick sup) (* epoch 3: schedule exhausted → typed refusal *);
  let wall = Unix.gettimeofday () -. wall0 in
  let outcomes = Sup.outcomes sup in
  List.iter (fun o -> Printf.printf "  %s\n" (Sup.outcome_to_string o)) outcomes;
  let count p = List.length (List.filter p outcomes) in
  let n_completed = count (function Sup.Completed _ -> true | _ -> false) in
  let n_merged = count (function Sup.Merged _ -> true | _ -> false) in
  let n_refused = count (function Sup.Refused _ -> true | _ -> false) in
  let merged_reason, merged_rolled =
    match
      List.find_opt (function Sup.Merged _ -> true | _ -> false) outcomes
    with
    | Some (Sup.Merged m) -> (m.Sup.reason, m.Sup.rolled)
    | _ -> ("", 0.0)
  in
  let books = Sup.books sup in
  let overspend = Sup.overspend sup in
  let head = Sup.head sup and consumed = Sup.consumed sup in
  Printf.printf
    "taxonomy: %d completed, %d merged, %d refused; ε granted %.2f spent %.2f \
     (overspend %.3f)\n%!"
    n_completed n_merged n_refused books.Budget.Schedule.granted
    books.Budget.Schedule.spent overspend;
  (* Warm-vs-cold re-synthesis: fit the post-churn secret twice from the
     same fresh measurements — once from a cold configuration-model seed,
     once warm-started from the stream's released synthetic — and record
     the steps each walk needs to reach the cold walk's final energy. *)
  let previous =
    match Sup.synthetic sup with
    | Some g -> g
    | None -> failwith "stream bench: no released synthetic"
  in
  let next_secret = Graph.of_edges ~n (Sup.protected_edges sup) in
  Sup.close sup;
  remove_tree dir;
  let rng = Prng.create 23 in
  let budget = Budget.create ~name:"stream-bench" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges next_secret) in
  let seed_ms = Workflow.measure_seed ~rng ~epsilon:0.1 ~sym in
  let degrees = Workflow.fit_degrees seed_ms in
  let qms = Workflow.measure_queries ~rng ~epsilon:0.1 ~sym [ Workflow.Tbi ] in
  let fit_steps = if smoke then 2_000 else 10_000 in
  let run_arm seedg =
    let source, measured = Workflow.shared_measured qms in
    let fit =
      Fit.create_shared ~rng:(Prng.create 31) ~seed_graph:seedg ~source ~measured ()
    in
    let energies = Array.make (fit_steps + 1) (Fit.energy fit) in
    for s = 1 to fit_steps do
      ignore (Fit.step ~pow:100.0 fit);
      energies.(s) <- Fit.energy fit
    done;
    energies
  in
  let cold = run_arm (Workflow.seed_graph ~rng:(Prng.split_nth rng 7) ~degrees) in
  let warm = run_arm (Sup.warm_seed ~rng:(Prng.split_nth rng 8) ~degrees ~previous) in
  let tau = cold.(fit_steps) in
  let steps_to arr =
    let rec go i = if i > fit_steps then None else if arr.(i) <= tau then Some i else go (i + 1) in
    go 0
  in
  let cold_steps = Option.value ~default:fit_steps (steps_to cold) in
  let warm_steps = steps_to warm in
  let warm_beats_cold =
    match warm_steps with Some w -> w < cold_steps | None -> false
  in
  Printf.printf
    "warm vs cold (target energy %.4f): cold %d steps from energy %.4f, warm %s from \
     energy %.4f\n%!"
    tau cold_steps cold.(0)
    (match warm_steps with
    | Some w -> Printf.sprintf "%d steps" w
    | None -> "never reached it")
    warm.(0);
  let ok =
    overspend = 0.0 && n_completed >= 2 && n_merged >= 1 && n_refused >= 1
    && warm_beats_cold
  in
  let fragment =
    String.concat "\n"
      [
        "  \"stream\": {";
        Printf.sprintf "    \"epoch_steps\": %d," steps;
        Printf.sprintf "    \"per_epoch_epsilon\": %g," 2.0;
        Printf.sprintf "    \"schedule_epochs\": %d," 3;
        Printf.sprintf "    \"events_acknowledged\": %d," head;
        Printf.sprintf "    \"events_committed\": %d," consumed;
        Printf.sprintf "    \"wall_s\": %.3f," wall;
        "    \"taxonomy\": {";
        Printf.sprintf "      \"completed\": %d," n_completed;
        Printf.sprintf "      \"merged\": %d," n_merged;
        Printf.sprintf "      \"refused\": %d" n_refused;
        "    },";
        Printf.sprintf "    \"merged_reason\": %S," merged_reason;
        Printf.sprintf "    \"merged_rolled_epsilon\": %g," merged_rolled;
        "    \"books\": {";
        Printf.sprintf "      \"granted\": %g," books.Budget.Schedule.granted;
        Printf.sprintf "      \"spent\": %g," books.Budget.Schedule.spent;
        Printf.sprintf "      \"carried\": %g," books.Budget.Schedule.carried;
        Printf.sprintf "      \"forfeited\": %g" books.Budget.Schedule.forfeited;
        "    },";
        Printf.sprintf "    \"overspend\": %g," overspend;
        "    \"warm_start\": {";
        Printf.sprintf "      \"fit_steps\": %d," fit_steps;
        Printf.sprintf "      \"target_energy\": %.6f," tau;
        Printf.sprintf "      \"cold_initial_energy\": %.6f," cold.(0);
        Printf.sprintf "      \"warm_initial_energy\": %.6f," warm.(0);
        Printf.sprintf "      \"cold_steps_to_target\": %d," cold_steps;
        Printf.sprintf "      \"warm_steps_to_target\": %s,"
          (match warm_steps with Some w -> string_of_int w | None -> "null");
        Printf.sprintf "      \"warm_beats_cold\": %b" warm_beats_cold;
        "    },";
        memory_json 4;
        "  }";
      ]
  in
  (fragment, ok)

(* ---------------- Part 8: paper-scale walk arms -------------------------

   The acceptance configuration of the interned hot path: the full-scale
   ca-GrQc stand-in (scale 1.0) driven by TbI, and an Epinions-sized
   synthetic (75,879 nodes / 1,017,674 edges — the paper's Table 1 shape,
   from Gen.epinions_like) driven by degree CCDF + JDD (TbI state is
   ~Σ d² and is not a sensible incremental workload at that density).
   Runs only under --walk: the point is the recorded memory envelope and
   per-step cost at paper scale, not CI latency. *)

let paper_scale_bench () =
  banner "Part 8: paper-scale walk arms";
  let arm ~label ~dataset ~queries ~warmup ~steps make =
    Printf.printf "(%s: building fixture...)\n%!" label;
    let t_setup0 = Unix.gettimeofday () in
    let fit, nodes, edges = make () in
    let setup_s = Unix.gettimeofday () -. t_setup0 in
    for _ = 1 to warmup do
      ignore (Fit.step ~pow:10_000.0 fit)
    done;
    let minor0 = Gc.minor_words () in
    let accepted = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to steps do
      if Fit.step ~pow:10_000.0 fit then incr accepted
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let minor = Gc.minor_words () -. minor0 in
    let us = 1e6 *. wall /. float steps in
    Printf.printf
      "%s (%d nodes, %d edges): setup %.1fs, %.1f us/step, %.1f minor words/step, %d/%d \
       accepted\n%!"
      label nodes edges setup_s us
      (minor /. float steps)
      !accepted steps;
    String.concat "\n"
      [
        "    {";
        Printf.sprintf "      \"label\": %S," label;
        Printf.sprintf "      \"dataset\": %S," dataset;
        Printf.sprintf "      \"nodes\": %d," nodes;
        Printf.sprintf "      \"edges\": %d," edges;
        Printf.sprintf "      \"queries\": [%s],"
          (String.concat ", " (List.map (Printf.sprintf "%S") queries));
        Printf.sprintf "      \"setup_s\": %.3f," setup_s;
        Printf.sprintf "      \"warmup_steps\": %d," warmup;
        Printf.sprintf "      \"measured_steps\": %d," steps;
        Printf.sprintf "      \"accepted_steps\": %d," !accepted;
        Printf.sprintf "      \"us_per_step\": %.3f," us;
        Printf.sprintf "      \"steps_per_sec\": %.1f," (float steps /. wall);
        Printf.sprintf "      \"minor_words_per_step\": %.1f," (minor /. float steps);
        memory_json 6;
        "    }";
      ]
  in
  let grqc_arm =
    arm ~label:"ca-grqc-full" ~dataset:"ca-GrQc (stand-in, scale 1.0)" ~queries:[ "tbi" ]
      ~warmup:300 ~steps:2_000 (fun () ->
        let secret = Datasets.load ~scale:1.0 Datasets.grqc in
        (make_fit ~tbd:false 1.0, Graph.n secret, Graph.m secret))
  in
  let epinions_arm =
    arm ~label:"epinions-synthetic" ~dataset:"Epinions-like (Gen.epinions_like)"
      ~queries:[ "degree_ccdf"; "jdd" ] ~warmup:50 ~steps:300 (fun () ->
        let g = Gen.epinions_like ~n:75_879 ~m:1_017_674 (Prng.create 0xe919) in
        let rng = Prng.create 7 in
        let budget = Budget.create ~name:"bench" 1e9 in
        let sym = Batch.source_records ~budget (Graph.directed_edges g) in
        let mc = Batch.noisy_count ~rng ~epsilon:0.1 (Qb.degree_ccdf sym) in
        let mj = Batch.noisy_count ~rng ~epsilon:0.1 (Qb.jdd sym) in
        let fit =
          Fit.create ~rng ~seed_graph:g
            ~targets:
              [
                (fun flow -> Flow.Target.create (Qf.degree_ccdf flow) mc);
                (fun flow -> Flow.Target.create (Qf.jdd flow) mj);
              ]
            ()
        in
        (fit, Graph.n g, Graph.m g))
  in
  String.concat "\n"
    [ "  \"paper_scale\": ["; String.concat ",\n" [ grqc_arm; epinions_arm ]; "  ]" ]

let walk_bench ~smoke ~json_path ?(fragments = []) () =
  banner "Part 3: speculative-walk benchmark (machine-readable)";
  let scale, warmup, steps = if smoke then (0.15, 500, 3_000) else (0.4, 2_000, 20_000) in
  Printf.printf "(ca-GrQc at scale %.2f, %d warmup + %d measured steps)\n%!" scale warmup
    steps;
  let fit = make_fit ~tbd:false scale in
  for _ = 1 to warmup do
    ignore (Fit.step ~pow:10_000.0 fit)
  done;
  let engine = Fit.engine fit in
  (* Engine counters over the measured window only. *)
  let fast0 = Dataflow.Engine.join_fast_updates engine in
  let full0 = Dataflow.Engine.join_full_rescales engine in
  let work0 = Dataflow.Engine.work engine in
  let commits0 = Dataflow.Engine.commits engine in
  let aborts0 = Dataflow.Engine.aborts engine in
  let undo0 = Dataflow.Engine.undo_cells engine in
  let grows0 = Dataflow.Engine.arena_grows engine in
  let reuses0 = Dataflow.Engine.arena_reuses engine in
  let acc_t = ref 0.0 and acc_n = ref 0 in
  let rej_t = ref 0.0 and rej_n = ref 0 in
  let minor0 = Gc.minor_words () in
  let wall0 = Unix.gettimeofday () in
  for _ = 1 to steps do
    let t0 = Unix.gettimeofday () in
    let accepted = Fit.step ~pow:10_000.0 fit in
    let dt = Unix.gettimeofday () -. t0 in
    if accepted then begin
      acc_t := !acc_t +. dt;
      incr acc_n
    end
    else begin
      rej_t := !rej_t +. dt;
      incr rej_n
    end
  done;
  let wall = Unix.gettimeofday () -. wall0 in
  let minor = Gc.minor_words () -. minor0 in
  let acc_us = 1e6 *. !acc_t /. float (max 1 !acc_n) in
  let rej_us = 1e6 *. !rej_t /. float (max 1 !rej_n) in
  let ratio = rej_us /. acc_us in
  (* Cost of one defense-in-depth self-audit on the fitted state (a full
     cross-validation against a from-scratch batch replica), and whether the
     measured walk left any divergence behind. *)
  let audit_t0 = Unix.gettimeofday () in
  let audit_report = Fit.audit fit in
  let audit_ms = 1e3 *. (Unix.gettimeofday () -. audit_t0) in
  let oc = open_out json_path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"benchmark\": \"wpinq-speculative-walk\",\n";
  Printf.fprintf oc "  \"dataset\": \"ca-GrQc\",\n";
  Printf.fprintf oc "  \"scale\": %.2f,\n" scale;
  Printf.fprintf oc "  \"query\": \"tbi\",\n";
  Printf.fprintf oc "  \"pow\": 10000,\n";
  Printf.fprintf oc "  \"warmup_steps\": %d,\n" warmup;
  Printf.fprintf oc "  \"measured_steps\": %d,\n" steps;
  Printf.fprintf oc "  \"smoke\": %b,\n" smoke;
  (* Host metadata: wall-clock numbers (and especially the parallel arms'
     speedups) are only interpretable next to the domain budget of the
     machine that produced them. *)
  Printf.fprintf oc "  \"host\": {\n";
  Printf.fprintf oc "    \"recommended_domain_count\": %d,\n"
    (Domain.recommended_domain_count ());
  Printf.fprintf oc "    \"ocaml_version\": \"%s\",\n" Sys.ocaml_version;
  Printf.fprintf oc "    \"word_size\": %d\n" Sys.word_size;
  Printf.fprintf oc "  },\n";
  (* The baseline was recorded at the full configuration; in smoke mode it
     is context, not a like-for-like comparison. *)
  Printf.fprintf oc "%s,\n" baseline_json;
  Printf.fprintf oc "  \"current\": {\n";
  Printf.fprintf oc "    \"engine\": \"speculative (undo-log rollback on reject)\",\n";
  Printf.fprintf oc "    \"accepted_steps\": %d,\n" !acc_n;
  Printf.fprintf oc "    \"rejected_steps\": %d,\n" !rej_n;
  Printf.fprintf oc "    \"accepted_us_per_step\": %.3f,\n" acc_us;
  Printf.fprintf oc "    \"rejected_us_per_step\": %.3f,\n" rej_us;
  Printf.fprintf oc "    \"rejected_over_accepted\": %.3f,\n" ratio;
  Printf.fprintf oc "    \"steps_per_sec\": %.1f,\n" (float steps /. wall);
  Printf.fprintf oc "    \"minor_words_per_step\": %.1f,\n" (minor /. float steps);
  Printf.fprintf oc "    \"join_fast_updates\": %d,\n"
    (Dataflow.Engine.join_fast_updates engine - fast0);
  Printf.fprintf oc "    \"join_full_rescales\": %d,\n"
    (Dataflow.Engine.join_full_rescales engine - full0);
  Printf.fprintf oc "    \"work\": %d,\n" (Dataflow.Engine.work engine - work0);
  Printf.fprintf oc "    \"commits\": %d,\n" (Dataflow.Engine.commits engine - commits0);
  Printf.fprintf oc "    \"aborts\": %d,\n" (Dataflow.Engine.aborts engine - aborts0);
  Printf.fprintf oc "    \"undo_cells\": %d,\n" (Dataflow.Engine.undo_cells engine - undo0);
  Printf.fprintf oc "    \"arena_grows\": %d,\n" (Dataflow.Engine.arena_grows engine - grows0);
  Printf.fprintf oc "    \"arena_reuses\": %d,\n" (Dataflow.Engine.arena_reuses engine - reuses0);
  Printf.fprintf oc "    \"audit_cells_checked\": %d,\n"
    audit_report.Dataflow.Audit.cells_checked;
  Printf.fprintf oc "    \"audit_divergences\": %d,\n"
    (List.length audit_report.Dataflow.Audit.divergences);
  Printf.fprintf oc "    \"audit_ms\": %.3f,\n" audit_ms;
  Printf.fprintf oc "%s\n" (memory_json 4);
  (match fragments with
  | [] -> Printf.fprintf oc "  }\n"
  | frags -> Printf.fprintf oc "  },\n%s\n" (String.concat ",\n" frags));
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "accepted: %.3f us/step (%d)\n" acc_us !acc_n;
  Printf.printf "rejected: %.3f us/step (%d)\n" rej_us !rej_n;
  Printf.printf "rejected/accepted = %.3f (baseline 1.920)\n" ratio;
  Printf.printf "minor words/step = %.1f (baseline 25274.2)\n" (minor /. float steps);
  Printf.printf "self-audit: %d cells in %.3f ms, %d divergence(s)\n"
    audit_report.Dataflow.Audit.cells_checked audit_ms
    (List.length audit_report.Dataflow.Audit.divergences);
  Printf.printf "wrote %s\n%!" json_path

let () =
  let smoke = ref false in
  let walk_only = ref false in
  let multi = ref false in
  let serve = ref false in
  let stream = ref false in
  let jobs = ref 0 in
  let json_path = ref "BENCH_wpinq.json" in
  Arg.parse
    [
      ("--smoke", Arg.Set smoke, " Run only the walk + multi + parallel benchmarks, reduced (CI-sized).");
      ("--walk", Arg.Set walk_only, " Run only the walk benchmark, at full size.");
      ( "--multi",
        Arg.Set multi,
        " Run only the walk + shared-plan multi-query benchmarks, at full size." );
      ( "--serve",
        Arg.Set serve,
        " Run only the budget-ledger service benchmark (plus a reduced walk for the \
         JSON envelope); exits nonzero on overspend or recovery mismatch." );
      ( "--stream",
        Arg.Set stream,
        " Run only the continual-observation stream benchmark (plus a reduced walk for \
         the JSON envelope); exits nonzero on overspend, a missing degradation branch, \
         or a warm start that fails to beat the cold start." );
      ( "--jobs",
        Arg.Set_int jobs,
        "N Widest lookahead arm for the parallel benchmark (default: 4, or 2 in smoke \
         mode; arms are {1, 2, 4} capped at N plus an adaptive-width arm at N; on a \
         single-core host the sweep is skipped and only the jobs=1 arms run)." );
      ("--json", Arg.Set_string json_path, "PATH Where to write the benchmark JSON.");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--smoke | --walk | --multi | --serve | --stream] [--jobs N] [--json PATH]";
  let t0 = Unix.gettimeofday () in
  if not (!smoke || !walk_only || !multi || !serve || !stream) then begin
    experiments ();
    run_benchmarks ()
  end;
  (* The walk benchmark always runs; the shared-plan comparison and the
     parallel-lookahead arms ride along in every mode except walk-only,
     serve-only and stream-only; the service load and stream benchmarks
     ride along only in the full run (each also has its own CI-sized
     mode). *)
  let fragments, identical =
    if !walk_only then ([ paper_scale_bench () ], true)
    else if !serve then begin
      let serve_fragment, ok = serve_bench () in
      ([ serve_fragment ], ok)
    end
    else if !stream then begin
      let stream_fragment, ok = stream_bench ~smoke:true () in
      ([ stream_fragment ], ok)
    end
    else begin
      let max_jobs =
        if !jobs >= 1 then !jobs else if !smoke then 2 else 4
      in
      let multi_fragment = multi_bench ~smoke:!smoke () in
      let parallel_fragment, identical = parallel_bench ~smoke:!smoke ~max_jobs () in
      if !smoke || !multi then ([ multi_fragment; parallel_fragment ], identical)
      else begin
        let serve_fragment, serve_ok = serve_bench () in
        let stream_fragment, stream_ok = stream_bench ~smoke:false () in
        ( [ multi_fragment; parallel_fragment; serve_fragment; stream_fragment ],
          identical && serve_ok && stream_ok )
      end
    end
  in
  walk_bench ~smoke:(!smoke || !serve || !stream) ~json_path:!json_path ~fragments ();
  Printf.printf "\nTotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0);
  if not identical then begin
    prerr_endline
      "FATAL: a benchmark safety property failed (lookahead arms diverged, ledger \
       overspend, recovery mismatch, stream overspend, or warm start losing to cold)";
    exit 1
  end
