(* End-to-end private graph synthesis (paper, Sections 4-5).

   Measures a protected graph with the TbI and JDD queries — reified over
   ONE shared symmetrized plan, so their common pipeline prefixes evaluate
   once and the derived privacy costs come from counting source uses —
   throws the graph away, and fits a public synthetic graph to both noisy
   measurements together with the edge-swap Metropolis-Hastings walk over
   the incremental engine.

   Run with:  dune exec examples/triangle_synthesis.exe *)

module Graph = Wpinq_graph.Graph
module Prng = Wpinq_prng.Prng
module Plan = Wpinq_core.Plan
module Flow = Wpinq_core.Flow
module Dataflow = Wpinq_dataflow.Dataflow
module Workflow = Wpinq_infer.Workflow
module Datasets = Wpinq_data.Datasets
module Qp = Wpinq_queries.Queries.Make (Plan)

let () =
  let secret = Datasets.load ~scale:0.5 Datasets.grqc in
  let random = Datasets.random_counterpart secret in
  Printf.printf "secret graph:      %5d triangles, assortativity %+.3f\n"
    (Graph.triangle_count secret) (Graph.assortativity secret);
  Printf.printf "random same-degree: %5d triangles (the control)\n\n"
    (Graph.triangle_count random);

  (* Both query costs are derived, not asserted: reify each query over a
     plan source and count root-to-source paths. *)
  let src = Plan.source ~name:"sym" () in
  let tbi = Qp.tbi src and jdd = Qp.jdd src in
  Printf.printf "derived costs: TbI uses the source %dx, JDD %dx -> %.1f + %.1f eps at eps=0.1\n"
    (Plan.uses tbi) (Plan.uses jdd)
    (Workflow.query_cost Workflow.Tbi 0.1)
    (Workflow.query_cost Workflow.Jdd 0.1);
  (* Reusing one plan value IS structural sharing: lowering both queries
     through one context builds a single dataflow DAG in which their common
     prefix (paths through the symmetric source) is one physical sub-DAG. *)
  let engine = Dataflow.Engine.create () in
  let _handle, sym = Flow.input engine in
  let ctx = Flow.Plans.create engine in
  Flow.Plans.bind ctx src sym;
  ignore (Flow.Plans.lower ctx tbi);
  ignore (Flow.Plans.lower ctx jdd);
  Printf.printf "one DAG for both targets: %d nodes built, %d plan nodes reused\n\n"
    (Dataflow.Engine.nodes_built engine)
    (Dataflow.Engine.nodes_shared engine);

  let run name g =
    let r =
      Workflow.synthesize ~rng:(Prng.create 7) ~epsilon:0.1 ~query:(Some Workflow.Tbi)
        ~queries:[ Workflow.Jdd ] ~steps:30_000 ~trace_every:5_000 ~secret:g ()
    in
    Printf.printf "%s: privacy cost %.2f (3eps seed + 4eps TbI + 4eps JDD)\n" name
      r.Workflow.total_epsilon;
    Printf.printf "%10s %10s %14s %10s\n" "step" "triangles" "assortativity" "energy";
    List.iter
      (fun (p : Workflow.trace_point) ->
        Printf.printf "%10d %10d %+14.3f %10.2f\n" p.Workflow.step p.Workflow.triangles
          p.Workflow.assortativity p.Workflow.energy)
      r.Workflow.trace;
    Printf.printf "accepted %d of %d proposals\n\n" r.Workflow.stats.Wpinq_infer.Mcmc.accepted
      r.Workflow.stats.Wpinq_infer.Mcmc.steps;
    r
  in
  let real = run "fitting the real graph" secret in
  let rand = run "fitting the random control" random in
  Printf.printf
    "MCMC pushed the synthetic graph to %d triangles for the real graph but only\n\
     %d for the degree-matched random control: the TbI measurement carries real\n\
     triangle information, not just degree structure.\n"
    (Graph.triangle_count real.Workflow.synthetic)
    (Graph.triangle_count rand.Workflow.synthetic)
