(* Joint degree distribution under differential privacy (paper, Section 3.2).

   Reifies the double-Join wPINQ JDD query as a {!Plan} over a shared
   symmetrized source — the privacy cost (4 eps) is derived by counting
   root-to-source paths with [Plan.uses], then confirmed by the budget the
   lowered batch query actually debits — inverts the Eq. (3) record weights
   back into edge counts, and estimates the graph's assortativity from the
   noisy JDD alone.

   Run with:  dune exec examples/jdd_assortativity.exe *)

module Graph = Wpinq_graph.Graph
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Plan = Wpinq_core.Plan
module Measurement = Wpinq_core.Measurement
module Queries = Wpinq_queries.Queries
module Qp = Queries.Make (Plan)
module Datasets = Wpinq_data.Datasets

let () =
  let g = Datasets.load ~scale:0.5 Datasets.grqc in
  Printf.printf "graph: %d nodes, %d edges, true assortativity %+.3f\n\n" (Graph.n g)
    (Graph.m g) (Graph.assortativity g);

  (* Reify the query first: the plan is data, so its cost is a fold over
     the DAG — no budget, no graph, no noise involved yet. *)
  let src = Plan.source ~name:"sym" () in
  let jdd_plan = Qp.jdd src in
  let uses = Plan.uses jdd_plan in
  let epsilon = 1.0 in
  Printf.printf "derived cost: JDD uses the source %dx -> budget %.1f eps at eps=%.1f\n"
    uses
    (float_of_int uses *. epsilon)
    epsilon;

  (* Size the budget from the derived cost, then lower the plan onto the
     protected records and let the batch interpreter confirm it. *)
  let budget = Budget.create ~name:"edges" (float_of_int uses *. epsilon) in
  let sym = Batch.source_records ~budget (Graph.directed_edges g) in
  let ctx = Batch.Plans.create () in
  Batch.Plans.bind ctx src sym;
  let jdd = Batch.Plans.lower ctx jdd_plan in
  Printf.printf "JDD query privacy cost: %s\n"
    (String.concat ", "
       (List.map
          (fun (n, c) -> Printf.sprintf "%s: %.2f" n c)
          (Batch.privacy_cost ~epsilon jdd)));
  let m = Batch.noisy_count ~rng:(Prng.create 3) ~epsilon jdd in
  Printf.printf "budget spent: %.2f of %.2f\n\n" (Budget.spent budget) (Budget.total budget);

  (* Reconstruct per-(da,db) directed edge counts: divide each noisy weight
     by Eq. (3) = 1/(2 + 2da + 2db), clamp the noise-only records. *)
  let dmax = Graph.dmax g in
  let est = Hashtbl.create 64 in
  for da = 1 to dmax do
    for db = 1 to dmax do
      let noisy = Measurement.value m (da, db) in
      (* Keep only cells whose weight clears the noise floor (scale 1/eps)
         before inverting Eq. (3) - otherwise the inversion amplifies pure
         noise by a factor of 2 + 2da + 2db. *)
      if noisy > 2.0 /. epsilon then
        Hashtbl.replace est (da, db) (noisy /. Queries.jdd_pair_weight (da, db))
    done
  done;

  (* Head-to-head: noisiest reconstruction vs truth on the top pairs. *)
  let truth = Graph.joint_degree_counts g in
  let top =
    List.filteri (fun i _ -> i < 10)
      (List.sort (fun (_, a) (_, b) -> compare b a) truth)
  in
  Printf.printf "%-12s %8s %10s\n" "(da, db)" "true" "estimated";
  List.iter
    (fun ((da, db), c) ->
      (* The query emits ordered pairs; unordered truth (da<=db) matches the
         sum of both orientations (or the diagonal once). *)
      let e =
        if da = db then Option.value ~default:0.0 (Hashtbl.find_opt est (da, db))
        else
          Option.value ~default:0.0 (Hashtbl.find_opt est (da, db))
          +. Option.value ~default:0.0 (Hashtbl.find_opt est (db, da))
      in
      let e = if da = db then e else e /. 2.0 in
      Printf.printf "(%3d,%3d)    %8d %10.1f\n" da db c e)
    top;

  (* Assortativity from the estimated JDD: Pearson correlation of the
     degree pairs weighted by estimated edge counts. *)
  let sum = ref 0.0 and sj = ref 0.0 and sj2 = ref 0.0 and sjk = ref 0.0 in
  Hashtbl.iter
    (fun (da, db) c ->
      let x = float_of_int da and y = float_of_int db in
      sum := !sum +. c;
      sj := !sj +. (c *. x);
      sj2 := !sj2 +. (c *. x *. x);
      sjk := !sjk +. (c *. x *. y);
      (* symmetric orientation *)
      sj := !sj +. (c *. y);
      sj2 := !sj2 +. (c *. y *. y);
      sjk := !sjk +. (c *. x *. y);
      sum := !sum +. c)
    est;
  let n = !sum in
  let mean = !sj /. n in
  let r = ((!sjk /. n) -. (mean *. mean)) /. ((!sj2 /. n) -. (mean *. mean)) in
  Printf.printf "\nassortativity from the noisy JDD: %+.3f (true %+.3f)\n" r
    (Graph.assortativity g)
