module Persist = Wpinq_persist.Persist
module Codec = Persist.Codec
module Fault = Persist.Fault

let with_temp f =
  let path = Filename.temp_file "wpinq_persist" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      let tmp = path ^ ".tmp" in
      if Sys.file_exists tmp then Sys.remove tmp)
    (fun () -> f path)

(* ---- codec ---- *)

let test_codec_roundtrip () =
  let buf = Buffer.create 64 in
  Codec.write_int64 buf Int64.min_int;
  Codec.write_int64 buf Int64.max_int;
  Codec.write_int buf (-42);
  Codec.write_bool buf true;
  Codec.write_bool buf false;
  Codec.write_string buf "";
  Codec.write_string buf "with \x00 nul and \xff bytes";
  Codec.write_list Codec.write_int buf [ 3; 1; 2 ];
  Codec.write_array Codec.write_float buf [| 1.5; -0.0 |];
  let r = Codec.reader (Buffer.contents buf) in
  Alcotest.(check int64) "min_int64" Int64.min_int (Codec.read_int64 r);
  Alcotest.(check int64) "max_int64" Int64.max_int (Codec.read_int64 r);
  Alcotest.(check int) "negative int" (-42) (Codec.read_int r);
  Alcotest.(check bool) "true" true (Codec.read_bool r);
  Alcotest.(check bool) "false" false (Codec.read_bool r);
  Alcotest.(check string) "empty string" "" (Codec.read_string r);
  Alcotest.(check string) "binary string" "with \x00 nul and \xff bytes"
    (Codec.read_string r);
  Alcotest.(check (list int)) "list order" [ 3; 1; 2 ] (Codec.read_list Codec.read_int r);
  let a = Codec.read_array Codec.read_float r in
  Alcotest.(check int) "array length" 2 (Array.length a);
  Alcotest.(check int) "nothing left" 0 (Codec.remaining r)

let test_codec_float_bits () =
  (* Floats must survive by bit pattern, not by printing: NaN, -0.0, and
     subnormals are all checkpoint-relevant energies. *)
  let specials = [ Float.nan; -0.0; 0.0; Float.infinity; Float.neg_infinity; 4.9e-324 ] in
  let buf = Buffer.create 64 in
  List.iter (Codec.write_float buf) specials;
  let r = Codec.reader (Buffer.contents buf) in
  List.iter
    (fun expect ->
      let got = Codec.read_float r in
      Alcotest.(check int64)
        (Printf.sprintf "bits of %h" expect)
        (Int64.bits_of_float expect) (Int64.bits_of_float got))
    specials

let test_codec_truncation () =
  let buf = Buffer.create 16 in
  Codec.write_string buf "hello";
  let encoded = Buffer.contents buf in
  (* Every strict prefix must fail with a typed error, never read garbage. *)
  for len = 0 to String.length encoded - 1 do
    let r = Codec.reader (String.sub encoded 0 len) in
    match Codec.read_string r with
    | exception Codec.Decode_error _ -> ()
    | s -> Alcotest.failf "prefix %d decoded to %S" len s
  done

let test_codec_negative_length () =
  let buf = Buffer.create 16 in
  Codec.write_int64 buf (-5L);
  match Codec.read_string (Codec.reader (Buffer.contents buf)) with
  | exception Codec.Decode_error _ -> ()
  | s -> Alcotest.failf "negative length decoded to %S" s

(* ---- fault injection ---- *)

let test_fault_countdown () =
  Fault.disarm ();
  Fault.arm ~site:"x" ~after:2;
  Fault.point "other-site";
  (* wrong site: no effect *)
  Fault.point "x";
  (* 1st pass *)
  (match Fault.point "x" with
  | exception Fault.Injected "x" -> ()
  | () -> Alcotest.fail "expected injection on 2nd pass");
  (* One-shot: disarmed before raising, so recovery code runs clean. *)
  Fault.point "x"

(* ---- container format ---- *)

let magic = "test-magic\n"
let version = 3

let test_file_roundtrip () =
  with_temp (fun path ->
      let payload = "some payload \x00 bytes" in
      Persist.File.save ~path ~magic ~version payload;
      match Persist.File.load ~path ~magic ~version with
      | Ok p -> Alcotest.(check string) "payload" payload p
      | Error e -> Alcotest.fail (Persist.File.error_to_string e))

let test_file_missing () =
  match Persist.File.load ~path:"/nonexistent/nowhere.bin" ~magic ~version with
  | Error (Persist.File.Io_error _) -> ()
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error e -> Alcotest.failf "wrong error: %s" (Persist.File.error_to_string e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_file_flipped_byte () =
  with_temp (fun path ->
      let payload = "all these bytes are load-bearing" in
      Persist.File.save ~path ~magic ~version payload;
      let raw = read_file path in
      (* Flip every byte in turn: each corruption must surface as a typed
         error — magic damage as Bad_magic, version damage as
         Unsupported_version, anything else as Truncated or
         Checksum_mismatch — never as Ok or an exception. *)
      for i = 0 to String.length raw - 1 do
        let corrupt = Bytes.of_string raw in
        Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0x01));
        write_file path (Bytes.to_string corrupt);
        match Persist.File.load ~path ~magic ~version with
        | Ok p when p = payload -> Alcotest.failf "byte %d flip went unnoticed" i
        | Ok _ -> Alcotest.failf "byte %d flip produced a wrong payload" i
        | Error _ -> ()
      done)

let test_file_checksum_mismatch_specifically () =
  with_temp (fun path ->
      Persist.File.save ~path ~magic ~version "payload under test";
      let raw = read_file path in
      (* Flip the last byte — squarely inside the payload. *)
      let corrupt = Bytes.of_string raw in
      let i = Bytes.length corrupt - 1 in
      Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0xff));
      write_file path (Bytes.to_string corrupt);
      match Persist.File.load ~path ~magic ~version with
      | Error Persist.File.Checksum_mismatch -> ()
      | Ok _ -> Alcotest.fail "corrupt payload loaded"
      | Error e -> Alcotest.failf "wrong error: %s" (Persist.File.error_to_string e))

let test_file_truncated () =
  with_temp (fun path ->
      Persist.File.save ~path ~magic ~version "a payload long enough to truncate";
      let raw = read_file path in
      write_file path (String.sub raw 0 (String.length raw - 5));
      match Persist.File.load ~path ~magic ~version with
      | Error Persist.File.Truncated -> ()
      | Ok _ -> Alcotest.fail "truncated file loaded"
      | Error e -> Alcotest.failf "wrong error: %s" (Persist.File.error_to_string e))

let test_file_bad_magic_and_version () =
  with_temp (fun path ->
      Persist.File.save ~path ~magic ~version "p";
      (match Persist.File.load ~path ~magic:"other-magic\n" ~version with
      | Error Persist.File.Bad_magic -> ()
      | _ -> Alcotest.fail "expected Bad_magic");
      match Persist.File.load ~path ~magic ~version:(version + 1) with
      | Error (Persist.File.Unsupported_version { found; expected }) ->
          Alcotest.(check int) "found" version found;
          Alcotest.(check int) "expected" (version + 1) expected
      | _ -> Alcotest.fail "expected Unsupported_version")

let test_interrupted_write_preserves_previous () =
  (* The acceptance criterion: a crash mid-write (during the temp-file body
     or just before the rename) leaves the previous valid file intact. *)
  with_temp (fun path ->
      Persist.File.save ~path ~magic ~version "generation one";
      List.iter
        (fun site ->
          Fault.arm ~site ~after:1;
          (match Persist.File.save ~path ~magic ~version "generation two" with
          | exception Fault.Injected _ -> ()
          | () -> Alcotest.failf "fault at %s did not fire" site);
          match Persist.File.load ~path ~magic ~version with
          | Ok p -> Alcotest.(check string) (site ^ " preserved") "generation one" p
          | Error e -> Alcotest.fail (Persist.File.error_to_string e))
        [ "atomic.write"; "atomic.rename" ];
      (* And with no fault armed the next write goes through. *)
      Persist.File.save ~path ~magic ~version "generation two";
      match Persist.File.load ~path ~magic ~version with
      | Ok p -> Alcotest.(check string) "clean retry" "generation two" p
      | Error e -> Alcotest.fail (Persist.File.error_to_string e))

let suite =
  [
    Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec float bit patterns" `Quick test_codec_float_bits;
    Alcotest.test_case "codec truncation" `Quick test_codec_truncation;
    Alcotest.test_case "codec negative length" `Quick test_codec_negative_length;
    Alcotest.test_case "fault countdown" `Quick test_fault_countdown;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "file missing" `Quick test_file_missing;
    Alcotest.test_case "every flipped byte detected" `Quick test_file_flipped_byte;
    Alcotest.test_case "payload flip is checksum mismatch" `Quick
      test_file_checksum_mismatch_specifically;
    Alcotest.test_case "truncated file detected" `Quick test_file_truncated;
    Alcotest.test_case "bad magic and version" `Quick test_file_bad_magic_and_version;
    Alcotest.test_case "interrupted write preserves previous" `Quick
      test_interrupted_write_preserves_previous;
  ]
