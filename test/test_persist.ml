module Persist = Wpinq_persist.Persist
module Codec = Persist.Codec
module Fault = Persist.Fault

let with_temp f =
  let path = Filename.temp_file "wpinq_persist" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      if Sys.file_exists path then Sys.remove path;
      ignore (Persist.Atomic.sweep_stale ~path ()))
    (fun () -> f path)

let with_temp_dir f =
  let dir = Filename.temp_file "wpinq_store" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      if Sys.file_exists dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* ---- codec ---- *)

let test_codec_roundtrip () =
  let buf = Buffer.create 64 in
  Codec.write_int64 buf Int64.min_int;
  Codec.write_int64 buf Int64.max_int;
  Codec.write_int buf (-42);
  Codec.write_bool buf true;
  Codec.write_bool buf false;
  Codec.write_string buf "";
  Codec.write_string buf "with \x00 nul and \xff bytes";
  Codec.write_list Codec.write_int buf [ 3; 1; 2 ];
  Codec.write_array Codec.write_float buf [| 1.5; -0.0 |];
  let r = Codec.reader (Buffer.contents buf) in
  Alcotest.(check int64) "min_int64" Int64.min_int (Codec.read_int64 r);
  Alcotest.(check int64) "max_int64" Int64.max_int (Codec.read_int64 r);
  Alcotest.(check int) "negative int" (-42) (Codec.read_int r);
  Alcotest.(check bool) "true" true (Codec.read_bool r);
  Alcotest.(check bool) "false" false (Codec.read_bool r);
  Alcotest.(check string) "empty string" "" (Codec.read_string r);
  Alcotest.(check string) "binary string" "with \x00 nul and \xff bytes"
    (Codec.read_string r);
  Alcotest.(check (list int)) "list order" [ 3; 1; 2 ] (Codec.read_list Codec.read_int r);
  let a = Codec.read_array Codec.read_float r in
  Alcotest.(check int) "array length" 2 (Array.length a);
  Alcotest.(check int) "nothing left" 0 (Codec.remaining r)

let test_codec_float_bits () =
  (* Floats must survive by bit pattern, not by printing: NaN, -0.0, and
     subnormals are all checkpoint-relevant energies. *)
  let specials = [ Float.nan; -0.0; 0.0; Float.infinity; Float.neg_infinity; 4.9e-324 ] in
  let buf = Buffer.create 64 in
  List.iter (Codec.write_float buf) specials;
  let r = Codec.reader (Buffer.contents buf) in
  List.iter
    (fun expect ->
      let got = Codec.read_float r in
      Alcotest.(check int64)
        (Printf.sprintf "bits of %h" expect)
        (Int64.bits_of_float expect) (Int64.bits_of_float got))
    specials

let test_codec_truncation () =
  let buf = Buffer.create 16 in
  Codec.write_string buf "hello";
  let encoded = Buffer.contents buf in
  (* Every strict prefix must fail with a typed error, never read garbage. *)
  for len = 0 to String.length encoded - 1 do
    let r = Codec.reader (String.sub encoded 0 len) in
    match Codec.read_string r with
    | exception Codec.Decode_error _ -> ()
    | s -> Alcotest.failf "prefix %d decoded to %S" len s
  done

let test_codec_negative_length () =
  let buf = Buffer.create 16 in
  Codec.write_int64 buf (-5L);
  match Codec.read_string (Codec.reader (Buffer.contents buf)) with
  | exception Codec.Decode_error _ -> ()
  | s -> Alcotest.failf "negative length decoded to %S" s

let test_codec_adversarial_lengths () =
  (* A corrupted or hostile length prefix claiming more elements than there
     are bytes left must be rejected *before* any allocation is sized from
     it — a multi-GB [List.init]/[Array.init] would be a DoS even behind
     the checksum. *)
  let claim n =
    let buf = Buffer.create 16 in
    Codec.write_int buf n;
    Codec.write_float buf 1.0;
    Buffer.contents buf
  in
  List.iter
    (fun n ->
      (match Codec.read_list Codec.read_float (Codec.reader (claim n)) with
      | exception Codec.Decode_error _ -> ()
      | l -> Alcotest.failf "list of claimed length %d decoded (%d items)" n (List.length l));
      (match Codec.read_array Codec.read_float (Codec.reader (claim n)) with
      | exception Codec.Decode_error _ -> ()
      | a -> Alcotest.failf "array of claimed length %d decoded (%d items)" n (Array.length a));
      match Codec.read_string (Codec.reader (claim n)) with
      | exception Codec.Decode_error _ -> ()
      | s -> Alcotest.failf "string of claimed length %d decoded (%d bytes)" n (String.length s))
    [ 9 (* just past the remaining bytes *); 1_000_000_000; max_int ]

(* ---- fault injection ---- *)

let test_fault_countdown () =
  Fault.disarm ();
  Fault.arm ~site:"x" ~after:2;
  Fault.point "other-site";
  (* wrong site: no effect *)
  Fault.point "x";
  (* 1st pass *)
  (match Fault.point "x" with
  | exception Fault.Injected "x" -> ()
  | () -> Alcotest.fail "expected injection on 2nd pass");
  (* One-shot: disarmed before raising, so recovery code runs clean. *)
  Fault.point "x"

let test_fault_action () =
  Fault.disarm ();
  let fired = ref 0 in
  Fault.arm_action ~site:"hook" ~after:2 (fun () -> incr fired);
  Fault.point "hook";
  Alcotest.(check int) "not yet" 0 !fired;
  Fault.point "hook";
  Alcotest.(check int) "fired once" 1 !fired;
  (* One-shot, like [arm]. *)
  Fault.point "hook";
  Alcotest.(check int) "disarmed after firing" 1 !fired

let test_fault_corrupt_bit_flip () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "\x00\x00\x00";
      close_out oc;
      (* Bit 1 of byte 1. *)
      Fault.corrupt ~path (Fault.Bit_flip 9);
      let ic = open_in_bin path in
      let raw = really_input_string ic 3 in
      close_in ic;
      Alcotest.(check string) "one bit flipped" "\x00\x02\x00" raw)

let test_fault_corrupt_truncate () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "0123456789";
      close_out oc;
      Fault.corrupt ~path (Fault.Truncate_at 4);
      let ic = open_in_bin path in
      let raw = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "truncated" "0123" raw)

(* ---- container format ---- *)

let magic = "test-magic\n"
let version = 3

let test_file_roundtrip () =
  with_temp (fun path ->
      let payload = "some payload \x00 bytes" in
      Persist.File.save ~path ~magic ~version payload;
      match Persist.File.load ~path ~magic ~version with
      | Ok p -> Alcotest.(check string) "payload" payload p
      | Error e -> Alcotest.fail (Persist.File.error_to_string e))

let test_file_missing () =
  match Persist.File.load ~path:"/nonexistent/nowhere.bin" ~magic ~version with
  | Error (Persist.File.Io_error _) -> ()
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error e -> Alcotest.failf "wrong error: %s" (Persist.File.error_to_string e)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_file_flipped_byte () =
  with_temp (fun path ->
      let payload = "all these bytes are load-bearing" in
      Persist.File.save ~path ~magic ~version payload;
      let raw = read_file path in
      (* Flip every byte in turn: each corruption must surface as a typed
         error — magic damage as Bad_magic, version damage as
         Unsupported_version, anything else as Truncated or
         Checksum_mismatch — never as Ok or an exception. *)
      for i = 0 to String.length raw - 1 do
        let corrupt = Bytes.of_string raw in
        Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0x01));
        write_file path (Bytes.to_string corrupt);
        match Persist.File.load ~path ~magic ~version with
        | Ok p when p = payload -> Alcotest.failf "byte %d flip went unnoticed" i
        | Ok _ -> Alcotest.failf "byte %d flip produced a wrong payload" i
        | Error _ -> ()
      done)

let test_file_checksum_mismatch_specifically () =
  with_temp (fun path ->
      Persist.File.save ~path ~magic ~version "payload under test";
      let raw = read_file path in
      (* Flip the last byte — squarely inside the payload. *)
      let corrupt = Bytes.of_string raw in
      let i = Bytes.length corrupt - 1 in
      Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0xff));
      write_file path (Bytes.to_string corrupt);
      match Persist.File.load ~path ~magic ~version with
      | Error Persist.File.Checksum_mismatch -> ()
      | Ok _ -> Alcotest.fail "corrupt payload loaded"
      | Error e -> Alcotest.failf "wrong error: %s" (Persist.File.error_to_string e))

let test_file_truncated () =
  with_temp (fun path ->
      Persist.File.save ~path ~magic ~version "a payload long enough to truncate";
      let raw = read_file path in
      write_file path (String.sub raw 0 (String.length raw - 5));
      match Persist.File.load ~path ~magic ~version with
      | Error Persist.File.Truncated -> ()
      | Ok _ -> Alcotest.fail "truncated file loaded"
      | Error e -> Alcotest.failf "wrong error: %s" (Persist.File.error_to_string e))

let test_file_bad_magic_and_version () =
  with_temp (fun path ->
      Persist.File.save ~path ~magic ~version "p";
      (match Persist.File.load ~path ~magic:"other-magic\n" ~version with
      | Error Persist.File.Bad_magic -> ()
      | _ -> Alcotest.fail "expected Bad_magic");
      match Persist.File.load ~path ~magic ~version:(version + 1) with
      | Error (Persist.File.Unsupported_version { found; expected }) ->
          Alcotest.(check int) "found" version found;
          Alcotest.(check int) "expected" (version + 1) expected
      | _ -> Alcotest.fail "expected Unsupported_version")

let test_interrupted_write_preserves_previous () =
  (* The acceptance criterion: a crash mid-write (during the temp-file
     body, before the data fsync, or just before the rename) leaves the
     previous valid file intact. *)
  with_temp (fun path ->
      Persist.File.save ~path ~magic ~version "generation one";
      List.iter
        (fun site ->
          Fault.arm ~site ~after:1;
          (match Persist.File.save ~path ~magic ~version "generation two" with
          | exception Fault.Injected _ -> ()
          | () -> Alcotest.failf "fault at %s did not fire" site);
          match Persist.File.load ~path ~magic ~version with
          | Ok p -> Alcotest.(check string) (site ^ " preserved") "generation one" p
          | Error e -> Alcotest.fail (Persist.File.error_to_string e))
        [ "atomic.write"; "atomic.fsync"; "atomic.rename" ];
      (* And with no fault armed the next write goes through. *)
      Persist.File.save ~path ~magic ~version "generation two";
      match Persist.File.load ~path ~magic ~version with
      | Ok p -> Alcotest.(check string) "clean retry" "generation two" p
      | Error e -> Alcotest.fail (Persist.File.error_to_string e))

let test_crash_between_rename_and_dirsync () =
  (* The dirsync site fires *after* the rename: a crash in that window may
     surface either generation after a reboot, but on a live filesystem the
     new content is already in place — it must be valid. *)
  with_temp (fun path ->
      Persist.File.save ~path ~magic ~version "generation one";
      Fault.arm ~site:"atomic.dirsync" ~after:1;
      (match Persist.File.save ~path ~magic ~version "generation two" with
      | exception Fault.Injected _ -> ()
      | () -> Alcotest.fail "dirsync fault did not fire");
      match Persist.File.load ~path ~magic ~version with
      | Ok p -> Alcotest.(check string) "renamed content valid" "generation two" p
      | Error e -> Alcotest.fail (Persist.File.error_to_string e))

let test_stale_temps_swept () =
  (* A crashed run leaves its uniquely-named temp file behind; the next
     write to the same path must sweep it. *)
  with_temp (fun path ->
      Fault.arm ~site:"atomic.rename" ~after:1;
      (match Persist.File.save ~path ~magic ~version "doomed" with
      | exception Fault.Injected _ -> ()
      | () -> Alcotest.fail "rename fault did not fire");
      let temps dir base =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun n -> String.starts_with ~prefix:(base ^ ".tmp") n)
      in
      let dir = Filename.dirname path and base = Filename.basename path in
      Alcotest.(check int) "crash left a stale temp" 1 (List.length (temps dir base));
      Persist.File.save ~path ~magic ~version "survivor";
      Alcotest.(check int) "next write swept it" 0 (List.length (temps dir base));
      match Persist.File.load ~path ~magic ~version with
      | Ok p -> Alcotest.(check string) "content" "survivor" p
      | Error e -> Alcotest.fail (Persist.File.error_to_string e))

let test_corrupt_helper_detected_by_container () =
  with_temp (fun path ->
      Persist.File.save ~path ~magic ~version "a payload of reasonable length";
      let size = (Unix.stat path).Unix.st_size in
      (* Flip a bit in the last byte — squarely inside the payload. *)
      Fault.corrupt ~path (Fault.Bit_flip (8 * (size - 1)));
      (match Persist.File.load ~path ~magic ~version with
      | Error Persist.File.Checksum_mismatch -> ()
      | Ok _ -> Alcotest.fail "bit-flipped file loaded"
      | Error e -> Alcotest.failf "wrong error: %s" (Persist.File.error_to_string e));
      Persist.File.save ~path ~magic ~version "a payload of reasonable length";
      Fault.corrupt ~path (Fault.Truncate_at (size - 3));
      match Persist.File.load ~path ~magic ~version with
      | Error Persist.File.Truncated -> ()
      | Ok _ -> Alcotest.fail "truncated file loaded"
      | Error e -> Alcotest.failf "wrong error: %s" (Persist.File.error_to_string e))

(* ---- generational store ---- *)

let decode_ok payload = Ok payload

let test_store_rotation_and_generations () =
  with_temp_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep:3 dir in
      List.iter
        (fun step ->
          ignore
            (Persist.Store.save store ~step ~magic ~version (Printf.sprintf "gen %d" step)))
        [ 100; 200; 300; 400; 500 ];
      (* Retention: only the newest 3 remain, newest first. *)
      Alcotest.(check (list int))
        "generations" [ 500; 400; 300 ]
        (List.map fst (Persist.Store.generations store));
      match Persist.Store.load_latest store ~magic ~version ~decode:decode_ok with
      | Some (payload, step, _), [] ->
          Alcotest.(check string) "newest payload" "gen 500" payload;
          Alcotest.(check int) "newest step" 500 step
      | Some _, rejected ->
          Alcotest.failf "unexpected rejections: %d" (List.length rejected)
      | None, _ -> Alcotest.fail "no generation loaded")

let test_store_fallback_quarantines () =
  with_temp_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep:3 dir in
      List.iter
        (fun step ->
          ignore
            (Persist.Store.save store ~step ~magic ~version (Printf.sprintf "gen %d" step)))
        [ 100; 200; 300 ];
      (* Corrupt the newest generation; the store must fall back to 200,
         quarantining 300 as evidence (renamed, reason recorded — never
         deleted). *)
      let newest = Persist.Store.path_for store ~step:300 in
      let size = (Unix.stat newest).Unix.st_size in
      Fault.corrupt ~path:newest (Fault.Bit_flip (8 * (size - 1)));
      (match Persist.Store.load_latest store ~magic ~version ~decode:decode_ok with
      | Some (payload, step, _), [ { Persist.Store.path; reason } ] ->
          Alcotest.(check string) "fell back" "gen 200" payload;
          Alcotest.(check int) "fallback step" 200 step;
          Alcotest.(check string) "rejected path" newest path;
          Alcotest.(check bool)
            "reason names the container layer" true
            (String.length reason > 0
            && String.starts_with ~prefix:"container layer:" reason)
      | Some _, rejected ->
          Alcotest.failf "expected exactly one rejection, got %d" (List.length rejected)
      | None, _ -> Alcotest.fail "no generation survived");
      Alcotest.(check bool) "corrupt file quarantined, not deleted" true
        (Sys.file_exists (newest ^ ".corrupt"));
      Alcotest.(check bool) "quarantine reason recorded" true
        (Sys.file_exists (newest ^ ".corrupt.reason"));
      (* The quarantined generation no longer counts as a generation. *)
      Alcotest.(check (list int))
        "generations after quarantine" [ 200; 100 ]
        (List.map fst (Persist.Store.generations store)))

let test_store_all_corrupt () =
  with_temp_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep:2 dir in
      ignore (Persist.Store.save store ~step:100 ~magic ~version "gen 100");
      ignore (Persist.Store.save store ~step:200 ~magic ~version "gen 200");
      List.iter
        (fun step ->
          Fault.corrupt ~path:(Persist.Store.path_for store ~step) (Fault.Truncate_at 5))
        [ 100; 200 ];
      match Persist.Store.load_latest store ~magic ~version ~decode:decode_ok with
      | None, rejected -> Alcotest.(check int) "both tried and rejected" 2 (List.length rejected)
      | Some (p, _, _), _ -> Alcotest.failf "corrupt generation loaded: %S" p)

let test_store_sweeps_stale_temps_on_open () =
  with_temp_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep:2 dir in
      ignore (Persist.Store.save store ~step:100 ~magic ~version "gen 100");
      (* Crash a generation write, leaving its temp behind. *)
      Fault.arm ~site:"atomic.rename" ~after:1;
      (match Persist.Store.save store ~step:200 ~magic ~version "doomed" with
      | exception Fault.Injected _ -> ()
      | _ -> Alcotest.fail "rename fault did not fire");
      let stale () =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun n -> not (Filename.check_suffix n ".wpq"))
      in
      Alcotest.(check int) "stale temp present" 1 (List.length (stale ()));
      let store2 = Persist.Store.open_dir ~keep:2 dir in
      Alcotest.(check int) "swept on open" 0 (List.length (stale ()));
      Alcotest.(check (list int))
        "good generation untouched" [ 100 ]
        (List.map fst (Persist.Store.generations store2)))

let test_store_quarantine_sweep () =
  with_temp_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep:2 dir in
      (* Five quarantine groups with strictly ordered mtimes (oldest
         first), each with its reason sibling. *)
      let quarantined =
        List.map
          (fun i ->
            let path = Filename.concat dir (Printf.sprintf "ckpt-%d.wpq" i) in
            let oc = open_out path in
            output_string oc "junk";
            close_out oc;
            let dst = Persist.Store.quarantine ~path ~reason:"test evidence" in
            let t = Unix.gettimeofday () -. (10.0 *. float_of_int (5 - i)) in
            Unix.utimes dst t t;
            dst)
          [ 1; 2; 3; 4; 5 ]
      in
      List.iter
        (fun dst ->
          Alcotest.(check bool) "reason recorded" true (Sys.file_exists (dst ^ ".reason")))
        quarantined;
      (* Retention applies to evidence exactly as to generations: the
         newest [keep] groups survive, older ones go — corrupt file and
         reason sibling together. *)
      let removed = Persist.Store.sweep_quarantine store in
      Alcotest.(check int) "three groups swept (evidence + reason)" 6 removed;
      let survivors =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun n -> not (Filename.check_suffix n ".reason"))
        |> List.sort compare
      in
      Alcotest.(check (list string))
        "newest two groups kept"
        [ "ckpt-4.wpq.corrupt"; "ckpt-5.wpq.corrupt" ]
        survivors;
      List.iter
        (fun dst ->
          let keep = Sys.file_exists dst in
          let base = Filename.basename dst in
          Alcotest.(check bool) ("reason follows evidence for " ^ base) keep
            (Sys.file_exists (dst ^ ".reason")))
        quarantined;
      (* Idempotent: a second sweep has nothing left to do. *)
      Alcotest.(check int) "second sweep is a no-op" 0
        (Persist.Store.sweep_quarantine store))

let suite =
  [
    Alcotest.test_case "codec round-trip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec float bit patterns" `Quick test_codec_float_bits;
    Alcotest.test_case "codec truncation" `Quick test_codec_truncation;
    Alcotest.test_case "codec negative length" `Quick test_codec_negative_length;
    Alcotest.test_case "fault countdown" `Quick test_fault_countdown;
    Alcotest.test_case "file round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "file missing" `Quick test_file_missing;
    Alcotest.test_case "every flipped byte detected" `Quick test_file_flipped_byte;
    Alcotest.test_case "payload flip is checksum mismatch" `Quick
      test_file_checksum_mismatch_specifically;
    Alcotest.test_case "truncated file detected" `Quick test_file_truncated;
    Alcotest.test_case "bad magic and version" `Quick test_file_bad_magic_and_version;
    Alcotest.test_case "interrupted write preserves previous" `Quick
      test_interrupted_write_preserves_previous;
    Alcotest.test_case "codec adversarial length prefixes" `Quick
      test_codec_adversarial_lengths;
    Alcotest.test_case "fault action hook" `Quick test_fault_action;
    Alcotest.test_case "fault corrupt bit flip" `Quick test_fault_corrupt_bit_flip;
    Alcotest.test_case "fault corrupt truncate" `Quick test_fault_corrupt_truncate;
    Alcotest.test_case "crash between rename and dirsync" `Quick
      test_crash_between_rename_and_dirsync;
    Alcotest.test_case "stale temps swept by next write" `Quick test_stale_temps_swept;
    Alcotest.test_case "corrupt helper detected by container" `Quick
      test_corrupt_helper_detected_by_container;
    Alcotest.test_case "store rotation and generations" `Quick
      test_store_rotation_and_generations;
    Alcotest.test_case "store fallback quarantines corrupt newest" `Quick
      test_store_fallback_quarantines;
    Alcotest.test_case "store all generations corrupt" `Quick test_store_all_corrupt;
    Alcotest.test_case "store sweeps stale temps on open" `Quick
      test_store_sweeps_stale_temps_on_open;
    Alcotest.test_case "store quarantine retention sweep" `Quick
      test_store_quarantine_sweep;
  ]
