(* Randomized kill/corrupt recovery matrix (CI's long-haul harness, also
   runnable by hand: `fault_matrix --seed 7 --rounds 10`).

   Each round kills a checkpointed synthesis run at a random step, corrupts
   a random subset of the surviving checkpoint generations (random bit
   flips or truncations — always leaving at least one generation intact),
   optionally kills the resumed run too, and then demands that the final
   recovered result be bit-identical to the uninterrupted reference run:
   same edges, same counters, same energy bit patterns, same trace, same
   spent budget.  Exits 1 on the first mismatch. *)

module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Persist = Wpinq_persist.Persist
module Fault = Persist.Fault
module W = Wpinq_infer.Workflow
module Mcmc = Wpinq_infer.Mcmc

let steps = 1500
let every = 300
let trace_every = 500
let keep = 3
let failures = ref 0

let check name cond =
  if not cond then begin
    Printf.eprintf "FAIL: %s\n%!" name;
    incr failures
  end

let check_bits name a b = check name (Int64.bits_of_float a = Int64.bits_of_float b)

let check_result round (expect : W.result) (got : W.result) =
  let name what = Printf.sprintf "round %d: %s" round what in
  check (name "synthetic edges")
    (Graph.edges expect.W.synthetic = Graph.edges got.W.synthetic);
  check (name "seed edges") (Graph.edges expect.W.seed = Graph.edges got.W.seed);
  let es = expect.W.stats and gs = got.W.stats in
  check (name "steps") (es.Mcmc.steps = gs.Mcmc.steps);
  check (name "accepted") (es.Mcmc.accepted = gs.Mcmc.accepted);
  check (name "invalid") (es.Mcmc.invalid = gs.Mcmc.invalid);
  check (name "not interrupted") (not gs.Mcmc.interrupted);
  check_bits (name "final energy") es.Mcmc.final_energy gs.Mcmc.final_energy;
  check (name "trace length") (List.length expect.W.trace = List.length got.W.trace);
  List.iter2
    (fun (e : W.trace_point) (g : W.trace_point) ->
      check (name "trace step") (e.W.step = g.W.step);
      check (name "trace triangles") (e.W.triangles = g.W.triangles);
      check_bits (name "trace energy") e.W.energy g.W.energy)
    expect.W.trace got.W.trace;
  check_bits (name "total epsilon") expect.W.total_epsilon got.W.total_epsilon

let with_store_dir f =
  let dir = Filename.temp_file "wpinq_matrix" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let synthesize ?jobs store =
  W.synthesize ?jobs ~steps ~trace_every ~pow:100.0
    ~checkpoint:{ W.every; sink = W.Store store }
    ~rng:(Prng.create 123) ~epsilon:0.5 ~query:(Some W.Tbi)
    ~secret:(Gen.clustered ~n:40 ~community:8 ~p_in:0.7 ~extra:20 (Prng.create 5))
    ()

let random_corruption st size =
  if Random.State.bool st then Fault.Bit_flip (Random.State.int st (8 * size))
  else Fault.Truncate_at (Random.State.int st size)

let round st round =
  with_store_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep dir in
      (* Kill after at least one generation exists (first snapshot lands at
         step [every]). *)
      let kill_at = every + 1 + Random.State.int st (steps - every - 1) in
      Fault.arm ~site:"mcmc.step" ~after:kill_at;
      (match synthesize store with
      | exception Fault.Injected _ -> ()
      | _ ->
          Printf.eprintf "round %d: kill at %d never fired\n%!" round kill_at;
          incr failures);
      (* Corrupt a random strict subset of the surviving generations,
         newest-first — the resume must fall back past every one of them. *)
      let gens = Persist.Store.generations store in
      let n_gens = List.length gens in
      check (Printf.sprintf "round %d: generations on disk" round) (n_gens >= 1);
      let n_corrupt = if n_gens <= 1 then 0 else Random.State.int st n_gens in
      List.iteri
        (fun i (_, path) ->
          if i < n_corrupt then
            let size = (Unix.stat path).Unix.st_size in
            Fault.corrupt ~path (random_corruption st size))
        gens;
      (* Sometimes kill the resumed run as well before the final recovery. *)
      let second_kill = ref false in
      let resumed =
        if Random.State.bool st then begin
          Fault.arm ~site:"mcmc.step" ~after:(1 + Random.State.int st 400);
          match W.resume_latest ~store () with
          | exception Fault.Injected _ ->
              second_kill := true;
              None
          | r ->
              Fault.disarm ();
              Some r
        end
        else None
      in
      let got = match resumed with Some r -> r | None -> W.resume_latest ~store () in
      Printf.printf
        "round %d: killed at %d, corrupted %d/%d generation(s)%s — recovered\n%!" round
        kill_at n_corrupt n_gens
        (if !second_kill then ", killed resume too" else "");
      got)

(* Same kill/corrupt drill, but the victim walks with a parallel lookahead
   (--jobs 2) and recovers at yet another width (--jobs 4); the result must
   still be bit-identical to the *serial* uninterrupted reference.  Faults
   only fire at lookahead-batch boundaries, and the "mcmc.step" site fires
   once per batch: at jobs=2 a batch consumes up to 2 steps, so over
   [steps] steps the site fires at least [steps/2] times.  The kill is
   armed inside that budget, past the first checkpoint. *)
let multicore_round st round =
  with_store_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep dir in
      let kill_at = every + 1 + Random.State.int st ((steps / 2) - (2 * every)) in
      Fault.arm ~site:"mcmc.step" ~after:kill_at;
      (match synthesize ~jobs:2 store with
      | exception Fault.Injected _ -> ()
      | _ ->
          Printf.eprintf "round %d: multicore kill at batch %d never fired\n%!" round kill_at;
          incr failures);
      let gens = Persist.Store.generations store in
      let n_gens = List.length gens in
      check (Printf.sprintf "round %d: generations on disk" round) (n_gens >= 1);
      let n_corrupt = if n_gens <= 1 then 0 else Random.State.int st n_gens in
      List.iteri
        (fun i (_, path) ->
          if i < n_corrupt then
            let size = (Unix.stat path).Unix.st_size in
            Fault.corrupt ~path (random_corruption st size))
        gens;
      let got = W.resume_latest ~jobs:4 ~store () in
      Printf.printf
        "round %d: jobs=2 killed at batch %d, corrupted %d/%d generation(s), jobs=4 \
         recovery — recovered\n\
         %!"
        round kill_at n_corrupt n_gens;
      got)

let () =
  let seed = ref 1 and rounds = ref 5 in
  Arg.parse
    [
      ("--seed", Arg.Set_int seed, "N  master seed for the randomized matrix (default 1)");
      ("--rounds", Arg.Set_int rounds, "N  kill/corrupt rounds to run (default 5)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fault_matrix [--seed N] [--rounds N]";
  let st = Random.State.make [| !seed |] in
  let reference = with_store_dir (fun dir -> synthesize (Persist.Store.open_dir ~keep dir)) in
  for r = 1 to !rounds do
    check_result r reference (round st r)
  done;
  check_result (!rounds + 1) reference (multicore_round st (!rounds + 1));
  if !failures > 0 then begin
    Printf.eprintf "%d mismatch(es) against the uninterrupted reference\n%!" !failures;
    exit 1
  end;
  Printf.printf "all %d rounds (plus 1 multicore) recovered bit-identically (seed %d)\n%!"
    !rounds !seed
