(* Randomized kill/corrupt recovery matrix (CI's long-haul harness, also
   runnable by hand: `fault_matrix --seed 7 --rounds 10`).

   Each round kills a checkpointed synthesis run at a random step, corrupts
   a random subset of the surviving checkpoint generations (random bit
   flips or truncations — always leaving at least one generation intact),
   optionally kills the resumed run too, and then demands that the final
   recovered result be bit-identical to the uninterrupted reference run:
   same edges, same counters, same energy bit patterns, same trace, same
   spent budget.  Exits 1 on the first mismatch. *)

module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Persist = Wpinq_persist.Persist
module Fault = Persist.Fault
module W = Wpinq_infer.Workflow
module Mcmc = Wpinq_infer.Mcmc
module Ledger = Wpinq_service.Ledger
module Event = Wpinq_stream.Event
module Sup = Wpinq_stream.Supervisor

let steps = 1500
let every = 300
let trace_every = 500
let keep = 3
let failures = ref 0

let check name cond =
  if not cond then begin
    Printf.eprintf "FAIL: %s\n%!" name;
    incr failures
  end

let check_bits name a b = check name (Int64.bits_of_float a = Int64.bits_of_float b)

let check_result round (expect : W.result) (got : W.result) =
  let name what = Printf.sprintf "round %d: %s" round what in
  check (name "synthetic edges")
    (Graph.edges expect.W.synthetic = Graph.edges got.W.synthetic);
  check (name "seed edges") (Graph.edges expect.W.seed = Graph.edges got.W.seed);
  let es = expect.W.stats and gs = got.W.stats in
  check (name "steps") (es.Mcmc.steps = gs.Mcmc.steps);
  check (name "accepted") (es.Mcmc.accepted = gs.Mcmc.accepted);
  check (name "invalid") (es.Mcmc.invalid = gs.Mcmc.invalid);
  check (name "not interrupted") (not gs.Mcmc.interrupted);
  check_bits (name "final energy") es.Mcmc.final_energy gs.Mcmc.final_energy;
  check (name "trace length") (List.length expect.W.trace = List.length got.W.trace);
  List.iter2
    (fun (e : W.trace_point) (g : W.trace_point) ->
      check (name "trace step") (e.W.step = g.W.step);
      check (name "trace triangles") (e.W.triangles = g.W.triangles);
      check_bits (name "trace energy") e.W.energy g.W.energy)
    expect.W.trace got.W.trace;
  check_bits (name "total epsilon") expect.W.total_epsilon got.W.total_epsilon

let with_store_dir f =
  let dir = Filename.temp_file "wpinq_matrix" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let synthesize ?jobs ?width store =
  W.synthesize ?jobs ?width ~steps ~trace_every ~pow:100.0
    ~checkpoint:{ W.every; sink = W.Store store }
    ~rng:(Prng.create 123) ~epsilon:0.5 ~query:(Some W.Tbi)
    ~secret:(Gen.clustered ~n:40 ~community:8 ~p_in:0.7 ~extra:20 (Prng.create 5))
    ()

let random_corruption st size =
  if Random.State.bool st then Fault.Bit_flip (Random.State.int st (8 * size))
  else Fault.Truncate_at (Random.State.int st size)

let round st round =
  with_store_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep dir in
      (* Kill after at least one generation exists (first snapshot lands at
         step [every]). *)
      let kill_at = every + 1 + Random.State.int st (steps - every - 1) in
      Fault.arm ~site:"mcmc.step" ~after:kill_at;
      (match synthesize store with
      | exception Fault.Injected _ -> ()
      | _ ->
          Printf.eprintf "round %d: kill at %d never fired\n%!" round kill_at;
          incr failures);
      (* Corrupt a random strict subset of the surviving generations,
         newest-first — the resume must fall back past every one of them. *)
      let gens = Persist.Store.generations store in
      let n_gens = List.length gens in
      check (Printf.sprintf "round %d: generations on disk" round) (n_gens >= 1);
      let n_corrupt = if n_gens <= 1 then 0 else Random.State.int st n_gens in
      List.iteri
        (fun i (_, path) ->
          if i < n_corrupt then
            let size = (Unix.stat path).Unix.st_size in
            Fault.corrupt ~path (random_corruption st size))
        gens;
      (* Sometimes kill the resumed run as well before the final recovery. *)
      let second_kill = ref false in
      let resumed =
        if Random.State.bool st then begin
          Fault.arm ~site:"mcmc.step" ~after:(1 + Random.State.int st 400);
          match W.resume_latest ~store () with
          | exception Fault.Injected _ ->
              second_kill := true;
              None
          | r ->
              Fault.disarm ();
              Some r
        end
        else None
      in
      let got = match resumed with Some r -> r | None -> W.resume_latest ~store () in
      Printf.printf
        "round %d: killed at %d, corrupted %d/%d generation(s)%s — recovered\n%!" round
        kill_at n_corrupt n_gens
        (if !second_kill then ", killed resume too" else "");
      got)

(* Same kill/corrupt drill, but the victim walks with a parallel lookahead
   (--jobs 2) and recovers at yet another width (--jobs 4); the result must
   still be bit-identical to the *serial* uninterrupted reference.  Faults
   only fire at lookahead-batch boundaries, and the "mcmc.step" site fires
   once per batch: a batch consumes between 1 and [max_consumed] steps
   (2 for fixed jobs=2; the max_width for an adaptive policy), so over
   [steps] steps the site fires at least [steps / max_consumed] times —
   the kill budget.  Each firing also completes at least one step, so any
   kill past [every] firings lands after the first checkpoint generation.
   The adaptive variant ([width = Adaptive]) kills mid-walk while the
   realized K is swinging between 1 and max_width, which exercises
   batch-aligned snapshots under every batch shape the controller can
   produce. *)
let multicore_round ?width ~max_consumed ~label st round =
  with_store_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep dir in
      let budget = (steps / max_consumed) - every - 5 in
      assert (budget > 0);
      let kill_at = every + 1 + Random.State.int st budget in
      Fault.arm ~site:"mcmc.step" ~after:kill_at;
      (match synthesize ~jobs:2 ?width store with
      | exception Fault.Injected _ -> ()
      | _ ->
          Printf.eprintf "round %d: %s kill at batch %d never fired\n%!" round label kill_at;
          incr failures);
      let gens = Persist.Store.generations store in
      let n_gens = List.length gens in
      check (Printf.sprintf "round %d: generations on disk" round) (n_gens >= 1);
      let n_corrupt = if n_gens <= 1 then 0 else Random.State.int st n_gens in
      List.iteri
        (fun i (_, path) ->
          if i < n_corrupt then
            let size = (Unix.stat path).Unix.st_size in
            Fault.corrupt ~path (random_corruption st size))
        gens;
      let got = W.resume_latest ~jobs:4 ?width ~store () in
      Printf.printf
        "round %d: %s killed at batch %d, corrupted %d/%d generation(s), jobs=4 recovery \
         — recovered\n\
         %!"
        round label kill_at n_corrupt n_gens;
      got)

(* ---------------- the budget-ledger arm of the matrix ----------------

   A scripted mixed-tenant run (one root, four delegated tenants, a
   deterministic escrow/commit/release stream) killed at every WAL and
   atomic-layer fault-injection site, then recovered.  After every
   kill/corrupt/recover cycle the books must satisfy, for every tenant,

     spent + committed <= allocated   (zero overspend)

   and every *acknowledged* commit — one whose [Ledger.commit] returned
   [Ok] before the kill — must still be counted in the recovered spent
   (an fsynced acknowledgment is durable).  Clean runs must replay
   bit-identically against an in-memory serial reference. *)

let ledger_ops = 160

(* The deterministic program.  [acks] accumulates per-tenant ε whose
   commit was acknowledged — the durability obligation. *)
let ledger_program ?acks l rng =
  let note tenant cost =
    match acks with
    | None -> ()
    | Some h ->
        Hashtbl.replace h tenant
          (cost +. Option.value (Hashtbl.find_opt h tenant) ~default:0.0)
  in
  (match Ledger.create_root l ~tenant:"root" ~allocated:8.0 with
  | Ok () | Error _ -> ());
  for i = 0 to 3 do
    ignore
      (Ledger.delegate l ~parent:"root" ~tenant:(Printf.sprintf "a%d" i) ~allocated:1.5)
  done;
  let open_ids = ref [] in
  for _ = 1 to ledger_ops do
    let tenant = Printf.sprintf "a%d" (Prng.int rng 4) in
    match Prng.int rng 4 with
    | 0 | 1 -> (
        let cost = 0.01 *. float_of_int (1 + Prng.int rng 10) in
        match Ledger.escrow l ~tenant ~cost ~label:"q" with
        | Ok id -> open_ids := (id, tenant, cost) :: !open_ids
        | Error _ -> ())
    | 2 -> (
        match !open_ids with
        | (id, tenant, cost) :: rest ->
            (match Ledger.commit l id with Ok () -> note tenant cost | Error _ -> ());
            open_ids := rest
        | [] -> ())
    | _ -> (
        match !open_ids with
        | (id, _, _) :: rest ->
            ignore (Ledger.release l id);
            open_ids := rest
        | [] -> ())
  done;
  List.iter
    (fun (id, tenant, cost) ->
      match Ledger.commit l id with Ok () -> note tenant cost | Error _ -> ())
    !open_ids

(* Recovery may itself be killed by a still-armed fault (that, too, is a
   crash point); a real operator would simply restart, so we do. *)
let rec recover_with_retry dir =
  match Ledger.open_dir dir with
  | exception Fault.Injected _ ->
      Fault.disarm ();
      recover_with_retry dir
  | opened -> opened

let check_books name l ~acks =
  (match Ledger.overspend l with
  | [] -> ()
  | (tenant, excess) :: _ ->
      check (Printf.sprintf "%s: ZERO overspend (%s over by %.12g)" name tenant excess) false);
  check (name ^ ": no escrow survives recovery open") (Ledger.open_escrows l = 0);
  match acks with
  | None -> ()
  | Some h ->
      Hashtbl.iter
        (fun tenant eps ->
          match Ledger.spent l ~tenant with
          | Some s ->
              check
                (Printf.sprintf "%s: acknowledged ε durable for %s (%.6g >= %.6g)" name
                   tenant s eps)
                (s +. 1e-9 >= eps)
          | None -> check (name ^ ": tenant " ^ tenant ^ " survives recovery") false)
        h

(* Recovery must also be *stable*: recovering the recovered state is the
   identity, bit for bit. *)
let check_recovery_stable name dir first_dump =
  let l, recovery = recover_with_retry dir in
  check (name ^ ": recovery is idempotent") (Ledger.dump l = first_dump);
  check (name ^ ": nothing left in doubt on second open")
    (recovery.Ledger.charged_on_doubt = 0);
  Ledger.close l

let ledger_armed_round st r site =
  with_store_dir (fun dir ->
      let acks = Hashtbl.create 8 in
      let after =
        match site with
        | "wal.append" | "wal.fsync" -> 1 + Random.State.int st 80
        | "wal.replay" -> 1 + Random.State.int st 30
        | "wal.compact" | "wal.reset" -> 1 + Random.State.int st 3
        | _ -> 1 + Random.State.int st 6 (* atomic.* fire twice per compaction *)
      in
      let killed =
        if String.equal site "wal.replay" then begin
          (* This site only fires while parsing the journal on open: run
             the program cleanly, then kill the *recovery*. *)
          let l, _ = Ledger.open_dir ~compact_every:8 dir in
          ledger_program ~acks l (Prng.create ((1000 * r) + 7));
          Ledger.close l;
          Fault.arm ~site ~after;
          true
        end
        else begin
          Fault.arm ~site ~after;
          match
            let l, _ = Ledger.open_dir ~compact_every:8 dir in
            ledger_program ~acks l (Prng.create ((1000 * r) + 7))
            (* Simulated kill: the live ledger is abandoned un-closed. *)
          with
          | () -> false
          | exception Fault.Injected _ -> true
        end
      in
      let l, _recovery = recover_with_retry dir in
      let name = Printf.sprintf "round %d [%s after %d]" r site after in
      check_books name l ~acks:(Some acks);
      let dump = Ledger.dump l in
      Ledger.close l;
      check_recovery_stable name dir dump;
      Printf.printf "%s: %s — books safe\n%!" name
        (if killed then "killed and recovered" else "fault never fired (clean finish)"))

let ledger_corrupt_round st r =
  with_store_dir (fun dir ->
      let l, _ = Ledger.open_dir ~compact_every:8 dir in
      ledger_program l (Prng.create ((500 * r) + 3));
      Ledger.close l;
      (* Bit rot over a random non-empty subset of the durable artifacts:
         the journal and any snapshot generation are all fair game (even
         all of them at once — recovery must never overspend, whatever
         survives). *)
      let targets =
        Filename.concat dir "wal.log"
        :: (Array.to_list (Sys.readdir dir)
           |> List.filter (fun n -> Filename.check_suffix n ".wpq")
           |> List.map (Filename.concat dir))
      in
      let n = 1 + Random.State.int st (List.length targets) in
      let victims = List.filteri (fun i _ -> i < n) targets in
      List.iter
        (fun path ->
          let size = max 1 (Unix.stat path).Unix.st_size in
          Fault.corrupt ~path (random_corruption st size))
        victims;
      let l', _recovery = recover_with_retry dir in
      let name = Printf.sprintf "corrupt round %d (%d/%d artifacts)" r n (List.length targets) in
      check_books name l' ~acks:None;
      let dump = Ledger.dump l' in
      Ledger.close l';
      check_recovery_stable name dir dump;
      Printf.printf "%s — books safe\n%!" name)

let ledger_clean_round r =
  with_store_dir (fun dir ->
      let mem = Ledger.create_in_memory () in
      let dur, _ = Ledger.open_dir ~compact_every:8 dir in
      let seed = (77 * r) + 5 in
      ledger_program mem (Prng.create seed);
      ledger_program dur (Prng.create seed);
      let name = Printf.sprintf "clean round %d" r in
      check (name ^ ": durable run matches in-memory serial reference")
        (Ledger.dump dur = Ledger.dump mem);
      check_books name dur ~acks:None;
      let live = Ledger.dump dur in
      Ledger.close dur;
      let dur', recovery = recover_with_retry dir in
      check (name ^ ": clean replay is bit-identical") (Ledger.dump dur' = live);
      check (name ^ ": nothing charged on doubt") (recovery.Ledger.charged_on_doubt = 0);
      Ledger.close dur';
      Printf.printf "%s — serial reference matched\n%!" name)

let ledger_sites =
  [
    "wal.append";
    "wal.fsync";
    "wal.compact";
    "wal.reset";
    "wal.replay";
    "atomic.write";
    "atomic.fsync";
    "atomic.rename";
    "atomic.dirsync";
  ]

let ledger_matrix st ~rounds =
  for r = 1 to max 1 (rounds / 2) do
    ledger_clean_round r
  done;
  List.iteri
    (fun i site ->
      for k = 1 to rounds do
        ledger_armed_round st ((i * rounds) + k) site
      done)
    ledger_sites;
  for r = 1 to rounds do
    ledger_corrupt_round st r
  done

(* ---------------- the continual-observation arm ----------------

   A scripted three-epoch stream (arrivals building a clustered secret,
   then two rounds of churn) killed at every journal, checkpoint, and
   walk fault site mid-stream, then recovered and re-run.  The harness
   plays an at-least-once client: a submit whose acknowledgment the kill
   swallowed is re-submitted only if it provably never became durable
   (the head sequence did not advance), and a tick whose settle was
   already journalled is not repeated.  After every round the recovered
   stream's outcomes, released graphs, protected edge set, and budget
   books must be bit-identical to the uninterrupted reference — and the
   schedule must show zero overspend. *)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let with_tree_dir f =
  let dir = Filename.temp_file "wpinq_stream_matrix" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      remove_tree dir)
    (fun () -> f dir)

let stream_cfg () =
  Sup.config ~steps:300 ~pow:100.0 ~checkpoint_every:100 ~trace_every:100 ~per_epoch:2.0
    ~epochs:3 ~seed:3 ()

let stream_phases =
  lazy
    (let ev ?(op = Event.Arrive) t u v = Event.make ~time:(float_of_int t) ~op ~u ~v in
     let base =
       Graph.edges (Gen.clustered ~n:24 ~community:6 ~p_in:0.8 ~extra:10 (Prng.create 9))
     in
     let u0, v0 = List.nth base 0 in
     let phase1 = List.mapi (fun i (u, v) -> ev (i + 1) u v) base in
     let phase2 =
       [ ev 1001 u0 v0 ~op:Event.Depart; ev 1002 0 23; ev 1003 3 21; ev 1004 5 19 ]
     in
     let phase3 = [ ev 2001 5 19 ~op:Event.Depart; ev 2002 7 22; ev 2003 2 18 ] in
     [ phase1; phase2; phase3 ])

type stream_state = {
  s_outcomes : Sup.outcome list;
  s_synthetic : (int * int) list option;
  s_edges : (int * int) list;
  s_books : Sup.Schedule.books;
  s_consumed : int;
  s_overspend : float;
}

let stream_state sup =
  {
    s_outcomes = Sup.outcomes sup;
    s_synthetic = Option.map Graph.edges (Sup.synthetic sup);
    s_edges = Sup.protected_edges sup;
    s_books = Sup.books sup;
    s_consumed = Sup.consumed sup;
    s_overspend = Sup.overspend sup;
  }

let check_stream_state name (expect : stream_state) (got : stream_state) =
  check (name ^ ": outcomes bit-identical") (got.s_outcomes = expect.s_outcomes);
  check (name ^ ": released synthetic identical") (got.s_synthetic = expect.s_synthetic);
  check (name ^ ": acknowledged events all applied") (got.s_edges = expect.s_edges);
  check (name ^ ": budget books identical") (got.s_books = expect.s_books);
  check (name ^ ": stream position identical") (got.s_consumed = expect.s_consumed);
  check (name ^ ": ZERO budget overspend") (got.s_overspend = 0.0)

let stream_reference () =
  with_tree_dir (fun dir ->
      let sup, _ = Sup.open_dir ~config:(stream_cfg ()) dir in
      List.iter
        (fun phase ->
          List.iter (fun e -> ignore (Sup.submit sup e)) phase;
          ignore (Sup.tick sup))
        (Lazy.force stream_phases);
      let state = stream_state sup in
      Sup.close sup;
      state)

let stream_armed_round st r site reference =
  with_tree_dir (fun dir ->
      let cfg = stream_cfg () in
      let rec reopen () =
        match Sup.open_dir ~config:cfg dir with
        | sup, _ -> sup
        | exception Fault.Injected _ ->
            Fault.disarm ();
            reopen ()
      in
      let sup = ref (reopen ()) in
      let killed = ref false in
      let submit_safe e =
        let h0 = Sup.head !sup in
        try ignore (Sup.submit !sup e)
        with Fault.Injected _ ->
          killed := true;
          Fault.disarm ();
          sup := reopen ();
          (* At-least-once client: re-submit only if the acknowledgment
             provably never became durable. *)
          if Sup.head !sup = h0 then ignore (Sup.submit !sup e)
      in
      let tick_safe () =
        let before = List.length (Sup.outcomes !sup) in
        let rec go () =
          try ignore (Sup.tick !sup)
          with Fault.Injected _ ->
            killed := true;
            Fault.disarm ();
            sup := reopen ();
            (* A kill in the settle window can land after the outcome is
               durable; only an unsettled epoch is ticked again. *)
            if List.length (Sup.outcomes !sup) <= before then go ()
        in
        go ()
      in
      let after =
        match site with
        | "stream.append" | "stream.fsync" -> 1 + Random.State.int st 40
        | "mcmc.step" -> 50 + Random.State.int st 500
        | "epoch.append" | "epoch.fsync" | "epoch.compact" | "epoch.reset" ->
            1 + Random.State.int st 5
        | _ -> 1 + Random.State.int st 12 (* atomic.*: fire on every durable write *)
      in
      Fault.arm ~site ~after;
      List.iter
        (fun phase ->
          List.iter submit_safe phase;
          tick_safe ())
        (Lazy.force stream_phases);
      Fault.disarm ();
      (* Read the final state through a fresh open: recovery of the
         recovered state must be the identity. *)
      Sup.close !sup;
      let sup', _ = Sup.open_dir ~config:cfg dir in
      let name = Printf.sprintf "stream round %d [%s after %d]" r site after in
      check_stream_state name reference (stream_state sup');
      Sup.close sup';
      Printf.printf "%s: %s — stream bit-identical\n%!" name
        (if !killed then "killed and recovered" else "fault never fired (clean finish)"))

let stream_corrupt_round st r reference =
  with_tree_dir (fun dir ->
      let cfg = stream_cfg () in
      let sup, _ = Sup.open_dir ~config:cfg dir in
      let phases = Lazy.force stream_phases in
      (* Two clean epochs, then a kill mid-walk in the third. *)
      List.iteri
        (fun i phase ->
          List.iter (fun e -> ignore (Sup.submit sup e)) phase;
          if i < 2 then ignore (Sup.tick sup))
        phases;
      Fault.arm ~site:"mcmc.step" ~after:(50 + Random.State.int st 200);
      (match Sup.tick sup with
      | exception Fault.Injected _ -> ()
      | _ -> check (Printf.sprintf "stream corrupt round %d: kill fired" r) false);
      Fault.disarm ();
      (* Bit rot while the process is down.  Every fit checkpoint is fair
         game — even all of them, since the epoch re-derives
         deterministically from its measurement — but each journal keeps
         at least one valid snapshot generation (recovery falls back past
         the corrupt ones and replays the retained records). *)
      let corrupt_subset ~strict dirpath =
        if Sys.file_exists dirpath then begin
          let gens =
            Sys.readdir dirpath |> Array.to_list
            |> List.filter (fun n -> Filename.check_suffix n ".wpq")
            |> List.map (Filename.concat dirpath)
          in
          let n_gens = List.length gens in
          let n =
            if strict then if n_gens <= 1 then 0 else Random.State.int st n_gens
            else Random.State.int st (n_gens + 1)
          in
          List.iteri
            (fun i path ->
              if i < n then
                let size = max 1 (Unix.stat path).Unix.st_size in
                Fault.corrupt ~path (random_corruption st size))
            gens;
          n
        end
        else 0
      in
      let n_fit = corrupt_subset ~strict:false (Filename.concat dir "fit-2") in
      let n_epochs = corrupt_subset ~strict:true (Filename.concat dir "epochs") in
      let n_events = corrupt_subset ~strict:true (Filename.concat dir "events") in
      let sup', _ = Sup.open_dir ~config:cfg dir in
      ignore (Sup.tick sup');
      let name =
        Printf.sprintf "stream corrupt round %d (%d fit, %d epoch, %d event snapshots)" r
          n_fit n_epochs n_events
      in
      check_stream_state name reference (stream_state sup');
      Sup.close sup';
      Printf.printf "%s — stream bit-identical\n%!" name)

let stream_sites =
  [
    "stream.append";
    "stream.fsync";
    "epoch.append";
    "epoch.fsync";
    "epoch.compact";
    "epoch.reset";
    "mcmc.step";
    "atomic.write";
    "atomic.rename";
  ]

let stream_matrix st ~rounds =
  let reference = stream_reference () in
  List.iteri
    (fun i site ->
      for k = 1 to rounds do
        stream_armed_round st ((i * rounds) + k) site reference
      done)
    stream_sites;
  for r = 1 to rounds do
    stream_corrupt_round st r reference
  done

let () =
  let seed = ref 1 and rounds = ref 5 in
  let ledger_only = ref false and mcmc_only = ref false and stream_only = ref false in
  Arg.parse
    [
      ("--seed", Arg.Set_int seed, "N  master seed for the randomized matrix (default 1)");
      ("--rounds", Arg.Set_int rounds, "N  kill/corrupt rounds to run (default 5)");
      ("--ledger-only", Arg.Set ledger_only, "  run only the budget-ledger arm");
      ("--mcmc-only", Arg.Set mcmc_only, "  run only the synthesis-checkpoint arm");
      ("--stream-only", Arg.Set stream_only, "  run only the continual-observation arm");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fault_matrix [--seed N] [--rounds N] [--ledger-only | --mcmc-only | --stream-only]";
  let st = Random.State.make [| !seed |] in
  if !stream_only then stream_matrix st ~rounds:!rounds
  else begin
    if not !ledger_only then begin
      let reference =
        with_store_dir (fun dir -> synthesize (Persist.Store.open_dir ~keep dir))
      in
      for r = 1 to !rounds do
        check_result r reference (round st r)
      done;
      check_result (!rounds + 1) reference
        (multicore_round ~max_consumed:2 ~label:"jobs=2 fixed" st (!rounds + 1));
      check_result (!rounds + 2) reference
        (multicore_round
           ~width:(Mcmc.Adaptive { max_width = 4 })
           ~max_consumed:4 ~label:"jobs=2 adaptive" st (!rounds + 2))
    end;
    if not !mcmc_only then ledger_matrix st ~rounds:!rounds;
    if not !ledger_only && not !mcmc_only then stream_matrix st ~rounds:!rounds
  end;
  if !failures > 0 then begin
    Printf.eprintf "%d failure(s) across the matrix\n%!" !failures;
    exit 1
  end;
  Printf.printf "full matrix clean (seed %d)%s%s%s\n%!" !seed
    (if !ledger_only || !stream_only then ""
     else
       Printf.sprintf
         ": %d synthesis rounds (plus 2 multicore: fixed + adaptive) bit-identical"
         !rounds)
    (if !mcmc_only || !stream_only then ""
     else
       Printf.sprintf "; %d ledger arm-point rounds, zero overspend at every site"
         ((List.length ledger_sites * !rounds) + !rounds + max 1 (!rounds / 2)))
    (if !ledger_only || !mcmc_only then ""
     else
       Printf.sprintf
         "; %d stream rounds bit-identical mid-stream, zero overspend"
         ((List.length stream_sites * !rounds) + !rounds))
