module Graph = Wpinq_graph.Graph
module Datasets = Wpinq_data.Datasets
module Microdata = Wpinq_data.Microdata
module Prng = Wpinq_prng.Prng

let test_deterministic () =
  let a = Datasets.load Datasets.grqc and b = Datasets.load Datasets.grqc in
  Alcotest.(check (list (pair int int))) "same graph every time"
    (List.sort compare (Graph.edges a))
    (List.sort compare (Graph.edges b))

let test_profiles () =
  (* Stand-ins must reproduce the qualitative profile of their Table 1 row:
     assortativity sign and a real >> random triangle gap for the
     collaboration graphs; weak (dis)assortativity for Caltech/Epinions. *)
  let check_spec (spec : Datasets.spec) ~min_ratio ~r_low ~r_high =
    let g = Datasets.load spec in
    let rand = Datasets.random_counterpart g in
    let tri = Graph.triangle_count g and tri_r = Graph.triangle_count rand in
    Alcotest.(check bool)
      (Printf.sprintf "%s: triangles %d vs random %d (>= %.1fx)" spec.Datasets.name tri tri_r
         min_ratio)
      true
      (float_of_int tri >= min_ratio *. float_of_int (max tri_r 1));
    let r = Graph.assortativity g in
    Alcotest.(check bool)
      (Printf.sprintf "%s: r=%.3f in [%.2f, %.2f]" spec.Datasets.name r r_low r_high)
      true (r >= r_low && r <= r_high);
    Alcotest.(check (array int))
      (spec.Datasets.name ^ ": random preserves degrees")
      (Graph.degree_sequence_desc g)
      (Graph.degree_sequence_desc rand)
  in
  check_spec Datasets.grqc ~min_ratio:20.0 ~r_low:0.4 ~r_high:0.9;
  check_spec Datasets.hepph ~min_ratio:10.0 ~r_low:0.3 ~r_high:0.8;
  check_spec Datasets.hepth ~min_ratio:20.0 ~r_low:0.1 ~r_high:0.5;
  check_spec Datasets.caltech ~min_ratio:1.1 ~r_low:(-0.2) ~r_high:0.1;
  check_spec Datasets.epinions ~min_ratio:1.3 ~r_low:(-0.2) ~r_high:0.1

let test_scale () =
  let small = Datasets.load ~scale:0.5 Datasets.grqc in
  let full = Datasets.load Datasets.grqc in
  Alcotest.(check bool) "scale shrinks" true
    (Graph.n small < Graph.n full && Graph.n small > Graph.n full / 3)

let test_table3_skew_monotone () =
  (* The BA sweep must reproduce Table 3's monotone growth of dmax and Σd². *)
  let graphs = List.map (fun spec -> Datasets.ba_graph spec) Datasets.table3 in
  let sumd2 = List.map Graph.sum_deg_sq graphs in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "sum d^2 increases with beta" true (increasing sumd2);
  let dmaxes = List.map Graph.dmax graphs in
  Alcotest.(check bool) "dmax grows overall" true
    (List.nth dmaxes 4 > 2 * List.nth dmaxes 0);
  (* Same node and edge counts across the sweep, as in Table 3. *)
  List.iter
    (fun g -> Alcotest.(check int) "n fixed" (Graph.n (List.hd graphs)) (Graph.n g))
    graphs

let test_paper_reference_values () =
  (* The recorded Table 1 values themselves (guards against typos). *)
  Alcotest.(check int) "grqc nodes" 5242 Datasets.grqc.Datasets.paper.Datasets.nodes;
  Alcotest.(check int) "epinions dmax" 3079 Datasets.epinions.Datasets.paper.Datasets.dmax;
  Alcotest.(check int) "hepph triangles" 3_358_499
    Datasets.hepph.Datasets.paper.Datasets.triangles;
  Alcotest.(check int) "table1 size" 5 (List.length Datasets.table1);
  Alcotest.(check int) "table3 size" 5 (List.length Datasets.table3)

let test_microdata_generator () =
  let people = Microdata.generate ~n:2000 (Prng.create 9) in
  Alcotest.(check int) "population size" 2000 (List.length people);
  List.iter
    (fun (p : Microdata.person) ->
      Alcotest.(check bool) "age range" true (p.Microdata.age >= 18 && p.Microdata.age < 100);
      Alcotest.(check bool) "income nonneg" true (p.Microdata.income >= 0.0);
      Alcotest.(check bool) "household range" true
        (p.Microdata.household >= 1 && p.Microdata.household <= 6);
      Alcotest.(check bool) "region valid" true (List.mem p.Microdata.region Microdata.regions))
    people;
  (* Deterministic per seed. *)
  let again = Microdata.generate ~n:2000 (Prng.create 9) in
  Alcotest.(check bool) "deterministic" true (people = again);
  (* Region counts cover everyone; coast is richest on average. *)
  let counts = Microdata.exact_region_counts people in
  Alcotest.(check int) "counts partition" 2000 (List.fold_left (fun a (_, c) -> a + c) 0 counts);
  let mean_of region =
    let members = List.filter (fun p -> p.Microdata.region = region) people in
    Microdata.exact_mean_income members
  in
  List.iter
    (fun r ->
      if r <> "coast" then
        Alcotest.(check bool) ("coast richer than " ^ r) true (mean_of "coast" > mean_of r))
    Microdata.regions

let test_epinions_like () =
  let module Gen = Wpinq_graph.Gen in
  let g = Gen.epinions_like ~n:2000 ~m:12000 (Prng.create 0xe91) in
  Alcotest.(check int) "vertex count" 2000 (Graph.n g);
  Alcotest.(check int) "exact edge count" 12000 (Graph.m g);
  (* Heavy tail: the max degree should dwarf the mean (12), and the
     degree-squared sum should be far above the Erdős–Rényi ballpark. *)
  let degs = Graph.degrees g in
  let dmax = Array.fold_left max 0 degs in
  Alcotest.(check bool) "heavy-tailed dmax" true (dmax > 100);
  (* Deterministic per seed. *)
  let again = Gen.epinions_like ~n:2000 ~m:12000 (Prng.create 0xe91) in
  Alcotest.(check (list (pair int int)))
    "deterministic" (Graph.edges g) (Graph.edges again);
  Alcotest.check_raises "bad exponent"
    (Invalid_argument "Gen.epinions_like: exponent must exceed 1") (fun () ->
      ignore (Gen.epinions_like ~n:10 ~m:5 ~exponent:1.0 (Prng.create 1)))

let test_load_snap () =
  let path = Filename.temp_file "snap" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      (* SNAP style: comments, tabs, directed duplicates, sparse ids,
         self-loop. *)
      output_string oc "# Directed graph: toy\n# FromNodeId\tToNodeId\n";
      output_string oc "10\t20\n20\t10\n10\t30\n30\t30\n40 10\n";
      close_out oc;
      let g = Datasets.load_snap path in
      Alcotest.(check int) "dense remap" 4 (Graph.n g);
      Alcotest.(check int) "undirected dedup, self-loop dropped" 3 (Graph.m g);
      (* Checksum pin: correct digest loads, wrong digest raises. *)
      let md5 = Digest.to_hex (Digest.file path) in
      let g2 = Datasets.load_snap ~md5 path in
      Alcotest.(check int) "checksum ok" 3 (Graph.m g2);
      match Datasets.load_snap ~md5:(String.make 32 '0') path with
      | exception Datasets.Checksum_mismatch _ -> ()
      | _ -> Alcotest.fail "expected Checksum_mismatch")

let suite =
  [
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "epinions-like generator" `Quick test_epinions_like;
    Alcotest.test_case "snap loader" `Quick test_load_snap;
    Alcotest.test_case "qualitative profiles" `Slow test_profiles;
    Alcotest.test_case "scale parameter" `Quick test_scale;
    Alcotest.test_case "table 3 skew" `Slow test_table3_skew_monotone;
    Alcotest.test_case "paper reference values" `Quick test_paper_reference_values;
    Alcotest.test_case "microdata generator" `Quick test_microdata_generator;
  ]
