(* The sharing property test: a multi-target fit over plans lowered through
   ONE shared context must be bit-identical — energies, acceptance decisions,
   final synthetic dataset — to the same fit over unshared per-target
   pipelines, across plain steps (including speculation aborts on rejected
   proposals), a clean audit, and a checkpoint rebase; and the shared
   construction must do measurably less propagation work per step. *)

module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Rewire = Wpinq_graph.Rewire
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Plan = Wpinq_core.Plan
module Measurement = Wpinq_core.Measurement
module Codec = Wpinq_persist.Persist.Codec
module Fault = Wpinq_persist.Persist.Fault
module Dataflow = Wpinq_dataflow.Dataflow
module Fit = Wpinq_infer.Fit
module Mcmc = Wpinq_infer.Mcmc
module W = Wpinq_infer.Workflow
module Qp = Wpinq_queries.Queries.Make (Plan)
module Qb = Wpinq_queries.Queries.Make (Batch)

let check_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Clone a measurement through its checkpoint serialization, so each fit sees
   identical recorded observations AND the same future noise stream. *)
let clone write read m =
  let buf = Buffer.create 1024 in
  Measurement.save write m buf;
  Measurement.load read (Codec.reader (Buffer.contents buf))

let wr_int = Codec.write_int
let rd_int = Codec.read_int

let wr_pair buf (a, b) =
  wr_int buf a;
  wr_int buf b

let rd_pair r =
  let a = rd_int r in
  let b = rd_int r in
  (a, b)

let wr_triple buf (a, b, c) =
  wr_int buf a;
  wr_int buf b;
  wr_int buf c

let rd_triple r =
  let a = rd_int r in
  let b = rd_int r in
  let c = rd_int r in
  (a, b, c)

(* Measure degree CCDF + JDD + TbD once against the protected graph; the
   three pipelines share the degree prefix, and JDD/TbD share more. *)
let measure secret =
  let budget = Budget.create ~name:"edges" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let rng = Prng.create 42 in
  let m_ccdf = Batch.noisy_count ~rng ~epsilon:50.0 (Qb.degree_ccdf sym) in
  let m_jdd = Batch.noisy_count ~rng ~epsilon:50.0 (Qb.jdd sym) in
  let m_tbd = Batch.noisy_count ~rng ~epsilon:50.0 (Qb.tbd sym) in
  (m_ccdf, m_jdd, m_tbd)

let clone_all (mc, mj, mt) =
  (clone wr_int rd_int mc, clone wr_pair rd_pair mj, clone wr_triple rd_triple mt)

type setup = { fit : Fit.t; rebase : unit -> unit }

(* One shared plan source: common prefixes become one physical sub-DAG. *)
let shared_setup ~rng_seed ~seed_graph (mc, mj, mt) =
  let source = Plan.source ~name:"sym" () in
  let measured =
    [
      Fit.Measured (Qp.degree_ccdf source, mc);
      Fit.Measured (Qp.jdd source, mj);
      Fit.Measured (Qp.tbd source, mt);
    ]
  in
  let fit =
    Fit.create_shared ~rng:(Prng.create rng_seed) ~seed_graph ~source ~measured ()
  in
  let rebase () =
    Fit.rebuild_shared fit ~n:(Fit.nodes fit) ~edges:(Fit.edge_array fit) ~source
      ~measured
  in
  { fit; rebase }

(* A fresh plan source and a fresh lowering context per target: nothing is
   shared across target boundaries (diamonds *within* one plan still share,
   exactly as a direct let-bound instantiation would). *)
let unshared_setup ~rng_seed ~seed_graph (mc, mj, mt) =
  let target src p m sym =
    let ctx = Flow.Plans.create (Dataflow.engine_of (Flow.node sym)) in
    Flow.Plans.bind ctx src sym;
    Flow.Target.of_plan ctx p m
  in
  let s1 = Plan.source ~name:"sym" () in
  let s2 = Plan.source ~name:"sym" () in
  let s3 = Plan.source ~name:"sym" () in
  let targets =
    [
      target s1 (Qp.degree_ccdf s1) mc;
      target s2 (Qp.jdd s2) mj;
      target s3 (Qp.tbd s3) mt;
    ]
  in
  let fit = Fit.create ~rng:(Prng.create rng_seed) ~seed_graph ~targets () in
  let rebase () =
    Fit.rebuild fit ~n:(Fit.nodes fit) ~edges:(Fit.edge_array fit) ~targets
  in
  { fit; rebase }

let drive fit n = List.init n (fun _ -> (Fit.step ~pow:50.0 fit, Fit.energy fit))

let compare_traces name shared unshared =
  List.iteri
    (fun i ((sa, se), (ua, ue)) ->
      Alcotest.(check bool) (Printf.sprintf "%s: step %d accept" name i) ua sa;
      check_bits (Printf.sprintf "%s: step %d energy" name i) ue se)
    (List.combine shared unshared)

let problem () =
  let secret = Gen.clustered ~n:50 ~community:10 ~p_in:0.7 ~extra:25 (Prng.create 3) in
  let seed = Rewire.randomize secret (Prng.create 4) in
  (seed, measure secret)

let test_bit_identity () =
  let seed, ms = problem () in
  let shared = shared_setup ~rng_seed:7 ~seed_graph:seed (clone_all ms) in
  let unshared = unshared_setup ~rng_seed:7 ~seed_graph:seed (clone_all ms) in
  Alcotest.(check bool) "shared fit reports cross-target sharing" true
    (Dataflow.Engine.nodes_shared (Fit.engine shared.fit)
    > Dataflow.Engine.nodes_shared (Fit.engine unshared.fit));
  check_bits "initial energy" (Fit.energy unshared.fit) (Fit.energy shared.fit);
  (* Plain steps: every rejected proposal exercises speculation abort over
     the shared sub-DAG. *)
  compare_traces "walk" (drive shared.fit 300) (drive unshared.fit 300);
  (* A clean audit is read-only and bit-neutral on both constructions. *)
  let ra = Fit.audit shared.fit and ru = Fit.audit unshared.fit in
  Alcotest.(check int) "shared audit clean" 0
    (List.length ra.Dataflow.Audit.divergences);
  Alcotest.(check int) "unshared audit clean" 0
    (List.length ru.Dataflow.Audit.divergences);
  Alcotest.(check bool) "audit checked cells" true (ra.Dataflow.Audit.cells_checked > 0);
  compare_traces "post-audit" (drive shared.fit 100) (drive unshared.fit 100);
  (* Checkpoint rebase: rebuild both engines in place from their own edge
     arrays — the same deterministic path a resume takes — and keep walking. *)
  shared.rebase ();
  unshared.rebase ();
  check_bits "energy after rebase" (Fit.energy unshared.fit) (Fit.energy shared.fit);
  Alcotest.(check bool) "rebased fit still shares" true
    (Dataflow.Engine.nodes_shared (Fit.engine shared.fit) > 0);
  compare_traces "post-rebase" (drive shared.fit 300) (drive unshared.fit 300);
  Alcotest.(check (array (pair int int)))
    "final edge arrays identical"
    (Fit.edge_array unshared.fit) (Fit.edge_array shared.fit)

(* The point of sharing: same answers, measurably less per-step work. *)
let test_shared_propagates_less () =
  let seed, ms = problem () in
  let shared = shared_setup ~rng_seed:9 ~seed_graph:seed (clone_all ms) in
  let unshared = unshared_setup ~rng_seed:9 ~seed_graph:seed (clone_all ms) in
  Alcotest.(check bool) "shared builds fewer physical nodes" true
    (Dataflow.Engine.nodes_built (Fit.engine shared.fit)
    < Dataflow.Engine.nodes_built (Fit.engine unshared.fit));
  let propagated setup n =
    let e = Fit.engine setup.fit in
    let before = Dataflow.Engine.records_propagated e in
    ignore (drive setup.fit n);
    Dataflow.Engine.records_propagated e - before
  in
  let ps = propagated shared 200 and pu = propagated unshared 200 in
  Alcotest.(check bool)
    (Printf.sprintf "fewer records propagated (%d < %d)" ps pu)
    true (ps < pu)

(* End-to-end: a multi-query synthesize (TbD + JDD fitted together over
   shared plans) killed mid-walk and resumed from its latest snapshot
   matches the uninterrupted run bit-for-bit. *)
let test_multi_query_checkpoint_resume () =
  let secret = Gen.clustered ~n:40 ~community:8 ~p_in:0.7 ~extra:20 (Prng.create 5) in
  let run path =
    W.synthesize ~steps:1200 ~trace_every:400
      ~checkpoint:{ W.every = 300; sink = W.Single path }
      ~rng:(Prng.create 123) ~epsilon:0.5
      ~query:(Some (W.Tbd 1))
      ~queries:[ W.Jdd ] ~secret ()
  in
  let expect = Test_checkpoint.with_ckpt run in
  (* Seed 3ε plus derived costs: TbD 9ε + JDD 4ε at ε = 0.5. *)
  Helpers.check_close "total epsilon" 8.0 expect.W.total_epsilon;
  Test_checkpoint.with_ckpt (fun path ->
      Fault.arm ~site:"mcmc.step" ~after:700;
      (match run path with
      | exception Fault.Injected "mcmc.step" -> ()
      | _ -> Alcotest.fail "kill at step 700 did not fire");
      Alcotest.(check int) "latest snapshot step" 600 (W.checkpoint_step path);
      let got = W.resume ~path () in
      Test_checkpoint.check_result "multi-query kill/resume" expect got)

let suite =
  [
    Alcotest.test_case "shared = unshared, bit for bit" `Quick test_bit_identity;
    Alcotest.test_case "shared propagates fewer records" `Quick
      test_shared_propagates_less;
    Alcotest.test_case "multi-query checkpoint/resume" `Slow
      test_multi_query_checkpoint_resume;
  ]
