module Ledger = Wpinq_service.Ledger
module Admit = Wpinq_service.Admit
module Prng = Wpinq_prng.Prng

let with_temp_dir f =
  let dir = Filename.temp_file "wpinq_ledger" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun name -> Sys.remove (Filename.concat dir name)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let check_close ?(tol = 1e-9) what expected actual =
  Alcotest.(check (float tol)) what expected actual

let ok what = function
  | Ok v -> v
  | Error r -> Alcotest.failf "%s refused: %s" what (Ledger.refusal_to_string r)

let get what = function Some v -> v | None -> Alcotest.failf "%s: no such tenant" what

(* Every account must satisfy spent + committed <= allocated (+slack) at
   every moment — the escrow invariant the whole subsystem exists to
   enforce. *)
let assert_no_overspend l =
  match Ledger.overspend l with
  | [] -> ()
  | (tenant, excess) :: _ -> Alcotest.failf "overspend: %s by %.12g" tenant excess

(* ---- escrow lifecycle ---- *)

let test_escrow_lifecycle () =
  let l = Ledger.create_in_memory () in
  ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:1.0);
  let id = ok "escrow" (Ledger.escrow l ~tenant:"d" ~cost:0.3 ~label:"q1") in
  check_close "escrow holds committed" 0.3 (get "d" (Ledger.committed l ~tenant:"d"));
  check_close "available shrinks" 0.7 (get "d" (Ledger.available l ~tenant:"d"));
  check_close "nothing spent yet" 0.0 (get "d" (Ledger.spent l ~tenant:"d"));
  Alcotest.(check int) "one open escrow" 1 (Ledger.open_escrows l);
  ok "commit" (Ledger.commit l id);
  check_close "commit moves escrow to spent" 0.3 (get "d" (Ledger.spent l ~tenant:"d"));
  check_close "committed clears" 0.0 (get "d" (Ledger.committed l ~tenant:"d"));
  (* Release: the reservation returns untouched. *)
  let id2 = ok "escrow 2" (Ledger.escrow l ~tenant:"d" ~cost:0.2 ~label:"q2") in
  ok "release" (Ledger.release l id2);
  check_close "release returns to available" 0.7 (get "d" (Ledger.available l ~tenant:"d"));
  (* An escrow settles exactly once. *)
  (match Ledger.commit l id with
  | Error (Ledger.Unknown_escrow i) -> Alcotest.(check int) "settled id" id i
  | _ -> Alcotest.fail "double commit accepted");
  (match Ledger.release l id2 with
  | Error (Ledger.Unknown_escrow _) -> ()
  | _ -> Alcotest.fail "double release accepted");
  assert_no_overspend l

let test_refusals () =
  let l = Ledger.create_in_memory () in
  ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:1.0);
  (* Invalid ε is refused before it can poison the books. *)
  List.iter
    (fun bad ->
      match Ledger.escrow l ~tenant:"d" ~cost:bad ~label:"q" with
      | Error (Ledger.Invalid_epsilon { value; _ }) ->
          Alcotest.(check bool) "refusal names the value" true
            (Int64.bits_of_float value = Int64.bits_of_float bad)
      | _ -> Alcotest.failf "escrow accepted cost %h" bad)
    [ Float.nan; Float.infinity; Float.neg_infinity; -0.5 ];
  (match Ledger.escrow l ~tenant:"ghost" ~cost:0.1 ~label:"q" with
  | Error (Ledger.Unknown_tenant "ghost") -> ()
  | _ -> Alcotest.fail "unknown tenant admitted");
  (match Ledger.create_root l ~tenant:"d" ~allocated:1.0 with
  | Error (Ledger.Duplicate_tenant "d") -> ()
  | _ -> Alcotest.fail "duplicate tenant created");
  (* Atomic refusal: an over-budget escrow reserves nothing. *)
  (match Ledger.escrow l ~tenant:"d" ~cost:1.5 ~label:"q" with
  | Error (Ledger.Insufficient_budget { requested; available; _ }) ->
      check_close "requested" 1.5 requested;
      check_close "available" 1.0 available
  | _ -> Alcotest.fail "overdraw admitted");
  check_close "refusal reserved nothing" 0.0 (get "d" (Ledger.committed l ~tenant:"d"));
  (* Retire is blocked by open escrows... *)
  let id = ok "escrow" (Ledger.escrow l ~tenant:"d" ~cost:0.1 ~label:"q") in
  (match Ledger.retire l ~tenant:"d" with
  | Error (Ledger.Open_escrows { count; _ }) -> Alcotest.(check int) "open count" 1 count
  | _ -> Alcotest.fail "retire with open escrow accepted");
  ok "release" (Ledger.release l id);
  (* ...and by live children. *)
  ok "delegate" (Ledger.delegate l ~parent:"d" ~tenant:"child" ~allocated:0.25);
  (match Ledger.retire l ~tenant:"d" with
  | Error (Ledger.Has_children { children; _ }) ->
      Alcotest.(check (list string)) "children named" [ "child" ] children
  | _ -> Alcotest.fail "retire with live child accepted");
  ok "retire child" (Ledger.retire l ~tenant:"child");
  ok "retire root" (Ledger.retire l ~tenant:"d");
  (* A retired tenant refuses everything. *)
  (match Ledger.escrow l ~tenant:"d" ~cost:0.1 ~label:"q" with
  | Error (Ledger.Retired_tenant "d") -> ()
  | _ -> Alcotest.fail "retired tenant admitted");
  assert_no_overspend l

let test_delegation_and_retire () =
  let l = Ledger.create_in_memory () in
  ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:10.0);
  ok "delegate" (Ledger.delegate l ~parent:"d" ~tenant:"a" ~allocated:4.0);
  (* The delegation is a long-lived escrow on the parent. *)
  check_close "parent committed" 4.0 (get "d" (Ledger.committed l ~tenant:"d"));
  check_close "parent available" 6.0 (get "d" (Ledger.available l ~tenant:"d"));
  (* The parent cannot delegate or spend what it escrowed away. *)
  (match Ledger.delegate l ~parent:"d" ~tenant:"b" ~allocated:7.0 with
  | Error (Ledger.Insufficient_budget _) -> ()
  | _ -> Alcotest.fail "over-delegation accepted");
  let id = ok "child escrow" (Ledger.escrow l ~tenant:"a" ~cost:1.0 ~label:"q") in
  ok "child commit" (Ledger.commit l id);
  ok "retire" (Ledger.retire l ~tenant:"a");
  (* Settlement: spent rolls up, the unspent remainder returns. *)
  check_close "parent spent absorbs child" 1.0 (get "d" (Ledger.spent l ~tenant:"d"));
  check_close "delegation escrow returned" 0.0 (get "d" (Ledger.committed l ~tenant:"d"));
  check_close "parent available restored" 9.0 (get "d" (Ledger.available l ~tenant:"d"));
  Alcotest.(check bool) "child flagged retired" true
    (get "a" (Ledger.view l ~tenant:"a")).Ledger.v_retired;
  assert_no_overspend l

(* ---- durability ---- *)

let test_durable_roundtrip () =
  with_temp_dir (fun dir ->
      let l, rec0 = Ledger.open_dir dir in
      Alcotest.(check int) "fresh dir replays nothing" 0 rec0.Ledger.replayed;
      ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:5.0);
      ok "delegate" (Ledger.delegate l ~parent:"d" ~tenant:"a" ~allocated:2.0);
      let id = ok "escrow" (Ledger.escrow l ~tenant:"a" ~cost:0.7 ~label:"q") in
      ok "commit" (Ledger.commit l id);
      let id2 = ok "escrow" (Ledger.escrow l ~tenant:"a" ~cost:0.4 ~label:"q") in
      ok "release" (Ledger.release l id2);
      let live = Ledger.dump l in
      Ledger.close l;
      let l', recovery = Ledger.open_dir dir in
      (* Bit-for-bit: mutations replay in journal order, so every float
         accumulates identically. *)
      Alcotest.(check bool) "recovered dump is bit-identical" true (Ledger.dump l' = live);
      Alcotest.(check int) "all escrows were settled" 0 recovery.Ledger.charged_on_doubt;
      Alcotest.(check int) "no torn bytes" 0 recovery.Ledger.torn_bytes;
      assert_no_overspend l';
      Ledger.close l')

let test_charge_on_doubt () =
  with_temp_dir (fun dir ->
      let l, _ = Ledger.open_dir dir in
      ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:2.0);
      let _settled =
        let id = ok "escrow" (Ledger.escrow l ~tenant:"d" ~cost:0.25 ~label:"ok") in
        ok "commit" (Ledger.commit l id)
      in
      let _open = ok "escrow" (Ledger.escrow l ~tenant:"d" ~cost:0.5 ~label:"in-flight") in
      (* Crash with the escrow unresolved (close flushes the journal; the
         escrow record is durable, its settlement never happened). *)
      Ledger.close l;
      let l', recovery = Ledger.open_dir dir in
      Alcotest.(check int) "one escrow in doubt" 1 recovery.Ledger.charged_on_doubt;
      check_close "its ε" 0.5 recovery.Ledger.doubt_epsilon;
      (* Charge-on-doubt: we cannot prove the answer did not escape, so
         the ε is treated as spent — never returned. *)
      check_close "doubt charged as spent" 0.75 (get "d" (Ledger.spent l' ~tenant:"d"));
      check_close "no dangling commitment" 0.0 (get "d" (Ledger.committed l' ~tenant:"d"));
      Alcotest.(check int) "no open escrows survive recovery" 0 (Ledger.open_escrows l');
      assert_no_overspend l';
      (* The resolution is durable: a second recovery finds settled books,
         not the same doubt again. *)
      Ledger.close l';
      let l'', recovery2 = Ledger.open_dir dir in
      Alcotest.(check int) "doubt resolved once" 0 recovery2.Ledger.charged_on_doubt;
      check_close "spent unchanged" 0.75 (get "d" (Ledger.spent l'' ~tenant:"d"));
      Ledger.close l'')

let test_compaction_bounds_journal () =
  with_temp_dir (fun dir ->
      let l, _ = Ledger.open_dir ~compact_every:4 dir in
      ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:100.0);
      for i = 1 to 30 do
        let id =
          ok "escrow" (Ledger.escrow l ~tenant:"d" ~cost:0.01 ~label:(string_of_int i))
        in
        if i mod 2 = 0 then ok "commit" (Ledger.commit l id)
        else ok "release" (Ledger.release l id)
      done;
      let live = Ledger.dump l in
      Ledger.close l;
      let snapshots =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun n -> Filename.check_suffix n ".wpq")
      in
      Alcotest.(check bool) "compaction produced snapshot generations" true
        (List.length snapshots >= 1);
      let l', _ = Ledger.open_dir ~compact_every:4 dir in
      Alcotest.(check bool) "recovered through compaction" true (Ledger.dump l' = live);
      assert_no_overspend l';
      Ledger.close l')

let test_torn_tail_trimmed () =
  with_temp_dir (fun dir ->
      let l, _ = Ledger.open_dir dir in
      ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:3.0);
      let id = ok "escrow" (Ledger.escrow l ~tenant:"d" ~cost:1.0 ~label:"q") in
      ok "commit" (Ledger.commit l id);
      let live = Ledger.dump l in
      Ledger.close l;
      (* A crash mid-append leaves a torn record at the tail. *)
      let oc =
        open_out_gen [ Open_append; Open_binary ] 0o644 (Filename.concat dir "wal.log")
      in
      output_string oc "\x42\x00torn garbage";
      close_out oc;
      let l', recovery = Ledger.open_dir dir in
      Alcotest.(check bool) "torn bytes detected" true (recovery.Ledger.torn_bytes > 0);
      Alcotest.(check bool) "state unharmed" true (Ledger.dump l' = live);
      assert_no_overspend l';
      Ledger.close l')

(* ---- property: the invariant under random op sequences ----

   A random serial program against the public API, mirrored onto a
   durable ledger: after every operation no account may be overspent,
   and at the end the durable ledger must recover bit-identically. *)

let random_program l rng ~ops =
  let open_ids = ref [] in
  let tenants = [| "root"; "a"; "b"; "c" |] in
  for _ = 1 to ops do
    let tenant = tenants.(Prng.int rng (Array.length tenants)) in
    (match Prng.int rng 6 with
    | 0 | 1 ->
        let cost = 0.05 *. float_of_int (1 + Prng.int rng 8) in
        (match Ledger.escrow l ~tenant ~cost ~label:"q" with
        | Ok id -> open_ids := id :: !open_ids
        | Error _ -> ())
    | 2 -> (
        match !open_ids with
        | id :: rest ->
            ignore (Ledger.commit l id);
            open_ids := rest
        | [] -> ())
    | 3 -> (
        match !open_ids with
        | id :: rest ->
            ignore (Ledger.release l id);
            open_ids := rest
        | [] -> ())
    | 4 ->
        let child = tenant ^ "-sub" ^ string_of_int (Prng.int rng 3) in
        ignore
          (Ledger.delegate l ~parent:tenant ~tenant:child
             ~allocated:(0.1 *. float_of_int (Prng.int rng 5)))
    | _ -> ignore (Ledger.retire l ~tenant));
    if Ledger.overspend l <> [] then failwith "overspend mid-program"
  done;
  (* Settle the leftovers so the books quiesce. *)
  List.iter (fun id -> ignore (Ledger.release l id)) !open_ids

let prop_serial_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"escrow invariant under random serial programs"
       QCheck.(pair small_nat (int_bound 120))
       (fun (seed, ops) ->
         with_temp_dir (fun dir ->
             let mem = Ledger.create_in_memory () in
             let dur, _ = Ledger.open_dir ~compact_every:16 dir in
             List.iter
               (fun l ->
                 match Ledger.create_root l ~tenant:"root" ~allocated:4.0 with
                 | Ok () -> ()
                 | Error _ -> failwith "root creation refused")
               [ mem; dur ];
             (* The same program (same PRNG stream) runs against both. *)
             random_program mem (Prng.create (seed + 1)) ~ops;
             random_program dur (Prng.create (seed + 1)) ~ops;
             let identical = Ledger.dump mem = Ledger.dump dur in
             let live = Ledger.dump dur in
             Ledger.close dur;
             let dur', recovery = Ledger.open_dir dir in
             let recovered = Ledger.dump dur' = live in
             let clean =
               Ledger.overspend mem = [] && Ledger.overspend dur' = []
               && recovery.Ledger.charged_on_doubt = 0
             in
             Ledger.close dur';
             identical && recovered && clean)))

(* ---- property: the invariant under concurrent interleavings ----

   Several domains hammer one shared ledger with escrow/commit/release
   programs.  Whatever the interleaving, admission control under the
   ledger lock must keep every account within its allocation, and the
   drained books must recover bit-identically from disk. *)

let concurrent_round ~domains ~ops ~seed dir =
  let l, _ = Ledger.open_dir ~compact_every:32 dir in
  ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:6.0);
  for i = 0 to 2 do
    ok "delegate"
      (Ledger.delegate l ~parent:"d" ~tenant:(Printf.sprintf "a%d" i) ~allocated:1.5)
  done;
  let worker k () =
    let rng = Prng.create (seed + (101 * (k + 1))) in
    let mine = ref [] in
    for _ = 1 to ops do
      let tenant = Printf.sprintf "a%d" (Prng.int rng 3) in
      match Prng.int rng 3 with
      | 0 -> (
          let cost = 0.01 *. float_of_int (1 + Prng.int rng 10) in
          match Ledger.escrow l ~tenant ~cost ~label:"q" with
          | Ok id -> mine := id :: !mine
          | Error _ -> ())
      | 1 -> (
          match !mine with
          | id :: rest ->
              ignore (Ledger.commit l id);
              mine := rest
          | [] -> ())
      | _ -> (
          match !mine with
          | id :: rest ->
              ignore (Ledger.release l id);
              mine := rest
          | [] -> ())
    done;
    (* Each domain settles its own leftovers: a well-behaved client. *)
    List.iter (fun id -> ignore (Ledger.commit l id)) !mine
  in
  let spawned = List.init domains (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join spawned;
  assert_no_overspend l;
  Alcotest.(check int) "books quiesced" 0 (Ledger.open_escrows l);
  let live = Ledger.dump l in
  Ledger.close l;
  let l', recovery = Ledger.open_dir dir in
  Alcotest.(check bool) "concurrent run recovers bit-identically" true
    (Ledger.dump l' = live);
  Alcotest.(check int) "nothing left in doubt" 0 recovery.Ledger.charged_on_doubt;
  assert_no_overspend l';
  Ledger.close l'

let test_concurrent_interleavings () =
  List.iter
    (fun seed -> with_temp_dir (concurrent_round ~domains:4 ~ops:50 ~seed))
    [ 3; 17; 52 ]

(* ---- admission control ---- *)

let test_admit_commit_and_failure () =
  let l = Ledger.create_in_memory () in
  ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:1.0);
  let a = Admit.create l in
  (match Admit.submit a ~tenant:"d" ~cost:0.3 ~label:"q" (fun () -> 41 + 1) with
  | Ok v -> Alcotest.(check int) "answer delivered" 42 v
  | Error r -> Alcotest.failf "refused: %s" (Admit.refusal_to_string r));
  check_close "delivered answer charged" 0.3 (get "d" (Ledger.spent l ~tenant:"d"));
  (* A crashing evaluation releases its escrow: the failure costs no ε. *)
  (match Admit.submit a ~tenant:"d" ~cost:0.3 ~label:"boom" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  check_close "failed evaluation refunded" 0.3 (get "d" (Ledger.spent l ~tenant:"d"));
  check_close "no dangling escrow" 0.0 (get "d" (Ledger.committed l ~tenant:"d"));
  (* Refusals surface typed. *)
  (match Admit.submit a ~tenant:"d" ~cost:5.0 ~label:"q" (fun () -> ()) with
  | Error (Admit.Insufficient_budget _) -> ()
  | _ -> Alcotest.fail "overdraw admitted");
  (match Admit.submit a ~tenant:"ghost" ~cost:0.1 ~label:"q" (fun () -> ()) with
  | Error (Admit.Rejected (Ledger.Unknown_tenant _)) -> ()
  | _ -> Alcotest.fail "unknown tenant admitted");
  let s = Admit.stats a in
  Alcotest.(check int) "committed" 1 s.Admit.committed;
  Alcotest.(check int) "released" 1 s.Admit.released;
  Alcotest.(check int) "refused on budget" 1 s.Admit.refused_budget

let test_admit_deadline_discards_late_answer () =
  let l = Ledger.create_in_memory () in
  ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:1.0);
  let a = Admit.create l in
  (match
     Admit.submit a ~tenant:"d" ~cost:0.4 ~timeout:0.02 ~label:"slow" (fun () ->
         Unix.sleepf 0.08;
         "too late")
   with
  | Error (Admit.Timeout { after }) ->
      Alcotest.(check bool) "deadline honoured" true (after >= 0.02)
  | Ok _ -> Alcotest.fail "late answer delivered"
  | Error r -> Alcotest.failf "wrong refusal: %s" (Admit.refusal_to_string r));
  (* The discarded answer never escaped: its escrow returned. *)
  check_close "no ε for an undelivered answer" 0.0 (get "d" (Ledger.spent l ~tenant:"d"));
  check_close "escrow released" 0.0 (get "d" (Ledger.committed l ~tenant:"d"));
  Alcotest.(check int) "counted as timeout" 1 (Admit.stats a).Admit.refused_timeout

let test_admit_backpressure () =
  let l = Ledger.create_in_memory () in
  ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:10.0;);
  (* One evaluation slot, no queue: a second concurrent submission must
     be refused with backpressure, not blocked forever. *)
  let a = Admit.create ~max_per_tenant:1 ~queue_limit:0 l in
  let gate = Stdlib.Atomic.make false in
  let blocker =
    Domain.spawn (fun () ->
        Admit.submit a ~tenant:"d" ~cost:0.1 ~label:"hold" (fun () ->
            while not (Stdlib.Atomic.get gate) do
              Unix.sleepf 0.001
            done;
            "held"))
  in
  let rec wait_in_flight n =
    if Admit.in_flight a < 1 then begin
      if n > 5000 then Alcotest.fail "blocker never admitted";
      Unix.sleepf 0.001;
      wait_in_flight (n + 1)
    end
  in
  wait_in_flight 0;
  (match Admit.submit a ~tenant:"d" ~cost:0.1 ~label:"q" (fun () -> ()) with
  | Error (Admit.Overloaded { limit; _ }) -> Alcotest.(check int) "limit reported" 0 limit
  | _ -> Alcotest.fail "expected backpressure refusal");
  Stdlib.Atomic.set gate true;
  (match Domain.join blocker with
  | Ok "held" -> ()
  | _ -> Alcotest.fail "holder did not settle");
  Alcotest.(check int) "slot freed" 0 (Admit.in_flight a);
  assert_no_overspend l

let test_admit_drain () =
  let l = Ledger.create_in_memory () in
  ok "create_root" (Ledger.create_root l ~tenant:"d" ~allocated:1.0);
  let a = Admit.create l in
  Admit.drain a;
  Alcotest.(check bool) "draining" true (Admit.draining a);
  (match Admit.submit a ~tenant:"d" ~cost:0.1 ~label:"q" (fun () -> ()) with
  | Error Admit.Shutting_down -> ()
  | _ -> Alcotest.fail "admitted during drain");
  Alcotest.(check int) "refusal counted" 1 (Admit.stats a).Admit.refused_shutdown;
  (* Drain is idempotent. *)
  Admit.drain a;
  check_close "nothing spent" 0.0 (get "d" (Ledger.spent l ~tenant:"d"))

let suite =
  [
    Alcotest.test_case "escrow lifecycle" `Quick test_escrow_lifecycle;
    Alcotest.test_case "typed refusals" `Quick test_refusals;
    Alcotest.test_case "delegation and retire" `Quick test_delegation_and_retire;
    Alcotest.test_case "durable round-trip" `Quick test_durable_roundtrip;
    Alcotest.test_case "charge-on-doubt" `Quick test_charge_on_doubt;
    Alcotest.test_case "compaction bounds the journal" `Quick test_compaction_bounds_journal;
    Alcotest.test_case "torn tail trimmed" `Quick test_torn_tail_trimmed;
    prop_serial_invariant;
    Alcotest.test_case "concurrent interleavings" `Quick test_concurrent_interleavings;
    Alcotest.test_case "admit commit and failure" `Quick test_admit_commit_and_failure;
    Alcotest.test_case "admit deadline discards late answer" `Quick
      test_admit_deadline_discards_late_answer;
    Alcotest.test_case "admit backpressure" `Quick test_admit_backpressure;
    Alcotest.test_case "admit drain" `Quick test_admit_drain;
  ]
