module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Rewire = Wpinq_graph.Rewire
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Measurement = Wpinq_core.Measurement
module Mcmc = Wpinq_infer.Mcmc
module Fit = Wpinq_infer.Fit
module Workflow = Wpinq_infer.Workflow
module Q = Wpinq_queries.Queries.Make (Wpinq_core.Batch)
module Qf = Wpinq_queries.Queries.Make (Wpinq_core.Flow)
open Helpers

(* Toy MCMC problem: fit an integer vector to a target under L1 energy. *)
let toy_problem () =
  let target = [| 4; -2; 7; 0; 3 |] in
  let state = Array.make 5 0 in
  let energy () =
    let acc = ref 0.0 in
    Array.iteri (fun i v -> acc := !acc +. Float.abs (float_of_int (v - target.(i)))) state;
    !acc
  in
  (target, state, energy)

let test_mcmc_greedy_descends () =
  let target, state, energy = toy_problem () in
  let rng = Prng.create 1 in
  let stats =
    Mcmc.run ~rng ~steps:3000 ~pow:50.0 ~energy
      ~propose:(fun () ->
        let i = Prng.int rng 5 in
        let d = if Prng.bool rng then 1 else -1 in
        Some (i, d))
      ~apply:(fun (i, d) -> state.(i) <- state.(i) + d)
      ~revert:(fun (i, d) -> state.(i) <- state.(i) - d)
      ()
  in
  Alcotest.(check (array int)) "target reached" target state;
  check_close "final energy" 0.0 stats.Mcmc.final_energy;
  check_close "initial energy" 16.0 stats.Mcmc.initial_energy;
  Alcotest.(check bool) "acceptance bounded" true (stats.Mcmc.accepted <= stats.Mcmc.steps)

let test_mcmc_always_accepts_improvement () =
  (* With pow = 0 every move is accepted (exp(0) = 1 > uniform draws...
     almost surely); with huge pow, only improvements are.  Check the huge
     pow case rejects a known-worse move. *)
  let _, state, energy = toy_problem () in
  state.(0) <- 4;
  (* proposing +1 on index 0 strictly worsens; it must be reverted *)
  let stats =
    Mcmc.run ~rng:(Prng.create 2) ~steps:200 ~pow:1e9 ~energy
      ~propose:(fun () -> Some 0)
      ~apply:(fun _ -> state.(0) <- state.(0) + 1)
      ~revert:(fun _ -> state.(0) <- state.(0) - 1)
      ()
  in
  Alcotest.(check int) "never accepted" 0 stats.Mcmc.accepted;
  Alcotest.(check int) "state reverted" 4 state.(0)

let test_mcmc_invalid_proposals () =
  let _, _, energy = toy_problem () in
  let stats =
    Mcmc.run ~rng:(Prng.create 3) ~steps:50 ~energy
      ~propose:(fun () -> None)
      ~apply:(fun () -> ())
      ~revert:(fun () -> ())
      ()
  in
  Alcotest.(check int) "all invalid" 50 stats.Mcmc.invalid;
  Alcotest.(check int) "none accepted" 0 stats.Mcmc.accepted

let test_mcmc_on_step_called () =
  let _, _, energy = toy_problem () in
  let calls = ref 0 in
  let _ =
    Mcmc.run ~rng:(Prng.create 4) ~steps:25 ~energy
      ~on_step:(fun ~step:_ ~energy:_ -> incr calls)
      ~propose:(fun () -> None)
      ~apply:(fun () -> ())
      ~revert:(fun () -> ())
      ()
  in
  Alcotest.(check int) "on_step every iteration" 25 !calls

let test_mcmc_nonfinite_energy_refreshes () =
  (* An incremental energy that goes NaN after a move must trigger an
     immediate refresh and revert — never reach accept/reject. *)
  let state = ref 0 in
  let poisoned = ref false in
  let armed = ref true in
  let refreshes = ref 0 in
  (* Walking toward 10, so proposals are normally accepted. *)
  let energy () = if !poisoned then Float.nan else Float.abs (float_of_int (!state - 10)) in
  let stats =
    Mcmc.run ~rng:(Prng.create 5) ~steps:10 ~pow:1e9
      ~refresh:(fun () ->
        incr refreshes;
        poisoned := false)
      ~energy
      ~propose:(fun () -> Some ())
      ~apply:(fun () ->
        incr state;
        (* Poison the third proposal's energy reading only. *)
        if !state = 3 && !armed then begin
          poisoned := true;
          armed := false
        end)
      ~revert:(fun () -> decr state)
      ()
  in
  Alcotest.(check int) "one non-finite refresh" 1 stats.Mcmc.refreshed_on_nonfinite;
  Alcotest.(check int) "refresh callback ran" 1 !refreshes;
  Alcotest.(check bool) "final energy finite" true (Float.is_finite stats.Mcmc.final_energy)

let test_mcmc_start_offset () =
  (* A resumed chain passes ?start: only steps start+1..steps run, and the
     per-segment counters reflect just that segment. *)
  let calls = ref [] in
  let _, _, energy = toy_problem () in
  let stats =
    Mcmc.run ~rng:(Prng.create 6) ~steps:10 ~start:7 ~energy
      ~on_step:(fun ~step ~energy:_ -> calls := step :: !calls)
      ~propose:(fun () -> None)
      ~apply:(fun () -> ())
      ~revert:(fun () -> ())
      ()
  in
  Alcotest.(check (list int)) "steps run" [ 10; 9; 8 ] !calls;
  Alcotest.(check int) "segment length" 3 stats.Mcmc.steps;
  Alcotest.check_raises "start out of range"
    (Invalid_argument "Mcmc.run: start must be within [0, steps]") (fun () ->
      ignore
        (Mcmc.run ~rng:(Prng.create 6) ~steps:5 ~start:6 ~energy
           ~propose:(fun () -> None)
           ~apply:(fun () -> ())
           ~revert:(fun () -> ())
           ()))

let test_mcmc_checkpoint_hook () =
  let _, _, energy = toy_problem () in
  let fired = ref [] in
  let _ =
    Mcmc.run ~rng:(Prng.create 7) ~steps:10 ~energy ~checkpoint_every:3
      ~on_checkpoint:(fun ~step ~stats -> fired := (step, stats.Mcmc.steps) :: !fired)
      ~propose:(fun () -> None)
      ~apply:(fun () -> ())
      ~revert:(fun () -> ())
      ()
  in
  (* Fires at multiples of 3 but never at the final step (here step 9 <
     steps, so all three fire; a cadence hitting 10 exactly would skip). *)
  Alcotest.(check (list (pair int int)))
    "fired at cadence" [ (9, 9); (6, 6); (3, 3) ] !fired

(* ---- Fit ---- *)

let tbi_target secret epsilon rng =
  let budget = Budget.create ~name:"g" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let m = Batch.noisy_count ~rng ~epsilon (Q.tbi sym) in
  fun sym_flow -> Flow.Target.create (Qf.tbi sym_flow) m

let test_fit_energy_matches_distance () =
  (* Seed == secret and negligible noise: energy ~ 0. *)
  let secret = Gen.clustered ~n:80 ~community:8 ~p_in:0.7 ~extra:40 (Prng.create 5) in
  let rng = Prng.create 6 in
  let target = tbi_target secret 1e6 rng in
  let fit = Fit.create ~rng ~seed_graph:secret ~targets:[ target ] () in
  Alcotest.(check bool) "perfect seed, ~zero energy" true (Fit.energy fit < 1.0)

let test_fit_step_revert_consistency () =
  (* After any number of steps, incremental energy equals a fresh recompute. *)
  let secret = Gen.clustered ~n:60 ~community:8 ~p_in:0.7 ~extra:30 (Prng.create 7) in
  let seed = Rewire.randomize secret (Prng.create 8) in
  let rng = Prng.create 9 in
  let target = tbi_target secret 1e4 rng in
  let fit = Fit.create ~rng ~seed_graph:seed ~targets:[ target ] () in
  for _ = 1 to 200 do
    ignore (Fit.step ~pow:5.0 fit)
  done;
  let incremental = Fit.energy fit in
  List.iter Flow.Target.recompute (Fit.targets fit);
  let fresh = List.fold_left (fun acc t -> acc +. Flow.Target.weighted_distance t) 0.0 (Fit.targets fit) in
  check_close ~tol:1e-3 "no drift" fresh incremental

let test_fit_improves_triangles () =
  (* Fitting a rewired seed to a low-noise TbI measurement must push the
     triangle count toward the secret's. *)
  let secret = Gen.clustered ~n:100 ~community:10 ~p_in:0.8 ~extra:40 (Prng.create 10) in
  let seed = Rewire.randomize secret (Prng.create 11) in
  let rng = Prng.create 12 in
  let target = tbi_target secret 100.0 rng in
  let fit = Fit.create ~rng ~seed_graph:seed ~targets:[ target ] () in
  let before_tri = Graph.triangle_count (Fit.graph fit) in
  let before_energy = Fit.energy fit in
  let stats = Fit.run fit ~steps:20_000 ~pow:1_000.0 () in
  let after_tri = Graph.triangle_count (Fit.graph fit) in
  Alcotest.(check bool)
    (Printf.sprintf "triangles rose %d -> %d (secret %d)" before_tri after_tri
       (Graph.triangle_count secret))
    true
    (after_tri > 3 * before_tri);
  Alcotest.(check bool) "energy fell" true (stats.Mcmc.final_energy < before_energy);
  (* Degrees are preserved by the walk. *)
  Alcotest.(check (array int)) "degree multiset preserved"
    (Graph.degree_sequence_desc seed)
    (Graph.degree_sequence_desc (Fit.graph fit))

(* ---- Workflow ---- *)

let test_workflow_costs () =
  check_close "tbi cost" 0.4 (Workflow.query_cost Workflow.Tbi 0.1);
  check_close "tbd cost" 0.9 (Workflow.query_cost (Workflow.Tbd 20) 0.1)

let test_fit_degrees_low_noise () =
  (* With tiny noise, the fitted degree sequence matches the real one. *)
  let secret = Gen.clustered ~n:60 ~community:8 ~p_in:0.7 ~extra:30 (Prng.create 13) in
  let budget = Budget.create ~name:"g" 1e12 in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let ms = Workflow.measure_seed ~rng:(Prng.create 14) ~epsilon:1e6 ~sym in
  let fitted = Workflow.fit_degrees ms in
  let truth = Graph.degree_sequence_desc secret in
  Alcotest.(check int) "length = node count" (Array.length truth) (Array.length fitted);
  Array.iteri
    (fun i d -> Alcotest.(check int) (Printf.sprintf "degree[%d]" i) d fitted.(i))
    truth

let test_fit_degrees_pava_only_low_noise () =
  let secret = Gen.clustered ~n:60 ~community:8 ~p_in:0.7 ~extra:30 (Prng.create 15) in
  let budget = Budget.create ~name:"g" 1e12 in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let ms = Workflow.measure_seed ~rng:(Prng.create 16) ~epsilon:1e6 ~sym in
  let fitted = Workflow.fit_degrees_pava_only ms in
  let truth = Graph.degree_sequence_desc secret in
  Array.iteri
    (fun i d -> Alcotest.(check int) (Printf.sprintf "degree[%d]" i) d fitted.(i))
    truth

let test_seed_graph_degrees () =
  let degrees = Array.of_list (List.init 40 (fun i -> 1 + (i mod 4))) in
  let g = Workflow.seed_graph ~rng:(Prng.create 17) ~degrees in
  Alcotest.(check bool) "most stubs realized" true
    (2 * Graph.m g > 80 * 85 / 100)

let test_jdd_fit_recovers_assortativity () =
  (* The workshop-paper workflow: fitting the JDD measurement pulls the
     synthetic graph's assortativity toward the (strongly assortative)
     secret's. *)
  let secret = Gen.clustered ~n:120 ~community:10 ~p_in:0.8 ~extra:40 (Prng.create 21) in
  let budget = Budget.create ~name:"g" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let m =
    Batch.noisy_count ~rng:(Prng.create 22) ~epsilon:1e4
      (let module QB = Wpinq_queries.Queries.Make (Wpinq_core.Batch) in
       QB.jdd sym)
  in
  let seed = Rewire.randomize secret (Prng.create 23) in
  let fit =
    Fit.create ~rng:(Prng.create 24) ~seed_graph:seed
      ~targets:[ (fun sym_flow -> Flow.Target.create (Qf.jdd sym_flow) m) ]
      ()
  in
  let r0 = Graph.assortativity (Fit.graph fit) in
  let _ = Fit.run fit ~steps:15_000 ~pow:5_000.0 () in
  let r1 = Graph.assortativity (Fit.graph fit) in
  let truth = Graph.assortativity secret in
  Alcotest.(check bool)
    (Printf.sprintf "assortativity %.3f -> %.3f (truth %.3f)" r0 r1 truth)
    true
    (r1 > r0 +. 0.1 && r1 > truth /. 2.0)

let test_workflow_jdd_and_sbi_costs () =
  check_close "jdd cost" 0.4 (Workflow.query_cost Workflow.Jdd 0.1);
  check_close "sbi cost" 0.6 (Workflow.query_cost Workflow.Sbi 0.1)

let test_synthesize_end_to_end () =
  let secret = Gen.clustered ~n:80 ~community:8 ~p_in:0.8 ~extra:40 (Prng.create 18) in
  let r =
    Workflow.synthesize ~rng:(Prng.create 19) ~epsilon:0.5 ~query:(Some Workflow.Tbi)
      ~steps:5_000 ~trace_every:1_000 ~secret ()
  in
  check_close "total epsilon = 7 eps" 3.5 r.Workflow.total_epsilon;
  Alcotest.(check int) "trace points" 6 (List.length r.Workflow.trace);
  Alcotest.(check bool) "seed degrees preserved in synthetic" true
    (Graph.degree_sequence_desc r.Workflow.seed
    = Graph.degree_sequence_desc r.Workflow.synthetic);
  (* Phase-1-only run spends 3 eps and skips the walk. *)
  let r1 =
    Workflow.synthesize ~rng:(Prng.create 20) ~epsilon:0.5 ~query:None ~secret ()
  in
  check_close "seed-only epsilon" 1.5 r1.Workflow.total_epsilon;
  Alcotest.(check int) "no steps" 0 r1.Workflow.stats.Mcmc.steps

let suite =
  [
    Alcotest.test_case "mcmc greedy descends" `Quick test_mcmc_greedy_descends;
    Alcotest.test_case "mcmc rejects worse at high pow" `Quick test_mcmc_always_accepts_improvement;
    Alcotest.test_case "mcmc invalid proposals" `Quick test_mcmc_invalid_proposals;
    Alcotest.test_case "mcmc on_step" `Quick test_mcmc_on_step_called;
    Alcotest.test_case "mcmc non-finite energy refresh" `Quick
      test_mcmc_nonfinite_energy_refreshes;
    Alcotest.test_case "mcmc start offset" `Quick test_mcmc_start_offset;
    Alcotest.test_case "mcmc checkpoint hook" `Quick test_mcmc_checkpoint_hook;
    Alcotest.test_case "fit: zero energy on perfect seed" `Quick test_fit_energy_matches_distance;
    Alcotest.test_case "fit: no incremental drift" `Quick test_fit_step_revert_consistency;
    Alcotest.test_case "fit: triangles rise" `Slow test_fit_improves_triangles;
    Alcotest.test_case "workflow costs" `Quick test_workflow_costs;
    Alcotest.test_case "fit_degrees exact at low noise" `Quick test_fit_degrees_low_noise;
    Alcotest.test_case "pava-only fit at low noise" `Quick test_fit_degrees_pava_only_low_noise;
    Alcotest.test_case "seed graph realizes degrees" `Quick test_seed_graph_degrees;
    Alcotest.test_case "jdd fit recovers assortativity" `Slow test_jdd_fit_recovers_assortativity;
    Alcotest.test_case "jdd/sbi costs" `Quick test_workflow_jdd_and_sbi_costs;
    Alcotest.test_case "synthesize end-to-end" `Slow test_synthesize_end_to_end;
  ]
