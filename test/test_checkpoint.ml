(* Fault-injection harness for the checkpoint/resume runtime: kill the fit
   at arbitrary steps, resume from the latest snapshot, and demand the final
   result be bit-identical to the uninterrupted run. *)

module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Persist = Wpinq_persist.Persist
module Fault = Persist.Fault
module W = Wpinq_infer.Workflow
module Mcmc = Wpinq_infer.Mcmc

let steps = 2000
let every = 400
let trace_every = 500
let secret () = Gen.clustered ~n:40 ~community:8 ~p_in:0.7 ~extra:20 (Prng.create 5)

let with_ckpt f =
  let path = Filename.temp_file "wpinq_ckpt" ".wpinq" in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      if Sys.file_exists path then Sys.remove path;
      let tmp = path ^ ".tmp" in
      if Sys.file_exists tmp then Sys.remove tmp)
    (fun () -> f path)

let run_checkpointed path =
  W.synthesize ~steps ~trace_every ~pow:100.0
    ~checkpoint:{ W.every; path }
    ~rng:(Prng.create 123) ~epsilon:0.5 ~query:(Some W.Tbi) ~secret:(secret ()) ()

let check_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Bit-exact equality of everything a run returns: graphs, counters,
   energies, trace, spent budget. *)
let check_result name (expect : W.result) (got : W.result) =
  Alcotest.(check (list (pair int int)))
    (name ^ ": synthetic edges")
    (Graph.edges expect.W.synthetic)
    (Graph.edges got.W.synthetic);
  Alcotest.(check (list (pair int int)))
    (name ^ ": seed edges")
    (Graph.edges expect.W.seed) (Graph.edges got.W.seed);
  let es = expect.W.stats and gs = got.W.stats in
  Alcotest.(check int) (name ^ ": steps") es.Mcmc.steps gs.Mcmc.steps;
  Alcotest.(check int) (name ^ ": accepted") es.Mcmc.accepted gs.Mcmc.accepted;
  Alcotest.(check int) (name ^ ": invalid") es.Mcmc.invalid gs.Mcmc.invalid;
  Alcotest.(check int)
    (name ^ ": refreshed_on_nonfinite")
    es.Mcmc.refreshed_on_nonfinite gs.Mcmc.refreshed_on_nonfinite;
  check_bits (name ^ ": initial energy") es.Mcmc.initial_energy gs.Mcmc.initial_energy;
  check_bits (name ^ ": final energy") es.Mcmc.final_energy gs.Mcmc.final_energy;
  Alcotest.(check int) (name ^ ": trace length") (List.length expect.W.trace)
    (List.length got.W.trace);
  List.iter2
    (fun (e : W.trace_point) (g : W.trace_point) ->
      Alcotest.(check int) (name ^ ": trace step") e.W.step g.W.step;
      Alcotest.(check int) (name ^ ": trace triangles") e.W.triangles g.W.triangles;
      check_bits (name ^ ": trace assortativity") e.W.assortativity g.W.assortativity;
      check_bits (name ^ ": trace energy") e.W.energy g.W.energy)
    expect.W.trace got.W.trace;
  check_bits (name ^ ": total epsilon") expect.W.total_epsilon got.W.total_epsilon

let reference = lazy (with_ckpt (fun path -> run_checkpointed path))

let test_kill_and_resume kill () =
  let expect = Lazy.force reference in
  with_ckpt (fun path ->
      Fault.arm ~site:"mcmc.step" ~after:kill;
      (match run_checkpointed path with
      | exception Fault.Injected "mcmc.step" -> ()
      | _ -> Alcotest.failf "kill at %d did not fire" kill);
      (* The run died at step [kill]; its latest snapshot holds the largest
         multiple of [every] below that. *)
      Alcotest.(check int)
        "snapshot step"
        ((kill - 1) / every * every)
        (W.checkpoint_step path);
      let got = W.resume ~path () in
      check_result (Printf.sprintf "kill@%d" kill) expect got)

let test_double_kill () =
  (* Crash, resume, crash again mid-resume, resume again. *)
  let expect = Lazy.force reference in
  with_ckpt (fun path ->
      Fault.arm ~site:"mcmc.step" ~after:900;
      (match run_checkpointed path with
      | exception Fault.Injected _ -> ()
      | _ -> Alcotest.fail "first kill did not fire");
      (* The resumed chain re-runs steps 801..: kill it 300 steps in. *)
      Fault.arm ~site:"mcmc.step" ~after:300;
      (match W.resume ~path () with
      | exception Fault.Injected _ -> ()
      | _ -> Alcotest.fail "second kill did not fire");
      let got = W.resume ~path () in
      check_result "double kill" expect got)

let test_corrupt_checkpoint_detected () =
  with_ckpt (fun path ->
      Fault.arm ~site:"mcmc.step" ~after:600;
      (match run_checkpointed path with
      | exception Fault.Injected _ -> ()
      | _ -> Alcotest.fail "kill did not fire");
      let ic = open_in_bin path in
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* Flip one payload byte; resume must refuse with a typed error. *)
      let corrupt = Bytes.of_string raw in
      let i = Bytes.length corrupt - 7 in
      Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0x10));
      let oc = open_out_bin path in
      output_bytes oc corrupt;
      close_out oc;
      match W.resume ~path () with
      | exception W.Corrupt_checkpoint _ -> ()
      | _ -> Alcotest.fail "corrupt checkpoint accepted")

let test_interrupted_checkpoint_write () =
  (* A crash during the *second* snapshot write must leave the first one
     valid, and resuming from it must still reproduce the reference. *)
  let expect = Lazy.force reference in
  with_ckpt (fun path ->
      Fault.arm ~site:"atomic.rename" ~after:2;
      (match run_checkpointed path with
      | exception Fault.Injected "atomic.rename" -> ()
      | _ -> Alcotest.fail "rename fault did not fire");
      Alcotest.(check int) "previous snapshot intact" every (W.checkpoint_step path);
      let got = W.resume ~path () in
      check_result "interrupted snapshot write" expect got)

let suite =
  [
    Alcotest.test_case "kill just after first snapshot" `Slow (test_kill_and_resume 401);
    Alcotest.test_case "kill at snapshot boundary" `Slow (test_kill_and_resume 800);
    Alcotest.test_case "kill near the end" `Slow (test_kill_and_resume 1999);
    Alcotest.test_case "kill twice, resume twice" `Slow test_double_kill;
    Alcotest.test_case "corrupt checkpoint detected" `Slow test_corrupt_checkpoint_detected;
    Alcotest.test_case "interrupted snapshot write" `Slow test_interrupted_checkpoint_write;
  ]
