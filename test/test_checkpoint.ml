(* Fault-injection harness for the checkpoint/resume runtime: kill the fit
   at arbitrary steps, resume from the latest snapshot, and demand the final
   result be bit-identical to the uninterrupted run. *)

module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Persist = Wpinq_persist.Persist
module Fault = Persist.Fault
module W = Wpinq_infer.Workflow
module Mcmc = Wpinq_infer.Mcmc
module Shutdown = Wpinq_infer.Shutdown

let steps = 2000
let every = 400
let trace_every = 500
let secret () = Gen.clustered ~n:40 ~community:8 ~p_in:0.7 ~extra:20 (Prng.create 5)

let with_ckpt f =
  let path = Filename.temp_file "wpinq_ckpt" ".wpinq" in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Shutdown.reset ();
      if Sys.file_exists path then Sys.remove path;
      ignore (Persist.Atomic.sweep_stale ~path ()))
    (fun () -> f path)

let with_store_dir f =
  let dir = Filename.temp_file "wpinq_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Shutdown.reset ();
      Array.iter
        (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let run_checkpointed ?stop ?deadline path =
  W.synthesize ~steps ~trace_every ~pow:100.0
    ~checkpoint:{ W.every; sink = W.Single path }
    ?stop ?deadline ~rng:(Prng.create 123) ~epsilon:0.5 ~query:(Some W.Tbi)
    ~secret:(secret ()) ()

let run_checkpointed_store ?stop ?deadline store =
  W.synthesize ~steps ~trace_every ~pow:100.0
    ~checkpoint:{ W.every; sink = W.Store store }
    ?stop ?deadline ~rng:(Prng.create 123) ~epsilon:0.5 ~query:(Some W.Tbi)
    ~secret:(secret ()) ()

let check_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Bit-exact equality of everything a run returns: graphs, counters,
   energies, trace, spent budget. *)
let check_result name (expect : W.result) (got : W.result) =
  Alcotest.(check (list (pair int int)))
    (name ^ ": synthetic edges")
    (Graph.edges expect.W.synthetic)
    (Graph.edges got.W.synthetic);
  Alcotest.(check (list (pair int int)))
    (name ^ ": seed edges")
    (Graph.edges expect.W.seed) (Graph.edges got.W.seed);
  let es = expect.W.stats and gs = got.W.stats in
  Alcotest.(check int) (name ^ ": steps") es.Mcmc.steps gs.Mcmc.steps;
  Alcotest.(check int) (name ^ ": accepted") es.Mcmc.accepted gs.Mcmc.accepted;
  Alcotest.(check int) (name ^ ": invalid") es.Mcmc.invalid gs.Mcmc.invalid;
  Alcotest.(check int)
    (name ^ ": refreshed_on_nonfinite")
    es.Mcmc.refreshed_on_nonfinite gs.Mcmc.refreshed_on_nonfinite;
  check_bits (name ^ ": initial energy") es.Mcmc.initial_energy gs.Mcmc.initial_energy;
  check_bits (name ^ ": final energy") es.Mcmc.final_energy gs.Mcmc.final_energy;
  Alcotest.(check int) (name ^ ": trace length") (List.length expect.W.trace)
    (List.length got.W.trace);
  List.iter2
    (fun (e : W.trace_point) (g : W.trace_point) ->
      Alcotest.(check int) (name ^ ": trace step") e.W.step g.W.step;
      Alcotest.(check int) (name ^ ": trace triangles") e.W.triangles g.W.triangles;
      check_bits (name ^ ": trace assortativity") e.W.assortativity g.W.assortativity;
      check_bits (name ^ ": trace energy") e.W.energy g.W.energy)
    expect.W.trace got.W.trace;
  check_bits (name ^ ": total epsilon") expect.W.total_epsilon got.W.total_epsilon

let reference = lazy (with_ckpt (fun path -> run_checkpointed path))

let test_kill_and_resume kill () =
  let expect = Lazy.force reference in
  with_ckpt (fun path ->
      Fault.arm ~site:"mcmc.step" ~after:kill;
      (match run_checkpointed path with
      | exception Fault.Injected "mcmc.step" -> ()
      | _ -> Alcotest.failf "kill at %d did not fire" kill);
      (* The run died at step [kill]; its latest snapshot holds the largest
         multiple of [every] below that. *)
      Alcotest.(check int)
        "snapshot step"
        ((kill - 1) / every * every)
        (W.checkpoint_step path);
      let got = W.resume ~path () in
      check_result (Printf.sprintf "kill@%d" kill) expect got)

let test_double_kill () =
  (* Crash, resume, crash again mid-resume, resume again. *)
  let expect = Lazy.force reference in
  with_ckpt (fun path ->
      Fault.arm ~site:"mcmc.step" ~after:900;
      (match run_checkpointed path with
      | exception Fault.Injected _ -> ()
      | _ -> Alcotest.fail "first kill did not fire");
      (* The resumed chain re-runs steps 801..: kill it 300 steps in. *)
      Fault.arm ~site:"mcmc.step" ~after:300;
      (match W.resume ~path () with
      | exception Fault.Injected _ -> ()
      | _ -> Alcotest.fail "second kill did not fire");
      let got = W.resume ~path () in
      check_result "double kill" expect got)

let test_corrupt_checkpoint_detected () =
  with_ckpt (fun path ->
      Fault.arm ~site:"mcmc.step" ~after:600;
      (match run_checkpointed path with
      | exception Fault.Injected _ -> ()
      | _ -> Alcotest.fail "kill did not fire");
      let ic = open_in_bin path in
      let raw =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* Flip one payload byte; resume must refuse with a typed error. *)
      let corrupt = Bytes.of_string raw in
      let i = Bytes.length corrupt - 7 in
      Bytes.set corrupt i (Char.chr (Char.code (Bytes.get corrupt i) lxor 0x10));
      let oc = open_out_bin path in
      output_bytes oc corrupt;
      close_out oc;
      match W.resume ~path () with
      | exception W.Corrupt_checkpoint _ -> ()
      | _ -> Alcotest.fail "corrupt checkpoint accepted")

let test_interrupted_checkpoint_write () =
  (* A crash during the *second* snapshot write must leave the first one
     valid, and resuming from it must still reproduce the reference. *)
  let expect = Lazy.force reference in
  with_ckpt (fun path ->
      Fault.arm ~site:"atomic.rename" ~after:2;
      (match run_checkpointed path with
      | exception Fault.Injected "atomic.rename" -> ()
      | _ -> Alcotest.fail "rename fault did not fire");
      Alcotest.(check int) "previous snapshot intact" every (W.checkpoint_step path);
      let got = W.resume ~path () in
      check_result "interrupted snapshot write" expect got)

(* ---- generational store sink ---- *)

let test_store_sink_matches_single () =
  (* Checkpointing into a generational store instead of a single file must
     not perturb the walk: the snapshot bytes (and the rebase they drive)
     are identical. *)
  let expect = Lazy.force reference in
  with_store_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep:3 dir in
      let got = run_checkpointed_store store in
      check_result "store sink" expect got;
      (* Snapshots at 400/800/1200/1600, retention 3 → newest three remain. *)
      Alcotest.(check (list int))
        "generations retained" [ 1600; 1200; 800 ]
        (List.map fst (Persist.Store.generations store)))

let test_store_fallback_resumes_previous_generation () =
  (* Bit-flip the newest generation: resume_latest must quarantine it (to a
     preserved .corrupt file, not delete it), fall back to the previous
     generation, and still reproduce the reference bit-for-bit. *)
  let expect = Lazy.force reference in
  with_store_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep:3 dir in
      let killed =
        Fault.arm ~site:"mcmc.step" ~after:1999;
        match run_checkpointed_store store with
        | exception Fault.Injected _ -> true
        | _ -> false
      in
      Alcotest.(check bool) "kill fired" true killed;
      let newest =
        match Persist.Store.generations store with
        | (step, path) :: _ ->
            Alcotest.(check int) "newest generation" 1600 step;
            path
        | [] -> Alcotest.fail "no generations written"
      in
      let size = (Unix.stat newest).Unix.st_size in
      Fault.corrupt ~path:newest (Fault.Bit_flip (8 * (size - 1)));
      let logs = ref [] in
      let got = W.resume_latest ~log:(fun m -> logs := m :: !logs) ~store () in
      check_result "fallback resume" expect got;
      Alcotest.(check bool) "corrupt generation quarantined, not deleted" true
        (Sys.file_exists (newest ^ ".corrupt"));
      Alcotest.(check bool) "rejection was logged" true
        (List.exists
           (fun m ->
             String.length m > 0
             && String.starts_with ~prefix:"rejected checkpoint generation" m)
           !logs))

let test_store_all_corrupt_raises () =
  with_store_dir (fun dir ->
      let store = Persist.Store.open_dir ~keep:3 dir in
      Fault.arm ~site:"mcmc.step" ~after:900;
      (match run_checkpointed_store store with
      | exception Fault.Injected _ -> ()
      | _ -> Alcotest.fail "kill did not fire");
      List.iter
        (fun (_, path) -> Fault.corrupt ~path (Fault.Truncate_at 5))
        (Persist.Store.generations store);
      match W.resume_latest ~store () with
      | exception W.Corrupt_checkpoint msg ->
          Alcotest.(check bool) "message names the store" true
            (String.length msg > 0);
          Alcotest.(check bool) "message lists the rejected generations" true
            (let contains hay needle =
               let nh = String.length hay and nn = String.length needle in
               let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
               go 0
             in
             contains msg "ckpt-400.wpq")
      | _ -> Alcotest.fail "all-corrupt store resumed")

(* ---- graceful shutdown ---- *)

let test_graceful_stop_cadence_aligned () =
  (* A stop observed exactly at a checkpoint boundary: the final snapshot
     re-encodes the already-rebased state, so resuming reproduces the
     uninterrupted reference bit-for-bit. *)
  let expect = Lazy.force reference in
  with_ckpt (fun path ->
      let flag = ref false in
      (* Iterations 1..1200 complete steps 1..1200; the 1201st pass over the
         signal point sets the flag, which the same iteration's stop check
         observes before starting step 1201. *)
      Fault.arm_action ~site:"mcmc.signal" ~after:1201 (fun () -> flag := true);
      let r = run_checkpointed ~stop:(fun () -> !flag) path in
      Alcotest.(check bool) "interrupted" true r.W.stats.Mcmc.interrupted;
      Alcotest.(check int) "stopped at the boundary" 1200 r.W.stats.Mcmc.steps;
      Alcotest.(check int) "final snapshot step" 1200 (W.checkpoint_step path);
      let got = W.resume ~path () in
      Alcotest.(check bool) "resumed run not interrupted" false
        got.W.stats.Mcmc.interrupted;
      check_result "graceful stop" expect got)

let test_sigterm_finishes_step_and_checkpoints () =
  (* A real SIGTERM, delivered mid-walk through the installed handler: the
     in-flight step finishes, a valid final snapshot is written, and resume
     completes the walk. *)
  with_ckpt (fun path ->
      Shutdown.reset ();
      Shutdown.install ();
      Fault.arm_action ~site:"mcmc.signal" ~after:900 (fun () ->
          Unix.kill (Unix.getpid ()) Sys.sigterm);
      let r = run_checkpointed ~stop:Shutdown.requested path in
      Alcotest.(check bool) "interrupted" true r.W.stats.Mcmc.interrupted;
      Alcotest.(check bool) "stopped promptly after delivery" true
        (r.W.stats.Mcmc.steps >= 899 && r.W.stats.Mcmc.steps < steps);
      (* The final snapshot records exactly the stopped state. *)
      Alcotest.(check int) "final snapshot step" r.W.stats.Mcmc.steps
        (W.checkpoint_step path);
      Shutdown.reset ();
      let got = W.resume ~path () in
      Alcotest.(check bool) "resumed run not interrupted" false
        got.W.stats.Mcmc.interrupted;
      Alcotest.(check int) "resume completed the walk" steps got.W.stats.Mcmc.steps)

let test_deadline_stops_gracefully () =
  with_ckpt (fun path ->
      let r = run_checkpointed ~deadline:0.0 path in
      Alcotest.(check bool) "interrupted" true r.W.stats.Mcmc.interrupted;
      Alcotest.(check bool) "stopped early" true (r.W.stats.Mcmc.steps < steps);
      Alcotest.(check int) "final snapshot step" r.W.stats.Mcmc.steps
        (W.checkpoint_step path);
      let got = W.resume ~path () in
      Alcotest.(check bool) "resumed run not interrupted" false
        got.W.stats.Mcmc.interrupted;
      Alcotest.(check int) "resume completed the walk" steps got.W.stats.Mcmc.steps)

let suite =
  [
    Alcotest.test_case "kill just after first snapshot" `Slow (test_kill_and_resume 401);
    Alcotest.test_case "kill at snapshot boundary" `Slow (test_kill_and_resume 800);
    Alcotest.test_case "kill near the end" `Slow (test_kill_and_resume 1999);
    Alcotest.test_case "kill twice, resume twice" `Slow test_double_kill;
    Alcotest.test_case "corrupt checkpoint detected" `Slow test_corrupt_checkpoint_detected;
    Alcotest.test_case "interrupted snapshot write" `Slow test_interrupted_checkpoint_write;
    Alcotest.test_case "store sink matches single-file run" `Slow
      test_store_sink_matches_single;
    Alcotest.test_case "store falls back past corrupt newest" `Slow
      test_store_fallback_resumes_previous_generation;
    Alcotest.test_case "store with all generations corrupt" `Slow
      test_store_all_corrupt_raises;
    Alcotest.test_case "graceful stop at cadence boundary" `Slow
      test_graceful_stop_cadence_aligned;
    Alcotest.test_case "SIGTERM finishes step and checkpoints" `Slow
      test_sigterm_finishes_step_and_checkpoints;
    Alcotest.test_case "deadline stops gracefully" `Slow test_deadline_stops_gracefully;
  ]
