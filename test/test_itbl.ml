(* Model-based property tests for the interned-id state layer: [Itbl]
   (the struct-of-arrays weight table every operator now keeps) checked
   against a reference association-list model, and [Intern] (the
   value→dense-id layer) against a plain list.  The properties mirror the
   abort-residue guarantees the record-keyed [Wtbl] used to carry:
   speculative inserts that resize the table must vanish without trace on
   abort, committed insertion order must survive aborted speculations
   bit-for-bit, and interleaved commit/abort blocks must leave exactly
   the committed suffix. *)

module Dataflow = Wpinq_dataflow.Dataflow
module Engine = Dataflow.Engine
module Itbl = Dataflow.Itbl
module Intern = Dataflow.Intern

let eps = Wpinq_weighted.Wdata.epsilon_weight

(* Reference model: insertion-ordered (id, weight) assoc list, dropping
   entries whose weight lands within the near-zero dead band, exactly as
   [Itbl.set] does — including swap-last removal, so the entry order is a
   deterministic function of the committed operation history. *)
module Model = struct
  type t = (int * float) list (* dense-slot order *)

  let empty : t = []
  let get m id = match List.assoc_opt id m with Some w -> w | None -> 0.0

  let set m id w =
    let present = List.mem_assoc id m in
    if Float.abs w < eps then
      if not present then m
      else begin
        let arr = Array.of_list m in
        let n = Array.length arr in
        let p = ref 0 in
        Array.iteri (fun i (j, _) -> if j = id then p := i) arr;
        arr.(!p) <- arr.(n - 1);
        Array.to_list (Array.sub arr 0 (n - 1))
      end
    else if present then List.map (fun (i, w0) -> if i = id then (i, w) else (i, w0)) m
    else m @ [ (id, w) ]

  let bump m id dw = set m id (get m id +. dw)
end

type op = Set of int * float | Bump of int * float

let apply_op tbl model op =
  match op with
  | Set (id, w) ->
      Itbl.set tbl id w;
      Model.set model id w
  | Bump (id, dw) ->
      let old = Itbl.bump tbl id dw in
      Alcotest.(check (float 0.0)) "bump returns old weight" (Model.get model id) old;
      Model.bump model id dw

let check_agrees ~msg tbl model =
  Alcotest.(check int) (msg ^ ": size") (List.length model) (Itbl.size tbl);
  List.iter
    (fun (id, w) ->
      Alcotest.(check bool) (msg ^ ": mem") true (Itbl.mem tbl id);
      Alcotest.(check (float 0.0)) (msg ^ ": weight") w (Itbl.get tbl id))
    model;
  (* Probe a band of ids beyond the model to catch stale residue. *)
  for id = 0 to 80 do
    if not (List.mem_assoc id model) then begin
      Alcotest.(check bool) (msg ^ ": absent mem") false (Itbl.mem tbl id);
      Alcotest.(check (float 0.0)) (msg ^ ": absent weight") 0.0 (Itbl.get tbl id)
    end
  done

(* Weight generator that exercises the dead band: exact zeros, sub-epsilon
   dust, and ordinary magnitudes, both signs. *)
let gen_weight =
  QCheck2.Gen.oneof
    [
      QCheck2.Gen.return 0.0;
      QCheck2.Gen.map (fun w -> w *. 1e-14) (QCheck2.Gen.float_range (-1.0) 1.0);
      QCheck2.Gen.float_range (-100.0) 100.0;
    ]

(* Ids are drawn wide enough (0..63) that op sequences trigger several
   [pos]-array doublings from the 16-slot start — the speculative-resize
   path the Wtbl tests pinned. *)
let gen_op =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun id w -> Set (id, w)) (int_bound 63) gen_weight;
        map2 (fun id dw -> Bump (id, dw)) (int_bound 63) gen_weight;
      ])

let gen_ops = QCheck2.Gen.(list_size (int_bound 120) gen_op)

let test_model_agreement =
  QCheck2.Test.make ~name:"itbl = assoc model (non-speculative)" ~count:200 gen_ops (fun ops ->
      let engine = Engine.create () in
      let tbl = Itbl.create engine in
      let model = List.fold_left (fun m op -> apply_op tbl m op) Model.empty ops in
      check_agrees ~msg:"final" tbl model;
      (* Insertion order: [to_list] must equal the model exactly, not just
         as a set. *)
      Alcotest.(check (list (pair int (float 0.0)))) "insertion order" model (Itbl.to_list tbl);
      true)

let test_abort_residue =
  QCheck2.Test.make ~name:"abort leaves no residue (incl. resize)" ~count:200
    QCheck2.Gen.(pair gen_ops gen_ops)
    (fun (committed, speculative) ->
      let engine = Engine.create () in
      let tbl = Itbl.create engine in
      let model = List.fold_left (fun m op -> apply_op tbl m op) Model.empty committed in
      let snapshot = Itbl.to_list tbl in
      Engine.begin_speculation engine;
      (* Apply the speculative block against a throwaway model copy, then
         abort: the table must be bit-identical to the pre-speculation
         snapshot, including entry order (resizes grow arrays but the
         logged inverses restore every slot exactly). *)
      let _spec_model = List.fold_left (fun m op -> apply_op tbl m op) model speculative in
      Engine.abort engine;
      Alcotest.(check (list (pair int (float 0.0))))
        "order and contents restored" snapshot (Itbl.to_list tbl);
      check_agrees ~msg:"post-abort" tbl model;
      true)

let test_interleaved_blocks =
  QCheck2.Test.make ~name:"interleaved commit/abort blocks" ~count:100
    QCheck2.Gen.(list_size (int_bound 8) (pair bool gen_ops))
    (fun blocks ->
      let engine = Engine.create () in
      let tbl = Itbl.create engine in
      let model = ref Model.empty in
      List.iter
        (fun (commit, ops) ->
          Engine.begin_speculation engine;
          let m' = List.fold_left (fun m op -> apply_op tbl m op) !model ops in
          if commit then begin
            Engine.commit engine;
            model := m'
          end
          else Engine.abort engine)
        blocks;
      check_agrees ~msg:"after blocks" tbl !model;
      Alcotest.(check (list (pair int (float 0.0)))) "final order" !model (Itbl.to_list tbl);
      true)

let test_intern_model =
  QCheck2.Test.make ~name:"intern assigns dense first-sight ids" ~count:200
    QCheck2.Gen.(list_size (int_bound 200) (int_bound 40))
    (fun values ->
      let intern = Intern.create () in
      (* Model: first-sight order of distinct values. *)
      let seen = ref [] in
      List.iter
        (fun v ->
          (match List.assoc_opt v !seen with
          | Some id -> Alcotest.(check int) "find hits known value" id (Intern.find intern v)
          | None -> Alcotest.(check int) "find misses new value" (-1) (Intern.find intern v));
          let expected =
            match List.assoc_opt v !seen with
            | Some id -> id
            | None ->
                let id = List.length !seen in
                seen := !seen @ [ (v, id) ];
                id
          in
          Alcotest.(check int) "stable dense id" expected (Intern.intern intern v))
        values;
      Alcotest.(check int) "size = distinct count" (List.length !seen) (Intern.size intern);
      List.iter
        (fun (v, id) -> Alcotest.(check bool) "value roundtrip" true (Intern.value intern id = v))
        !seen;
      Alcotest.(check int) "find misses" (-1) (Intern.find intern 4096);
      true)

let test_negative_id () =
  let engine = Engine.create () in
  let tbl = Itbl.create engine in
  Alcotest.check_raises "get" (Invalid_argument "Dataflow.Itbl: negative id") (fun () ->
      ignore (Itbl.get tbl (-1)));
  Alcotest.check_raises "set" (Invalid_argument "Dataflow.Itbl: negative id") (fun () ->
      Itbl.set tbl (-3) 1.0);
  Alcotest.check_raises "mem" (Invalid_argument "Dataflow.Itbl: negative id") (fun () ->
      ignore (Itbl.mem tbl (-2)))

let suite =
  [
    QCheck_alcotest.to_alcotest test_model_agreement;
    QCheck_alcotest.to_alcotest test_abort_residue;
    QCheck_alcotest.to_alcotest test_interleaved_blocks;
    QCheck_alcotest.to_alcotest test_intern_model;
    Alcotest.test_case "negative ids rejected" `Quick test_negative_id;
  ]
