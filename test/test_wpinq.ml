let () =
  Alcotest.run "wpinq"
    [
      ("prng", Test_prng.suite);
      ("persist", Test_persist.suite);
      ("weighted", Test_weighted.suite);
      ("dataflow", Test_dataflow.suite);
      ("itbl", Test_itbl.suite);
      ("speculation", Test_speculation.suite);
      ("audit", Test_audit.suite);
      ("core", Test_core.suite);
      ("plan", Test_plan.suite);
      ("optimizer", Test_optimizer.suite);
      ("graph", Test_graph.suite);
      ("queries", Test_queries.suite);
      ("postprocess", Test_postprocess.suite);
      ("infer", Test_infer.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("shared-fit", Test_shared_fit.suite);
      ("lookahead", Test_lookahead.suite);
      ("data", Test_data.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("baselines", Test_baselines.suite);
      ("laws", Test_laws.suite);
      ("experiments", Test_experiments.suite);
      ("ledger", Test_ledger.suite);
      ("stream", Test_stream.suite);
    ]
