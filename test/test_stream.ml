(* The continual-observation pipeline: durable ingestion, epoch scheduling
   with typed refusal and graceful degradation, warm-started re-synthesis,
   and bit-identical kill/resume of the whole supervisor. *)

module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Io = Wpinq_graph.Io
module Persist = Wpinq_persist.Persist
module Journal = Wpinq_persist.Journal
module Fault = Persist.Fault
module Schedule = Wpinq_core.Budget.Schedule
module W = Wpinq_infer.Workflow
module Shutdown = Wpinq_infer.Shutdown
module Event = Wpinq_stream.Event
module Ingest = Wpinq_stream.Ingest
module Policy = Wpinq_stream.Policy
module Sup = Wpinq_stream.Supervisor

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let with_temp_dir f =
  let dir = Filename.temp_file "wpinq_stream" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm ();
      Shutdown.reset ();
      remove_tree dir)
    (fun () -> f dir)

let check_close ?(tol = 1e-9) what expected actual =
  Alcotest.(check (float tol)) what expected actual

(* ---- events ---- *)

let test_event_codec () =
  let e = Event.make ~time:3.5 ~op:Event.Arrive ~u:7 ~v:2 in
  Alcotest.(check (pair int int)) "normalized" (2, 7) (e.Event.u, e.Event.v);
  let seq, e' = Event.decode (Event.encode ~seq:42 e) in
  Alcotest.(check int) "seq round-trips" 42 seq;
  Alcotest.(check bool) "event round-trips" true (e = e');
  (match Event.make ~time:0.0 ~op:Event.Arrive ~u:3 ~v:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self-loop accepted");
  (match Event.make ~time:Float.nan ~op:Event.Depart ~u:0 ~v:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "NaN timestamp accepted");
  match Event.decode "garbage" with
  | exception Persist.Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "garbage payload decoded"

(* ---- ingest journal ---- *)

let ev ?(op = Event.Arrive) t u v = Event.make ~time:(float_of_int t) ~op ~u ~v

let test_ingest_roundtrip () =
  with_temp_dir (fun dir ->
      let j, rec0 = Ingest.open_dir dir in
      Alcotest.(check int) "fresh journal replays nothing" 0
        (List.length rec0.Ingest.replayed);
      let s1 = Ingest.append j (ev 1 0 1) in
      let s2 = Ingest.append j (ev 2 1 2) in
      let s3 = Ingest.append j (ev 3 0 1 ~op:Event.Depart) in
      Alcotest.(check (list int)) "seqs are contiguous" [ 1; 2; 3 ] [ s1; s2; s3 ];
      Ingest.close j;
      let j', recovery = Ingest.open_dir dir in
      Alcotest.(check int) "all acknowledged events replay" 3
        (List.length recovery.Ingest.replayed);
      Alcotest.(check int) "no torn bytes" 0 recovery.Ingest.torn_bytes;
      Alcotest.(check int) "head survives" 3 (Ingest.head j');
      Alcotest.(check bool) "event bytes survive" true
        (List.map snd recovery.Ingest.replayed
        = [ ev 1 0 1; ev 2 1 2; ev 3 0 1 ~op:Event.Depart ]);
      Ingest.close j')

let test_ingest_torn_tail () =
  with_temp_dir (fun dir ->
      let j, _ = Ingest.open_dir dir in
      ignore (Ingest.append j (ev 1 0 1));
      ignore (Ingest.append j (ev 2 1 2));
      Ingest.close j;
      (* A crash mid-append: garbage after the last whole record. *)
      let path = Filename.concat dir "wal.log" in
      let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
      output_string oc "\x09\x00\x00\x00\x00\x00\x00\x00torn";
      close_out oc;
      let j', recovery = Ingest.open_dir dir in
      Alcotest.(check bool) "torn tail detected" true (recovery.Ingest.torn_bytes > 0);
      Alcotest.(check int) "acknowledged events survive" 2
        (List.length recovery.Ingest.replayed);
      (* The tail was trimmed: appending after recovery lands cleanly. *)
      ignore (Ingest.append j' (ev 3 2 3));
      Ingest.close j';
      let j'', recovery' = Ingest.open_dir dir in
      Alcotest.(check int) "clean after trim" 0 recovery'.Ingest.torn_bytes;
      Alcotest.(check int) "post-trim append survives" 3 (Ingest.head j'');
      Ingest.close j'')

let test_ingest_compaction () =
  with_temp_dir (fun dir ->
      let j, _ = Ingest.open_dir dir in
      for i = 1 to 6 do
        ignore (Ingest.append j (ev i (i - 1) i))
      done;
      (* Commit the first four: the secret is then the path 0-1-2-3-4. *)
      let edges = [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
      Ingest.compact j ~upto:4 ~edges;
      Alcotest.(check (pair int (list (pair int int)))) "base recorded" (4, edges)
        (Ingest.base j);
      Alcotest.(check int) "uncommitted events remain" 2
        (List.length (Ingest.events_after j 4));
      Ingest.close j;
      let j', recovery = Ingest.open_dir dir in
      Alcotest.(check (pair int (list (pair int int)))) "base survives reopen" (4, edges)
        (Ingest.base j');
      Alcotest.(check int) "uncommitted events replay" 2
        (List.length recovery.Ingest.replayed);
      Alcotest.(check int) "head survives compaction" 6 (Ingest.head j');
      Ingest.close j')

(* ---- budget schedule ---- *)

let test_schedule_arithmetic () =
  let s = Schedule.create ~name:"s" ~per_epoch:1.0 ~epochs:3 ~policy:Schedule.Roll_forward in
  (match Schedule.next s ~epoch:0 with
  | Ok a -> check_close "first allowance" 1.0 a
  | Error _ -> Alcotest.fail "first epoch refused");
  Schedule.complete s ~epoch:0 ~spent:0.75;
  (* Roll-forward: the unspent quarter joins the next grant. *)
  (match Schedule.next s ~epoch:1 with
  | Ok a -> check_close "carried allowance" 1.25 a
  | Error _ -> Alcotest.fail "second epoch refused");
  Schedule.degrade s ~epoch:1 ~spent:0.0;
  (match Schedule.next s ~epoch:2 with
  | Ok a -> check_close "degraded epoch rolls everything" 2.25 a
  | Error _ -> Alcotest.fail "third epoch refused");
  Schedule.complete s ~epoch:2 ~spent:2.25;
  (match Schedule.next s ~epoch:3 with
  | Ok _ -> Alcotest.fail "exhausted schedule granted a fourth epoch"
  | Error r -> Alcotest.(check int) "refusal names the cap" 3 r.Schedule.epochs);
  Schedule.refuse s ~epoch:3;
  let b = Schedule.books s in
  check_close "granted = 3 fresh epochs" 3.0 b.Schedule.granted;
  check_close "all spent" 3.0 b.Schedule.spent;
  check_close "nothing left carried" 0.0 b.Schedule.carried;
  check_close "nothing forfeited" 0.0 b.Schedule.forfeited;
  check_close "overspend is zero" 0.0 (Schedule.overspend s);
  Alcotest.(check int) "log records every disposition" 4 (List.length (Schedule.log s))

let test_schedule_forfeit () =
  let s = Schedule.create ~name:"s" ~per_epoch:1.0 ~epochs:2 ~policy:Schedule.Forfeit in
  (match Schedule.next s ~epoch:0 with Ok _ -> () | Error _ -> Alcotest.fail "refused");
  Schedule.degrade s ~epoch:0 ~spent:0.25;
  (match Schedule.next s ~epoch:1 with
  | Ok a -> check_close "forfeit carries nothing" 1.0 a
  | Error _ -> Alcotest.fail "refused");
  Schedule.complete s ~epoch:1 ~spent:1.0;
  let b = Schedule.books s in
  check_close "unspent was destroyed" 0.75 b.Schedule.forfeited;
  check_close "overspend still zero" 0.0 (Schedule.overspend s)

let test_schedule_guards () =
  let s = Schedule.create ~name:"s" ~per_epoch:1.0 ~epochs:2 ~policy:Schedule.Roll_forward in
  (match Schedule.next s ~epoch:0 with Ok _ -> () | Error _ -> Alcotest.fail "refused");
  (* A second grant with one outstanding is a programming error. *)
  (match Schedule.next s ~epoch:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "double grant accepted");
  (* Settling over the allowance is refused: the schedule is the spend cap. *)
  (match Schedule.complete s ~epoch:0 ~spent:1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "overspend accepted");
  Schedule.complete s ~epoch:0 ~spent:0.5

let test_schedule_save_load () =
  let s = Schedule.create ~name:"s" ~per_epoch:0.5 ~epochs:4 ~policy:Schedule.Forfeit in
  (match Schedule.next s ~epoch:0 with Ok _ -> () | Error _ -> Alcotest.fail "refused");
  Schedule.complete s ~epoch:0 ~spent:0.25;
  (match Schedule.next s ~epoch:1 with Ok _ -> () | Error _ -> Alcotest.fail "refused");
  Schedule.degrade s ~epoch:1 ~spent:0.0;
  Schedule.refuse s ~epoch:2;
  let buf = Buffer.create 128 in
  Schedule.save s buf;
  let s' = Schedule.load (Persist.Codec.reader (Buffer.contents buf)) in
  Alcotest.(check bool) "books round-trip" true (Schedule.books s = Schedule.books s');
  Alcotest.(check bool) "log round-trips" true (Schedule.log s = Schedule.log s');
  Alcotest.(check bool) "policy round-trips" true
    (Schedule.policy s' = Schedule.Forfeit)

(* ---- supervisor ---- *)

(* A small evolving secret: arrivals building a clustered graph, then a
   few arrivals/departures per epoch. *)
let base_graph = lazy (Wpinq_graph.Gen.clustered ~n:24 ~community:6 ~p_in:0.8 ~extra:10 (Prng.create 9))

let base_events () =
  List.mapi (fun i (u, v) -> ev (i + 1) u v) (Graph.edges (Lazy.force base_graph))

let delta_events ~from =
  (* Deterministic churn: drop two base edges, add three fresh ones. *)
  let base = Graph.edges (Lazy.force base_graph) in
  let drop = [ List.nth base 0; List.nth base 7 ] in
  let add = [ (0, 23); (3, 21); (5, 19) ] in
  List.mapi (fun i (u, v) -> ev (from + i) u v ~op:Event.Depart) drop
  @ List.mapi (fun i (u, v) -> ev (from + 10 + i) u v) add

let small_config ?(retries = 2) ?(policy = Policy.Roll_forward) ?(epochs = 4) () =
  Sup.config ~steps:300 ~pow:100.0 ~checkpoint_every:100 ~trace_every:100 ~fsync:false
    ~retries ~policy ~per_epoch:2.0 ~epochs ~seed:3 ()

let feed_all sup events = List.iter (fun e -> ignore (Sup.submit sup e)) events

let test_supervisor_epochs () =
  with_temp_dir (fun dir ->
      let sup, rec0 = Sup.open_dir ~config:(small_config ()) dir in
      Alcotest.(check (option int)) "fresh open resumes nothing" None
        rec0.Sup.resumed_epoch;
      feed_all sup (base_events ());
      let n_base = List.length (base_events ()) in
      (match Sup.tick sup with
      | Some (Sup.Completed c) ->
          Alcotest.(check int) "epoch 0" 0 c.epoch;
          Alcotest.(check int) "all events consumed" n_base c.events;
          check_close "allowance is the per-epoch grant" 2.0 c.allowance;
          Alcotest.(check bool) "budget was spent" true (c.spent > 0.0);
          Alcotest.(check bool) "spent within allowance" true (c.spent <= 2.0 +. 1e-9)
      | other ->
          Alcotest.failf "epoch 0 did not complete: %s"
            (match other with Some o -> Sup.outcome_to_string o | None -> "interrupted"));
      Alcotest.(check int) "nothing pending" 0 (Sup.pending sup);
      Alcotest.(check bool) "a synthetic graph was released" true
        (Sup.synthetic sup <> None);
      feed_all sup (delta_events ~from:1000);
      (match Sup.tick sup with
      | Some (Sup.Completed c) ->
          Alcotest.(check int) "epoch 1" 1 c.epoch;
          Alcotest.(check int) "churn consumed" 5 c.events
      | _ -> Alcotest.fail "epoch 1 did not complete");
      (* The live secret tracks the churn: departures removed, arrivals added. *)
      let edges = Sup.protected_edges sup in
      Alcotest.(check bool) "departed edge gone" false
        (List.mem (List.nth (Graph.edges (Lazy.force base_graph)) 0) edges);
      Alcotest.(check bool) "arrived edge present" true (List.mem (0, 23) edges);
      check_close "no overspend" 0.0 (Sup.overspend sup);
      Sup.close sup)

(* Kill the supervisor mid-epoch at an armed fault site, reopen, re-tick:
   outcomes, released graphs, and books must be bit-identical to the
   uninterrupted reference. *)
let kill_resume_round ~site ~after () =
  let reference =
    with_temp_dir (fun dir ->
        let sup, _ = Sup.open_dir ~config:(small_config ()) dir in
        feed_all sup (base_events ());
        let o1 = Sup.tick sup in
        feed_all sup (delta_events ~from:1000);
        let o2 = Sup.tick sup in
        let out = (o1, o2, Option.map Graph.edges (Sup.synthetic sup), Sup.books sup) in
        Sup.close sup;
        out)
  in
  with_temp_dir (fun dir ->
      let cfg = small_config () in
      let sup, _ = Sup.open_dir ~config:cfg dir in
      feed_all sup (base_events ());
      Fault.arm ~site ~after;
      let o1 =
        match Sup.tick sup with
        | o -> Fault.disarm (); o
        | exception Fault.Injected _ ->
            Fault.disarm ();
            (* The process died: everything in memory is gone.  Reopen from
               the journals and run the tick again. *)
            let sup, _ = Sup.open_dir ~config:cfg dir in
            let o = Sup.tick sup in
            Sup.close sup;
            o
      in
      (* Reopen regardless, proving settled state also survives rest. *)
      let sup, _ = Sup.open_dir ~config:cfg dir in
      feed_all sup (delta_events ~from:1000);
      let o2 = Sup.tick sup in
      let got = (o1, o2, Option.map Graph.edges (Sup.synthetic sup), Sup.books sup) in
      Sup.close sup;
      Alcotest.(check bool)
        (Printf.sprintf "kill at %s[%d] is invisible" site after)
        true (got = reference))

let test_kill_resume_epoch_journal () = kill_resume_round ~site:"epoch.append" ~after:1 ()
let test_kill_resume_mcmc () = kill_resume_round ~site:"mcmc.step" ~after:150 ()
let test_kill_resume_checkpoint () = kill_resume_round ~site:"atomic.rename" ~after:2 ()

let test_chaos_retry_then_complete () =
  (* One transient failure, then success: the retry must re-derive the
     identical epoch (same noise, same walk) and only the retry counter
     may differ from an undisturbed run. *)
  let clean =
    with_temp_dir (fun dir ->
        let sup, _ = Sup.open_dir ~config:(small_config ()) dir in
        feed_all sup (base_events ());
        let o = Sup.tick sup in
        Sup.close sup;
        o)
  in
  with_temp_dir (fun dir ->
      let chaos ~epoch ~attempt =
        if epoch = 0 && attempt = 0 then Some "flaky disk" else None
      in
      let sup, _ = Sup.open_dir ~chaos ~config:(small_config ()) dir in
      feed_all sup (base_events ());
      (match (Sup.tick sup, clean) with
      | Some (Sup.Completed got), Some (Sup.Completed want) ->
          Alcotest.(check int) "one retry recorded" 1 got.Sup.retries;
          Alcotest.(check bool) "same epoch modulo the retry counter" true
            ({ got with Sup.retries = 0 } = want)
      | _ -> Alcotest.fail "retry did not complete the epoch");
      check_close "no overspend after retry" 0.0 (Sup.overspend sup);
      Sup.close sup)

let test_chaos_exhausted_degrades () =
  with_temp_dir (fun dir ->
      (* Epoch 0 fails every attempt; epoch 1 is healthy and inherits both
         the rolled-forward budget and the deferred events. *)
      let chaos ~epoch ~attempt:_ = if epoch = 0 then Some "dead disk" else None in
      let sup, _ = Sup.open_dir ~chaos ~config:(small_config ~retries:1 ()) dir in
      feed_all sup (base_events ());
      let n_base = List.length (base_events ()) in
      (match Sup.tick sup with
      | Some (Sup.Merged m) ->
          Alcotest.(check int) "epoch 0 merged" 0 m.Sup.m_epoch;
          Alcotest.(check int) "retries were attempted" 1 m.Sup.m_retries;
          check_close "nothing was released, nothing spent" 0.0 m.Sup.m_spent;
          check_close "full allowance rolls forward" 2.0 m.Sup.rolled;
          check_close "nothing forfeited" 0.0 m.Sup.forfeited;
          Alcotest.(check int) "events deferred, not lost" n_base m.Sup.deferred
      | _ -> Alcotest.fail "epoch 0 did not merge");
      Alcotest.(check int) "deferred events still pending" n_base (Sup.pending sup);
      (match Sup.tick sup with
      | Some (Sup.Completed c) ->
          Alcotest.(check int) "epoch 1 completed" 1 c.epoch;
          check_close "allowance includes the rolled grant" 4.0 c.allowance;
          Alcotest.(check int) "deferred events consumed" n_base c.events
      | _ -> Alcotest.fail "epoch 1 did not complete");
      Alcotest.(check int) "nothing pending after recovery" 0 (Sup.pending sup);
      check_close "no overspend through degradation" 0.0 (Sup.overspend sup);
      Sup.close sup)

let test_forfeit_policy () =
  with_temp_dir (fun dir ->
      let chaos ~epoch ~attempt:_ = if epoch = 0 then Some "dead disk" else None in
      let sup, _ =
        Sup.open_dir ~chaos ~config:(small_config ~retries:0 ~policy:Policy.Forfeit ()) dir
      in
      feed_all sup (base_events ());
      (match Sup.tick sup with
      | Some (Sup.Merged m) ->
          check_close "allowance forfeited" 2.0 m.Sup.forfeited;
          check_close "nothing rolled" 0.0 m.Sup.rolled
      | _ -> Alcotest.fail "epoch 0 did not merge");
      (match Sup.tick sup with
      | Some (Sup.Completed c) -> check_close "no carry under forfeit" 2.0 c.allowance
      | _ -> Alcotest.fail "epoch 1 did not complete");
      let b = Sup.books sup in
      check_close "books record the forfeit" 2.0 b.Schedule.forfeited;
      check_close "no overspend" 0.0 (Sup.overspend sup);
      Sup.close sup)

let test_refusal_when_exhausted () =
  with_temp_dir (fun dir ->
      let sup, _ = Sup.open_dir ~config:(small_config ~epochs:1 ()) dir in
      feed_all sup (base_events ());
      (match Sup.tick sup with
      | Some (Sup.Completed _) -> ()
      | _ -> Alcotest.fail "epoch 0 did not complete");
      feed_all sup (delta_events ~from:1000);
      (match Sup.tick sup with
      | Some (Sup.Refused r) ->
          Alcotest.(check int) "typed refusal for epoch 1" 1 r.Sup.r_epoch;
          Alcotest.(check int) "pending events reported" 5 r.Sup.r_deferred
      | _ -> Alcotest.fail "exhausted schedule did not refuse");
      (* Refusal spends nothing and survives reopen. *)
      let books = Sup.books sup in
      let outcomes = Sup.outcomes sup in
      Sup.close sup;
      let sup', _ = Sup.open_dir ~config:(small_config ~epochs:1 ()) dir in
      Alcotest.(check bool) "books survive the refusal" true (Sup.books sup' = books);
      Alcotest.(check int) "refusal journalled" 2 (List.length (Sup.outcomes sup'));
      Alcotest.(check bool) "outcomes survive reopen in order" true
        (Sup.outcomes sup' = outcomes);
      check_close "no overspend" 0.0 (Sup.overspend sup');
      Sup.close sup')

let test_warm_seed_respects_degrees () =
  let rng = Prng.create 11 in
  let previous = Wpinq_graph.Gen.clustered ~n:20 ~community:5 ~p_in:0.8 ~extra:8 rng in
  let degrees = Array.map (fun d -> max 0 (d - 1)) (Graph.degrees previous) in
  let warm = Sup.warm_seed ~rng ~degrees ~previous in
  let got = Graph.degrees warm in
  Array.iteri
    (fun v d ->
      if d > degrees.(v) then
        Alcotest.failf "vertex %d over capacity: %d > %d" v d degrees.(v))
    got;
  (* The warm start is a simple graph that reuses previous structure. *)
  let edges = Graph.edges warm in
  let uniq = List.sort_uniq compare edges in
  Alcotest.(check int) "no duplicate edges" (List.length edges) (List.length uniq);
  List.iter (fun (u, v) -> if u = v then Alcotest.fail "self-loop in warm seed") edges;
  let prev_edges = Graph.edges previous in
  let kept = List.filter (fun e -> List.mem e prev_edges) edges in
  Alcotest.(check bool) "most surviving capacity is filled from previous edges" true
    (List.length kept > List.length prev_edges / 2)

(* ---- shutdown escalation ---- *)

let test_shutdown_double_signal_counter () =
  Shutdown.reset ();
  Alcotest.(check bool) "idle" false (Shutdown.requested ());
  Shutdown.request ();
  Alcotest.(check bool) "one signal drains" true (Shutdown.requested ());
  Alcotest.(check bool) "one signal does not force" false (Shutdown.forced ());
  Shutdown.request ();
  Alcotest.(check bool) "second signal forces" true (Shutdown.forced ());
  Shutdown.reset ();
  Alcotest.(check bool) "reset clears escalation" false (Shutdown.requested ())

(* Regression: a second SIGINT during drain must interrupt the in-flight
   epoch immediately — with a final snapshot — and the epoch must resume
   bit-identically afterwards. *)
let test_shutdown_double_signal_interrupts_epoch () =
  let reference =
    with_temp_dir (fun dir ->
        let sup, _ = Sup.open_dir ~config:(small_config ()) dir in
        feed_all sup (base_events ());
        let o = Sup.tick sup in
        let out = (o, Option.map Graph.edges (Sup.synthetic sup)) in
        Sup.close sup;
        out)
  in
  with_temp_dir (fun dir ->
      let cfg = small_config () in
      let sup, _ = Sup.open_dir ~config:cfg dir in
      feed_all sup (base_events ());
      (* Deliver two signals mid-walk: the first starts the drain, the
         second escalates and the walk must stop at the next batch. *)
      Fault.arm_action ~site:"mcmc.signal" ~after:1 (fun () ->
          Shutdown.request ();
          Shutdown.request ());
      (match Sup.tick sup with
      | None -> ()
      | Some o ->
          Alcotest.failf "forced shutdown did not interrupt: %s"
            (Sup.outcome_to_string o));
      Fault.disarm ();
      Shutdown.reset ();
      Sup.close sup;
      (* The interrupted epoch is in flight with a durable snapshot; a
         fresh process resumes and completes it bit-identically. *)
      let sup, recovery = Sup.open_dir ~config:cfg dir in
      Alcotest.(check (option int)) "epoch was left in flight" (Some 0)
        recovery.Sup.resumed_epoch;
      let o = Sup.tick sup in
      let got = (o, Option.map Graph.edges (Sup.synthetic sup)) in
      Sup.close sup;
      Alcotest.(check bool) "resumed epoch is bit-identical" true (got = reference))

(* ---- satellite: parse-time strictness ---- *)

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let test_graph_io_rejects_duplicates () =
  with_temp_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "dup.txt" in
      write_lines path [ "0 1"; "1 2"; "1 0" ];
      (match Io.read path with
      | exception Io.Parse_error { line = 3; reason; _ } ->
          Alcotest.(check bool) "reason names the duplicate" true
            (String.length reason > 0)
      | exception Io.Parse_error { line; _ } ->
          Alcotest.failf "duplicate flagged at wrong line %d" line
      | _ -> Alcotest.fail "duplicate edge accepted");
      let path2 = Filename.concat dir "loop.txt" in
      write_lines path2 [ "0 1"; "2 2" ];
      match Io.read path2 with
      | exception Io.Parse_error { line = 2; _ } -> ()
      | exception Io.Parse_error { line; _ } ->
          Alcotest.failf "self-loop flagged at wrong line %d" line
      | _ -> Alcotest.fail "self-loop accepted")

(* ---- satellite: typed I/O errors ---- *)

let test_journal_io_error_is_typed () =
  with_temp_dir (fun dir ->
      Unix.mkdir dir 0o755;
      (* Occupy the journal's path with a directory: opening must fail
         with the typed error, not a raw Sys_error. *)
      Unix.mkdir (Filename.concat dir "wal.log") 0o755;
      match Wpinq_service.Wal.open_dir dir with
      | exception Journal.Io_error { op; path; cause } ->
          Alcotest.(check bool) "op recorded" true (op = "read" || op = "open");
          Alcotest.(check bool) "path recorded" true (String.length path > 0);
          Alcotest.(check bool) "cause recorded" true (String.length cause > 0)
      | exception Sys_error _ -> Alcotest.fail "raw Sys_error escaped"
      | _ -> Alcotest.fail "journal opened over a directory")

let suite =
  [
    Alcotest.test_case "event codec" `Quick test_event_codec;
    Alcotest.test_case "ingest roundtrip" `Quick test_ingest_roundtrip;
    Alcotest.test_case "ingest torn tail" `Quick test_ingest_torn_tail;
    Alcotest.test_case "ingest compaction" `Quick test_ingest_compaction;
    Alcotest.test_case "schedule arithmetic" `Quick test_schedule_arithmetic;
    Alcotest.test_case "schedule forfeit" `Quick test_schedule_forfeit;
    Alcotest.test_case "schedule guards" `Quick test_schedule_guards;
    Alcotest.test_case "schedule save/load" `Quick test_schedule_save_load;
    Alcotest.test_case "supervisor epochs" `Slow test_supervisor_epochs;
    Alcotest.test_case "kill/resume: epoch journal" `Slow test_kill_resume_epoch_journal;
    Alcotest.test_case "kill/resume: mid-walk" `Slow test_kill_resume_mcmc;
    Alcotest.test_case "kill/resume: checkpoint write" `Slow test_kill_resume_checkpoint;
    Alcotest.test_case "chaos: retry then complete" `Slow test_chaos_retry_then_complete;
    Alcotest.test_case "chaos: exhausted degrades" `Slow test_chaos_exhausted_degrades;
    Alcotest.test_case "forfeit policy" `Slow test_forfeit_policy;
    Alcotest.test_case "refusal when exhausted" `Slow test_refusal_when_exhausted;
    Alcotest.test_case "warm seed respects degrees" `Quick test_warm_seed_respects_degrees;
    Alcotest.test_case "shutdown: double signal counter" `Quick
      test_shutdown_double_signal_counter;
    Alcotest.test_case "shutdown: double signal interrupts epoch" `Slow
      test_shutdown_double_signal_interrupts_epoch;
    Alcotest.test_case "graph io rejects duplicates" `Quick
      test_graph_io_rejects_duplicates;
    Alcotest.test_case "journal io_error is typed" `Quick test_journal_io_error_is_typed;
  ]
