(* The width-invariance property of the parallel speculative lookahead:
   [Fit.run ~jobs:k] must realize the SAME chain — bit-identical per-step
   energies, acceptance counts, final edge arrays — for every k, across
   speculation aborts, engine self-audits, checkpoint rebases, and
   multi-query shared fits.  Plus the scheduler-level guarantees: batches
   clamp to cadence boundaries, and non-replicable fits are refused. *)

module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Rewire = Wpinq_graph.Rewire
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Plan = Wpinq_core.Plan
module Measurement = Wpinq_core.Measurement
module Codec = Wpinq_persist.Persist.Codec
module Dataflow = Wpinq_dataflow.Dataflow
module Fit = Wpinq_infer.Fit
module Mcmc = Wpinq_infer.Mcmc
module W = Wpinq_infer.Workflow
module Qp = Wpinq_queries.Queries.Make (Plan)
module Qb = Wpinq_queries.Queries.Make (Batch)

let clone write read m =
  let buf = Buffer.create 1024 in
  Measurement.save write m buf;
  Measurement.load read (Codec.reader (Buffer.contents buf))

let wr_int = Codec.write_int
let rd_int = Codec.read_int

let wr_pair buf (a, b) =
  wr_int buf a;
  wr_int buf b

let rd_pair r =
  let a = rd_int r in
  let b = rd_int r in
  (a, b)

(* Degree CCDF + JDD: shared degree prefix, and JDD's pair-keyed
   measurement exercises lazy noise draws during speculative propagation —
   the state the lookahead abort must roll back exactly. *)
let measure secret =
  let budget = Budget.create ~name:"edges" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  let rng = Prng.create 42 in
  let m_ccdf = Batch.noisy_count ~rng ~epsilon:50.0 (Qb.degree_ccdf sym) in
  let m_jdd = Batch.noisy_count ~rng ~epsilon:50.0 (Qb.jdd sym) in
  (m_ccdf, m_jdd)

let shared_fit ~rng_seed ~seed_graph (mc, mj) =
  let mc = clone wr_int rd_int mc and mj = clone wr_pair rd_pair mj in
  let source = Plan.source ~name:"sym" () in
  let measured =
    [ Fit.Measured (Qp.degree_ccdf source, mc); Fit.Measured (Qp.jdd source, mj) ]
  in
  Fit.create_shared ~rng:(Prng.create rng_seed) ~seed_graph ~source ~measured ()

let problem () =
  let secret = Gen.clustered ~n:40 ~community:8 ~p_in:0.7 ~extra:20 (Prng.create 3) in
  let seed = Rewire.randomize secret (Prng.create 4) in
  (seed, measure secret)

type arm = {
  stats : Mcmc.stats;
  energies : (int * int64) list; (* (step, energy bits), oldest first *)
  edges : (int * int) array;
  batches : int;
  dispatched : int;
  consumed : int;
  counters : Mcmc.counters;
}

let run_arm ?(steps = 200) ?audit_every ?pow ?width ~jobs fit =
  let energies = ref [] in
  let batches = ref 0 and dispatched = ref 0 and consumed = ref 0 in
  let counters = Mcmc.counters () in
  let stats =
    Fit.run fit ~steps ?pow ?audit_every ~jobs ?width ~counters
      ~on_step:(fun ~step ~energy ->
        energies := (step, Int64.bits_of_float energy) :: !energies)
      ~on_batch:(fun ~dispatched:d ~consumed:c ->
        incr batches;
        dispatched := !dispatched + d;
        consumed := !consumed + c)
      ()
  in
  {
    stats;
    energies = List.rev !energies;
    edges = Fit.edge_array fit;
    batches = !batches;
    dispatched = !dispatched;
    consumed = !consumed;
    counters;
  }

let check_same_walk name (a : arm) (b : arm) =
  List.iteri
    (fun i ((sa, ea), (sb, eb)) ->
      Alcotest.(check int) (Printf.sprintf "%s: step index %d" name i) sa sb;
      Alcotest.(check int64) (Printf.sprintf "%s: energy bits at step %d" name sa) ea eb)
    (List.combine a.energies b.energies);
  Alcotest.(check int) (name ^ ": accepted") a.stats.Mcmc.accepted b.stats.Mcmc.accepted;
  Alcotest.(check int) (name ^ ": invalid") a.stats.Mcmc.invalid b.stats.Mcmc.invalid;
  Alcotest.(check int64)
    (name ^ ": final energy bits")
    (Int64.bits_of_float a.stats.Mcmc.final_energy)
    (Int64.bits_of_float b.stats.Mcmc.final_energy);
  Alcotest.(check (array (pair int int))) (name ^ ": final edge arrays") a.edges b.edges

(* K in {1, 2, 4} realize the same chain; wider arms consume the whole
   dispatched prefix less often, so they take fewer batches. *)
let test_width_invariance () =
  let seed, ms = problem () in
  let arm jobs = run_arm ~steps:200 ~jobs (shared_fit ~rng_seed:7 ~seed_graph:seed ms) in
  let a1 = arm 1 and a2 = arm 2 and a4 = arm 4 in
  check_same_walk "jobs 1 vs 2" a1 a2;
  check_same_walk "jobs 1 vs 4" a1 a4;
  Alcotest.(check int) "jobs=1 batches = steps" 200 a1.batches;
  Alcotest.(check int) "jobs=1 lookahead is exact" a1.dispatched a1.consumed;
  Alcotest.(check bool)
    (Printf.sprintf "jobs=4 batches fewer than jobs=2 (%d < %d)" a4.batches a2.batches)
    true
    (a4.batches <= a2.batches && a2.batches < a1.batches);
  Alcotest.(check bool) "lookahead discards some speculation" true
    (a4.dispatched > a4.consumed)

(* Same chain with the engine self-audit enabled: audits run at their exact
   cadence in every arm (batches clamp to the boundary), stay clean, and
   leave the walk bit-identical. *)
let test_width_invariance_with_audits () =
  let seed, ms = problem () in
  let arm jobs =
    run_arm ~steps:150 ~audit_every:50 ~jobs
      (shared_fit ~rng_seed:11 ~seed_graph:seed ms)
  in
  let a1 = arm 1 and a3 = run_arm ~steps:150 ~audit_every:50 ~jobs:3
      (shared_fit ~rng_seed:11 ~seed_graph:seed ms) in
  ignore (arm 1);
  check_same_walk "audited walk jobs 1 vs 3" a1 a3;
  Alcotest.(check int) "jobs=1 audits ran" 3 a1.stats.Mcmc.audits;
  Alcotest.(check int) "jobs=3 audits ran" 3 a3.stats.Mcmc.audits;
  Alcotest.(check int) "jobs=1 audits clean" 0 a1.stats.Mcmc.audit_divergences;
  Alcotest.(check int) "jobs=3 audits clean" 0 a3.stats.Mcmc.audit_divergences

(* End-to-end through Workflow: synthesize at widths 1, 2 and 4 — with
   checkpoint rebases in the loop — produce bit-identical results and
   byte-identical final snapshots. *)
let test_workflow_width_invariance () =
  let secret = Gen.clustered ~n:40 ~community:8 ~p_in:0.7 ~extra:20 (Prng.create 5) in
  let run ~jobs path =
    let r =
      W.synthesize ~steps:900 ~trace_every:300 ~jobs
        ~checkpoint:{ W.every = 300; sink = W.Single path }
        ~rng:(Prng.create 123) ~epsilon:0.5
        ~query:(Some W.Tbi) ~queries:[ W.Jdd ] ~secret ()
    in
    let bytes = In_channel.with_open_bin path In_channel.input_all in
    (r, bytes)
  in
  let r1, b1 = Test_checkpoint.with_ckpt (fun p -> run ~jobs:1 p) in
  let r2, b2 = Test_checkpoint.with_ckpt (fun p -> run ~jobs:2 p) in
  let r4, b4 = Test_checkpoint.with_ckpt (fun p -> run ~jobs:4 p) in
  let check name (a : W.result) (b : W.result) =
    Alcotest.(check int) (name ^ ": accepted") a.W.stats.Mcmc.accepted
      b.W.stats.Mcmc.accepted;
    Alcotest.(check int64)
      (name ^ ": final energy bits")
      (Int64.bits_of_float a.W.stats.Mcmc.final_energy)
      (Int64.bits_of_float b.W.stats.Mcmc.final_energy);
    Alcotest.(check (list (pair int int)))
      (name ^ ": synthetic edges")
      (Graph.edges a.W.synthetic) (Graph.edges b.W.synthetic);
    Alcotest.(check int)
      (name ^ ": trace length")
      (List.length a.W.trace) (List.length b.W.trace)
  in
  check "jobs 1 vs 2" r1 r2;
  check "jobs 1 vs 4" r1 r4;
  (* The snapshot embeds ck_jobs (the width is the resume default), so
     byte-identity holds per width after patching nothing — compare sizes
     and, for equal widths, exact bytes via a rerun. *)
  Alcotest.(check int) "snapshot sizes equal (1 vs 2)" (String.length b1)
    (String.length b2);
  Alcotest.(check int) "snapshot sizes equal (1 vs 4)" (String.length b1)
    (String.length b4);
  let r1', b1' = Test_checkpoint.with_ckpt (fun p -> run ~jobs:1 p) in
  check "jobs 1 rerun" r1 r1';
  Alcotest.(check bool) "snapshot bytes reproducible" true (String.equal b1 b1')

(* A checkpointed multi-width run resumes at a DIFFERENT width and still
   matches the uninterrupted chain bit-for-bit. *)
let test_resume_across_widths () =
  let secret = Gen.clustered ~n:40 ~community:8 ~p_in:0.7 ~extra:20 (Prng.create 5) in
  let synth ~jobs ?stop path =
    W.synthesize ~steps:900 ~trace_every:300 ~jobs ?stop
      ~checkpoint:{ W.every = 300; sink = W.Single path }
      ~rng:(Prng.create 123) ~epsilon:0.5 ~query:(Some W.Tbi) ~secret ()
  in
  let expect = Test_checkpoint.with_ckpt (fun p -> synth ~jobs:2 p) in
  let resumed =
    Test_checkpoint.with_ckpt (fun p ->
        (* Stop partway (batch-aligned by construction), then resume wider. *)
        let polls = ref 0 in
        let stop () =
          incr polls;
          !polls > 150
        in
        let partial = synth ~jobs:2 ~stop p in
        Alcotest.(check bool) "stopped early" true partial.W.stats.Mcmc.interrupted;
        (* Resume wider AND under a different width policy: the chain is
           invariant to both. *)
        W.resume ~jobs:4 ~width:(Mcmc.Adaptive { max_width = 16 }) ~path:p ())
  in
  Alcotest.(check int) "accepted" expect.W.stats.Mcmc.accepted
    resumed.W.stats.Mcmc.accepted;
  Alcotest.(check int64) "final energy bits"
    (Int64.bits_of_float expect.W.stats.Mcmc.final_energy)
    (Int64.bits_of_float resumed.W.stats.Mcmc.final_energy);
  Alcotest.(check (list (pair int int)))
    "synthetic edges"
    (Graph.edges expect.W.synthetic) (Graph.edges resumed.W.synthetic)

(* The adaptive-width policy must leave the chain untouched: only
   wall-clock (and the batch structure) may differ from the serial
   reference.  The counters prove the policy actually adapted — the
   realized width grew past the worker count. *)
let test_adaptive_invariance () =
  let seed, ms = problem () in
  let serial = run_arm ~steps:200 ~jobs:1 (shared_fit ~rng_seed:7 ~seed_graph:seed ms) in
  let adaptive jobs =
    run_arm ~steps:200 ~jobs
      ~width:(Mcmc.Adaptive { max_width = 8 })
      (shared_fit ~rng_seed:7 ~seed_graph:seed ms)
  in
  let a1 = adaptive 1 and a2 = adaptive 2 in
  check_same_walk "serial vs adaptive jobs=1" serial a1;
  check_same_walk "serial vs adaptive jobs=2" serial a2;
  Alcotest.(check bool)
    (Printf.sprintf "adaptive width grew past jobs (k_max %d)" a2.counters.Mcmc.k_max)
    true
    (a2.counters.Mcmc.k_max > 2);
  Alcotest.(check bool) "adaptive width bounded" true (a2.counters.Mcmc.k_max <= 8);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive takes fewer batches (%d < %d)" a2.batches serial.batches)
    true
    (a2.batches < serial.batches)

(* Schedule is the adversarial width policy: force shrink-to-1, regrow,
   oscillate — with audits in the loop — and the chain must still match
   the serial reference bit for bit. *)
let test_schedule_invariance () =
  let seed, ms = problem () in
  let serial =
    run_arm ~steps:150 ~audit_every:50 ~jobs:1 (shared_fit ~rng_seed:11 ~seed_graph:seed ms)
  in
  let schedules =
    [
      ("shrink-to-1 and regrow", fun i -> match i mod 4 with 0 -> 1 | 1 -> 7 | 2 -> 1 | _ -> 3);
      ("sawtooth", fun i -> 1 + (i mod 6));
      ("always wide", fun _ -> 9);
    ]
  in
  List.iter
    (fun (name, f) ->
      let a =
        run_arm ~steps:150 ~audit_every:50 ~jobs:2 ~width:(Mcmc.Schedule f)
          (shared_fit ~rng_seed:11 ~seed_graph:seed ms)
      in
      check_same_walk ("serial vs schedule " ^ name) serial a;
      Alcotest.(check int) (name ^ ": audits ran") 3 a.stats.Mcmc.audits)
    schedules

(* Counters sanity: phases accumulate, the width trajectory is recorded,
   and the accepted-swap commit path is O(delta) cheap relative to a full
   speculative evaluation (per-event, commit must not dwarf eval). *)
let test_counters_recorded () =
  let seed, ms = problem () in
  let a =
    run_arm ~steps:200 ~jobs:2
      ~width:(Mcmc.Adaptive { max_width = 8 })
      (shared_fit ~rng_seed:7 ~seed_graph:seed ms)
  in
  let c = a.counters in
  Alcotest.(check int) "batches counted" a.batches c.Mcmc.batches;
  Alcotest.(check int) "k_sum = dispatched" a.dispatched c.Mcmc.k_sum;
  Alcotest.(check bool) "k_min >= 1" true (c.Mcmc.k_min >= 1);
  Alcotest.(check bool) "k_min <= k_max" true (c.Mcmc.k_min <= c.Mcmc.k_max);
  Alcotest.(check bool) "eval time recorded" true (c.Mcmc.eval_us > 0.0);
  Alcotest.(check bool) "resolve time recorded" true (c.Mcmc.resolve_us > 0.0);
  Alcotest.(check bool) "dispatch time recorded" true (c.Mcmc.dispatch_us > 0.0);
  Alcotest.(check bool) "commit time non-negative" true (c.Mcmc.commit_us >= 0.0);
  Alcotest.(check bool) "walk accepted something" true (a.stats.Mcmc.accepted > 0);
  (* The tentpole's point: committing an accepted swap (one 8-record delta
     feed) costs far less than speculatively evaluating a proposal (the
     same propagation plus undo logging, commit/abort drain, and Metropolis
     bookkeeping).  Give it 3x headroom against timer noise. *)
  let commit_per_event = c.Mcmc.commit_us /. float (max 1 a.stats.Mcmc.accepted) in
  let eval_per_event = c.Mcmc.eval_us /. float (max 1 a.dispatched) in
  Alcotest.(check bool)
    (Printf.sprintf "commit O(delta) cheap (%.1fus/commit vs %.1fus/eval)" commit_per_event
       eval_per_event)
    true
    (commit_per_event < 3.0 *. eval_per_event)

(* Exception safety: a hook that raises mid-walk must propagate out of
   [Fit.run ~jobs] with the worker domains joined — a leaked domain would
   hang the runtime at exit (and a prompt second run proves the fit and
   the pool teardown are clean). *)
exception Boom

let test_hook_exception_joins_workers () =
  let seed, ms = problem () in
  let fit = shared_fit ~rng_seed:7 ~seed_graph:seed ms in
  let raised =
    try
      ignore
        (Fit.run fit ~steps:200 ~jobs:2
           ~width:(Mcmc.Adaptive { max_width = 8 })
           ~on_step:(fun ~step ~energy:_ -> if step = 57 then raise Boom)
           ());
      false
    with Boom -> true
  in
  Alcotest.(check bool) "hook exception propagated" true raised;
  (* The pool (and its domains) are gone; the owner fit is still a valid
     committed state and can stand up a fresh pool immediately. *)
  let again = run_arm ~steps:50 ~jobs:2 fit in
  Alcotest.(check bool) "fit usable after teardown" true
    (Float.is_finite again.stats.Mcmc.final_energy)

(* Fits built from opaque target closures share measurement state across
   instances and cannot be replicated: the pool must refuse them. *)
let test_non_replicable_refused () =
  let seed, _ = problem () in
  let budget = Budget.create ~name:"edges" 1e9 in
  let sym_b = Batch.source_records ~budget (Graph.directed_edges seed) in
  let m = Batch.noisy_count ~rng:(Prng.create 2) ~epsilon:50.0 (Qb.degree_ccdf sym_b) in
  let module Qf = Wpinq_queries.Queries.Make (Flow) in
  let fit =
    Fit.create ~rng:(Prng.create 7) ~seed_graph:seed
      ~targets:[ (fun sym -> Flow.Target.create (Qf.degree_ccdf sym) m) ]
      ()
  in
  Alcotest.(check bool) "not replicable" false (Fit.replicable fit);
  Alcotest.check_raises "pool refuses opaque fits"
    (Invalid_argument
       "Fit.Pool.create: fit is not replicable (build it with create_shared / \
        restore_shared)") (fun () -> ignore (run_arm ~steps:10 ~jobs:2 fit))

let suite =
  [
    Alcotest.test_case "lookahead width invariance (K in {1,2,4})" `Quick
      test_width_invariance;
    Alcotest.test_case "width invariance under self-audits" `Quick
      test_width_invariance_with_audits;
    Alcotest.test_case "adaptive width invariance + actually adapts" `Quick
      test_adaptive_invariance;
    Alcotest.test_case "schedule invariance (shrink-to-1, regrow, audits)" `Quick
      test_schedule_invariance;
    Alcotest.test_case "phase counters + O(delta) commit" `Quick test_counters_recorded;
    Alcotest.test_case "hook exception joins worker domains" `Quick
      test_hook_exception_joins_workers;
    Alcotest.test_case "workflow width invariance + snapshot reproducibility" `Quick
      test_workflow_width_invariance;
    Alcotest.test_case "resume at a different width" `Quick test_resume_across_widths;
    Alcotest.test_case "non-replicable fits refused" `Quick test_non_replicable_refused;
  ]
