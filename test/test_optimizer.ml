(* The optimizer's contract, property-tested: over random well-typed
   plans, rewriting preserves the privacy bookkeeping ({!Plan.uses} and
   {!Plan.source_uses}) exactly, is idempotent, and — under the exact
   rule set — preserves released measurement values bit for bit.  Plus
   hand-built instances of each rule, the cost guard that refuses to
   split shared subtrees, the canonical plan cache, and the end-to-end
   shared-fit equivalence of optimized vs unoptimized pipelines. *)

module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Rewire = Wpinq_graph.Rewire
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Plan = Wpinq_core.Plan
module M = Wpinq_core.Measurement
module Dataflow = Wpinq_dataflow.Dataflow
module Fit = Wpinq_infer.Fit
module Qp = Wpinq_queries.Queries.Make (Plan)
module Qb = Wpinq_queries.Queries.Make (Batch)

(* ---------- a generator of random well-typed plans ----------

   Plans are described by a first-order AST over [(int * int)] records;
   [build] interprets a description against a source leaf, drawing every
   embedded closure from the module-level pools below.  Pool closures are
   allocated once, so building the same description twice constructs
   physically equal nodes — which is exactly what hash-consing promises
   to dedup. *)

type desc =
  | Dsrc
  | Dselect of int * desc
  | Dwhere of int * desc
  | Dselect_many of int * desc
  | Ddistinct of int * desc
  | Dshave of int * desc
  | Dgroup of int * desc
  | Dconcat of desc * desc
  | Dunion of desc * desc
  | Dintersect of desc * desc
  | Dexcept of desc * desc
  | Djoin of int * int * int * desc * desc

let selects =
  [|
    (fun (a, b) -> (a + 1, b));
    (fun (a, b) -> (b, a));
    (fun (a, _) -> (a, 0));
    (fun (a, b) -> (a land 7, b land 7));
  |]

let preds =
  [|
    (fun (a, _) -> a mod 2 = 0);
    (fun (a, b) -> a < b);
    (fun (_, b) -> b mod 3 <> 0);
  |]

let emitters =
  [|
    (fun (a, b) -> [ ((a, b), 0.5); ((b, a), 0.5) ]);
    (fun (a, b) -> if a mod 2 = 0 then [ ((a, b), 1.0) ] else []);
  |]

let bounds = [| 0.5; 1.0; 2.0 |]
let shave_cuts = [| 0.25; 0.75 |]
let shave_back ((a, b), i) = (a + i, b)
let keys = [| (fun (a, _) -> a mod 4); (fun (_, b) -> b mod 4); (fun (a, b) -> (a + b) mod 4) |]
let group_len l = List.length l
let group_back (k, n) = (k, n)
let reduces = [| (fun (a, _) (c, _) -> (a, c)); (fun (_, b) (_, d) -> (b, d)) |]

let rec build src = function
  | Dsrc -> src
  | Dselect (i, d) -> Plan.select selects.(i) (build src d)
  | Dwhere (i, d) -> Plan.where preds.(i) (build src d)
  | Dselect_many (i, d) -> Plan.select_many emitters.(i) (build src d)
  | Ddistinct (i, d) -> Plan.distinct ~bound:bounds.(i) (build src d)
  | Dshave (i, d) -> Plan.select shave_back (Plan.shave_const shave_cuts.(i) (build src d))
  | Dgroup (i, d) ->
      Plan.select group_back (Plan.group_by ~key:keys.(i) ~reduce:group_len (build src d))
  | Dconcat (a, b) -> Plan.concat (build src a) (build src b)
  | Dunion (a, b) -> Plan.union (build src a) (build src b)
  | Dintersect (a, b) -> Plan.intersect (build src a) (build src b)
  | Dexcept (a, b) -> Plan.except (build src a) (build src b)
  | Djoin (kl, kr, r, a, b) ->
      Plan.join ~kl:keys.(kl) ~kr:keys.(kr) ~reduce:reduces.(r) (build src a) (build src b)

let desc_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then return Dsrc
         else
           let sub = self (n / 2) in
           frequency
             [
               (1, return Dsrc);
               (4, map2 (fun i d -> Dselect (i, d)) (int_bound 3) sub);
               (4, map2 (fun i d -> Dwhere (i, d)) (int_bound 2) sub);
               (2, map2 (fun i d -> Dselect_many (i, d)) (int_bound 1) sub);
               (2, map2 (fun i d -> Ddistinct (i, d)) (int_bound 2) sub);
               (1, map2 (fun i d -> Dshave (i, d)) (int_bound 1) sub);
               (1, map2 (fun i d -> Dgroup (i, d)) (int_bound 2) sub);
               (2, map2 (fun a b -> Dconcat (a, b)) sub sub);
               (2, map2 (fun a b -> Dunion (a, b)) sub sub);
               (1, map2 (fun a b -> Dintersect (a, b)) sub sub);
               (1, map2 (fun a b -> Dexcept (a, b)) sub sub);
               ( 2,
                 map2
                   (fun (kl, kr, r) (a, b) -> Djoin (kl, kr, r, a, b))
                   (triple (int_bound 2) (int_bound 2) (int_bound 1))
                   (pair sub sub) );
             ])

let rec desc_show = function
  | Dsrc -> "src"
  | Dselect (i, d) -> Printf.sprintf "select#%d(%s)" i (desc_show d)
  | Dwhere (i, d) -> Printf.sprintf "where#%d(%s)" i (desc_show d)
  | Dselect_many (i, d) -> Printf.sprintf "select_many#%d(%s)" i (desc_show d)
  | Ddistinct (i, d) -> Printf.sprintf "distinct#%d(%s)" i (desc_show d)
  | Dshave (i, d) -> Printf.sprintf "shave#%d(%s)" i (desc_show d)
  | Dgroup (i, d) -> Printf.sprintf "group#%d(%s)" i (desc_show d)
  | Dconcat (a, b) -> Printf.sprintf "concat(%s, %s)" (desc_show a) (desc_show b)
  | Dunion (a, b) -> Printf.sprintf "union(%s, %s)" (desc_show a) (desc_show b)
  | Dintersect (a, b) -> Printf.sprintf "intersect(%s, %s)" (desc_show a) (desc_show b)
  | Dexcept (a, b) -> Printf.sprintf "except(%s, %s)" (desc_show a) (desc_show b)
  | Djoin (kl, kr, r, a, b) ->
      Printf.sprintf "join#%d%d%d(%s, %s)" kl kr r (desc_show a) (desc_show b)

let desc_arb = QCheck.make ~print:desc_show desc_gen

let prop ?(count = 150) name p =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name desc_arb p)

(* A fixed public record set every evaluation property lowers against. *)
let records =
  List.init 24 (fun i -> (((i * 7) mod 12, (i * 5) mod 9), 0.25 +. (0.25 *. float (i mod 4))))

(* Lower [p] over [records] and release a noisy count at a fixed seed:
   the (bit-level) observable an analyst actually receives. *)
let release p =
  let src : (int * int) Plan.t = Plan.source ~name:"xs" () in
  let ctx = Batch.Plans.create () in
  Batch.Plans.bind ctx src (Batch.public records);
  let m =
    Batch.noisy_count ~rng:(Prng.create 5) ~epsilon:1.0
      (Batch.Plans.lower ctx (build src p))
  in
  List.sort compare (M.observed m)

let bits obs = List.map (fun (x, v) -> (x, Int64.bits_of_float v)) obs

let close obs obs' =
  List.length obs = List.length obs'
  && List.for_all2
       (fun (x, v) (x', v') -> x = x' && Float.abs (v -. v') < 1e-6 *. (1.0 +. Float.abs v))
       obs obs'

let property_suite =
  [
    prop "hash-consing: building twice yields the same node" (fun d ->
        let src : (int * int) Plan.t = Plan.source () in
        Plan.id (build src d) = Plan.id (build src d));
    prop "optimize preserves uses and source_uses (exact rules)" (fun d ->
        let src : (int * int) Plan.t = Plan.source () in
        let p = build src d in
        let o = Plan.optimize p in
        Plan.uses o = Plan.uses p
        && List.sort compare (Plan.source_uses o) = List.sort compare (Plan.source_uses p));
    prop "optimize preserves uses and source_uses (all rules)" (fun d ->
        let src : (int * int) Plan.t = Plan.source () in
        let p = build src d in
        let o = Plan.optimize ~rules:Plan.all_rules p in
        Plan.uses o = Plan.uses p
        && List.sort compare (Plan.source_uses o) = List.sort compare (Plan.source_uses p));
    prop "optimize is idempotent" (fun d ->
        let src : (int * int) Plan.t = Plan.source () in
        let o = Plan.optimize (build src d) in
        Plan.id (Plan.optimize o) = Plan.id o);
    prop ~count:80 "exact rules preserve released bits" (fun d ->
        bits (release d)
        = bits
            (let src : (int * int) Plan.t = Plan.source ~name:"xs" () in
             let ctx = Batch.Plans.create () in
             Batch.Plans.bind ctx src (Batch.public records);
             let m =
               Batch.noisy_count ~rng:(Prng.create 5) ~epsilon:1.0
                 (Batch.Plans.lower ctx (Plan.optimize (build src d)))
             in
             List.sort compare (M.observed m)));
    prop ~count:80 "all rules preserve released values to tolerance" (fun d ->
        close (release d)
          (let src : (int * int) Plan.t = Plan.source ~name:"xs" () in
           let ctx = Batch.Plans.create () in
           Batch.Plans.bind ctx src (Batch.public records);
           let m =
             Batch.noisy_count ~rng:(Prng.create 5) ~epsilon:1.0
               (Batch.Plans.lower ctx
                  (Plan.optimize ~rules:Plan.all_rules (build src d)))
           in
           List.sort compare (M.observed m)));
  ]

(* ---------- each rule, on a hand-built instance ---------- *)

let src () : (int * int) Plan.t = Plan.source ~name:"xs" ()

let test_fuse_where () =
  let s = src () in
  let p = Plan.where preds.(0) (Plan.where preds.(1) s) in
  let o = Plan.optimize p in
  Alcotest.(check string) "root stays a filter" "where" (Plan.operator o);
  Alcotest.(check int) "two filters became one" 2 (Plan.size o);
  Alcotest.(check int) "uses unchanged" (Plan.uses p) (Plan.uses o)

let test_push_where_below_select () =
  let s = src () in
  let p = Plan.where preds.(0) (Plan.select selects.(0) s) in
  let o = Plan.optimize p in
  Alcotest.(check string) "projection floats to the root" "select" (Plan.operator o);
  Alcotest.(check int) "same node count" (Plan.size p) (Plan.size o)

let test_fuse_distinct () =
  let s = src () in
  let p = Plan.distinct ~bound:2.0 (Plan.distinct ~bound:0.5 s) in
  let o = Plan.optimize p in
  Alcotest.(check string) "root stays distinct" "distinct" (Plan.operator o);
  Alcotest.(check int) "two bounds became one" 2 (Plan.size o)

let test_fuse_select_opt_in () =
  let s = src () in
  let p = Plan.select selects.(0) (Plan.select selects.(1) s) in
  Alcotest.(check int) "exact rules keep both stages" 3 (Plan.size (Plan.optimize p));
  Alcotest.(check int) "all rules fuse them" 2
    (Plan.size (Plan.optimize ~rules:Plan.all_rules p))

let test_reorder_join () =
  let s = src () in
  (* A select_many fans out (bigger estimate); a where filters (smaller).
     Optimizing the badly-ordered join must land on the same canonical
     shape as writing the join well-ordered by hand — closures are not
     hashed, so shape equality is exactly [canonical_hash] equality. *)
  let big = Plan.select_many emitters.(0) s in
  let small = Plan.where preds.(0) s in
  let bad = Plan.join ~kl:keys.(0) ~kr:keys.(1) ~reduce:reduces.(0) big small in
  let good = Plan.join ~kl:keys.(1) ~kr:keys.(0) ~reduce:reduces.(1) small big in
  Alcotest.(check string) "join reordered to the canonical shape"
    (Plan.canonical_hash good)
    (Plan.canonical_hash (Plan.optimize bad));
  Alcotest.(check int) "well-ordered join is a fixpoint" (Plan.id good)
    (Plan.id (Plan.optimize good))

let test_cost_guard_on_shared_subtree () =
  let s = src () in
  (* The inner filter chain is consumed twice; fusing it under the outer
     where would have to duplicate it for the other consumer.  The guard
     must refuse, leaving the plan's shape untouched. *)
  let inner = Plan.where preds.(1) s in
  let p = Plan.union (Plan.where preds.(0) inner) inner in
  Alcotest.(check string) "shared filter not split"
    (Plan.canonical_hash p)
    (Plan.canonical_hash (Plan.optimize p))

let test_plan_cache () =
  let s = src () in
  (* A shape unlikely to be in the cache already. *)
  let p =
    Plan.distinct ~bound:1.25
      (Plan.where preds.(2)
         (Plan.select selects.(3) (Plan.where preds.(0) (Plan.select selects.(2) s))))
  in
  let _, m0 = Plan.plan_cache_stats () in
  let o1 = Plan.optimize p in
  let h1, m1 = Plan.plan_cache_stats () in
  Alcotest.(check bool) "first optimize misses" true (m1 > m0);
  let o2 = Plan.optimize p in
  let h2, _ = Plan.plan_cache_stats () in
  Alcotest.(check bool) "second optimize hits" true (h2 > h1);
  Alcotest.(check int) "cache returns the same DAG" (Plan.id o1) (Plan.id o2)

(* ---------- end-to-end: the Section-3 corpus ---------- *)

let check_bits name a b =
  Alcotest.(check int64) name (Int64.bits_of_float a) (Int64.bits_of_float b)

let secret () = Gen.clustered ~n:50 ~community:10 ~p_in:0.7 ~extra:25 (Prng.create 3)

(* Measuring the five analyses through optimized plans must release the
   same bits as measuring through the plans as written. *)
let test_corpus_measurements_identical () =
  let g = secret () in
  let source : (int * int) Plan.t = Plan.source ~name:"sym" () in
  let budget = Budget.create ~name:"edges" 1e9 in
  let ctx = Batch.Plans.create () in
  Batch.Plans.bind ctx source (Batch.source_records ~budget (Graph.directed_edges g));
  let check name p =
    let obs via =
      let m =
        Batch.noisy_count ~rng:(Prng.create 42) ~epsilon:10.0
          (Batch.Plans.lower ctx (via p))
      in
      List.sort compare
        (List.map (fun (x, v) -> (x, Int64.bits_of_float v)) (M.observed m))
    in
    Alcotest.(check bool)
      (name ^ ": released bits identical") true
      (obs (fun q -> q) = obs Plan.optimize)
  in
  check "ccdf" (Qp.degree_ccdf source);
  check "jdd" (Qp.jdd source);
  check "tbd" (Qp.tbd source);
  check "tbi" (Qp.tbi source);
  check "sbi" (Qp.sbi source)

(* Fitting against optimized plans must never disturb what was released:
   the initial energy matches the unoptimized fit bit for bit, and every
   observation recorded at measurement time keeps its exact bits through
   stepping (every rejection exercising a speculation abort), a clean
   audit, and a checkpoint-style rebase — the same path a resume takes.
   The walks themselves are NOT compared step by step: a rewired join
   regroups incremental accumulation, and a proposal whose energy delta
   sits within ulps of zero then consumes a different number of PRNG
   draws, legitimately forking the chains (which is why checkpoints pin
   the canonical plan hashes instead of assuming walk equality). *)
type via = { via : 'a. 'a Plan.t -> 'a Plan.t }

let test_shared_fit_equivalence () =
  let g = secret () in
  let seed = Rewire.randomize g (Prng.create 4) in
  let budget = Budget.create ~name:"edges" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges g) in
  let rng = Prng.create 42 in
  let mc = Batch.noisy_count ~rng ~epsilon:50.0 (Qb.degree_ccdf sym) in
  let mj = Batch.noisy_count ~rng ~epsilon:50.0 (Qb.jdd sym) in
  let mt = Batch.noisy_count ~rng ~epsilon:50.0 (Qb.tbd sym) in
  let snap m =
    List.sort compare
      (List.map (fun (x, v) -> (x, Int64.bits_of_float v)) (M.observed m))
  in
  let setup { via } =
    let source = Plan.source ~name:"sym" () in
    let cc, cj, ct = (M.copy mc, M.copy mj, M.copy mt) in
    let measured =
      [
        Fit.Measured (via (Qp.degree_ccdf source), cc);
        Fit.Measured (via (Qp.jdd source), cj);
        Fit.Measured (via (Qp.tbd source), ct);
      ]
    in
    let fit =
      Fit.create_shared ~rng:(Prng.create 7) ~seed_graph:seed ~source ~measured ()
    in
    let rebase () =
      Fit.rebuild_shared fit ~n:(Fit.nodes fit) ~edges:(Fit.edge_array fit) ~source
        ~measured
    in
    (fit, rebase, fun () -> (snap cc, snap cj, snap ct))
  in
  let plain, _, snap_plain = setup { via = (fun p -> p) } in
  let opt, rebase_opt, snap_opt = setup { via = (fun p -> Plan.optimize p) } in
  check_bits "initial energy" (Fit.energy plain) (Fit.energy opt);
  let base_c, base_j, base_t = (snap mc, snap mj, snap mt) in
  let drive fit n =
    for _ = 1 to n do
      ignore (Fit.step ~pow:10_000.0 fit)
    done
  in
  drive plain 200;
  drive opt 200;
  let clean label fit =
    let r = Fit.audit fit in
    Alcotest.(check int) (label ^ ": audit clean") 0
      (List.length r.Dataflow.Audit.divergences)
  in
  clean "plain" plain;
  clean "optimized" opt;
  (* Rebase the optimized fit in place — deterministic resume path — and
     keep walking. *)
  rebase_opt ();
  drive plain 100;
  drive opt 100;
  clean "optimized post-rebase" opt;
  (* The walk may have observed NEW bins (drawing fresh noise lazily),
     but every bin released at measurement time must keep its exact
     bits in both fits. *)
  let kept label base now =
    List.iter
      (fun (x, v) ->
        match List.assoc_opt x now with
        | Some v' -> Alcotest.(check int64) (label ^ ": released bin kept") v v'
        | None -> Alcotest.fail (label ^ ": a released bin disappeared"))
      base
  in
  let pc, pj, pt = snap_plain () and oc, oj, ot = snap_opt () in
  kept "plain ccdf" base_c pc;
  kept "plain jdd" base_j pj;
  kept "plain tbd" base_t pt;
  kept "optimized ccdf" base_c oc;
  kept "optimized jdd" base_j oj;
  kept "optimized tbd" base_t ot

let suite =
  property_suite
  @ [
      Alcotest.test_case "rule: fuse where" `Quick test_fuse_where;
      Alcotest.test_case "rule: push where below select" `Quick
        test_push_where_below_select;
      Alcotest.test_case "rule: fuse distinct" `Quick test_fuse_distinct;
      Alcotest.test_case "rule: select fusion is opt-in" `Quick test_fuse_select_opt_in;
      Alcotest.test_case "rule: reorder join" `Quick test_reorder_join;
      Alcotest.test_case "cost guard: shared subtrees survive" `Quick
        test_cost_guard_on_shared_subtree;
      Alcotest.test_case "plan cache: canonical hits" `Quick test_plan_cache;
      Alcotest.test_case "corpus: optimized measurements identical" `Quick
        test_corpus_measurements_identical;
      Alcotest.test_case "shared fit: optimized = unoptimized" `Slow
        test_shared_fit_equivalence;
    ]
