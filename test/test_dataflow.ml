(* The incremental engine's core correctness property: after any sequence of
   delta batches, every sink holds exactly what the batch operators compute
   on the accumulated input.  Plus unit tests for update paths that are easy
   to get wrong (join normalization, group reordering, shave boundaries). *)

module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops
module Dataflow = Wpinq_dataflow.Dataflow
open Helpers

let pp_pair fmt (x, y) = Format.fprintf fmt "(%d,%d)" x y

(* Drive a single-input pipeline with a list of delta batches and compare
   the sink against the batch semantics at every step. *)
let agrees_throughout ~build ~batch deltas =
  let engine = Dataflow.Engine.create () in
  let input = Dataflow.Input.create engine in
  let sink = Dataflow.Sink.attach (build (Dataflow.Input.node input)) in
  List.for_all
    (fun delta ->
      Dataflow.Input.feed input delta;
      let expected = batch (Dataflow.Input.current input) in
      Wdata.equal ~tol:1e-6 expected (Dataflow.Sink.current sink))
    deltas

let incr_matches_batch name ~build ~batch =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name (deltas_arb ()) (fun deltas ->
         agrees_throughout ~build ~batch deltas))

let equivalence_suite =
  [
    incr_matches_batch "incr=batch: select"
      ~build:(Dataflow.select (fun x -> x mod 3))
      ~batch:(Ops.select (fun x -> x mod 3));
    incr_matches_batch "incr=batch: where"
      ~build:(Dataflow.where (fun x -> x mod 2 = 0))
      ~batch:(Ops.where (fun x -> x mod 2 = 0));
    incr_matches_batch "incr=batch: select_many"
      ~build:(Dataflow.select_many (fun x -> List.init (x mod 4) (fun i -> (i, 0.5))))
      ~batch:(Ops.select_many (fun x -> List.init (x mod 4) (fun i -> (i, 0.5))));
    incr_matches_batch "incr=batch: group_by"
      ~build:(Dataflow.group_by ~key:(fun x -> x mod 2) ~reduce:(fun l -> List.sort compare l))
      ~batch:(Ops.group_by ~key:(fun x -> x mod 2) ~reduce:(fun l -> List.sort compare l));
    incr_matches_batch "incr=batch: shave"
      ~build:(Dataflow.shave_const 0.7)
      ~batch:(Ops.shave_const 0.7);
    incr_matches_batch "incr=batch: distinct"
      ~build:(Dataflow.distinct ~bound:1.5)
      ~batch:(Ops.distinct ~bound:1.5);
    incr_matches_batch "incr=batch: self-union"
      ~build:(fun n -> Dataflow.union (Dataflow.select (fun x -> x + 1) n) n)
      ~batch:(fun d -> Ops.union (Ops.select (fun x -> x + 1) d) d);
    incr_matches_batch "incr=batch: self-intersect"
      ~build:(fun n -> Dataflow.intersect (Dataflow.select (fun x -> x mod 5) n) n)
      ~batch:(fun d -> Ops.intersect (Ops.select (fun x -> x mod 5) d) d);
    incr_matches_batch "incr=batch: self-concat/except"
      ~build:(fun n -> Dataflow.except (Dataflow.concat n n) (Dataflow.select (fun x -> x) n))
      ~batch:(fun d -> Ops.except (Ops.concat d d) d);
    incr_matches_batch "incr=batch: self-join"
      ~build:(fun n ->
        Dataflow.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 3)
          ~reduce:(fun x y -> (x, y))
          n n)
      ~batch:(fun d ->
        Ops.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 3) ~reduce:(fun x y -> (x, y)) d d);
    incr_matches_batch "incr=batch: join-of-groupby (composite)"
      ~build:(fun n ->
        let degs = Dataflow.group_by ~key:(fun x -> x mod 3) ~reduce:List.length n in
        Dataflow.join
          ~kl:(fun x -> x mod 3)
          ~kr:(fun (k, _) -> k)
          ~reduce:(fun x (_, c) -> (x, c))
          n degs)
      ~batch:(fun d ->
        let degs = Ops.group_by ~key:(fun x -> x mod 3) ~reduce:List.length d in
        Ops.join
          ~kl:(fun x -> x mod 3)
          ~kr:(fun (k, _) -> k)
          ~reduce:(fun x (_, c) -> (x, c))
          d degs);
    incr_matches_batch "incr=batch: shave-of-select (degree ccdf shape)"
      ~build:(fun n -> Dataflow.select snd (Dataflow.shave_const 1.0 (Dataflow.select (fun x -> x mod 3) n)))
      ~batch:(fun d -> Ops.select snd (Ops.shave_const 1.0 (Ops.select (fun x -> x mod 3) d)));
  ]

(* Two-input equivalence. *)
let two_input_matches name ~build ~batch =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:150 ~name
       (QCheck.pair (deltas_arb ()) (deltas_arb ()))
       (fun (da, db) ->
         let engine = Dataflow.Engine.create () in
         let ia = Dataflow.Input.create engine in
         let ib = Dataflow.Input.create engine in
         let sink =
           Dataflow.Sink.attach (build (Dataflow.Input.node ia) (Dataflow.Input.node ib))
         in
         (* Interleave feeds. *)
         let rec interleave xs ys =
           match (xs, ys) with
           | [], [] -> true
           | x :: xs, ys_all ->
               Dataflow.Input.feed ia x;
               let ok =
                 Wdata.equal ~tol:1e-6
                   (batch (Dataflow.Input.current ia) (Dataflow.Input.current ib))
                   (Dataflow.Sink.current sink)
               in
               ok && interleave_b xs ys_all
           | [], y :: ys ->
               Dataflow.Input.feed ib y;
               Wdata.equal ~tol:1e-6
                 (batch (Dataflow.Input.current ia) (Dataflow.Input.current ib))
                 (Dataflow.Sink.current sink)
               && interleave [] ys
         and interleave_b xs ys =
           match ys with
           | [] -> interleave xs []
           | y :: ys ->
               Dataflow.Input.feed ib y;
               Wdata.equal ~tol:1e-6
                 (batch (Dataflow.Input.current ia) (Dataflow.Input.current ib))
                 (Dataflow.Sink.current sink)
               && interleave xs ys
         in
         interleave da db))

let two_input_suite =
  [
    two_input_matches "incr=batch: union (2 inputs)" ~build:Dataflow.union ~batch:Ops.union;
    two_input_matches "incr=batch: intersect (2 inputs)" ~build:Dataflow.intersect
      ~batch:Ops.intersect;
    two_input_matches "incr=batch: concat (2 inputs)" ~build:Dataflow.concat ~batch:Ops.concat;
    two_input_matches "incr=batch: except (2 inputs)" ~build:Dataflow.except ~batch:Ops.except;
    two_input_matches "incr=batch: join (2 inputs)"
      ~build:(Dataflow.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 2) ~reduce:(fun x y -> (x, y)))
      ~batch:(Ops.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 2) ~reduce:(fun x y -> (x, y)));
  ]

(* ---- unit tests ---- *)

let test_coalesce () =
  let got = Dataflow.coalesce [ (1, 1.0); (2, 0.5); (1, -1.0); (3, 1e-15) ] in
  Alcotest.(check (list (pair int (float 1e-9)))) "coalesced" [ (2, 0.5) ] got

let test_join_fast_path_used () =
  (* A weight-preserving batch (edge swap shape) must take the fast path. *)
  let engine = Dataflow.Engine.create () in
  let input = Dataflow.Input.create engine in
  let n = Dataflow.Input.node input in
  let joined = Dataflow.join ~kl:snd ~kr:fst ~reduce:(fun (a, _) (_, c) -> (a, c)) n n in
  let sink = Dataflow.Sink.attach joined in
  Dataflow.Input.feed input [ ((0, 1), 1.0); ((1, 2), 1.0); ((1, 3), 1.0) ];
  let full_before = Dataflow.Engine.join_full_rescales engine in
  (* Swap (1,2) for (1,4): key 1 on the src side keeps norm 2. *)
  Dataflow.Input.feed input [ ((1, 2), -1.0); ((1, 4), 1.0) ];
  let fast = Dataflow.Engine.join_fast_updates engine in
  Alcotest.(check bool) "fast path hit" true (fast > 0);
  (* dst-side keys 2 and 4 changed norm, so up to two full rescales are
     expected there; the norm-preserving src-side key 1 must not add one. *)
  Alcotest.(check bool) "at most the two dst-side rescales" true
    (Dataflow.Engine.join_full_rescales engine - full_before <= 2);
  (* And the contents are still exactly right. *)
  let expected =
    Ops.join ~kl:snd ~kr:fst
      ~reduce:(fun (a, _) (_, c) -> (a, c))
      (Dataflow.Input.current input) (Dataflow.Input.current input)
  in
  check_wdata pp_pair "join contents after swap" expected (Dataflow.Sink.current sink)

let test_join_empty_key_delta () =
  (* Regression guard for the norm accounting rewrite: a delta that drains
     a join key must retire the key's part completely — stored norm
     included.  The old code folded sub-threshold norm residue into
     [mine.norm] both inside the full-rescale branch and again in a
     trailing dust guard, so a drained key could be left with phantom norm
     above [epsilon_weight], surviving the drop check and mis-steering the
     key's next delta onto the fast path against an empty normalizer.
     Norm is now folded exactly once per branch (see dataflow.mli). *)
  let engine = Dataflow.Engine.create () in
  let ia = Dataflow.Input.create engine in
  let ib = Dataflow.Input.create engine in
  let sink =
    Dataflow.Sink.attach
      (Dataflow.join
         ~kl:(fun x -> x mod 2)
         ~kr:(fun y -> y mod 2)
         ~reduce:(fun x y -> (x, y))
         (Dataflow.Input.node ia) (Dataflow.Input.node ib))
  in
  let empty_state = Dataflow.Engine.state_records engine in
  (* Fill key 0 on both sides, then drain side A of it again — twice, so a
     leaked part from round one would poison round two. *)
  for _ = 1 to 2 do
    Dataflow.Input.feed ia [ (2, 1.0); (4, 0.5) ];
    Dataflow.Input.feed ib [ (6, 2.0) ];
    Dataflow.Input.feed ia [ (2, -1.0); (4, -0.5) ];
    Dataflow.Input.feed ib [ (6, -2.0) ]
  done;
  Alcotest.(check int) "no state leaked by drained keys" empty_state
    (Dataflow.Engine.state_records engine);
  (* Every batch above changed its key's normalizer, so none may have been
     retired through the norm-preserving fast path. *)
  Alcotest.(check int) "no fast path against an empty normalizer" 0
    (Dataflow.Engine.join_fast_updates engine);
  Alcotest.(check int) "sink drained" 0 (Dataflow.Sink.support_size sink);
  (* And the key still behaves exactly per batch semantics afterwards. *)
  Dataflow.Input.feed ia [ (2, 1.5) ];
  Dataflow.Input.feed ib [ (4, 1.0); (6, 0.5) ];
  let expected =
    Ops.join
      ~kl:(fun x -> x mod 2)
      ~kr:(fun y -> y mod 2)
      ~reduce:(fun x y -> (x, y))
      (Dataflow.Input.current ia) (Dataflow.Input.current ib)
  in
  check_wdata pp_pair "join contents after drain/refill" expected (Dataflow.Sink.current sink)

let test_feed_reentrancy_rejected () =
  (* A sink callback runs mid-propagation; feeding from it would interleave
     two propagations over shared operator state.  The guard is engine-wide
     (feeding a *different* input of the same engine is just as unsafe). *)
  let engine = Dataflow.Engine.create () in
  let ia = Dataflow.Input.create engine in
  let ib = Dataflow.Input.create engine in
  let sink = Dataflow.Sink.attach (Dataflow.Input.node ia) in
  let feed_target = ref ia in
  let armed = ref false in
  Dataflow.Sink.on_change sink (fun _ ~old_weight:_ ~new_weight:_ ->
      if !armed then Dataflow.Input.feed !feed_target [ (99, 1.0) ]);
  armed := true;
  Alcotest.check_raises "re-entrant feed (same input)"
    (Invalid_argument "Dataflow.Input.feed: re-entrant feed during propagation") (fun () ->
      Dataflow.Input.feed ia [ (1, 1.0) ]);
  feed_target := ib;
  Alcotest.check_raises "re-entrant feed (sibling input)"
    (Invalid_argument "Dataflow.Input.feed: re-entrant feed during propagation") (fun () ->
      Dataflow.Input.feed ia [ (2, 1.0) ]);
  (* The guard resets even on the exceptional path: normal feeding works. *)
  armed := false;
  Dataflow.Input.feed ia [ (3, 1.0) ];
  Alcotest.(check bool) "engine usable after rejection" true
    (Dataflow.Sink.weight sink 3 = 1.0)

let test_state_size_accounting () =
  let engine = Dataflow.Engine.create () in
  let input = Dataflow.Input.create engine in
  let n = Dataflow.Input.node input in
  let _sink = Dataflow.Sink.attach (Dataflow.join ~kl:(fun x -> x mod 2) ~kr:(fun x -> x mod 2) ~reduce:(fun x y -> (x, y)) n n) in
  Alcotest.(check int) "empty engine" 0 (Dataflow.Engine.state_records engine);
  Dataflow.Input.feed input [ (1, 1.0); (2, 1.0) ];
  let filled = Dataflow.Engine.state_records engine in
  Alcotest.(check bool) "state tracked" true (filled > 0);
  Dataflow.Input.feed input [ (1, -1.0); (2, -1.0) ];
  Alcotest.(check int) "state drained" 0 (Dataflow.Engine.state_records engine)

let test_work_counter () =
  let engine = Dataflow.Engine.create () in
  let input = Dataflow.Input.create engine in
  let _ = Dataflow.Sink.attach (Dataflow.select (fun x -> x) (Dataflow.Input.node input)) in
  let w0 = Dataflow.Engine.work engine in
  Dataflow.Input.feed input [ (1, 1.0); (2, 1.0) ];
  Alcotest.(check bool) "work counted" true (Dataflow.Engine.work engine > w0)

let test_sink_on_change_sequence () =
  let engine = Dataflow.Engine.create () in
  let input = Dataflow.Input.create engine in
  let sink = Dataflow.Sink.attach (Dataflow.Input.node input) in
  let log = ref [] in
  Dataflow.Sink.on_change sink (fun x ~old_weight ~new_weight ->
      log := (x, old_weight, new_weight) :: !log);
  Dataflow.Input.feed input [ (7, 1.0) ];
  Dataflow.Input.feed input [ (7, 0.5) ];
  Dataflow.Input.feed input [ (7, -1.5) ];
  match List.rev !log with
  | [ (7, a0, a1); (7, b0, b1); (7, c0, c1) ] ->
      check_close "first old" 0.0 a0;
      check_close "first new" 1.0 a1;
      check_close "second old" 1.0 b0;
      check_close "second new" 1.5 b1;
      check_close "third old" 1.5 c0;
      check_close "third new" 0.0 c1
  | l -> Alcotest.failf "unexpected callback count %d" (List.length l)

let test_different_engines_rejected () =
  let e1 = Dataflow.Engine.create () and e2 = Dataflow.Engine.create () in
  let i1 = Dataflow.Input.create e1 and i2 = Dataflow.Input.create e2 in
  Alcotest.check_raises "engine mismatch"
    (Invalid_argument "Dataflow: nodes belong to different engines") (fun () ->
      ignore (Dataflow.concat (Dataflow.Input.node i1) (Dataflow.Input.node i2)))

let test_group_by_reordering () =
  (* Weight changes that reorder records inside a group must re-derive the
     prefix emissions. *)
  let engine = Dataflow.Engine.create () in
  let input = Dataflow.Input.create engine in
  let sink =
    Dataflow.Sink.attach
      (Dataflow.group_by ~key:(fun _ -> ()) ~reduce:(fun l -> List.sort compare l)
         (Dataflow.Input.node input))
  in
  Dataflow.Input.feed input [ (1, 3.0); (2, 1.0) ];
  Dataflow.Input.feed input [ (1, -2.5); (2, 1.5) ];
  (* Now 2 has weight 2.5, 1 has weight 0.5. *)
  let expected =
    Ops.group_by ~key:(fun _ -> ()) ~reduce:(fun l -> List.sort compare l)
      (Wdata.of_list [ (1, 0.5); (2, 2.5) ])
  in
  let pp fmt ((), l) =
    Format.fprintf fmt "[%s]" (String.concat ";" (List.map string_of_int l))
  in
  check_wdata pp "reordered group" expected (Dataflow.Sink.current sink)

let suite =
  [
    Alcotest.test_case "coalesce" `Quick test_coalesce;
    Alcotest.test_case "join fast path on swap" `Quick test_join_fast_path_used;
    Alcotest.test_case "join empty-key delta retires part" `Quick test_join_empty_key_delta;
    Alcotest.test_case "re-entrant feed rejected" `Quick test_feed_reentrancy_rejected;
    Alcotest.test_case "state size accounting" `Quick test_state_size_accounting;
    Alcotest.test_case "work counter" `Quick test_work_counter;
    Alcotest.test_case "sink on_change" `Quick test_sink_on_change_sequence;
    Alcotest.test_case "engine mismatch rejected" `Quick test_different_engines_rejected;
    Alcotest.test_case "group_by reordering" `Quick test_group_by_reordering;
  ]
  @ equivalence_suite @ two_input_suite
