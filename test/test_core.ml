(* Budget accounting, use-counting through query plans, NoisyCount
   semantics, and the Flow/Target scoring machinery. *)

module Wdata = Wpinq_weighted.Wdata
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Measurement = Wpinq_core.Measurement
module Dataflow = Wpinq_dataflow.Dataflow
open Helpers

let test_budget_basics () =
  let b = Budget.create ~name:"d" 1.0 in
  check_close "remaining" 1.0 (Budget.remaining b);
  Budget.charge b 0.25;
  Budget.charge ~label:"second" b 0.5;
  check_close "spent" 0.75 (Budget.spent b);
  Alcotest.(check (list (pair string (float 1e-9))))
    "log"
    [ ("noisy_count", 0.25); ("second", 0.5) ]
    (Budget.log b)

let test_budget_exhausted () =
  let b = Budget.create ~name:"d" 0.3 in
  Budget.charge b 0.2;
  (try
     Budget.charge b 0.2;
     Alcotest.fail "expected Exhausted"
   with Budget.Exhausted { name; requested; remaining } ->
     Alcotest.(check string) "name" "d" name;
     check_close "requested" 0.2 requested;
     check_close "remaining" 0.1 remaining);
  (* Failed charge spends nothing. *)
  check_close "unchanged" 0.2 (Budget.spent b)

let test_budget_rounding_tolerance () =
  let b = Budget.create ~name:"d" 0.3 in
  Budget.charge b 0.1;
  Budget.charge b 0.1;
  Budget.charge b 0.1;
  (* 3 * 0.1 > 0.3 in floats; the tolerance must allow exact exhaustion. *)
  check_close ~tol:1e-9 "fully spent" 0.3 (Budget.spent b)

let test_use_counting () =
  let b = Budget.create ~name:"edges" 100.0 in
  let edges = Batch.source_records ~budget:b [ (0, 1); (1, 2) ] in
  let uses c = match Batch.uses c with [ (_, n) ] -> n | _ -> -1 in
  Alcotest.(check int) "source" 1 (uses edges);
  Alcotest.(check int) "select" 1 (uses (Batch.select fst edges));
  Alcotest.(check int) "self-join" 2
    (uses (Batch.join ~kl:snd ~kr:fst ~reduce:(fun x _ -> x) edges edges));
  let sym = Batch.concat (Batch.select (fun (a, b) -> (b, a)) edges) edges in
  Alcotest.(check int) "symmetrized" 2 (uses sym);
  let paths = Batch.join ~kl:snd ~kr:fst ~reduce:(fun x _ -> x) sym sym in
  Alcotest.(check int) "paths over sym" 4 (uses paths);
  Alcotest.(check int) "public data costs nothing" 0
    (List.length (Batch.uses (Batch.public [ (1, 1.0) ])))

let test_use_counting_two_sources () =
  let b1 = Budget.create ~name:"a" 10.0 and b2 = Budget.create ~name:"b" 10.0 in
  let c1 = Batch.source ~budget:b1 [ (1, 1.0) ] in
  let c2 = Batch.source ~budget:b2 [ (1, 1.0) ] in
  let j = Batch.join ~kl:(fun x -> x) ~kr:(fun x -> x) ~reduce:(fun x _ -> x) c1 (Batch.concat c2 c1) in
  let costs = List.sort compare (Batch.privacy_cost ~epsilon:0.5 j) in
  Alcotest.(check (list (pair string (float 1e-9))))
    "per-source cost"
    [ ("a", 1.0); ("b", 0.5) ]
    costs

let test_noisy_count_charges () =
  let b = Budget.create ~name:"edges" 1.0 in
  let edges = Batch.source_records ~budget:b [ (0, 1) ] in
  let self_join = Batch.join ~kl:snd ~kr:fst ~reduce:(fun x _ -> x) edges edges in
  let rng = Prng.create 1 in
  let _m = Batch.noisy_count ~rng ~epsilon:0.3 self_join in
  check_close "2 uses at 0.3" 0.6 (Budget.spent b);
  (* Second aggregation would need another 0.6 > 0.4 remaining. *)
  (try
     ignore (Batch.noisy_count ~rng ~epsilon:0.3 self_join);
     Alcotest.fail "expected Exhausted"
   with Budget.Exhausted _ -> ());
  check_close "failed charge rolls back" 0.6 (Budget.spent b)

let test_noisy_count_accuracy () =
  (* With a large epsilon the noise is negligible: counts match the data. *)
  let b = Budget.create ~name:"d" 1e12 in
  let c = Batch.source ~budget:b [ (1, 0.75); (2, 2.0) ] in
  let m = Batch.noisy_count ~rng:(Prng.create 2) ~epsilon:1e9 c in
  check_close ~tol:1e-6 "value 1" 0.75 (Measurement.value m 1);
  check_close ~tol:1e-6 "value 2" 2.0 (Measurement.value m 2);
  Alcotest.(check bool) "absent record gets small noise" true
    (Float.abs (Measurement.value m 99) < 1e-6)

let test_noisy_count_noise_distribution () =
  (* Empirical check that NoisyCount noise is Laplace(1/eps): mean |noise|
     should approach 1/eps. *)
  let eps = 0.5 in
  let b = Budget.create ~name:"d" 1e9 in
  let c = Batch.source ~budget:b (List.init 2000 (fun i -> (i, 1.0))) in
  let m = Batch.noisy_count ~rng:(Prng.create 3) ~epsilon:eps c in
  let total = ref 0.0 in
  for i = 0 to 1999 do
    total := !total +. Float.abs (Measurement.value m i -. 1.0)
  done;
  let mad = !total /. 2000.0 in
  Alcotest.(check bool) "E|noise| ~ 1/eps" true (Float.abs (mad -. (1.0 /. eps)) < 0.15)

let test_measurement_memoization () =
  let b = Budget.create ~name:"d" 1e9 in
  let c = Batch.source ~budget:b [ (1, 1.0) ] in
  let m = Batch.noisy_count ~rng:(Prng.create 4) ~epsilon:0.5 c in
  let v = Measurement.value m 42 in
  check_close "memoized" v (Measurement.value m 42);
  Alcotest.(check int) "materialized" 2 (Measurement.observed_size m)

let test_unsafe_value () =
  let b = Budget.create ~name:"d" 1.0 in
  let c = Batch.source ~budget:b [ (1, 0.75) ] in
  check_close "exact" 0.75 (Wdata.weight (Batch.unsafe_value c) 1);
  (* Reading the exact value spends nothing (it is explicitly unsafe). *)
  check_close "no charge" 0.0 (Budget.spent b)

let test_partition_contents () =
  let b = Budget.create ~name:"d" 10.0 in
  let c = Batch.source ~budget:b [ (1, 1.0); (2, 2.0); (3, 3.0); (4, 4.0) ] in
  let parts = Batch.partition ~keys:[ 0; 1 ] ~key:(fun x -> x mod 2) c in
  (match parts with
  | [ (0, evens); (1, odds) ] ->
      check_close "evens" 6.0 (Wdata.total (Batch.unsafe_value evens));
      check_close "odds" 4.0 (Wdata.total (Batch.unsafe_value odds))
  | _ -> Alcotest.fail "expected two parts");
  (* Unlisted keys are dropped. *)
  let only_even = Batch.partition ~keys:[ 0 ] ~key:(fun x -> x mod 2) c in
  match only_even with
  | [ (0, evens) ] ->
      Alcotest.(check int) "support" 2 (Wdata.support_size (Batch.unsafe_value evens))
  | _ -> Alcotest.fail "expected one part"

let test_parallel_composition () =
  let b = Budget.create ~name:"d" 1.0 in
  let c = Batch.source ~budget:b [ (1, 1.0); (2, 1.0) ] in
  let parts = Batch.partition ~keys:[ 0; 1 ] ~key:(fun x -> x mod 2) c in
  let evens = List.assoc 0 parts and odds = List.assoc 1 parts in
  let rng = Prng.create 30 in
  (* Spending on disjoint parts costs the parent only the maximum. *)
  let _ = Batch.noisy_count ~rng ~epsilon:0.3 evens in
  check_close "parent pays 0.3" 0.3 (Budget.spent b);
  let _ = Batch.noisy_count ~rng ~epsilon:0.5 odds in
  check_close "parent pays max(0.3,0.5)" 0.5 (Budget.spent b);
  let _ = Batch.noisy_count ~rng ~epsilon:0.4 evens in
  (* evens cumulative 0.7 > group max 0.5: parent pays the 0.2 excess. *)
  check_close "parent pays max(0.7,0.5)" 0.7 (Budget.spent b);
  (* Sequential composition still applies across different partitions. *)
  let parts2 = Batch.partition ~keys:[ 0; 1 ] ~key:(fun x -> x mod 2) c in
  let _ = Batch.noisy_count ~rng ~epsilon:0.3 (List.assoc 0 parts2) in
  check_close "second partition adds" 1.0 (Budget.spent b);
  (* Exhaustion propagates from the parent. *)
  (try
     ignore (Batch.noisy_count ~rng ~epsilon:0.5 (List.assoc 1 parts2));
     Alcotest.fail "expected Exhausted"
   with Budget.Exhausted _ -> ());
  check_close "parent unchanged after failure" 1.0 (Budget.spent b);
  (* A sibling can still reuse headroom below the group max for free. *)
  let _ = Batch.noisy_count ~rng ~epsilon:0.3 (List.assoc 1 parts2) in
  check_close "free ride under group max" 1.0 (Budget.spent b)

(* Batch and Flow agree on a composite query over the same data. *)
let test_batch_flow_agree () =
  let data = [ ((0, 1), 1.0); ((1, 0), 1.0); ((1, 2), 1.0); ((2, 1), 1.0) ] in
  let module Q (L : Wpinq_core.Lang.S) = struct
    let run edges =
      let degs = L.group_by ~key:fst ~reduce:List.length edges in
      L.join ~kl:snd ~kr:(fun (k, _) -> k)
        ~reduce:(fun (a, b) (_, d) -> (a, b, d))
        edges degs
  end in
  let module Qb = Q (Batch) in
  let module Qf = Q (Flow) in
  let b = Budget.create ~name:"edges" 1.0 in
  let batch_result = Batch.unsafe_value (Qb.run (Batch.source ~budget:b data)) in
  let engine = Dataflow.Engine.create () in
  let handle, edges = Flow.input engine in
  let sink = Dataflow.Sink.attach (Flow.node (Qf.run edges)) in
  Flow.feed handle data;
  let pp fmt (a, b, d) = Format.fprintf fmt "(%d,%d,%d)" a b d in
  check_wdata ~tol:1e-6 pp "batch = flow" batch_result (Dataflow.Sink.current sink)

(* Target scoring: with negligible noise, distance tracks the true L1 gap. *)
let test_target_distance () =
  let secret = [ (1, 2.0); (2, 1.0) ] in
  let b = Budget.create ~name:"d" 1e12 in
  let m =
    Batch.noisy_count ~rng:(Prng.create 5) ~epsilon:1e9 (Batch.source ~budget:b secret)
  in
  let engine = Dataflow.Engine.create () in
  let handle, c = Flow.input engine in
  let target = Flow.Target.create c m in
  (* Empty synthetic data: distance = |2| + |1| = 3. *)
  check_close ~tol:1e-6 "initial distance" 3.0 (Flow.Target.distance target);
  Flow.feed handle [ (1, 2.0) ];
  check_close ~tol:1e-6 "after matching 1" 1.0 (Flow.Target.distance target);
  Flow.feed handle [ (2, 1.0) ];
  check_close ~tol:1e-6 "perfect fit" 0.0 (Flow.Target.distance target);
  (* A record the measurement never saw enters with ~zero observation:
     distance rises by ~|q| - |m| = q. *)
  Flow.feed handle [ (9, 0.5) ];
  check_close ~tol:1e-5 "unobserved record" 0.5 (Flow.Target.distance target);
  check_close ~tol:100.0 "weighted" (1e9 *. 0.5) (Flow.Target.weighted_distance target);
  Flow.Target.recompute target;
  check_close ~tol:1e-5 "recompute agrees" 0.5 (Flow.Target.distance target)

let test_noisy_sum () =
  let b = Budget.create ~name:"d" 1e9 in
  let c = Batch.source ~budget:b [ (1, 2.0); (5, 1.0); (100, 1.0) ] in
  (* clamp 10: sum = 2*1 + 1*5 + 1*10(clipped) = 17. *)
  let v =
    Wpinq_core.Mechanisms.noisy_sum ~rng:(Prng.create 8) ~epsilon:1e6 ~clamp:10.0
      ~f:float_of_int c
  in
  check_close ~tol:1e-3 "clipped sum" 17.0 v;
  check_close "charged once" 1e6 (Budget.spent b);
  (* use-count scaling: a self-concat costs 2 eps. *)
  let b2 = Budget.create ~name:"d2" 10.0 in
  let c2 = Batch.source ~budget:b2 [ (1, 1.0) ] in
  let cc = Batch.concat c2 c2 in
  let _ =
    Wpinq_core.Mechanisms.noisy_sum ~rng:(Prng.create 9) ~epsilon:0.5 ~clamp:1.0
      ~f:float_of_int cc
  in
  check_close "2 uses" 1.0 (Budget.spent b2)

let test_noisy_sum_noise_scale () =
  (* Empirically the noise has mean absolute deviation clamp/eps. *)
  let eps = 1.0 and clamp = 5.0 in
  let n = 20_000 in
  let rng = Prng.create 10 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    let b = Budget.create ~name:"d" 10.0 in
    let c = Batch.source ~budget:b [ (1, 1.0) ] in
    let v =
      Wpinq_core.Mechanisms.noisy_sum ~rng ~epsilon:eps ~clamp ~f:float_of_int c
    in
    acc := !acc +. Float.abs (v -. 1.0)
  done;
  let mad = !acc /. float_of_int n in
  Alcotest.(check bool) "E|noise| ~ clamp/eps" true (Float.abs (mad -. (clamp /. eps)) < 0.25)

let test_noisy_average () =
  let b = Budget.create ~name:"d" 1e9 in
  let c = Batch.source ~budget:b [ (2, 3.0); (4, 1.0) ] in
  let v =
    Wpinq_core.Mechanisms.noisy_average ~rng:(Prng.create 11) ~epsilon:1e6 ~clamp:10.0
      ~f:float_of_int c
  in
  (* (3*2 + 1*4) / 4 = 2.5 *)
  check_close ~tol:1e-3 "average" 2.5 v;
  check_close "full epsilon charged" 1e6 (Budget.spent b)

let test_exponential_mechanism () =
  let b = Budget.create ~name:"d" 1e9 in
  let c = Batch.source ~budget:b [ ("x", 5.0); ("y", 1.0) ] in
  (* Score of candidate r = total weight of record r: 1-Lipschitz. *)
  let score r data = Wdata.weight data r in
  (* Huge epsilon: must pick the argmax. *)
  for i = 0 to 20 do
    let r =
      Wpinq_core.Mechanisms.exponential ~rng:(Prng.create (100 + i)) ~epsilon:1e6
        ~candidates:[ "x"; "y"; "z" ] ~score c
    in
    Alcotest.(check string) "argmax" "x" r
  done;
  (* Moderate epsilon: both x and y appear with sane frequencies. *)
  let rng = Prng.create 12 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 2000 do
    let r =
      Wpinq_core.Mechanisms.exponential ~rng ~epsilon:0.5 ~candidates:[ "x"; "y" ] ~score c
    in
    Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
  done;
  let cx = Option.value ~default:0 (Hashtbl.find_opt counts "x") in
  (* P(x)/P(y) = exp(0.5*(5-1)/2) = e ~ 2.72; so P(x) ~ 0.73. *)
  let frac = float_of_int cx /. 2000.0 in
  Alcotest.(check bool) "exponential odds" true (Float.abs (frac -. 0.731) < 0.05);
  Alcotest.check_raises "empty candidates"
    (Invalid_argument "Mechanisms.exponential: no candidates") (fun () ->
      ignore
        (Wpinq_core.Mechanisms.exponential ~rng ~epsilon:1.0 ~candidates:[] ~score c))

let test_mechanisms_respect_budget () =
  let b = Budget.create ~name:"d" 0.5 in
  let c = Batch.source ~budget:b [ (1, 1.0) ] in
  let _ =
    Wpinq_core.Mechanisms.noisy_sum ~rng:(Prng.create 13) ~epsilon:0.4 ~clamp:1.0
      ~f:float_of_int c
  in
  (try
     ignore
       (Wpinq_core.Mechanisms.noisy_average ~rng:(Prng.create 14) ~epsilon:0.4 ~clamp:1.0
          ~f:float_of_int c);
     Alcotest.fail "expected Exhausted"
   with Budget.Exhausted _ -> ());
  check_close "nothing extra spent" 0.4 (Budget.spent b)

let test_target_energy () =
  let b = Budget.create ~name:"d" 1e12 in
  let m1 =
    Batch.noisy_count ~rng:(Prng.create 6) ~epsilon:1e9 (Batch.source ~budget:b [ (1, 1.0) ])
  in
  let m2 =
    Batch.noisy_count ~rng:(Prng.create 7) ~epsilon:1e9 (Batch.source ~budget:b [ (2, 2.0) ])
  in
  let engine = Dataflow.Engine.create () in
  let _, c1 = Flow.input engine in
  let _, c2 = Flow.input engine in
  let t1 = Flow.Target.create c1 m1 and t2 = Flow.Target.create c2 m2 in
  check_close ~tol:1.0 "energy sums" (1e9 *. 3.0) (Flow.Target.energy [ t1; t2 ])

let test_budget_rejects_nonfinite () =
  let b = Budget.create ~name:"d" 1.0 in
  List.iter
    (fun eps ->
      (match Budget.charge b eps with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "charge accepted %h" eps);
      match Budget.try_charge b eps with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "try_charge accepted %h" eps)
    [ Float.nan; Float.infinity; Float.neg_infinity; -0.1 ];
  check_close "nothing spent" 0.0 (Budget.spent b);
  (match Budget.create ~name:"d" Float.nan with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "create accepted NaN total");
  (* The same guard protects the mechanisms. *)
  let c = Batch.source ~budget:b [ (1, 1.0) ] in
  match Batch.noisy_count ~rng:(Prng.create 8) ~epsilon:Float.nan c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "noisy_count accepted NaN epsilon"

let test_budget_try_charge () =
  let b = Budget.create ~name:"d" 0.5 in
  (match Budget.try_charge ~label:"ok" b 0.3 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "in-budget charge denied");
  (match Budget.try_charge ~label:"too-much" b 0.3 with
  | Error { Budget.name; requested; remaining } ->
      Alcotest.(check string) "denier" "d" name;
      check_close "requested" 0.3 requested;
      check_close "remaining" 0.2 remaining
  | Ok () -> Alcotest.fail "overdraw allowed");
  (* The denial spent nothing and logged nothing. *)
  check_close "spent" 0.3 (Budget.spent b);
  Alcotest.(check (list (pair string (float 1e-9)))) "log" [ ("ok", 0.3) ] (Budget.log b)

let test_budget_save_load () =
  let module Codec = Wpinq_persist.Persist.Codec in
  let b = Budget.create ~name:"secret" 2.5 in
  Budget.charge ~label:"first" b 0.5;
  Budget.charge ~label:"second" b 0.25;
  let buf = Buffer.create 64 in
  Budget.save b buf;
  let b' = Budget.load (Codec.reader (Buffer.contents buf)) in
  Alcotest.(check string) "name" (Budget.name b) (Budget.name b');
  check_close "total" (Budget.total b) (Budget.total b');
  check_close "spent" (Budget.spent b) (Budget.spent b');
  Alcotest.(check (list (pair string (float 1e-12)))) "log" (Budget.log b) (Budget.log b');
  (* A child budget is a transient view and must refuse to serialize. *)
  let child = Budget.parallel_child (Budget.parallel_group b) ~name:"part" in
  match Budget.save child (Buffer.create 16) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "child budget serialized"

let test_parallel_child_allocation () =
  let b = Budget.create ~name:"parent" 10.0 in
  let g = Budget.parallel_group b in
  (* The allocation is validated at creation, exactly as try_charge
     validates ε: a poisoned cap must never construct an account. *)
  List.iter
    (fun bad ->
      match Budget.parallel_child ~allocation:bad g ~name:"part" with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "parallel_child accepted allocation %h" bad)
    [ Float.nan; Float.infinity; Float.neg_infinity; -0.25 ];
  (* A valid allocation caps the child's cumulative spend even while the
     group still has headroom. *)
  let child = Budget.parallel_child ~allocation:0.5 g ~name:"capped" in
  Budget.charge child 0.4;
  (match Budget.try_charge child 0.2 with
  | Error { Budget.name; requested; remaining } ->
      Alcotest.(check string) "cap denial names the child" "capped" name;
      check_close "requested" 0.2 requested;
      check_close "remaining under cap" 0.1 remaining
  | Ok () -> Alcotest.fail "charge beyond allocation accepted");
  check_close "denial spent nothing" 0.4 (Budget.spent child);
  (* A zero allocation is valid and simply refuses everything. *)
  let frozen = Budget.parallel_child ~allocation:0.0 g ~name:"frozen" in
  (match Budget.try_charge frozen 0.1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "zero-allocation child accepted a charge");
  (* An uncapped child still behaves as before: bounded by the parent and
     the group maximum only. *)
  let free = Budget.parallel_child g ~name:"free" in
  Budget.charge free 1.0;
  check_close "uncapped child spends normally" 1.0 (Budget.spent free)

let test_measurement_save_load () =
  let module Codec = Wpinq_persist.Persist.Codec in
  let b = Budget.create ~name:"d" 1e9 in
  let c = Batch.source ~budget:b [ (1, 0.75); (2, 2.0) ] in
  let m = Batch.noisy_count ~rng:(Prng.create 11) ~epsilon:0.5 c in
  (* Materialize one observed and one fresh-noise value before saving. *)
  let v1 = Measurement.value m 1 in
  let v99 = Measurement.value m 99 in
  let buf = Buffer.create 256 in
  Measurement.save Codec.write_int m buf;
  let m' = Measurement.load Codec.read_int (Codec.reader (Buffer.contents buf)) in
  (* Already-released values round-trip bit-exactly. *)
  Alcotest.(check int64) "value 1" (Int64.bits_of_float v1)
    (Int64.bits_of_float (Measurement.value m' 1));
  Alcotest.(check int64) "value 99" (Int64.bits_of_float v99)
    (Int64.bits_of_float (Measurement.value m' 99));
  (* And the noise stream continues identically: a key neither has seen yet
     draws the same value from both. *)
  Alcotest.(check int64) "fresh draw" (Int64.bits_of_float (Measurement.value m 7))
    (Int64.bits_of_float (Measurement.value m' 7))

let suite =
  [
    Alcotest.test_case "budget basics" `Quick test_budget_basics;
    Alcotest.test_case "budget rejects non-finite" `Quick test_budget_rejects_nonfinite;
    Alcotest.test_case "budget try_charge" `Quick test_budget_try_charge;
    Alcotest.test_case "budget save/load" `Quick test_budget_save_load;
    Alcotest.test_case "measurement save/load" `Quick test_measurement_save_load;
    Alcotest.test_case "budget exhausted" `Quick test_budget_exhausted;
    Alcotest.test_case "budget rounding" `Quick test_budget_rounding_tolerance;
    Alcotest.test_case "use counting" `Quick test_use_counting;
    Alcotest.test_case "use counting, two sources" `Quick test_use_counting_two_sources;
    Alcotest.test_case "noisy_count charges" `Quick test_noisy_count_charges;
    Alcotest.test_case "noisy_count accuracy" `Quick test_noisy_count_accuracy;
    Alcotest.test_case "noisy_count noise distribution" `Quick test_noisy_count_noise_distribution;
    Alcotest.test_case "measurement memoization" `Quick test_measurement_memoization;
    Alcotest.test_case "unsafe_value" `Quick test_unsafe_value;
    Alcotest.test_case "batch = flow on composite query" `Quick test_batch_flow_agree;
    Alcotest.test_case "partition contents" `Quick test_partition_contents;
    Alcotest.test_case "parallel composition" `Quick test_parallel_composition;
    Alcotest.test_case "parallel child allocation cap" `Quick test_parallel_child_allocation;
    Alcotest.test_case "noisy_sum" `Quick test_noisy_sum;
    Alcotest.test_case "noisy_sum noise scale" `Quick test_noisy_sum_noise_scale;
    Alcotest.test_case "noisy_average" `Quick test_noisy_average;
    Alcotest.test_case "exponential mechanism" `Quick test_exponential_mechanism;
    Alcotest.test_case "mechanisms respect budget" `Quick test_mechanisms_respect_budget;
    Alcotest.test_case "target distance" `Quick test_target_distance;
    Alcotest.test_case "target energy" `Quick test_target_energy;
  ]
