(* The speculation protocol's contract: (begin; feed; abort) restores the
   engine — operator state, sink contents, statistics — bit-identically,
   and (begin; feed; commit) is indistinguishable from a plain feed.  Plus
   protocol-misuse guards and the scoring layer's enrollment in the undo
   log (Flow.Target distances). *)

module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops
module Dataflow = Wpinq_dataflow.Dataflow
module Prng = Wpinq_prng.Prng
module Flow = Wpinq_core.Flow
module Measurement = Wpinq_core.Measurement
module Fit = Wpinq_infer.Fit
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Rewire = Wpinq_graph.Rewire
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Q = Wpinq_queries.Queries.Make (Wpinq_core.Batch)
module Qf = Wpinq_queries.Queries.Make (Wpinq_core.Flow)
open Helpers

(* Bit-exact image of a weighted collection: restoration must reproduce
   the very same floats, not merely close ones. *)
let bits_of_list l = List.sort compare (List.map (fun (x, w) -> (x, Int64.bits_of_float w)) l)

let stats e =
  Dataflow.Engine.
    ( state_records e,
      work e,
      join_fast_updates e,
      join_full_rescales e,
      arena_grows e,
      arena_reuses e )

(* (feed; abort) leaves no trace; (feed; commit) matches batch semantics.
   Run both legs against every delta of a random sequence, on the same
   pipelines the equivalence suite exercises. *)
let spec_roundtrip name ~build ~batch =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name (deltas_arb ()) (fun deltas ->
         let engine = Dataflow.Engine.create () in
         let input = Dataflow.Input.create engine in
         let sink = Dataflow.Sink.attach (build (Dataflow.Input.node input)) in
         List.for_all
           (fun delta ->
             let sink0 = bits_of_list (Dataflow.Sink.to_list sink) in
             let input0 = bits_of_list (Wdata.to_list (Dataflow.Input.current input)) in
             let stats0 = stats engine in
             let aborts0 = Dataflow.Engine.aborts engine in
             Dataflow.Engine.begin_speculation engine;
             Dataflow.Input.feed input delta;
             Dataflow.Engine.abort engine;
             let restored =
               bits_of_list (Dataflow.Sink.to_list sink) = sink0
               && bits_of_list (Wdata.to_list (Dataflow.Input.current input)) = input0
               && stats engine = stats0
               && Dataflow.Engine.aborts engine = aborts0 + 1
               && not (Dataflow.Engine.speculating engine)
             in
             Dataflow.Engine.begin_speculation engine;
             Dataflow.Input.feed input delta;
             Dataflow.Engine.commit engine;
             restored
             && Wdata.equal ~tol:1e-6
                  (batch (Dataflow.Input.current input))
                  (Dataflow.Sink.current sink))
           deltas))

let roundtrip_suite =
  [
    spec_roundtrip "abort restores / commit=batch: select"
      ~build:(Dataflow.select (fun x -> x mod 3))
      ~batch:(Ops.select (fun x -> x mod 3));
    spec_roundtrip "abort restores / commit=batch: group_by"
      ~build:(Dataflow.group_by ~key:(fun x -> x mod 2) ~reduce:(fun l -> List.sort compare l))
      ~batch:(Ops.group_by ~key:(fun x -> x mod 2) ~reduce:(fun l -> List.sort compare l));
    spec_roundtrip "abort restores / commit=batch: shave"
      ~build:(Dataflow.shave_const 0.7) ~batch:(Ops.shave_const 0.7);
    spec_roundtrip "abort restores / commit=batch: distinct"
      ~build:(Dataflow.distinct ~bound:1.5)
      ~batch:(Ops.distinct ~bound:1.5);
    spec_roundtrip "abort restores / commit=batch: self-join"
      ~build:(fun n ->
        Dataflow.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 3)
          ~reduce:(fun x y -> (x, y))
          n n)
      ~batch:(fun d ->
        Ops.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 3) ~reduce:(fun x y -> (x, y)) d d);
    spec_roundtrip "abort restores / commit=batch: join-of-groupby"
      ~build:(fun n ->
        let degs = Dataflow.group_by ~key:(fun x -> x mod 3) ~reduce:List.length n in
        Dataflow.join
          ~kl:(fun x -> x mod 3)
          ~kr:(fun (k, _) -> k)
          ~reduce:(fun x (_, c) -> (x, c))
          n degs)
      ~batch:(fun d ->
        let degs = Ops.group_by ~key:(fun x -> x mod 3) ~reduce:List.length d in
        Ops.join
          ~kl:(fun x -> x mod 3)
          ~kr:(fun (k, _) -> k)
          ~reduce:(fun x (_, c) -> (x, c))
          d degs);
  ]

(* Several speculations in a row on one engine, mixing outcomes: aborts
   must restore to the last committed state, not to creation time. *)
let test_interleaved_speculations () =
  let engine = Dataflow.Engine.create () in
  let input = Dataflow.Input.create engine in
  let sink =
    Dataflow.Sink.attach
      (Dataflow.group_by ~key:(fun x -> x mod 2) ~reduce:List.length (Dataflow.Input.node input))
  in
  Dataflow.Input.feed input [ (1, 1.0); (2, 2.0) ];
  Dataflow.Engine.begin_speculation engine;
  Dataflow.Input.feed input [ (3, 1.5) ];
  Dataflow.Engine.commit engine;
  let committed = bits_of_list (Dataflow.Sink.to_list sink) in
  Dataflow.Engine.begin_speculation engine;
  Dataflow.Input.feed input [ (1, -1.0); (4, 0.25) ];
  Dataflow.Engine.abort engine;
  Alcotest.(check bool) "abort lands on the committed state" true
    (bits_of_list (Dataflow.Sink.to_list sink) = committed);
  Alcotest.(check int) "one commit" 1 (Dataflow.Engine.commits engine);
  Alcotest.(check int) "one abort" 1 (Dataflow.Engine.aborts engine);
  Alcotest.(check bool) "undo cells were recorded" true (Dataflow.Engine.undo_cells engine > 0)

let test_protocol_misuse () =
  let engine = Dataflow.Engine.create () in
  Alcotest.check_raises "commit without begin"
    (Invalid_argument "Dataflow.Engine.commit: no speculation in progress") (fun () ->
      Dataflow.Engine.commit engine);
  Alcotest.check_raises "abort without begin"
    (Invalid_argument "Dataflow.Engine.abort: no speculation in progress") (fun () ->
      Dataflow.Engine.abort engine);
  Dataflow.Engine.begin_speculation engine;
  Alcotest.check_raises "nested begin"
    (Invalid_argument "Dataflow.Engine.begin_speculation: speculation already in progress")
    (fun () -> Dataflow.Engine.begin_speculation engine);
  Dataflow.Engine.commit engine

let test_protocol_rejected_during_propagation () =
  (* The protocol calls are engine-level control flow; from inside a sink
     callback the propagation is still in flight, so all three refuse. *)
  let engine = Dataflow.Engine.create () in
  let input = Dataflow.Input.create engine in
  let sink = Dataflow.Sink.attach (Dataflow.Input.node input) in
  let attempt = ref (fun () -> ()) in
  Dataflow.Sink.on_change sink (fun _ ~old_weight:_ ~new_weight:_ -> !attempt ());
  attempt := (fun () -> Dataflow.Engine.begin_speculation engine);
  Alcotest.check_raises "begin during propagation"
    (Invalid_argument "Dataflow.Engine.begin_speculation: cannot speculate during propagation")
    (fun () -> Dataflow.Input.feed input [ (1, 1.0) ]);
  attempt := (fun () -> ());
  Dataflow.Engine.begin_speculation engine;
  attempt := (fun () -> Dataflow.Engine.commit engine);
  Alcotest.check_raises "commit during propagation"
    (Invalid_argument "Dataflow.Engine.commit: cannot commit during propagation") (fun () ->
      Dataflow.Input.feed input [ (2, 1.0) ]);
  attempt := (fun () -> ());
  (* The speculation is still open (the guard fired mid-propagation);
     abort must clean up even after that partial feed. *)
  Dataflow.Engine.abort engine;
  Dataflow.Input.feed input [ (3, 1.0) ];
  Alcotest.(check bool) "engine usable after recovery" true
    (Dataflow.Sink.weight sink 3 = 1.0)

(* The scoring layer's incrementally maintained distance joins the
   rollback through Engine.log_undo. *)
let test_target_distance_restored () =
  let engine = Dataflow.Engine.create () in
  let handle, sym = Flow.input engine in
  let rng = Prng.create 123 in
  let m =
    Measurement.create ~rng ~epsilon:0.5 ~true_data:(Wdata.of_list [ (1, 2.0); (2, 1.0) ])
  in
  let target = Flow.Target.create (Flow.select (fun x -> x mod 5) sym) m in
  Flow.feed handle [ (1, 1.0); (6, 1.0); (2, 3.0) ];
  let d0 = Int64.bits_of_float (Flow.Target.distance target) in
  Dataflow.Engine.begin_speculation engine;
  Flow.feed handle [ (1, -1.0); (3, 2.0); (7, 0.5) ];
  let mid = Int64.bits_of_float (Flow.Target.distance target) in
  Dataflow.Engine.abort engine;
  Alcotest.(check bool) "distance moved during speculation" true (mid <> d0);
  Alcotest.(check bool) "distance restored bit-exactly" true
    (Int64.bits_of_float (Flow.Target.distance target) = d0);
  (* A committed speculation carries the same drift guarantees as a plain
     feed: recompute agrees with the incremental value. *)
  Dataflow.Engine.begin_speculation engine;
  Flow.feed handle [ (1, -1.0); (3, 2.0) ];
  Dataflow.Engine.commit engine;
  let incremental = Flow.Target.distance target in
  Flow.Target.recompute target;
  check_close ~tol:1e-9 "incremental matches recompute after commit" (Flow.Target.distance target)
    incremental

(* End to end: every Metropolis–Hastings step is exactly one speculation —
   accepted moves commit, rejected ones abort — and the incremental energy
   stays honest across the mixture. *)
let test_fit_steps_are_speculations () =
  let secret = Gen.clustered ~n:60 ~community:8 ~p_in:0.7 ~extra:30 (Prng.create 7) in
  let seed = Rewire.randomize secret (Prng.create 8) in
  let rng = Prng.create 9 in
  let target =
    let budget = Budget.create ~name:"spec" 1e9 in
    let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
    let m = Batch.noisy_count ~rng ~epsilon:1e4 (Q.tbi sym) in
    fun sym_flow -> Flow.Target.create (Qf.tbi sym_flow) m
  in
  let fit = Fit.create ~rng ~seed_graph:seed ~targets:[ target ] () in
  let engine = Fit.engine fit in
  let accepted = ref 0 in
  for _ = 1 to 300 do
    if Fit.step ~pow:50.0 fit then incr accepted
  done;
  Alcotest.(check int) "accepted moves commit" !accepted (Dataflow.Engine.commits engine);
  Alcotest.(check bool) "rejected moves abort" true (Dataflow.Engine.aborts engine > 0);
  Alcotest.(check bool) "commits+aborts cover proposals" true
    (Dataflow.Engine.commits engine + Dataflow.Engine.aborts engine <= 300);
  Alcotest.(check bool) "no speculation left open" true
    (not (Dataflow.Engine.speculating engine));
  let incremental = Fit.energy fit in
  List.iter Flow.Target.recompute (Fit.targets fit);
  let fresh =
    List.fold_left (fun acc t -> acc +. Flow.Target.weighted_distance t) 0.0 (Fit.targets fit)
  in
  check_close ~tol:1e-3 "energy honest across commit/abort mixture" fresh incremental

let suite =
  [
    Alcotest.test_case "interleaved speculations" `Quick test_interleaved_speculations;
    Alcotest.test_case "protocol misuse" `Quick test_protocol_misuse;
    Alcotest.test_case "protocol during propagation" `Quick
      test_protocol_rejected_during_propagation;
    Alcotest.test_case "target distance restored" `Quick test_target_distance_restored;
    Alcotest.test_case "fit steps are speculations" `Quick test_fit_steps_are_speculations;
  ]
  @ roundtrip_suite
