(* Degenerate inputs and failure injection across the stack. *)

module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops
module Dataflow = Wpinq_dataflow.Dataflow
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Io = Wpinq_graph.Io
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Gridpath = Wpinq_postprocess.Gridpath
module Workflow = Wpinq_infer.Workflow
module Qb = Wpinq_queries.Queries.Make (Batch)
open Helpers

(* ---- weighted datasets ---- *)

let test_empty_dataset_ops () =
  let e : int Wdata.t = Wdata.empty () in
  Alcotest.(check int) "select of empty" 0 (Wdata.support_size (Ops.select (fun x -> x) e));
  Alcotest.(check int) "join of empty" 0
    (Wdata.support_size
       (Ops.join ~kl:(fun x -> x) ~kr:(fun x -> x) ~reduce:(fun a _ -> a) e e));
  check_close "norm" 0.0 (Wdata.norm e);
  check_close "dist to empty" 0.0 (Wdata.dist e (Wdata.empty ()))

let test_join_zero_norm_key () =
  (* Records cancelling to ~zero weight under a key must not divide by
     zero or emit output. *)
  let a = Wdata.of_list [ (2, 1.0); (4, -1.0) ] in
  let b = Wdata.of_list [ (6, 1.0) ] in
  let j = Ops.join ~kl:(fun _ -> 0) ~kr:(fun _ -> 0) ~reduce:(fun x y -> (x, y)) a b in
  (* Key 0 on the left has norm 2 (absolute values!), so output exists. *)
  Alcotest.(check int) "abs norms" 2 (Wdata.support_size j);
  let a' = Wdata.of_list [ (2, 1e-14) ] in
  let j' = Ops.join ~kl:(fun _ -> 0) ~kr:(fun _ -> 0) ~reduce:(fun x y -> (x, y)) a' b in
  Alcotest.(check int) "sub-epsilon weight dropped at construction" 0 (Wdata.support_size j')

let test_group_by_ignores_nonpositive () =
  let d = Wdata.of_list [ (1, -2.0); (2, 1.0) ] in
  let g = Ops.group_by ~key:(fun _ -> ()) ~reduce:(fun l -> List.sort compare l) d in
  check_wdata
    (fun fmt ((), l) -> Format.fprintf fmt "[%s]" (String.concat ";" (List.map string_of_int l)))
    "only positive records grouped"
    (Wdata.of_list [ (((), [ 2 ]), 0.5) ])
    g

let test_select_many_empty_products () =
  let d = Wdata.of_list [ (1, 1.0) ] in
  Alcotest.(check int) "empty product" 0
    (Wdata.support_size (Ops.select_many (fun _ -> []) d))

(* ---- dataflow ---- *)

let test_feed_empty_and_cancelling () =
  let engine = Dataflow.Engine.create () in
  let input = Dataflow.Input.create engine in
  let sink = Dataflow.Sink.attach (Dataflow.select (fun x -> x) (Dataflow.Input.node input)) in
  let fired = ref 0 in
  Dataflow.Sink.on_change sink (fun _ ~old_weight:_ ~new_weight:_ -> incr fired);
  Dataflow.Input.feed input [];
  Dataflow.Input.feed input [ (1, 1.0); (1, -1.0) ];
  Alcotest.(check int) "cancelling batch never fires" 0 !fired;
  Alcotest.(check int) "no state" 0 (Dataflow.Engine.state_records engine)

let test_flow_negative_weights_roundtrip () =
  (* Weights may go negative transiently (Except); sinks must track. *)
  let engine = Dataflow.Engine.create () in
  let ia = Dataflow.Input.create engine in
  let ib = Dataflow.Input.create engine in
  let sink =
    Dataflow.Sink.attach (Dataflow.except (Dataflow.Input.node ia) (Dataflow.Input.node ib))
  in
  Dataflow.Input.feed ib [ (7, 2.0) ];
  check_close "negative visible" (-2.0) (Dataflow.Sink.weight sink 7);
  Dataflow.Input.feed ia [ (7, 2.0) ];
  check_close "back to zero" 0.0 (Dataflow.Sink.weight sink 7);
  Alcotest.(check int) "support empty" 0 (Dataflow.Sink.support_size sink)

(* ---- graphs ---- *)

let test_empty_graph_stats () =
  let g = Graph.of_edges [] in
  Alcotest.(check int) "n" 0 (Graph.n g);
  Alcotest.(check int) "m" 0 (Graph.m g);
  Alcotest.(check int) "triangles" 0 (Graph.triangle_count g);
  Alcotest.(check int) "squares" 0 (Graph.square_count g);
  Alcotest.(check bool) "assortativity nan" true (Float.is_nan (Graph.assortativity g));
  check_close "clustering" 0.0 (Graph.clustering_coefficient g);
  check_close "tbi" 0.0 (Graph.tbi_signal g)

let test_single_edge_graph () =
  let g = Graph.of_edges [ (0, 1) ] in
  Alcotest.(check int) "m" 1 (Graph.m g);
  Alcotest.(check (array int)) "ccdf" [| 2 |] (Graph.degree_ccdf g);
  Alcotest.(check (array int)) "sequence" [| 1; 1 |] (Graph.degree_sequence_desc g);
  Alcotest.(check (list (pair (pair int int) int))) "jdd" [ ((1, 1), 1) ]
    (Graph.joint_degree_counts g)

let test_mutable_apply_invalid () =
  let g = Graph.of_edges [ (0, 1); (2, 3) ] in
  let mg = Graph.Mutable.of_graph g in
  Alcotest.check_raises "absent removal"
    (Invalid_argument "Mutable.apply: removed edge absent") (fun () ->
      Graph.Mutable.apply mg { remove = ((0, 2), (1, 3)); add = ((0, 3), (1, 2)) });
  Alcotest.check_raises "present addition"
    (Invalid_argument "Mutable.apply: added edge already present") (fun () ->
      Graph.Mutable.apply mg { remove = ((0, 1), (2, 3)); add = ((0, 1), (2, 3)) })

let test_propose_swap_too_small () =
  let g = Graph.of_edges [ (0, 1) ] in
  let mg = Graph.Mutable.of_graph g in
  Alcotest.(check bool) "no swap on 1 edge" true
    (Graph.Mutable.propose_swap mg (Prng.create 1) = None)

let test_io_malformed () =
  let path = Filename.temp_file "wpinq_bad" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "0 1\nnot an edge\n";
      close_out oc;
      match Io.read path with
      | exception Io.Parse_error { line = 2; text = "not an edge"; _ } -> ()
      | exception Io.Parse_error { line; text; _ } ->
          Alcotest.failf "wrong location: line %d, text %S" line text
      | _ -> Alcotest.fail "expected Parse_error on malformed line")

let test_io_rejects_bad_ids () =
  let with_content content f =
    let path = Filename.temp_file "wpinq_bad" ".txt" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        f path)
  in
  with_content "0 1\n2 -3\n" (fun path ->
      match Io.read path with
      | exception Io.Parse_error { line = 2; _ } -> ()
      | _ -> Alcotest.fail "expected Parse_error on negative id");
  with_content "# nodes 3\n0 1\n1 5\n" (fun path ->
      match Io.read path with
      | exception Io.Parse_error { line = 3; _ } -> ()
      | _ -> Alcotest.fail "expected Parse_error on out-of-range id");
  (* Blank lines and comments are fine; the declared node count sticks. *)
  with_content "# nodes 5\n\n0 1\n\n# comment\n2 3\n" (fun path ->
      let g = Io.read path in
      Alcotest.(check int) "declared n" 5 (Graph.n g);
      Alcotest.(check int) "edges" 2 (Graph.m g))

let test_generator_argument_validation () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "ba m too big" (Invalid_argument "Gen.barabasi_albert: need n > m >= 1")
    (fun () -> ignore (Gen.barabasi_albert ~n:3 ~m:3 rng));
  Alcotest.check_raises "er overfull" (Invalid_argument "Gen.erdos_renyi: too many edges")
    (fun () -> ignore (Gen.erdos_renyi ~n:3 ~m:10 rng))

(* ---- queries on degenerate graphs ---- *)

let test_queries_on_tiny_graphs () =
  let run g =
    let budget = Budget.create ~name:"t" 1e9 in
    let sym = Batch.source_records ~budget (Graph.directed_edges g) in
    ( Wdata.total (Batch.unsafe_value (Qb.tbi sym)),
      Wdata.support_size (Batch.unsafe_value (Qb.tbd sym)),
      Wdata.support_size (Batch.unsafe_value (Qb.sbd sym)) )
  in
  let empty_tbi, empty_tbd, empty_sbd = run (Graph.of_edges []) in
  check_close "empty tbi" 0.0 empty_tbi;
  Alcotest.(check int) "empty tbd" 0 empty_tbd;
  Alcotest.(check int) "empty sbd" 0 empty_sbd;
  let e_tbi, e_tbd, e_sbd = run (Graph.of_edges [ (0, 1) ]) in
  check_close "edge tbi" 0.0 e_tbi;
  Alcotest.(check int) "edge tbd" 0 e_tbd;
  Alcotest.(check int) "edge sbd" 0 e_sbd;
  (* K3: exactly one triangle, no squares. *)
  let k3_tbi, k3_tbd, k3_sbd = run (Graph.of_edges [ (0, 1); (1, 2); (0, 2) ]) in
  check_close ~tol:1e-9 "k3 tbi" 1.5 k3_tbi;
  Alcotest.(check int) "k3 tbd one record" 1 k3_tbd;
  Alcotest.(check int) "k3 sbd" 0 k3_sbd

(* ---- postprocess ---- *)

let test_gridpath_degenerate () =
  (* Single position: the fit picks the y minimizing cost. *)
  let fit = Gridpath.fit ~v:[| 3.0 |] ~h:[| 1.0; 1.0; 1.0 |] in
  Alcotest.(check int) "length" 1 (Array.length fit);
  Alcotest.(check bool) "in range" true (fit.(0) >= 0 && fit.(0) <= 3);
  (* All-zero inputs: all-zero fit. *)
  let z = Gridpath.fit ~v:[| 0.0; 0.0 |] ~h:[| 0.0 |] in
  Alcotest.(check (array int)) "zeros" [| 0; 0 |] z

(* ---- workflow failure injection ---- *)

let test_workflow_budget_exhaustion () =
  let secret = Gen.erdos_renyi ~n:20 ~m:40 (Prng.create 2) in
  let budget = Budget.create ~name:"edges" (2.5 *. 0.1) in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  (* measure_seed needs 3 x 0.1 > 0.25: the third charge must fail and the
     first two must remain spent (sequential composition is real spending). *)
  (try
     ignore (Workflow.measure_seed ~rng:(Prng.create 3) ~epsilon:0.1 ~sym);
     Alcotest.fail "expected Exhausted"
   with Budget.Exhausted _ -> ());
  check_close "two measurements went through" 0.2 (Budget.spent budget)

let test_flow_target_against_mismeasured_graph () =
  (* Target over a measurement of a *different* graph still works: the
     distance simply starts high. *)
  let g1 = Gen.erdos_renyi ~n:30 ~m:60 (Prng.create 4) in
  let budget = Budget.create ~name:"t" 1e9 in
  let sym = Batch.source_records ~budget (Graph.directed_edges g1) in
  let m = Batch.noisy_count ~rng:(Prng.create 5) ~epsilon:1e6 (Qb.degree_sequence sym) in
  let module QfM = Wpinq_queries.Queries.Make (Flow) in
  let engine = Dataflow.Engine.create () in
  let handle, fsym = Flow.input engine in
  let target = Flow.Target.create (QfM.degree_sequence fsym) m in
  let d0 = Flow.Target.distance target in
  Alcotest.(check bool) "positive initial distance" true (d0 > 1.0);
  Flow.feed handle (List.map (fun e -> (e, 1.0)) (Graph.directed_edges g1));
  Alcotest.(check bool) "distance collapses on the right graph" true
    (Flow.Target.distance target < 0.01 *. d0)

let suite =
  [
    Alcotest.test_case "empty dataset ops" `Quick test_empty_dataset_ops;
    Alcotest.test_case "join zero-norm keys" `Quick test_join_zero_norm_key;
    Alcotest.test_case "group_by non-positive" `Quick test_group_by_ignores_nonpositive;
    Alcotest.test_case "select_many empty products" `Quick test_select_many_empty_products;
    Alcotest.test_case "feed empty/cancelling" `Quick test_feed_empty_and_cancelling;
    Alcotest.test_case "negative weights roundtrip" `Quick test_flow_negative_weights_roundtrip;
    Alcotest.test_case "empty graph stats" `Quick test_empty_graph_stats;
    Alcotest.test_case "single edge graph" `Quick test_single_edge_graph;
    Alcotest.test_case "mutable apply invalid" `Quick test_mutable_apply_invalid;
    Alcotest.test_case "propose swap too small" `Quick test_propose_swap_too_small;
    Alcotest.test_case "io malformed" `Quick test_io_malformed;
    Alcotest.test_case "io rejects bad ids" `Quick test_io_rejects_bad_ids;
    Alcotest.test_case "generator validation" `Quick test_generator_argument_validation;
    Alcotest.test_case "queries on tiny graphs" `Quick test_queries_on_tiny_graphs;
    Alcotest.test_case "gridpath degenerate" `Quick test_gridpath_degenerate;
    Alcotest.test_case "workflow budget exhaustion" `Quick test_workflow_budget_exhaustion;
    Alcotest.test_case "target against wrong graph" `Quick test_flow_target_against_mismeasured_graph;
  ]
