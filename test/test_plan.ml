(* The reified plan IR: derived use counts must match the documented
   privacy costs AND what Batch actually debits from a budget; memoized
   lowering must share nodes without changing any evaluated value. *)

module Wdata = Wpinq_weighted.Wdata
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Plan = Wpinq_core.Plan
module Flow = Wpinq_core.Flow
module Queries = Wpinq_queries.Queries
module Dataflow = Wpinq_dataflow.Dataflow
open Helpers

module Qp = Queries.Make (Plan)
module Qb = Queries.Make (Batch)

let random_graph seed = Gen.erdos_renyi ~n:20 ~m:45 (Prng.create seed)

type any = Any : 'a Plan.t -> any

(* Every documented pipeline cost over a given symmetric source. *)
let costed_pipelines src =
  [
    ("degree ccdf", Any (Qp.degree_ccdf src), 1);
    ("degree sequence", Any (Qp.degree_sequence src), 1);
    ("degree histogram", Any (Qp.degree_histogram src), 1);
    ("node count", Any (Qp.node_count src), 1);
    ("edge count", Any (Qp.edge_count src), 1);
    ("paths2", Any (Qp.paths2 src), 2);
    ("paths3", Any (Qp.paths3 src), 3);
    ("JDD", Any (Qp.jdd src), 4);
    ("TbI", Any (Qp.tbi src), 4);
    ("SbI", Any (Qp.sbi src), 6);
    ("TbD", Any (Qp.tbd src), 9);
    ("SbD", Any (Qp.sbd src), 12);
  ]

let test_uses_constants () =
  let src = Plan.source ~name:"sym" () in
  List.iter
    (fun (name, Any p, expect) -> Alcotest.(check int) name expect (Plan.uses p))
    (costed_pipelines src);
  (* Undirected input: symmetrize doubles every cost (Theorems 2-3). *)
  let und = Plan.source ~name:"undirected" () in
  Alcotest.(check int) "TbD after symmetrize: 18" 18 (Plan.uses (Qp.tbd (Qp.symmetrize und)));
  Alcotest.(check int) "TbI after symmetrize: 8" 8 (Plan.uses (Qp.tbi (Qp.symmetrize und)))

(* The central property: for every pipeline, [Plan.uses] equals both the
   use count Batch's own static accounting derives for the lowered
   collection and the multiple of epsilon an aggregation actually debits
   from the source budget. *)
let test_uses_equals_batch_debit () =
  let g = random_graph 11 in
  let epsilon = 0.25 in
  let src = Plan.source ~name:"sym" () in
  List.iter
    (fun (name, Any p, _) ->
      let budget = Budget.create ~name:"edges" 1e9 in
      let batch_src = Batch.source_records ~budget (Graph.directed_edges g) in
      let ctx = Batch.Plans.create () in
      Batch.Plans.bind ctx src batch_src;
      let lowered = Batch.Plans.lower ctx p in
      let static =
        match Batch.uses lowered with [ (_, n) ] -> n | _ -> -1
      in
      Alcotest.(check int) (name ^ ": Batch static count") (Plan.uses p) static;
      Batch.charge ~epsilon lowered;
      check_close
        (name ^ ": actual budget debit")
        (float_of_int (Plan.uses p) *. epsilon)
        (Budget.spent budget))
    (costed_pipelines src)

(* Lowering through plans evaluates to exactly what the direct Batch
   instantiation computes. *)
let test_lowered_values_match_direct () =
  let g = random_graph 12 in
  let budget = Budget.create ~name:"edges" 1e9 in
  let batch_src = Batch.source_records ~budget (Graph.directed_edges g) in
  let src = Plan.source ~name:"sym" () in
  let ctx = Batch.Plans.create () in
  Batch.Plans.bind ctx src batch_src;
  let check_val name expected lowered =
    if not (Wdata.equal ~tol:1e-9 (Batch.unsafe_value expected) (Batch.unsafe_value lowered))
    then Alcotest.failf "%s: lowered value differs from direct instantiation" name
  in
  check_val "ccdf" (Qb.degree_ccdf batch_src) (Batch.Plans.lower ctx (Qp.degree_ccdf src));
  check_val "jdd" (Qb.jdd batch_src) (Batch.Plans.lower ctx (Qp.jdd src));
  check_val "tbd" (Qb.tbd batch_src) (Batch.Plans.lower ctx (Qp.tbd src));
  check_val "sbi" (Qb.sbi batch_src) (Batch.Plans.lower ctx (Qp.sbi src))

let test_plan_basics () =
  let s : int Plan.t = Plan.source ~name:"xs" () in
  Alcotest.(check bool) "source is source" true (Plan.is_source s);
  Alcotest.(check string) "source operator" "source" (Plan.operator s);
  let doubled = Plan.concat s s in
  Alcotest.(check bool) "concat not source" false (Plan.is_source doubled);
  Alcotest.(check int) "diamond uses both paths" 2 (Plan.uses doubled);
  Alcotest.(check int) "diamond size counts nodes once" 2 (Plan.size doubled);
  Alcotest.(check (list (pair string int))) "source_uses names the leaf" [ ("xs", 2) ]
    (Plan.source_uses doubled);
  let sel = Plan.select (fun x -> x + 1) s in
  Alcotest.(check bool) "distinct ids" true (Plan.id sel <> Plan.id s);
  (* A diamond over a deep shared prefix: uses multiplies, size adds. *)
  let deep = Plan.where (fun x -> x > 0) (Plan.select (fun x -> x) s) in
  let dia = Plan.union deep deep in
  Alcotest.(check int) "deep diamond uses" 2 (Plan.uses dia);
  Alcotest.(check int) "deep diamond size" 4 (Plan.size dia)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_lowering_errors () =
  let s : int Plan.t = Plan.source ~name:"xs" () in
  let ctx = Batch.Plans.create () in
  (match Batch.Plans.lower ctx s with
  | _ -> Alcotest.fail "lowering an unbound source should raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "unbound-source error names the leaf" true
        (contains ~sub:"unbound source" msg && contains ~sub:"xs" msg));
  let sel = Plan.select (fun x -> x + 1) s in
  match Batch.Plans.bind ctx sel (Batch.public []) with
  | () -> Alcotest.fail "binding a non-source should raise"
  | exception Invalid_argument _ -> ()

(* Memoized lowering: a node lowered twice in one context is built once
   and counted as shared; separate contexts rebuild from scratch. *)
let test_lowering_memoization () =
  let src = Plan.source ~name:"sym" () in
  let tbd = Qp.tbd src and jdd = Qp.jdd src and ccdf = Qp.degree_ccdf src in
  let g = random_graph 13 in
  let lower_all ctx =
    let budget = Budget.create ~name:"edges" 1e9 in
    Batch.Plans.bind ctx src (Batch.source_records ~budget (Graph.directed_edges g));
    ignore (Batch.Plans.lower ctx ccdf);
    ignore (Batch.Plans.lower ctx jdd);
    ignore (Batch.Plans.lower ctx tbd)
  in
  let shared = Batch.Plans.create () in
  lower_all shared;
  (* JDD and TbD both consume the degree pipeline: sharing must happen. *)
  Alcotest.(check bool) "nodes shared > 0" true (Batch.Plans.nodes_shared shared > 0);
  let unshared_built =
    List.fold_left
      (fun acc p ->
        let ctx = Batch.Plans.create () in
        let budget = Budget.create ~name:"edges" 1e9 in
        Batch.Plans.bind ctx src (Batch.source_records ~budget (Graph.directed_edges g));
        (match p with Any p -> ignore (Batch.Plans.lower ctx p));
        acc + Batch.Plans.nodes_built ctx)
      0
      [ Any ccdf; Any jdd; Any tbd ]
  in
  Alcotest.(check bool)
    "shared context builds fewer nodes than three separate ones" true
    (Batch.Plans.nodes_built shared < unshared_built);
  (* Re-lowering an already-lowered plan is pure memo traffic. *)
  let built_before = Batch.Plans.nodes_built shared in
  ignore (Batch.Plans.lower shared tbd);
  Alcotest.(check int) "re-lowering builds nothing" built_before
    (Batch.Plans.nodes_built shared)

(* The Flow lowering reports its sharing into the engine counters. *)
let test_flow_lowering_counters () =
  let src = Plan.source ~name:"sym" () in
  let plans = [ Any (Qp.degree_ccdf src); Any (Qp.jdd src); Any (Qp.tbd src) ] in
  let build shared =
    let engine = Dataflow.Engine.create () in
    let _handle, sym = Flow.input engine in
    if shared then begin
      let ctx = Flow.Plans.create engine in
      Flow.Plans.bind ctx src sym;
      List.iter (fun (Any p) -> ignore (Flow.Plans.lower ctx p)) plans
    end
    else
      List.iter
        (fun (Any p) ->
          let ctx = Flow.Plans.create engine in
          Flow.Plans.bind ctx src sym;
          ignore (Flow.Plans.lower ctx p))
        plans;
    engine
  in
  let shared = build true and unshared = build false in
  Alcotest.(check bool) "engine nodes_shared > 0" true
    (Dataflow.Engine.nodes_shared shared > 0);
  (* Per-target contexts still share *within* each plan (diamonds like
     JDD's [join temp temp]), but only one context shares *across*
     targets. *)
  Alcotest.(check bool) "cross-target sharing exceeds intra-plan sharing" true
    (Dataflow.Engine.nodes_shared shared > Dataflow.Engine.nodes_shared unshared);
  Alcotest.(check bool) "shared engine builds fewer physical nodes" true
    (Dataflow.Engine.nodes_built shared < Dataflow.Engine.nodes_built unshared)

let suite =
  [
    Alcotest.test_case "uses: documented constants" `Quick test_uses_constants;
    Alcotest.test_case "uses = Batch debit" `Quick test_uses_equals_batch_debit;
    Alcotest.test_case "lowered values match direct" `Quick test_lowered_values_match_direct;
    Alcotest.test_case "plan basics" `Quick test_plan_basics;
    Alcotest.test_case "lowering errors" `Quick test_lowering_errors;
    Alcotest.test_case "lowering memoization" `Quick test_lowering_memoization;
    Alcotest.test_case "flow lowering counters" `Quick test_flow_lowering_counters;
  ]
