(* The reified plan IR: derived use counts must match the documented
   privacy costs AND what Batch actually debits from a budget; memoized
   lowering must share nodes without changing any evaluated value. *)

module Wdata = Wpinq_weighted.Wdata
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Prng = Wpinq_prng.Prng
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Plan = Wpinq_core.Plan
module Flow = Wpinq_core.Flow
module Queries = Wpinq_queries.Queries
module Dataflow = Wpinq_dataflow.Dataflow
open Helpers

module Qp = Queries.Make (Plan)
module Qb = Queries.Make (Batch)

let random_graph seed = Gen.erdos_renyi ~n:20 ~m:45 (Prng.create seed)

type any = Any : 'a Plan.t -> any

(* Every documented pipeline cost over a given symmetric source. *)
let costed_pipelines src =
  [
    ("degree ccdf", Any (Qp.degree_ccdf src), 1);
    ("degree sequence", Any (Qp.degree_sequence src), 1);
    ("degree histogram", Any (Qp.degree_histogram src), 1);
    ("node count", Any (Qp.node_count src), 1);
    ("edge count", Any (Qp.edge_count src), 1);
    ("paths2", Any (Qp.paths2 src), 2);
    ("paths3", Any (Qp.paths3 src), 3);
    ("JDD", Any (Qp.jdd src), 4);
    ("TbI", Any (Qp.tbi src), 4);
    ("SbI", Any (Qp.sbi src), 6);
    ("TbD", Any (Qp.tbd src), 9);
    ("SbD", Any (Qp.sbd src), 12);
  ]

let test_uses_constants () =
  let src = Plan.source ~name:"sym" () in
  List.iter
    (fun (name, Any p, expect) -> Alcotest.(check int) name expect (Plan.uses p))
    (costed_pipelines src);
  (* Undirected input: symmetrize doubles every cost (Theorems 2-3). *)
  let und = Plan.source ~name:"undirected" () in
  Alcotest.(check int) "TbD after symmetrize: 18" 18 (Plan.uses (Qp.tbd (Qp.symmetrize und)));
  Alcotest.(check int) "TbI after symmetrize: 8" 8 (Plan.uses (Qp.tbi (Qp.symmetrize und)))

(* The central property: for every pipeline, [Plan.uses] equals both the
   use count Batch's own static accounting derives for the lowered
   collection and the multiple of epsilon an aggregation actually debits
   from the source budget. *)
let test_uses_equals_batch_debit () =
  let g = random_graph 11 in
  let epsilon = 0.25 in
  let src = Plan.source ~name:"sym" () in
  List.iter
    (fun (name, Any p, _) ->
      let budget = Budget.create ~name:"edges" 1e9 in
      let batch_src = Batch.source_records ~budget (Graph.directed_edges g) in
      let ctx = Batch.Plans.create () in
      Batch.Plans.bind ctx src batch_src;
      let lowered = Batch.Plans.lower ctx p in
      let static =
        match Batch.uses lowered with [ (_, n) ] -> n | _ -> -1
      in
      Alcotest.(check int) (name ^ ": Batch static count") (Plan.uses p) static;
      Batch.charge ~epsilon lowered;
      check_close
        (name ^ ": actual budget debit")
        (float_of_int (Plan.uses p) *. epsilon)
        (Budget.spent budget))
    (costed_pipelines src)

(* Lowering through plans evaluates to exactly what the direct Batch
   instantiation computes. *)
let test_lowered_values_match_direct () =
  let g = random_graph 12 in
  let budget = Budget.create ~name:"edges" 1e9 in
  let batch_src = Batch.source_records ~budget (Graph.directed_edges g) in
  let src = Plan.source ~name:"sym" () in
  let ctx = Batch.Plans.create () in
  Batch.Plans.bind ctx src batch_src;
  let check_val name expected lowered =
    if not (Wdata.equal ~tol:1e-9 (Batch.unsafe_value expected) (Batch.unsafe_value lowered))
    then Alcotest.failf "%s: lowered value differs from direct instantiation" name
  in
  check_val "ccdf" (Qb.degree_ccdf batch_src) (Batch.Plans.lower ctx (Qp.degree_ccdf src));
  check_val "jdd" (Qb.jdd batch_src) (Batch.Plans.lower ctx (Qp.jdd src));
  check_val "tbd" (Qb.tbd batch_src) (Batch.Plans.lower ctx (Qp.tbd src));
  check_val "sbi" (Qb.sbi batch_src) (Batch.Plans.lower ctx (Qp.sbi src))

let test_plan_basics () =
  let s : int Plan.t = Plan.source ~name:"xs" () in
  Alcotest.(check bool) "source is source" true (Plan.is_source s);
  Alcotest.(check string) "source operator" "source" (Plan.operator s);
  let doubled = Plan.concat s s in
  Alcotest.(check bool) "concat not source" false (Plan.is_source doubled);
  Alcotest.(check int) "diamond uses both paths" 2 (Plan.uses doubled);
  Alcotest.(check int) "diamond size counts nodes once" 2 (Plan.size doubled);
  Alcotest.(check (list (pair string int))) "source_uses names the leaf" [ ("xs", 2) ]
    (Plan.source_uses doubled);
  let sel = Plan.select (fun x -> x + 1) s in
  Alcotest.(check bool) "distinct ids" true (Plan.id sel <> Plan.id s);
  (* A diamond over a deep shared prefix: uses multiplies, size adds. *)
  let deep = Plan.where (fun x -> x > 0) (Plan.select (fun x -> x) s) in
  let dia = Plan.union deep deep in
  Alcotest.(check int) "deep diamond uses" 2 (Plan.uses dia);
  Alcotest.(check int) "deep diamond size" 4 (Plan.size dia)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Hash-consing: structurally equal nodes — same operator, same closures
   (physical), same children — are the same node, even when built through
   two separate functor instantiations; sources stay distinct. *)
let test_hashcons () =
  let s : int Plan.t = Plan.source ~name:"xs" () in
  let f x = x + 1 in
  Alcotest.(check int) "same select interned"
    (Plan.id (Plan.select f s))
    (Plan.id (Plan.select f s));
  let d1 = Plan.concat s s and d2 = Plan.concat s s in
  Alcotest.(check int) "same diamond interned" (Plan.id d1) (Plan.id d2);
  Alcotest.(check bool) "fresh sources stay distinct" true
    (Plan.id (Plan.source ~name:"xs" ()) <> Plan.id (Plan.source ~name:"xs" ()));
  Alcotest.(check bool) "consumers counted once per distinct parent" true
    (Plan.consumers s >= 1)

let test_hashcons_cross_instance () =
  let src = Plan.source ~name:"sym" () in
  let module A = Queries.Make (Plan) in
  let module B = Queries.Make (Plan) in
  let same name (Any p) (Any q) = Alcotest.(check int) name (Plan.id p) (Plan.id q) in
  same "tbd" (Any (A.tbd src)) (Any (B.tbd src));
  same "tbd bucket 2" (Any (A.tbd ~bucket:2 src)) (Any (B.tbd ~bucket:2 src));
  same "jdd" (Any (A.jdd src)) (Any (B.jdd src));
  same "tbi" (Any (A.tbi src)) (Any (B.tbi src));
  same "sbi" (Any (A.sbi src)) (Any (B.sbi src));
  same "sbd" (Any (A.sbd src)) (Any (B.sbd src));
  same "nodes" (Any (A.nodes src)) (Any (B.nodes src))

(* A 40-deep diamond ladder has 2^40 root-to-source paths; memoized counts
   make [uses] linear in nodes, so this must return instantly (a per-path
   walk would outlive the heat death of the CI job). *)
let test_diamond_ladder () =
  let s : int Plan.t = Plan.source ~name:"xs" () in
  let p = ref s in
  for _ = 1 to 40 do
    p := Plan.concat !p !p
  done;
  Alcotest.(check bool) "uses = 2^40" true (Plan.uses !p = 1 lsl 40);
  Alcotest.(check int) "size = 41" 41 (Plan.size !p);
  Alcotest.(check (list (pair string int))) "source_uses = 2^40"
    [ ("xs", 1 lsl 40) ]
    (Plan.source_uses !p)

(* Binding a source after any lowering has happened would leave memoized
   nodes silently reading the old binding — it must raise instead. *)
let test_bind_after_lower () =
  let s1 : int Plan.t = Plan.source ~name:"a" () in
  let s2 : int Plan.t = Plan.source ~name:"b" () in
  let ctx = Batch.Plans.create () in
  Batch.Plans.bind ctx s1 (Batch.public [ (1, 1.0); (2, 1.0) ]);
  ignore (Batch.Plans.lower ctx (Plan.select (fun x -> x + 1) s1));
  match Batch.Plans.bind ctx s2 (Batch.public [ (3, 1.0) ]) with
  | () -> Alcotest.fail "bind after lower should raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "error explains the footgun" true
        (contains ~sub:"after lowering" msg)

let test_pp_and_dot () =
  let s : int Plan.t = Plan.source ~name:"xs" () in
  let f x = x + 1 in
  let dia = Plan.concat (Plan.select f s) (Plan.select f s) in
  let listing = Format.asprintf "%a" Plan.pp dia in
  Alcotest.(check bool) "pp names the source" true (contains ~sub:{|source "xs"|} listing);
  Alcotest.(check bool) "pp lists concat" true (contains ~sub:"concat" listing);
  (* The shared select appears once: three distinct nodes, three lines. *)
  let lines = String.split_on_char '\n' (String.trim listing) in
  Alcotest.(check int) "pp dedups the diamond" 3 (List.length lines);
  let dot = Plan.to_dot ~label:"dia" dia in
  Alcotest.(check bool) "dot is a digraph" true (contains ~sub:{|digraph "dia"|} dot);
  Alcotest.(check bool) "dot boxes the source" true (contains ~sub:"shape=box" dot);
  Alcotest.(check bool) "dot labels edge multiplicity" true (contains ~sub:{|label="x1"|} dot)

let test_canonical_hash () =
  let src = Plan.source ~name:"sym" () in
  Alcotest.(check string) "hash is stable"
    (Plan.canonical_hash (Qp.tbd src))
    (Plan.canonical_hash (Qp.tbd src));
  (* Shape-equal plans with different closures share a hash... *)
  let h1 = Plan.canonical_hash (Plan.select (fun (a, b) -> (a + 1, b)) src) in
  let h2 = Plan.canonical_hash (Plan.select (fun (_, b) -> (b, b)) src) in
  Alcotest.(check string) "closures are not represented" h1 h2;
  (* ...but operators, scalars and wiring are. *)
  Alcotest.(check bool) "operator changes the hash" true
    (Plan.canonical_hash (Plan.where (fun _ -> true) src) <> h1);
  Alcotest.(check bool) "scalar changes the hash" true
    (Plan.canonical_hash (Plan.shave_const 1.0 src)
    <> Plan.canonical_hash (Plan.shave_const 0.5 src));
  let other : (int * int) Plan.t = Plan.source ~name:"other" () in
  Alcotest.(check bool) "source name changes the hash" true
    (Plan.canonical_hash (Plan.select (fun (a, b) -> (a + 1, b)) other) <> h1)

let test_lowering_errors () =
  let s : int Plan.t = Plan.source ~name:"xs" () in
  let ctx = Batch.Plans.create () in
  (match Batch.Plans.lower ctx s with
  | _ -> Alcotest.fail "lowering an unbound source should raise"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "unbound-source error names the leaf" true
        (contains ~sub:"unbound source" msg && contains ~sub:"xs" msg));
  let sel = Plan.select (fun x -> x + 1) s in
  match Batch.Plans.bind ctx sel (Batch.public []) with
  | () -> Alcotest.fail "binding a non-source should raise"
  | exception Invalid_argument _ -> ()

(* Memoized lowering: a node lowered twice in one context is built once
   and counted as shared; separate contexts rebuild from scratch. *)
let test_lowering_memoization () =
  let src = Plan.source ~name:"sym" () in
  let tbd = Qp.tbd src and jdd = Qp.jdd src and ccdf = Qp.degree_ccdf src in
  let g = random_graph 13 in
  let lower_all ctx =
    let budget = Budget.create ~name:"edges" 1e9 in
    Batch.Plans.bind ctx src (Batch.source_records ~budget (Graph.directed_edges g));
    ignore (Batch.Plans.lower ctx ccdf);
    ignore (Batch.Plans.lower ctx jdd);
    ignore (Batch.Plans.lower ctx tbd)
  in
  let shared = Batch.Plans.create () in
  lower_all shared;
  (* JDD and TbD both consume the degree pipeline: sharing must happen. *)
  Alcotest.(check bool) "nodes shared > 0" true (Batch.Plans.nodes_shared shared > 0);
  let unshared_built =
    List.fold_left
      (fun acc p ->
        let ctx = Batch.Plans.create () in
        let budget = Budget.create ~name:"edges" 1e9 in
        Batch.Plans.bind ctx src (Batch.source_records ~budget (Graph.directed_edges g));
        (match p with Any p -> ignore (Batch.Plans.lower ctx p));
        acc + Batch.Plans.nodes_built ctx)
      0
      [ Any ccdf; Any jdd; Any tbd ]
  in
  Alcotest.(check bool)
    "shared context builds fewer nodes than three separate ones" true
    (Batch.Plans.nodes_built shared < unshared_built);
  (* Re-lowering an already-lowered plan is pure memo traffic. *)
  let built_before = Batch.Plans.nodes_built shared in
  ignore (Batch.Plans.lower shared tbd);
  Alcotest.(check int) "re-lowering builds nothing" built_before
    (Batch.Plans.nodes_built shared)

(* The Flow lowering reports its sharing into the engine counters. *)
let test_flow_lowering_counters () =
  let src = Plan.source ~name:"sym" () in
  let plans = [ Any (Qp.degree_ccdf src); Any (Qp.jdd src); Any (Qp.tbd src) ] in
  let build shared =
    let engine = Dataflow.Engine.create () in
    let _handle, sym = Flow.input engine in
    if shared then begin
      let ctx = Flow.Plans.create engine in
      Flow.Plans.bind ctx src sym;
      List.iter (fun (Any p) -> ignore (Flow.Plans.lower ctx p)) plans
    end
    else
      List.iter
        (fun (Any p) ->
          let ctx = Flow.Plans.create engine in
          Flow.Plans.bind ctx src sym;
          ignore (Flow.Plans.lower ctx p))
        plans;
    engine
  in
  let shared = build true and unshared = build false in
  Alcotest.(check bool) "engine nodes_shared > 0" true
    (Dataflow.Engine.nodes_shared shared > 0);
  (* Per-target contexts still share *within* each plan (diamonds like
     JDD's [join temp temp]), but only one context shares *across*
     targets. *)
  Alcotest.(check bool) "cross-target sharing exceeds intra-plan sharing" true
    (Dataflow.Engine.nodes_shared shared > Dataflow.Engine.nodes_shared unshared);
  Alcotest.(check bool) "shared engine builds fewer physical nodes" true
    (Dataflow.Engine.nodes_built shared < Dataflow.Engine.nodes_built unshared)

let suite =
  [
    Alcotest.test_case "uses: documented constants" `Quick test_uses_constants;
    Alcotest.test_case "uses = Batch debit" `Quick test_uses_equals_batch_debit;
    Alcotest.test_case "lowered values match direct" `Quick test_lowered_values_match_direct;
    Alcotest.test_case "plan basics" `Quick test_plan_basics;
    Alcotest.test_case "lowering errors" `Quick test_lowering_errors;
    Alcotest.test_case "lowering memoization" `Quick test_lowering_memoization;
    Alcotest.test_case "flow lowering counters" `Quick test_flow_lowering_counters;
    Alcotest.test_case "hash-consing" `Quick test_hashcons;
    Alcotest.test_case "hash-consing across functor instances" `Quick
      test_hashcons_cross_instance;
    Alcotest.test_case "40-deep diamond ladder" `Quick test_diamond_ladder;
    Alcotest.test_case "bind after lower raises" `Quick test_bind_after_lower;
    Alcotest.test_case "pp and to_dot" `Quick test_pp_and_dot;
    Alcotest.test_case "canonical hash" `Quick test_canonical_hash;
  ]
