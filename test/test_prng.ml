module Prng = Wpinq_prng.Prng

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_independent () =
  let a = Prng.create 7 in
  let _ = Prng.bits64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy agrees" (Prng.bits64 a) (Prng.bits64 b);
  (* Advancing one does not move the other. *)
  let _ = Prng.bits64 a in
  let xa = Prng.bits64 a and xb = Prng.bits64 b in
  Alcotest.(check bool) "diverged" true (xa <> xb)

let test_split_independent () =
  let a = Prng.create 9 in
  let child = Prng.split a in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 child then incr matches
  done;
  Alcotest.(check bool) "child stream independent" true (!matches < 4)

let test_int_bounds () =
  let r = Prng.create 3 in
  for _ = 1 to 10_000 do
    let v = Prng.int r 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done

let test_int_uniform () =
  let r = Prng.create 5 in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let v = Prng.int r 5 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (Float.abs (frac -. 0.2) < 0.02))
    counts

let test_uniform_range () =
  let r = Prng.create 11 in
  for _ = 1 to 10_000 do
    let u = Prng.uniform r in
    Alcotest.(check bool) "in [0,1)" true (u >= 0.0 && u < 1.0);
    let v = Prng.uniform_pos r in
    Alcotest.(check bool) "in (0,1]" true (v > 0.0 && v <= 1.0)
  done

let mean_of n f =
  let r = Prng.create 13 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. f r
  done;
  !acc /. float_of_int n

let test_laplace_moments () =
  let n = 100_000 in
  let scale = 2.5 in
  let mean = mean_of n (fun r -> Prng.laplace r ~scale) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.05);
  let mad = mean_of n (fun r -> Float.abs (Prng.laplace r ~scale)) in
  (* E|X| = scale for Laplace. *)
  Alcotest.(check bool) "E|X| ~ scale" true (Float.abs (mad -. scale) < 0.05)

let test_laplace_median_symmetry () =
  let r = Prng.create 21 in
  let n = 100_000 in
  let pos = ref 0 in
  for _ = 1 to n do
    if Prng.laplace r ~scale:1.0 > 0.0 then incr pos
  done;
  let frac = float_of_int !pos /. float_of_int n in
  Alcotest.(check bool) "median at 0" true (Float.abs (frac -. 0.5) < 0.01)

let test_exponential_mean () =
  let n = 100_000 in
  let mean = mean_of n (fun r -> Prng.exponential r ~rate:4.0) in
  Alcotest.(check bool) "mean ~ 1/rate" true (Float.abs (mean -. 0.25) < 0.01)

let test_geometric_mean () =
  let n = 100_000 in
  let p = 0.3 in
  let mean = mean_of n (fun r -> float_of_int (Prng.geometric r ~p)) in
  (* E = (1-p)/p = 7/3. *)
  Alcotest.(check bool) "mean ~ (1-p)/p" true (Float.abs (mean -. (0.7 /. 0.3)) < 0.05)

let test_gaussian_moments () =
  let n = 100_000 in
  let mean = mean_of n Prng.gaussian in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.02);
  let var = mean_of n (fun r -> let x = Prng.gaussian r in x *. x) in
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.0) < 0.03)

let test_shuffle_permutes () =
  let r = Prng.create 17 in
  let a = Array.init 10 (fun i -> i) in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 10 (fun i -> i)) sorted

let test_choose () =
  let r = Prng.create 19 in
  for _ = 1 to 100 do
    let v = Prng.choose r [| 1; 2; 3 |] in
    Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
  done

(* ------------------------- lookahead streams -------------------------
   [split_nth]/[advance]/[mark]/[rewind] are the contract the parallel
   speculative walk is built on: streams dealt for future steps must be
   exactly the streams the serial walk would have split, must not move
   the master cursor, and must not collide with each other. *)

let test_split_nth_matches_sequential_splits () =
  let master = Prng.create 42 in
  ignore (Prng.bits64 master);
  for i = 0 to 7 do
    let dealt = Prng.split_nth master i in
    (* The (i+1)-th of i+1 consecutive splits of an untouched copy. *)
    let c = Prng.copy master in
    let last = ref (Prng.split c) in
    for _ = 1 to i do
      last := Prng.split c
    done;
    Alcotest.(check string)
      (Printf.sprintf "split_nth %d = %d-th sequential split" i (i + 1))
      (Prng.save !last) (Prng.save dealt)
  done

let test_advance_equals_draws =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"advance k = k draws"
       QCheck.(pair int (int_bound 64))
       (fun (seed, k) ->
         let a = Prng.create seed and b = Prng.create seed in
         for _ = 1 to k do
           ignore (Prng.bits64 a)
         done;
         Prng.advance b k;
         Prng.save a = Prng.save b))

let test_split_nth_pure () =
  let r = Prng.create 123 in
  let before = Prng.save r in
  (* Dealing lookahead streams, in any order, and drawing from them must
     not move the master cursor... *)
  let s2 = Prng.split_nth r 2 in
  let s2_cursor = Prng.save s2 in
  ignore (Prng.bits64 s2);
  let s0 = Prng.split_nth r 0 in
  ignore (Prng.uniform s0);
  let s1 = Prng.split_nth r 1 in
  ignore (Prng.bits64 s1);
  Alcotest.(check string) "master cursor untouched" before (Prng.save r);
  (* ...and re-dealing the same index yields the identical stream. *)
  Alcotest.(check string) "re-deal is stable" s2_cursor (Prng.save (Prng.split_nth r 2))

let test_deal_matches_split_nth =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"deal n = pointwise split_nth"
       QCheck.(pair int (int_bound 32))
       (fun (seed, n) ->
         let r = Prng.create seed in
         ignore (Prng.bits64 r);
         let before = Prng.save r in
         let dealt = Prng.deal r n in
         (* The batch equals the pointwise deal, and neither moves the
            master cursor. *)
         Array.length dealt = n
         && Prng.save r = before
         && Array.for_all
              (fun ok -> ok)
              (Array.mapi (fun i s -> Prng.save s = Prng.save (Prng.split_nth r i)) dealt)))

let test_deal_validates () =
  let r = Prng.create 5 in
  Alcotest.(check int) "deal 0 is empty" 0 (Array.length (Prng.deal r 0));
  Alcotest.check_raises "negative count rejected"
    (Invalid_argument "Prng.deal: negative count") (fun () -> ignore (Prng.deal r (-1)))

let test_dealt_streams_disjoint () =
  (* 8 dealt streams, 64 draws each: all 512 values distinct.  Overlapping
     or duplicated streams would collide immediately; for honest 64-bit
     streams a birthday collision at n=512 has probability ~2^-46. *)
  let r = Prng.create 2026 in
  let seen = Hashtbl.create 1024 in
  for i = 0 to 7 do
    let s = Prng.split_nth r i in
    for _ = 1 to 64 do
      let v = Prng.bits64 s in
      Alcotest.(check bool)
        (Printf.sprintf "no collision (stream %d)" i)
        false (Hashtbl.mem seen v);
      Hashtbl.replace seen v ()
    done
  done

let test_mark_rewind_roundtrip () =
  let r = Prng.create 77 in
  ignore (Prng.bits64 r);
  let mk = Prng.mark r in
  let first = Array.init 16 (fun _ -> Prng.bits64 r) in
  Prng.rewind r mk;
  let again = Array.init 16 (fun _ -> Prng.bits64 r) in
  Alcotest.(check (array int64)) "rewound stream replays" first again

let test_lookahead_fixed_vectors () =
  (* Pinned outputs for seed 42: the checkpoint format stores raw cursor
     positions, so the dealt-stream function must never change shape. *)
  let r = Prng.create 42 in
  Alcotest.(check string) "seed 42 cursor" "a759ea27d4727622" (Prng.save r);
  let expect =
    [|
      ("a033007b33fc542d", 0x33d3b3229fe0c44dL);
      ("5c075f52765ecfe5", 0x0d42ab9a64501cdeL);
      ("3e1afc906e6d4f9f", 0xa4f0647e66417f2eL);
      ("5802161f2c8632be", 0x81af9f189aa2d6d6L);
    |]
  in
  Array.iteri
    (fun i (cursor, first) ->
      let s = Prng.split_nth r i in
      Alcotest.(check string) (Printf.sprintf "dealt cursor %d" i) cursor (Prng.save s);
      Alcotest.(check int64) (Printf.sprintf "dealt first draw %d" i) first (Prng.bits64 s))
    expect;
  Prng.advance r 2;
  Alcotest.(check string) "advanced cursor" "e3c8dd9ad3076e4c" (Prng.save r)

let test_save_restore_roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"save/restore round-trip"
       QCheck.(pair int (int_bound 1000))
       (fun (seed, skip) ->
         let r = Prng.create seed in
         for _ = 1 to skip do
           ignore (Prng.bits64 r)
         done;
         let saved = Prng.save r in
         let restored = Prng.restore saved in
         (* The restored generator replays the identical stream... *)
         let agree = ref true in
         for _ = 1 to 64 do
           if Prng.bits64 r <> Prng.bits64 restored then agree := false
         done;
         (* ...and a second restore from the same string does too (save is
            a pure snapshot, not a handle). *)
         let again = Prng.restore saved in
         !agree && Prng.bits64 again = Prng.bits64 (Prng.restore saved)))

let test_restore_validates () =
  Alcotest.check_raises "short"
    (Invalid_argument "Prng.restore: state must be exactly 16 hex characters") (fun () ->
      ignore (Prng.restore "abc"));
  Alcotest.check_raises "non-hex"
    (Invalid_argument "Prng.restore: malformed hex state") (fun () ->
      ignore (Prng.restore "zzzzzzzzzzzzzzzz"))

let test_save_format_stable () =
  (* The saved form is 16 lowercase hex chars — the on-disk checkpoint
     contract. *)
  let s = Prng.save (Prng.create 42) in
  Alcotest.(check int) "length" 16 (String.length s);
  String.iter
    (fun c ->
      Alcotest.(check bool) "hex digit" true
        ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
    s

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    test_save_restore_roundtrip_prop;
    Alcotest.test_case "restore validates input" `Quick test_restore_validates;
    Alcotest.test_case "save format" `Quick test_save_format_stable;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "split_nth matches sequential splits" `Quick
      test_split_nth_matches_sequential_splits;
    test_advance_equals_draws;
    Alcotest.test_case "split_nth leaves master untouched" `Quick test_split_nth_pure;
    test_deal_matches_split_nth;
    Alcotest.test_case "deal validates" `Quick test_deal_validates;
    Alcotest.test_case "dealt streams disjoint" `Quick test_dealt_streams_disjoint;
    Alcotest.test_case "mark/rewind roundtrip" `Quick test_mark_rewind_roundtrip;
    Alcotest.test_case "lookahead fixed vectors" `Quick test_lookahead_fixed_vectors;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniformity" `Quick test_int_uniform;
    Alcotest.test_case "uniform ranges" `Quick test_uniform_range;
    Alcotest.test_case "laplace moments" `Quick test_laplace_moments;
    Alcotest.test_case "laplace symmetry" `Quick test_laplace_median_symmetry;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "choose members" `Quick test_choose;
  ]
