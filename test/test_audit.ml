(* The self-audit contract: after any sequence of speculative feeds —
   committed or aborted — every redundantly-maintained cell (Join norms,
   target distances) matches its from-scratch recomputation; an injected
   corruption is detected, reported with typed drift, and repaired by the
   recovery path; and a clean audit is bit-neutral to the walk. *)

module Dataflow = Wpinq_dataflow.Dataflow
module Audit = Dataflow.Audit
module Wdata = Wpinq_weighted.Wdata
module Prng = Wpinq_prng.Prng
module Flow = Wpinq_core.Flow
module Measurement = Wpinq_core.Measurement
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Fit = Wpinq_infer.Fit
module Mcmc = Wpinq_infer.Mcmc
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Rewire = Wpinq_graph.Rewire
module Q = Wpinq_queries.Queries.Make (Wpinq_core.Batch)
module Qf = Wpinq_queries.Queries.Make (Wpinq_core.Flow)
open Helpers

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- divergence arithmetic ---- *)

let test_ulp_distance () =
  Alcotest.(check int64) "equal" 0L (Audit.ulp_distance 1.0 1.0);
  Alcotest.(check int64) "one ulp up" 1L (Audit.ulp_distance 1.0 (Float.succ 1.0));
  Alcotest.(check int64) "one ulp down" 1L (Audit.ulp_distance 1.0 (Float.pred 1.0));
  Alcotest.(check int64) "symmetric" (Audit.ulp_distance 2.5 3.5) (Audit.ulp_distance 3.5 2.5);
  Alcotest.(check int64) "across zero" 2L (Audit.ulp_distance (Float.succ 0.0) (-.Float.succ 0.0));
  Alcotest.(check bool) "far apart is huge" true (Audit.ulp_distance 1.0 2.0 > 1_000_000L)

let test_divergence_rule () =
  let clean = function None -> true | Some _ -> false in
  Alcotest.(check bool) "bit-equal is clean" true
    (clean (Audit.check ~tolerance:0.0 ~cell:"c" ~maintained:1.5 ~recomputed:1.5));
  Alcotest.(check bool) "bit-equal nan is clean" true
    (clean (Audit.check ~tolerance:1e-6 ~cell:"c" ~maintained:Float.nan ~recomputed:Float.nan));
  Alcotest.(check bool) "within tolerance is clean" true
    (clean (Audit.check ~tolerance:1e-6 ~cell:"c" ~maintained:1.0 ~recomputed:(1.0 +. 1e-9)));
  (match Audit.check ~tolerance:1e-6 ~cell:"c" ~maintained:1.0 ~recomputed:1.5 with
  | Some d ->
      Alcotest.(check string) "cell" "c" d.Audit.cell;
      check_close ~tol:1e-12 "abs drift" 0.5 d.Audit.abs_drift;
      Alcotest.(check bool) "ulp drift positive" true (d.Audit.ulp_drift > 0L)
  | None -> Alcotest.fail "real drift not flagged");
  Alcotest.(check bool) "nan vs finite diverges" true
    (not (clean (Audit.check ~tolerance:1e-6 ~cell:"c" ~maintained:Float.nan ~recomputed:1.0)));
  Alcotest.(check bool) "inf vs finite diverges" true
    (not
       (clean
          (Audit.check ~tolerance:1e-6 ~cell:"c" ~maintained:Float.infinity ~recomputed:1.0)))

let test_audit_rejected_mid_speculation () =
  let engine = Dataflow.Engine.create () in
  let _input : int Dataflow.Input.t = Dataflow.Input.create engine in
  Dataflow.Engine.begin_speculation engine;
  Alcotest.check_raises "audit mid-speculation"
    (Invalid_argument "Dataflow.Engine.audit: cannot audit mid-speculation") (fun () ->
      ignore (Dataflow.Engine.audit engine));
  Dataflow.Engine.abort engine

(* ---- zero divergence under arbitrary speculate/commit/abort ---- *)

(* Each pipeline routes through a Join so the audit has per-key norms to
   cross-validate; the upstream stage (group_by, except, shave) exercises a
   different operator's interaction with the undo log. *)
let audit_clean name ~build =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name (deltas_arb ()) (fun deltas ->
         let engine = Dataflow.Engine.create () in
         let input = Dataflow.Input.create engine in
         let _sink = Dataflow.Sink.attach (build (Dataflow.Input.node input)) in
         let i = ref 0 in
         List.for_all
           (fun delta ->
             incr i;
             Dataflow.Engine.begin_speculation engine;
             Dataflow.Input.feed input delta;
             (* Alternate outcomes: aborted state must audit as clean as
                committed state. *)
             if !i mod 2 = 0 then Dataflow.Engine.abort engine
             else Dataflow.Engine.commit engine;
             let r = Dataflow.Engine.audit engine in
             r.Audit.divergences = [])
           deltas))

let clean_suite =
  [
    audit_clean "audit clean: self-join"
      ~build:(fun n ->
        Dataflow.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 3)
          ~reduce:(fun x y -> (x, y))
          n n);
    audit_clean "audit clean: join-of-groupby"
      ~build:(fun n ->
        let degs = Dataflow.group_by ~key:(fun x -> x mod 3) ~reduce:List.length n in
        Dataflow.join
          ~kl:(fun x -> x mod 3)
          ~kr:(fun (k, _) -> k)
          ~reduce:(fun x (_, c) -> (x, c))
          n degs);
    audit_clean "audit clean: join-of-except"
      ~build:(fun n ->
        let e = Dataflow.except n (Dataflow.where (fun x -> x mod 2 = 0) n) in
        Dataflow.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 3)
          ~reduce:(fun x y -> (x, y))
          e n);
    audit_clean "audit clean: join-of-shave"
      ~build:(fun n ->
        let s = Dataflow.select fst (Dataflow.shave_const 0.7 n) in
        Dataflow.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 2)
          ~reduce:(fun x y -> x + y)
          s n);
  ]

(* ---- detection of injected corruption ---- *)

let test_target_drift_detected () =
  let engine = Dataflow.Engine.create () in
  let handle, sym = Flow.input engine in
  let rng = Prng.create 123 in
  let m =
    Measurement.create ~rng ~epsilon:0.5 ~true_data:(Wdata.of_list [ (1, 2.0); (2, 1.0) ])
  in
  let target = Flow.Target.create (Flow.select (fun x -> x mod 5) sym) m in
  Flow.feed handle [ (1, 1.0); (6, 1.0); (2, 3.0) ];
  let before = Dataflow.Engine.audit engine in
  Alcotest.(check int) "clean before injection" 0 (List.length before.Audit.divergences);
  Alcotest.(check bool) "target enrolled" true (before.Audit.cells_checked > 0);
  Flow.Target.inject_drift target 0.5;
  match Dataflow.Engine.audit engine with
  | { Audit.divergences = [ d ]; _ } ->
      Alcotest.(check bool) "cell names the target" true (contains d.Audit.cell "target#");
      check_close ~tol:1e-9 "reported drift" 0.5 d.Audit.abs_drift;
      Alcotest.(check bool) "ulp drift reported" true (d.Audit.ulp_drift > 0L);
      Alcotest.(check bool) "report prints" true
        (String.length (Audit.divergence_to_string d) > 0)
  | r -> Alcotest.failf "expected exactly one divergence, got %d" (List.length r.Audit.divergences)

let make_fit () =
  let secret = Gen.clustered ~n:60 ~community:8 ~p_in:0.7 ~extra:30 (Prng.create 7) in
  let seed = Rewire.randomize secret (Prng.create 8) in
  let rng = Prng.create 9 in
  let target =
    let budget = Budget.create ~name:"audit" 1e9 in
    let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
    let m = Batch.noisy_count ~rng ~epsilon:1e4 (Q.tbi sym) in
    fun sym_flow -> Flow.Target.create (Qf.tbi sym_flow) m
  in
  Fit.create ~rng ~seed_graph:seed ~targets:[ target ] ()

let test_fit_audit_detects_and_recovers () =
  let fit = make_fit () in
  for _ = 1 to 200 do
    ignore (Fit.step ~pow:50.0 fit)
  done;
  let clean = Fit.audit fit in
  Alcotest.(check int) "clean after 200 steps" 0 (List.length clean.Audit.divergences);
  Alcotest.(check bool) "cells were checked" true (clean.Audit.cells_checked > 0);
  Flow.Target.inject_drift (List.hd (Fit.targets fit)) 1.0;
  let detected = Fit.audit fit in
  Alcotest.(check bool) "injected drift detected" true
    (List.length detected.Audit.divergences > 0);
  let report = Fit.audit_and_recover fit in
  Alcotest.(check bool) "recovery saw the divergence" true
    (List.length report.Audit.divergences > 0);
  let after = Fit.audit fit in
  Alcotest.(check int) "clean after recovery" 0 (List.length after.Audit.divergences);
  (* The rebuilt state is batch truth: incremental energy = recomputation. *)
  let incremental = Fit.energy fit in
  List.iter Flow.Target.recompute (Fit.targets fit);
  let fresh =
    List.fold_left (fun acc t -> acc +. Flow.Target.weighted_distance t) 0.0 (Fit.targets fit)
  in
  check_close ~tol:1e-9 "energy matches recompute after recovery" fresh incremental

let test_run_with_audit_cadence_recovers () =
  (* Corrupt the maintained distance mid-run: the next scheduled audit must
     detect it, the walk must recover and run to completion, and the damage
     must land in the stats. *)
  let fit = make_fit () in
  let injected = ref false in
  let stats =
    Fit.run fit ~steps:300 ~pow:50.0 ~audit_every:50
      ~on_step:(fun ~step ~energy:_ ->
        if step = 120 && not !injected then begin
          injected := true;
          Flow.Target.inject_drift (List.hd (Fit.targets fit)) 2.0
        end)
      ()
  in
  Alcotest.(check bool) "drift was injected" true !injected;
  Alcotest.(check int) "walk completed" 300 stats.Mcmc.steps;
  Alcotest.(check int) "audits ran on cadence" 6 stats.Mcmc.audits;
  Alcotest.(check bool) "divergences recorded" true (stats.Mcmc.audit_divergences > 0);
  let final = Fit.audit fit in
  Alcotest.(check int) "state clean at the end" 0 (List.length final.Audit.divergences)

let test_clean_audit_is_bit_neutral () =
  (* The acceptance criterion for auditing a healthy run: interleaving
     audits must not perturb the walk by a single bit — same acceptances,
     same edges, same final energy bit pattern. *)
  let fit_plain = make_fit () in
  let stats_plain = Fit.run fit_plain ~steps:300 ~pow:50.0 () in
  let fit_audited = make_fit () in
  let stats_audited = Fit.run fit_audited ~steps:300 ~pow:50.0 ~audit_every:25 () in
  Alcotest.(check int) "audits actually ran" 12 stats_audited.Mcmc.audits;
  Alcotest.(check int) "no divergences" 0 stats_audited.Mcmc.audit_divergences;
  Alcotest.(check int) "same acceptances" stats_plain.Mcmc.accepted stats_audited.Mcmc.accepted;
  Alcotest.(check int64) "same final energy bits"
    (Int64.bits_of_float stats_plain.Mcmc.final_energy)
    (Int64.bits_of_float stats_audited.Mcmc.final_energy);
  Alcotest.(check (list (pair int int)))
    "same edge array"
    (Array.to_list (Fit.edge_array fit_plain))
    (Array.to_list (Fit.edge_array fit_audited))

let suite =
  [
    Alcotest.test_case "ulp distance" `Quick test_ulp_distance;
    Alcotest.test_case "divergence rule" `Quick test_divergence_rule;
    Alcotest.test_case "audit rejected mid-speculation" `Quick
      test_audit_rejected_mid_speculation;
    Alcotest.test_case "target drift detected" `Quick test_target_drift_detected;
    Alcotest.test_case "fit audit detects and recovers" `Slow
      test_fit_audit_detects_and_recovers;
    Alcotest.test_case "run with audit cadence recovers" `Slow
      test_run_with_audit_cadence_recovers;
    Alcotest.test_case "clean audit is bit-neutral" `Slow test_clean_audit_is_bit_neutral;
  ]
  @ clean_suite
