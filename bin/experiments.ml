(* Command-line driver for the paper's experiments: one subcommand per
   table/figure, plus `all` and `ablations`.  Flags expose the knobs that
   trade fidelity for runtime (MCMC steps, dataset scale, epsilon, seed). *)

open Cmdliner
module E = Wpinq_experiments.Experiments

let config_term =
  let scale =
    Arg.(value & opt float E.default.E.scale
         & info [ "scale" ] ~docv:"FACTOR" ~doc:"Dataset size multiplier.")
  in
  let steps =
    Arg.(value & opt int E.default.E.steps
         & info [ "steps" ] ~docv:"N" ~doc:"MCMC steps for fitting experiments.")
  in
  let epsilon =
    Arg.(value & opt float E.default.E.epsilon
         & info [ "epsilon" ] ~docv:"EPS" ~doc:"Per-query privacy parameter.")
  in
  let pow =
    Arg.(value & opt float E.default.E.pow
         & info [ "pow" ] ~docv:"POW" ~doc:"MCMC posterior sharpening exponent.")
  in
  let seed =
    Arg.(value & opt int E.default.E.seed
         & info [ "seed" ] ~docv:"SEED" ~doc:"Master PRNG seed.")
  in
  let repeats =
    Arg.(value & opt int E.default.E.repeats
         & info [ "repeats" ] ~docv:"K" ~doc:"Repetitions where variance is reported.")
  in
  let make scale steps epsilon pow seed repeats =
    { E.scale; steps; epsilon; pow; seed; repeats }
  in
  Term.(const make $ scale $ steps $ epsilon $ pow $ seed $ repeats)

let command name doc run =
  Cmd.v (Cmd.info name ~doc) Term.(const run $ config_term)

(* `synthesize`: the end-to-end workflow on a user graph — the tool a
   data curator would actually run.  Reads a SNAP-style edge list (or a
   named stand-in), measures it under the chosen query, discards it, and
   emits a fitted synthetic graph. *)
let synthesize_cmd =
  let input =
    Arg.(value & opt (some file) None
         & info [ "input"; "i" ] ~docv:"FILE" ~doc:"Edge-list file (\"u v\" per line).")
  in
  let dataset =
    Arg.(value & opt string "grqc"
         & info [ "dataset" ] ~docv:"NAME"
             ~doc:"Stand-in dataset when no $(b,--input) is given: grqc, hepph, hepth, caltech or epinions.")
  in
  let query =
    Arg.(value
         & opt (enum [ ("tbi", `Tbi); ("tbd", `Tbd); ("sbi", `Sbi); ("jdd", `Jdd); ("none", `None) ]) `Tbi
         & info [ "query" ] ~docv:"QUERY"
             ~doc:"Query for phase 2: tbi (4eps), tbd (9eps), sbi (6eps), jdd (4eps), or none (seed only).")
  in
  let also_query =
    Arg.(value
         & opt_all (enum [ ("tbi", `Tbi); ("tbd", `Tbd); ("sbi", `Sbi); ("jdd", `Jdd) ]) []
         & info [ "also-query" ] ~docv:"QUERY"
             ~doc:"Additional queries fitted together with $(b,--query) as one \
                   multi-target walk over a shared plan DAG (repeatable; each adds its \
                   derived cost to the privacy bill).")
  in
  let bucket =
    Arg.(value & opt int 5 & info [ "bucket" ] ~docv:"K" ~doc:"Degree bucket size for tbd.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write the synthetic graph here.")
  in
  let checkpoint_dir =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-dir" ] ~docv:"DIR"
             ~doc:"Write crash-recovery checkpoint generations ($(docv)/ckpt-<step>.wpq) \
                   with retention and corruption fallback.")
  in
  let checkpoint_every =
    Arg.(value & opt int 10_000
         & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Steps between checkpoints.")
  in
  let keep_checkpoints =
    Arg.(value & opt int 3
         & info [ "keep-checkpoints" ] ~docv:"K"
             ~doc:"Checkpoint generations to retain in $(b,--checkpoint-dir) (fallback \
                   depth when the newest is corrupted).")
  in
  let refresh_every =
    Arg.(value & opt int 100_000
         & info [ "refresh-every" ] ~docv:"N"
             ~doc:"Steps between full recomputations of the incrementally maintained \
                   target distances (drift control; persisted in checkpoints).")
  in
  let audit_every =
    Arg.(value & opt int 0
         & info [ "audit-every" ] ~docv:"N"
             ~doc:"Steps between engine self-audits: incremental state is cross-validated \
                   against a from-scratch batch recomputation, and divergent state is \
                   rebuilt from batch (0 disables; persisted in checkpoints).")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Parallel speculative-lookahead width for phase 2: up to $(docv) \
                   consecutive proposals are evaluated concurrently, one replica engine \
                   per domain.  The realized walk (and every checkpoint byte) is \
                   bit-identical for every width; only wall-clock time changes.  \
                   Defaults to the machine's recommended domain count.")
  in
  let lookahead =
    Arg.(value & opt (some string) None
         & info [ "lookahead" ] ~docv:"POLICY"
             ~doc:"Lookahead batch-width policy for phase 2: an integer dispatches \
                   exactly that many speculative proposals per batch (spread across \
                   the $(b,--jobs) workers); $(b,adaptive) (or $(b,adaptive:MAX)) \
                   deepens the lookahead while batches run accept-free and shrinks \
                   it on acceptance, up to MAX (default 8 times $(b,--jobs)).  \
                   Defaults to a fixed width of $(b,--jobs).  The realized walk is \
                   bit-identical under every policy; only wall-clock changes.")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Wall-clock budget for phase 2: when it expires the walk stops \
                   gracefully, writes a final checkpoint, and returns the partial \
                   result.")
  in
  let resume =
    Arg.(value & opt (some file) None
         & info [ "resume" ] ~docv:"FILE"
             ~doc:"Resume an interrupted fit from this single checkpoint file (the \
                   secret graph is not re-read; $(b,--input)/$(b,--query) are ignored).")
  in
  let resume_latest =
    Arg.(value & flag
         & info [ "resume-latest" ]
             ~doc:"Resume from the newest valid checkpoint generation in \
                   $(b,--checkpoint-dir), quarantining corrupted generations and \
                   falling back past them.")
  in
  let run cfg input dataset query also_query bucket output checkpoint_dir checkpoint_every
      keep_checkpoints refresh_every audit_every jobs lookahead deadline resume resume_latest
      =
    let module Graph = Wpinq_graph.Graph in
    let module Io = Wpinq_graph.Io in
    let module W = Wpinq_infer.Workflow in
    let module Shutdown = Wpinq_infer.Shutdown in
    let module D = Wpinq_data.Datasets in
    Shutdown.install ();
    let stop = Shutdown.requested in
    let jobs =
      match jobs with
      | Some j when j >= 1 -> j
      | Some j -> failwith (Printf.sprintf "--jobs must be at least 1 (got %d)" j)
      | None -> Domain.recommended_domain_count ()
    in
    let width =
      match lookahead with
      | None -> None
      | Some s -> (
          let module M = Wpinq_infer.Mcmc in
          match String.lowercase_ascii s with
          | "adaptive" -> Some (M.Adaptive { max_width = 8 * jobs })
          | s when String.length s > 9 && String.sub s 0 9 = "adaptive:" -> (
              match int_of_string_opt (String.sub s 9 (String.length s - 9)) with
              | Some m when m >= 1 -> Some (M.Adaptive { max_width = m })
              | _ ->
                  failwith
                    (Printf.sprintf "--lookahead adaptive:MAX needs MAX >= 1 (got %S)" s))
          | s -> (
              match int_of_string_opt s with
              | Some k when k >= 1 -> Some (M.Fixed k)
              | _ ->
                  failwith
                    (Printf.sprintf
                       "--lookahead must be a positive integer, 'adaptive', or \
                        'adaptive:MAX' (got %S)"
                       s)))
    in
    let store () =
      match checkpoint_dir with
      | Some dir -> Wpinq_persist.Persist.Store.open_dir ~keep:keep_checkpoints dir
      | None -> failwith "--resume-latest requires --checkpoint-dir"
    in
    let r =
      match (resume, resume_latest) with
      | Some path, _ ->
          Printf.printf "resuming from %s (%d steps completed)\n" path
            (W.checkpoint_step path);
          W.resume ~stop ?deadline ~jobs ?width ~path ()
      | None, true ->
          W.resume_latest ~log:print_endline ~stop ?deadline ~jobs ?width ~store:(store ()) ()
      | None, false ->
          let secret =
            match input with
            | Some path -> Io.read path
            | None ->
                let spec =
                  match String.lowercase_ascii dataset with
                  | "grqc" -> D.grqc
                  | "hepph" -> D.hepph
                  | "hepth" -> D.hepth
                  | "caltech" -> D.caltech
                  | "epinions" -> D.epinions
                  | other -> failwith ("unknown dataset " ^ other)
                in
                D.load ~scale:cfg.E.scale spec
          in
          Printf.printf "secret graph: %d nodes, %d edges, %d triangles, r=%+.3f\n"
            (Graph.n secret) (Graph.m secret) (Graph.triangle_count secret)
            (Graph.assortativity secret);
          let of_enum = function
            | `Tbi -> W.Tbi
            | `Tbd -> W.Tbd bucket
            | `Sbi -> W.Sbi
            | `Jdd -> W.Jdd
          in
          let query =
            match query with
            | `None -> None
            | (`Tbi | `Tbd | `Sbi | `Jdd) as q -> Some (of_enum q)
          in
          let queries = List.map of_enum also_query in
          let checkpoint =
            match checkpoint_dir with
            | None -> None
            | Some _ -> Some { W.every = checkpoint_every; sink = W.Store (store ()) }
          in
          W.synthesize ~pow:cfg.E.pow ~steps:cfg.E.steps ~refresh_every ~audit_every ~jobs
            ?width
            ?checkpoint ~stop ?deadline ~rng:(Wpinq_prng.Prng.create cfg.E.seed)
            ~epsilon:cfg.E.epsilon ~query ~queries ~secret ()
    in
    if r.W.stats.Wpinq_infer.Mcmc.interrupted then
      Printf.printf
        "interrupted after %d steps (graceful stop); final checkpoint written — resume \
         with --resume-latest\n"
        r.W.stats.Wpinq_infer.Mcmc.steps;
    if r.W.stats.Wpinq_infer.Mcmc.audits > 0 then
      Printf.printf "self-audits: %d run, %d divergence(s) detected and repaired\n"
        r.W.stats.Wpinq_infer.Mcmc.audits r.W.stats.Wpinq_infer.Mcmc.audit_divergences;
    Printf.printf "privacy spent: %.3f epsilon total\n" r.W.total_epsilon;
    Printf.printf "%10s %10s %14s %10s\n" "step" "triangles" "assortativity" "energy";
    List.iter
      (fun (p : W.trace_point) ->
        Printf.printf "%10d %10d %+14.3f %10.2f\n" p.W.step p.W.triangles p.W.assortativity
          p.W.energy)
      r.W.trace;
    Printf.printf "synthetic graph: %d nodes, %d edges, %d triangles, r=%+.3f\n"
      (Graph.n r.W.synthetic) (Graph.m r.W.synthetic)
      (Graph.triangle_count r.W.synthetic)
      (Graph.assortativity r.W.synthetic);
    match output with
    | Some path ->
        Io.write r.W.synthetic path;
        Printf.printf "wrote %s\n" path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:"Run the full measure-and-synthesize workflow on an edge-list file.")
    Term.(
      const run $ config_term $ input $ dataset $ query $ also_query $ bucket $ output $ checkpoint_dir
      $ checkpoint_every $ keep_checkpoints $ refresh_every $ audit_every $ jobs
      $ lookahead $ deadline
      $ resume $ resume_latest)

let cmds =
  [
    command "table1" "Graph statistics of all datasets (Table 1)." E.table1;
    command "figure3" "TbD synthesis with/without bucketing on CA-GrQc (Figure 3)." E.figure3;
    command "table2" "Triangles: seed vs MCMC vs truth under TbI (Table 2)." E.table2;
    command "figure4" "TbI triangle trajectories, real vs random (Figure 4)." E.figure4;
    command "figure5" "TbI across epsilon values (Figure 5)." E.figure5;
    command "table3" "Barabasi-Albert skew sweep statistics (Table 3)." E.table3;
    command "figure6" "Engine scalability and Epinions behaviour (Figure 6)." E.figure6;
    command "all" "Every table and figure, in paper order." E.all;
    command "baselines" "PINQ / smooth-sensitivity / worst-case comparison." E.baselines;
    command "ablations" "Design-choice ablations (see DESIGN.md)." E.ablations;
    synthesize_cmd;
  ]

let () =
  let info =
    Cmd.info "experiments" ~version:"1.0"
      ~doc:"Reproduce the evaluation of 'Calibrating Data to Sensitivity in Private Data Analysis'"
  in
  exit (Cmd.eval (Cmd.group info cmds))
