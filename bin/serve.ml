(* wPINQ-as-a-service driver: a crash-safe multi-tenant budget ledger
   under a mixed query load.  Opens (or recovers) the ledger directory,
   delegates per-tenant ε accounts from one root dataset budget, fires
   queries from concurrent submitter domains through the admission
   controller, then drains, audits the books for overspend, and proves
   the on-disk state recovers bit-identically.

   Exit status: 0 clean; 1 if any tenant overspent or the recovered
   ledger diverged from the live one — so CI can gate on the invariant. *)

open Cmdliner
module Loadgen = Wpinq_service.Loadgen
module Ledger = Wpinq_service.Ledger
module Shutdown = Wpinq_infer.Shutdown

let config_term =
  let d = Loadgen.default in
  let dir =
    Arg.(required
         & opt (some string) None
         & info [ "dir"; "d" ] ~docv:"DIR"
             ~doc:"Ledger directory (journal + snapshot generations). Created if missing; \
                   an existing one is recovered and continued.")
  in
  let tenants =
    Arg.(value & opt int d.Loadgen.tenants
         & info [ "tenants" ] ~docv:"N" ~doc:"Delegated analyst accounts.")
  in
  let queries =
    Arg.(value & opt int d.Loadgen.queries
         & info [ "queries" ] ~docv:"N" ~doc:"Total query submissions across all submitters.")
  in
  let submitters =
    Arg.(value & opt int d.Loadgen.submitters
         & info [ "submitters" ] ~docv:"N" ~doc:"Concurrent submitter domains.")
  in
  let epsilon =
    Arg.(value & opt float d.Loadgen.epsilon
         & info [ "epsilon" ] ~docv:"EPS"
             ~doc:"Per-use ε; each query costs its plan-derived use count times this.")
  in
  let allocation =
    Arg.(value & opt float d.Loadgen.allocation
         & info [ "allocation" ] ~docv:"EPS" ~doc:"ε delegated to each tenant account.")
  in
  let scale =
    Arg.(value & opt float d.Loadgen.scale
         & info [ "scale" ] ~docv:"FACTOR" ~doc:"ca-GrQc scale factor for the protected graph.")
  in
  let seed =
    Arg.(value & opt int d.Loadgen.seed & info [ "seed" ] ~docv:"SEED" ~doc:"Master PRNG seed.")
  in
  let max_per_tenant =
    Arg.(value & opt int d.Loadgen.max_per_tenant
         & info [ "max-per-tenant" ] ~docv:"N"
             ~doc:"Per-tenant cap on concurrently-evaluating queries.")
  in
  let queue_limit =
    Arg.(value & opt int d.Loadgen.queue_limit
         & info [ "queue-limit" ] ~docv:"N"
             ~doc:"Bound on waiting submitters before backpressure refusals.")
  in
  let timeout =
    Arg.(value & opt float d.Loadgen.timeout
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-query deadline; late answers are discarded and their escrow released. \
                   0 disables.")
  in
  let no_fsync =
    Arg.(value & flag
         & info [ "no-fsync" ]
             ~doc:"Skip the fsync on each journal append (benchmarking only: an \
                   acknowledged charge may not survive a power loss).")
  in
  let keep =
    Arg.(value & opt int d.Loadgen.keep
         & info [ "keep" ] ~docv:"N" ~doc:"Ledger snapshot generations retained.")
  in
  let make tenants queries submitters epsilon allocation scale seed max_per_tenant
      queue_limit timeout no_fsync keep =
    {
      Loadgen.tenants;
      queries;
      submitters;
      epsilon;
      allocation;
      scale;
      seed;
      max_per_tenant;
      queue_limit;
      timeout;
      fsync = not no_fsync;
      keep;
    }
  in
  ( dir,
    Term.(const make $ tenants $ queries $ submitters $ epsilon $ allocation $ scale $ seed
          $ max_per_tenant $ queue_limit $ timeout $ no_fsync $ keep) )

let print_outcome (o : Loadgen.outcome) =
  Printf.printf "admitted       %d\n" o.Loadgen.admitted;
  Printf.printf "committed      %d\n" o.Loadgen.committed;
  Printf.printf "refused        budget %d, overload %d, timeout %d, shutdown %d\n"
    o.Loadgen.refused_budget o.Loadgen.refused_overload o.Loadgen.refused_timeout
    o.Loadgen.refused_shutdown;
  Printf.printf "errors         %d\n" o.Loadgen.errors;
  Printf.printf "wall           %.2fs (%.0f q/s)\n" o.Loadgen.wall_s o.Loadgen.throughput_qps;
  Printf.printf "recovery       replayed %d, charged-on-doubt %d (ε %.6g), torn bytes %d, \
                 snapshots rejected %d\n"
    o.Loadgen.recovery.Ledger.replayed o.Loadgen.recovery.Ledger.charged_on_doubt
    o.Loadgen.recovery.Ledger.doubt_epsilon o.Loadgen.recovery.Ledger.torn_bytes
    o.Loadgen.recovery.Ledger.snapshots_rejected;
  Printf.printf "recovered      %s\n"
    (if o.Loadgen.recovered_matches then "bit-identical to live state" else "MISMATCH");
  print_endline "tenant          allocated     spent  committed  available";
  List.iter
    (fun (name, v) ->
      Printf.printf "%-14s %10.4f %9.4f %10.4f %10.4f%s\n" name v.Ledger.v_allocated
        v.Ledger.v_spent v.Ledger.v_committed
        (v.Ledger.v_allocated -. v.Ledger.v_spent -. v.Ledger.v_committed)
        (if v.Ledger.v_retired then "  (retired)" else ""))
    o.Loadgen.per_tenant;
  (match o.Loadgen.overspend with
  | [] -> print_endline "overspend      none"
  | xs ->
      List.iter
        (fun (name, excess) -> Printf.printf "OVERSPEND      %s by ε %.9g\n" name excess)
        xs)

let run dir cfg =
  Shutdown.install ();
  let outcome =
    Loadgen.run ~stop:Shutdown.requested ~log:prerr_endline ~dir cfg
  in
  print_outcome outcome;
  if outcome.Loadgen.overspend <> [] || not outcome.Loadgen.recovered_matches then 1 else 0

let cmd =
  let doc = "serve a mixed-tenant wPINQ query load against a crash-safe ε-budget ledger" in
  let dir, cfg = config_term in
  Cmd.v (Cmd.info "wpinq-serve" ~doc) Term.(const run $ dir $ cfg)

let () = exit (Cmd.eval' cmd)
