(* wpinq: the plan inspection driver.  `--explain` prints each Section-3
   analysis as the optimizer sees it — the hash-consed DAG before and
   after rewriting, per-source privacy multipliers, canonical hashes, and
   which rules fired — so an analyst can audit exactly what dataflow a
   submitted query lowers to and what it will be charged.  `--dot` emits
   the optimized DAGs as Graphviz, edge labels carrying the path
   multiplicities that sum to each source's ε multiplier. *)

open Cmdliner
module Plan = Wpinq_core.Plan
module Q = Wpinq_queries.Queries.Make (Plan)

type any = Any : 'a Plan.t -> any

(* The five analyses of the paper's Section 3, over one shared source —
   the same corpus the optimizer benchmark lowers. *)
let corpus src =
  [
    ("degree_ccdf", Any (Q.degree_ccdf src));
    ("jdd", Any (Q.jdd src));
    ("tbd", Any (Q.tbd src));
    ("tbi", Any (Q.tbi src));
    ("sbi", Any (Q.sbi src));
  ]

let explain_one ~rules name (Any p) =
  Printf.printf "=== %s ===\n" name;
  Printf.printf "uses: %d  (%s)\n" (Plan.uses p)
    (String.concat ", "
       (List.map (fun (s, k) -> Printf.sprintf "%s x%d" s k) (Plan.source_uses p)));
  Printf.printf "nodes: %d  hash: %s\n" (Plan.size p) (Plan.canonical_hash p);
  Format.printf "%a@." Plan.pp p;
  let o = Plan.optimize ~rules p in
  if Plan.id o = Plan.id p then print_endline "optimized: unchanged\n"
  else begin
    Printf.printf "optimized: %d nodes, hash %s (uses %d, unchanged by construction)\n"
      (Plan.size o) (Plan.canonical_hash o) (Plan.uses o);
    Format.printf "%a@." Plan.pp o;
    print_newline ()
  end;
  (name, Any o)

let run explain dot rules_all queries =
  if not (explain || dot) then (
    prerr_endline "nothing to do: pass --explain and/or --dot (see --help)";
    exit 2);
  let rules = if rules_all then Plan.all_rules else Plan.exact_rules in
  let src = Plan.source ~name:"sym" () in
  let all = corpus src in
  let chosen =
    match queries with
    | [] -> all
    | qs ->
        List.map
          (fun q ->
            match List.assoc_opt q all with
            | Some p -> (q, p)
            | None ->
                prerr_endline
                  ("unknown query " ^ q ^ "; expected one of: "
                  ^ String.concat ", " (List.map fst all));
                exit 2)
          qs
  in
  let optimized =
    List.map
      (fun (name, any) ->
        if explain then explain_one ~rules name any
        else
          let (Any p) = any in
          (name, Any (Plan.optimize ~rules p)))
      chosen
  in
  if explain then begin
    let fires = Plan.optimizer_fires () in
    Printf.printf "rewrites fired: %s\n"
      (if fires = [] then "none"
       else
         String.concat ", " (List.map (fun (r, n) -> Printf.sprintf "%s x%d" r n) fires));
    let hits, misses = Plan.plan_cache_stats () in
    let ch, cn = Plan.hashcons_stats () in
    Printf.printf "plan cache: %d hit(s), %d miss(es); hash-cons: %d hit(s), %d node(s)\n"
      hits misses ch cn
  end;
  if dot then
    List.iter (fun (name, Any o) -> print_string (Plan.to_dot ~label:name o)) optimized

let cmd =
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Print each plan before and after optimization: the deduplicated \
                   node listing, per-source privacy multipliers ($(b,uses)), node \
                   counts, canonical hashes, and the rewrites that fired.")
  in
  let dot =
    Arg.(value & flag
         & info [ "dot" ]
             ~doc:"Emit the optimized plan DAGs as Graphviz on stdout; each edge is \
                   labelled with its root-path multiplicity.")
  in
  let rules_all =
    Arg.(value & flag
         & info [ "all-rules" ]
             ~doc:"Optimize with the full rule set, including the select fusions \
                   that preserve answers only up to floating-point regrouping \
                   (the default $(b,exact) rules preserve released bits exactly).")
  in
  let queries =
    Arg.(value & opt_all string []
         & info [ "query"; "q" ] ~docv:"NAME"
             ~doc:"Restrict to one analysis (repeatable): degree_ccdf, jdd, tbd, \
                   tbi or sbi.  Default: all five.")
  in
  Cmd.v
    (Cmd.info "wpinq" ~doc:"Inspect and explain reified wPINQ query plans")
    Term.(const run $ explain $ dot $ rules_all $ queries)

let () = exit (Cmd.eval cmd)
