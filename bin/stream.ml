(* Continual-observation driver: a crash-safe streaming wPINQ pipeline.

   Opens (or recovers) a supervisor directory, seeds a synthetic secret
   graph as durable arrival events on first run, then drives re-release
   epochs under a per-epoch ε schedule — each epoch warm-started from the
   previous release — submitting deterministic churn between epochs.  A
   first Ctrl-C drains (the in-flight epoch finishes and the loop stops);
   a second interrupts the walk itself, leaving the epoch durable and
   resumable: re-running the same command continues bit-identically.

   Exit status: 0 clean; 1 if the schedule's books show any overspend —
   so CI can gate on the invariant. *)

open Cmdliner
module Sup = Wpinq_stream.Supervisor
module Event = Wpinq_stream.Event
module Policy = Wpinq_stream.Policy
module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Shutdown = Wpinq_infer.Shutdown

let seed_base sup ~nodes ~seed =
  let g =
    Gen.clustered ~n:nodes
      ~community:(max 2 (nodes / 6))
      ~p_in:0.8 ~extra:(nodes / 2) (Prng.create seed)
  in
  List.iter
    (fun (u, v) ->
      ignore (Sup.submit sup (Event.make ~time:(float (Sup.head sup + 1)) ~op:Event.Arrive ~u ~v)))
    (Graph.edges g);
  Printf.printf "seeded %d base arrivals (clustered secret on %d nodes)\n%!" (Sup.head sup)
    nodes

(* Deterministic churn keyed on the ingest head: a resumed process that
   already submitted this batch regenerates and re-applies the same
   no-op-safe events, never a diverging stream. *)
let submit_churn sup ~nodes ~seed ~churn =
  let rng = Prng.split_nth (Prng.create (seed + 7919)) (Sup.head sup) in
  let current = Hashtbl.create 256 in
  List.iter (fun e -> Hashtbl.replace current e ()) (Sup.protected_edges sup);
  let submitted = ref 0 in
  while !submitted < churn do
    let u = Prng.int rng nodes and v = Prng.int rng nodes in
    if u <> v then begin
      let u, v = if u < v then (u, v) else (v, u) in
      let op = if Hashtbl.mem current (u, v) then Event.Depart else Event.Arrive in
      (match op with
      | Event.Depart -> Hashtbl.remove current (u, v)
      | Event.Arrive -> Hashtbl.replace current (u, v) ());
      ignore (Sup.submit sup (Event.make ~time:(float (Sup.head sup + 1)) ~op ~u ~v));
      incr submitted
    end
  done;
  Printf.printf "submitted %d churn events (head %d)\n%!" churn (Sup.head sup)

let run dir epochs cadence per_epoch schedule_epochs policy steps pow deadline retries
    backoff seed nodes churn no_fsync jobs =
  match Policy.degrade_of_string policy with
  | None ->
      Printf.eprintf "unknown policy %S (expected roll-forward or forfeit)\n" policy;
      2
  | Some policy ->
      Shutdown.install ();
      let cfg =
        Sup.config ~steps ~pow ~jobs ~retries ~backoff ~deadline ~per_epoch
          ~epochs:schedule_epochs ~policy ~fsync:(not no_fsync) ~seed ()
      in
      let sup, recovery = Sup.open_dir ~config:cfg dir in
      if
        recovery.Sup.torn_bytes > 0
        || recovery.Sup.replayed_events > 0
        || recovery.Sup.replayed_records > 0
        || recovery.Sup.resumed_epoch <> None
      then
        Printf.printf "recovery: %d torn bytes trimmed, %d events + %d records replayed%s\n%!"
          recovery.Sup.torn_bytes recovery.Sup.replayed_events recovery.Sup.replayed_records
          (match recovery.Sup.resumed_epoch with
          | Some e -> Printf.sprintf ", epoch %d in flight" e
          | None -> "");
      if Sup.head sup = 0 then seed_base sup ~nodes ~seed;
      let interrupted = ref false in
      let rec loop k =
        if k > 0 && not (Shutdown.requested ()) then begin
          if Sup.consumed sup > 0 && Sup.pending sup < churn then
            submit_churn sup ~nodes ~seed ~churn;
          match Sup.tick sup with
          | None ->
              interrupted := true;
              print_endline "interrupted: epoch remains in flight, durable and resumable"
          | Some o ->
              Printf.printf "%s\n%!" (Sup.outcome_to_string o);
              if cadence > 0.0 && k > 1 && not (Shutdown.requested ()) then
                Unix.sleepf cadence;
              loop (k - 1)
        end
      in
      loop epochs;
      let b = Sup.books sup in
      let overspend = Sup.overspend sup in
      Printf.printf
        "books: granted %.4f, spent %.4f, carried %.4f, forfeited %.4f, outstanding %.4f\n"
        b.Sup.Schedule.granted b.Sup.Schedule.spent b.Sup.Schedule.carried
        b.Sup.Schedule.forfeited b.Sup.Schedule.outstanding;
      Printf.printf "stream: %d acknowledged, %d committed, %d pending%s\n" (Sup.head sup)
        (Sup.consumed sup) (Sup.pending sup)
        (if !interrupted then " (one epoch in flight)" else "");
      Printf.printf "overspend: %.9g\n%!" overspend;
      Sup.close sup;
      if overspend > 0.0 then 1 else 0

let cmd =
  let doc = "drive a crash-safe continual-observation wPINQ release stream" in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir"; "d" ] ~docv:"DIR"
          ~doc:
            "Supervisor directory (event journal, epoch ledger, fit checkpoints). \
             Created if missing; an existing one is recovered and continued.")
  in
  let epochs =
    Arg.(
      value & opt int 4
      & info [ "epochs" ] ~docv:"N" ~doc:"Epochs to run in this invocation.")
  in
  let cadence =
    Arg.(
      value & opt float 0.0
      & info [ "cadence" ] ~docv:"SECONDS" ~doc:"Sleep between epochs.")
  in
  let per_epoch =
    Arg.(
      value & opt float 2.0
      & info [ "per-epoch" ] ~docv:"EPS" ~doc:"Fresh ε granted to each epoch.")
  in
  let schedule_epochs =
    Arg.(
      value & opt int 8
      & info [ "schedule-epochs" ] ~docv:"N"
          ~doc:"Lifetime grant cap: epochs beyond this get a typed refusal.")
  in
  let policy =
    Arg.(
      value & opt string "roll-forward"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Unspent-ε policy for degraded epochs: roll-forward or forfeit.")
  in
  let steps =
    Arg.(
      value & opt int 2000
      & info [ "steps" ] ~docv:"N" ~doc:"MCMC steps per epoch.")
  in
  let pow =
    Arg.(
      value & opt float 100.0 & info [ "pow" ] ~docv:"POW" ~doc:"Metropolis sharpness.")
  in
  let deadline =
    Arg.(
      value & opt float 0.0
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-epoch wall-clock deadline; a late epoch degrades. 0 disables.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N" ~doc:"Retries per epoch on transient failures.")
  in
  let backoff =
    Arg.(
      value & opt float 0.1
      & info [ "backoff" ] ~docv:"SECONDS" ~doc:"Base retry backoff (doubles per retry).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Master PRNG seed.")
  in
  let nodes =
    Arg.(
      value & opt int 48
      & info [ "nodes" ] ~docv:"N" ~doc:"Vertices in the synthetic secret graph.")
  in
  let churn =
    Arg.(
      value & opt int 6
      & info [ "churn" ] ~docv:"N" ~doc:"Arrival/departure events submitted per epoch.")
  in
  let no_fsync =
    Arg.(
      value & flag
      & info [ "no-fsync" ]
          ~doc:
            "Skip the fsync on each journal append (benchmarking only: an acknowledged \
             event may not survive a power loss).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains for the speculative walk.")
  in
  Cmd.v
    (Cmd.info "wpinq-stream" ~doc)
    Term.(
      const run $ dir $ epochs $ cadence $ per_epoch $ schedule_epochs $ policy $ steps
      $ pow $ deadline $ retries $ backoff $ seed $ nodes $ churn $ no_fsync $ jobs)

let () = exit (Cmd.eval' cmd)
