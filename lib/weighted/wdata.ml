type 'a t = ('a, float) Hashtbl.t
(* Internally a hashtable, but never mutated after construction: every
   operation copies.  All construction goes through [normalize]-style
   filtering so the support never contains ~zero weights. *)

let epsilon_weight = 1e-12

let is_zero w = Float.abs w < epsilon_weight

let empty () = Hashtbl.create 1

let singleton x w =
  let h = Hashtbl.create 4 in
  if not (is_zero w) then Hashtbl.replace h x w;
  h

let bump h x w =
  match Hashtbl.find_opt h x with
  | None -> if not (is_zero w) then Hashtbl.replace h x w
  | Some w0 ->
      let w' = w0 +. w in
      if is_zero w' then Hashtbl.remove h x else Hashtbl.replace h x w'

(* Canonical construction: the emission list is sorted (by record, then
   weight bits) before accumulation, so the resulting record -> weight
   mapping is a function of the *multiset* of emissions alone — not of
   the order an operator happened to produce them in.  Float addition is
   commutative but not associative, so without the sort two pipelines
   computing the same multiset in different orders would disagree in the
   last ulps; with it, any semantics-preserving plan rewrite yields
   bit-identical weights, which is what lets the optimizer promise
   bit-identical released measurements. *)
let of_list assoc =
  let assoc = List.sort compare assoc in
  let h = Hashtbl.create (max 8 (List.length assoc)) in
  List.iter (fun (x, w) -> bump h x w) assoc;
  h

let of_records xs = of_list (List.map (fun x -> (x, 1.0)) xs)

let to_list h = Hashtbl.fold (fun x w acc -> (x, w) :: acc) h []

let to_sorted_list h =
  List.sort (fun (x, _) (y, _) -> compare x y) (to_list h)

let weight h x = match Hashtbl.find_opt h x with Some w -> w | None -> 0.0
let mem h x = Hashtbl.mem h x
let support_size = Hashtbl.length
let norm h = Hashtbl.fold (fun _ w acc -> acc +. Float.abs w) h 0.0
let total h = Hashtbl.fold (fun _ w acc -> acc +. w) h 0.0

let dist a b =
  let d = Hashtbl.fold (fun x wa acc -> acc +. Float.abs (wa -. weight b x)) a 0.0 in
  Hashtbl.fold (fun x wb acc -> if Hashtbl.mem a x then acc else acc +. Float.abs wb) b d

let copy = Hashtbl.copy

let add a x w =
  let h = copy a in
  bump h x w;
  h

let update a delta =
  let h = copy a in
  List.iter (fun (x, w) -> bump h x w) delta;
  h

let scale c a =
  let h = Hashtbl.create (max 8 (Hashtbl.length a)) in
  Hashtbl.iter (fun x w -> let w' = c *. w in if not (is_zero w') then Hashtbl.replace h x w') a;
  h

let map_weights f a =
  let h = Hashtbl.create (max 8 (Hashtbl.length a)) in
  Hashtbl.iter (fun x w -> let w' = f x w in if not (is_zero w') then Hashtbl.replace h x w') a;
  h

let filter p a =
  let h = Hashtbl.create (max 8 (Hashtbl.length a)) in
  Hashtbl.iter (fun x w -> if p x w then Hashtbl.replace h x w) a;
  h

let fold f a init = Hashtbl.fold f a init
let iter f a = Hashtbl.iter f a

let equal ?(tol = 1e-9) a b = dist a b <= tol

let pp pp_record fmt a =
  let items = to_sorted_list a in
  Format.fprintf fmt "@[<hov 1>{";
  List.iteri
    (fun i (x, w) ->
      if i > 0 then Format.fprintf fmt ";@ ";
      Format.fprintf fmt "(%a, %g)" pp_record x w)
    items;
  Format.fprintf fmt "}@]"
