let select f a =
  Wdata.of_list (Wdata.fold (fun x w acc -> (f x, w) :: acc) a [])

let where p a = Wdata.filter (fun x _ -> p x) a

let select_many f a =
  let out = ref [] in
  Wdata.iter
    (fun x w ->
      let produced = f x in
      let n = List.fold_left (fun acc (_, wy) -> acc +. Float.abs wy) 0.0 produced in
      let scale = w /. Float.max 1.0 n in
      List.iter (fun (y, wy) -> out := (y, wy *. scale) :: !out) produced)
    a;
  Wdata.of_list !out

let select_many_list f a = select_many (fun x -> List.map (fun y -> (y, 1.0)) (f x)) a

(* Prefix emissions of one GroupBy part: records ordered by non-increasing
   weight (record order breaking ties, for determinism), each prefix emitted
   with half the drop in weight at its boundary. *)
let group_emissions part =
  let sorted =
    List.sort (fun (x, wx) (y, wy) -> match compare wy wx with 0 -> compare x y | c -> c) part
  in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let out = ref [] in
  let prefix = ref [] in
  for i = 0 to n - 1 do
    let x, w = arr.(i) in
    prefix := x :: !prefix;
    let w_next = if i + 1 < n then snd arr.(i + 1) else 0.0 in
    let emitted = (w -. w_next) /. 2.0 in
    if emitted > Wdata.epsilon_weight then out := (List.rev !prefix, emitted) :: !out
  done;
  List.rev !out

let group_by ~key ~reduce a =
  let parts : ('k, ('a * float) list) Hashtbl.t = Hashtbl.create 16 in
  Wdata.iter
    (fun x w ->
      if w > 0.0 then
        let k = key x in
        let cur = Option.value ~default:[] (Hashtbl.find_opt parts k) in
        Hashtbl.replace parts k ((x, w) :: cur))
    a;
  let out = ref [] in
  Hashtbl.iter
    (fun k part ->
      List.iter (fun (members, w) -> out := ((k, reduce members), w) :: !out) (group_emissions part))
    parts;
  Wdata.of_list !out

let merge_with f a b =
  let out = ref [] in
  Wdata.iter (fun x wa -> out := (x, f wa (Wdata.weight b x)) :: !out) a;
  Wdata.iter (fun x wb -> if not (Wdata.mem a x) then out := (x, f 0.0 wb) :: !out) b;
  Wdata.of_list !out

let union a b = merge_with Float.max a b
let intersect a b = merge_with Float.min a b
let concat a b = merge_with ( +. ) a b
let except a b = merge_with ( -. ) a b

let join ~kl ~kr ~reduce a b =
  (* Per-key norms are summed over the canonically-sorted part, not in
     table-iteration order: like [Wdata.of_list]'s sort, this makes the
     denominator (and so every emitted weight) a function of the part's
     multiset, so structurally different but equivalent plans agree bit
     for bit. *)
  let index key d =
    let parts = Hashtbl.create 16 in
    Wdata.iter
      (fun x w ->
        let k = key x in
        let cur = Option.value ~default:[] (Hashtbl.find_opt parts k) in
        Hashtbl.replace parts k ((x, w) :: cur))
      d;
    let normed = Hashtbl.create (Hashtbl.length parts) in
    Hashtbl.iter
      (fun k part ->
        let part = List.sort compare part in
        let n = List.fold_left (fun acc (_, w) -> acc +. Float.abs w) 0.0 part in
        Hashtbl.replace normed k (n, part))
      parts;
    normed
  in
  let pa = index kl a and pb = index kr b in
  let out = ref [] in
  Hashtbl.iter
    (fun k (na, xs) ->
      match Hashtbl.find_opt pb k with
      | None -> ()
      | Some (nb, ys) ->
          let denom = na +. nb in
          if denom > Wdata.epsilon_weight then
            List.iter
              (fun (x, wx) ->
                List.iter (fun (y, wy) -> out := (reduce x y, wx *. wy /. denom) :: !out) ys)
              xs)
    pa;
  Wdata.of_list !out

(* Emissions of Shave for a single record of weight [w]: indexed slabs drawn
   from [seq], clipped to the remaining weight.  Stops on exhaustion of
   either the sequence, the weight, or at a non-positive slab. *)
let shave_emissions seq w =
  let rec go i remaining seq acc =
    if remaining <= Wdata.epsilon_weight then List.rev acc
    else
      match Seq.uncons seq with
      | None -> List.rev acc
      | Some (slab, rest) ->
          if slab <= 0.0 then List.rev acc
          else
            let emitted = Float.min slab remaining in
            go (i + 1) (remaining -. emitted) rest ((i, emitted) :: acc)
  in
  go 0 w seq []

let shave f a =
  let out = ref [] in
  Wdata.iter
    (fun x w ->
      if w > 0.0 then
        List.iter (fun (i, wi) -> out := ((x, i), wi) :: !out) (shave_emissions (f x) w))
    a;
  Wdata.of_list !out

let distinct ?(bound = 1.0) a =
  if bound <= 0.0 then invalid_arg "Ops.distinct: bound must be positive";
  Wdata.map_weights (fun _ w -> Float.max 0.0 (Float.min bound w)) a

let shave_const w a =
  if w <= 0.0 then invalid_arg "Ops.shave_const: slab weight must be positive";
  shave (fun _ -> Seq.repeat w) a
