(** Incremental, data-parallel dataflow over weighted collections
    (paper, Section 4.3 and Appendix B).

    A query is built once as a DAG of operator nodes over one or more
    {!Input}s.  Feeding a {e delta} — a batch of [(record, weight-change)]
    pairs — to an input propagates through the DAG synchronously: every
    stateful operator keeps its inputs indexed by the key it is
    data-parallel over, recomputes only the parts whose inputs changed, and
    emits the difference between its old and new outputs.  This is what lets
    Metropolis–Hastings re-score a candidate dataset after a small change
    (e.g. one edge swap) in time proportional to the records the change
    touches, instead of re-running the query from scratch.

    Operator semantics match {!module:Wpinq_weighted.Ops} exactly: after any
    sequence of deltas, a {!Sink} below a pipeline holds the same weighted
    dataset as the batch operators applied to the accumulated input (this is
    property-tested).

    Correctness does not depend on delta granularity, but performance does:
    all entries of one [feed] batch that share an operator key are processed
    together, so a weight-preserving change (e.g. an edge swap, which
    removes one edge of a vertex and adds another) keeps Join's key norms
    unchanged and triggers the cheap linear update of Appendix B rather than
    a full per-key recomputation.

    {2 Speculative evaluation}

    A propagation can be made {e speculative}: between
    {!Engine.begin_speculation} and {!Engine.commit}/{!Engine.abort}, every
    stateful cell mutation is recorded in an engine-wide undo log.
    [commit] discards the log; [abort] replays it in reverse, restoring
    every operator's state, every sink, and the engine statistics to their
    exact pre-speculation bit patterns — in time proportional to the cells
    the propagation touched, with no second DAG propagation and no float
    round-trip drift.  This is how a rejected Metropolis–Hastings move is
    rolled back (propose → speculate → commit/abort); see DESIGN.md,
    "Speculative evaluation & the undo log".

    {2 Self-audit}

    Operators that maintain state {e redundantly} (Join's per-key norms;
    the scoring layer's incremental distances, enrolled via
    {!Engine.register_audit}) can be cross-validated at any quiescent
    point: {!Engine.audit} recomputes each such cell from scratch and
    returns a typed divergence report.  A clean audit costs one pass over
    the audited state and mutates nothing; see DESIGN.md, "Defense in
    depth". *)

module Audit : sig
  type divergence = {
    cell : string;  (** which maintained cell diverged, e.g. ["join#0.left.norm[key#…]"] *)
    maintained : float;  (** the incrementally-maintained value *)
    recomputed : float;  (** the from-scratch batch recomputation *)
    abs_drift : float;
    ulp_drift : int64;
        (** representable floats between the two values (saturating);
            0 would mean bit-equal, which is never reported *)
  }

  type report = { cells_checked : int; divergences : divergence list }

  val ulp_distance : float -> float -> int64

  val check :
    tolerance:float -> cell:string -> maintained:float -> recomputed:float -> divergence option
  (** The shared divergence rule: bit-equal is clean; finite values within
      [tolerance] absolute drift are clean (float summation-order noise);
      everything else — including any non-finite disagreement — diverges. *)

  val divergence_to_string : divergence -> string
end

module Engine : sig
  type t
  (** A dataflow context: owns the DAG, tracks engine-wide statistics. *)

  val create : unit -> t

  val state_records : t -> int
  (** Number of weighted records currently indexed across all stateful
      operators and sinks — the engine's memory footprint proxy, the
      quantity the paper's [O(Σ_v d_v²)] memory argument (Figure 6) is
      about. *)

  val work : t -> int
  (** Total delta entries processed by operators since creation; a
      machine-independent measure of propagation cost.  Aborted
      speculative propagations are excluded (their work is restored by
      {!abort}); their cost is visible through {!undo_cells}. *)

  val join_fast_updates : t -> int
  (** Number of per-key Join updates retired via the Appendix B
      norm-preserving linear path. *)

  val join_full_rescales : t -> int
  (** Number of per-key Join updates that changed the normalizer and forced
      a full per-key rescale. *)

  (** {2 DAG shape and traffic}

      These three counters quantify structural sharing when targets are
      built from reified plans ({!Wpinq_core.Plan}): fewer physical nodes
      built, memo hits recorded as shared, and fewer record deliveries per
      step through the shared prefixes. *)

  val nodes_built : t -> int
  (** Physical operator nodes constructed in this engine since creation
      (every operator, input, and sink allocates at least one). *)

  val nodes_shared : t -> int
  (** Plan-lowering memo hits reported via {!add_shared_nodes}: node
      references that reused an already-built physical node instead of
      constructing a duplicate.  Zero unless targets were built through a
      shared plan-lowering context. *)

  val add_shared_nodes : t -> int -> unit
  (** Credits [n] memo hits to {!nodes_shared}.  Called by plan-lowering
      layers (e.g. {!Wpinq_core.Flow.Plans}); raises [Invalid_argument] on a
      negative count. *)

  val records_propagated : t -> int
  (** Total record deliveries: at every internal emission, the delta's
      length times the number of subscribers it is delivered to.  Unlike
      {!work} (delta entries {e processed} by operators), this counts the
      fan-out edge traffic that sharing a plan prefix eliminates.  Aborted
      speculative propagations are excluded, as with {!work}. *)

  (** {2 Allocation statistics}

      Operators accumulate output changes in reusable scratch buffers
      (record/weight arrays plus a persistent coalescing table) instead of
      consing fresh lists and hashtables per batch. *)

  val arena_grows : t -> int
  (** Times any operator's scratch buffer had to grow its backing arrays —
      settles to 0 per batch once buffers reach steady-state size. *)

  val arena_reuses : t -> int
  (** Output batches retired entirely through an already-allocated scratch
      buffer (the steady-state, allocation-light path). *)

  (** {2 Speculation}

      At most one speculation can be in progress per engine.  All three
      calls raise [Invalid_argument] when used out of protocol (nested
      [begin_speculation], [commit]/[abort] without a speculation in
      progress, or any of them from inside a propagation). *)

  val begin_speculation : t -> unit
  (** Starts recording an undo log.  Costs nothing up front: no snapshot
      is taken; each subsequent cell mutation logs its previous value. *)

  val commit : t -> unit
  (** Accepts everything fed since {!begin_speculation}: discards the undo
      log in O(log length). *)

  val abort : t -> unit
  (** Rejects everything fed since {!begin_speculation}: replays the undo
      log in reverse, restoring operator state, sink contents, and the
      statistics above bit-identically ({!commits}, {!aborts} and
      {!undo_cells} themselves keep counting).  O(cells touched). *)

  val speculating : t -> bool

  val log_undo : t -> (unit -> unit) -> unit
  (** [log_undo t f] appends [f] to the current undo log ([f] must restore
      one external cell to its pre-mutation value); no-op when no
      speculation is in progress.  This is the hook by which state
      {e derived} from the DAG — e.g. the scoring layer's incrementally
      maintained distances — joins the rollback. *)

  val commits : t -> int
  (** Speculations committed since creation. *)

  val aborts : t -> int
  (** Speculations aborted since creation. *)

  val undo_cells : t -> int
  (** Total undo-log entries ever recorded (committed and aborted): the
      cumulative number of speculative cell mutations. *)

  (** {2 Self-audit} *)

  val register_audit : t -> (tolerance:float -> int * Audit.divergence list) -> unit
  (** [register_audit t hook] enrolls a read-only validator: [hook
      ~tolerance] recomputes some redundantly-maintained state from scratch
      and returns [(cells checked, divergences found)].  Operators with
      such state (Join) register themselves at build time; derived layers
      (scoring) use this to join the audit. *)

  val audit : ?tolerance:float -> t -> Audit.report
  (** [audit t] runs every registered hook and merges their reports.
      Read-only; raises [Invalid_argument] mid-speculation (audit only at
      quiescent points).  Default [tolerance] is [1e-6] absolute. *)

  val fresh_op_id : t -> int
  (** A unique id for naming an operator's audit cells. *)
end

(** {1 Interned ids and int-keyed state}

    The hot path works on {e interned dense record ids}: each operator maps
    every distinct record value it sees to a dense [int] once at first
    sight, and all downstream state — weight tables, key membership, the
    undo log's captured slots — is struct-of-arrays over those ids.  Both
    layers are exposed for property testing; see DESIGN.md, "Record
    interning & struct-of-arrays state". *)

module Intern : sig
  type 'a t
  (** A monotone bijection between record values and dense ids
      [0 .. size-1].  Deliberately append-only and {e not} enrolled in the
      undo log: an id assigned during an aborted speculation stays
      assigned, which is unobservable because no emission or iteration
      order anywhere follows id order. *)

  val create : unit -> 'a t
  val size : 'a t -> int

  val intern : 'a t -> 'a -> int
  (** Returns the id of [x], assigning the next dense id at first sight. *)

  val find : 'a t -> 'a -> int
  (** The id of [x], or [-1] if it was never interned (never assigns). *)

  val value : 'a t -> int -> 'a
  (** Inverse of {!intern} for assigned ids. *)
end

module Itbl : sig
  type t
  (** A weight table over dense ids: direct-index lookup (no hashing),
      entries stored in committed insertion order, removal by swap-last.
      Under speculation every mutation records its exact structural
      inverse in the engine's undo log, so an abort restores contents,
      insertion order, and {!Engine.state_records} bit-identically —
      the same residue-free guarantee the record-keyed tables gave. *)

  val create : Engine.t -> t

  val size : t -> int
  (** Number of entries (records with non-negligible weight). *)

  val mem : t -> int -> bool
  val get : t -> int -> float

  val set : t -> int -> float -> unit
  (** [set t id w] stores [w]; a near-zero [w] removes the entry.  All
      functions raise [Invalid_argument] on a negative id. *)

  val bump : t -> int -> float -> float
  (** Adds the change and returns the {e old} weight. *)

  val iter : (int -> float -> unit) -> t -> unit
  (** Insertion-order iteration. *)

  val fold : (int -> float -> 'acc -> 'acc) -> t -> 'acc -> 'acc
  val to_list : t -> (int * float) list
end

type 'a node
(** A stream of weight changes for records of type ['a]; one vertex of the
    query DAG. *)

type 'a delta = ('a * float) list
(** A batch of weight changes.  Entries may repeat records; weights add. *)

val engine_of : _ node -> Engine.t

module Input : sig
  type 'a t
  (** A root of the DAG: the mutable collection the analyst (or the MCMC
      walk) edits. *)

  val create : Engine.t -> 'a t

  val node : 'a t -> 'a node

  val feed : 'a t -> 'a delta -> unit
  (** [feed input delta] applies the batch and synchronously propagates all
      consequences through the DAG.  Must not be called re-entrantly from a
      sink callback: a re-entrant call raises [Invalid_argument] (enforced,
      not just documented). *)

  val current : 'a t -> 'a Wpinq_weighted.Wdata.t
  (** The accumulated input collection (for checkpointing and testing). *)
end

(** {1 Stable transformations} *)

val select : ('a -> 'b) -> 'a node -> 'b node
val where : ('a -> bool) -> 'a node -> 'a node

val select_many : ('a -> ('b * float) list) -> 'a node -> 'b node
(** Stateless: SelectMany's output is linear in each input record's
    weight, because the produced dataset and its normalization depend only
    on the record, not its weight. *)

val select_many_list : ('a -> 'b list) -> 'a node -> 'b node
val concat : 'a node -> 'a node -> 'a node
val except : 'a node -> 'a node -> 'a node
val union : 'a node -> 'a node -> 'a node
val intersect : 'a node -> 'a node -> 'a node

val join :
  kl:('a -> 'k) ->
  kr:('b -> 'k) ->
  reduce:('a -> 'b -> 'c) ->
  'a node ->
  'b node ->
  'c node
(** Indexes both inputs by key.  A delta that leaves a key's total absolute
    weight unchanged is retired with the bilinear update
    [δa × B / (‖A_k‖+‖B_k‖)] touching only matched records; a delta that
    changes the norm rescales the key's whole output (old cross product
    out, new cross product in), as wPINQ's normalization requires.
    Sub-threshold norm residue is folded into the key's stored norm exactly
    once per batch, so norms stay exact without double-counting dust. *)

val group_by : key:('a -> 'k) -> reduce:('a list -> 'r) -> 'a node -> ('k * 'r) node
(** Maintains each part's records; on change, re-derives the part's prefix
    emissions and emits the difference. *)

val distinct : ?bound:float -> 'a node -> 'a node
(** Weight-capping [Distinct] (stateful: tracks each record's current
    weight to emit the change in the capped value). *)

val shave : ('a -> float Seq.t) -> 'a node -> ('a * int) node
val shave_const : float -> 'a node -> ('a * int) node

(** {1 Sinks} *)

module Sink : sig
  type 'a t
  (** A leaf accumulating the current output collection of a pipeline. *)

  val attach : 'a node -> 'a t

  val engine : 'a t -> Engine.t
  (** The engine this sink's pipeline belongs to (the scoring layer uses it
      to join speculative rollbacks via {!Engine.log_undo}). *)

  val weight : 'a t -> 'a -> float
  val support_size : 'a t -> int
  val current : 'a t -> 'a Wpinq_weighted.Wdata.t
  val to_list : 'a t -> ('a * float) list

  (** {2 Interned-id access}

      The sink interns every record it sees; derived layers (the scoring
      targets) index their own state by these ids and never hash a record
      in the hot path. *)

  val intern_id : 'a t -> 'a -> int
  (** The sink's dense id for [x], assigned on first use (the record need
      not have appeared in the output yet — measurement-time records get
      ids before the walk starts). *)

  val record_of_id : 'a t -> int -> 'a
  val weight_id : 'a t -> int -> float

  val on_change : 'a t -> ('a -> old_weight:float -> new_weight:float -> unit) -> unit
  (** Registers a callback fired on every record weight change reaching the
      sink (after the sink's own state is updated).  This is the hook the
      scoring layer uses to maintain [‖Q(A) − m‖₁] incrementally.
      Callbacks fire during speculative propagation too (and are {e not}
      re-fired on abort — state a callback derives must be enrolled in the
      undo log via {!Engine.log_undo} to survive rollback). *)

  val on_change_id : 'a t -> (int -> 'a -> old_weight:float -> new_weight:float -> unit) -> unit
  (** Like {!on_change}, with the record's sink id passed first. *)
end

val coalesce : 'a delta -> 'a delta
(** Combines duplicate records and drops ~zero entries.  Exposed for
    tests and for callers assembling composite deltas. *)
