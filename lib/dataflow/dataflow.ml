module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops

let near_zero w = Float.abs w < Wdata.epsilon_weight

module Audit = struct
  type divergence = {
    cell : string;
    maintained : float;
    recomputed : float;
    abs_drift : float;
    ulp_drift : int64;
  }

  type report = { cells_checked : int; divergences : divergence list }

  (* Map a float's IEEE-754 bits to a lexicographically ordered int64, so
     that the distance between two ordered values counts the representable
     floats between them. *)
  let ordered_bits f =
    let bits = Int64.bits_of_float f in
    if Int64.compare bits 0L < 0 then Int64.sub Int64.min_int bits else bits

  let ulp_distance a b =
    let oa = ordered_bits a and ob = ordered_bits b in
    let hi, lo = if Int64.compare oa ob >= 0 then (oa, ob) else (ob, oa) in
    let d = Int64.sub hi lo in
    if Int64.compare d 0L < 0 then Int64.max_int else d

  (* Incremental maintenance is allowed to differ from a batch
     recomputation only by float summation-order noise: bit-equal is
     always clean, finite values compare by absolute drift against the
     tolerance, and any non-finite disagreement is a divergence. *)
  let check ~tolerance ~cell ~maintained ~recomputed =
    if Int64.equal (Int64.bits_of_float maintained) (Int64.bits_of_float recomputed) then None
    else
      let both_finite = Float.is_finite maintained && Float.is_finite recomputed in
      let abs_drift = Float.abs (maintained -. recomputed) in
      if both_finite && abs_drift <= tolerance then None
      else
        Some
          { cell; maintained; recomputed; abs_drift; ulp_drift = ulp_distance maintained recomputed }

  let divergence_to_string d =
    Printf.sprintf "%s: maintained %h vs recomputed %h (abs drift %g, ulp drift %Ld)" d.cell
      d.maintained d.recomputed d.abs_drift d.ulp_drift
end

module Engine = struct
  (* The undo log is a stack of restoration closures recorded by every
     stateful cell mutation made while [speculating].  Closures (rather
     than typed cell records) keep the log polymorphic over the
     heterogeneous cell types of the DAG's operators; each closure
     reinstates one cell's exact previous contents, so replaying the log
     in reverse is a bit-identical rollback with no float arithmetic. *)
  let nop () = ()

  type t = {
    mutable state_records : int;
    mutable work : int;
    mutable join_fast : int;
    mutable join_full : int;
    (* DAG shape and traffic: physical operator nodes built, plan-lowering
       memo hits reported by [add_shared_nodes], and record deliveries
       (delta length x subscriber count) counted at every [emit] *)
    mutable nodes_built : int;
    mutable nodes_shared : int;
    mutable records_propagated : int;
    (* scratch-arena allocation counters *)
    mutable arena_grows : int;
    mutable arena_reuses : int;
    (* speculation protocol *)
    mutable speculating : bool;
    mutable in_feed : bool;
    mutable undo : (unit -> unit) array;
    mutable undo_len : int;
    mutable commits : int;
    mutable aborts : int;
    mutable undo_cells : int;
    (* statistics snapshot taken at [begin_speculation], restored by
       [abort] so an aborted propagation leaves no statistical trace *)
    mutable s_state_records : int;
    mutable s_work : int;
    mutable s_join_fast : int;
    mutable s_join_full : int;
    mutable s_arena_grows : int;
    mutable s_arena_reuses : int;
    mutable s_records_propagated : int;
    (* self-audit: operators with redundantly-maintained state register a
       hook that recomputes it from scratch and reports divergences *)
    mutable audit_hooks_rev : (tolerance:float -> int * Audit.divergence list) list;
    mutable next_op_id : int;
  }

  let create () =
    {
      state_records = 0;
      work = 0;
      join_fast = 0;
      join_full = 0;
      nodes_built = 0;
      nodes_shared = 0;
      records_propagated = 0;
      arena_grows = 0;
      arena_reuses = 0;
      speculating = false;
      in_feed = false;
      undo = Array.make 64 nop;
      undo_len = 0;
      commits = 0;
      aborts = 0;
      undo_cells = 0;
      s_state_records = 0;
      s_work = 0;
      s_join_fast = 0;
      s_join_full = 0;
      s_arena_grows = 0;
      s_arena_reuses = 0;
      s_records_propagated = 0;
      audit_hooks_rev = [];
      next_op_id = 0;
    }

  let state_records t = t.state_records
  let work t = t.work
  let join_fast_updates t = t.join_fast
  let join_full_rescales t = t.join_full
  let arena_grows t = t.arena_grows
  let arena_reuses t = t.arena_reuses
  let nodes_built t = t.nodes_built
  let nodes_shared t = t.nodes_shared
  let records_propagated t = t.records_propagated

  let add_shared_nodes t n =
    if n < 0 then invalid_arg "Dataflow.Engine.add_shared_nodes: negative count";
    t.nodes_shared <- t.nodes_shared + n

  let commits t = t.commits
  let aborts t = t.aborts
  let undo_cells t = t.undo_cells
  let speculating t = t.speculating

  let fresh_op_id t =
    let id = t.next_op_id in
    t.next_op_id <- id + 1;
    id

  let register_audit t hook = t.audit_hooks_rev <- hook :: t.audit_hooks_rev

  let audit ?(tolerance = 1e-6) t =
    if t.speculating then invalid_arg "Dataflow.Engine.audit: cannot audit mid-speculation";
    let cells = ref 0 and divs = ref [] in
    List.iter
      (fun hook ->
        let n, ds = hook ~tolerance in
        cells := !cells + n;
        divs := List.rev_append ds !divs)
      (List.rev t.audit_hooks_rev);
    { Audit.cells_checked = !cells; divergences = List.rev !divs }

  let log_undo t f =
    if t.speculating then begin
      if t.undo_len = Array.length t.undo then begin
        let bigger = Array.make (2 * Array.length t.undo) nop in
        Array.blit t.undo 0 bigger 0 t.undo_len;
        t.undo <- bigger
      end;
      t.undo.(t.undo_len) <- f;
      t.undo_len <- t.undo_len + 1;
      t.undo_cells <- t.undo_cells + 1
    end

  let begin_speculation t =
    if t.speculating then
      invalid_arg "Dataflow.Engine.begin_speculation: speculation already in progress";
    if t.in_feed then
      invalid_arg "Dataflow.Engine.begin_speculation: cannot speculate during propagation";
    t.s_state_records <- t.state_records;
    t.s_work <- t.work;
    t.s_join_fast <- t.join_fast;
    t.s_join_full <- t.join_full;
    t.s_arena_grows <- t.arena_grows;
    t.s_arena_reuses <- t.arena_reuses;
    t.s_records_propagated <- t.records_propagated;
    t.speculating <- true

  let commit t =
    if not t.speculating then invalid_arg "Dataflow.Engine.commit: no speculation in progress";
    if t.in_feed then invalid_arg "Dataflow.Engine.commit: cannot commit during propagation";
    t.speculating <- false;
    Array.fill t.undo 0 t.undo_len nop;
    t.undo_len <- 0;
    t.commits <- t.commits + 1

  let abort t =
    if not t.speculating then invalid_arg "Dataflow.Engine.abort: no speculation in progress";
    if t.in_feed then invalid_arg "Dataflow.Engine.abort: cannot abort during propagation";
    t.speculating <- false;
    for i = t.undo_len - 1 downto 0 do
      t.undo.(i) ();
      t.undo.(i) <- nop
    done;
    t.undo_len <- 0;
    t.state_records <- t.s_state_records;
    t.work <- t.s_work;
    t.join_fast <- t.s_join_fast;
    t.join_full <- t.s_join_full;
    t.arena_grows <- t.s_arena_grows;
    t.arena_reuses <- t.s_arena_reuses;
    t.records_propagated <- t.s_records_propagated;
    t.aborts <- t.aborts + 1
end

(* Record interning: each distinct record value an operator sees is mapped
   to a dense [int] id at first sight, and everything downstream of the
   mapping — weight tables, membership arrays, the undo log's slot
   captures — works on ids.  The table is a monotone cache of a pure
   function (record -> id), so it is deliberately *not* enrolled in the
   undo log: an id assigned during an aborted speculation stays assigned,
   which is unobservable because no emission or iteration order anywhere
   follows id order (state tables iterate in committed insertion order;
   measurement/grouping emissions sort canonically).  Keeping interning
   monotone is what lets every other structure be plain int arrays. *)
module Intern = struct
  type 'a t = {
    mutable xs : 'a array; (* id -> value *)
    mutable len : int;
    (* open-addressing index over [xs]: 0 = empty, else id + 1.  Linear
       probing; capacity is a power of two kept under 3/4 full. *)
    mutable slots : int array;
    mutable mask : int;
  }

  let create () = { xs = [||]; len = 0; slots = Array.make 16 0; mask = 15 }
  let size t = t.len
  let value t id = t.xs.(id)

  let rehash t =
    let cap = 2 * (t.mask + 1) in
    let slots = Array.make cap 0 in
    let mask = cap - 1 in
    for id = 0 to t.len - 1 do
      let i = ref (Hashtbl.hash t.xs.(id) land mask) in
      while slots.(!i) <> 0 do
        i := (!i + 1) land mask
      done;
      slots.(!i) <- id + 1
    done;
    t.slots <- slots;
    t.mask <- mask

  (* Returns the slot holding [x], or the empty slot where it belongs. *)
  let probe t x =
    let mask = t.mask in
    let i = ref (Hashtbl.hash x land mask) in
    let s = ref t.slots.(!i) in
    while !s <> 0 && t.xs.(!s - 1) <> x do
      i := (!i + 1) land mask;
      s := t.slots.(!i)
    done;
    !i

  let find t x =
    let s = t.slots.(probe t x) in
    s - 1

  let intern t x =
    let i = probe t x in
    let s = t.slots.(i) in
    if s <> 0 then s - 1
    else begin
      let id = t.len in
      if id = Array.length t.xs then begin
        let xs = Array.make (max 16 (2 * id)) x in
        Array.blit t.xs 0 xs 0 id;
        t.xs <- xs
      end;
      t.xs.(id) <- x;
      t.len <- id + 1;
      t.slots.(i) <- id + 1;
      if 4 * t.len > 3 * (t.mask + 1) then rehash t;
      id
    end
end

(* A weight table over dense interned ids: the struct-of-arrays successor
   of the old record-keyed [Wtbl].  [pos] is a direct-index array (id ->
   dense slot), so lookups touch no hash function at all; entries live in
   [ids]/[ws] in committed insertion order, which makes every derived
   float accumulation order a pure function of the committed operation
   sequence.  Under speculation each mutation logs its exact structural
   inverse; removal swaps the last entry down exactly as the old table
   did, and the undo replays in reverse order so captured slot indices
   stay valid.  Backing-array growth needs no undo: contents beyond [len]
   (or [pos] cells holding -1) are invisible. *)
module Itbl = struct
  type t = {
    engine : Engine.t;
    mutable pos : int array; (* id -> dense slot, -1 when absent *)
    mutable ids : int array;
    mutable ws : float array;
    mutable len : int;
  }

  let create engine = { engine; pos = [||]; ids = [||]; ws = [||]; len = 0 }
  let size t = t.len

  let mem t id =
    if id < 0 then invalid_arg "Dataflow.Itbl: negative id";
    id < Array.length t.pos && t.pos.(id) >= 0

  let get t id =
    if id < 0 then invalid_arg "Dataflow.Itbl: negative id";
    if id < Array.length t.pos then
      let p = t.pos.(id) in
      if p >= 0 then t.ws.(p) else 0.0
    else 0.0

  let ensure_pos t id =
    let cap = Array.length t.pos in
    if id >= cap then begin
      let cap' = max 16 (max (2 * cap) (id + 1)) in
      let pos = Array.make cap' (-1) in
      Array.blit t.pos 0 pos 0 cap;
      t.pos <- pos
    end

  let ensure_dense t =
    if t.len = Array.length t.ids then begin
      let cap = Array.length t.ids in
      let cap' = if cap = 0 then 8 else 2 * cap in
      let ids = Array.make cap' 0 and ws = Array.make cap' 0.0 in
      Array.blit t.ids 0 ids 0 t.len;
      Array.blit t.ws 0 ws 0 t.len;
      t.ids <- ids;
      t.ws <- ws
    end

  let set t id w =
    if id < 0 then invalid_arg "Dataflow.Itbl: negative id";
    let engine = t.engine in
    ensure_pos t id;
    let p = t.pos.(id) in
    if p < 0 then begin
      if not (near_zero w) then begin
        ensure_dense t;
        let i = t.len in
        t.ids.(i) <- id;
        t.ws.(i) <- w;
        t.len <- i + 1;
        t.pos.(id) <- i;
        engine.Engine.state_records <- engine.Engine.state_records + 1;
        if engine.Engine.speculating then
          Engine.log_undo engine (fun () ->
              t.pos.(id) <- -1;
              t.len <- i)
      end
    end
    else if near_zero w then begin
      (* Remove by swapping the last entry into the vacated slot; the
         logged inverse puts both entries back in their exact slots. *)
      let last = t.len - 1 in
      let w0 = t.ws.(p) in
      let idl = t.ids.(last) and wl = t.ws.(last) in
      if p <> last then begin
        t.ids.(p) <- idl;
        t.ws.(p) <- wl;
        t.pos.(idl) <- p
      end;
      t.len <- last;
      t.pos.(id) <- -1;
      engine.Engine.state_records <- engine.Engine.state_records - 1;
      if engine.Engine.speculating then
        Engine.log_undo engine (fun () ->
            t.len <- last + 1;
            if p <> last then begin
              t.ids.(last) <- idl;
              t.ws.(last) <- wl;
              t.pos.(idl) <- last
            end;
            t.ids.(p) <- id;
            t.ws.(p) <- w0;
            t.pos.(id) <- p)
    end
    else begin
      let w0 = t.ws.(p) in
      t.ws.(p) <- w;
      if engine.Engine.speculating then Engine.log_undo engine (fun () -> t.ws.(p) <- w0)
    end

  (* Adds [dw] and returns the old weight. *)
  let bump t id dw =
    let old = get t id in
    set t id (old +. dw);
    old

  let iter f t =
    for i = 0 to t.len - 1 do
      f t.ids.(i) t.ws.(i)
    done

  let fold f t acc =
    let acc = ref acc in
    for i = 0 to t.len - 1 do
      acc := f t.ids.(i) t.ws.(i) !acc
    done;
    !acc

  let to_list t =
    let rec go i acc = if i < 0 then acc else go (i - 1) ((t.ids.(i), t.ws.(i)) :: acc) in
    go (t.len - 1) []
end

(* Record-keyed convenience shim over [Intern] + [Itbl] for the places
   that genuinely deal in values (input roots, sinks). *)
module Wtbl = struct
  type 'a t = { intern : 'a Intern.t; it : Itbl.t }

  let create engine = { intern = Intern.create (); it = Itbl.create engine }
  let bump t x dw = Itbl.bump t.it (Intern.intern t.intern x) dw

  let to_list t =
    List.map (fun (id, w) -> (Intern.value t.intern id, w)) (Itbl.to_list t.it)
end

type 'a delta = ('a * float) list

(* Internally deltas travel as borrowed parallel-array slices
   ([xs]/[ws]/[len]) instead of [('a * float) list]: no pair or list-cell
   allocation per propagated record.  A subscriber must fully retire the
   slice before returning and must not mutate it (several subscribers may
   receive the same arrays); both hold because propagation is a
   synchronous walk of an acyclic DAG.  The list type survives only at
   the public [Input.feed]/[coalesce] boundary. *)
type 'a node = {
  engine : Engine.t;
  mutable subs_rev : ('a array -> float array -> int -> unit) list;
  mutable subs : ('a array -> float array -> int -> unit) array;
}

let engine_of n = n.engine

let make engine =
  engine.Engine.nodes_built <- engine.Engine.nodes_built + 1;
  { engine; subs_rev = []; subs = [||] }

(* Subscribers fire in subscription order; propagation is a synchronous
   depth-first walk of the DAG.  Correctness does not depend on the order
   because every stateful operator retires each delta batch against its
   current state.  Subscription happens only at DAG-build time, so the
   subscriber array is rebuilt eagerly and emission iterates a flat
   array. *)
let subscribe n f =
  n.subs_rev <- f :: n.subs_rev;
  n.subs <- Array.of_list (List.rev n.subs_rev)

let emit n xs ws len =
  if len > 0 then begin
    let nsubs = Array.length n.subs in
    n.engine.Engine.records_propagated <- n.engine.Engine.records_propagated + (len * nsubs);
    for i = 0 to nsubs - 1 do
      n.subs.(i) xs ws len
    done
  end

let coalesce d =
  match d with
  | [] -> []
  | [ (_, w) ] -> if near_zero w then [] else d
  | _ ->
      let h = Hashtbl.create (List.length d) in
      List.iter
        (fun (x, w) ->
          match Hashtbl.find_opt h x with
          | None -> Hashtbl.replace h x w
          | Some w0 -> Hashtbl.replace h x (w0 +. w))
        d;
      Hashtbl.fold (fun x w acc -> if near_zero w then acc else (x, w) :: acc) h []

let count_work (engine : Engine.t) len = engine.work <- engine.work + len

(* Reusable per-operator output accumulator — the scratch arena.  Output
   changes accumulate by *output intern id* in a direct-index float array
   ([acc], membership in [inacc], first-touch order in [touched]);
   [flush] walks the touched ids once, drops net-~zero entries, converts
   ids back to values and emits one parallel-array slice.  Safe to reuse
   across a DAG propagation because every handler fully drains its
   scratch before emitting downstream, and the DAG is acyclic, so a
   handler can never be re-entered while its scratch is live. *)
module Scratch = struct
  type 'a t = {
    engine : Engine.t;
    intern : 'a Intern.t;
    mutable acc : float array; (* out-id -> accumulated weight this batch *)
    mutable inacc : bool array; (* out-id -> currently in [touched] *)
    mutable touched : int array; (* out-ids in first-touch order *)
    mutable tlen : int;
    mutable out_xs : 'a array;
    mutable out_ws : float array;
  }

  let create ?intern engine =
    let intern = match intern with Some i -> i | None -> Intern.create () in
    {
      engine;
      intern;
      acc = [||];
      inacc = [||];
      touched = [||];
      tlen = 0;
      out_xs = [||];
      out_ws = [||];
    }

  let ensure_id t id =
    let cap = Array.length t.acc in
    if id >= cap then begin
      t.engine.Engine.arena_grows <- t.engine.Engine.arena_grows + 1;
      let cap' = max 64 (max (2 * cap) (id + 1)) in
      let acc = Array.make cap' 0.0 and inacc = Array.make cap' false in
      Array.blit t.acc 0 acc 0 cap;
      Array.blit t.inacc 0 inacc 0 cap;
      t.acc <- acc;
      t.inacc <- inacc
    end

  let push_id t id w =
    ensure_id t id;
    if t.inacc.(id) then t.acc.(id) <- t.acc.(id) +. w
    else begin
      t.inacc.(id) <- true;
      t.acc.(id) <- w;
      if t.tlen = Array.length t.touched then begin
        t.engine.Engine.arena_grows <- t.engine.Engine.arena_grows + 1;
        let cap' = max 64 (2 * t.tlen) in
        let touched = Array.make cap' 0 in
        Array.blit t.touched 0 touched 0 t.tlen;
        t.touched <- touched
      end;
      t.touched.(t.tlen) <- id;
      t.tlen <- t.tlen + 1
    end

  let push t x w = push_id t (Intern.intern t.intern x) w

  (* Emits the coalesced batch in first-push order and resets for the
     next batch. *)
  let flush t out =
    let n = t.tlen in
    if n > 0 then begin
      if n > 1 then t.engine.Engine.arena_reuses <- t.engine.Engine.arena_reuses + 1;
      let k = ref 0 in
      for i = 0 to n - 1 do
        let id = t.touched.(i) in
        let w = t.acc.(id) in
        t.inacc.(id) <- false;
        if not (near_zero w) then begin
          let j = !k in
          if j >= Array.length t.out_xs then begin
            t.engine.Engine.arena_grows <- t.engine.Engine.arena_grows + 1;
            let cap' = max 64 (2 * Array.length t.out_xs) in
            let xs = Array.make cap' (Intern.value t.intern id) in
            let ws = Array.make cap' 0.0 in
            Array.blit t.out_xs 0 xs 0 j;
            Array.blit t.out_ws 0 ws 0 j;
            t.out_xs <- xs;
            t.out_ws <- ws
          end;
          t.out_xs.(j) <- Intern.value t.intern id;
          t.out_ws.(j) <- w;
          k := j + 1
        end
      done;
      t.tlen <- 0;
      emit out t.out_xs t.out_ws !k
    end
end

(* Raw slice buffer for operators that neither coalesce nor re-key
   (filtering, negation, input roots): no interning, no hashing. *)
module Buf = struct
  type 'a t = {
    engine : Engine.t;
    mutable xs : 'a array;
    mutable ws : float array;
    mutable len : int;
  }

  let create engine = { engine; xs = [||]; ws = [||]; len = 0 }
  let clear b = b.len <- 0

  let push b x w =
    let cap = Array.length b.xs in
    if b.len = cap then begin
      b.engine.Engine.arena_grows <- b.engine.Engine.arena_grows + 1;
      let cap' = if cap = 0 then 64 else 2 * cap in
      let xs = Array.make cap' x and ws = Array.make cap' 0.0 in
      Array.blit b.xs 0 xs 0 b.len;
      Array.blit b.ws 0 ws 0 b.len;
      b.xs <- xs;
      b.ws <- ws
    end;
    b.xs.(b.len) <- x;
    b.ws.(b.len) <- w;
    b.len <- b.len + 1
end

module Input = struct
  type 'a t = { node : 'a node; state : 'a Wtbl.t; buf : 'a Buf.t }

  let create engine = { node = make engine; state = Wtbl.create engine; buf = Buf.create engine }
  let node t = t.node

  let feed t delta =
    let engine = t.node.engine in
    if engine.Engine.in_feed then
      invalid_arg "Dataflow.Input.feed: re-entrant feed during propagation";
    engine.Engine.in_feed <- true;
    Fun.protect
      ~finally:(fun () -> engine.Engine.in_feed <- false)
      (fun () ->
        let delta = coalesce delta in
        Buf.clear t.buf;
        List.iter
          (fun (x, w) ->
            ignore (Wtbl.bump t.state x w);
            Buf.push t.buf x w)
          delta;
        emit t.node t.buf.Buf.xs t.buf.Buf.ws t.buf.Buf.len)

  let current t = Wdata.of_list (Wtbl.to_list t.state)
end

let select f up =
  let out = make up.engine in
  let scratch = Scratch.create up.engine in
  subscribe up (fun xs ws len ->
      count_work up.engine len;
      for i = 0 to len - 1 do
        Scratch.push scratch (f xs.(i)) ws.(i)
      done;
      Scratch.flush scratch out);
  out

let where p up =
  let out = make up.engine in
  let buf = Buf.create up.engine in
  subscribe up (fun xs ws len ->
      count_work up.engine len;
      Buf.clear buf;
      for i = 0 to len - 1 do
        if p xs.(i) then Buf.push buf xs.(i) ws.(i)
      done;
      emit out buf.Buf.xs buf.Buf.ws buf.Buf.len);
  out

let select_many f up =
  let out = make up.engine in
  let scratch = Scratch.create up.engine in
  subscribe up (fun xs ws len ->
      count_work up.engine len;
      for i = 0 to len - 1 do
        let ys = f xs.(i) in
        let n = List.fold_left (fun acc (_, wy) -> acc +. Float.abs wy) 0.0 ys in
        let scale = ws.(i) /. Float.max 1.0 n in
        List.iter (fun (y, wy) -> Scratch.push scratch y (wy *. scale)) ys
      done;
      Scratch.flush scratch out);
  out

let select_many_list f up = select_many (fun x -> List.map (fun y -> (y, 1.0)) (f x)) up

let same_engine a b =
  if a.engine != b.engine then invalid_arg "Dataflow: nodes belong to different engines";
  a.engine

let concat a b =
  let engine = same_engine a b in
  let out = make engine in
  let pass xs ws len =
    count_work engine len;
    emit out xs ws len
  in
  subscribe a pass;
  subscribe b pass;
  out

let except a b =
  let engine = same_engine a b in
  let out = make engine in
  subscribe a (fun xs ws len ->
      count_work engine len;
      emit out xs ws len);
  let buf = Buf.create engine in
  subscribe b (fun xs ws len ->
      count_work engine len;
      Buf.clear buf;
      for i = 0 to len - 1 do
        Buf.push buf xs.(i) (-.ws.(i))
      done;
      emit out buf.Buf.xs buf.Buf.ws buf.Buf.len);
  out

(* Union and Intersect keep both sides' weights per record and emit the
   change to max/min when either side moves.  One shared intern serves
   both side tables and the output scratch, so each incoming record is
   hashed exactly once. *)
let merge_node fop a b =
  let engine = same_engine a b in
  let out = make engine in
  let intern = Intern.create () in
  let wa = Itbl.create engine and wb = Itbl.create engine in
  let scratch = Scratch.create ~intern engine in
  let handle mine other flip xs ws len =
    count_work engine len;
    for i = 0 to len - 1 do
      let dw = ws.(i) in
      let id = Intern.intern intern xs.(i) in
      let old_mine = Itbl.bump mine id dw in
      let v_other = Itbl.get other id in
      let old_out = if flip then fop v_other old_mine else fop old_mine v_other in
      let new_mine = old_mine +. dw in
      let new_out = if flip then fop v_other new_mine else fop new_mine v_other in
      let diff = new_out -. old_out in
      if not (near_zero diff) then Scratch.push_id scratch id diff
    done;
    Scratch.flush scratch out
  in
  subscribe a (handle wa wb false);
  subscribe b (handle wb wa true);
  out

let union a b = merge_node Float.max a b
let intersect a b = merge_node Float.min a b

(* Keyed-operator side state (Join inputs, GroupBy), fully
   struct-of-arrays.  Every record belongs to exactly one key (the key
   function is pure), so weights live in one flat [Itbl] per side and
   each key's part is just an insertion-ordered array of member record
   ids; [key_of] caches the interned key per record so re-deliveries of a
   known record never hash its key again, and [mpos] gives O(1) swap-last
   removal with exact structural undo — the same abort-residue guarantee
   the old record-keyed tables gave. *)
type kpart = { mutable members : int array; mutable mlen : int; mutable norm : float }

type 'r kside = {
  ri : 'r Intern.t;
  w : Itbl.t;
  mutable key_of : int array; (* rid -> kid, -1 unknown *)
  mutable mpos : int array; (* rid -> slot in its part's members, -1 absent *)
  mutable parts : kpart option array; (* kid -> part *)
}

let kside_create engine =
  { ri = Intern.create (); w = Itbl.create engine; key_of = [||]; mpos = [||]; parts = [||] }

let grow_int_array arr n fill =
  let cap = Array.length arr in
  if n <= cap then arr
  else begin
    let arr' = Array.make (max 16 (max (2 * cap) n)) fill in
    Array.blit arr 0 arr' 0 cap;
    arr'
  end

let kside_ensure_rid side rid =
  side.key_of <- grow_int_array side.key_of (rid + 1) (-1);
  side.mpos <- grow_int_array side.mpos (rid + 1) (-1)

(* A part created during an aborted speculation stays allocated (empty,
   norm zero) — observably identical to the old dropped-part behavior
   because an absent part and an empty one behave the same. *)
let kside_part side kid =
  let cap = Array.length side.parts in
  if kid >= cap then begin
    let parts = Array.make (max 16 (max (2 * cap) (kid + 1))) None in
    Array.blit side.parts 0 parts 0 cap;
    side.parts <- parts
  end;
  match side.parts.(kid) with
  | Some p -> p
  | None ->
      let p = { members = [||]; mlen = 0; norm = 0.0 } in
      side.parts.(kid) <- Some p;
      p

let kside_peek side kid = if kid < Array.length side.parts then side.parts.(kid) else None

let member_add (engine : Engine.t) side part rid =
  if part.mlen = Array.length part.members then
    part.members <- grow_int_array part.members (max 8 (2 * part.mlen + 1)) 0;
  let i = part.mlen in
  part.members.(i) <- rid;
  part.mlen <- i + 1;
  side.mpos.(rid) <- i;
  if engine.Engine.speculating then
    Engine.log_undo engine (fun () ->
        side.mpos.(rid) <- -1;
        part.mlen <- i)

let member_remove (engine : Engine.t) side part rid =
  let i = side.mpos.(rid) in
  let last = part.mlen - 1 in
  let rl = part.members.(last) in
  if i <> last then begin
    part.members.(i) <- rl;
    side.mpos.(rl) <- i
  end;
  part.mlen <- last;
  side.mpos.(rid) <- -1;
  if engine.Engine.speculating then
    Engine.log_undo engine (fun () ->
        part.mlen <- last + 1;
        if i <> last then begin
          part.members.(last) <- rl;
          side.mpos.(rl) <- last
        end;
        part.members.(i) <- rid;
        side.mpos.(rid) <- i)

(* Absolute set of one record's weight within its part, maintaining the
   membership array alongside the weight table. *)
let kside_set (engine : Engine.t) side part rid w =
  let was = Itbl.mem side.w rid in
  Itbl.set side.w rid w;
  let now = Itbl.mem side.w rid in
  if now && not was then member_add engine side part rid
  else if was && not now then member_remove engine side part rid

let part_add_norm (engine : Engine.t) p dn =
  if engine.Engine.speculating then begin
    let n0 = p.norm in
    Engine.log_undo engine (fun () -> p.norm <- n0)
  end;
  p.norm <- p.norm +. dn

let part_set_norm (engine : Engine.t) p n =
  if engine.Engine.speculating then begin
    let n0 = p.norm in
    Engine.log_undo engine (fun () -> p.norm <- n0)
  end;
  p.norm <- n

(* Per-batch grouping buffers: incoming slice entries are chained per
   interned key id in plain int arrays (no per-batch hashtable, no list
   cells).  [dacc]/[din] net per-record changes for Join; [crid]/[cdw]
   carry raw entries for GroupBy.  Shared by both handlers of one
   operator — they never overlap because propagation is synchronous. *)
type gbatch = {
  mutable dacc : float array; (* rid -> net weight change this batch *)
  mutable din : bool array; (* rid -> has a chain node this batch *)
  mutable khead : int array; (* kid -> chain head, -1 *)
  mutable crid : int array; (* chain nodes: record id *)
  mutable cdw : float array; (* chain nodes: raw weight change (GroupBy) *)
  mutable cnext : int array;
  mutable clen : int;
  mutable keys : int array; (* kids touched, first-touch order *)
  mutable klen : int;
}

let gbatch_create () =
  {
    dacc = [||];
    din = [||];
    khead = [||];
    crid = [||];
    cdw = [||];
    cnext = [||];
    clen = 0;
    keys = [||];
    klen = 0;
  }

let gbatch_chain gb kid rid dw =
  gb.khead <- grow_int_array gb.khead (kid + 1) (-1);
  if gb.clen = Array.length gb.crid then begin
    let cap' = max 64 (2 * gb.clen) in
    gb.crid <- grow_int_array gb.crid cap' 0;
    gb.cnext <- grow_int_array gb.cnext cap' 0;
    let cdw = Array.make cap' 0.0 in
    Array.blit gb.cdw 0 cdw 0 gb.clen;
    gb.cdw <- cdw
  end;
  let node = gb.clen in
  gb.crid.(node) <- rid;
  gb.cdw.(node) <- dw;
  gb.cnext.(node) <- gb.khead.(kid);
  if gb.khead.(kid) < 0 then begin
    if gb.klen = Array.length gb.keys then gb.keys <- grow_int_array gb.keys (max 16 (2 * gb.klen)) 0;
    gb.keys.(gb.klen) <- kid;
    gb.klen <- gb.klen + 1
  end;
  gb.khead.(kid) <- node;
  gb.clen <- node + 1

let gbatch_reset gb =
  for i = 0 to gb.klen - 1 do
    gb.khead.(gb.keys.(i)) <- -1
  done;
  (* [din] is only grown (and set) by operators that net per record;
     chain nodes from operators that never touch it can carry rids past
     its length. *)
  let dn = Array.length gb.din in
  for i = 0 to gb.clen - 1 do
    let rid = gb.crid.(i) in
    if rid < dn then gb.din.(rid) <- false
  done;
  gb.klen <- 0;
  gb.clen <- 0

let grow_float_array arr n =
  let cap = Array.length arr in
  if n <= cap then arr
  else begin
    let arr' = Array.make (max 16 (max (2 * cap) n)) 0.0 in
    Array.blit arr 0 arr' 0 cap;
    arr'
  end

let grow_bool_array arr n =
  let cap = Array.length arr in
  if n <= cap then arr
  else begin
    let arr' = Array.make (max 16 (max (2 * cap) n)) false in
    Array.blit arr 0 arr' 0 cap;
    arr'
  end

let join ~kl ~kr ~reduce a b =
  let engine = same_engine a b in
  let out = make engine in
  let sa = kside_create engine and sb = kside_create engine in
  let kintern = Intern.create () in
  (* Each key's [norm] is maintained incrementally alongside the member
     array; the audit recomputes it as Σ|w| over the part's records and
     flags drift. *)
  let op = Engine.fresh_op_id engine in
  let audit_side name side ~tolerance =
    let n = ref 0 and ds = ref [] in
    Array.iteri
      (fun kid part ->
        match part with
        | None -> ()
        | Some p ->
            incr n;
            let recomputed = ref 0.0 in
            for i = 0 to p.mlen - 1 do
              recomputed := !recomputed +. Float.abs (Itbl.get side.w p.members.(i))
            done;
            let cell = Printf.sprintf "join#%d.%s.norm[key#%d]" op name kid in
            (match Audit.check ~tolerance ~cell ~maintained:p.norm ~recomputed:!recomputed with
            | None -> ()
            | Some d -> ds := d :: !ds))
      side.parts;
    (!n, !ds)
  in
  Engine.register_audit engine (fun ~tolerance ->
      let nl, dl = audit_side "left" sa ~tolerance in
      let nr, dr = audit_side "right" sb ~tolerance in
      (nl + nr, dl @ dr));
  let scratch = Scratch.create engine in
  (* Output pairs are interned by (left rid, right rid) in an insert-only
     open-addressing pair cache, so the steady-state inner loops allocate
     no tuples and hash no records — [reduce] runs once per distinct pair
     ever matched. *)
  let pk = ref (Array.make 32 (-1)) in
  let pv = ref (Array.make 16 0) in
  let pmask = ref 15 in
  let plen = ref 0 in
  let pair_hash ra rb = ((ra * 0x9E3779B1) lxor rb) land max_int in
  let pair_rehash () =
    let cap = 2 * (!pmask + 1) in
    let mask = cap - 1 in
    let pk' = Array.make (2 * cap) (-1) and pv' = Array.make cap 0 in
    for i = 0 to !pmask do
      let ra = !pk.(2 * i) in
      if ra >= 0 then begin
        let rb = !pk.((2 * i) + 1) in
        let j = ref (pair_hash ra rb land mask) in
        while pk'.(2 * !j) >= 0 do
          j := (!j + 1) land mask
        done;
        pk'.(2 * !j) <- ra;
        pk'.((2 * !j) + 1) <- rb;
        pv'.(!j) <- !pv.(i)
      end
    done;
    pk := pk';
    pv := pv';
    pmask := mask
  in
  let out_id_of ra rb =
    let mask = !pmask in
    let i = ref (pair_hash ra rb land mask) in
    let res = ref (-1) in
    while !res < 0 && !pk.(2 * !i) >= 0 do
      if !pk.(2 * !i) = ra && !pk.((2 * !i) + 1) = rb then res := !pv.(!i)
      else i := (!i + 1) land mask
    done;
    if !res >= 0 then !res
    else begin
      let oid =
        Intern.intern scratch.Scratch.intern (reduce (Intern.value sa.ri ra) (Intern.value sb.ri rb))
      in
      !pk.(2 * !i) <- ra;
      !pk.((2 * !i) + 1) <- rb;
      !pv.(!i) <- oid;
      incr plen;
      if 4 * !plen > 3 * (!pmask + 1) then pair_rehash ();
      oid
    end
  in
  let gb = gbatch_create () in
  let eps = Wdata.epsilon_weight in
  (* Retire a batch arriving on one side.  [epair changed_rid other_rid w]
     orients the output pair correctly for whichever side changed.  The
     per-key protocol — net the batch per record, decide fast vs. full
     path on whether the key's normalizer moves, fold sub-threshold dust
     into the stored norm exactly once per branch — is unchanged from the
     record-keyed implementation; only the representation is flat now. *)
  let handle mine other epair keyf xs ws len =
    count_work engine len;
    (* Net the batch per record and chain distinct records per key. *)
    for i = 0 to len - 1 do
      let x = xs.(i) in
      let rid = Intern.intern mine.ri x in
      kside_ensure_rid mine rid;
      gb.dacc <- grow_float_array gb.dacc (rid + 1);
      gb.din <- grow_bool_array gb.din (rid + 1);
      if gb.din.(rid) then gb.dacc.(rid) <- gb.dacc.(rid) +. ws.(i)
      else begin
        gb.din.(rid) <- true;
        gb.dacc.(rid) <- ws.(i);
        let kid =
          let k = mine.key_of.(rid) in
          if k >= 0 then k
          else begin
            let k = Intern.intern kintern (keyf x) in
            mine.key_of.(rid) <- k;
            k
          end
        in
        gbatch_chain gb kid rid 0.0
      end
    done;
    for ki = 0 to gb.klen - 1 do
      let kid = gb.keys.(ki) in
      let mine_p = kside_part mine kid in
      let other_p = kside_peek other kid in
      let other_norm = match other_p with Some p -> p.norm | None -> 0.0 in
      (* Σ (|old+dw| − |old|) over the key's netted records; near-zero
         nets are skipped exactly as [coalesce] used to drop them. *)
      let norm_change = ref 0.0 in
      let node = ref gb.khead.(kid) in
      while !node >= 0 do
        let rid = gb.crid.(!node) in
        let dw = gb.dacc.(rid) in
        if not (near_zero dw) then begin
          let old = Itbl.get mine.w rid in
          norm_change := !norm_change +. (Float.abs (old +. dw) -. Float.abs old)
        end;
        node := gb.cnext.(!node)
      done;
      let norm_change = !norm_change in
      let denom_old = mine_p.norm +. other_norm in
      let denom_new = denom_old +. norm_change in
      (* [norm] is updated exactly once on every path: the fast path
         folds the sub-threshold dust in directly, the full path applies
         the real change — so a sub-threshold change on an
         empty-normalizer key (which takes the full path) is not
         accumulated twice. *)
      (if Float.abs norm_change < eps && denom_old > eps then begin
         (* Appendix B optimization: the normalizer is unchanged, so only
            pairs involving changed records move. *)
         engine.Engine.join_fast <- engine.Engine.join_fast + 1;
         let node = ref gb.khead.(kid) in
         while !node >= 0 do
           let rid = gb.crid.(!node) in
           let dw = gb.dacc.(rid) in
           (if not (near_zero dw) then begin
              let old = Itbl.get mine.w rid in
              kside_set engine mine mine_p rid (old +. dw);
              match other_p with
              | Some op ->
                  for mi = 0 to op.mlen - 1 do
                    let ry = op.members.(mi) in
                    epair rid ry (dw *. Itbl.get other.w ry /. denom_old)
                  done
              | None -> ()
            end);
           node := gb.cnext.(!node)
         done;
         part_add_norm engine mine_p norm_change
       end
       else begin
         (* The normalizer moved: every pair under this key is rescaled. *)
         engine.Engine.join_full <- engine.Engine.join_full + 1;
         (if denom_old > eps then
            match other_p with
            | Some op ->
                for xi = 0 to mine_p.mlen - 1 do
                  let rx = mine_p.members.(xi) in
                  let wx = Itbl.get mine.w rx in
                  for yi = 0 to op.mlen - 1 do
                    let ry = op.members.(yi) in
                    epair rx ry (-.(wx *. Itbl.get other.w ry) /. denom_old)
                  done
                done
            | None -> ());
         let node = ref gb.khead.(kid) in
         while !node >= 0 do
           let rid = gb.crid.(!node) in
           let dw = gb.dacc.(rid) in
           if not (near_zero dw) then begin
             let old = Itbl.get mine.w rid in
             kside_set engine mine mine_p rid (old +. dw)
           end;
           node := gb.cnext.(!node)
         done;
         part_add_norm engine mine_p norm_change;
         if denom_new > eps then
           match other_p with
           | Some op ->
               for xi = 0 to mine_p.mlen - 1 do
                 let rx = mine_p.members.(xi) in
                 let wx = Itbl.get mine.w rx in
                 for yi = 0 to op.mlen - 1 do
                   let ry = op.members.(yi) in
                   epair rx ry (wx *. Itbl.get other.w ry /. denom_new)
                 done
               done
           | None -> ()
       end);
      (* Retire a drained key: an empty part whose norm is dust resets to
         exactly 0.0, so the key's next delta sees a genuinely empty
         normalizer (and takes the full path), as dropping the part from
         the old key index used to guarantee. *)
      if mine_p.mlen = 0 && Float.abs mine_p.norm < eps && mine_p.norm <> 0.0 then
        part_set_norm engine mine_p 0.0
    done;
    gbatch_reset gb;
    Scratch.flush scratch out
  in
  subscribe a (handle sa sb (fun rm ro w -> Scratch.push_id scratch (out_id_of rm ro) w) kl);
  subscribe b (handle sb sa (fun rm ro w -> Scratch.push_id scratch (out_id_of ro rm) w) kr);
  out

let group_by ~key ~reduce up =
  let engine = up.engine in
  let out = make engine in
  let side = kside_create engine in
  let kintern = Intern.create () in
  let scratch = Scratch.create engine in
  let gb = gbatch_create () in
  let emit_part sign kid part =
    let k = Intern.value kintern kid in
    (* Reverse-insertion-order fold, as the old [Wtbl.fold] gave;
       [Ops.group_emissions] sorts canonically, so any order that is a
       pure function of committed state preserves the released bits. *)
    let positive = ref [] in
    for i = part.mlen - 1 downto 0 do
      let rid = part.members.(i) in
      let w = Itbl.get side.w rid in
      if w > 0.0 then positive := (Intern.value side.ri rid, w) :: !positive
    done;
    List.iter
      (fun (members, w) -> Scratch.push scratch (k, reduce members) (sign *. w))
      (Ops.group_emissions !positive)
  in
  subscribe up (fun xs ws len ->
      count_work engine len;
      for i = 0 to len - 1 do
        let x = xs.(i) in
        let rid = Intern.intern side.ri x in
        kside_ensure_rid side rid;
        let kid =
          let k = side.key_of.(rid) in
          if k >= 0 then k
          else begin
            let k = Intern.intern kintern (key x) in
            side.key_of.(rid) <- k;
            k
          end
        in
        gbatch_chain gb kid rid ws.(i)
      done;
      for ki = 0 to gb.klen - 1 do
        let kid = gb.keys.(ki) in
        let part = kside_part side kid in
        emit_part (-1.0) kid part;
        let node = ref gb.khead.(kid) in
        while !node >= 0 do
          let rid = gb.crid.(!node) in
          let old = Itbl.get side.w rid in
          kside_set engine side part rid (old +. gb.cdw.(!node));
          node := gb.cnext.(!node)
        done;
        emit_part 1.0 kid part
      done;
      gbatch_reset gb;
      Scratch.flush scratch out);
  out

let distinct ?(bound = 1.0) up =
  if bound <= 0.0 then invalid_arg "Dataflow.distinct: bound must be positive";
  let engine = up.engine in
  let out = make engine in
  let intern = Intern.create () in
  let state = Itbl.create engine in
  let scratch = Scratch.create ~intern engine in
  let cap w = Float.max 0.0 (Float.min bound w) in
  subscribe up (fun xs ws len ->
      count_work engine len;
      for i = 0 to len - 1 do
        let dw = ws.(i) in
        let id = Intern.intern intern xs.(i) in
        let old = Itbl.bump state id dw in
        let diff = cap (old +. dw) -. cap old in
        if not (near_zero diff) then Scratch.push_id scratch id diff
      done;
      Scratch.flush scratch out);
  out

let shave f up =
  let engine = up.engine in
  let out = make engine in
  let intern = Intern.create () in
  let state = Itbl.create engine in
  let scratch = Scratch.create engine in
  subscribe up (fun xs ws len ->
      count_work engine len;
      for i = 0 to len - 1 do
        let x = xs.(i) in
        let dw = ws.(i) in
        let id = Intern.intern intern x in
        let old = Itbl.bump state id dw in
        let w = old +. dw in
        if old > 0.0 then
          List.iter
            (fun (slab, wi) -> Scratch.push scratch (x, slab) (-.wi))
            (Ops.shave_emissions (f x) old);
        if w > 0.0 then
          List.iter
            (fun (slab, wi) -> Scratch.push scratch (x, slab) wi)
            (Ops.shave_emissions (f x) w)
      done;
      Scratch.flush scratch out);
  out

let shave_const w up =
  if w <= 0.0 then invalid_arg "Dataflow.shave_const: slab weight must be positive";
  shave (fun _ -> Seq.repeat w) up

module Sink = struct
  type 'a t = {
    engine : Engine.t;
    intern : 'a Intern.t;
    state : Itbl.t;
    mutable callbacks_rev : (int -> 'a -> old_weight:float -> new_weight:float -> unit) list;
    mutable callbacks : (int -> 'a -> old_weight:float -> new_weight:float -> unit) array;
  }

  let attach node =
    let e = engine_of node in
    let t =
      {
        engine = e;
        intern = Intern.create ();
        state = Itbl.create e;
        callbacks_rev = [];
        callbacks = [||];
      }
    in
    subscribe node (fun xs ws len ->
        for i = 0 to len - 1 do
          let x = xs.(i) in
          let dw = ws.(i) in
          let id = Intern.intern t.intern x in
          let old = Itbl.bump t.state id dw in
          let nw = old +. dw in
          let nw = if near_zero nw then 0.0 else nw in
          for c = 0 to Array.length t.callbacks - 1 do
            t.callbacks.(c) id x ~old_weight:old ~new_weight:nw
          done
        done);
    t

  let engine t = t.engine

  let weight t x =
    let id = Intern.find t.intern x in
    if id < 0 then 0.0 else Itbl.get t.state id

  let weight_id t id = Itbl.get t.state id
  let intern_id t x = Intern.intern t.intern x
  let record_of_id t id = Intern.value t.intern id
  let support_size t = Itbl.size t.state
  let to_list t = List.map (fun (id, w) -> (Intern.value t.intern id, w)) (Itbl.to_list t.state)
  let current t = Wdata.of_list (to_list t)

  let on_change_id t f =
    t.callbacks_rev <- f :: t.callbacks_rev;
    t.callbacks <- Array.of_list (List.rev t.callbacks_rev)

  let on_change t f =
    on_change_id t (fun _id x ~old_weight ~new_weight -> f x ~old_weight ~new_weight)
end
