module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops

let near_zero w = Float.abs w < Wdata.epsilon_weight

module Audit = struct
  type divergence = {
    cell : string;
    maintained : float;
    recomputed : float;
    abs_drift : float;
    ulp_drift : int64;
  }

  type report = { cells_checked : int; divergences : divergence list }

  (* Map a float's IEEE-754 bits to a lexicographically ordered int64, so
     that the distance between two ordered values counts the representable
     floats between them. *)
  let ordered_bits f =
    let bits = Int64.bits_of_float f in
    if Int64.compare bits 0L < 0 then Int64.sub Int64.min_int bits else bits

  let ulp_distance a b =
    let oa = ordered_bits a and ob = ordered_bits b in
    let hi, lo = if Int64.compare oa ob >= 0 then (oa, ob) else (ob, oa) in
    let d = Int64.sub hi lo in
    if Int64.compare d 0L < 0 then Int64.max_int else d

  (* Incremental maintenance is allowed to differ from a batch
     recomputation only by float summation-order noise: bit-equal is
     always clean, finite values compare by absolute drift against the
     tolerance, and any non-finite disagreement is a divergence. *)
  let check ~tolerance ~cell ~maintained ~recomputed =
    if Int64.equal (Int64.bits_of_float maintained) (Int64.bits_of_float recomputed) then None
    else
      let both_finite = Float.is_finite maintained && Float.is_finite recomputed in
      let abs_drift = Float.abs (maintained -. recomputed) in
      if both_finite && abs_drift <= tolerance then None
      else
        Some
          { cell; maintained; recomputed; abs_drift; ulp_drift = ulp_distance maintained recomputed }

  let divergence_to_string d =
    Printf.sprintf "%s: maintained %h vs recomputed %h (abs drift %g, ulp drift %Ld)" d.cell
      d.maintained d.recomputed d.abs_drift d.ulp_drift
end

module Engine = struct
  (* The undo log is a stack of restoration closures recorded by every
     stateful cell mutation made while [speculating].  Closures (rather
     than typed cell records) keep the log polymorphic over the
     heterogeneous cell types of the DAG's operators; each closure
     reinstates one cell's exact previous contents, so replaying the log
     in reverse is a bit-identical rollback with no float arithmetic. *)
  let nop () = ()

  type t = {
    mutable state_records : int;
    mutable work : int;
    mutable join_fast : int;
    mutable join_full : int;
    (* DAG shape and traffic: physical operator nodes built, plan-lowering
       memo hits reported by [add_shared_nodes], and record deliveries
       (delta length x subscriber count) counted at every [emit] *)
    mutable nodes_built : int;
    mutable nodes_shared : int;
    mutable records_propagated : int;
    (* scratch-arena allocation counters *)
    mutable arena_grows : int;
    mutable arena_reuses : int;
    (* speculation protocol *)
    mutable speculating : bool;
    mutable in_feed : bool;
    mutable undo : (unit -> unit) array;
    mutable undo_len : int;
    mutable commits : int;
    mutable aborts : int;
    mutable undo_cells : int;
    (* statistics snapshot taken at [begin_speculation], restored by
       [abort] so an aborted propagation leaves no statistical trace *)
    mutable s_state_records : int;
    mutable s_work : int;
    mutable s_join_fast : int;
    mutable s_join_full : int;
    mutable s_arena_grows : int;
    mutable s_arena_reuses : int;
    mutable s_records_propagated : int;
    (* self-audit: operators with redundantly-maintained state register a
       hook that recomputes it from scratch and reports divergences *)
    mutable audit_hooks_rev : (tolerance:float -> int * Audit.divergence list) list;
    mutable next_op_id : int;
  }

  let create () =
    {
      state_records = 0;
      work = 0;
      join_fast = 0;
      join_full = 0;
      nodes_built = 0;
      nodes_shared = 0;
      records_propagated = 0;
      arena_grows = 0;
      arena_reuses = 0;
      speculating = false;
      in_feed = false;
      undo = Array.make 64 nop;
      undo_len = 0;
      commits = 0;
      aborts = 0;
      undo_cells = 0;
      s_state_records = 0;
      s_work = 0;
      s_join_fast = 0;
      s_join_full = 0;
      s_arena_grows = 0;
      s_arena_reuses = 0;
      s_records_propagated = 0;
      audit_hooks_rev = [];
      next_op_id = 0;
    }

  let state_records t = t.state_records
  let work t = t.work
  let join_fast_updates t = t.join_fast
  let join_full_rescales t = t.join_full
  let arena_grows t = t.arena_grows
  let arena_reuses t = t.arena_reuses
  let nodes_built t = t.nodes_built
  let nodes_shared t = t.nodes_shared
  let records_propagated t = t.records_propagated

  let add_shared_nodes t n =
    if n < 0 then invalid_arg "Dataflow.Engine.add_shared_nodes: negative count";
    t.nodes_shared <- t.nodes_shared + n
  let commits t = t.commits
  let aborts t = t.aborts
  let undo_cells t = t.undo_cells
  let speculating t = t.speculating

  let fresh_op_id t =
    let id = t.next_op_id in
    t.next_op_id <- id + 1;
    id

  let register_audit t hook = t.audit_hooks_rev <- hook :: t.audit_hooks_rev

  let audit ?(tolerance = 1e-6) t =
    if t.speculating then invalid_arg "Dataflow.Engine.audit: cannot audit mid-speculation";
    let cells = ref 0 and divs = ref [] in
    List.iter
      (fun hook ->
        let n, ds = hook ~tolerance in
        cells := !cells + n;
        divs := List.rev_append ds !divs)
      (List.rev t.audit_hooks_rev);
    { Audit.cells_checked = !cells; divergences = List.rev !divs }

  let log_undo t f =
    if t.speculating then begin
      if t.undo_len = Array.length t.undo then begin
        let bigger = Array.make (2 * Array.length t.undo) nop in
        Array.blit t.undo 0 bigger 0 t.undo_len;
        t.undo <- bigger
      end;
      t.undo.(t.undo_len) <- f;
      t.undo_len <- t.undo_len + 1;
      t.undo_cells <- t.undo_cells + 1
    end

  let begin_speculation t =
    if t.speculating then
      invalid_arg "Dataflow.Engine.begin_speculation: speculation already in progress";
    if t.in_feed then
      invalid_arg "Dataflow.Engine.begin_speculation: cannot speculate during propagation";
    t.s_state_records <- t.state_records;
    t.s_work <- t.work;
    t.s_join_fast <- t.join_fast;
    t.s_join_full <- t.join_full;
    t.s_arena_grows <- t.arena_grows;
    t.s_arena_reuses <- t.arena_reuses;
    t.s_records_propagated <- t.records_propagated;
    t.speculating <- true

  let commit t =
    if not t.speculating then invalid_arg "Dataflow.Engine.commit: no speculation in progress";
    if t.in_feed then invalid_arg "Dataflow.Engine.commit: cannot commit during propagation";
    t.speculating <- false;
    Array.fill t.undo 0 t.undo_len nop;
    t.undo_len <- 0;
    t.commits <- t.commits + 1

  let abort t =
    if not t.speculating then invalid_arg "Dataflow.Engine.abort: no speculation in progress";
    if t.in_feed then invalid_arg "Dataflow.Engine.abort: cannot abort during propagation";
    t.speculating <- false;
    for i = t.undo_len - 1 downto 0 do
      t.undo.(i) ();
      t.undo.(i) <- nop
    done;
    t.undo_len <- 0;
    t.state_records <- t.s_state_records;
    t.work <- t.s_work;
    t.join_fast <- t.s_join_fast;
    t.join_full <- t.s_join_full;
    t.arena_grows <- t.s_arena_grows;
    t.arena_reuses <- t.s_arena_reuses;
    t.records_propagated <- t.s_records_propagated;
    t.aborts <- t.aborts + 1
end

(* Reusable per-operator output buffers — the scratch arena.  Operators
   accumulate their output changes in parallel record/weight arrays
   (weights unboxed) instead of consing fresh lists, and coalesce through
   a persistent hashtable whose bucket array survives across batches.
   Safe to reuse across a DAG propagation because every handler fully
   drains its scratch before emitting downstream, and the DAG is acyclic,
   so a handler can never be re-entered while its scratch is live. *)
module Scratch = struct
  type 'a t = {
    engine : Engine.t;
    mutable xs : 'a array;
    mutable ws : float array;
    mutable len : int;
    acc : ('a, float) Hashtbl.t;
  }

  let create engine = { engine; xs = [||]; ws = [||]; len = 0; acc = Hashtbl.create 32 }

  let push t x w =
    let cap = Array.length t.xs in
    if t.len = cap then begin
      t.engine.Engine.arena_grows <- t.engine.Engine.arena_grows + 1;
      let cap' = if cap = 0 then 64 else 2 * cap in
      let xs = Array.make cap' x in
      let ws = Array.make cap' 0.0 in
      Array.blit t.xs 0 xs 0 t.len;
      Array.blit t.ws 0 ws 0 t.len;
      t.xs <- xs;
      t.ws <- ws
    end;
    t.xs.(t.len) <- x;
    t.ws.(t.len) <- w;
    t.len <- t.len + 1

  (* Coalesces the buffered changes into a delta list and resets the
     buffer for the next batch. *)
  let drain t =
    match t.len with
    | 0 -> []
    | 1 ->
        t.len <- 0;
        let w = t.ws.(0) in
        if near_zero w then [] else [ (t.xs.(0), w) ]
    | n ->
        t.engine.Engine.arena_reuses <- t.engine.Engine.arena_reuses + 1;
        for i = 0 to n - 1 do
          let x = t.xs.(i) in
          match Hashtbl.find_opt t.acc x with
          | None -> Hashtbl.replace t.acc x t.ws.(i)
          | Some w0 -> Hashtbl.replace t.acc x (w0 +. t.ws.(i))
        done;
        (* Build the output and empty [acc] in one O(batch) pass over the
           pushed keys (removal marks a key as drained, so duplicates emit
           once).  Folding or clearing [acc] instead would be
           O(bucket-array capacity) and make every small batch pay for the
           largest batch ever drained — e.g. the initial dataset load. *)
        let out = ref [] in
        for i = 0 to n - 1 do
          let x = t.xs.(i) in
          match Hashtbl.find_opt t.acc x with
          | None -> () (* duplicate of an already-drained key *)
          | Some w ->
              Hashtbl.remove t.acc x;
              if not (near_zero w) then out := (x, w) :: !out
        done;
        t.len <- 0;
        !out
end

type 'a delta = ('a * float) list

type 'a node = {
  engine : Engine.t;
  mutable subs_rev : ('a delta -> unit) list;
  mutable subs : ('a delta -> unit) array;
}

let engine_of n = n.engine

let make engine =
  engine.Engine.nodes_built <- engine.Engine.nodes_built + 1;
  { engine; subs_rev = []; subs = [||] }

(* Subscribers fire in subscription order; propagation is a synchronous
   depth-first walk of the DAG.  Correctness does not depend on the order
   because every stateful operator retires each delta batch against its
   current state.  Subscription happens only at DAG-build time, so the
   subscriber array is rebuilt eagerly and emission iterates a flat
   array. *)
let subscribe n f =
  n.subs_rev <- f :: n.subs_rev;
  n.subs <- Array.of_list (List.rev n.subs_rev)

let emit n d =
  if d <> [] then begin
    let nsubs = Array.length n.subs in
    n.engine.Engine.records_propagated <-
      n.engine.Engine.records_propagated + (List.length d * nsubs);
    for i = 0 to nsubs - 1 do
      n.subs.(i) d
    done
  end

let coalesce d =
  match d with
  | [] -> []
  | [ (_, w) ] -> if near_zero w then [] else d
  | _ ->
      let h = Hashtbl.create (List.length d) in
      List.iter
        (fun (x, w) ->
          match Hashtbl.find_opt h x with
          | None -> Hashtbl.replace h x w
          | Some w0 -> Hashtbl.replace h x (w0 +. w))
        d;
      Hashtbl.fold (fun x w acc -> if near_zero w then acc else (x, w) :: acc) h []

let count_work (engine : Engine.t) d = engine.work <- engine.work + List.length d

(* A mutable weight table whose entry count is reported to the engine's
   state-size statistic.  Under speculation, every mutation records its
   exact structural inverse in the engine's undo log.

   Entries live in dense arrays in committed insertion order and the hash
   index maps records to slots; the index is never iterated, so its
   internal layout is irrelevant.  This makes iteration order — and with
   it the rounding order of every float accumulation derived from a
   table scan (join rescales, group re-emissions, refresh recomputes) —
   a pure function of the committed operation sequence.  Iterating a
   stdlib [Hashtbl] instead would not be abort-safe: a speculative insert
   can resize the bucket array and [Hashtbl.remove] keeps the larger
   array, so an aborted speculation would permanently perturb iteration
   order and replicas with different abort histories would drift apart
   at the ULP level. *)
module Wtbl = struct
  type 'a t = {
    engine : Engine.t;
    mutable xs : 'a array;
    mutable ws : float array;
    mutable len : int;
    idx : ('a, int) Hashtbl.t;
  }

  let create engine = { engine; xs = [||]; ws = [||]; len = 0; idx = Hashtbl.create 16 }
  let size t = t.len
  let get t x = match Hashtbl.find_opt t.idx x with Some i -> t.ws.(i) | None -> 0.0

  let ensure_capacity t seed =
    if t.len = Array.length t.xs then begin
      let cap = Array.length t.xs in
      let cap' = if cap = 0 then 8 else 2 * cap in
      let xs = Array.make cap' seed and ws = Array.make cap' 0.0 in
      Array.blit t.xs 0 xs 0 t.len;
      Array.blit t.ws 0 ws 0 t.len;
      t.xs <- xs;
      t.ws <- ws
    end

  let set t x w =
    let engine = t.engine in
    match Hashtbl.find_opt t.idx x with
    | None ->
        if not (near_zero w) then begin
          ensure_capacity t x;
          let i = t.len in
          t.xs.(i) <- x;
          t.ws.(i) <- w;
          t.len <- i + 1;
          Hashtbl.replace t.idx x i;
          engine.Engine.state_records <- engine.Engine.state_records + 1;
          if engine.Engine.speculating then
            Engine.log_undo engine (fun () ->
                Hashtbl.remove t.idx x;
                t.len <- i)
        end
    | Some i ->
        if near_zero w then begin
          (* Remove by swapping the last entry into the vacated slot; the
             logged inverse puts both entries back in their exact slots.
             Slot indices captured by other undo entries stay valid
             because the log replays in reverse order. *)
          let last = t.len - 1 in
          let w0 = t.ws.(i) in
          let xl = t.xs.(last) and wl = t.ws.(last) in
          if i <> last then begin
            t.xs.(i) <- xl;
            t.ws.(i) <- wl;
            Hashtbl.replace t.idx xl i
          end;
          t.len <- last;
          Hashtbl.remove t.idx x;
          engine.Engine.state_records <- engine.Engine.state_records - 1;
          if engine.Engine.speculating then
            Engine.log_undo engine (fun () ->
                t.len <- last + 1;
                if i <> last then begin
                  t.xs.(last) <- xl;
                  t.ws.(last) <- wl;
                  Hashtbl.replace t.idx xl last
                end;
                t.xs.(i) <- x;
                t.ws.(i) <- w0;
                Hashtbl.replace t.idx x i)
        end
        else begin
          let w0 = t.ws.(i) in
          t.ws.(i) <- w;
          if engine.Engine.speculating then
            Engine.log_undo engine (fun () -> t.ws.(i) <- w0)
        end

  (* Adds [dw] and returns the old weight. *)
  let bump t x dw =
    let old = get t x in
    set t x (old +. dw);
    old

  let iter f t =
    for i = 0 to t.len - 1 do
      f t.xs.(i) t.ws.(i)
    done

  let fold f t acc =
    let acc = ref acc in
    for i = 0 to t.len - 1 do
      acc := f t.xs.(i) t.ws.(i) !acc
    done;
    !acc

  let to_list t =
    let rec go i acc = if i < 0 then acc else go (i - 1) ((t.xs.(i), t.ws.(i)) :: acc) in
    go (t.len - 1) []
end

module Input = struct
  type 'a t = { node : 'a node; state : 'a Wtbl.t }

  let create engine = { node = make engine; state = Wtbl.create engine }
  let node t = t.node

  let feed t delta =
    let engine = t.node.engine in
    if engine.Engine.in_feed then
      invalid_arg "Dataflow.Input.feed: re-entrant feed during propagation";
    engine.Engine.in_feed <- true;
    Fun.protect
      ~finally:(fun () -> engine.Engine.in_feed <- false)
      (fun () ->
        let delta = coalesce delta in
        List.iter (fun (x, w) -> ignore (Wtbl.bump t.state x w)) delta;
        emit t.node delta)

  let current t = Wdata.of_list (Wtbl.to_list t.state)
end

let select f up =
  let out = make up.engine in
  let scratch = Scratch.create up.engine in
  subscribe up (fun d ->
      count_work up.engine d;
      List.iter (fun (x, w) -> Scratch.push scratch (f x) w) d;
      emit out (Scratch.drain scratch));
  out

let where p up =
  let out = make up.engine in
  subscribe up (fun d ->
      count_work up.engine d;
      emit out (List.filter (fun (x, _) -> p x) d));
  out

let select_many f up =
  let out = make up.engine in
  let scratch = Scratch.create up.engine in
  subscribe up (fun d ->
      count_work up.engine d;
      List.iter
        (fun (x, w) ->
          let ys = f x in
          let n = List.fold_left (fun acc (_, wy) -> acc +. Float.abs wy) 0.0 ys in
          let scale = w /. Float.max 1.0 n in
          List.iter (fun (y, wy) -> Scratch.push scratch y (wy *. scale)) ys)
        d;
      emit out (Scratch.drain scratch));
  out

let select_many_list f up = select_many (fun x -> List.map (fun y -> (y, 1.0)) (f x)) up

let same_engine a b =
  if a.engine != b.engine then invalid_arg "Dataflow: nodes belong to different engines";
  a.engine

let concat a b =
  let engine = same_engine a b in
  let out = make engine in
  let pass d =
    count_work engine d;
    emit out d
  in
  subscribe a pass;
  subscribe b pass;
  out

let except a b =
  let engine = same_engine a b in
  let out = make engine in
  subscribe a (fun d ->
      count_work engine d;
      emit out d);
  subscribe b (fun d ->
      count_work engine d;
      emit out (List.rev_map (fun (x, w) -> (x, -.w)) d));
  out

(* Union and Intersect keep both sides' weights per record and emit the
   change to max/min when either side moves. *)
let merge_node fop a b =
  let engine = same_engine a b in
  let out = make engine in
  let wa = Wtbl.create engine and wb = Wtbl.create engine in
  let scratch = Scratch.create engine in
  let handle mine other flip d =
    count_work engine d;
    List.iter
      (fun (x, dw) ->
        let old_mine = Wtbl.bump mine x dw in
        let v_other = Wtbl.get other x in
        let old_out = if flip then fop v_other old_mine else fop old_mine v_other in
        let new_mine = old_mine +. dw in
        let new_out = if flip then fop v_other new_mine else fop new_mine v_other in
        let diff = new_out -. old_out in
        if not (near_zero diff) then Scratch.push scratch x diff)
      d;
    emit out (Scratch.drain scratch)
  in
  subscribe a (handle wa wb false);
  subscribe b (handle wb wa true);
  out

let union a b = merge_node Float.max a b
let intersect a b = merge_node Float.min a b

(* Per-key state of one Join input.  [recs] is a [Wtbl] so that the
   rescale scans below iterate in committed insertion order — abort-exact
   and width-independent. *)
type 'r part = { recs : 'r Wtbl.t; mutable norm : float }

let part_get p x = Wtbl.get p.recs x
let part_set (_engine : Engine.t) p x w = Wtbl.set p.recs x w

let part_add_norm (engine : Engine.t) p dn =
  if engine.Engine.speculating then begin
    let n0 = p.norm in
    Engine.log_undo engine (fun () -> p.norm <- n0)
  end;
  p.norm <- p.norm +. dn

let find_part (engine : Engine.t) index k =
  match Hashtbl.find_opt index k with
  | Some p -> p
  | None ->
      let p = { recs = Wtbl.create engine; norm = 0.0 } in
      Hashtbl.replace index k p;
      if engine.Engine.speculating then
        Engine.log_undo engine (fun () -> Hashtbl.remove index k);
      p

let drop_part (engine : Engine.t) index k p =
  Hashtbl.remove index k;
  if engine.Engine.speculating then
    Engine.log_undo engine (fun () -> Hashtbl.replace index k p)

(* Groups a delta batch into a caller-owned reusable table; the caller
   iterates and must [Hashtbl.clear] it afterwards. *)
let group_into by_key key d =
  List.iter
    (fun (x, w) ->
      let k = key x in
      match Hashtbl.find_opt by_key k with
      | None -> Hashtbl.replace by_key k [ (x, w) ]
      | Some cur -> Hashtbl.replace by_key k ((x, w) :: cur))
    d

let join ~kl ~kr ~reduce a b =
  let engine = same_engine a b in
  let out = make engine in
  let ia : ('k, 'ra part) Hashtbl.t = Hashtbl.create 64 in
  let ib : ('k, 'rb part) Hashtbl.t = Hashtbl.create 64 in
  (* Each key's [norm] is maintained incrementally alongside [recs]; the
     audit recomputes it as Σ|w| over the part's records and flags drift. *)
  let op = Engine.fresh_op_id engine in
  let audit_side side index ~tolerance =
    Hashtbl.fold
      (fun k p (n, ds) ->
        let recomputed = Wtbl.fold (fun _ w acc -> acc +. Float.abs w) p.recs 0.0 in
        let cell = Printf.sprintf "join#%d.%s.norm[key#%d]" op side (Hashtbl.hash k) in
        let n = n + 1 in
        match Audit.check ~tolerance ~cell ~maintained:p.norm ~recomputed with
        | None -> (n, ds)
        | Some d -> (n, d :: ds))
      index (0, [])
  in
  Engine.register_audit engine (fun ~tolerance ->
      let nl, dl = audit_side "left" ia ~tolerance in
      let nr, dr = audit_side "right" ib ~tolerance in
      (nl + nr, dl @ dr));
  let scratch = Scratch.create engine in
  (* Retire a batch arriving on one side.  [cross changed_rec other_rec]
     orients the output pair correctly for whichever side changed.  Each
     side owns its reusable grouping table ([by_key]); the output scratch
     is shared because the two handlers never overlap. *)
  let handle mine_index other_index by_key key_of cross d =
    count_work engine d;
    group_into by_key key_of d;
    Hashtbl.iter
      (fun k entries ->
        let mine = find_part engine mine_index k in
        let other =
          match Hashtbl.find_opt other_index k with
          | Some p -> p
          | None -> { recs = Wtbl.create engine; norm = 0.0 }
        in
        let net = coalesce entries in
        let norm_change =
          List.fold_left
            (fun acc (x, dw) ->
              let old = part_get mine x in
              acc +. (Float.abs (old +. dw) -. Float.abs old))
            0.0 net
        in
        let denom_old = mine.norm +. other.norm in
        let denom_new = denom_old +. norm_change in
        (* [norm] is updated exactly once on every path: the fast path
           folds the sub-threshold dust in directly, the full path applies
           the real change — so a sub-threshold change on an
           empty-normalizer key (which takes the full path) is not
           accumulated twice. *)
        if Float.abs norm_change < Wdata.epsilon_weight && denom_old > Wdata.epsilon_weight
        then begin
          (* Appendix B optimization: the normalizer is unchanged, so only
             pairs involving changed records move. *)
          engine.join_fast <- engine.join_fast + 1;
          List.iter
            (fun (x, dw) ->
              let old = part_get mine x in
              part_set engine mine x (old +. dw);
              Wtbl.iter
                (fun y wy -> Scratch.push scratch (cross x y) (dw *. wy /. denom_old))
                other.recs)
            net;
          part_add_norm engine mine norm_change
        end
        else begin
          (* The normalizer moved: every pair under this key is rescaled. *)
          engine.join_full <- engine.join_full + 1;
          if denom_old > Wdata.epsilon_weight then
            Wtbl.iter
              (fun x wx ->
                Wtbl.iter
                  (fun y wy -> Scratch.push scratch (cross x y) (-.(wx *. wy) /. denom_old))
                  other.recs)
              mine.recs;
          List.iter
            (fun (x, dw) ->
              let old = part_get mine x in
              part_set engine mine x (old +. dw))
            net;
          part_add_norm engine mine norm_change;
          if denom_new > Wdata.epsilon_weight then
            Wtbl.iter
              (fun x wx ->
                Wtbl.iter
                  (fun y wy -> Scratch.push scratch (cross x y) (wx *. wy /. denom_new))
                  other.recs)
              mine.recs
        end;
        if Wtbl.size mine.recs = 0 && Float.abs mine.norm < Wdata.epsilon_weight then
          drop_part engine mine_index k mine)
      by_key;
    (* [reset], not [clear]: shrink the bucket array back so a one-off huge
       batch (the initial load) doesn't tax every later small batch. *)
    Hashtbl.reset by_key;
    emit out (Scratch.drain scratch)
  in
  let by_key_a = Hashtbl.create 16 and by_key_b = Hashtbl.create 16 in
  subscribe a (handle ia ib by_key_a kl (fun x y -> reduce x y));
  subscribe b (handle ib ia by_key_b kr (fun y x -> reduce x y));
  out

let group_by ~key ~reduce up =
  let engine = up.engine in
  let out = make engine in
  let index : ('k, 'a Wtbl.t) Hashtbl.t = Hashtbl.create 64 in
  let scratch = Scratch.create engine in
  let by_key = Hashtbl.create 16 in
  let positive_part tbl =
    Wtbl.fold (fun x w acc -> if w > 0.0 then (x, w) :: acc else acc) tbl []
  in
  let emit_part sign k tbl =
    List.iter
      (fun (members, w) -> Scratch.push scratch (k, reduce members) (sign *. w))
      (Ops.group_emissions (positive_part tbl))
  in
  subscribe up (fun d ->
      count_work engine d;
      group_into by_key key d;
      Hashtbl.iter
        (fun k entries ->
          let tbl =
            match Hashtbl.find_opt index k with
            | Some t -> t
            | None ->
                let t = Wtbl.create engine in
                Hashtbl.replace index k t;
                if engine.Engine.speculating then
                  Engine.log_undo engine (fun () -> Hashtbl.remove index k);
                t
          in
          emit_part (-1.0) k tbl;
          List.iter (fun (x, dw) -> ignore (Wtbl.bump tbl x dw)) (coalesce entries);
          emit_part 1.0 k tbl;
          if Wtbl.size tbl = 0 then begin
            Hashtbl.remove index k;
            if engine.Engine.speculating then
              Engine.log_undo engine (fun () -> Hashtbl.replace index k tbl)
          end)
        by_key;
      Hashtbl.reset by_key;
      emit out (Scratch.drain scratch));
  out

let distinct ?(bound = 1.0) up =
  if bound <= 0.0 then invalid_arg "Dataflow.distinct: bound must be positive";
  let engine = up.engine in
  let out = make engine in
  let state = Wtbl.create engine in
  let scratch = Scratch.create engine in
  let cap w = Float.max 0.0 (Float.min bound w) in
  subscribe up (fun d ->
      count_work engine d;
      List.iter
        (fun (x, dw) ->
          let old = Wtbl.bump state x dw in
          let diff = cap (old +. dw) -. cap old in
          if not (near_zero diff) then Scratch.push scratch x diff)
        (coalesce d);
      emit out (Scratch.drain scratch));
  out

let shave f up =
  let engine = up.engine in
  let out = make engine in
  let state = Wtbl.create engine in
  let scratch = Scratch.create engine in
  subscribe up (fun d ->
      count_work engine d;
      List.iter
        (fun (x, dw) ->
          let old = Wtbl.bump state x dw in
          let w = old +. dw in
          if old > 0.0 then
            List.iter
              (fun (i, wi) -> Scratch.push scratch (x, i) (-.wi))
              (Ops.shave_emissions (f x) old);
          if w > 0.0 then
            List.iter
              (fun (i, wi) -> Scratch.push scratch (x, i) wi)
              (Ops.shave_emissions (f x) w))
        (coalesce d);
      emit out (Scratch.drain scratch));
  out

let shave_const w up =
  if w <= 0.0 then invalid_arg "Dataflow.shave_const: slab weight must be positive";
  shave (fun _ -> Seq.repeat w) up

module Sink = struct
  type 'a t = {
    state : 'a Wtbl.t;
    mutable callbacks_rev : ('a -> old_weight:float -> new_weight:float -> unit) list;
    mutable callbacks : ('a -> old_weight:float -> new_weight:float -> unit) array;
  }

  let attach node =
    let t = { state = Wtbl.create node.engine; callbacks_rev = []; callbacks = [||] } in
    subscribe node (fun d ->
        List.iter
          (fun (x, dw) ->
            let old = Wtbl.bump t.state x dw in
            let nw = old +. dw in
            let nw = if near_zero nw then 0.0 else nw in
            for i = 0 to Array.length t.callbacks - 1 do
              t.callbacks.(i) x ~old_weight:old ~new_weight:nw
            done)
          d);
    t

  let engine t = t.state.Wtbl.engine
  let weight t x = Wtbl.get t.state x
  let support_size t = Wtbl.size t.state
  let current t = Wdata.of_list (Wtbl.to_list t.state)
  let to_list t = Wtbl.to_list t.state

  let on_change t f =
    t.callbacks_rev <- f :: t.callbacks_rev;
    t.callbacks <- Array.of_list (List.rev t.callbacks_rev)
end
