module Fault = Wpinq_persist.Persist.Fault

let signals = ref 0
let installed = ref false

let request () =
  Fault.point "shutdown.request";
  incr signals

let requested () = !signals >= 1
let forced () = !signals >= 2
let reset () = signals := 0

(* A handler must only bump a counter: the walk polls it between steps, so
   the in-flight step finishes and a final checkpoint is written from a
   complete post-step state.  The counter gives the conventional
   double-signal escalation — the first Ctrl-C starts a graceful drain
   (finish the in-flight epoch, then stop), a second one during the drain
   forces an immediate stop at the next batch boundary (still leaving a
   final interrupt snapshot, so even a forced exit resumes bit-identically).
   Installation is idempotent and tolerates environments where a signal
   cannot be caught (e.g. sigterm under some test runners). *)
let install () =
  if not !installed then begin
    installed := true;
    List.iter
      (fun signal ->
        try Sys.set_signal signal (Sys.Signal_handle (fun _ -> request ()))
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ]
  end
