module Fault = Wpinq_persist.Persist.Fault

let flag = ref false
let installed = ref false

let request () =
  Fault.point "shutdown.request";
  flag := true

let requested () = !flag
let reset () = flag := false

(* A handler must only set a flag: the walk polls it between steps, so the
   in-flight step finishes and a final checkpoint is written from a
   complete post-step state.  Installation is idempotent and tolerates
   environments where a signal cannot be caught (e.g. sigterm under some
   test runners). *)
let install () =
  if not !installed then begin
    installed := true;
    List.iter
      (fun signal ->
        try Sys.set_signal signal (Sys.Signal_handle (fun _ -> request ()))
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ]
  end
