(** Metropolis–Hastings over an abstract mutable state (paper, Section 4.2).

    The caller supplies the three ingredients of the paper's pseudo-code: a
    proposal generator (the random walk), apply/revert editors, and an
    energy function.  The chain targets the distribution
    [∝ exp(−pow · energy)]; with [energy = Σ_i ε_i ‖Q_i(A) − m_i‖₁] this is
    exactly the posterior over datasets given the noisy wPINQ measurements
    (Section 4.1), sharpened by [pow] toward a greedy search for the
    best-fitting dataset. *)

type stats = {
  steps : int;  (** proposal attempts made by this call ([step − start]) *)
  accepted : int;  (** proposals accepted (state changed) *)
  invalid : int;  (** proposals the walk itself rejected (returned [None]) *)
  refreshed_on_nonfinite : int;
      (** defensive refreshes forced by a non-finite energy reading *)
  audits : int;  (** self-audit passes run ([audit_every] cadence) *)
  audit_divergences : int;
      (** total divergent cells the audits detected (each triggered the
          recovery path before the walk continued) *)
  interrupted : bool;
      (** the walk stopped early ([should_stop]) rather than reaching
          [steps]; the state reflects exactly [start + steps] completed
          iterations *)
  initial_energy : float;
  final_energy : float;
}

(** {1 Parallel speculative lookahead} *)

type 'swap verdict =
  | Invalid  (** the proposal generator returned [None] *)
  | Rejected  (** finite energy, Metropolis test failed *)
  | Nonfinite  (** proposed energy was not finite; triggers a refresh *)
  | Accepted of { swap : 'swap; proposed : float }
      (** passed the Metropolis test; [proposed] is the energy read off the
          speculating replica before its abort *)
(** The outcome of evaluating one lookahead position against the shared
    base state. *)

type 'swap lookahead = {
  la_jobs : int;  (** maximum lookahead width (= replica count) *)
  la_energy : unit -> float;  (** current committed energy *)
  la_eval : pow:float -> energy:float -> Wpinq_prng.Prng.t array -> 'swap verdict array;
      (** evaluate one per-step stream per replica, speculatively and
          concurrently, leaving every replica back at the base state *)
  la_commit : 'swap -> proposed:float -> unit;
      (** replay an accepted swap on every replica and the canonical fit *)
  la_refresh : unit -> float;
      (** recompute maintained state from scratch everywhere; returns the
          refreshed energy *)
  la_resync : unit -> float;
      (** rebuild the replicas from the canonical fit (after a checkpoint
          rebase or audit recovery); returns the pool energy *)
}
(** The replica-pool interface {!run_lookahead} drives — implemented by
    [Fit.Pool]. *)

type width =
  | Fixed of int  (** every batch dispatches exactly this many streams *)
  | Adaptive of { max_width : int }
      (** start at [la_jobs]; double the width after every accept-free
          batch, halve it (floored at [la_jobs]) when an acceptance cuts a
          batch short; never exceed [max_width].  With low acceptance
          rates the walk settles into deep lookahead, where speculative
          evaluation is almost never discarded. *)
  | Schedule of (int -> int)
      (** arbitrary width per batch index (clamped to at least 1) — the
          property-test hook for schedule-invariance *)
(** The batch-width policy.  The realized chain is {e invariant} to the
    policy: each step's streams are dealt by absolute step index and the
    master cursor advances only by consumed steps, so policies only move
    wall-clock, never the walk. *)

type counters = {
  mutable dispatch_us : float;
      (** publishing batches to the worker mailboxes (scheduler side) *)
  mutable eval_us : float;
      (** waiting for the workers' verdicts (or inline evaluation when
          [jobs = 1]) *)
  mutable resolve_us : float;
      (** verdict prefix scan, rng advance, cadence hooks *)
  mutable commit_us : float;
      (** committing winning swaps to the canonical fit (the owner's
          O(delta) feed; replicas absorb theirs into the next dispatch) *)
  mutable batches : int;
  mutable k_min : int;  (** narrowest realized batch ([max_int] if none) *)
  mutable k_max : int;  (** widest realized batch *)
  mutable k_sum : int;  (** total dispatched width, for the mean *)
}
(** Per-phase wall-clock attribution and the realized width trajectory of
    one lookahead run.  Passed to both {!run_lookahead} and the replica
    pool, each of which accumulates the phases it owns. *)

val counters : unit -> counters
(** A fresh, zeroed counter record. *)

val run_lookahead :
  rng:Wpinq_prng.Prng.t ->
  lookahead:'swap lookahead ->
  steps:int ->
  ?start:int ->
  ?pow:float ->
  ?refresh_every:int ->
  ?audit:(unit -> int) ->
  ?audit_every:int ->
  ?should_stop:(unit -> bool) ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(step:int -> stats:stats -> unit) ->
  ?on_batch:(dispatched:int -> consumed:int -> unit) ->
  ?on_step:(step:int -> energy:float -> unit) ->
  ?width:width ->
  ?counters:counters ->
  unit ->
  stats
(** The lookahead walk: dispatch a batch of per-step split streams at
    once, all evaluated against the same base state, then resolve in serial
    proposal order — the consumed prefix runs up to and including the first
    accept (or non-finite energy); later positions are discarded and
    re-evaluated against the new state in a later batch.

    Step [s]'s proposal (and acceptance uniform) are drawn from
    [Prng.split_nth rng (s - base)], a pure function of the step index, and
    the master cursor advances only by consumed steps
    ({!Wpinq_prng.Prng.advance}); the realized chain is therefore
    bit-identical for every [la_jobs] {e and} every [width] policy,
    including [Fixed 1] — same proposals, same energies, same acceptance
    decisions, same final edge arrays, same checkpoint bytes.

    [width] (default [Fixed la_jobs]) chooses how many streams each batch
    dispatches; widths beyond [la_jobs] are evaluated by giving each
    worker a slice of the batch.  Batches are clamped to refresh / audit /
    checkpoint cadence boundaries, and the stop poll and fault-injection
    points ("mcmc.signal", "mcmc.step") fire once per batch, so
    interrupts, kills and snapshots only ever observe committed,
    batch-aligned state.  [on_batch] reports each batch's dispatched width
    and consumed prefix (lookahead efficiency = consumed / dispatched).
    [counters] accumulates per-phase wall time and the width trajectory.
    All other parameters behave as in {!run}. *)

val run :
  rng:Wpinq_prng.Prng.t ->
  steps:int ->
  ?start:int ->
  ?pow:float ->
  ?refresh:(unit -> unit) ->
  ?refresh_every:int ->
  ?audit:(unit -> int) ->
  ?audit_every:int ->
  ?should_stop:(unit -> bool) ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(step:int -> stats:stats -> unit) ->
  ?on_step:(step:int -> energy:float -> unit) ->
  energy:(unit -> float) ->
  propose:(unit -> 'move option) ->
  apply:('move -> unit) ->
  ?commit:('move -> unit) ->
  revert:('move -> unit) ->
  unit ->
  stats
(** [run ~rng ~steps ... ()] performs iterations [start + 1 .. steps]
    ([start] defaults to 0, so normally [steps] iterations; a resumed chain
    passes the already-completed count as [start] and the same total as
    [steps]).  Each iteration draws a proposal; [None] counts as invalid
    and leaves the state untouched.  Otherwise the move is applied, the new
    energy read, and the move kept with probability
    [min 1 (exp (-pow *. (e_new -. e_old)))] (default [pow = 1.0]);
    rejected moves are reverted.

    [apply]/[commit]/[revert] form a transaction: [apply] may install the
    move {e speculatively} (e.g. {!Wpinq_dataflow.Dataflow.Engine}'s
    undo-logged propagation); [commit] — invoked exactly once per accepted
    move, before any [on_step]/[on_checkpoint]/refresh activity — finalizes
    it, and [revert] rolls it back.  When [commit] is omitted, acceptance
    simply keeps the applied state (the pre-speculation contract).

    If the freshly-read energy is {e non-finite} (incremental drift or
    overflow), the move is discarded ([revert]), [refresh] is invoked, the
    energy re-read, and [refreshed_on_nonfinite] incremented — NaN never
    reaches the accept/reject comparison.

    [refresh] (with [refresh_every], default [100_000]) is called
    periodically to let incrementally-maintained energies discard
    floating-point drift; the energy is re-read afterwards.

    [audit] (with [audit_every]; [0], the default, disables) is the
    self-audit hook: every [audit_every]-th iteration it cross-validates the
    incrementally-maintained state and returns the number of divergences
    found, {e recovering} (rebuilding from batch) before returning when that
    number is nonzero.  A nonzero return makes the walk re-read its energy
    from the recovered state; stats record both cadence and divergences.

    [should_stop] is polled {e between} iterations; returning [true]
    finishes the in-flight iteration first and then exits with
    [interrupted = true] — the graceful-shutdown primitive (signal flag,
    wall-clock deadline).  The state left behind reflects a whole number of
    completed iterations and is safe to checkpoint.

    [on_step] is invoked after every iteration with the current energy.

    [on_checkpoint] (with [checkpoint_every]) fires after every
    [checkpoint_every]-th iteration (skipping the final one), {e after}
    [on_step], receiving the interim [stats].  The hook may rebuild the
    incremental state entirely — the checkpoint/resume rebase — so the
    energy is re-read once it returns. *)
