(** Fitting a synthetic graph to wPINQ measurements with the edge-swap walk
    (paper, Section 5.1, Phase 2).

    A fit owns a mutable synthetic graph mirrored into an incremental
    dataflow engine.  Every Metropolis–Hastings step proposes a double-edge
    swap (degree-preserving), feeds the swap's 8-record delta through the
    engine {e speculatively} (under the engine's undo log), and reads the
    updated posterior energy off the measurement targets — so a step costs
    the delta's propagation, not a query re-execution.  An accepted move
    commits the speculation; a rejected one reverts the O(1) graph edit and
    aborts, rolling the engine back in O(cells touched) instead of paying a
    second DAG propagation for the inverted swap.

    For crash recovery, the engine side of a fit can be {!rebuild}t in
    place from an explicit edge array (the checkpoint rebase), or a whole
    fit can be {!restore}d from checkpointed state; both paths share one
    deterministic construction, which is what makes a resumed chain retrace
    an uninterrupted one exactly. *)

type t

type measured =
  | Measured : 'a Wpinq_core.Plan.t * 'a Wpinq_core.Measurement.t -> measured
      (** One measurement to fit: a reified query plan paired with the noisy
          observations of that plan over the (discarded) protected data.
          The existential packs plans of different record types into one
          fit. *)

val create :
  rng:Wpinq_prng.Prng.t ->
  seed_graph:Wpinq_graph.Graph.t ->
  targets:((int * int) Wpinq_core.Flow.t -> Wpinq_core.Flow.Target.t) list ->
  unit ->
  t
(** [create ~rng ~seed_graph ~targets ()] builds the engine, instantiates
    each target query over the synthetic symmetric-directed edge input, and
    loads [seed_graph].  Each element of [targets] typically pairs a
    {!Wpinq_queries} pipeline with a {!Wpinq_core.Measurement}, e.g.
    [fun sym -> Flow.Target.create (Q.tbi sym) m]. *)

val create_shared :
  rng:Wpinq_prng.Prng.t ->
  seed_graph:Wpinq_graph.Graph.t ->
  source:(int * int) Wpinq_core.Plan.t ->
  measured:measured list ->
  unit ->
  t
(** Like {!create}, but the targets are reified plans over one shared
    [source] leaf, lowered through a single {!Wpinq_core.Flow.Plans}
    context: plan prefixes shared between measurements become one physical
    dataflow sub-DAG, so each MCMC delta propagates through the common
    prefix once per step.  Rebuilds (audit recovery, checkpoint rebase,
    {!restore_shared}) reconstruct the same sharing deterministically.
    Observable behaviour — energies, acceptance decisions, the final
    synthetic graph — is bit-identical to the unshared construction
    (property-tested); only the cost changes. *)

val restore :
  rng:Wpinq_prng.Prng.t ->
  n:int ->
  edges:(int * int) array ->
  targets:((int * int) Wpinq_core.Flow.t -> Wpinq_core.Flow.Target.t) list ->
  unit ->
  t
(** [restore ~rng ~n ~edges ~targets ()] rebuilds a fit from checkpointed
    state: the edge array (positional order significant — it is walk
    state), a restored PRNG, and targets built over {e restored}
    measurements.  Deterministic given those inputs. *)

val restore_shared :
  rng:Wpinq_prng.Prng.t ->
  n:int ->
  edges:(int * int) array ->
  source:(int * int) Wpinq_core.Plan.t ->
  measured:measured list ->
  unit ->
  t
(** {!restore} for plan-shared fits: rebuilds the shared DAG from the plans
    (same path as {!create_shared}) over the checkpointed edge array. *)

val rebuild :
  t ->
  n:int ->
  edges:(int * int) array ->
  targets:((int * int) Wpinq_core.Flow.t -> Wpinq_core.Flow.Target.t) list ->
  unit
(** In-place {!restore}: swaps a freshly-built engine, graph, and target
    set into [t] (the PRNG is kept — its state is already exact).  Closures
    capturing [t] — the MCMC driver's — see the new state immediately. *)

val rebuild_shared :
  t ->
  n:int ->
  edges:(int * int) array ->
  source:(int * int) Wpinq_core.Plan.t ->
  measured:measured list ->
  unit
(** In-place {!restore_shared} — the checkpoint-rebase path for plan-shared
    fits. *)

val graph : t -> Wpinq_graph.Graph.t
(** A snapshot of the current synthetic graph (public; inspect freely). *)

val edge_array : t -> (int * int) array
(** The current edge array in walk order — what a checkpoint must persist
    (see {!Wpinq_graph.Graph.Mutable.edge_array}). *)

val nodes : t -> int
val rng : t -> Wpinq_prng.Prng.t

val energy : t -> float
(** Current posterior energy [Σ_i ε_i ‖Q_i(A) − m_i‖₁]. *)

val engine : t -> Wpinq_dataflow.Dataflow.Engine.t
(** The underlying engine, for state-size and work statistics (Figure 6). *)

val targets : t -> Wpinq_core.Flow.Target.t list

val replicable : t -> bool
(** Whether this fit can stand up independent replicas for the parallel
    lookahead pool: [true] for plan-reified fits ({!create_shared},
    {!restore_shared}), [false] for fits built from opaque target closures
    (which share measurement state across instances). *)

val step : ?pow:float -> t -> bool
(** A single Metropolis–Hastings step (default [pow] 1.0); returns whether
    the proposal was accepted.  Exposed for fine-grained benchmarking. *)

val audit : ?tolerance:float -> t -> Wpinq_dataflow.Dataflow.Audit.report
(** [audit t] cross-validates the live incremental state two ways: the
    engine's registered self-audit hooks (Join norms, each target's
    maintained distance against its live sink), and a throwaway {e batch
    replica} — a fresh engine fed the current edge array from scratch,
    whose target distances the live ones must match within [tolerance]
    (default [1e-6]).  Read-only, and draws no new noise (every record the
    replica sees is already memoized in the shared measurements), so a
    clean audit leaves the walk bit-identical. *)

val audit_and_recover : ?tolerance:float -> t -> Wpinq_dataflow.Dataflow.Audit.report
(** {!audit}, then — if any cell diverged — {!rebuild}s the fit in place
    from its own edge array (the same deterministic path a checkpoint
    resume takes), so the walk continues from batch truth rather than
    silently corrupted state.  Returns the (pre-recovery) report. *)

val run :
  t ->
  steps:int ->
  ?start:int ->
  ?pow:float ->
  ?refresh_every:int ->
  ?audit_every:int ->
  ?audit_tolerance:float ->
  ?should_stop:(unit -> bool) ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(step:int -> stats:Mcmc.stats -> unit) ->
  ?on_step:(step:int -> energy:float -> unit) ->
  ?jobs:int ->
  ?on_batch:(dispatched:int -> consumed:int -> unit) ->
  ?width:Mcmc.width ->
  ?counters:Mcmc.counters ->
  unit ->
  Mcmc.stats
(** Runs the walk for iterations [start + 1 .. steps] (default [start] 0,
    [pow] 1.0; the paper's experiments use 10⁴).  Incremental target
    distances are refreshed every [refresh_every] steps (default 10⁵) to
    discard floating-point drift.  [audit_every] (default off) runs
    {!audit_and_recover} at that cadence, feeding divergence counts into
    {!Mcmc.stats}.  [should_stop] is the graceful-shutdown poll (see
    {!Mcmc.run}).  [checkpoint_every] / [on_checkpoint] pass through to
    {!Mcmc.run}: the hook may call {!rebuild} on this fit.

    [jobs] selects the walk implementation.  Omitted: the legacy in-place
    serial walk (proposals drawn directly from the fit's rng, evaluated on
    the fit itself).  [Some k] with [k >= 1]: the {e parallel speculative
    lookahead} walk ({!Mcmc.run_lookahead}) over a pool of [k] replica
    engines, one per domain when [k > 1] — requires a {!replicable} fit
    (raises [Invalid_argument] otherwise).  The pool is torn down (worker
    domains joined) on every exit path, including exceptions raised by
    hooks or pool construction.  The realized chain under [Some k] is
    bit-identical for every [k] {e and} every [width] policy (the
    per-step split-stream discipline; default width [Fixed jobs]), but
    differs from the legacy [None] walk, whose rng-draw order is
    data-dependent; checkpoints record which discipline a chain uses.
    [on_batch] (lookahead only) reports each batch's dispatched width and
    consumed prefix, for throughput/efficiency accounting.  [counters]
    (lookahead only) accumulates per-phase wall time — dispatch/eval in
    the pool, resolve/commit in the driver — and the realized width
    trajectory. *)
