module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Plan = Wpinq_core.Plan
module Flow = Wpinq_core.Flow
module Measurement = Wpinq_core.Measurement
module Gridpath = Wpinq_postprocess.Gridpath
module Isotonic = Wpinq_postprocess.Isotonic
module Persist = Wpinq_persist.Persist
module Codec = Persist.Codec
module Qb = Wpinq_queries.Queries.Make (Batch)
module Qf = Wpinq_queries.Queries.Make (Flow)
module Qp = Wpinq_queries.Queries.Make (Plan)

type seed_measurements = {
  epsilon : float;
  deg_seq : int Measurement.t;
  ccdf : int Measurement.t;
  node_count : unit Measurement.t;
}

let measure_seed ~rng ~epsilon ~sym =
  {
    epsilon;
    deg_seq = Batch.noisy_count ~rng ~epsilon (Qb.degree_sequence sym);
    ccdf = Batch.noisy_count ~rng ~epsilon (Qb.degree_ccdf sym);
    node_count = Batch.noisy_count ~rng ~epsilon (Qb.node_count sym);
  }

(* Estimated number of vertices: the node-count query weighs each vertex
   0.5.  Clamped away from degenerate values so the fit always has room. *)
let estimated_nodes ms =
  let nc = 2.0 *. Measurement.value ms.node_count () in
  max 2 (int_of_float (Float.round nc))

(* The noisy CCDF continues past the true dmax as pure noise; cut it where
   sustained counts drop below a few noise standard deviations (the analyst
   judgment the paper describes). *)
let estimated_dmax ms ~bound =
  let threshold = Float.max 2.0 (2.0 /. ms.epsilon) in
  let last = ref 0 in
  for y = 0 to bound - 1 do
    if Measurement.value ms.ccdf y >= threshold then last := y
  done;
  min bound (!last + 3)

let fit_degrees ms =
  let x_max = estimated_nodes ms in
  let y_max = max 1 (estimated_dmax ms ~bound:x_max) in
  let v = Array.init x_max (fun x -> Measurement.value ms.deg_seq x) in
  let h = Array.init y_max (fun y -> Measurement.value ms.ccdf y) in
  Gridpath.fit ~v ~h

let fit_degrees_pava_only ms =
  let x_max = estimated_nodes ms in
  let v = Array.init x_max (fun x -> Measurement.value ms.deg_seq x) in
  let fitted = Isotonic.non_increasing v in
  Array.map (fun f -> max 0 (int_of_float (Float.round f))) fitted

let seed_graph ~rng ~degrees = Gen.configuration_model ~degrees rng

type query = Tbd of int | Tbi | Sbi | Jdd

(* One module-level source leaf for every workflow-built plan.  Sources are
   deliberately not hash-consed (a leaf is a binding point), so sharing the
   canonical DAG across calls requires sharing the leaf: with one leaf,
   [Qp.tbd shared_src] is the *same node* in every fit, tenant admission,
   and stream epoch of the process, and [Plan.optimize]'s cache answers
   every re-submission after the first.  Bindings are per-lowering-context,
   so concurrent fits over different data never collide on the leaf. *)
let shared_src = Plan.source ~name:"sym" ()

(* The per-query privacy cost is *derived*: reify the query and count
   root-to-source paths — the multiplier sequential composition applies to
   epsilon.  (The historical hand-verified constants, 9/4/6/4, are what
   this computes; the property tests pin that.) *)
let query_uses q =
  let uses (p : _ Plan.t) = Plan.uses p in
  match q with
  | Tbd bucket -> uses (Qp.tbd ~bucket shared_src)
  | Tbi -> uses (Qp.tbi shared_src)
  | Sbi -> uses (Qp.sbi shared_src)
  | Jdd -> uses (Qp.jdd shared_src)

let query_cost q eps = float_of_int (query_uses q) *. eps

type query_measurement =
  | Mtbd of int * (int * int * int) Measurement.t
  | Mtbi of unit Measurement.t
  | Msbi of unit Measurement.t
  | Mjdd of (int * int) Measurement.t

(* Measures several queries through one shared plan-lowering context: the
   pipelines are reified over the shared source, *optimized* (exact rules —
   uses preserved, so the budget debit per query still equals
   [Plan.uses q × epsilon]; released values preserved bit for bit), and
   lowered into Batch where shared prefixes become shared lazy datasets
   (evaluated once).  Each root is aggregated separately. *)
let measure_queries ~rng ~epsilon ~sym qs =
  let ctx = Batch.Plans.create () in
  Batch.Plans.bind ctx shared_src sym;
  let count p = Batch.noisy_count ~rng ~epsilon (Batch.Plans.lower ctx (Plan.optimize p)) in
  List.map
    (function
      | Tbd bucket -> Mtbd (bucket, count (Qp.tbd ~bucket shared_src))
      | Tbi -> Mtbi (count (Qp.tbi shared_src))
      | Sbi -> Msbi (count (Qp.sbi shared_src))
      | Jdd -> Mjdd (count (Qp.jdd shared_src)))
    qs

let measure_query ~rng ~epsilon ~sym q =
  match measure_queries ~rng ~epsilon ~sym [ q ] with [ qm ] -> qm | _ -> assert false

let target_of_query qm sym =
  match qm with
  | Mtbd (bucket, m) -> Flow.Target.create (Qf.tbd ~bucket sym) m
  | Mtbi m -> Flow.Target.create (Qf.tbi sym) m
  | Msbi m -> Flow.Target.create (Qf.sbi sym) m
  | Mjdd m -> Flow.Target.create (Qf.jdd sym) m

(* The shared source + the measured plans over it, optimized, ready for
   [Fit.create_shared]/[restore_shared]/[rebuild_shared].  Hash-consing
   makes the per-query plans share their common prefixes automatically
   (degrees between JDD and TbD, paths2 and the path-degree join between
   TbD and SbD, ...), and [Plan.optimize] both canonicalizes the DAG
   (deterministically — a resume re-derives the identical pipeline) and
   answers repeat submissions from its cache. *)
let shared_measured qms =
  let measured =
    List.map
      (function
        | Mtbd (bucket, m) -> Fit.Measured (Plan.optimize (Qp.tbd ~bucket shared_src), m)
        | Mtbi m -> Fit.Measured (Plan.optimize (Qp.tbi shared_src), m)
        | Msbi m -> Fit.Measured (Plan.optimize (Qp.sbi shared_src), m)
        | Mjdd m -> Fit.Measured (Plan.optimize (Qp.jdd shared_src), m))
      qms
  in
  (shared_src, measured)

let plan_hashes measured =
  List.map (fun (Fit.Measured (p, _)) -> Plan.canonical_hash p) measured

type trace_point = { step : int; triangles : int; assortativity : float; energy : float }

type result = {
  synthetic : Graph.t;
  seed : Graph.t;
  stats : Mcmc.stats;
  trace : trace_point list;
  total_epsilon : float;
}

let trace_of ~step ~energy g =
  { step; triangles = Graph.triangle_count g; assortativity = Graph.assortativity g; energy }

(* ---- Checkpoint format ----------------------------------------------- *)

type checkpoint_sink = Single of string | Store of Persist.Store.t

type checkpoint_spec = { every : int; sink : checkpoint_sink }

exception Corrupt_checkpoint of string

let ckpt_magic = "wpinq-checkpoint\n"

(* Version 7: the plan optimizer.  A snapshot now records the canonical
   hash of each optimized fit plan, in target order; a resume re-reifies
   and re-optimizes the plans from [ck_qms] and *verifies* the hashes
   match before continuing — catching a changed optimizer or query
   definition that would silently walk a different dataflow than the
   checkpointed chain.  (Version 6 added the stream position: epoch index
   and ingest-journal sequence, [-1]/[0] for non-stream runs.  Version 5
   introduced the per-step split-stream discipline of the parallel
   speculative lookahead and [ck_jobs].)  Older snapshots are refused by
   the version gate. *)
let ckpt_version = 7

(* Everything a resumed chain needs, and nothing protected: the released
   query measurement (noisy counts + noise-stream cursor), the public seed
   and current synthetic graphs, the walk PRNG cursor, the budget audit
   log, and the run bookkeeping.  The secret graph and the seed-phase
   measurements were consumed before the walk began and are never
   written. *)
type ck = {
  ck_epsilon : float;
  ck_pow : float;
  ck_steps : int; (* total steps requested for the whole run *)
  ck_trace_every : int;
  ck_refresh_every : int; (* incremental-drift refresh cadence *)
  ck_every : int; (* checkpoint cadence *)
  ck_audit_every : int; (* self-audit cadence; 0 = off *)
  ck_audit_tolerance : float;
  ck_jobs : int;
      (* lookahead width the run was started with.  Informational default
         for a resume: the realized chain is invariant to the width, so a
         resume may override it freely without breaking bit-identity. *)
  ck_epoch : int; (* re-release epoch index; -1 for non-stream runs *)
  ck_stream_seq : int; (* ingest-journal sequence consumed by this epoch *)
  ck_step : int; (* completed steps at snapshot time *)
  ck_budget : Budget.t;
  ck_seed : Graph.t;
  ck_n : int;
  ck_edges : (int * int) array; (* synthetic graph, walk order *)
  ck_rng : string;
  ck_accepted : int;
  ck_invalid : int;
  ck_nonfinite : int;
  ck_audits : int;
  ck_divergences : int;
  ck_initial_energy : float;
  ck_trace : trace_point list; (* newest first, as accumulated *)
  ck_qms : query_measurement list; (* fit targets, in target order *)
  ck_plan_hashes : string list;
      (* canonical hash of each optimized fit plan, in target order —
         verified against the re-derived plans on every resume/rebase *)
}

let write_edge buf (u, v) =
  Codec.write_int buf u;
  Codec.write_int buf v

let read_edge r =
  let u = Codec.read_int r in
  let v = Codec.read_int r in
  (u, v)

let write_graph buf g =
  Codec.write_int buf (Graph.n g);
  Codec.write_list write_edge buf (Graph.edges g)

let read_graph r =
  let n = Codec.read_int r in
  let edges = Codec.read_list read_edge r in
  Graph.of_edges ~n edges

let write_trace_point buf p =
  Codec.write_int buf p.step;
  Codec.write_int buf p.triangles;
  Codec.write_float buf p.assortativity;
  Codec.write_float buf p.energy

let read_trace_point r =
  let step = Codec.read_int r in
  let triangles = Codec.read_int r in
  let assortativity = Codec.read_float r in
  let energy = Codec.read_float r in
  { step; triangles; assortativity; energy }

let write_qm buf = function
  | Mtbd (bucket, m) ->
      Codec.write_int buf 0;
      Codec.write_int buf bucket;
      Measurement.save
        (fun buf (a, b, c) ->
          Codec.write_int buf a;
          Codec.write_int buf b;
          Codec.write_int buf c)
        m buf
  | Mtbi m ->
      Codec.write_int buf 1;
      Measurement.save (fun _ () -> ()) m buf
  | Msbi m ->
      Codec.write_int buf 2;
      Measurement.save (fun _ () -> ()) m buf
  | Mjdd m ->
      Codec.write_int buf 3;
      Measurement.save write_edge m buf

let read_qm r =
  match Codec.read_int r with
  | 0 ->
      let bucket = Codec.read_int r in
      let m =
        Measurement.load
          (fun r ->
            let a = Codec.read_int r in
            let b = Codec.read_int r in
            let c = Codec.read_int r in
            (a, b, c))
          r
      in
      Mtbd (bucket, m)
  | 1 -> Mtbi (Measurement.load (fun _ -> ()) r)
  | 2 -> Msbi (Measurement.load (fun _ -> ()) r)
  | 3 -> Mjdd (Measurement.load read_edge r)
  | tag -> raise (Codec.Decode_error (Printf.sprintf "unknown query measurement tag %d" tag))

let encode_ck ck =
  let buf = Buffer.create 4096 in
  Codec.write_float buf ck.ck_epsilon;
  Codec.write_float buf ck.ck_pow;
  Codec.write_int buf ck.ck_steps;
  Codec.write_int buf ck.ck_trace_every;
  Codec.write_int buf ck.ck_refresh_every;
  Codec.write_int buf ck.ck_every;
  Codec.write_int buf ck.ck_audit_every;
  Codec.write_float buf ck.ck_audit_tolerance;
  Codec.write_int buf ck.ck_jobs;
  Codec.write_int buf ck.ck_epoch;
  Codec.write_int buf ck.ck_stream_seq;
  Codec.write_int buf ck.ck_step;
  Budget.save ck.ck_budget buf;
  write_graph buf ck.ck_seed;
  Codec.write_int buf ck.ck_n;
  Codec.write_array write_edge buf ck.ck_edges;
  Codec.write_string buf ck.ck_rng;
  Codec.write_int buf ck.ck_accepted;
  Codec.write_int buf ck.ck_invalid;
  Codec.write_int buf ck.ck_nonfinite;
  Codec.write_int buf ck.ck_audits;
  Codec.write_int buf ck.ck_divergences;
  Codec.write_float buf ck.ck_initial_energy;
  Codec.write_list write_trace_point buf ck.ck_trace;
  Codec.write_list write_qm buf ck.ck_qms;
  Codec.write_list Codec.write_string buf ck.ck_plan_hashes;
  Buffer.contents buf

let decode_ck payload =
  let r = Codec.reader payload in
  let ck_epsilon = Codec.read_float r in
  let ck_pow = Codec.read_float r in
  let ck_steps = Codec.read_int r in
  let ck_trace_every = Codec.read_int r in
  let ck_refresh_every = Codec.read_int r in
  let ck_every = Codec.read_int r in
  let ck_audit_every = Codec.read_int r in
  let ck_audit_tolerance = Codec.read_float r in
  let ck_jobs = Codec.read_int r in
  if ck_jobs < 1 then
    raise (Codec.Decode_error "checkpoint: jobs must be at least 1");
  let ck_epoch = Codec.read_int r in
  let ck_stream_seq = Codec.read_int r in
  if ck_stream_seq < 0 then
    raise (Codec.Decode_error "checkpoint: negative stream sequence");
  let ck_step = Codec.read_int r in
  let ck_budget = Budget.load r in
  let ck_seed = read_graph r in
  let ck_n = Codec.read_int r in
  let ck_edges = Codec.read_array read_edge r in
  let ck_rng = Codec.read_string r in
  let ck_accepted = Codec.read_int r in
  let ck_invalid = Codec.read_int r in
  let ck_nonfinite = Codec.read_int r in
  let ck_audits = Codec.read_int r in
  let ck_divergences = Codec.read_int r in
  let ck_initial_energy = Codec.read_float r in
  let ck_trace = Codec.read_list read_trace_point r in
  let ck_qms = Codec.read_list read_qm r in
  let ck_plan_hashes = Codec.read_list Codec.read_string r in
  if List.length ck_plan_hashes <> List.length ck_qms then
    raise
      (Codec.Decode_error
         (Printf.sprintf "checkpoint: %d plan hashes for %d fit targets"
            (List.length ck_plan_hashes) (List.length ck_qms)));
  {
    ck_epsilon;
    ck_pow;
    ck_steps;
    ck_trace_every;
    ck_refresh_every;
    ck_every;
    ck_audit_every;
    ck_audit_tolerance;
    ck_jobs;
    ck_epoch;
    ck_stream_seq;
    ck_step;
    ck_budget;
    ck_seed;
    ck_n;
    ck_edges;
    ck_rng;
    ck_accepted;
    ck_invalid;
    ck_nonfinite;
    ck_audits;
    ck_divergences;
    ck_initial_energy;
    ck_trace;
    ck_qms;
    ck_plan_hashes;
  }

(* Rebuilds a checkpoint's fit plans and verifies they canonicalize to the
   hashes the snapshot recorded.  A mismatch means this binary would walk
   a different dataflow than the checkpointed chain — a changed rewrite
   rule, query definition, or estimate — so resuming would silently break
   the bit-identical-retrace guarantee; refuse instead. *)
let shared_measured_verified ~origin ck =
  let source, measured = shared_measured ck.ck_qms in
  let got = plan_hashes measured in
  if got <> ck.ck_plan_hashes then
    raise
      (Corrupt_checkpoint
         (Printf.sprintf
            "%s: optimized plan hashes diverge from checkpoint (recorded %s; re-derived %s) \
             — the optimizer or query definitions changed since the snapshot was written"
            origin
            (String.concat "," ck.ck_plan_hashes)
            (String.concat "," got)));
  (source, measured)

(* ---- The fitting driver ---------------------------------------------- *)

(* Combine the caller's stop predicate and an optional wall-clock deadline
   into one [should_stop] poll.  The deadline is made absolute here, at run
   (not construction) start; the clock syscall is only paid every 64th
   poll, which bounds the overrun to 64 steps past the deadline. *)
let combined_stop ?stop ?deadline () =
  match (stop, deadline) with
  | None, None -> None
  | _ ->
      let absolute = Option.map (fun d -> Unix.gettimeofday () +. d) deadline in
      let polls = ref 0 in
      Some
        (fun () ->
          (match stop with Some f -> f () | None -> false)
          ||
          match absolute with
          | None -> false
          | Some t ->
              incr polls;
              !polls land 63 = 0 && Unix.gettimeofday () >= t)

(* Continue the walk described by [ck] on [fit] (whose state corresponds to
   [ck.ck_step] completed steps).  When [sink] is set, a snapshot is
   written every [ck.ck_every] steps — and, crucially, the live state is
   then thrown away and rebuilt from the snapshot's own bytes.  This
   "rebase" makes the post-checkpoint state a pure function of the
   checkpoint file, so a run killed and resumed from that file retraces the
   uninterrupted run bit for bit.  A stop request ([should_stop], from a
   signal or a deadline) additionally writes one final snapshot of the
   stopped state, so the partial run is immediately resumable. *)
let continue_fit ?(initial_snapshot = false) ~fit ~rng ~ck ~sink ?should_stop ?width
    ?counters () =
  let trace = ref ck.ck_trace in
  (* The measurements attached to the live fit: each rebase swaps them for
     the copies decoded from the snapshot's own bytes, and the walk keeps
     drawing lazy noise into whichever copies are live.  Snapshots must
     serialize {e these} — the base [ck]'s list goes stale at the first
     rebase, and persisting it would rewind the noise streams, so a resumed
     run and the live run would rebase onto different bytes. *)
  let live_qms = ref ck.ck_qms in
  let on_step ~step ~energy =
    if step mod ck.ck_trace_every = 0 then
      trace := trace_of ~step ~energy (Fit.graph fit) :: !trace
  in
  let snapshot ~step ~(interim : Mcmc.stats) =
    {
      ck with
      ck_step = step;
      ck_edges = Fit.edge_array fit;
      ck_rng = Prng.save rng;
      ck_accepted = ck.ck_accepted + interim.Mcmc.accepted;
      ck_invalid = ck.ck_invalid + interim.Mcmc.invalid;
      ck_nonfinite = ck.ck_nonfinite + interim.Mcmc.refreshed_on_nonfinite;
      ck_audits = ck.ck_audits + interim.Mcmc.audits;
      ck_divergences = ck.ck_divergences + interim.Mcmc.audit_divergences;
      ck_initial_energy =
        (if ck.ck_step = 0 then interim.Mcmc.initial_energy else ck.ck_initial_energy);
      ck_trace = !trace;
      ck_qms = !live_qms;
    }
  in
  let write_snapshot sink ck' =
    let payload = encode_ck ck' in
    (match sink with
    | Single path -> Persist.File.save ~path ~magic:ckpt_magic ~version:ckpt_version payload
    | Store store ->
        ignore
          (Persist.Store.save store ~step:ck'.ck_step ~magic:ckpt_magic ~version:ckpt_version
             payload));
    payload
  in
  (* Rebase: re-derive the continuation state from the snapshot bytes so
     this run and any future resume from the file continue from literally
     the same state. *)
  let rebase payload =
    let ck2 = decode_ck payload in
    let source, measured = shared_measured_verified ~origin:"rebase" ck2 in
    Fit.rebuild_shared fit ~n:ck2.ck_n ~edges:ck2.ck_edges ~source ~measured;
    live_qms := ck2.ck_qms;
    trace := ck2.ck_trace
  in
  (* A stream epoch snapshots its state *before* the first step: the
     measurement noise is spent the moment it is drawn, so the epoch must
     be resumable from a state that already contains it — a crash after
     measurement then re-reads the released values instead of re-drawing
     (same bytes either way, since the epoch rng is a pure function of
     (seed, epoch), but the snapshot makes it durable without re-touching
     the secret).  Rebasing onto the step-0 snapshot keeps the
     continuation a pure function of the file, exactly as at cadence
     checkpoints. *)
  (match sink with
  | Some sink when initial_snapshot ->
      let e = Fit.energy fit in
      let interim =
        {
          Mcmc.steps = 0;
          accepted = 0;
          invalid = 0;
          refreshed_on_nonfinite = 0;
          audits = 0;
          audit_divergences = 0;
          interrupted = false;
          initial_energy = e;
          final_energy = e;
        }
      in
      rebase (write_snapshot sink (snapshot ~step:ck.ck_step ~interim))
  | _ -> ());
  let checkpoint_every, on_checkpoint =
    match sink with
    | None -> (None, None)
    | Some sink ->
        ( Some ck.ck_every,
          Some
            (fun ~step ~stats:(interim : Mcmc.stats) ->
              rebase (write_snapshot sink (snapshot ~step ~interim))) )
  in
  let seg =
    (* Always the lookahead walk (jobs >= 1), so the realized chain — and
       the checkpoint bytes — use one rng discipline regardless of width,
       and a run checkpointed at one width resumes bit-identically at
       another.  [width] (the batch-width policy) and [counters] are
       runtime tuning/observability only and are deliberately {e not}
       persisted: the chain is invariant to both. *)
    Fit.run fit ~steps:ck.ck_steps ~start:ck.ck_step ~pow:ck.ck_pow
      ~refresh_every:ck.ck_refresh_every ~audit_every:ck.ck_audit_every
      ~audit_tolerance:ck.ck_audit_tolerance ?should_stop ?checkpoint_every ?on_checkpoint
      ~on_step ~jobs:ck.ck_jobs ?width ?counters ()
  in
  let completed = ck.ck_step + seg.Mcmc.steps in
  (match (seg.Mcmc.interrupted, sink) with
  | true, Some sink ->
      (* Graceful shutdown: persist the stopped state so resuming loses
         nothing.  At a cadence-aligned stop this re-encodes the state the
         last rebase produced, so the file is byte-identical to the one
         already on disk. *)
      ignore (write_snapshot sink (snapshot ~step:completed ~interim:seg))
  | _ -> ());
  let stats =
    {
      Mcmc.steps = completed;
      accepted = ck.ck_accepted + seg.Mcmc.accepted;
      invalid = ck.ck_invalid + seg.Mcmc.invalid;
      refreshed_on_nonfinite = ck.ck_nonfinite + seg.Mcmc.refreshed_on_nonfinite;
      audits = ck.ck_audits + seg.Mcmc.audits;
      audit_divergences = ck.ck_divergences + seg.Mcmc.audit_divergences;
      interrupted = seg.Mcmc.interrupted;
      initial_energy =
        (if ck.ck_step = 0 then seg.Mcmc.initial_energy else ck.ck_initial_energy);
      final_energy = seg.Mcmc.final_energy;
    }
  in
  {
    synthetic = Fit.graph fit;
    seed = ck.ck_seed;
    stats;
    trace = List.rev !trace;
    total_epsilon = Budget.spent ck.ck_budget;
  }

let synthesize ?(pow = 10_000.0) ?(steps = 100_000) ?trace_every
    ?(refresh_every = 100_000) ?(audit_every = 0) ?(audit_tolerance = 1e-6) ?(jobs = 1)
    ?width ?counters ?checkpoint ?stop ?deadline ?(queries = []) ~rng ~epsilon ~query ~secret
    () =
  let trace_every =
    match trace_every with Some t -> max 1 t | None -> max 1 (steps / 20)
  in
  (* The fit's target list: the legacy single [query] (if any) followed by
     any extra [queries], measured and fitted together over shared plans. *)
  let qs = Option.to_list query @ queries in
  let total_budget =
    (3.0 *. epsilon) +. List.fold_left (fun acc q -> acc +. query_cost q epsilon) 0.0 qs
  in
  let budget = Budget.create ~name:"secret-graph" total_budget in
  let sym = Batch.source_records ~budget (Graph.directed_edges secret) in
  (* Phase 0/1: measure, discard the secret, build the seed. *)
  let seed_ms = measure_seed ~rng ~epsilon ~sym in
  let degrees = fit_degrees seed_ms in
  let seed = seed_graph ~rng ~degrees in
  match qs with
  | [] ->
      {
        synthetic = seed;
        seed;
        stats =
          {
            Mcmc.steps = 0;
            accepted = 0;
            invalid = 0;
            refreshed_on_nonfinite = 0;
            audits = 0;
            audit_divergences = 0;
            interrupted = false;
            initial_energy = 0.0;
            final_energy = 0.0;
          };
        trace = [ trace_of ~step:0 ~energy:0.0 seed ];
        total_epsilon = Budget.spent budget;
      }
  | qs ->
      let qms = measure_queries ~rng ~epsilon ~sym qs in
      (* Phase 2: fit the seed to the query measurements, all lowered
         through one shared plan context. *)
      let source, measured = shared_measured qms in
      let fit = Fit.create_shared ~rng ~seed_graph:seed ~source ~measured () in
      let ck0 =
        {
          ck_epsilon = epsilon;
          ck_pow = pow;
          ck_steps = steps;
          ck_trace_every = trace_every;
          ck_refresh_every = max 1 refresh_every;
          ck_every = (match checkpoint with Some c -> max 1 c.every | None -> 0);
          ck_audit_every = max 0 audit_every;
          ck_audit_tolerance = audit_tolerance;
          ck_jobs = max 1 jobs;
          ck_epoch = -1;
          ck_stream_seq = 0;
          ck_step = 0;
          ck_budget = budget;
          ck_seed = seed;
          ck_n = Graph.n seed;
          ck_edges = [||] (* written fresh at each checkpoint *);
          ck_rng = "";
          ck_accepted = 0;
          ck_invalid = 0;
          ck_nonfinite = 0;
          ck_audits = 0;
          ck_divergences = 0;
          ck_initial_energy = 0.0;
          ck_trace = [ trace_of ~step:0 ~energy:(Fit.energy fit) seed ];
          ck_qms = qms;
          ck_plan_hashes = plan_hashes measured;
        }
      in
      let sink = match checkpoint with Some c -> Some c.sink | None -> None in
      continue_fit ~fit ~rng ~ck:ck0 ~sink
        ?should_stop:(combined_stop ?stop ?deadline ())
        ?width ?counters ()

let load_ck path =
  match Persist.File.load ~path ~magic:ckpt_magic ~version:ckpt_version with
  | Error e ->
      raise
        (Corrupt_checkpoint
           (Printf.sprintf "%s: container layer: %s" path (Persist.File.error_to_string e)))
  | Ok payload -> (
      try decode_ck payload
      with Codec.Decode_error msg ->
        raise (Corrupt_checkpoint (Printf.sprintf "%s: decode layer: %s" path msg)))

let resume_fit ?jobs ?width ?counters ~ck ~sink ?should_stop () =
  (* The realized chain is invariant to the lookahead width, so a resume may
     run wider (or narrower) than the original — or under a different width
     policy — without breaking the bit-identical retrace; the jobs override
     is also recorded in subsequent snapshots. *)
  let ck = match jobs with Some j -> { ck with ck_jobs = max 1 j } | None -> ck in
  let rng = Prng.restore ck.ck_rng in
  let source, measured = shared_measured_verified ~origin:"resume" ck in
  let fit = Fit.restore_shared ~rng ~n:ck.ck_n ~edges:ck.ck_edges ~source ~measured () in
  continue_fit ~fit ~rng ~ck ~sink ?should_stop ?width ?counters ()

let resume ?stop ?deadline ?jobs ?width ?counters ~path () =
  let ck = load_ck path in
  resume_fit ?jobs ?width ?counters ~ck ~sink:(Some (Single path))
    ?should_stop:(combined_stop ?stop ?deadline ())
    ()

let resume_latest ?(log = fun _ -> ()) ?stop ?deadline ?jobs ?width ?counters ~store () =
  let decode payload =
    match decode_ck payload with
    | ck -> Ok ck
    | exception Codec.Decode_error msg -> Error msg
  in
  let found, rejected =
    Persist.Store.load_latest store ~magic:ckpt_magic ~version:ckpt_version ~decode
  in
  List.iter
    (fun { Persist.Store.path; reason } ->
      log (Printf.sprintf "rejected checkpoint generation %s: %s" path reason))
    rejected;
  match found with
  | Some (ck, step, path) ->
      log (Printf.sprintf "resuming from generation %s (step %d)" path step);
      resume_fit ?jobs ?width ?counters ~ck ~sink:(Some (Store store))
        ?should_stop:(combined_stop ?stop ?deadline ())
        ()
  | None ->
      let detail =
        match rejected with
        | [] -> "no checkpoint generations present"
        | rs ->
            Printf.sprintf "tried %d generation(s), all rejected: %s" (List.length rs)
              (String.concat "; "
                 (List.map (fun { Persist.Store.path; reason } -> path ^ " (" ^ reason ^ ")") rs))
      in
      raise
        (Corrupt_checkpoint
           (Printf.sprintf "no valid checkpoint generation in %s: %s" (Persist.Store.dir store)
              detail))

let checkpoint_step path = (load_ck path).ck_step

let checkpoint_stream path =
  let ck = load_ck path in
  (ck.ck_epoch, ck.ck_stream_seq)

let checkpoint_epsilon path = Budget.spent (load_ck path).ck_budget

(* ---- Continual observation: one re-release epoch ---------------------- *)

(* One warm-started re-release epoch of the continual-observation stream.
   The caller (the stream supervisor) has already measured this epoch's
   queries against the evolved secret under the epoch's budget allowance;
   this runs the fit from [warm] — the previous epoch's synthetic graph
   adapted to the new degree sequence — instead of a cold
   configuration-model seed.  When a checkpoint sink is given, a step-0
   snapshot is written (and rebased onto) before the walk, so a crash at
   any point after measurement resumes from durable state; every snapshot
   records [epoch] and [stream_seq], landing a killed supervisor back
   mid-stream bit-identically. *)
let fit_stream ?(pow = 10_000.0) ?(steps = 100_000) ?trace_every ?(refresh_every = 100_000)
    ?(audit_every = 0) ?(audit_tolerance = 1e-6) ?(jobs = 1) ?width ?counters ?checkpoint
    ?stop ?deadline ~rng ~budget ~epsilon ~warm ~qms ~epoch ~stream_seq () =
  let trace_every =
    match trace_every with Some t -> max 1 t | None -> max 1 (steps / 20)
  in
  let source, measured = shared_measured qms in
  let fit = Fit.create_shared ~rng ~seed_graph:warm ~source ~measured () in
  let ck0 =
    {
      ck_epsilon = epsilon;
      ck_pow = pow;
      ck_steps = steps;
      ck_trace_every = trace_every;
      ck_refresh_every = max 1 refresh_every;
      ck_every = (match checkpoint with Some c -> max 1 c.every | None -> 0);
      ck_audit_every = max 0 audit_every;
      ck_audit_tolerance = audit_tolerance;
      ck_jobs = max 1 jobs;
      ck_epoch = epoch;
      ck_stream_seq = stream_seq;
      ck_step = 0;
      ck_budget = budget;
      ck_seed = warm;
      ck_n = Graph.n warm;
      ck_edges = [||];
      ck_rng = "";
      ck_accepted = 0;
      ck_invalid = 0;
      ck_nonfinite = 0;
      ck_audits = 0;
      ck_divergences = 0;
      ck_initial_energy = 0.0;
      ck_trace = [ trace_of ~step:0 ~energy:(Fit.energy fit) warm ];
      ck_qms = qms;
      ck_plan_hashes = plan_hashes measured;
    }
  in
  let sink = match checkpoint with Some c -> Some c.sink | None -> None in
  continue_fit
    ~initial_snapshot:(Option.is_some sink)
    ~fit ~rng ~ck:ck0 ~sink
    ?should_stop:(combined_stop ?stop ?deadline ())
    ?width ?counters ()
