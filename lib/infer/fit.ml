module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Plan = Wpinq_core.Plan
module Flow = Wpinq_core.Flow
module Measurement = Wpinq_core.Measurement
module Dataflow = Wpinq_dataflow.Dataflow

type measured = Measured : 'a Plan.t * 'a Measurement.t -> measured

(* The engine-side fields are mutable so a checkpoint rebase can swap in a
   state rebuilt from the serialized snapshot while the MCMC driver's
   closures (which capture [t]) keep working. *)
type t = {
  rng : Prng.t;
  mutable engine : Dataflow.Engine.t;
  mutable handle : (int * int) Flow.handle;
  mutable graph : Graph.Mutable.t;
  mutable targets : Flow.Target.t list;
  (* The combined target-builder closure is kept so the fit can rebuild
     itself (audit recovery) or stand up a throwaway batch replica (audit
     cross-validation) without the caller re-supplying it.  It builds the
     whole target list from one synthetic input, so a plan-shared fit
     rebuilds with the same sharing every time. *)
  mutable builder : (int * int) Flow.t -> Flow.Target.t list;
  mutable energy : float;
}

(* Every invocation creates a fresh lowering context over the input's
   engine, so create / restore / rebuild all reconstruct the same shared
   DAG — the determinism checkpoint resume depends on. *)
let plan_builder ~source ~measured sym =
  let ctx = Flow.Plans.create (Dataflow.engine_of (Flow.node sym)) in
  Flow.Plans.bind ctx source sym;
  List.map (fun (Measured (p, m)) -> Flow.Target.of_plan ctx p m) measured

let create_multi ~rng ~seed_graph ~builder () =
  let engine = Dataflow.Engine.create () in
  let handle, sym = Flow.input engine in
  (* Targets attach before any data flows, so their initial distances
     account for every observed record. *)
  let built = builder sym in
  Flow.feed handle (List.map (fun e -> (e, 1.0)) (Graph.directed_edges seed_graph));
  let t =
    {
      rng;
      engine;
      handle;
      graph = Graph.Mutable.of_graph seed_graph;
      targets = built;
      builder;
      energy = 0.0;
    }
  in
  t.energy <- Flow.Target.energy built;
  t

let create ~rng ~seed_graph ~targets () =
  create_multi ~rng ~seed_graph ~builder:(fun sym -> List.map (fun b -> b sym) targets) ()

let create_shared ~rng ~seed_graph ~source ~measured () =
  create_multi ~rng ~seed_graph ~builder:(plan_builder ~source ~measured) ()

(* Engine state rebuilt from an explicit, order-significant edge array: the
   shared deterministic path under [restore] (resume from a checkpoint
   file) and [rebuild] (in-place rebase at a checkpoint boundary).  Both
   feed the symmetric records in edge-array order, so a resumed chain and a
   live rebased chain compute bit-identical energies. *)
let attach ~builder mg =
  let engine = Dataflow.Engine.create () in
  let handle, sym = Flow.input engine in
  let built = builder sym in
  let records =
    List.concat_map
      (fun (u, v) -> [ ((u, v), 1.0); ((v, u), 1.0) ])
      (Array.to_list (Graph.Mutable.edge_array mg))
  in
  Flow.feed handle records;
  (engine, handle, built)

let restore_multi ~rng ~n ~edges ~builder () =
  let mg = Graph.Mutable.of_edge_array ~n edges in
  let engine, handle, built = attach ~builder mg in
  {
    rng;
    engine;
    handle;
    graph = mg;
    targets = built;
    builder;
    energy = Flow.Target.energy built;
  }

let restore ~rng ~n ~edges ~targets () =
  restore_multi ~rng ~n ~edges ~builder:(fun sym -> List.map (fun b -> b sym) targets) ()

let restore_shared ~rng ~n ~edges ~source ~measured () =
  restore_multi ~rng ~n ~edges ~builder:(plan_builder ~source ~measured) ()

let rebuild_multi t ~n ~edges ~builder =
  let mg = Graph.Mutable.of_edge_array ~n edges in
  let engine, handle, built = attach ~builder mg in
  t.engine <- engine;
  t.handle <- handle;
  t.graph <- mg;
  t.targets <- built;
  t.builder <- builder;
  t.energy <- Flow.Target.energy built

let rebuild t ~n ~edges ~targets =
  rebuild_multi t ~n ~edges ~builder:(fun sym -> List.map (fun b -> b sym) targets)

let rebuild_shared t ~n ~edges ~source ~measured =
  rebuild_multi t ~n ~edges ~builder:(plan_builder ~source ~measured)

let graph t = Graph.Mutable.to_graph t.graph
let edge_array t = Graph.Mutable.edge_array t.graph
let nodes t = Graph.Mutable.n t.graph
let rng t = t.rng
let energy t = t.energy
let engine t = t.engine
let targets t = t.targets

(* A proposal is installed speculatively: the graph edit is applied and the
   swap's 8-record delta propagates through the engine under an undo log.
   Acceptance commits (discards the log); rejection reverts the O(1) graph
   edit and replays the log — O(cells touched), with no second DAG
   propagation and no float round-trip drift. *)
let speculate_swap t swap =
  Dataflow.Engine.begin_speculation t.engine;
  Graph.Mutable.apply t.graph swap;
  Flow.feed t.handle (Graph.Mutable.delta swap)

let commit_swap t = Dataflow.Engine.commit t.engine

let abort_swap t swap =
  Graph.Mutable.apply t.graph (Graph.Mutable.invert swap);
  Dataflow.Engine.abort t.engine

let step ?(pow = 1.0) t =
  match Graph.Mutable.propose_swap t.graph t.rng with
  | None -> false
  | Some swap ->
      speculate_swap t swap;
      let proposed = Flow.Target.energy t.targets in
      let delta = proposed -. t.energy in
      if delta <= 0.0 || Prng.uniform t.rng < exp (-.pow *. delta) then begin
        commit_swap t;
        t.energy <- proposed;
        true
      end
      else begin
        abort_swap t swap;
        false
      end

let refresh t =
  List.iter Flow.Target.recompute t.targets;
  t.energy <- Flow.Target.energy t.targets

(* Cross-validate the live incremental state two ways: the engine's own
   registered hooks (join norms, each target's maintained distance vs. its
   live sink), and a from-scratch batch replica of the whole fit — a
   throwaway engine fed the same edge array, whose target distances the
   live ones must match.  The replica draws no new noise: every record it
   can see, the live engine has already seen, so every observation is
   already memoized in the shared measurements.  Read-only; a clean audit
   leaves the walk bit-identical. *)
let audit ?(tolerance = 1e-6) t =
  let live = Dataflow.Engine.audit ~tolerance t.engine in
  let _, _, batch_targets = attach ~builder:t.builder t.graph in
  let cells = ref live.Dataflow.Audit.cells_checked in
  let divs = ref (List.rev live.Dataflow.Audit.divergences) in
  List.iteri
    (fun i batch ->
      let maintained = Flow.Target.audit_distance (List.nth t.targets i) in
      let recomputed = Flow.Target.audit_distance batch in
      incr cells;
      let cell = Printf.sprintf "target#%d.batch-distance" i in
      match Dataflow.Audit.check ~tolerance ~cell ~maintained ~recomputed with
      | None -> ()
      | Some d -> divs := d :: !divs)
    batch_targets;
  { Dataflow.Audit.cells_checked = !cells; divergences = List.rev !divs }

let audit_and_recover ?tolerance t =
  let report = audit ?tolerance t in
  if report.Dataflow.Audit.divergences <> [] then
    (* Out-of-tolerance drift: quarantine is the caller's report; recovery
       is a full rebuild from the edge array — the same deterministic path
       a checkpoint resume takes — so the walk continues from batch
       truth. *)
    rebuild_multi t ~n:(Graph.Mutable.n t.graph) ~edges:(Graph.Mutable.edge_array t.graph)
      ~builder:t.builder;
  report

let run t ~steps ?start ?(pow = 1.0) ?(refresh_every = 100_000) ?audit_every ?audit_tolerance
    ?should_stop ?checkpoint_every ?on_checkpoint ?on_step () =
  let audit () =
    let report = audit_and_recover ?tolerance:audit_tolerance t in
    List.length report.Dataflow.Audit.divergences
  in
  let stats =
    Mcmc.run ~rng:t.rng ~steps ?start ~pow ~refresh:(fun () -> refresh t) ~refresh_every ~audit
      ?audit_every ?should_stop ?checkpoint_every ?on_checkpoint ?on_step
      ~energy:(fun () -> Flow.Target.energy t.targets)
      ~propose:(fun () -> Graph.Mutable.propose_swap t.graph t.rng)
      ~apply:(fun swap -> speculate_swap t swap)
      ~commit:(fun _ -> commit_swap t)
      ~revert:(fun swap -> abort_swap t swap)
      ()
  in
  t.energy <- stats.Mcmc.final_energy;
  stats
