module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Plan = Wpinq_core.Plan
module Flow = Wpinq_core.Flow
module Measurement = Wpinq_core.Measurement
module Dataflow = Wpinq_dataflow.Dataflow

type measured = Measured : 'a Plan.t * 'a Measurement.t -> measured

(* The engine-side fields are mutable so a checkpoint rebase can swap in a
   state rebuilt from the serialized snapshot while the MCMC driver's
   closures (which capture [t]) keep working. *)
type t = {
  rng : Prng.t;
  mutable engine : Dataflow.Engine.t;
  mutable handle : (int * int) Flow.handle;
  mutable graph : Graph.Mutable.t;
  mutable targets : Flow.Target.t list;
  (* The combined target-builder closure is kept so the fit can rebuild
     itself (audit recovery) or stand up a throwaway batch replica (audit
     cross-validation) without the caller re-supplying it.  It builds the
     whole target list from one synthetic input, so a plan-shared fit
     rebuilds with the same sharing every time. *)
  mutable builder : (int * int) Flow.t -> Flow.Target.t list;
  (* A fresh-builder factory for standing up *independent* replicas: each
     call deep-copies the measurements, so a replica's lazily-drawn noise
     advances its own private cursors.  [None] for fits built from opaque
     target closures, which share measurement state and therefore cannot
     be replicated across domains. *)
  mutable replicate : (unit -> (int * int) Flow.t -> Flow.Target.t list) option;
  mutable energy : float;
}

(* Every invocation creates a fresh lowering context over the input's
   engine, so create / restore / rebuild all reconstruct the same shared
   DAG — the determinism checkpoint resume depends on. *)
let plan_builder ~source ~measured sym =
  let ctx = Flow.Plans.create (Dataflow.engine_of (Flow.node sym)) in
  Flow.Plans.bind ctx source sym;
  List.map (fun (Measured (p, m)) -> Flow.Target.of_plan ctx p m) measured

(* Shared-plan fits are replicable: the factory copies every measurement
   (values + private noise cursor) so each replica draws its own — but
   bit-identical — lazy observations. *)
let plan_replicate ~source ~measured () =
  plan_builder ~source
    ~measured:(List.map (fun (Measured (p, m)) -> Measured (p, Measurement.copy m)) measured)

let create_multi ?replicate ~rng ~seed_graph ~builder () =
  let engine = Dataflow.Engine.create () in
  let handle, sym = Flow.input engine in
  (* Targets attach before any data flows, so their initial distances
     account for every observed record. *)
  let built = builder sym in
  Flow.feed handle (List.map (fun e -> (e, 1.0)) (Graph.directed_edges seed_graph));
  let t =
    {
      rng;
      engine;
      handle;
      graph = Graph.Mutable.of_graph seed_graph;
      targets = built;
      builder;
      replicate;
      energy = 0.0;
    }
  in
  t.energy <- Flow.Target.energy built;
  t

let create ~rng ~seed_graph ~targets () =
  create_multi ~rng ~seed_graph ~builder:(fun sym -> List.map (fun b -> b sym) targets) ()

let create_shared ~rng ~seed_graph ~source ~measured () =
  create_multi
    ~replicate:(plan_replicate ~source ~measured)
    ~rng ~seed_graph
    ~builder:(plan_builder ~source ~measured)
    ()

(* Engine state rebuilt from an explicit, order-significant edge array: the
   shared deterministic path under [restore] (resume from a checkpoint
   file) and [rebuild] (in-place rebase at a checkpoint boundary).  Both
   feed the symmetric records in edge-array order, so a resumed chain and a
   live rebased chain compute bit-identical energies. *)
let attach ~builder mg =
  let engine = Dataflow.Engine.create () in
  let handle, sym = Flow.input engine in
  let built = builder sym in
  let records =
    List.concat_map
      (fun (u, v) -> [ ((u, v), 1.0); ((v, u), 1.0) ])
      (Array.to_list (Graph.Mutable.edge_array mg))
  in
  Flow.feed handle records;
  (engine, handle, built)

let restore_multi ?replicate ~rng ~n ~edges ~builder () =
  let mg = Graph.Mutable.of_edge_array ~n edges in
  let engine, handle, built = attach ~builder mg in
  {
    rng;
    engine;
    handle;
    graph = mg;
    targets = built;
    builder;
    replicate;
    energy = Flow.Target.energy built;
  }

let restore ~rng ~n ~edges ~targets () =
  restore_multi ~rng ~n ~edges ~builder:(fun sym -> List.map (fun b -> b sym) targets) ()

let restore_shared ~rng ~n ~edges ~source ~measured () =
  restore_multi
    ~replicate:(plan_replicate ~source ~measured)
    ~rng ~n ~edges
    ~builder:(plan_builder ~source ~measured)
    ()

let rebuild_multi ?(replicate = None) t ~n ~edges ~builder =
  let mg = Graph.Mutable.of_edge_array ~n edges in
  let engine, handle, built = attach ~builder mg in
  t.engine <- engine;
  t.handle <- handle;
  t.graph <- mg;
  t.targets <- built;
  t.builder <- builder;
  t.replicate <- replicate;
  t.energy <- Flow.Target.energy built

let rebuild t ~n ~edges ~targets =
  rebuild_multi t ~n ~edges ~builder:(fun sym -> List.map (fun b -> b sym) targets)

let rebuild_shared t ~n ~edges ~source ~measured =
  rebuild_multi
    ~replicate:(Some (plan_replicate ~source ~measured))
    t ~n ~edges
    ~builder:(plan_builder ~source ~measured)

let graph t = Graph.Mutable.to_graph t.graph
let edge_array t = Graph.Mutable.edge_array t.graph
let nodes t = Graph.Mutable.n t.graph
let rng t = t.rng
let energy t = t.energy
let engine t = t.engine
let targets t = t.targets
let replicable t = t.replicate <> None

(* A proposal is installed speculatively: the graph edit is applied and the
   swap's 8-record delta propagates through the engine under an undo log.
   Acceptance commits (discards the log); rejection reverts the O(1) graph
   edit and replays the log — O(cells touched), with no second DAG
   propagation and no float round-trip drift. *)
let speculate_swap t swap =
  Dataflow.Engine.begin_speculation t.engine;
  Graph.Mutable.apply t.graph swap;
  Flow.feed t.handle (Graph.Mutable.delta swap)

let commit_swap t = Dataflow.Engine.commit t.engine

let abort_swap t swap =
  Graph.Mutable.apply t.graph (Graph.Mutable.invert swap);
  Dataflow.Engine.abort t.engine

(* Commit a swap that has already won: the same graph edit + 8-record feed
   as [speculate_swap], but propagated {e outside} any speculation, so no
   undo closures are recorded and no commit drain is paid.  The mutation
   path through the engine is byte-identical to speculate-then-commit
   (speculation only adds undo logging around it), which is what lets
   replicas absorb winning swaps as O(delta) committed deltas instead of a
   second full speculative evaluation. *)
let delta_commit t swap ~proposed =
  Graph.Mutable.apply t.graph swap;
  Flow.feed t.handle (Graph.Mutable.delta swap);
  t.energy <- proposed

let step ?(pow = 1.0) t =
  match Graph.Mutable.propose_swap t.graph t.rng with
  | None -> false
  | Some swap ->
      speculate_swap t swap;
      let proposed = Flow.Target.energy t.targets in
      let delta = proposed -. t.energy in
      if delta <= 0.0 || Prng.uniform t.rng < exp (-.pow *. delta) then begin
        commit_swap t;
        t.energy <- proposed;
        true
      end
      else begin
        abort_swap t swap;
        false
      end

let refresh t =
  List.iter Flow.Target.recompute t.targets;
  t.energy <- Flow.Target.energy t.targets

(* Cross-validate the live incremental state two ways: the engine's own
   registered hooks (join norms, each target's maintained distance vs. its
   live sink), and a from-scratch batch replica of the whole fit — a
   throwaway engine fed the same edge array, whose target distances the
   live ones must match.  The replica draws no new noise: every record it
   can see, the live engine has already seen, so every observation is
   already memoized in the shared measurements.  Read-only; a clean audit
   leaves the walk bit-identical. *)
let audit ?(tolerance = 1e-6) t =
  let live = Dataflow.Engine.audit ~tolerance t.engine in
  let _, _, batch_targets = attach ~builder:t.builder t.graph in
  let cells = ref live.Dataflow.Audit.cells_checked in
  let divs = ref (List.rev live.Dataflow.Audit.divergences) in
  List.iteri
    (fun i batch ->
      let maintained = Flow.Target.audit_distance (List.nth t.targets i) in
      let recomputed = Flow.Target.audit_distance batch in
      incr cells;
      let cell = Printf.sprintf "target#%d.batch-distance" i in
      match Dataflow.Audit.check ~tolerance ~cell ~maintained ~recomputed with
      | None -> ()
      | Some d -> divs := d :: !divs)
    batch_targets;
  { Dataflow.Audit.cells_checked = !cells; divergences = List.rev !divs }

let audit_and_recover ?tolerance t =
  let report = audit ?tolerance t in
  if report.Dataflow.Audit.divergences <> [] then
    (* Out-of-tolerance drift: quarantine is the caller's report; recovery
       is a full rebuild from the edge array — the same deterministic path
       a checkpoint resume takes — so the walk continues from batch
       truth. *)
    rebuild_multi ~replicate:t.replicate t ~n:(Graph.Mutable.n t.graph)
      ~edges:(Graph.Mutable.edge_array t.graph) ~builder:t.builder;
  report

(* ---- The replica pool: engine clones for parallel lookahead ----------- *)

module Pool = struct
  type fit = t

  (* One worker owns one replica and is the only domain that ever touches
     it; the scheduler (main domain) hands closures across a
     mutex/condition mailbox, so every access is ordered by a
     happens-before edge.  The mailbox carries a whole batch slice per
     publication — one lock acquisition (and at most one futex wakeup)
     per worker per batch, however deep the lookahead — and completion is
     collected the same way, so the handshake cost is amortized over the
     slice instead of paid per proposal.  With [jobs = 1] no domain is
     spawned and the single replica is driven inline — the serial
     reference walk. *)
  type worker = {
    mutex : Mutex.t;
    has_job : Condition.t;
    job_done : Condition.t;
    mutable job : (unit -> unit) option;
    mutable pending : bool;
    mutable stopping : bool;
    mutable failed : exn option;
  }

  type t = {
    owner : fit;
    jobs : int;
    replicas : fit array;
    workers : worker array; (* length [jobs] when jobs > 1, else empty *)
    domains : unit Domain.t array;
    counters : Mcmc.counters option;
    (* The committed-delta log: every winning swap, in commit order, with
       its post-commit energy.  The owner applies a winning swap
       immediately (it is the canonical state checkpoints and audits
       read); each replica absorbs its backlog lazily, piggybacked on the
       next batch publication to its worker — so a commit costs the
       scheduler exactly one O(delta) owner feed and {e zero} worker
       handshakes.  [applied.(i)] counts the log prefix replica [i] has
       absorbed; the log is compacted once every replica has caught up.
       Happens-before: a worker only touches the log inside a posted job,
       and the scheduler only appends/compacts between [await]s, so every
       access is ordered by the mailbox mutexes. *)
    mutable log : (Graph.Mutable.swap * float) array;
    mutable log_len : int;
    applied : int array;
  }

  let worker_loop w =
    let rec loop () =
      Mutex.lock w.mutex;
      while w.job = None && not w.stopping do
        Condition.wait w.has_job w.mutex
      done;
      let job = w.job in
      w.job <- None;
      Mutex.unlock w.mutex;
      match job with
      | None -> () (* stopping, mailbox drained *)
      | Some f ->
          (try f ()
           with e ->
             Mutex.lock w.mutex;
             w.failed <- Some e;
             Mutex.unlock w.mutex);
          Mutex.lock w.mutex;
          w.pending <- false;
          Condition.signal w.job_done;
          Mutex.unlock w.mutex;
          loop ()
    in
    loop ()

  let post w f =
    Mutex.lock w.mutex;
    w.job <- Some f;
    w.pending <- true;
    Condition.signal w.has_job;
    Mutex.unlock w.mutex

  let await w =
    Mutex.lock w.mutex;
    while w.pending do
      Condition.wait w.job_done w.mutex
    done;
    let failed = w.failed in
    w.failed <- None;
    Mutex.unlock w.mutex;
    match failed with Some e -> raise e | None -> ()

  (* Run [f i] for every replica index and wait for all of them: on the
     owning worker domain when the pool is parallel, inline otherwise. *)
  let on_replicas pool f =
    if Array.length pool.workers = 0 then
      for i = 0 to pool.jobs - 1 do
        f i
      done
    else begin
      Array.iteri (fun i w -> post w (fun () -> f i)) pool.workers;
      Array.iter await pool.workers
    end

  (* A replica is a full fit clone rebuilt from the owner's current edge
     array through the shared deterministic [attach] path, over
     deep-copied measurements.  Every replica is therefore bit-identical
     to every other — for any pool width — which is what makes the
     realized chain invariant to [jobs]. *)
  let replica_builder owner =
    match owner.replicate with
    | Some factory -> factory ()
    | None ->
        invalid_arg
          "Fit.Pool: fit is not replicable (build it with create_shared / restore_shared)"

  let fresh_replica ~builder owner =
    let mg =
      Graph.Mutable.of_edge_array ~n:(Graph.Mutable.n owner.graph)
        (Graph.Mutable.edge_array owner.graph)
    in
    let engine, handle, built = attach ~builder mg in
    {
      rng = Prng.copy owner.rng (* never drawn from: evaluation uses per-step streams *);
      engine;
      handle;
      graph = mg;
      targets = built;
      builder;
      replicate = None;
      energy = Flow.Target.energy built;
    }

  let shutdown pool =
    Array.iter
      (fun w ->
        Mutex.lock w.mutex;
        w.stopping <- true;
        Condition.broadcast w.has_job;
        Mutex.unlock w.mutex)
      pool.workers;
    Array.iter Domain.join pool.domains

  let create ?counters owner ~jobs =
    if jobs < 1 then invalid_arg "Fit.Pool.create: jobs must be at least 1";
    (match owner.replicate with
    | Some _ -> ()
    | None ->
        invalid_arg
          "Fit.Pool.create: fit is not replicable (build it with create_shared / \
           restore_shared)");
    let workers =
      if jobs = 1 then [||]
      else
        Array.init jobs (fun _ ->
            {
              mutex = Mutex.create ();
              has_job = Condition.create ();
              job_done = Condition.create ();
              job = None;
              pending = false;
              stopping = false;
              failed = None;
            })
    in
    let domains = Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers in
    let pool =
      {
        owner;
        jobs;
        replicas = Array.make jobs owner;
        workers;
        domains;
        counters;
        log = [||];
        log_len = 0;
        applied = Array.make jobs 0;
      }
    in
    (* Builders (and their measurement copies) are made in the scheduler
       domain; each replica is then built by its owning worker so its
       engine's memory lands in the domain that will drive it.  If any
       builder or replica construction raises, the spawned domains are
       stopped and joined before the exception escapes — [create] never
       leaks a domain. *)
    (try
       let builders = Array.init jobs (fun _ -> replica_builder owner) in
       on_replicas pool (fun i -> pool.replicas.(i) <- fresh_replica ~builder:builders.(i) owner)
     with e ->
       shutdown pool;
       raise e);
    pool

  let energy pool = pool.owner.energy

  let now () = Unix.gettimeofday ()

  (* Absorb replica [i]'s backlog of committed deltas: apply every log
     entry it has not yet seen, in commit order, through the same
     non-speculative feed the owner used — byte-identical state, O(delta)
     per entry.  Runs on the replica's owning domain (worker, or the
     scheduler when inline / resyncing). *)
  let flush_replica pool i =
    let upto = pool.log_len in
    if pool.applied.(i) < upto then begin
      let r = pool.replicas.(i) in
      for e = pool.applied.(i) to upto - 1 do
        let swap, proposed = pool.log.(e) in
        delta_commit r swap ~proposed
      done;
      pool.applied.(i) <- upto
    end

  (* Contiguous balanced slice of a [k]-wide batch owned by worker [j]:
     the first [k mod jobs] workers take one extra stream.  Sequential
     multi-eval on one replica is equivalent to separate replicas because
     every evaluation aborts residue-free before the next begins. *)
  let slice pool k j =
    let q = k / pool.jobs and r = k mod pool.jobs in
    let lo = (j * q) + min j r in
    (lo, lo + q + if j < r then 1 else 0)

  (* Evaluate one per-step stream per batch position, speculatively,
     against the shared committed state.  Every evaluation aborts before
     reporting — rollback includes the undo-logged lazy measurement draws
     — so the pool is back at the base state whatever the verdicts say,
     and the scheduler is free to commit any prefix of them. *)
  let eval_replica r stream ~pow ~energy =
    match Graph.Mutable.propose_swap r.graph stream with
    | None -> Mcmc.Invalid
    | Some swap ->
        speculate_swap r swap;
        let proposed = Flow.Target.energy r.targets in
        if Float.is_finite proposed then begin
          let delta = proposed -. energy in
          let accept = delta <= 0.0 || Prng.uniform stream < exp (-.pow *. delta) in
          abort_swap r swap;
          if accept then Mcmc.Accepted { swap; proposed } else Mcmc.Rejected
        end
        else begin
          abort_swap r swap;
          Mcmc.Nonfinite
        end

  let eval pool ~pow ~energy streams =
    let k = Array.length streams in
    let verdicts = Array.make k Mcmc.Invalid in
    if Array.length pool.workers = 0 then begin
      let t0 = match pool.counters with Some _ -> now () | None -> 0.0 in
      flush_replica pool 0;
      let r = pool.replicas.(0) in
      for i = 0 to k - 1 do
        verdicts.(i) <- eval_replica r streams.(i) ~pow ~energy
      done;
      match pool.counters with
      | Some c -> c.Mcmc.eval_us <- c.Mcmc.eval_us +. (1e6 *. (now () -. t0))
      | None -> ()
    end
    else begin
      (* One publication per worker: its contiguous slice of the batch,
         prefixed by its backlog flush.  Workers whose slice is empty
         (k < jobs) are not woken; their backlog waits for a wider batch.
         Verdict writes are disjoint by index, and each is ordered before
         the scheduler's read by the worker's own completion handshake. *)
      let t0 = match pool.counters with Some _ -> now () | None -> 0.0 in
      for j = 0 to pool.jobs - 1 do
        let lo, hi = slice pool k j in
        if hi > lo then
          post pool.workers.(j) (fun () ->
              flush_replica pool j;
              let r = pool.replicas.(j) in
              for i = lo to hi - 1 do
                verdicts.(i) <- eval_replica r streams.(i) ~pow ~energy
              done)
      done;
      let t1 = match pool.counters with Some _ -> now () | None -> 0.0 in
      for j = 0 to pool.jobs - 1 do
        let lo, hi = slice pool k j in
        if hi > lo then await pool.workers.(j)
      done;
      match pool.counters with
      | Some c ->
          c.Mcmc.dispatch_us <- c.Mcmc.dispatch_us +. (1e6 *. (t1 -. t0));
          c.Mcmc.eval_us <- c.Mcmc.eval_us +. (1e6 *. (now () -. t1))
      | None -> ()
    end;
    verdicts

  (* Commit a winning swap: the owner — the canonical fit checkpoints and
     audits read — absorbs it immediately as an O(delta) committed delta;
     replicas only get a log entry to absorb at their next dispatch.  No
     worker handshake, no speculative re-evaluation, no undo log. *)
  let commit pool swap ~proposed =
    (* Compact once every replica has caught up — between batches the log
       is usually empty again, so it stays a few entries long. *)
    if pool.log_len > 0 && Array.for_all (fun a -> a = pool.log_len) pool.applied then begin
      pool.log_len <- 0;
      Array.fill pool.applied 0 pool.jobs 0
    end;
    if pool.log_len = Array.length pool.log then begin
      let grown = Array.make (max 16 (2 * pool.log_len)) (swap, proposed) in
      Array.blit pool.log 0 grown 0 pool.log_len;
      pool.log <- grown
    end;
    pool.log.(pool.log_len) <- (swap, proposed);
    pool.log_len <- pool.log_len + 1;
    delta_commit pool.owner swap ~proposed

  let refresh_pool pool =
    on_replicas pool (fun i ->
        flush_replica pool i;
        refresh pool.replicas.(i));
    refresh pool.owner;
    energy pool

  (* Rebuild every replica from the owner's current state — after a
     checkpoint rebase or an audit recovery replaced the owner's engine —
     through the same deterministic path [create] used, so a live rebased
     walk and a future resume land on byte-identical replicas.  The
     rebuilt replicas embody every committed delta, so the log restarts
     empty. *)
  let resync pool =
    pool.log_len <- 0;
    Array.fill pool.applied 0 pool.jobs 0;
    let builders = Array.init pool.jobs (fun _ -> replica_builder pool.owner) in
    on_replicas pool (fun i ->
        pool.replicas.(i) <- fresh_replica ~builder:builders.(i) pool.owner);
    energy pool

  let lookahead pool =
    {
      Mcmc.la_jobs = pool.jobs;
      la_energy = (fun () -> energy pool);
      la_eval = (fun ~pow ~energy streams -> eval pool ~pow ~energy streams);
      la_commit = (fun swap ~proposed -> commit pool swap ~proposed);
      la_refresh = (fun () -> refresh_pool pool);
      la_resync = (fun () -> resync pool);
    }
end

let run t ~steps ?start ?(pow = 1.0) ?(refresh_every = 100_000) ?audit_every ?audit_tolerance
    ?should_stop ?checkpoint_every ?on_checkpoint ?on_step ?jobs ?on_batch ?width ?counters () =
  let audit () =
    let report = audit_and_recover ?tolerance:audit_tolerance t in
    List.length report.Dataflow.Audit.divergences
  in
  match jobs with
  | None ->
      (* Legacy in-place walk: proposals drawn directly from the fit's rng,
         evaluated on the fit itself.  Kept for non-replicable fits and as
         the reference implementation the lookahead tests compare against
         indirectly (through identical committed statistics). *)
      let stats =
        Mcmc.run ~rng:t.rng ~steps ?start ~pow ~refresh:(fun () -> refresh t) ~refresh_every
          ~audit ?audit_every ?should_stop ?checkpoint_every ?on_checkpoint ?on_step
          ~energy:(fun () -> Flow.Target.energy t.targets)
          ~propose:(fun () -> Graph.Mutable.propose_swap t.graph t.rng)
          ~apply:(fun swap -> speculate_swap t swap)
          ~commit:(fun _ -> commit_swap t)
          ~revert:(fun swap -> abort_swap t swap)
          ()
      in
      t.energy <- stats.Mcmc.final_energy;
      stats
  | Some jobs ->
      (* Parallel speculative lookahead: all evaluation happens on replica
         engines (never on [t] itself, so jobs = 1 and jobs = K walk
         byte-identical state), and [t] — the canonical state that
         checkpoints, audits and callers read — only ever replays committed
         moves. *)
      let pool = Pool.create ?counters t ~jobs in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let stats =
            Mcmc.run_lookahead ~rng:t.rng ~lookahead:(Pool.lookahead pool) ~steps ?start ~pow
              ~refresh_every ~audit ?audit_every ?should_stop ?checkpoint_every ?on_checkpoint
              ?on_batch ?on_step ?width ?counters ()
          in
          t.energy <- stats.Mcmc.final_energy;
          stats)
