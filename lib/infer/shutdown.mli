(** Graceful signal-driven shutdown for long fits.

    {!install} registers SIGINT/SIGTERM handlers that do nothing but raise
    a flag; the MCMC walk polls {!requested} between steps (via
    [should_stop]), finishes the in-flight step, writes a final checkpoint,
    and returns an [interrupted] result — so an operator's Ctrl-C or a
    scheduler's SIGTERM costs at most one step of work, never a corrupted
    or missing checkpoint. *)

val install : unit -> unit
(** Register the SIGINT/SIGTERM handlers.  Idempotent; signals that cannot
    be caught in the current environment are skipped silently. *)

val request : unit -> unit
(** Raise the shutdown flag programmatically (what the handlers call; also
    the deterministic-test entry point).  Passes the ["shutdown.request"]
    fault-injection site. *)

val requested : unit -> bool
(** Whether shutdown has been requested. *)

val reset : unit -> unit
(** Lower the flag (between runs, or in tests). *)
