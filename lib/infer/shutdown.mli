(** Graceful signal-driven shutdown for long fits, with double-signal
    escalation.

    {!install} registers SIGINT/SIGTERM handlers that do nothing but bump
    a counter; the MCMC walk polls {!requested} between steps (via
    [should_stop]), finishes the in-flight step, writes a final checkpoint,
    and returns an [interrupted] result — so an operator's Ctrl-C or a
    scheduler's SIGTERM costs at most one step of work, never a corrupted
    or missing checkpoint.

    A {e second} signal during the graceful drain escalates: {!forced}
    becomes true, and loops that drain gracefully on {!requested} (the
    stream supervisor finishing its in-flight epoch) poll {!forced} as
    their [should_stop] instead, stopping at the next batch boundary.  The
    final interrupt snapshot is still written, so even a forced exit
    resumes bit-identically. *)

val install : unit -> unit
(** Register the SIGINT/SIGTERM handlers.  Idempotent; signals that cannot
    be caught in the current environment are skipped silently. *)

val request : unit -> unit
(** Record one shutdown signal programmatically (what the handlers call;
    also the deterministic-test entry point).  Passes the
    ["shutdown.request"] fault-injection site. *)

val requested : unit -> bool
(** Whether shutdown has been requested at least once (graceful drain). *)

val forced : unit -> bool
(** Whether shutdown has been requested at least twice (stop now: abandon
    the drain at the next poll, leaving a final interrupt snapshot). *)

val reset : unit -> unit
(** Clear the signal count (between runs, or in tests). *)
