(** The end-to-end graph synthesis workflow of Section 5.1.

    Phase 0 (measure): run wPINQ queries against the protected graph,
    recording noisy measurements and debiting the privacy budget; the
    protected graph is then discarded.  Phase 1 (seed): post-process the
    degree measurements into a consistent degree sequence and generate a
    random seed graph matching it.  Phase 2 (fit): run the edge-swap
    Metropolis–Hastings walk, scoring candidates against the remaining
    measurements through the incremental engine.

    Everything here consumes only released measurements — the [secret]
    graph is touched exclusively through {!Wpinq_core.Batch} aggregations
    whose costs appear in the returned budget log. *)

module Measurement = Wpinq_core.Measurement

type seed_measurements = {
  epsilon : float;  (** per-query ε (total seed cost: 3 × this) *)
  deg_seq : int Measurement.t;  (** noisy non-increasing degree sequence *)
  ccdf : int Measurement.t;  (** noisy degree CCDF *)
  node_count : unit Measurement.t;  (** noisy |V| / 2 *)
}

val measure_seed :
  rng:Wpinq_prng.Prng.t ->
  epsilon:float ->
  sym:(int * int) Wpinq_core.Batch.t ->
  seed_measurements
(** Takes the three Phase-1 measurements (cost [3 ε]: each query uses the
    symmetric edge source once). *)

val fit_degrees : seed_measurements -> int array
(** Reconciles the noisy degree sequence and CCDF into a single
    non-increasing integer degree sequence via the lowest-cost grid path
    (Section 3.1); the estimated node count bounds the sequence length. *)

val fit_degrees_pava_only : seed_measurements -> int array
(** Ablation baseline: isotonic regression of the degree sequence alone
    (Hay et al.'s original post-processing), ignoring the CCDF. *)

val seed_graph : rng:Wpinq_prng.Prng.t -> degrees:int array -> Wpinq_graph.Graph.t
(** A uniform random simple graph approximately realizing [degrees]
    (erased configuration model). *)

(** Which motif query drives Phase 2. *)
type query =
  | Tbd of int  (** triangles by degree, with bucket size (Section 5.2); cost 9 ε *)
  | Tbi  (** triangles by intersect (Section 5.3); cost 4 ε *)
  | Sbi  (** squares by intersect (our Section 3.5 extension); cost 6 ε *)
  | Jdd  (** joint degree distribution (Section 3.2) — the workshop-paper
             workflow the paper builds on; cost 4 ε *)

val query_cost : query -> float -> float
(** [query_cost q eps] is the privacy cost of measuring [q] at [eps] —
    {e derived} by reifying the query over a {!Wpinq_core.Plan} source and
    counting source uses with {!Wpinq_core.Plan.uses}, not asserted by
    hand. *)

type query_measurement

val measure_query :
  rng:Wpinq_prng.Prng.t ->
  epsilon:float ->
  sym:(int * int) Wpinq_core.Batch.t ->
  query ->
  query_measurement

val measure_queries :
  rng:Wpinq_prng.Prng.t ->
  epsilon:float ->
  sym:(int * int) Wpinq_core.Batch.t ->
  query list ->
  query_measurement list
(** Measures several queries through one shared plan-lowering context
    ({!Wpinq_core.Batch.Plans}): the pipelines are reified over the
    workflow's shared plan source, optimized
    ({!Wpinq_core.Plan.optimize}, exact rules — released values are
    bit-identical to the unoptimized plans'), and lowered so that shared
    pipeline prefixes evaluate once.  Each query's aggregation still
    debits its own [{!Wpinq_core.Plan.uses} × epsilon] from the source
    budget (the optimizer preserves [uses] exactly). *)

val target_of_query :
  query_measurement -> (int * int) Wpinq_core.Flow.t -> Wpinq_core.Flow.Target.t
(** Rebuilds the measured query over a synthetic input and scores it
    against the recorded observations. *)

val shared_measured :
  query_measurement list -> (int * int) Wpinq_core.Plan.t * Fit.measured list
(** [shared_measured qms] reifies the measured queries over the workflow's
    shared plan source and optimizes them, ready for {!Fit.create_shared}
    — common prefixes (degrees, paths, the path-degree join) become shared
    plan nodes, so the fit propagates each MCMC delta through them once
    per step.  Because the source leaf is shared module-wide and
    {!Wpinq_core.Plan.optimize} caches on the canonical hash, every fit,
    tenant, and stream epoch of the process lowers the {e same} optimized
    DAG — repeat submissions are answered from the plan cache. *)

type trace_point = {
  step : int;
  triangles : int;
  assortativity : float;
  energy : float;
}

type result = {
  synthetic : Wpinq_graph.Graph.t;  (** the fitted synthetic graph *)
  seed : Wpinq_graph.Graph.t;  (** the Phase-1 seed graph *)
  stats : Mcmc.stats;
  trace : trace_point list;  (** oldest first; includes step 0 (the seed) *)
  total_epsilon : float;  (** budget actually spent *)
}

type checkpoint_sink =
  | Single of string
      (** one file, overwritten in place (atomically: the previous snapshot
          survives an interrupted write) *)
  | Store of Wpinq_persist.Persist.Store.t
      (** a generational store: each snapshot becomes a new
          [ckpt-<step>.wpq] generation with retention/rotation, and
          {!resume_latest} can fall back past corrupted generations *)

type checkpoint_spec = { every : int; sink : checkpoint_sink }
(** Write a crash-recovery snapshot every [every] MCMC steps. *)

exception Corrupt_checkpoint of string
(** Raised by {!resume}/{!resume_latest} when no usable checkpoint exists.
    The message names the file, the failing layer (container verification
    vs. payload decode), and — for a generational store — every generation
    tried and why each was rejected.  Also raised when a snapshot decodes
    but its recorded optimized-plan hashes disagree with the plans this
    binary re-derives (checkpoint v7): resuming would silently walk a
    different dataflow than the checkpointed chain. *)

val synthesize :
  ?pow:float ->
  ?steps:int ->
  ?trace_every:int ->
  ?refresh_every:int ->
  ?audit_every:int ->
  ?audit_tolerance:float ->
  ?jobs:int ->
  ?width:Mcmc.width ->
  ?counters:Mcmc.counters ->
  ?checkpoint:checkpoint_spec ->
  ?stop:(unit -> bool) ->
  ?deadline:float ->
  ?queries:query list ->
  rng:Wpinq_prng.Prng.t ->
  epsilon:float ->
  query:query option ->
  secret:Wpinq_graph.Graph.t ->
  unit ->
  result
(** The full pipeline at per-query cost [epsilon]: seed measurements
    ([3 ε]), optional triangle query, seed generation, and [steps]
    (default 100_000) MCMC iterations at [pow] (default 10_000, the
    paper's setting), tracing triangle count and assortativity of the
    public synthetic graph every [trace_every] steps (default
    [steps / 20]).  [refresh_every] (default 100_000) is the cadence at
    which incrementally-maintained target distances are recomputed to
    discard floating-point drift; it is part of the walk's definition, so
    it is persisted in checkpoints and honoured by {!resume}.
    [query = None] stops after Phase 1 (the seed graph is returned as
    [synthetic], with an empty walk).

    [queries] (default [[]]) adds further motif queries: all of them —
    [query] first, then [queries] in order — are measured through one
    shared {!Wpinq_core.Batch.Plans} context (total cost
    [Σ query_cost q epsilon]) and fitted {e together} as one multi-target
    walk over shared plans ({!Fit.create_shared}): the posterior energy is
    the sum over targets, and plan prefixes shared between queries (the
    degree pipeline of JDD and TbD, say) propagate each swap's delta once
    per step.  [query = None] with [queries = []] is the seed-only run
    above; [query = None] with non-empty [queries] runs Phase 2 on just
    [queries].

    With [checkpoint], Phase 2 snapshots its complete walk state every
    [every] steps — and then {e rebases} onto the snapshot's own bytes, so
    the continuation is a pure function of the file: a run killed at any
    point and {!resume}d from the latest snapshot produces a bit-identical
    final result.  Snapshots contain only released values (noisy
    measurements, budget audit log, public graphs, PRNG cursor) — never the
    protected graph.  [checkpoint] is ignored when [query = None] (no walk
    runs).

    [audit_every] (with [audit_tolerance], default [1e-6]; [0], the
    default, disables) runs the engine self-audit at that cadence during
    Phase 2: incremental state is cross-validated against a from-scratch
    batch recomputation, divergences are counted into {!Mcmc.stats} (and
    persisted in checkpoints), and divergent state is rebuilt from batch
    before the walk continues.  A clean audit is bit-neutral.

    [jobs] (default 1) is the parallel speculative-lookahead worker count:
    Phase 2 evaluates batches of consecutive proposals concurrently, one
    replica engine per domain ({!Fit.run}'s lookahead walk — always the
    lookahead walk, whatever the width).  [width] (default
    [Mcmc.Fixed jobs]) is the batch-width policy — [Mcmc.Adaptive] lets
    the walk deepen its lookahead when acceptances are rare.  The realized
    chain, the trace, the final graph and the checkpoint bytes are
    bit-identical for every [jobs] value {e and} every [width] policy;
    only wall-clock time changes.  [jobs] is recorded in checkpoints as
    the resume default; [width] and [counters] (per-phase timing) are
    runtime-only and never persisted.

    [stop] (polled between batches) and [deadline]
    (wall-clock seconds from run start) request a graceful stop: the
    in-flight batch finishes, one final snapshot of the stopped state is
    written to the checkpoint sink (if any), and the partial result is
    returned with [stats.interrupted = true].  Wire [stop] to
    {!Shutdown.requested} for SIGINT/SIGTERM handling. *)

val resume :
  ?stop:(unit -> bool) ->
  ?deadline:float ->
  ?jobs:int ->
  ?width:Mcmc.width ->
  ?counters:Mcmc.counters ->
  path:string ->
  unit ->
  result
(** [resume ~path ()] loads the snapshot at [path] and continues the
    interrupted walk to completion, checkpointing onward with the original
    cadence to the same [path].  The returned {!result} — graph, stats,
    trace, energies — is bit-identical to what the uninterrupted run would
    have returned.  Raises {!Corrupt_checkpoint} on any invalid file.
    [stop]/[deadline]/[width]/[counters] as in {!synthesize}.  [jobs]
    overrides the snapshot's recorded worker count — safe at any value,
    since the realized chain is width-invariant. *)

val resume_latest :
  ?log:(string -> unit) ->
  ?stop:(unit -> bool) ->
  ?deadline:float ->
  ?jobs:int ->
  ?width:Mcmc.width ->
  ?counters:Mcmc.counters ->
  store:Wpinq_persist.Persist.Store.t ->
  unit ->
  result
(** [resume_latest ~store ()] walks the store's checkpoint generations
    newest-first: each invalid generation (corrupted container, failing
    decode) is quarantined to a [.corrupt] file with its reason recorded
    and reported through [log], and the walk resumes from the newest valid
    one — checkpointing onward into the same store.  Raises
    {!Corrupt_checkpoint} naming every rejected generation when none is
    valid.  [stop]/[deadline] as in {!synthesize}. *)

val checkpoint_step : string -> int
(** [checkpoint_step path] is the number of completed MCMC steps recorded
    in the snapshot at [path] (diagnostic; raises {!Corrupt_checkpoint} on
    an invalid file). *)

val checkpoint_stream : string -> int * int
(** [checkpoint_stream path] is the stream position recorded in the
    snapshot at [path]: the re-release epoch index and the ingest-journal
    sequence number that epoch consumed ([(-1, 0)] for snapshots written
    by plain, non-stream runs).  Raises {!Corrupt_checkpoint} on an
    invalid file. *)

val checkpoint_epsilon : string -> float
(** [checkpoint_epsilon path] is the privacy budget already spent by the
    run recorded in the snapshot at [path].  The stream supervisor uses it
    to settle a degraded epoch honestly: noise recorded in a durable
    snapshot has been released and must be accounted as spent even though
    the epoch never completed.  Raises {!Corrupt_checkpoint}. *)

val fit_stream :
  ?pow:float ->
  ?steps:int ->
  ?trace_every:int ->
  ?refresh_every:int ->
  ?audit_every:int ->
  ?audit_tolerance:float ->
  ?jobs:int ->
  ?width:Mcmc.width ->
  ?counters:Mcmc.counters ->
  ?checkpoint:checkpoint_spec ->
  ?stop:(unit -> bool) ->
  ?deadline:float ->
  rng:Wpinq_prng.Prng.t ->
  budget:Wpinq_core.Budget.t ->
  epsilon:float ->
  warm:Wpinq_graph.Graph.t ->
  qms:query_measurement list ->
  epoch:int ->
  stream_seq:int ->
  unit ->
  result
(** One warm-started re-release epoch of the continual-observation
    stream (driven by the [Wpinq_stream.Supervisor]).  The caller has
    already measured this epoch's queries ([qms], via {!measure_seed} /
    {!measure_queries}) against the evolved secret under the epoch's
    budget allowance ([budget], with [epsilon] the per-use ε recorded
    for diagnostics); [fit_stream] runs the Phase-2 walk from [warm] —
    the previous epoch's synthetic graph adapted to the new degree
    sequence — instead of a cold configuration-model seed.

    With [checkpoint], a step-0 snapshot is written {e before} the first
    step (and the live state rebased onto it, exactly as at cadence
    checkpoints): measurement noise is spent the moment it is drawn, so
    the epoch must be resumable from durable state from that moment on —
    a supervisor crash after measurement re-reads the released values
    instead of re-touching the secret.  Every snapshot records [epoch]
    and [stream_seq] (checkpoint v6) plus the canonical hashes of the
    optimized fit plans (v7), so kill/resume lands mid-stream
    bit-identically — and refuses to land at all if the optimizer would
    now produce different plans; {!resume}/{!resume_latest} continue an
    interrupted epoch unchanged.  All other parameters as in
    {!synthesize}. *)
