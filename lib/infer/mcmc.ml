module Prng = Wpinq_prng.Prng
module Fault = Wpinq_persist.Persist.Fault

type stats = {
  steps : int;
  accepted : int;
  invalid : int;
  refreshed_on_nonfinite : int;
  initial_energy : float;
  final_energy : float;
}

let run ~rng ~steps ?(start = 0) ?(pow = 1.0) ?refresh ?(refresh_every = 100_000)
    ?checkpoint_every ?on_checkpoint ?on_step ~energy ~propose ~apply ?commit ~revert () =
  if start < 0 || start > steps then invalid_arg "Mcmc.run: start must be within [0, steps]";
  let accepted = ref 0 and invalid = ref 0 and nonfinite = ref 0 in
  let initial_energy = energy () in
  let current = ref initial_energy in
  let interim step =
    {
      steps = step - start;
      accepted = !accepted;
      invalid = !invalid;
      refreshed_on_nonfinite = !nonfinite;
      initial_energy;
      final_energy = !current;
    }
  in
  for step = start + 1 to steps do
    Fault.point "mcmc.step";
    (match propose () with
    | None -> incr invalid
    | Some move ->
        apply move;
        let proposed = energy () in
        if Float.is_finite proposed then begin
          let delta = proposed -. !current in
          let accept = delta <= 0.0 || Prng.uniform rng < exp (-.pow *. delta) in
          if accept then begin
            (match commit with Some f -> f move | None -> ());
            current := proposed;
            incr accepted
          end
          else revert move
        end
        else begin
          (* Incremental drift or overflow produced a non-finite energy.
             Discard the move, rebuild the incremental state, and re-read
             rather than letting NaN corrupt the accept/reject decision. *)
          incr nonfinite;
          revert move;
          (match refresh with Some f -> f () | None -> ());
          current := energy ()
        end);
    (match refresh with
    | Some f when step mod refresh_every = 0 ->
        f ();
        current := energy ()
    | _ -> ());
    (match on_step with Some f -> f ~step ~energy:!current | None -> ());
    match (on_checkpoint, checkpoint_every) with
    | Some f, Some every when step mod every = 0 && step < steps ->
        f ~step ~stats:(interim step);
        (* The hook may rebuild the incremental state wholesale (the
           checkpoint rebase); re-read the energy from the new state. *)
        current := energy ()
    | _ -> ()
  done;
  interim steps
