module Prng = Wpinq_prng.Prng
module Fault = Wpinq_persist.Persist.Fault

type stats = {
  steps : int;
  accepted : int;
  invalid : int;
  refreshed_on_nonfinite : int;
  audits : int;
  audit_divergences : int;
  interrupted : bool;
  initial_energy : float;
  final_energy : float;
}

let run ~rng ~steps ?(start = 0) ?(pow = 1.0) ?refresh ?(refresh_every = 100_000) ?audit
    ?(audit_every = 0) ?should_stop ?checkpoint_every ?on_checkpoint ?on_step ~energy ~propose
    ~apply ?commit ~revert () =
  if start < 0 || start > steps then invalid_arg "Mcmc.run: start must be within [0, steps]";
  if audit_every < 0 then invalid_arg "Mcmc.run: audit_every must be non-negative";
  let accepted = ref 0 and invalid = ref 0 and nonfinite = ref 0 in
  let audits = ref 0 and diverged = ref 0 in
  let initial_energy = energy () in
  let current = ref initial_energy in
  let stopped = ref false in
  let step = ref start in
  let interim step =
    {
      steps = step - start;
      accepted = !accepted;
      invalid = !invalid;
      refreshed_on_nonfinite = !nonfinite;
      audits = !audits;
      audit_divergences = !diverged;
      interrupted = !stopped;
      initial_energy;
      final_energy = !current;
    }
  in
  (* The stop check sits between steps, so a stop requested mid-step (a
     signal, a deadline) always lets the in-flight step finish: the state
     left behind is a complete post-step state, safe to checkpoint. *)
  while (not !stopped) && !step < steps do
    Fault.point "mcmc.signal";
    match should_stop with
    | Some f when f () -> stopped := true
    | _ ->
        incr step;
        let step = !step in
        Fault.point "mcmc.step";
        (match propose () with
        | None -> incr invalid
        | Some move ->
            apply move;
            let proposed = energy () in
            if Float.is_finite proposed then begin
              let delta = proposed -. !current in
              let accept = delta <= 0.0 || Prng.uniform rng < exp (-.pow *. delta) in
              if accept then begin
                (match commit with Some f -> f move | None -> ());
                current := proposed;
                incr accepted
              end
              else revert move
            end
            else begin
              (* Incremental drift or overflow produced a non-finite energy.
                 Discard the move, rebuild the incremental state, and re-read
                 rather than letting NaN corrupt the accept/reject decision. *)
              incr nonfinite;
              revert move;
              (match refresh with Some f -> f () | None -> ());
              current := energy ()
            end);
        (match refresh with
        | Some f when step mod refresh_every = 0 ->
            f ();
            current := energy ()
        | _ -> ());
        (match audit with
        | Some f when audit_every > 0 && step mod audit_every = 0 ->
            Fault.point "mcmc.audit";
            incr audits;
            let divergences = f () in
            if divergences > 0 then begin
              (* The audit found (and its recovery path repaired) corrupted
                 incremental state; re-read the energy from the rebuilt
                 state so the walk continues from truth. *)
              diverged := !diverged + divergences;
              current := energy ()
            end
        | _ -> ());
        (match on_step with Some f -> f ~step ~energy:!current | None -> ());
        (match (on_checkpoint, checkpoint_every) with
        | Some f, Some every when step mod every = 0 && step < steps ->
            f ~step ~stats:(interim step);
            (* The hook may rebuild the incremental state wholesale (the
               checkpoint rebase); re-read the energy from the new state. *)
            current := energy ()
        | _ -> ())
  done;
  interim !step
