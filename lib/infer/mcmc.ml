module Prng = Wpinq_prng.Prng
module Fault = Wpinq_persist.Persist.Fault

type stats = {
  steps : int;
  accepted : int;
  invalid : int;
  refreshed_on_nonfinite : int;
  audits : int;
  audit_divergences : int;
  interrupted : bool;
  initial_energy : float;
  final_energy : float;
}

(* ---- Parallel speculative lookahead ---------------------------------- *)

(* The outcome of evaluating one lookahead position against the shared
   base state: the proposal was structurally invalid, rejected by the
   Metropolis test, produced a non-finite energy, or was accepted (with
   the proposed energy read off the speculating replica before its
   abort). *)
type 'swap verdict =
  | Invalid
  | Rejected
  | Nonfinite
  | Accepted of { swap : 'swap; proposed : float }

(* The replica-pool interface the lookahead scheduler drives.  [eval]
   evaluates one stream per replica, speculatively and concurrently, and
   reports per-position verdicts with every replica back at the base
   state (evaluations always abort; commits are replayed separately).
   [commit] replays an accepted swap on every replica (and the canonical
   fit).  [refresh] recomputes maintained state from scratch everywhere
   and returns the pool's energy.  [resync] rebuilds the replicas from
   the canonical fit (after a checkpoint rebase or audit recovery) and
   returns the pool's energy. *)
type 'swap lookahead = {
  la_jobs : int;
  la_energy : unit -> float;
  la_eval : pow:float -> energy:float -> Prng.t array -> 'swap verdict array;
  la_commit : 'swap -> proposed:float -> unit;
  la_refresh : unit -> float;
  la_resync : unit -> float;
}

(* How wide each lookahead batch is allowed to be.  The realized chain is
   invariant to the policy (each step's streams are dealt by absolute step
   index and the master cursor advances only by consumed steps), so the
   policy is purely a throughput knob — which is what makes online
   adaptation safe. *)
type width =
  | Fixed of int
  | Adaptive of { max_width : int }
  | Schedule of (int -> int)

(* Per-phase accounting for one lookahead run, accumulated by both the
   scheduler (resolve/commit, realized width trajectory) and the replica
   pool (dispatch/eval — see [Fit.Pool]).  All wall-clock, in
   microseconds. *)
type counters = {
  mutable dispatch_us : float;
  mutable eval_us : float;
  mutable resolve_us : float;
  mutable commit_us : float;
  mutable batches : int;
  mutable k_min : int;
  mutable k_max : int;
  mutable k_sum : int;
}

let counters () =
  {
    dispatch_us = 0.0;
    eval_us = 0.0;
    resolve_us = 0.0;
    commit_us = 0.0;
    batches = 0;
    k_min = max_int;
    k_max = 0;
    k_sum = 0;
  }

(* The lookahead walk: dispatch a batch of per-step split streams at once,
   all evaluated against the same base state, then resolve in serial
   proposal order — the consumed prefix runs up to and including the first
   accept (or non-finite energy), and later positions are discarded and
   re-evaluated in a later batch against the new state.  Because step s's
   proposal stream is [split_nth rng] at offset s minus steps-taken (a
   pure function of the step index), and the master cursor advances only
   by consumed steps, the realized chain is bit-identical for every jobs
   count AND every width policy: same proposals, same energies, same
   acceptance decisions, same final edge arrays.

   The batch width is chosen by [width]: [Fixed k] dispatches k streams
   per batch; [Adaptive] grows the width multiplicatively while batches
   run accept-free (deep lookahead is nearly free when almost everything
   is rejected) and halves it when an acceptance cuts a batch short;
   [Schedule] is the test hook — any width sequence whatsoever.  All
   widths are clamped to cadence boundaries (refresh / audit /
   checkpoint), and the stop poll and fault-injection points fire once
   per batch, so interrupts, kills and snapshots only ever observe
   committed, batch-aligned state. *)
let run_lookahead ~rng ~lookahead:la ~steps ?(start = 0) ?(pow = 1.0)
    ?(refresh_every = 100_000) ?audit ?(audit_every = 0) ?should_stop ?checkpoint_every
    ?on_checkpoint ?on_batch ?on_step ?width ?counters:ctrs () =
  if start < 0 || start > steps then
    invalid_arg "Mcmc.run_lookahead: start must be within [0, steps]";
  if la.la_jobs < 1 then invalid_arg "Mcmc.run_lookahead: jobs must be at least 1";
  if refresh_every < 1 then invalid_arg "Mcmc.run_lookahead: refresh_every must be positive";
  if audit_every < 0 then invalid_arg "Mcmc.run_lookahead: audit_every must be non-negative";
  let width = match width with Some w -> w | None -> Fixed la.la_jobs in
  (match width with
  | Fixed k when k < 1 -> invalid_arg "Mcmc.run_lookahead: Fixed width must be at least 1"
  | Adaptive { max_width } when max_width < 1 ->
      invalid_arg "Mcmc.run_lookahead: Adaptive max_width must be at least 1"
  | _ -> ());
  let accepted = ref 0 and invalid = ref 0 and nonfinite = ref 0 in
  let audits = ref 0 and diverged = ref 0 in
  let initial_energy = la.la_energy () in
  let current = ref initial_energy in
  let stopped = ref false in
  let step = ref start in
  let interim step =
    {
      steps = step - start;
      accepted = !accepted;
      invalid = !invalid;
      refreshed_on_nonfinite = !nonfinite;
      audits = !audits;
      audit_divergences = !diverged;
      interrupted = !stopped;
      initial_energy;
      final_energy = !current;
    }
  in
  (* Steps until the next multiple of cadence [c] strictly after [base]:
     a batch may touch a boundary only with its last consumed step. *)
  let until_boundary base c = if c <= 0 then max_int else c - (base mod c) in
  (* Adaptive width state: start at the worker count (narrower wastes
     domains), never exceed [max_width]. *)
  let adaptive_k = ref la.la_jobs in
  let batch_index = ref 0 in
  let now () = Unix.gettimeofday () in
  while (not !stopped) && !step < steps do
    Fault.point "mcmc.signal";
    match should_stop with
    | Some f when f () -> stopped := true
    | _ ->
        let base = !step in
        let intent =
          match width with
          | Fixed k -> k
          | Adaptive { max_width } -> min max_width !adaptive_k
          | Schedule f -> max 1 (f !batch_index)
        in
        incr batch_index;
        let k = min intent (steps - base) in
        let k = min k (until_boundary base refresh_every) in
        let k = min k (until_boundary base audit_every) in
        let k =
          match checkpoint_every with Some c -> min k (until_boundary base c) | None -> k
        in
        Fault.point "mcmc.step";
        let streams = Prng.deal rng k in
        let verdicts = la.la_eval ~pow ~energy:!current streams in
        let t_resolve = match ctrs with Some _ -> now () | None -> 0.0 in
        let consumed =
          let rec scan i =
            if i >= k then k
            else
              match verdicts.(i) with
              | Accepted _ | Nonfinite -> i + 1
              | Invalid | Rejected -> scan (i + 1)
          in
          scan 0
        in
        (* Did an acceptance (or a nonfinite reading) cut this batch?  The
           adaptive policy reads the verdicts, not the clamps: cadence
           clamping says nothing about the acceptance structure. *)
        let cut =
          consumed > 0
          &&
          match verdicts.(consumed - 1) with
          | Accepted _ | Nonfinite -> true
          | Invalid | Rejected -> false
        in
        (match width with
        | Adaptive { max_width } ->
            adaptive_k :=
              if cut then max la.la_jobs (!adaptive_k / 2)
              else min max_width (2 * !adaptive_k)
        | Fixed _ | Schedule _ -> ());
        Prng.advance rng consumed;
        (match ctrs with
        | Some c ->
            c.batches <- c.batches + 1;
            c.k_sum <- c.k_sum + k;
            if k < c.k_min then c.k_min <- k;
            if k > c.k_max then c.k_max <- k
        | None -> ());
        (match on_batch with
        | Some f -> f ~dispatched:k ~consumed
        | None -> ());
        let commit_in_batch = ref 0.0 in
        for j = 0 to consumed - 1 do
          incr step;
          let step = !step in
          (match verdicts.(j) with
          | Invalid -> incr invalid
          | Rejected -> ()
          | Accepted { swap; proposed } ->
              (match ctrs with
              | Some _ ->
                  let t0 = now () in
                  la.la_commit swap ~proposed;
                  commit_in_batch := !commit_in_batch +. (now () -. t0)
              | None -> la.la_commit swap ~proposed);
              current := proposed;
              incr accepted
          | Nonfinite ->
              (* Same policy as the serial walk: discard the move (already
                 aborted on the replicas), rebuild the maintained state,
                 and re-read rather than letting NaN corrupt the walk. *)
              incr nonfinite;
              current := la.la_refresh ());
          if step mod refresh_every = 0 then current := la.la_refresh ();
          (match audit with
          | Some f when audit_every > 0 && step mod audit_every = 0 ->
              Fault.point "mcmc.audit";
              incr audits;
              let divergences = f () in
              if divergences > 0 then begin
                (* The audit repaired the canonical fit; rebuild the
                   replicas from it so the walk continues from truth. *)
                diverged := !diverged + divergences;
                current := la.la_resync ()
              end
          | _ -> ());
          (match on_step with Some f -> f ~step ~energy:!current | None -> ());
          match (on_checkpoint, checkpoint_every) with
          | Some f, Some every when step mod every = 0 && step < steps ->
              f ~step ~stats:(interim step);
              (* The hook may rebase the canonical fit onto the snapshot
                 bytes; rebuild the replicas from it so this run and any
                 future resume continue from literally the same state. *)
              current := la.la_resync ()
          | _ -> ()
        done;
        (match ctrs with
        | Some c ->
            c.commit_us <- c.commit_us +. (1e6 *. !commit_in_batch);
            (* Resolution = everything after the verdicts return that is not
               a commit: the prefix scan, rng advance, and the cadence hooks
               (refresh/audit/checkpoint, when they fire). *)
            c.resolve_us <-
              c.resolve_us +. (1e6 *. (now () -. t_resolve -. !commit_in_batch))
        | None -> ())
  done;
  interim !step

let run ~rng ~steps ?(start = 0) ?(pow = 1.0) ?refresh ?(refresh_every = 100_000) ?audit
    ?(audit_every = 0) ?should_stop ?checkpoint_every ?on_checkpoint ?on_step ~energy ~propose
    ~apply ?commit ~revert () =
  if start < 0 || start > steps then invalid_arg "Mcmc.run: start must be within [0, steps]";
  if audit_every < 0 then invalid_arg "Mcmc.run: audit_every must be non-negative";
  let accepted = ref 0 and invalid = ref 0 and nonfinite = ref 0 in
  let audits = ref 0 and diverged = ref 0 in
  let initial_energy = energy () in
  let current = ref initial_energy in
  let stopped = ref false in
  let step = ref start in
  let interim step =
    {
      steps = step - start;
      accepted = !accepted;
      invalid = !invalid;
      refreshed_on_nonfinite = !nonfinite;
      audits = !audits;
      audit_divergences = !diverged;
      interrupted = !stopped;
      initial_energy;
      final_energy = !current;
    }
  in
  (* The stop check sits between steps, so a stop requested mid-step (a
     signal, a deadline) always lets the in-flight step finish: the state
     left behind is a complete post-step state, safe to checkpoint. *)
  while (not !stopped) && !step < steps do
    Fault.point "mcmc.signal";
    match should_stop with
    | Some f when f () -> stopped := true
    | _ ->
        incr step;
        let step = !step in
        Fault.point "mcmc.step";
        (match propose () with
        | None -> incr invalid
        | Some move ->
            apply move;
            let proposed = energy () in
            if Float.is_finite proposed then begin
              let delta = proposed -. !current in
              let accept = delta <= 0.0 || Prng.uniform rng < exp (-.pow *. delta) in
              if accept then begin
                (match commit with Some f -> f move | None -> ());
                current := proposed;
                incr accepted
              end
              else revert move
            end
            else begin
              (* Incremental drift or overflow produced a non-finite energy.
                 Discard the move, rebuild the incremental state, and re-read
                 rather than letting NaN corrupt the accept/reject decision. *)
              incr nonfinite;
              revert move;
              (match refresh with Some f -> f () | None -> ());
              current := energy ()
            end);
        (match refresh with
        | Some f when step mod refresh_every = 0 ->
            f ();
            current := energy ()
        | _ -> ());
        (match audit with
        | Some f when audit_every > 0 && step mod audit_every = 0 ->
            Fault.point "mcmc.audit";
            incr audits;
            let divergences = f () in
            if divergences > 0 then begin
              (* The audit found (and its recovery path repaired) corrupted
                 incremental state; re-read the energy from the rebuilt
                 state so the walk continues from truth. *)
              diverged := !diverged + divergences;
              current := energy ()
            end
        | _ -> ());
        (match on_step with Some f -> f ~step ~energy:!current | None -> ());
        (match (on_checkpoint, checkpoint_every) with
        | Some f, Some every when step mod every = 0 && step < steps ->
            f ~step ~stats:(interim step);
            (* The hook may rebuild the incremental state wholesale (the
               checkpoint rebase); re-read the energy from the new state. *)
            current := energy ()
        | _ -> ())
  done;
  interim !step
