module Prng = Wpinq_prng.Prng

type t = { n : int; adj : int array array; m : int }

let normalize (u, v) = if u <= v then (u, v) else (v, u)

let of_edges ?n edge_list =
  let max_id = List.fold_left (fun acc (u, v) -> max acc (max u v)) (-1) edge_list in
  let n = match n with Some n -> max n (max_id + 1) | None -> max_id + 1 in
  let seen = Hashtbl.create (max 16 (List.length edge_list)) in
  let deg = Array.make (max n 1) 0 in
  List.iter
    (fun e ->
      let u, v = normalize e in
      if u <> v && u >= 0 && not (Hashtbl.mem seen (u, v)) then begin
        Hashtbl.replace seen (u, v) ();
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      end)
    edge_list;
  let adj = Array.init n (fun v -> Array.make deg.(v) 0) in
  let fill = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) () ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    seen;
  Array.iter (fun nbrs -> Array.sort compare nbrs) adj;
  { n; adj; m = Hashtbl.length seen }

let n g = g.n
let m g = g.m

let edges g =
  let acc = ref [] in
  Array.iteri
    (fun u nbrs -> Array.iter (fun v -> if u < v then acc := (u, v) :: !acc) nbrs)
    g.adj;
  !acc

let directed_edges g =
  let acc = ref [] in
  Array.iteri (fun u nbrs -> Array.iter (fun v -> acc := (u, v) :: !acc) nbrs) g.adj;
  !acc

let adj g v = g.adj.(v)

let has_edge g u v =
  if u < 0 || u >= g.n || v < 0 || v >= g.n then false
  else
    let nbrs = g.adj.(u) in
    let rec bsearch lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if nbrs.(mid) = v then true
        else if nbrs.(mid) < v then bsearch (mid + 1) hi
        else bsearch lo mid
    in
    bsearch 0 (Array.length nbrs)

let degree g v = Array.length g.adj.(v)
let degrees g = Array.map Array.length g.adj
let dmax g = Array.fold_left (fun acc nbrs -> max acc (Array.length nbrs)) 0 g.adj

let sum_deg_sq g =
  Array.fold_left (fun acc nbrs -> acc + (Array.length nbrs * Array.length nbrs)) 0 g.adj

let degree_sequence_desc g =
  let d = degrees g in
  Array.sort (fun a b -> compare b a) d;
  d

let degree_ccdf g =
  let dm = dmax g in
  let ccdf = Array.make (max dm 1) 0 in
  Array.iter
    (fun nbrs ->
      let d = Array.length nbrs in
      for i = 0 to d - 1 do
        ccdf.(i) <- ccdf.(i) + 1
      done)
    g.adj;
  ccdf

(* Sorted-array intersection, counting common neighbors greater than
   [floor].  Used to enumerate each triangle exactly once as u < v < w. *)
let iter_common_above g u v floor f =
  let a = g.adj.(u) and b = g.adj.(v) in
  let la = Array.length a and lb = Array.length b in
  let i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      if x > floor then f x;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done

let iter_triangles g f =
  Array.iteri
    (fun u nbrs ->
      Array.iter (fun v -> if u < v then iter_common_above g u v v (fun w -> f u v w)) nbrs)
    g.adj

let triangle_count g =
  let c = ref 0 in
  iter_triangles g (fun _ _ _ -> incr c);
  !c

let sort3 (a, b, c) =
  let x = min a (min b c) and z = max a (max b c) in
  (x, a + b + c - x - (max a (max b c)), z)

let triangles_by_degree g =
  let counts = Hashtbl.create 64 in
  iter_triangles g (fun u v w ->
      let key = sort3 (degree g u, degree g v, degree g w) in
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)));
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) counts []

(* Common-neighbor counts per unordered vertex pair: for every vertex, every
   pair of its neighbors gains one common neighbor.  O(Σ d²) work. *)
let common_neighbor_counts g =
  let counts = Hashtbl.create (16 * g.n) in
  Array.iter
    (fun nbrs ->
      let d = Array.length nbrs in
      for i = 0 to d - 2 do
        for j = i + 1 to d - 1 do
          let key = (nbrs.(i), nbrs.(j)) in
          Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
        done
      done)
    g.adj;
  counts

let square_count g =
  (* Each 4-cycle is seen from both diagonals: #C4 = Σ C(cnt,2) / 2. *)
  let pairs =
    Hashtbl.fold (fun _ c acc -> acc + (c * (c - 1) / 2)) (common_neighbor_counts g) 0
  in
  pairs / 2

let sort4 (a, b, c, d) =
  match List.sort compare [ a; b; c; d ] with
  | [ w; x; y; z ] -> (w, x, y, z)
  | _ -> assert false

let squares_by_degree g =
  (* For each diagonal pair (u,w) and each unordered pair {x,y} of their
     common neighbors, the cycle u-x-w-y is counted; each square appears
     from both of its diagonals, so halve at the end. *)
  let commons = Hashtbl.create (16 * g.n) in
  Array.iteri
    (fun v nbrs ->
      let d = Array.length nbrs in
      for i = 0 to d - 2 do
        for j = i + 1 to d - 1 do
          let key = (nbrs.(i), nbrs.(j)) in
          let cur = Option.value ~default:[] (Hashtbl.find_opt commons key) in
          Hashtbl.replace commons key (v :: cur)
        done
      done)
    g.adj;
  let doubled = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (u, w) middles ->
      let rec pairs = function
        | [] -> ()
        | x :: rest ->
            List.iter
              (fun y ->
                let key = sort4 (degree g u, degree g x, degree g w, degree g y) in
                Hashtbl.replace doubled key
                  (1 + Option.value ~default:0 (Hashtbl.find_opt doubled key)))
              rest;
            pairs rest
      in
      pairs middles)
    commons;
  Hashtbl.fold
    (fun k c acc ->
      assert (c mod 2 = 0);
      (k, c / 2) :: acc)
    doubled []

let joint_degree_counts g =
  let counts = Hashtbl.create 64 in
  Array.iteri
    (fun u nbrs ->
      Array.iter
        (fun v ->
          if u < v then begin
            let du = degree g u and dv = degree g v in
            let key = (min du dv, max du dv) in
            Hashtbl.replace counts key
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
          end)
        nbrs)
    g.adj;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) counts []

let assortativity g =
  (* Newman's r over directed edge endpoints (j, k): both orientations. *)
  let sum_jk = ref 0.0 and sum_j = ref 0.0 and sum_j2 = ref 0.0 and cnt = ref 0 in
  Array.iteri
    (fun u nbrs ->
      let du = float_of_int (degree g u) in
      Array.iter
        (fun v ->
          let dv = float_of_int (degree g v) in
          sum_jk := !sum_jk +. (du *. dv);
          sum_j := !sum_j +. du;
          sum_j2 := !sum_j2 +. (du *. du);
          incr cnt)
        nbrs)
    g.adj;
  let c = float_of_int !cnt in
  if c = 0.0 then Float.nan
  else
    let mean = !sum_j /. c in
    let num = (!sum_jk /. c) -. (mean *. mean) in
    let den = (!sum_j2 /. c) -. (mean *. mean) in
    if Float.abs den < 1e-12 then Float.nan else num /. den

let clustering_coefficient g =
  let open_paths =
    Array.fold_left
      (fun acc nbrs ->
        let d = Array.length nbrs in
        acc + (d * (d - 1) / 2))
      0 g.adj
  in
  if open_paths = 0 then 0.0
  else 3.0 *. float_of_int (triangle_count g) /. float_of_int open_paths

let tbi_signal g =
  let acc = ref 0.0 in
  iter_triangles g (fun u v w ->
      let da = 1.0 /. float_of_int (degree g u)
      and db = 1.0 /. float_of_int (degree g v)
      and dc = 1.0 /. float_of_int (degree g w) in
      acc := !acc +. Float.min da db +. Float.min da dc +. Float.min db dc);
  !acc

module Mutable = struct
  type graph = t

  (* Struct-of-arrays edge store: endpoints live in two parallel [int]
     arrays (normalized [u < v]) and the membership index is an
     open-addressing table over the packed key [u * n + v] — no tuple is
     allocated per probed candidate, and no polymorphic hash runs on the
     hot path of the proposal generator. *)
  type t = {
    n : int;
    eu : int array; (* endpoint u at each edge slot, u < v *)
    ev : int array; (* endpoint v at each edge slot *)
    m : int;
    mutable keys : int array; (* 0 = empty, -1 = tombstone, else packed key + 1 *)
    mutable vals : int array; (* edge slot for the key at the same index *)
    mutable mask : int;
    mutable tombs : int;
    deg : int array;
  }

  type swap = { remove : (int * int) * (int * int); add : (int * int) * (int * int) }

  let pack t u v = (u * t.n) + v
  let slot_of t key = key * 0x9E3779B1 land max_int land t.mask

  (* Linear probing.  Lookups must skip tombstones; inserts may fill
     them.  Returns the index holding [key], or -1. *)
  let idx_find t key =
    let stored = key + 1 in
    let s = ref (slot_of t key) in
    let r = ref (-2) in
    while !r = -2 do
      let k = t.keys.(!s) in
      if k = stored then r := !s
      else if k = 0 then r := -1
      else s := (!s + 1) land t.mask
    done;
    !r

  let idx_mem t key = idx_find t key >= 0

  let idx_insert t key v =
    let stored = key + 1 in
    let s = ref (slot_of t key) in
    while t.keys.(!s) <> 0 && t.keys.(!s) <> -1 do
      s := (!s + 1) land t.mask
    done;
    if t.keys.(!s) = -1 then t.tombs <- t.tombs - 1;
    t.keys.(!s) <- stored;
    t.vals.(!s) <- v

  let idx_remove t key =
    let i = idx_find t key in
    if i >= 0 then begin
      t.keys.(i) <- -1;
      t.tombs <- t.tombs + 1
    end

  (* Rebuild the table in edge-slot order once tombstones crowd it.  The
     trigger and the rebuild order are both deterministic functions of
     the edge state, so resumed chains probe identically. *)
  let idx_rebuild t =
    Array.fill t.keys 0 (Array.length t.keys) 0;
    t.tombs <- 0;
    for i = 0 to t.m - 1 do
      idx_insert t (pack t t.eu.(i) t.ev.(i)) i
    done

  let idx_maybe_rehash t = if 4 * (t.m + t.tombs) > 3 * (t.mask + 1) then idx_rebuild t

  let index_capacity m =
    let cap = ref 16 in
    while !cap < 4 * m do
      cap := !cap * 2
    done;
    !cap

  let of_edge_array ~n edges =
    if n < 0 then invalid_arg "Mutable.of_edge_array: negative n";
    let m = Array.length edges in
    let eu = Array.make (max m 1) 0 and ev = Array.make (max m 1) 0 in
    let cap = index_capacity m in
    let t =
      {
        n;
        eu;
        ev;
        m;
        keys = Array.make cap 0;
        vals = Array.make cap 0;
        mask = cap - 1;
        tombs = 0;
        deg = Array.make (max n 1) 0;
      }
    in
    Array.iteri
      (fun i e ->
        let u, v = normalize e in
        if u < 0 || v >= n then invalid_arg "Mutable.of_edge_array: vertex id out of range";
        if u = v then invalid_arg "Mutable.of_edge_array: self-loop";
        let key = pack t u v in
        if idx_mem t key then invalid_arg "Mutable.of_edge_array: duplicate edge";
        eu.(i) <- u;
        ev.(i) <- v;
        idx_insert t key i;
        t.deg.(u) <- t.deg.(u) + 1;
        t.deg.(v) <- t.deg.(v) + 1)
      edges;
    t

  let of_graph (g : graph) = of_edge_array ~n:g.n (Array.of_list (edges g))
  let edge_array t = Array.init t.m (fun i -> (t.eu.(i), t.ev.(i)))
  let to_graph t = of_edges ~n:t.n (Array.to_list (edge_array t))

  let copy t =
    {
      t with
      eu = Array.copy t.eu;
      ev = Array.copy t.ev;
      keys = Array.copy t.keys;
      vals = Array.copy t.vals;
      deg = Array.copy t.deg;
    }

  let n t = t.n
  let m t = t.m

  let has_edge t u v =
    let u, v = if u < v then (u, v) else (v, u) in
    idx_mem t (pack t u v)

  let degree t v = t.deg.(v)

  let propose_swap t rng =
    let m = t.m in
    if m < 2 then None
    else
      let i = Prng.int rng m in
      let j = Prng.int rng m in
      if i = j then None
      else
        let a = t.eu.(i) and b = t.ev.(i) in
        let c0 = t.eu.(j) and d0 = t.ev.(j) in
        (* Randomly orient the second edge so both re-pairings are
           reachable. *)
        let orient = Prng.bool rng in
        let c = if orient then c0 else d0 in
        let d = if orient then d0 else c0 in
        if a = d || c = b then None
        else
          let u1 = if a < d then a else d and v1 = if a < d then d else a in
          let u2 = if c < b then c else b and v2 = if c < b then b else c in
          let k1 = pack t u1 v1 and k2 = pack t u2 v2 in
          if k1 = k2 || idx_mem t k1 || idx_mem t k2 then None
          else Some { remove = ((a, b), (c, d)); add = ((u1, v1), (u2, v2)) }

  let apply t { remove = r1, r2; add = a1, a2 } =
    let ru1, rv1 = normalize r1 and ru2, rv2 = normalize r2 in
    let au1, av1 = normalize a1 and au2, av2 = normalize a2 in
    let kr1 = pack t ru1 rv1 and kr2 = pack t ru2 rv2 in
    let ka1 = pack t au1 av1 and ka2 = pack t au2 av2 in
    let i = idx_find t kr1 in
    if i < 0 then invalid_arg "Mutable.apply: removed edge absent";
    let j = idx_find t kr2 in
    if j < 0 then invalid_arg "Mutable.apply: removed edge absent";
    if idx_mem t ka1 || idx_mem t ka2 then invalid_arg "Mutable.apply: added edge already present";
    let i = t.vals.(i) and j = t.vals.(j) in
    idx_remove t kr1;
    idx_remove t kr2;
    t.eu.(i) <- au1;
    t.ev.(i) <- av1;
    t.eu.(j) <- au2;
    t.ev.(j) <- av2;
    idx_insert t ka1 i;
    idx_insert t ka2 j;
    idx_maybe_rehash t

  let invert { remove; add } = { remove = add; add = remove }

  let delta { remove = r1, r2; add = a1, a2 } =
    let both w (u, v) = [ ((u, v), w); ((v, u), w) ] in
    List.concat [ both (-1.0) r1; both (-1.0) r2; both 1.0 a1; both 1.0 a2 ]
end
