(** Simple undirected graphs and the exact statistics the paper's
    experiments measure against (Section 5: Tables 1–3).

    Vertices are integers [0 .. n-1].  Graphs are simple (no self-loops, no
    parallel edges); construction normalizes and deduplicates.  The exact
    statistics here serve as ground truth next to the differentially-private
    estimates, and as inputs to the synthesis workflow's progress traces. *)

type t

val of_edges : ?n:int -> (int * int) list -> t
(** [of_edges ?n edges] builds a graph from an edge list.  Self-loops and
    duplicates (in either orientation) are dropped.  [n] defaults to one
    more than the largest vertex id mentioned; isolated vertices beyond
    that must be declared through [n]. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of undirected edges. *)

val edges : t -> (int * int) list
(** The edge list, with [u < v] in every pair. *)

val directed_edges : t -> (int * int) list
(** Both orientations of every edge — the symmetric directed dataset the
    paper's graph queries consume (each record carries weight 1.0). *)

val adj : t -> int -> int array
(** Sorted neighbor array of a vertex. *)

val has_edge : t -> int -> int -> bool
val degree : t -> int -> int
val degrees : t -> int array
val dmax : t -> int

val sum_deg_sq : t -> int
(** [Σ_v d_v²] — the quantity that governs the incremental engine's memory
    and per-step cost for triangle queries (Figure 6). *)

val degree_sequence_desc : t -> int array
(** Vertex degrees sorted non-increasing (the object Section 3.1
    measures). *)

val degree_ccdf : t -> int array
(** [ccdf.(i)] is the number of vertices with degree strictly greater than
    [i], for [i = 0 .. dmax-1] — the functional inverse of
    {!degree_sequence_desc}. *)

val triangle_count : t -> int
(** Exact number of triangles (the paper's Δ). *)

val triangles_by_degree : t -> ((int * int * int) * int) list
(** Exact TbD ground truth: for each sorted degree triple [(x ≤ y ≤ z)],
    the number of triangles whose vertices have those degrees. *)

val square_count : t -> int
(** Exact number of 4-cycles. *)

val squares_by_degree : t -> ((int * int * int * int) * int) list
(** Exact SbD ground truth, keyed by sorted degree quadruple.  Costs
    [O(Σ common-neighbors²)]; intended for the small graphs of tests and
    examples. *)

val joint_degree_counts : t -> ((int * int) * int) list
(** For each degree pair [(x ≤ y)], the number of edges whose endpoints
    have degrees [x] and [y] (the JDD of Section 3.2). *)

val assortativity : t -> float
(** Newman's degree assortativity [r]: the Pearson correlation of the
    degrees at the two ends of a uniformly random edge.  Returns [nan] on
    degree-regular graphs (zero variance). *)

val clustering_coefficient : t -> float
(** Global clustering coefficient: [3·Δ / #(open length-2 paths)]. *)

val tbi_signal : t -> float
(** The exact value of the TbI query's single count (Eq. 8):
    [Σ_{triangles (a,b,c)} min(1/da,1/db) + min(1/da,1/dc) + min(1/db,1/dc)].
    This is the "signal" the MCMC fit chases in Section 5.3. *)

(** {1 Mutable graphs for random walks}

    The degree-preserving edge-swap walk (Section 5.1) and [Random(G)]
    rewiring both edit graphs in place. *)

module Mutable : sig
  type graph := t
  type t

  type swap = { remove : (int * int) * (int * int); add : (int * int) * (int * int) }
  (** A double-edge swap: [remove = ((a,b), (c,d))], [add = ((a,d), (c,b))]
      with all four pairs normalized [u < v].  Swaps preserve every vertex
      degree. *)

  val of_graph : graph -> t
  val to_graph : t -> graph
  val copy : t -> t

  val edge_array : t -> (int * int) array
  (** A copy of the internal edge array {e in its current positional
      order}.  The random walk indexes edges by position, so the order is
      part of the walk's state: checkpoints must persist it exactly for a
      resumed chain to retrace the original one. *)

  val of_edge_array : n:int -> (int * int) array -> t
  (** Rebuilds a mutable graph from {!edge_array} output, preserving the
      positional order.  Raises [Invalid_argument] on out-of-range ids,
      self-loops, or duplicate edges — a checkpoint that decodes into an
      invalid graph is rejected rather than repaired. *)

  val n : t -> int
  val m : t -> int
  val has_edge : t -> int -> int -> bool
  val degree : t -> int -> int

  val propose_swap : t -> Wpinq_prng.Prng.t -> swap option
  (** Draws two distinct random edges and a random re-pairing; [None] if the
      result would create a self-loop or a parallel edge (the proposal is
      simply rejected, as in the paper's walk). *)

  val apply : t -> swap -> unit
  (** Applies a valid swap.  Raises [Invalid_argument] if the removed edges
      are absent or the added ones present. *)

  val invert : swap -> swap
  (** The swap that undoes [swap]. *)

  val delta : swap -> ((int * int) * float) list
  (** The weight changes the swap induces on the {e symmetric directed}
      edge dataset: 8 records (±both orientations of all four edges) —
      ready to feed to the incremental engine as one batch. *)
end
