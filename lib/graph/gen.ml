module Prng = Wpinq_prng.Prng

let erdos_renyi ~n ~m rng =
  if n < 2 then invalid_arg "Gen.erdos_renyi: need at least two vertices";
  let max_edges = n * (n - 1) / 2 in
  if m > max_edges then invalid_arg "Gen.erdos_renyi: too many edges";
  let seen = Hashtbl.create (2 * m) in
  let edges = ref [] in
  while Hashtbl.length seen < m do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then begin
      let e = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem seen e) then begin
        Hashtbl.replace seen e ();
        edges := e :: !edges
      end
    end
  done;
  Graph.of_edges ~n !edges

let erdos_renyi_p ~n ~p rng =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.uniform rng < p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let barabasi_albert ~n ~m ?(alpha = 1.0) rng =
  if m < 1 || n <= m then invalid_arg "Gen.barabasi_albert: need n > m >= 1";
  let deg = Array.make n 0 in
  let weights = Fenwick.create n in
  (* Attachment weight of a vertex: (degree)^alpha + 1, the +1 keeping
     zero-degree vertices reachable and smoothing early steps. *)
  let weight_of d = (float_of_int d ** alpha) +. 1.0 in
  let edges = ref [] in
  let add_edge u v =
    edges := (u, v) :: !edges;
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1;
    Fenwick.set weights u (weight_of deg.(u));
    Fenwick.set weights v (weight_of deg.(v))
  in
  (* Seed: a path on the first m+1 vertices. *)
  for v = 0 to m - 1 do
    Fenwick.set weights v (weight_of 0)
  done;
  for v = 1 to m do
    Fenwick.set weights v (weight_of 0);
    add_edge (v - 1) v
  done;
  for v = m + 1 to n - 1 do
    (* Draw m distinct existing targets proportional to weight; the target
       pool is vertices [0, v). *)
    let chosen = Hashtbl.create m in
    let attempts = ref 0 in
    while Hashtbl.length chosen < m && !attempts < 200 * m do
      incr attempts;
      let t = Fenwick.sample weights rng in
      if t < v && not (Hashtbl.mem chosen t) then Hashtbl.replace chosen t ()
    done;
    Fenwick.set weights v (weight_of 0);
    Hashtbl.iter (fun t () -> add_edge t v) chosen
  done;
  Graph.of_edges ~n !edges

let configuration_model ~degrees rng =
  let n = Array.length degrees in
  let total = Array.fold_left ( + ) 0 degrees in
  let stubs = Array.make (total - (total mod 2)) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        if !pos < Array.length stubs then begin
          stubs.(!pos) <- v;
          incr pos
        end
      done)
    degrees;
  Prng.shuffle rng stubs;
  let edges = ref [] in
  let k = Array.length stubs / 2 in
  for i = 0 to k - 1 do
    let u = stubs.(2 * i) and v = stubs.((2 * i) + 1) in
    if u <> v then edges := (u, v) :: !edges
  done;
  (* Graph.of_edges erases remaining parallel edges. *)
  Graph.of_edges ~n !edges

let clustered ~n ~community ~p_in ~extra rng =
  if community < 2 then invalid_arg "Gen.clustered: community size must be >= 2";
  let edges = ref [] in
  (* Partition [0, n) into contiguous communities with sizes jittered
     around [community] so degrees vary across communities (this is what
     makes same-community vertices degree-correlated, hence assortative). *)
  let start = ref 0 in
  while !start < n do
    let jitter = Prng.int rng community in
    let size = min (n - !start) (max 2 ((community / 2) + jitter)) in
    for u = !start to !start + size - 1 do
      for v = u + 1 to !start + size - 1 do
        if Prng.uniform rng < p_in then edges := (u, v) :: !edges
      done
    done;
    start := !start + size
  done;
  (* Sparse random cross edges knit the communities together. *)
  let added = ref 0 in
  while !added < extra do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then begin
      edges := (u, v) :: !edges;
      incr added
    end
  done;
  Graph.of_edges ~n !edges

let powerlaw_cluster ~n ~m ~p_triad ?(alpha = 1.0) rng =
  if m < 1 || n <= m then invalid_arg "Gen.powerlaw_cluster: need n > m >= 1";
  if p_triad < 0.0 || p_triad > 1.0 then invalid_arg "Gen.powerlaw_cluster: p_triad in [0,1]";
  let deg = Array.make n 0 in
  let nbrs = Array.make n [] in
  let weights = Fenwick.create n in
  let weight_of d = (float_of_int d ** alpha) +. 1.0 in
  let edges = ref [] in
  let connected u v = u = v || List.mem v nbrs.(u) in
  let add_edge u v =
    edges := (u, v) :: !edges;
    nbrs.(u) <- v :: nbrs.(u);
    nbrs.(v) <- u :: nbrs.(v);
    deg.(u) <- deg.(u) + 1;
    deg.(v) <- deg.(v) + 1;
    Fenwick.set weights u (weight_of deg.(u));
    Fenwick.set weights v (weight_of deg.(v))
  in
  for v = 0 to m - 1 do
    Fenwick.set weights v (weight_of 0)
  done;
  for v = 1 to m do
    Fenwick.set weights v (weight_of 0);
    add_edge (v - 1) v
  done;
  for v = m + 1 to n - 1 do
    Fenwick.set weights v (weight_of 0);
    let prev = ref (-1) in
    let made = ref 0 in
    let attempts = ref 0 in
    while !made < m && !attempts < 200 * m do
      incr attempts;
      let target =
        if !prev >= 0 && Prng.uniform rng < p_triad && nbrs.(!prev) <> [] then
          (* Triad formation: a random neighbor of the previous target. *)
          List.nth nbrs.(!prev) (Prng.int rng (List.length nbrs.(!prev)))
        else
          let t = Fenwick.sample weights rng in
          t
      in
      if target < v && not (connected v target) then begin
        add_edge v target;
        prev := target;
        incr made
      end
    done
  done;
  Graph.of_edges ~n !edges

let epinions_like ~n ~m ?(exponent = 2.0) rng =
  if n < 2 then invalid_arg "Gen.epinions_like: need at least two vertices";
  if exponent <= 1.0 then invalid_arg "Gen.epinions_like: exponent must exceed 1";
  let max_edges = n * (n - 1) / 2 in
  if m < 1 || m > max_edges then invalid_arg "Gen.epinions_like: edge count out of range";
  (* Chung–Lu style rank weights: vertex [v] targets degree ∝ (v+1)^(-β)
     with β = 1/(exponent-1), which realizes a degree tail P(d) ~ d^(-exponent)
     — the heavy-tailed Epinions profile.  Unlike preferential attachment
     this decouples [n] from [m], so paper-scale shapes (75k nodes, 1M
     edges) are directly configurable. *)
  let beta = 1.0 /. (exponent -. 1.0) in
  let w = Array.init n (fun v -> float_of_int (v + 1) ** -.beta) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let scale = 2.0 *. float_of_int m /. total in
  let degrees =
    Array.map (fun wi -> max 1 (min (n - 1) (int_of_float (Float.round (wi *. scale))))) w
  in
  (* Erased stub matching, then uniform top-up to exactly [m] edges: the
     erasure loses only the few percent of pairings that collide, so the
     tail shape survives and the edge count is exact. *)
  let total_stubs = Array.fold_left ( + ) 0 degrees in
  let stubs = Array.make (total_stubs - (total_stubs mod 2)) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        if !pos < Array.length stubs then begin
          stubs.(!pos) <- v;
          incr pos
        end
      done)
    degrees;
  Prng.shuffle rng stubs;
  let seen = Hashtbl.create (2 * m) in
  let edges = ref [] in
  let count = ref 0 in
  let add u v =
    if u <> v && !count < m then begin
      let e = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem seen e) then begin
        Hashtbl.replace seen e ();
        edges := e :: !edges;
        incr count
      end
    end
  in
  let k = Array.length stubs / 2 in
  for i = 0 to k - 1 do
    add stubs.(2 * i) stubs.((2 * i) + 1)
  done;
  while !count < m do
    add (Prng.int rng n) (Prng.int rng n)
  done;
  Graph.of_edges ~n !edges
