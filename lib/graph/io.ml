module Persist = Wpinq_persist.Persist

exception Parse_error of { path : string; line : int; text : string; reason : string }

let () =
  Printexc.register_printer (function
    | Parse_error { path; line; text; reason } ->
        Some (Printf.sprintf "Graph.Io.Parse_error(%s:%d: %s; offending text %S)" path line reason text)
    | _ -> None)

let write g path =
  Persist.Atomic.write ~path (fun oc ->
      Printf.fprintf oc "# nodes %d edges %d\n" (Graph.n g) (Graph.m g);
      List.iter (fun (u, v) -> Printf.fprintf oc "%d %d\n" u v) (Graph.edges g))

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let edges = ref [] in
      let seen = Hashtbl.create 256 in
      let n = ref 0 in
      let header_n = ref None in
      let lineno = ref 0 in
      let fail text reason = raise (Parse_error { path; line = !lineno; text; reason }) in
      (try
         while true do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line = "" then ()
           else if line.[0] = '#' then begin
             (* Honor a "# nodes N ..." header if present. *)
             match String.split_on_char ' ' line with
             | "#" :: "nodes" :: count :: _ -> (
                 match int_of_string_opt count with
                 | Some c when c >= 0 ->
                     header_n := Some c;
                     n := c
                 | Some _ -> fail line "negative node count in header"
                 | None -> ())
             | _ -> ()
           end
           else
             match
               line |> String.split_on_char ' '
               |> List.filter (fun s -> s <> "")
               |> List.map int_of_string_opt
             with
             | [ Some u; Some v ] -> (
                 if u < 0 || v < 0 then fail line "negative vertex id";
                 (* Simple undirected graphs only: a self-loop or repeated
                    edge would silently become a multigraph the engine
                    does not model (Graph.of_edges would drop it, hiding
                    malformed streaming deltas).  Reject at parse time
                    with the line number instead. *)
                 if u = v then fail line "self-loop";
                 let key = if u < v then (u, v) else (v, u) in
                 if Hashtbl.mem seen key then fail line "duplicate edge";
                 Hashtbl.add seen key ();
                 match !header_n with
                 | Some hn when u >= hn || v >= hn ->
                     fail line
                       (Printf.sprintf "vertex id exceeds declared node count %d" hn)
                 | _ -> edges := (u, v) :: !edges)
             | _ -> fail line "expected two integer vertex ids"
         done
       with End_of_file -> ());
      Graph.of_edges ~n:!n !edges)
