(** Plain-text edge-list serialization (one ["u v"] pair per line, [#]
    comments ignored) — the format SNAP datasets ship in, so real data can
    be dropped in for the synthetic stand-ins when available. *)

exception Parse_error of { path : string; line : int; text : string; reason : string }
(** A malformed input file: where ([path], 1-based [line]), what was there
    ([text], trimmed), and why it was rejected ([reason]). *)

val write : Graph.t -> string -> unit
(** [write g path] saves the edge list (with a header comment recording
    [n]).  The write is atomic — temp file then rename — so a crash mid-write
    never truncates an existing file at [path]. *)

val read : string -> Graph.t
(** [read path] parses an edge list.  Blank lines are skipped; a ["# nodes
    N"] header, when present, fixes the vertex count and makes ids [>= N]
    errors.  Raises {!Parse_error} (with line number and offending text) on
    non-edge lines, negative ids, ids out of the declared range, self-loops,
    and duplicate edges (in either orientation) — the engine models simple
    undirected graphs, and silently collapsing a multigraph would hide
    malformed streaming deltas. *)
