(** Random graph generators.

    These provide the workloads of the paper's experiments: Barabási–Albert
    graphs with tunable attachment skew (Table 3, Figure 6), the
    configuration model that turns a DP-fitted degree sequence into a seed
    graph (Phase 1, Section 5.1), and clustered generators used as stand-ins
    for the collaboration networks of Table 1.  All generators are
    deterministic given the PRNG stream. *)

val erdos_renyi : n:int -> m:int -> Wpinq_prng.Prng.t -> Graph.t
(** [G(n, m)]: [m] distinct uniformly random edges. *)

val erdos_renyi_p : n:int -> p:float -> Wpinq_prng.Prng.t -> Graph.t
(** [G(n, p)]: each edge present independently with probability [p]. *)

val barabasi_albert : n:int -> m:int -> ?alpha:float -> Wpinq_prng.Prng.t -> Graph.t
(** Preferential attachment: each arriving vertex attaches [m] distinct
    edges to existing vertices drawn with probability ∝ [(degree)^alpha]
    (plus a unit smoothing term so isolated vertices stay reachable).
    [alpha = 1] (default) is classic Barabási–Albert; [alpha > 1] skews the
    degree distribution harder, raising [dmax] and [Σ d²] the way the
    paper's "dynamical exponent" sweep does (Table 3). *)

val configuration_model : degrees:int array -> Wpinq_prng.Prng.t -> Graph.t
(** Erased configuration model: pair up degree stubs uniformly at random,
    then drop self-loops and parallel edges.  Realized degrees therefore
    track the requested ones closely but not exactly (as in any erased
    stub-matching).  An odd stub total loses one stub. *)

val clustered : n:int -> community:int -> p_in:float -> extra:int -> Wpinq_prng.Prng.t -> Graph.t
(** Collaboration-network stand-in: vertices are partitioned into
    communities of expected size [community]; within a community each edge
    appears with probability [p_in] (yielding dense, triangle-rich
    pockets), and [extra] uniformly random cross edges are added.  Produces
    the positively-assortative, high-triangle-count profile of the CA-*
    graphs in Table 1. *)

val epinions_like : n:int -> m:int -> ?exponent:float -> Wpinq_prng.Prng.t -> Graph.t
(** Epinions-shaped graph at a directly configurable size: [n] vertices and
    {e exactly} [m] edges with a power-law degree tail [P(d) ~ d^(-exponent)]
    (default exponent 2.0, matching the trust network's measured skew).
    Rank-weighted stub matching (Chung–Lu) realizes the tail; colliding
    pairings are erased and replaced by uniform top-up edges, which touches
    only a few percent of the mass.  Unlike {!barabasi_albert} the density
    is decoupled from the arrival process, so the paper-scale shape
    (75k nodes / 1M edges) is reachable in one call.  Deterministic given
    the PRNG stream. *)

val powerlaw_cluster :
  n:int -> m:int -> p_triad:float -> ?alpha:float -> Wpinq_prng.Prng.t -> Graph.t
(** Holme–Kim model: preferential attachment with triad formation.  Each
    arriving vertex makes [m] links; after a preferential first link, each
    further link copies a random neighbor of the previous target with
    probability [p_triad] (closing a triangle) and otherwise attaches
    preferentially (∝ [degreeᵅ + 1]).  Produces the heavy-tailed,
    triangle-rich, weakly-disassortative profile of real social networks
    (the Caltech and Epinions rows of Table 1). *)
