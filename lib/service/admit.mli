(** Admission control in front of the budget ledger.

    {!submit} is the one door a query goes through: per-tenant
    concurrency caps, a bounded wait queue with backpressure, a deadline
    that refuses late work and auto-releases its escrow, and typed
    refusals for every way a query can be turned away.  The privacy
    contract is delegated to {!Ledger}: the query's derived cost (from
    {!Wpinq_core.Plan.uses}) is escrowed {e before} the evaluation thunk
    runs, committed when the answer is handed back to the caller, and
    released on failure, refusal, or expiry — so a crash, an exception,
    or a timeout can never leak an un-accounted answer, and concurrent
    submitters can never jointly overspend a shared account.

    Safe to call from many domains at once; evaluation thunks run in the
    submitting domain, outside the controller's lock. *)

type t

type refusal =
  | Insufficient_budget of { tenant : string; requested : float; available : float }
  | Overloaded of { waiting : int; limit : int }
      (** the wait queue is full — backpressure, try again later *)
  | Timeout of { after : float }
      (** the deadline passed (queued too long, or the evaluation
          finished too late); any escrow was released *)
  | Shutting_down  (** the controller is draining *)
  | Rejected of Ledger.refusal
      (** every other ledger refusal (unknown tenant, invalid ε, …) *)

val refusal_to_string : refusal -> string

type stats = {
  admitted : int;  (** escrows taken (queries that started evaluating) *)
  committed : int;  (** answers delivered; escrow became spent *)
  released : int;  (** escrows returned (failure or late answer) *)
  refused_budget : int;
  refused_overload : int;
  refused_timeout : int;
  refused_shutdown : int;
  refused_other : int;
  plan_submissions : int;  (** queries that entered through {!submit_plan} *)
  plan_reused : int;
      (** of those, how many canonicalized to a plan this controller had
          already admitted (for any tenant) — the cross-tenant sharing the
          optimizer's plan cache converts into saved work *)
}

val create : ?max_per_tenant:int -> ?queue_limit:int -> Ledger.t -> t
(** [max_per_tenant] (default 4) caps a tenant's concurrently-evaluating
    queries; excess submitters wait.  [queue_limit] (default 64) bounds
    the total number of waiting submitters across tenants; beyond it,
    {!submit} refuses with [Overloaded] instead of queueing. *)

val ledger : t -> Ledger.t

val submit :
  t ->
  tenant:string ->
  cost:float ->
  ?timeout:float ->
  label:string ->
  (unit -> 'a) ->
  ('a, refusal) result
(** [submit t ~tenant ~cost ~label f] escrows [cost] ε against [tenant],
    runs [f ()], commits on success and returns its answer.  If [f]
    raises, the escrow is released and the exception re-raised (the
    caller sees the failure; the budget does not pay for it).
    [timeout] (seconds, measured from submission): once expired, a
    queued query is refused and a finished-but-late answer is {e
    discarded} — its escrow released, since an answer never delivered
    costs no privacy. *)

val submit_plan :
  t ->
  tenant:string ->
  epsilon:float ->
  ?timeout:float ->
  ?label:string ->
  'a Wpinq_core.Plan.t ->
  ('a Wpinq_core.Plan.t -> 'b) ->
  ('b, refusal) result
(** [submit_plan t ~tenant ~epsilon plan f] admits a {e reified} query:
    the plan is canonicalized with {!Wpinq_core.Plan.optimize}, its cost
    {e derived} as [Plan.uses × epsilon] (the optimizer preserves [uses],
    so canonicalization never changes the charge), and [f] is run on the
    optimized plan under the same escrow discipline as {!submit}.  Tenants
    submitting structurally equal queries converge on one optimized DAG —
    the optimizer caches on the canonical hash — and {!stats} counts how
    often that happens ([plan_reused]).  [label] defaults to a prefix of
    the canonical hash.  Raises [Invalid_argument] on a non-positive or
    non-finite [epsilon]. *)

val drain : t -> unit
(** Graceful shutdown: stop admitting (new and queued submissions refuse
    with [Shutting_down]), wait for in-flight evaluations to settle
    their escrows, then compact the ledger.  Idempotent. *)

val draining : t -> bool
val in_flight : t -> int
val stats : t -> stats
