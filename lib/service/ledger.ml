module Codec = Wpinq_persist.Persist.Codec

let slack = 1e-9

type account = {
  name : string;
  parent : string option;
  allocated : float;
  mutable spent : float;
  mutable committed : float;
  mutable retired : bool;
}

type escrow_entry = { e_id : int; e_tenant : string; e_cost : float; e_label : string }

type refusal =
  | Insufficient_budget of { tenant : string; requested : float; available : float }
  | Invalid_epsilon of { tenant : string; value : float }
  | Unknown_tenant of string
  | Duplicate_tenant of string
  | Retired_tenant of string
  | Unknown_escrow of int
  | Open_escrows of { tenant : string; count : int }
  | Has_children of { tenant : string; children : string list }

let refusal_to_string = function
  | Insufficient_budget { tenant; requested; available } ->
      Printf.sprintf "insufficient budget for %s: requested %g, available %g" tenant
        requested available
  | Invalid_epsilon { tenant; value } ->
      Printf.sprintf "invalid epsilon %g in a request against %s" value tenant
  | Unknown_tenant t -> "unknown tenant " ^ t
  | Duplicate_tenant t -> "tenant " ^ t ^ " already exists"
  | Retired_tenant t -> "tenant " ^ t ^ " is retired"
  | Unknown_escrow id -> Printf.sprintf "unknown escrow #%d (settled, or never issued)" id
  | Open_escrows { tenant; count } ->
      Printf.sprintf "%s still has %d open escrow(s)" tenant count
  | Has_children { tenant; children } ->
      Printf.sprintf "%s still has live delegation(s): %s" tenant
        (String.concat ", " children)

(* The journaled operation alphabet.  Every mutation of the ledger is one
   of these, written to the WAL *before* it is applied — recovery is
   "decode and re-apply", nothing more. *)
type op =
  | Op_create of { tenant : string; allocated : float }
  | Op_delegate of { parent : string; tenant : string; allocated : float }
  | Op_escrow of { id : int; tenant : string; cost : float; label : string }
  | Op_commit of { id : int }
  | Op_release of { id : int }
  | Op_retire of { tenant : string }

type t = {
  accounts : (string, account) Hashtbl.t;
  escrows : (int, escrow_entry) Hashtbl.t;
  mutable next_escrow : int;
  mutable seq : int;
  wal : Wal.t option;
  compact_every : int;
  (* Journal records since the *oldest retained* snapshot, oldest first
     when reversed — kept so compaction can rewrite the journal with the
     history an older-generation snapshot fallback still needs. *)
  mutable recent : (int * string) list;
  mutex : Mutex.t;
}

type recovery = {
  replayed : int;
  charged_on_doubt : int;
  doubt_epsilon : float;
  torn_bytes : int;
  snapshots_rejected : int;
}

type view = {
  v_parent : string option;
  v_allocated : float;
  v_spent : float;
  v_committed : float;
  v_retired : bool;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ---- codecs ---- *)

let encode_record seq op =
  let buf = Buffer.create 64 in
  Codec.write_int buf seq;
  (match op with
  | Op_create { tenant; allocated } ->
      Codec.write_int buf 0;
      Codec.write_string buf tenant;
      Codec.write_float buf allocated
  | Op_delegate { parent; tenant; allocated } ->
      Codec.write_int buf 1;
      Codec.write_string buf parent;
      Codec.write_string buf tenant;
      Codec.write_float buf allocated
  | Op_escrow { id; tenant; cost; label } ->
      Codec.write_int buf 2;
      Codec.write_int buf id;
      Codec.write_string buf tenant;
      Codec.write_float buf cost;
      Codec.write_string buf label
  | Op_commit { id } ->
      Codec.write_int buf 3;
      Codec.write_int buf id
  | Op_release { id } ->
      Codec.write_int buf 4;
      Codec.write_int buf id
  | Op_retire { tenant } ->
      Codec.write_int buf 5;
      Codec.write_string buf tenant);
  Buffer.contents buf

let decode_record payload =
  let r = Codec.reader payload in
  let seq = Codec.read_int r in
  let op =
    match Codec.read_int r with
    | 0 ->
        let tenant = Codec.read_string r in
        let allocated = Codec.read_float r in
        Op_create { tenant; allocated }
    | 1 ->
        let parent = Codec.read_string r in
        let tenant = Codec.read_string r in
        let allocated = Codec.read_float r in
        Op_delegate { parent; tenant; allocated }
    | 2 ->
        let id = Codec.read_int r in
        let tenant = Codec.read_string r in
        let cost = Codec.read_float r in
        let label = Codec.read_string r in
        Op_escrow { id; tenant; cost; label }
    | 3 -> Op_commit { id = Codec.read_int r }
    | 4 -> Op_release { id = Codec.read_int r }
    | 5 -> Op_retire { tenant = Codec.read_string r }
    | tag -> raise (Codec.Decode_error (Printf.sprintf "unknown ledger op tag %d" tag))
  in
  (seq, op)

let sorted_accounts t =
  Hashtbl.fold (fun _ a acc -> a :: acc) t.accounts []
  |> List.sort (fun a b -> compare a.name b.name)

let sorted_escrows t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.escrows []
  |> List.sort (fun a b -> compare a.e_id b.e_id)

let encode_snapshot t =
  let buf = Buffer.create 256 in
  Codec.write_int buf t.seq;
  Codec.write_int buf t.next_escrow;
  Codec.write_list
    (fun buf (a : account) ->
      Codec.write_string buf a.name;
      Codec.write_bool buf (Option.is_some a.parent);
      Codec.write_string buf (Option.value a.parent ~default:"");
      Codec.write_float buf a.allocated;
      Codec.write_float buf a.spent;
      Codec.write_float buf a.committed;
      Codec.write_bool buf a.retired)
    buf (sorted_accounts t);
  Codec.write_list
    (fun buf e ->
      Codec.write_int buf e.e_id;
      Codec.write_string buf e.e_tenant;
      Codec.write_float buf e.e_cost;
      Codec.write_string buf e.e_label)
    buf (sorted_escrows t);
  Buffer.contents buf

let decode_snapshot t payload =
  let r = Codec.reader payload in
  t.seq <- Codec.read_int r;
  t.next_escrow <- Codec.read_int r;
  let accounts =
    Codec.read_list
      (fun r ->
        let name = Codec.read_string r in
        let has_parent = Codec.read_bool r in
        let parent_name = Codec.read_string r in
        let allocated = Codec.read_float r in
        let spent = Codec.read_float r in
        let committed = Codec.read_float r in
        let retired = Codec.read_bool r in
        {
          name;
          parent = (if has_parent then Some parent_name else None);
          allocated;
          spent;
          committed;
          retired;
        })
      r
  in
  let escrows =
    Codec.read_list
      (fun r ->
        let e_id = Codec.read_int r in
        let e_tenant = Codec.read_string r in
        let e_cost = Codec.read_float r in
        let e_label = Codec.read_string r in
        { e_id; e_tenant; e_cost; e_label })
      r
  in
  List.iter (fun a -> Hashtbl.replace t.accounts a.name a) accounts;
  List.iter (fun e -> Hashtbl.replace t.escrows e.e_id e) escrows

(* ---- state mutation (validation already done, or replaying) ----

   Returns [Error] instead of raising when a reference is dangling, so
   replay over a damaged journal can stop conservatively instead of
   crashing recovery. *)

let apply_op t op =
  match op with
  | Op_create { tenant; allocated } ->
      Hashtbl.replace t.accounts tenant
        { name = tenant; parent = None; allocated; spent = 0.0; committed = 0.0;
          retired = false };
      Ok ()
  | Op_delegate { parent; tenant; allocated } -> (
      match Hashtbl.find_opt t.accounts parent with
      | None -> Error (Unknown_tenant parent)
      | Some p ->
          p.committed <- p.committed +. allocated;
          Hashtbl.replace t.accounts tenant
            { name = tenant; parent = Some parent; allocated; spent = 0.0;
              committed = 0.0; retired = false };
          Ok ())
  | Op_escrow { id; tenant; cost; label } -> (
      match Hashtbl.find_opt t.accounts tenant with
      | None -> Error (Unknown_tenant tenant)
      | Some a ->
          a.committed <- a.committed +. cost;
          Hashtbl.replace t.escrows id
            { e_id = id; e_tenant = tenant; e_cost = cost; e_label = label };
          if id >= t.next_escrow then t.next_escrow <- id + 1;
          Ok ())
  | Op_commit { id } -> (
      match Hashtbl.find_opt t.escrows id with
      | None -> Error (Unknown_escrow id)
      | Some e -> (
          match Hashtbl.find_opt t.accounts e.e_tenant with
          | None -> Error (Unknown_tenant e.e_tenant)
          | Some a ->
              a.committed <- a.committed -. e.e_cost;
              a.spent <- a.spent +. e.e_cost;
              Hashtbl.remove t.escrows id;
              Ok ()))
  | Op_release { id } -> (
      match Hashtbl.find_opt t.escrows id with
      | None -> Error (Unknown_escrow id)
      | Some e -> (
          match Hashtbl.find_opt t.accounts e.e_tenant with
          | None -> Error (Unknown_tenant e.e_tenant)
          | Some a ->
              a.committed <- a.committed -. e.e_cost;
              Hashtbl.remove t.escrows id;
              Ok ()))
  | Op_retire { tenant } -> (
      match Hashtbl.find_opt t.accounts tenant with
      | None -> Error (Unknown_tenant tenant)
      | Some a ->
          a.retired <- true;
          (match a.parent with
          | None -> ()
          | Some pname -> (
              match Hashtbl.find_opt t.accounts pname with
              | None -> ()
              | Some p ->
                  (* The delegation's escrow settles: spent rolls up, the
                     unspent remainder returns to the parent's available. *)
                  p.committed <- p.committed -. a.allocated;
                  p.spent <- p.spent +. a.spent));
          Ok ())

(* ---- durability ---- *)

let compact_unlocked t =
  match t.wal with
  | None -> ()
  | Some wal ->
      let snapshot = encode_snapshot t in
      (* The rewritten journal keeps every record newer than the oldest
         snapshot generation that survives rotation, so recovery can fall
         back past a corrupt newest snapshot and still replay forward. *)
      Wal.compact wal ~seq:t.seq ~snapshot ~retain:(fun oldest ->
          t.recent <- List.filter (fun (s, _) -> s > oldest) t.recent;
          List.rev_map snd t.recent)

let submit_op t op =
  t.seq <- t.seq + 1;
  (match t.wal with
  | None -> ()
  | Some wal ->
      let record = encode_record t.seq op in
      Wal.append wal record;
      t.recent <- (t.seq, record) :: t.recent);
  match apply_op t op with
  | Ok () ->
      (match t.wal with
      | Some wal when Wal.records_since_compact wal >= t.compact_every ->
          compact_unlocked t
      | _ -> ());
      Ok ()
  | Error _ as e ->
      (* Unreachable after validation; surface it rather than hide it. *)
      e

(* ---- validation ---- *)

let valid_epsilon ~tenant v =
  if Float.is_finite v && v >= 0.0 then Ok () else Error (Invalid_epsilon { tenant; value = v })

let live_account t tenant =
  match Hashtbl.find_opt t.accounts tenant with
  | None -> Error (Unknown_tenant tenant)
  | Some a when a.retired -> Error (Retired_tenant tenant)
  | Some a -> Ok a

let available_of (a : account) = a.allocated -. a.spent -. a.committed

let ( let* ) r f = Result.bind r f

(* ---- public operations ---- *)

let create_root t ~tenant ~allocated =
  locked t (fun () ->
      let* () = valid_epsilon ~tenant allocated in
      match Hashtbl.find_opt t.accounts tenant with
      | Some _ -> Error (Duplicate_tenant tenant)
      | None -> submit_op t (Op_create { tenant; allocated }))

let delegate t ~parent ~tenant ~allocated =
  locked t (fun () ->
      let* () = valid_epsilon ~tenant allocated in
      let* p = live_account t parent in
      match Hashtbl.find_opt t.accounts tenant with
      | Some _ -> Error (Duplicate_tenant tenant)
      | None ->
          let avail = available_of p in
          if allocated > avail +. slack then
            Error (Insufficient_budget { tenant = parent; requested = allocated; available = avail })
          else submit_op t (Op_delegate { parent; tenant; allocated }))

let escrow t ~tenant ~cost ~label =
  locked t (fun () ->
      let* () = valid_epsilon ~tenant cost in
      let* a = live_account t tenant in
      let avail = available_of a in
      if cost > avail +. slack then
        Error (Insufficient_budget { tenant; requested = cost; available = avail })
      else begin
        let id = t.next_escrow in
        let* () = submit_op t (Op_escrow { id; tenant; cost; label }) in
        Ok id
      end)

let commit t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.escrows id with
      | None -> Error (Unknown_escrow id)
      | Some _ -> submit_op t (Op_commit { id }))

let release t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.escrows id with
      | None -> Error (Unknown_escrow id)
      | Some _ -> submit_op t (Op_release { id }))

let retire t ~tenant =
  locked t (fun () ->
      let* _a = live_account t tenant in
      let open_count =
        Hashtbl.fold
          (fun _ e n -> if String.equal e.e_tenant tenant then n + 1 else n)
          t.escrows 0
      in
      if open_count > 0 then Error (Open_escrows { tenant; count = open_count })
      else
        let children =
          Hashtbl.fold
            (fun _ (a : account) acc ->
              if (not a.retired) && a.parent = Some tenant then a.name :: acc else acc)
            t.accounts []
          |> List.sort compare
        in
        if children <> [] then Error (Has_children { tenant; children })
        else submit_op t (Op_retire { tenant }))

(* ---- inspection ---- *)

let view_of (a : account) =
  {
    v_parent = a.parent;
    v_allocated = a.allocated;
    v_spent = a.spent;
    v_committed = a.committed;
    v_retired = a.retired;
  }

let tenants t =
  locked t (fun () -> List.map (fun (a : account) -> a.name) (sorted_accounts t))

let view t ~tenant =
  locked t (fun () -> Option.map view_of (Hashtbl.find_opt t.accounts tenant))

let with_account t tenant f =
  locked t (fun () -> Option.map f (Hashtbl.find_opt t.accounts tenant))

let allocated t ~tenant = with_account t tenant (fun a -> a.allocated)
let spent t ~tenant = with_account t tenant (fun a -> a.spent)
let committed t ~tenant = with_account t tenant (fun a -> a.committed)
let available t ~tenant = with_account t tenant available_of
let open_escrows t = locked t (fun () -> Hashtbl.length t.escrows)

let dump t =
  locked t (fun () -> List.map (fun a -> (a.name, view_of a)) (sorted_accounts t))

let overspend t =
  locked t (fun () ->
      List.filter_map
        (fun (a : account) ->
          let burden = a.spent +. a.committed in
          if burden > a.allocated +. slack then Some (a.name, burden -. a.allocated)
          else None)
        (sorted_accounts t))

(* ---- construction & recovery ---- *)

let fresh ?wal ?(compact_every = 1024) () =
  {
    accounts = Hashtbl.create 16;
    escrows = Hashtbl.create 16;
    next_escrow = 0;
    seq = 0;
    wal;
    compact_every;
    recent = [];
    mutex = Mutex.create ();
  }

let create_in_memory () = fresh ()

let compact t = locked t (fun () -> compact_unlocked t)

let close t =
  locked t (fun () -> match t.wal with None -> () | Some wal -> Wal.close wal)

let open_dir ?keep ?fsync ?compact_every dir =
  let wal, (wrec : Wal.recovery) = Wal.open_dir ?keep ?fsync dir in
  let t = fresh ~wal ?compact_every () in
  (match wrec.Wal.snapshot with
  | Some (payload, _step) -> decode_snapshot t payload
  | None -> ());
  (* Replay the journal over the snapshot.  Records at or below the
     snapshot's sequence are history the snapshot already contains; a
     non-contiguous jump or a dangling reference means the journal's tail
     belongs to a future the surviving snapshot never saw — stop there
     and let charge-on-doubt resolve what remains. *)
  let replayed = ref 0 in
  let rec replay = function
    | [] -> ()
    | payload :: rest -> (
        match decode_record payload with
        | exception Codec.Decode_error _ -> ()
        | seq, _ when seq <= t.seq -> replay rest
        | seq, _ when seq > t.seq + 1 -> ()
        | seq, op -> (
            match apply_op t op with
            | Ok () ->
                t.seq <- seq;
                t.recent <- (seq, payload) :: t.recent;
                incr replayed;
                replay rest
            | Error _ -> ()))
  in
  replay wrec.Wal.records;
  (* Charge-on-doubt: an escrow with no commit or release record might
     have delivered its noisy answer just before the crash — privacy errs
     safe and treats it as spent.  Deterministic order (by id) so a crash
     during the post-recovery compact replays identically. *)
  let doubtful = sorted_escrows t in
  let doubt_epsilon =
    List.fold_left
      (fun acc e ->
        ignore (apply_op t (Op_commit { id = e.e_id }));
        acc +. e.e_cost)
      0.0 doubtful
  in
  let recovery =
    {
      replayed = !replayed;
      charged_on_doubt = List.length doubtful;
      doubt_epsilon;
      torn_bytes = wrec.Wal.torn_bytes;
      snapshots_rejected = List.length wrec.Wal.rejected;
    }
  in
  (* Make the recovered state durable immediately: the charge-on-doubt
     resolutions exist only in memory until this snapshot lands. *)
  locked t (fun () -> compact_unlocked t);
  (t, recovery)
