type refusal =
  | Insufficient_budget of { tenant : string; requested : float; available : float }
  | Overloaded of { waiting : int; limit : int }
  | Timeout of { after : float }
  | Shutting_down
  | Rejected of Ledger.refusal

let refusal_to_string = function
  | Insufficient_budget { tenant; requested; available } ->
      Printf.sprintf "insufficient budget for %s: requested %g, available %g" tenant
        requested available
  | Overloaded { waiting; limit } ->
      Printf.sprintf "overloaded: %d waiting (limit %d)" waiting limit
  | Timeout { after } -> Printf.sprintf "deadline expired after %.3fs" after
  | Shutting_down -> "shutting down"
  | Rejected r -> Ledger.refusal_to_string r

type stats = {
  admitted : int;
  committed : int;
  released : int;
  refused_budget : int;
  refused_overload : int;
  refused_timeout : int;
  refused_shutdown : int;
  refused_other : int;
  plan_submissions : int;
  plan_reused : int;
}

type t = {
  ledger : Ledger.t;
  max_per_tenant : int;
  queue_limit : int;
  mutex : Mutex.t;
  running : (string, int) Hashtbl.t;  (* tenant -> evaluating now *)
  mutable waiting : int;
  mutable active : int;  (* escrow taken, evaluation not yet settled *)
  mutable drain_requested : bool;
  mutable admitted : int;
  mutable committed : int;
  mutable released : int;
  mutable refused_budget : int;
  mutable refused_overload : int;
  mutable refused_timeout : int;
  mutable refused_shutdown : int;
  mutable refused_other : int;
  seen_plans : (string, unit) Hashtbl.t;
      (* canonical hashes of optimized plans this controller has admitted —
         the denominator of cross-tenant plan reuse *)
  mutable plan_submissions : int;
  mutable plan_reused : int;
}

let create ?(max_per_tenant = 4) ?(queue_limit = 64) ledger =
  if max_per_tenant < 1 then invalid_arg "Admit.create: max_per_tenant must be >= 1";
  if queue_limit < 0 then invalid_arg "Admit.create: queue_limit must be >= 0";
  {
    ledger;
    max_per_tenant;
    queue_limit;
    mutex = Mutex.create ();
    running = Hashtbl.create 16;
    waiting = 0;
    active = 0;
    drain_requested = false;
    admitted = 0;
    committed = 0;
    released = 0;
    refused_budget = 0;
    refused_overload = 0;
    refused_timeout = 0;
    refused_shutdown = 0;
    refused_other = 0;
    seen_plans = Hashtbl.create 16;
    plan_submissions = 0;
    plan_reused = 0;
  }

let ledger t = t.ledger

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let draining t = locked t (fun () -> t.drain_requested)
let in_flight t = locked t (fun () -> t.active)

let stats t =
  locked t (fun () ->
      {
        admitted = t.admitted;
        committed = t.committed;
        released = t.released;
        refused_budget = t.refused_budget;
        refused_overload = t.refused_overload;
        refused_timeout = t.refused_timeout;
        refused_shutdown = t.refused_shutdown;
        refused_other = t.refused_other;
        plan_submissions = t.plan_submissions;
        plan_reused = t.plan_reused;
      })

let running_of t tenant = Option.value (Hashtbl.find_opt t.running tenant) ~default:0

(* The wait loop polls rather than blocking on a condition variable: a
   queued submitter must also wake for its own deadline and for drain,
   and the stdlib offers no timed wait.  The poll interval bounds the
   extra admission latency, not throughput — evaluation runs unlocked. *)
let poll_interval = 0.0005

(* Admission verdict for one locked look at the state.  [`Wait] means the
   submitter stays queued. *)
let try_admit t ~tenant ~cost ~label ~deadline ~started ~queued =
  locked t (fun () ->
      if t.drain_requested then begin
        if !queued then begin
          t.waiting <- t.waiting - 1;
          queued := false
        end;
        t.refused_shutdown <- t.refused_shutdown + 1;
        `Refused Shutting_down
      end
      else if (match deadline with Some d -> Unix.gettimeofday () > d | None -> false)
      then begin
        if !queued then begin
          t.waiting <- t.waiting - 1;
          queued := false
        end;
        t.refused_timeout <- t.refused_timeout + 1;
        `Refused (Timeout { after = Unix.gettimeofday () -. started })
      end
      else if running_of t tenant >= t.max_per_tenant then
        if !queued then `Wait
        else if t.waiting >= t.queue_limit then begin
          t.refused_overload <- t.refused_overload + 1;
          `Refused (Overloaded { waiting = t.waiting; limit = t.queue_limit })
        end
        else begin
          t.waiting <- t.waiting + 1;
          queued := true;
          `Wait
        end
      else begin
        (* A slot is free: take the escrow while still holding the lock,
           so the slot count and the reservation move together. *)
        match Ledger.escrow t.ledger ~tenant ~cost ~label with
        | Error (Ledger.Insufficient_budget { tenant; requested; available }) ->
            if !queued then begin
              t.waiting <- t.waiting - 1;
              queued := false
            end;
            t.refused_budget <- t.refused_budget + 1;
            `Refused (Insufficient_budget { tenant; requested; available })
        | Error r ->
            if !queued then begin
              t.waiting <- t.waiting - 1;
              queued := false
            end;
            t.refused_other <- t.refused_other + 1;
            `Refused (Rejected r)
        | Ok id ->
            if !queued then begin
              t.waiting <- t.waiting - 1;
              queued := false
            end;
            Hashtbl.replace t.running tenant (running_of t tenant + 1);
            t.active <- t.active + 1;
            t.admitted <- t.admitted + 1;
            `Admitted id
      end)

let settle t ~tenant ~escrow ~delivered =
  locked t (fun () ->
      (if delivered then begin
         ignore (Ledger.commit t.ledger escrow);
         t.committed <- t.committed + 1
       end
       else begin
         ignore (Ledger.release t.ledger escrow);
         t.released <- t.released + 1
       end);
      Hashtbl.replace t.running tenant (max 0 (running_of t tenant - 1));
      t.active <- t.active - 1)

let submit t ~tenant ~cost ?timeout ~label f =
  let started = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> started +. s) timeout in
  let queued = ref false in
  let rec admit () =
    match try_admit t ~tenant ~cost ~label ~deadline ~started ~queued with
    | `Refused r -> Error r
    | `Admitted id -> Ok id
    | `Wait ->
        Unix.sleepf poll_interval;
        admit ()
  in
  match admit () with
  | Error _ as e -> e
  | Ok escrow -> (
      match f () with
      | exception e ->
          settle t ~tenant ~escrow ~delivered:false;
          raise e
      | answer -> (
          match deadline with
          | Some d when Unix.gettimeofday () > d ->
              (* Too late: the answer is discarded, never delivered, so
                 the escrow returns — no privacy was consumed. *)
              settle t ~tenant ~escrow ~delivered:false;
              locked t (fun () -> t.refused_timeout <- t.refused_timeout + 1);
              Error (Timeout { after = Unix.gettimeofday () -. started })
          | _ ->
              settle t ~tenant ~escrow ~delivered:true;
              Ok answer))

module Plan = Wpinq_core.Plan

let submit_plan t ~tenant ~epsilon ?timeout ?label plan f =
  if not (Float.is_finite epsilon) || epsilon <= 0.0 then
    invalid_arg "Admit.submit_plan: epsilon must be finite and positive";
  (* Canonicalize before costing: the optimizer preserves [Plan.uses]
     exactly, so the ε charge is the same either way, but every tenant
     submitting a structurally equal query lands on the *same* optimized
     DAG (one optimizer run, one cache entry, one lowering downstream). *)
  let optimized = Plan.optimize plan in
  let cost = float_of_int (Plan.uses optimized) *. epsilon in
  let key = Plan.canonical_hash optimized in
  let label =
    match label with
    | Some l -> l
    | None -> Printf.sprintf "plan:%s" (String.sub key 0 (min 12 (String.length key)))
  in
  locked t (fun () ->
      t.plan_submissions <- t.plan_submissions + 1;
      if Hashtbl.mem t.seen_plans key then t.plan_reused <- t.plan_reused + 1
      else Hashtbl.replace t.seen_plans key ());
  submit t ~tenant ~cost ?timeout ~label (fun () -> f optimized)

let drain t =
  locked t (fun () -> t.drain_requested <- true);
  let rec wait () =
    let busy = locked t (fun () -> t.active > 0 || t.waiting > 0) in
    if busy then begin
      Unix.sleepf poll_interval;
      wait ()
    end
  in
  wait ();
  Ledger.compact t.ledger
