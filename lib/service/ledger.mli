(** A concurrency-safe, crash-recoverable multi-tenant ε-budget ledger.

    Each tenant owns an account with the escrow invariant

    {v available = allocated − spent − committed   (and available ≥ 0) v}

    [spent] is ε irrevocably consumed by delivered answers; [committed]
    is ε held in escrow — by queries admitted but not yet answered, and
    by live delegations to child tenants.  Every admitted query
    {!escrow}s its cost {e before} evaluation and later either
    {!commit}s it (the noisy answer was delivered: escrow becomes spent)
    or {!release}s it (the query failed, was refused, or timed out: the
    escrow returns to available).  Because the escrow is taken atomically
    under one lock, no interleaving of concurrent analysts can drive a
    shared account past its allocation — the overspend check happens
    once, at admission, against funds that are then reserved.

    Delegation ({!delegate}) carves a child account out of a parent: the
    child's whole allocation is escrowed on the parent for the child's
    lifetime (the quoracle model: a delegation is a long-lived escrow).
    {!retire} settles a child back into its parent — the child's spent ε
    rolls up, the unspent remainder returns to the parent's available.

    Durability: when opened on a directory, every mutation is
    write-ahead journaled through {!Wal} {e before} it is applied, so an
    acknowledged charge survives any crash.  Recovery replays the
    journal over the newest valid snapshot and resolves in-flight
    escrows {e conservatively} — an escrow with no commit or release
    record is treated as {b spent} (charge-on-doubt): we cannot prove
    the noisy answer did not escape, and privacy errs on the safe side.
    Floats are replayed in append order, so a cleanly-settled ledger
    recovers bit-identically to its live state. *)

type t

type refusal =
  | Insufficient_budget of { tenant : string; requested : float; available : float }
  | Invalid_epsilon of { tenant : string; value : float }
      (** NaN, infinite, or negative ε in a request — refused before it
          can poison the accounting *)
  | Unknown_tenant of string
  | Duplicate_tenant of string
  | Retired_tenant of string
  | Unknown_escrow of int  (** already settled, or never issued *)
  | Open_escrows of { tenant : string; count : int }
      (** retire refused: settle (commit/release) the tenant's in-flight
          queries first *)
  | Has_children of { tenant : string; children : string list }
      (** retire refused: live delegations must be retired first *)

val refusal_to_string : refusal -> string

type recovery = {
  replayed : int;  (** journal records applied over the snapshot *)
  charged_on_doubt : int;  (** in-flight escrows resolved as spent *)
  doubt_epsilon : float;  (** total ε those escrows charged *)
  torn_bytes : int;  (** journal bytes discarded as a torn tail *)
  snapshots_rejected : int;  (** corrupt snapshot generations quarantined *)
}

val create_in_memory : unit -> t
(** A volatile ledger (tests, reference runs): same semantics, no
    journal, nothing survives the process. *)

val open_dir : ?keep:int -> ?fsync:bool -> ?compact_every:int -> string -> t * recovery
(** [open_dir dir] opens (or creates) a durable ledger rooted at [dir]:
    loads the newest valid snapshot, replays the journal, applies
    charge-on-doubt to unresolved escrows, compacts, and returns the
    live ledger with a report of what recovery did.  [compact_every]
    (default 1024) bounds the journal: a snapshot-and-reset runs after
    that many appends.  [keep]/[fsync] as in {!Wal.open_dir}. *)

val close : t -> unit
val compact : t -> unit
(** Snapshot now and reset the journal (no-op on an in-memory ledger). *)

(** {1 Accounts} *)

val create_root : t -> tenant:string -> allocated:float -> (unit, refusal) result
(** A top-level account (one per protected dataset, typically). *)

val delegate : t -> parent:string -> tenant:string -> allocated:float -> (unit, refusal) result
(** A child account funded by escrowing [allocated] on [parent]. *)

val retire : t -> tenant:string -> (unit, refusal) result
(** Settle a tenant: its spent ε rolls up to the parent (if any) and the
    unspent remainder of the delegation returns to the parent's
    available.  Refused while the tenant has open escrows or live
    children.  A retired tenant refuses all further operations. *)

(** {1 The escrow lifecycle} *)

val escrow : t -> tenant:string -> cost:float -> label:string -> (int, refusal) result
(** Reserve [cost] ε against [tenant]; returns the escrow id.  Refused
    (atomically, nothing reserved) if [cost] exceeds the tenant's
    available ε. *)

val commit : t -> int -> (unit, refusal) result
(** The answer was delivered: escrow becomes spent. *)

val release : t -> int -> (unit, refusal) result
(** No answer escaped: escrow returns to available. *)

(** {1 Inspection} *)

type view = {
  v_parent : string option;
  v_allocated : float;
  v_spent : float;
  v_committed : float;
  v_retired : bool;
}

val tenants : t -> string list
(** Sorted. *)

val view : t -> tenant:string -> view option
val allocated : t -> tenant:string -> float option
val spent : t -> tenant:string -> float option
val committed : t -> tenant:string -> float option
val available : t -> tenant:string -> float option
val open_escrows : t -> int

val dump : t -> (string * view) list
(** Canonical (name-sorted) account listing — the equality witness
    recovery tests compare bit-for-bit. *)

val overspend : t -> (string * float) list
(** Tenants whose [spent + committed] exceeds [allocated] (beyond float
    slack), with the excess.  Always empty unless the invariant has been
    broken — the property the fault matrix asserts after every
    kill/corrupt/recover cycle. *)

val slack : float
(** The rounding tolerance used by admission checks and {!overspend}. *)
