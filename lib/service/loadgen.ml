module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Plan = Wpinq_core.Plan
module Datasets = Wpinq_data.Datasets
module Qb = Wpinq_queries.Queries.Make (Batch)
module Qp = Wpinq_queries.Queries.Make (Plan)

type config = {
  tenants : int;
  queries : int;
  submitters : int;
  epsilon : float;
  allocation : float;
  scale : float;
  seed : int;
  max_per_tenant : int;
  queue_limit : int;
  timeout : float;
  fsync : bool;
  keep : int;
}

let default =
  {
    tenants = 8;
    queries = 1200;
    submitters = 4;
    epsilon = 0.1;
    allocation = 6.0;
    scale = 0.06;
    seed = 42;
    max_per_tenant = 4;
    queue_limit = 64;
    timeout = 0.25;
    fsync = true;
    keep = 3;
  }

type outcome = {
  admitted : int;
  committed : int;
  refused_budget : int;
  refused_overload : int;
  refused_timeout : int;
  refused_shutdown : int;
  errors : int;
  wall_s : float;
  throughput_qps : float;
  overspend : (string * float) list;
  recovered_matches : bool;
  recovery : Ledger.recovery;
  per_tenant : (string * Ledger.view) list;
}

(* The query mix, with each kind's ε multiplier derived from the reified
   plan — never asserted by hand.  Computed once per process. *)
let query_kinds =
  let uses build =
    let src = Plan.source ~name:"sym" () in
    Plan.uses (build src)
  in
  [
    ("degree_ccdf", uses Qp.degree_ccdf);
    ("jdd", uses Qp.jdd);
    ("tbi", uses Qp.tbi);
    ("tbd", uses (fun s -> Qp.tbd s));
  ]

let root_tenant = "dataset"
let tenant_name i = Printf.sprintf "tenant-%02d" i

(* Idempotent account setup: on a fresh directory the accounts are
   created; on a recovered one they already exist and the duplicate
   refusals are the expected no-op. *)
let ensure_accounts ledger cfg =
  let root_allocation = cfg.allocation *. float_of_int cfg.tenants in
  (match Ledger.create_root ledger ~tenant:root_tenant ~allocated:root_allocation with
  | Ok () | Error (Ledger.Duplicate_tenant _) -> ()
  | Error r -> failwith ("loadgen: " ^ Ledger.refusal_to_string r));
  for i = 0 to cfg.tenants - 1 do
    match
      Ledger.delegate ledger ~parent:root_tenant ~tenant:(tenant_name i)
        ~allocated:cfg.allocation
    with
    | Ok () | Error (Ledger.Duplicate_tenant _) -> ()
    | Error r -> failwith ("loadgen: " ^ Ledger.refusal_to_string r)
  done

type tally = {
  mutable t_committed : int;
  mutable t_budget : int;
  mutable t_overload : int;
  mutable t_timeout : int;
  mutable t_shutdown : int;
  mutable t_other : int;
  mutable t_errors : int;
}

let fresh_tally () =
  {
    t_committed = 0;
    t_budget = 0;
    t_overload = 0;
    t_timeout = 0;
    t_shutdown = 0;
    t_other = 0;
    t_errors = 0;
  }

let submitter ~admit ~secret ~cfg ~stop ~index ~count () =
  let rng = Prng.create (cfg.seed + (7919 * (index + 1))) in
  (* Each submitter evaluates against its own batch context: the ledger
     is the shared spending authority; evaluation state is private to the
     domain.  The context budget is a local backstop, not the ledger. *)
  let context_budget = Budget.create ~name:(Printf.sprintf "ctx-%d" index) 1e12 in
  let sym = Batch.source_records ~budget:context_budget (Graph.directed_edges secret) in
  let build = function
    | "degree_ccdf" -> fun () -> ignore (Batch.noisy_count ~rng ~epsilon:cfg.epsilon (Qb.degree_ccdf sym))
    | "jdd" -> fun () -> ignore (Batch.noisy_count ~rng ~epsilon:cfg.epsilon (Qb.jdd sym))
    | "tbi" -> fun () -> ignore (Batch.noisy_count ~rng ~epsilon:cfg.epsilon (Qb.tbi sym))
    | "tbd" -> fun () -> ignore (Batch.noisy_count ~rng ~epsilon:cfg.epsilon (Qb.tbd sym))
    | kind -> invalid_arg ("unknown query kind " ^ kind)
  in
  let kinds = Array.of_list query_kinds in
  let tally = fresh_tally () in
  (try
     for _ = 1 to count do
       if stop () then raise Exit;
       let tenant = tenant_name (Prng.int rng cfg.tenants) in
       let kind, uses = kinds.(Prng.int rng (Array.length kinds)) in
       let cost = float_of_int uses *. cfg.epsilon in
       let timeout = if cfg.timeout > 0.0 then Some cfg.timeout else None in
       match
         Admit.submit admit ~tenant ~cost ?timeout ~label:kind (build kind)
       with
       | Ok () -> tally.t_committed <- tally.t_committed + 1
       | Error (Admit.Insufficient_budget _) -> tally.t_budget <- tally.t_budget + 1
       | Error (Admit.Overloaded _) -> tally.t_overload <- tally.t_overload + 1
       | Error (Admit.Timeout _) -> tally.t_timeout <- tally.t_timeout + 1
       | Error Admit.Shutting_down -> tally.t_shutdown <- tally.t_shutdown + 1
       | Error (Admit.Rejected _) -> tally.t_other <- tally.t_other + 1
       | exception Exit -> raise Exit
       | exception _ -> tally.t_errors <- tally.t_errors + 1
     done
   with Exit -> ());
  tally

let run ?(stop = fun () -> false) ?(log = fun _ -> ()) ~dir cfg =
  if cfg.tenants < 1 then invalid_arg "Loadgen.run: tenants must be >= 1";
  if cfg.submitters < 1 then invalid_arg "Loadgen.run: submitters must be >= 1";
  let ledger, _initial_recovery =
    Ledger.open_dir ~keep:cfg.keep ~fsync:cfg.fsync dir
  in
  ensure_accounts ledger cfg;
  let admit = Admit.create ~max_per_tenant:cfg.max_per_tenant ~queue_limit:cfg.queue_limit ledger in
  let secret = Datasets.load ~scale:cfg.scale Datasets.grqc in
  log
    (Printf.sprintf "serving %d queries from %d submitters over %d tenants (ε=%g)"
       cfg.queries cfg.submitters cfg.tenants cfg.epsilon);
  let share i =
    (* Distribute queries as evenly as integer division allows. *)
    (cfg.queries / cfg.submitters) + (if i < cfg.queries mod cfg.submitters then 1 else 0)
  in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init cfg.submitters (fun i ->
        Domain.spawn (submitter ~admit ~secret ~cfg ~stop ~index:i ~count:(share i)))
  in
  let tallies = List.map Domain.join domains in
  Admit.drain admit;
  let wall_s = Unix.gettimeofday () -. t0 in
  let stats = Admit.stats admit in
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
  let committed = sum (fun t -> t.t_committed) in
  let errors = sum (fun t -> t.t_errors) in
  let overspend = Ledger.overspend ledger in
  let live_dump = Ledger.dump ledger in
  let per_tenant =
    List.filter (fun (name, _) -> name <> root_tenant) live_dump
  in
  Ledger.close ledger;
  (* Crash-recovery self-check: reopening the directory must reproduce
     the drained ledger exactly — same tenants, same spent bit patterns. *)
  let reopened, recovery = Ledger.open_dir ~keep:cfg.keep ~fsync:cfg.fsync dir in
  let recovered_matches = Ledger.dump reopened = live_dump in
  Ledger.close reopened;
  log
    (Printf.sprintf
       "settled in %.2fs: %d committed, %d refused (budget %d, overload %d, timeout %d), \
        overspend %d, recovered_matches %b"
       wall_s committed
       (stats.Admit.refused_budget + stats.Admit.refused_overload
      + stats.Admit.refused_timeout + stats.Admit.refused_shutdown)
       stats.Admit.refused_budget stats.Admit.refused_overload stats.Admit.refused_timeout
       (List.length overspend) recovered_matches);
  {
    admitted = stats.Admit.admitted;
    committed;
    refused_budget = stats.Admit.refused_budget;
    refused_overload = stats.Admit.refused_overload;
    refused_timeout = stats.Admit.refused_timeout;
    refused_shutdown = stats.Admit.refused_shutdown;
    errors;
    wall_s;
    throughput_qps = (if wall_s > 0.0 then float_of_int cfg.queries /. wall_s else 0.0);
    overspend;
    recovered_matches;
    recovery;
    per_tenant;
  }
