(** A write-ahead journal for the budget ledger: checksummed appends,
    fsync-hardened durability, and generational snapshot compaction.

    The journal is one append-only file ([wal.log]) of self-checking
    records: [length | MD5(payload) | payload].  A record is only
    acknowledged after it is flushed and fsynced, so an acknowledged
    ledger mutation survives any crash.  Torn tails — a crash mid-append
    — are detected on open (bad length, bad digest, or missing bytes) and
    trimmed back to the last whole record; everything after the first
    damaged record is discarded, because record order is the ledger's
    replay order and nothing later can be trusted to apply cleanly.

    Compaction bounds the journal: the caller serializes its full state
    into a snapshot, which is written as a generation of a
    {!Wpinq_persist.Persist.Store} ([ckpt-<seq>.wpq], checksummed,
    retained/rotated), and the journal is atomically reset to empty.  A
    crash between the two steps is benign as long as every record carries
    a monotone sequence number and replay skips records at or below the
    snapshot's — the contract {!Ledger} maintains.

    Fault-injection sites (see {!Wpinq_persist.Persist.Fault}):
    ["wal.append"] before a record's bytes are written, ["wal.fsync"]
    before the append's fsync, ["wal.compact"] before the snapshot is
    written, ["wal.reset"] between snapshot write and journal reset, and
    ["wal.replay"] once per surviving record during {!open_dir} — plus
    every [atomic.*] site under the snapshot and reset writes.

    The WAL is an instantiation of the generic
    {!Wpinq_persist.Journal}; the continual-observation stream layers
    its own journals on the same machinery. *)

exception Io_error of { path : string; op : string; cause : string }
(** A real I/O failure (disk full, permission, unplugged volume) during
    a journal operation — an alias of {!Wpinq_persist.Journal.Io_error},
    wrapping the underlying [Sys_error] or [Unix.Unix_error].  [op] is
    one of ["open"], ["read"], ["trim"], ["append"], ["fsync"],
    ["snapshot"] or ["reset"], so retry logic (the ledger's callers, the
    stream supervisor) can distinguish a transient append/fsync failure
    from a corrupted-directory open.  Propagates unchanged through
    {!Ledger} recovery and mutation paths.  Injected test faults
    ({!Wpinq_persist.Persist.Fault.Injected}) are never wrapped. *)

type t

type recovery = {
  snapshot : (string * int) option;
      (** newest valid snapshot payload and its sequence number *)
  records : string list;
      (** surviving journal records, append order (the valid prefix) *)
  torn_bytes : int;
      (** journal bytes discarded after the last whole record *)
  rejected : Wpinq_persist.Persist.Store.rejected list;
      (** snapshot generations quarantined while finding a valid one *)
}

val open_dir : ?keep:int -> ?fsync:bool -> string -> t * recovery
(** [open_dir dir] creates [dir] if needed, loads the newest valid
    snapshot (quarantining corrupt generations, exactly as checkpoint
    recovery does), parses the journal's valid prefix, trims any torn
    tail, and opens the journal for appending.  [keep] is the snapshot
    retention count (default 3).  [fsync] (default [true]) may be
    disabled for throughput experiments — never in production, since an
    unfsynced acknowledgment can be lost by a power failure. *)

val append : t -> string -> unit
(** [append t payload] durably appends one record: the write is flushed
    and fsynced before returning.  The payload is opaque to the journal. *)

val compact : t -> seq:int -> snapshot:string -> retain:(int -> string list) -> unit
(** [compact t ~seq ~snapshot ~retain] writes [snapshot] as generation
    [seq] of the snapshot store, then atomically rewrites the journal to
    [retain oldest], where [oldest] is the sequence number of the oldest
    snapshot generation that survived rotation.  The caller must return
    (in append order) every record newer than [oldest]: that is exactly
    the history recovery needs if it has to fall back past a corrupted
    newer snapshot to that oldest generation.  After a crash between the
    two writes, the stale journal's records all carry sequence numbers
    the new snapshot already covers, and replay skips them. *)

val records_since_compact : t -> int
(** Appends since the last {!compact} (sizing heuristic for
    auto-compaction; the rewritten journal's retained records do not
    count). *)

val dir : t -> string
val close : t -> unit
(** Closes the journal channel.  Further appends raise. *)
