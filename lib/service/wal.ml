module Persist = Wpinq_persist.Persist
module Fault = Persist.Fault

(* Journal layout: an 8-byte magic, then records of
   [u64-le payload length | 16-byte MD5(payload) | payload].  The digest
   makes every record self-checking: bit rot anywhere inside a record is
   detected, not replayed. *)
let journal_magic = "WPQWAL1\x00"
let snapshot_magic = "wPINQLGR"
let snapshot_version = 1

type t = {
  dir : string;
  journal_path : string;
  store : Persist.Store.t;
  fsync : bool;
  mutable oc : out_channel option;
  mutable since_compact : int;
}

type recovery = {
  snapshot : (string * int) option;
  records : string list;
  torn_bytes : int;
  rejected : Persist.Store.rejected list;
}

let dir t = t.dir
let records_since_compact t = t.since_compact

(* Parse the journal's valid prefix.  Returns the surviving records, the
   byte offset of the end of the last whole record, and how many trailing
   bytes were discarded.  A missing or foreign-magic file counts as fully
   torn: the ledger's state then rests on the snapshot alone, which is the
   conservative reading of an unreadable journal. *)
let parse_journal contents =
  let len = String.length contents in
  let mlen = String.length journal_magic in
  if len < mlen || String.sub contents 0 mlen <> journal_magic then ([], 0, len)
  else begin
    let records = ref [] in
    let pos = ref mlen in
    let valid_end = ref mlen in
    let ok = ref true in
    while !ok && !pos + 24 <= len do
      Fault.point "wal.replay";
      let n = Int64.to_int (String.get_int64_le contents !pos) in
      if n < 0 || !pos + 24 + n > len then ok := false
      else begin
        let digest = String.sub contents (!pos + 8) 16 in
        let payload = String.sub contents (!pos + 24) n in
        if not (String.equal (Digest.string payload) digest) then ok := false
        else begin
          records := payload :: !records;
          pos := !pos + 24 + n;
          valid_end := !pos
        end
      end
    done;
    (List.rev !records, !valid_end, len - !valid_end)
  end

let write_header oc = output_string oc journal_magic

let open_append t =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary; Open_creat ] 0o644 t.journal_path
  in
  t.oc <- Some oc

let open_dir ?(keep = 3) ?(fsync = true) dir =
  let store = Persist.Store.open_dir ~keep dir in
  let journal_path = Filename.concat dir "wal.log" in
  let t = { dir; journal_path; store; fsync; oc = None; since_compact = 0 } in
  let snapshot, rejected =
    match
      Persist.Store.load_latest store ~magic:snapshot_magic ~version:snapshot_version
        ~decode:(fun payload -> Ok payload)
    with
    | Some (payload, seq, _path), rejected -> (Some (payload, seq), rejected)
    | None, rejected -> (None, rejected)
  in
  let contents =
    match open_in_bin journal_path with
    | exception Sys_error _ -> None
    | ic ->
        Some
          (Fun.protect
             ~finally:(fun () -> close_in_noerr ic)
             (fun () -> really_input_string ic (in_channel_length ic)))
  in
  let records, torn_bytes =
    match contents with
    | None ->
        (* Fresh journal: write the header through the atomic layer so a
           crash mid-creation leaves either nothing or a whole header. *)
        Persist.Atomic.write ~path:journal_path write_header;
        ([], 0)
    | Some raw ->
        let records, valid_end, torn = parse_journal raw in
        if torn > 0 then
          (* Trim the torn tail before appending: new records must land
             immediately after the last whole one, never after garbage. *)
          Persist.Atomic.write ~path:journal_path (fun oc ->
              output_string oc (String.sub raw 0 (max valid_end 0));
              if valid_end = 0 then write_header oc);
        (records, torn)
  in
  open_append t;
  t.since_compact <- List.length records;
  (t, { snapshot; records; torn_bytes; rejected })

let channel t =
  match t.oc with Some oc -> oc | None -> invalid_arg "Wal: journal is closed"

let frame_record oc payload =
  let header = Bytes.create 8 in
  Bytes.set_int64_le header 0 (Int64.of_int (String.length payload));
  output_bytes oc header;
  output_string oc (Digest.string payload);
  output_string oc payload

let append t payload =
  let oc = channel t in
  Fault.point "wal.append";
  frame_record oc payload;
  flush oc;
  Fault.point "wal.fsync";
  if t.fsync then Unix.fsync (Unix.descr_of_out_channel oc);
  t.since_compact <- t.since_compact + 1

let compact t ~seq ~snapshot ~retain =
  Fault.point "wal.compact";
  ignore
    (Persist.Store.save t.store ~step:seq ~magic:snapshot_magic ~version:snapshot_version
       snapshot);
  (* The store's rotation just ran: ask the caller which records the
     *oldest* surviving snapshot generation still needs, and rewrite the
     journal to exactly those — so recovery can fall back past a corrupt
     newest snapshot and still replay forward to the present. *)
  let oldest_retained =
    match List.rev (Persist.Store.generations t.store) with
    | (step, _) :: _ -> step
    | [] -> seq
  in
  let kept = retain oldest_retained in
  Fault.point "wal.reset";
  (match t.oc with
  | Some oc ->
      close_out_noerr oc;
      t.oc <- None
  | None -> ());
  Persist.Atomic.write ~path:t.journal_path (fun oc ->
      write_header oc;
      List.iter (frame_record oc) kept);
  open_append t;
  t.since_compact <- 0

let close t =
  match t.oc with
  | Some oc ->
      close_out_noerr oc;
      t.oc <- None
  | None -> ()
