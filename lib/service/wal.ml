module Journal = Wpinq_persist.Journal

(* The ledger WAL is now a thin instantiation of the generic
   payload-polymorphic journal in [Wpinq_persist.Journal]: same on-disk
   bytes (magic, framing, snapshot container) and the same fault-site
   names ("wal.append", "wal.fsync", "wal.compact", "wal.reset",
   "wal.replay") the ledger fault matrix arms, so existing journals and
   tests carry over unchanged. *)

exception Io_error = Journal.Io_error

type t = Journal.t

type recovery = Journal.recovery = {
  snapshot : (string * int) option;
  records : string list;
  torn_bytes : int;
  rejected : Wpinq_persist.Persist.Store.rejected list;
}

let open_dir ?keep ?fsync dir =
  Journal.open_dir ?keep ?fsync ~sites:"wal" ~magic:"WPQWAL1\x00"
    ~snapshot_magic:"wPINQLGR" ~snapshot_version:1 dir

let append = Journal.append
let compact = Journal.compact
let records_since_compact = Journal.records_since_compact
let dir = Journal.dir
let close = Journal.close
