(** A mixed-tenant load generator for the budget ledger and admission
    layer — the shared engine behind [bench/main.exe --serve] and the
    [bin/serve.exe] driver.

    It opens (or recovers) a durable ledger, delegates per-tenant
    sub-budgets out of one root dataset account, and fires a stream of
    wPINQ queries at the admission controller from several concurrent
    submitter domains.  Each query's ε cost is {e derived} from its
    reified plan ({!Wpinq_core.Plan.uses} × ε), escrowed at admission,
    and committed only when the noisy answer comes back.  Afterwards it
    drains, checks every tenant's books for overspend, and re-opens the
    ledger directory to prove the recovered state matches the live one
    bit-for-bit. *)

type config = {
  tenants : int;  (** delegated analyst accounts (≥ 1) *)
  queries : int;  (** total submissions across all submitters *)
  submitters : int;  (** concurrent submitter domains (≥ 1) *)
  epsilon : float;  (** per-use ε; query cost = plan uses × this *)
  allocation : float;  (** ε delegated to each tenant *)
  scale : float;  (** ca-GrQc scale factor for the protected graph *)
  seed : int;
  max_per_tenant : int;
  queue_limit : int;
  timeout : float;  (** per-query deadline in seconds; [0.] disables *)
  fsync : bool;  (** fsync every WAL append (disable only to benchmark) *)
  keep : int;  (** ledger snapshot generations retained *)
}

val default : config
(** 8 tenants, 1200 queries, 4 submitters, ε 0.1, allocation 6.0,
    scale 0.06, fsynced, deadline 0.25s. *)

type outcome = {
  admitted : int;
  committed : int;
  refused_budget : int;
  refused_overload : int;
  refused_timeout : int;
  refused_shutdown : int;
  errors : int;  (** evaluation thunks that raised *)
  wall_s : float;
  throughput_qps : float;  (** submissions settled per second *)
  overspend : (string * float) list;
      (** tenants whose spent+committed exceeds allocated — must be [] *)
  recovered_matches : bool;
      (** reopened ledger dump equals the live one bit-for-bit *)
  recovery : Ledger.recovery;  (** what reopening the directory replayed *)
  per_tenant : (string * Ledger.view) list;
}

val run : ?stop:(unit -> bool) -> ?log:(string -> unit) -> dir:string -> config -> outcome
(** [stop] is polled between submissions (wire it to
    {!Wpinq_infer.Shutdown.requested}): once true, submitters finish
    their in-flight query and the controller drains.  [log] receives
    one-line progress notes. *)

val query_kinds : (string * int) list
(** The generated query mix with each kind's plan-derived source-use
    count (the ε multiplier) — degree CCDF 1×, JDD 4×, TbI 4×, TbD 9×. *)
