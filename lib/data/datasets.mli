(** The evaluation datasets (paper, Tables 1 and 3), as deterministic
    synthetic stand-ins.

    The paper's experiments run on SNAP/Facebook graphs that cannot be
    bundled here (sealed environment; see DESIGN.md "Substitutions").  Each
    {!spec} pairs the paper's reported statistics with a generator tuned to
    reproduce that graph's {e qualitative} profile at a laptop scale:
    triangle-rich and assortative for the collaboration networks, dense and
    weakly disassortative for Caltech, heavy-tailed for Epinions.  Every
    experiment also builds the paper's own control, {!random_counterpart}
    — a degree-preserving randomization with the triangles destroyed — so
    all real-vs-random comparisons are preserved.

    If the real edge lists are available, load them with
    {!Wpinq_graph.Io.read} and pass them to the same experiment code. *)

type paper_stats = {
  nodes : int;
  edges : int;  (** directed edge records, as Table 1 prints them *)
  dmax : int;
  triangles : int;
  assortativity : float;
}

type spec = {
  name : string;
  description : string;
  paper : paper_stats;  (** Table 1's row for the real graph *)
  paper_random_triangles : int;  (** Table 1's Random(G) triangle count *)
  paper_random_assortativity : float;
  generate : float -> Wpinq_graph.Graph.t;  (** scale factor -> graph *)
}

val grqc : spec
val hepph : spec
val hepth : spec
val caltech : spec
val epinions : spec

val table1 : spec list
(** All five rows of Table 1, in the paper's order. *)

val load : ?scale:float -> spec -> Wpinq_graph.Graph.t
(** [load ?scale spec] materializes the stand-in (deterministic per spec
    and scale).  [scale] (default 1.0) multiplies the vertex count; the
    default sizes keep the heaviest experiment (TbI state ~ Σ d²) within a
    laptop's memory. *)

val random_counterpart : ?seed:int -> Wpinq_graph.Graph.t -> Wpinq_graph.Graph.t
(** Degree-preserving rewiring of a graph — Table 1's [Random(G)] rows. *)

exception Checksum_mismatch of { path : string; expected : string; actual : string }

val load_snap : ?md5:string -> string -> Wpinq_graph.Graph.t
(** [load_snap ?md5 path] reads a SNAP-format edge list (directed, tab- or
    space-separated [u v] pairs, ['#'] comments, arbitrary vertex ids) and
    projects it onto the simple undirected graph the engine models: ids are
    remapped densely in first-seen order, self-loops dropped, and each
    {u,v} pair kept once.  When [md5] is given (hex digest), the file is
    checksummed first and {!Checksum_mismatch} raised on disagreement — so
    experiment configs can pin the exact bytes of a downloaded
    [soc-Epinions1.txt] without trusting the filename.  Raises
    [Invalid_argument] on malformed lines (with path and line number). *)

(** {1 Table 3: the Barabási–Albert scalability sweep} *)

type ba_spec = {
  label : string;
  beta : float;  (** the paper's "dynamical exponent" knob *)
  alpha : float;  (** our attachment exponent implementing the same skew *)
  paper_dmax : int;
  paper_triangles : int;
  paper_sum_deg_sq : int;
}

val table3 : ba_spec list
(** The five rows of Table 3 (β from 0.5 to 0.7, 100k nodes / 2M edges in
    the paper). *)

val ba_graph : ?scale:float -> ba_spec -> Wpinq_graph.Graph.t
(** The stand-in for one Table 3 row: [2000 × scale] vertices, 5 edges per
    arrival, attachment exponent [alpha]. *)
