module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Rewire = Wpinq_graph.Rewire
module Prng = Wpinq_prng.Prng

type paper_stats = {
  nodes : int;
  edges : int;
  dmax : int;
  triangles : int;
  assortativity : float;
}

type spec = {
  name : string;
  description : string;
  paper : paper_stats;
  paper_random_triangles : int;
  paper_random_assortativity : float;
  generate : float -> Graph.t;
}

let scaled scale n = max 8 (int_of_float (Float.round (scale *. float_of_int n)))

let grqc =
  {
    name = "CA-GrQc";
    description = "general-relativity collaboration network stand-in";
    paper =
      { nodes = 5242; edges = 28980; dmax = 81; triangles = 48260; assortativity = 0.66 };
    paper_random_triangles = 586;
    paper_random_assortativity = 0.00;
    generate =
      (fun scale ->
        Gen.clustered ~n:(scaled scale 1300) ~community:11 ~p_in:0.85
          ~extra:(scaled scale 350) (Prng.create 0x6711));
  }

let hepph =
  {
    name = "CA-HepPh";
    description = "high-energy-physics (phenomenology) collaboration stand-in";
    paper =
      {
        nodes = 12008;
        edges = 237010;
        dmax = 491;
        triangles = 3_358_499;
        assortativity = 0.63;
      };
    paper_random_triangles = 323_867;
    paper_random_assortativity = 0.04;
    generate =
      (fun scale ->
        Gen.clustered ~n:(scaled scale 1000) ~community:22 ~p_in:0.6
          ~extra:(scaled scale 700) (Prng.create 0x4e94));
  }

let hepth =
  {
    name = "CA-HepTh";
    description = "high-energy-physics (theory) collaboration stand-in";
    paper =
      { nodes = 9877; edges = 51971; dmax = 65; triangles = 28339; assortativity = 0.27 };
    paper_random_triangles = 322;
    paper_random_assortativity = 0.05;
    generate =
      (fun scale ->
        Gen.clustered ~n:(scaled scale 1250) ~community:9 ~p_in:0.6
          ~extra:(scaled scale 900) (Prng.create 0x7e77));
  }

let caltech =
  {
    name = "Caltech";
    description = "dense campus social-network stand-in";
    paper =
      { nodes = 769; edges = 33312; dmax = 248; triangles = 119_563; assortativity = -0.06 };
    paper_random_triangles = 50_269;
    paper_random_assortativity = 0.17;
    generate =
      (fun scale ->
        Gen.powerlaw_cluster ~n:(scaled scale 300) ~m:12 ~p_triad:0.95 (Prng.create 0xca17));
  }

let epinions =
  {
    name = "Epinions";
    description = "heavy-tailed trust-network stand-in";
    paper =
      {
        nodes = 75879;
        edges = 1_017_674;
        dmax = 3079;
        triangles = 1_624_481;
        assortativity = -0.01;
      };
    paper_random_triangles = 1_059_864;
    paper_random_assortativity = 0.00;
    generate =
      (fun scale ->
        Gen.powerlaw_cluster ~n:(scaled scale 2200) ~m:6 ~p_triad:0.3 ~alpha:1.08
          (Prng.create 0xe919));
  }

let table1 = [ grqc; hepph; hepth; caltech; epinions ]
let load ?(scale = 1.0) spec = spec.generate scale
let random_counterpart ?(seed = 0x5eed) g = Rewire.randomize g (Prng.create seed)

exception Checksum_mismatch of { path : string; expected : string; actual : string }

let () =
  Printexc.register_printer (function
    | Checksum_mismatch { path; expected; actual } ->
        Some
          (Printf.sprintf "Datasets.Checksum_mismatch(%s: expected md5 %s, got %s)" path expected
             actual)
    | _ -> None)

let load_snap ?md5 path =
  (match md5 with
  | None -> ()
  | Some expected ->
      let actual = Digest.to_hex (Digest.file path) in
      if not (String.equal (String.lowercase_ascii expected) actual) then
        raise (Checksum_mismatch { path; expected; actual }));
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (* SNAP edge lists are directed, tab- or space-separated, with '#'
         comment lines and arbitrary (sparse, non-contiguous) vertex ids.
         Project onto the simple undirected graph the engine models:
         remap ids densely in first-seen order, drop self-loops, and
         keep one copy of each {u,v} pair. *)
      let remap = Hashtbl.create 1024 in
      let next_id = ref 0 in
      let id_of v =
        match Hashtbl.find_opt remap v with
        | Some i -> i
        | None ->
            let i = !next_id in
            Hashtbl.replace remap v i;
            incr next_id;
            i
      in
      let seen = Hashtbl.create 1024 in
      let edges = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           incr lineno;
           if line = "" || line.[0] = '#' then ()
           else
             let fields =
               String.split_on_char '\t' line
               |> List.concat_map (String.split_on_char ' ')
               |> List.filter (fun s -> s <> "")
             in
             match List.map int_of_string_opt fields with
             | [ Some u; Some v ] ->
                 if u < 0 || v < 0 then
                   invalid_arg
                     (Printf.sprintf "Datasets.load_snap: %s:%d: negative vertex id" path !lineno);
                 if u <> v then begin
                   let u = id_of u and v = id_of v in
                   let e = if u < v then (u, v) else (v, u) in
                   if not (Hashtbl.mem seen e) then begin
                     Hashtbl.replace seen e ();
                     edges := e :: !edges
                   end
                 end
             | _ ->
                 invalid_arg
                   (Printf.sprintf "Datasets.load_snap: %s:%d: expected two integer vertex ids"
                      path !lineno)
         done
       with End_of_file -> ());
      Graph.of_edges ~n:!next_id !edges)

type ba_spec = {
  label : string;
  beta : float;
  alpha : float;
  paper_dmax : int;
  paper_triangles : int;
  paper_sum_deg_sq : int;
}

let table3 =
  [
    {
      label = "Barabasi 1";
      beta = 0.50;
      alpha = 1.0;
      paper_dmax = 377;
      paper_triangles = 16091;
      paper_sum_deg_sq = 71_859_718;
    };
    {
      label = "Barabasi 2";
      beta = 0.55;
      alpha = 1.1;
      paper_dmax = 475;
      paper_triangles = 18515;
      paper_sum_deg_sq = 77_819_452;
    };
    {
      label = "Barabasi 3";
      beta = 0.60;
      alpha = 1.2;
      paper_dmax = 573;
      paper_triangles = 22209;
      paper_sum_deg_sq = 86_576_336;
    };
    {
      label = "Barabasi 4";
      beta = 0.65;
      alpha = 1.3;
      paper_dmax = 751;
      paper_triangles = 28241;
      paper_sum_deg_sq = 99_641_108;
    };
    {
      label = "Barabasi 5";
      beta = 0.70;
      alpha = 1.4;
      paper_dmax = 965;
      paper_triangles = 35741;
      paper_sum_deg_sq = 119_340_328;
    };
  ]

let ba_graph ?(scale = 1.0) spec =
  Gen.barabasi_albert ~n:(scaled scale 2000) ~m:5 ~alpha:spec.alpha
    (Prng.create (0xba00 + int_of_float (100.0 *. spec.beta)))
