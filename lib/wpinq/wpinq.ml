(** Umbrella namespace: one [open Wpinq]-style entry point re-exporting
    every library in the platform.  See the individual interfaces for
    documentation; README.md maps them to the paper's sections. *)

module Prng = Wpinq_prng.Prng
module Persist = Wpinq_persist.Persist
module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops
module Dataflow = Wpinq_dataflow.Dataflow
module Budget = Wpinq_core.Budget
module Lang = Wpinq_core.Lang
module Batch = Wpinq_core.Batch
module Flow = Wpinq_core.Flow
module Measurement = Wpinq_core.Measurement
module Mechanisms = Wpinq_core.Mechanisms
module Plan = Wpinq_core.Plan
module Queries = Wpinq_queries.Queries
module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Rewire = Wpinq_graph.Rewire
module Graph_io = Wpinq_graph.Io
module Fenwick = Wpinq_graph.Fenwick
module Isotonic = Wpinq_postprocess.Isotonic
module Gridpath = Wpinq_postprocess.Gridpath
module Mcmc = Wpinq_infer.Mcmc
module Fit = Wpinq_infer.Fit
module Workflow = Wpinq_infer.Workflow
module Datasets = Wpinq_data.Datasets
module Pinq = Wpinq_baselines.Pinq
module Smooth = Wpinq_baselines.Smooth
module Wal = Wpinq_service.Wal
module Ledger = Wpinq_service.Ledger
module Admit = Wpinq_service.Admit
module Loadgen = Wpinq_service.Loadgen
