module Codec = Wpinq_persist.Persist.Codec

type op = Arrive | Depart
type t = { time : float; op : op; u : int; v : int }

let make ~time ~op ~u ~v =
  if not (Float.is_finite time) then invalid_arg "Event.make: timestamp must be finite";
  if u < 0 || v < 0 then invalid_arg "Event.make: negative vertex id";
  if u = v then invalid_arg "Event.make: self-loop";
  let u, v = if u < v then (u, v) else (v, u) in
  { time; op; u; v }

let encode ~seq e =
  let buf = Buffer.create 48 in
  Codec.write_int buf seq;
  Codec.write_float buf e.time;
  Codec.write_bool buf (e.op = Arrive);
  Codec.write_int buf e.u;
  Codec.write_int buf e.v;
  Buffer.contents buf

let decode payload =
  let r = Codec.reader payload in
  let seq = Codec.read_int r in
  let time = Codec.read_float r in
  let op = if Codec.read_bool r then Arrive else Depart in
  let u = Codec.read_int r in
  let v = Codec.read_int r in
  match make ~time ~op ~u ~v with
  | e -> (seq, e)
  | exception Invalid_argument msg -> raise (Codec.Decode_error ("event: " ^ msg))

let to_string e =
  Printf.sprintf "%s %d-%d @%g"
    (match e.op with Arrive -> "arrive" | Depart -> "depart")
    e.u e.v e.time
