(** Durable ingestion: the checksummed event journal.

    An instantiation of the generic [Wpinq_persist.Journal] (the same
    machinery behind [Wpinq_service.Wal]) for {!Event} payloads.  Every
    event is framed, checksummed, and fsynced before {!append} returns its
    sequence number — an acknowledged event survives any crash.  Recovery
    trims a torn tail (an unacknowledged partial append) and replays the
    rest; a record whose checksum fails is refused, never guessed at.

    Compaction is driven by the supervisor: once an epoch {e commits}
    events (its outcome record is durable in the epochs journal), the
    ingest journal folds them into a snapshot of the committed edge set and
    truncates.  Events that were fed to the live secret but not yet
    committed (a merged epoch's deferred tail) stay in the journal. *)

type t

type recovery = {
  replayed : (int * Event.t) list;  (** uncommitted events, oldest first *)
  torn_bytes : int;  (** bytes of torn tail trimmed from the journal *)
  rejected : Wpinq_persist.Persist.Store.rejected list;
      (** snapshot generations refused during recovery *)
}

val open_dir : ?keep:int -> ?fsync:bool -> string -> t * recovery
(** Opens (creating if needed) the ingest journal in [dir].  [keep]
    (default 3) snapshot generations are retained across compactions;
    [fsync] (default [true]) may be disabled for tests.  Raises
    {!Wpinq_persist.Journal.Io_error} on I/O failure. *)

val append : t -> Event.t -> int
(** Durably appends one event and returns its sequence number.  The event
    is fsynced before this returns: the returned seq is an acknowledgment.
    Raises {!Wpinq_persist.Journal.Io_error} on failure, in which case the
    event may or may not be durable — re-submitting is safe because
    application is idempotent per (seq, event). *)

val head : t -> int
(** Sequence number of the newest acknowledged event (0 when empty). *)

val base : t -> int * (int * int) list
(** The compaction base: [(seq, edges)] — the committed undirected edge
    set as of sequence [seq].  [(0, [])] before any compaction. *)

val events_after : t -> int -> (int * Event.t) list
(** Acknowledged events with sequence number strictly greater than the
    argument, oldest first. *)

val compact : t -> upto:int -> edges:(int * int) list -> unit
(** Folds all events with seq [<= upto] into a snapshot recording [edges]
    (the committed edge set at [upto]) and rewrites the journal to hold
    only later events.  Raises {!Wpinq_persist.Journal.Io_error}. *)

val dir : t -> string
val close : t -> unit
