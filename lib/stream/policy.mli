(** Degradation policy for the continual-observation supervisor.

    Two questions have typed answers here: what happens to a degraded
    epoch's budget (re-exported from {!Wpinq_core.Budget.Schedule}), and
    what counts as a transient failure worth a bounded retry versus a
    reason to degrade the epoch immediately. *)

type degrade = Wpinq_core.Budget.Schedule.policy = Roll_forward | Forfeit
(** Disposition of a degraded (or completed-under-budget) epoch's unspent
    allowance — see {!Wpinq_core.Budget.Schedule.policy}. *)

val degrade_to_string : degrade -> string
val degrade_of_string : string -> degrade option
(** ["roll-forward"]/["roll"] and ["forfeit"] (CLI spellings). *)

(** Why an epoch attempt failed. *)
type failure =
  | Deadline  (** the fit ran past the per-epoch wall-clock deadline *)
  | Io of { op : string; path : string; cause : string }
      (** a journal/checkpoint I/O failure
          ({!Wpinq_persist.Journal.Io_error}) *)
  | Chaos of string  (** injected transient failure (tests, bench) *)

val transient : failure -> bool
(** Whether a bounded retry-with-backoff is worth attempting: I/O errors
    and injected chaos are transient (the next attempt resumes from the
    epoch's durable checkpoint, or re-derives the epoch deterministically);
    a blown deadline is not — the epoch is already late, so it degrades
    immediately rather than getting later. *)

val describe : failure -> string
