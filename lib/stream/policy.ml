type degrade = Wpinq_core.Budget.Schedule.policy = Roll_forward | Forfeit

let degrade_to_string = function Roll_forward -> "roll-forward" | Forfeit -> "forfeit"

let degrade_of_string = function
  | "roll-forward" | "roll" -> Some Roll_forward
  | "forfeit" -> Some Forfeit
  | _ -> None

type failure =
  | Deadline
  | Io of { op : string; path : string; cause : string }
  | Chaos of string

let transient = function Deadline -> false | Io _ | Chaos _ -> true

let describe = function
  | Deadline -> "deadline exceeded"
  | Io { op; path; cause } -> Printf.sprintf "io failure: %s on %s: %s" op path cause
  | Chaos reason -> "injected transient failure: " ^ reason
