module Journal = Wpinq_persist.Journal
module Codec = Wpinq_persist.Persist.Codec

let magic = "WPQSTRM\x00"
let snapshot_magic = "wPINQSTM"
let snapshot_version = 1

type t = {
  j : Journal.t;
  mutable head : int;
  mutable base_seq : int;
  mutable base : (int * int) list;
  (* Every event still in the journal, newest first.  This reaches back to
     the oldest retained snapshot generation, not just [base_seq], because
     compaction must be able to rewrite the journal for recovery fallback
     past a corrupt newest snapshot. *)
  mutable tail : (int * Event.t) list;
}

type recovery = {
  replayed : (int * Event.t) list;
  torn_bytes : int;
  rejected : Wpinq_persist.Persist.Store.rejected list;
}

let encode_snapshot ~seq edges =
  let buf = Buffer.create 256 in
  Codec.write_int buf seq;
  Codec.write_list
    (fun buf (u, v) ->
      Codec.write_int buf u;
      Codec.write_int buf v)
    buf edges;
  Buffer.contents buf

let decode_snapshot payload =
  let r = Codec.reader payload in
  let seq = Codec.read_int r in
  let edges =
    Codec.read_list
      (fun r ->
        let u = Codec.read_int r in
        let v = Codec.read_int r in
        (u, v))
      r
  in
  (seq, edges)

let open_dir ?keep ?fsync dirname =
  let j, rec_ =
    Journal.open_dir ?keep ?fsync ~sites:"stream" ~magic ~snapshot_magic
      ~snapshot_version dirname
  in
  let base_seq, base =
    match rec_.Journal.snapshot with
    | None -> (0, [])
    | Some (payload, _seq) -> decode_snapshot payload
  in
  let all = List.map Event.decode rec_.Journal.records in
  let head = List.fold_left (fun acc (seq, _) -> max acc seq) base_seq all in
  let t = { j; head; base_seq; base; tail = List.rev all } in
  let replayed = List.filter (fun (seq, _) -> seq > base_seq) all in
  (t, { replayed; torn_bytes = rec_.Journal.torn_bytes; rejected = rec_.Journal.rejected })

let append t e =
  let seq = t.head + 1 in
  Journal.append t.j (Event.encode ~seq e);
  t.head <- seq;
  t.tail <- (seq, e) :: t.tail;
  seq

let head t = t.head
let base t = (t.base_seq, t.base)
let events_after t after = List.rev (List.filter (fun (seq, _) -> seq > after) t.tail)

let compact t ~upto ~edges =
  if upto < t.base_seq then
    invalid_arg
      (Printf.sprintf "Ingest.compact: upto %d precedes base %d" upto t.base_seq);
  let floor = ref upto in
  let retain oldest =
    floor := oldest;
    List.filter_map
      (fun (seq, e) -> if seq > oldest then Some (Event.encode ~seq e) else None)
      (events_after t oldest)
  in
  Journal.compact t.j ~seq:upto ~snapshot:(encode_snapshot ~seq:upto edges) ~retain;
  t.base_seq <- upto;
  t.base <- edges;
  t.tail <- List.filter (fun (seq, _) -> seq > !floor) t.tail

let dir t = Journal.dir t.j
let close t = Journal.close t.j
