(** Timestamped edge arrival/departure events — the continual-observation
    stream's input alphabet.

    An event names one undirected edge of the protected graph.  Events are
    normalized at construction ([u < v]) and validated: self-loops and
    negative ids are programming errors here, never acknowledged stream
    state (the parse-time strictness of [Graph.Io] applied to deltas).
    Application is tolerant, though: an arrival of an edge already present,
    or a departure of an absent one, is a counted no-op when the supervisor
    applies it — at-least-once clients may safely re-submit an event whose
    acknowledgment a crash swallowed. *)

type op = Arrive | Depart

type t = private { time : float; op : op; u : int; v : int }

val make : time:float -> op:op -> u:int -> v:int -> t
(** Normalizes the endpoints ([u < v]).  Raises [Invalid_argument] on a
    self-loop, a negative id, or a non-finite timestamp. *)

val encode : seq:int -> t -> string
(** Journal payload: the event tagged with its ingest sequence number. *)

val decode : string -> int * t
(** Inverse of {!encode}.  Raises
    [Wpinq_persist.Persist.Codec.Decode_error] on malformed payloads
    (including ones whose fields fail {!make}'s validation — a checksummed
    journal can only contain what {!encode} wrote, so damage beyond the
    checksum's reach is still refused, not replayed). *)

val to_string : t -> string
