(** The continual-observation supervisor: crash-safe streaming ingestion,
    epoch scheduling with defense in depth, and warm-started re-synthesis.

    The supervisor turns the one-shot synthesis workflow into a supervised
    pipeline over an evolving protected graph.  Clients {!submit}
    timestamped edge events; each is fsynced into the {!Ingest} journal
    before its sequence number is returned, so an acknowledged event
    survives any crash.  On a {!tick} the supervisor runs one {e
    re-release epoch}: it asks the {!Wpinq_core.Budget.Schedule} for the
    epoch's allowance (a typed {!outcome.Refused} when the schedule is
    exhausted), feeds the pending events into the live secret, re-measures
    the queries under the allowance, and re-fits — {e warm-starting} from
    the previous epoch's synthetic graph adapted to the new degree
    sequence ({!warm_seed}) rather than a cold configuration-model seed.

    Defense in depth, in layers:

    - {e Durability.}  Both journals (events, epoch ledger) are
      checksummed, fsynced, torn-tail-trimmed instances of
      [Wpinq_persist.Journal]; the fit checkpoints every
      [checkpoint_every] steps into a generational store, {e starting
      with a step-0 snapshot written before the first step} — measurement
      noise is spent the moment it is drawn, so the epoch is resumable
      from durable state from that moment on.  Kill the process anywhere
      and {!open_dir} replays back to the exact state: the resumed run's
      outcomes, synthetic graph, and books are bit-identical to an
      uninterrupted one's.
    - {e Bounded retry.}  Transient failures (I/O errors, injected chaos)
      are retried up to [retries] times with exponential backoff; each
      attempt deterministically re-derives the epoch (the epoch PRNG is a
      pure function of [(seed, epoch)], so a retry redraws {e identical}
      noise — no extra privacy loss) or resumes its durable checkpoint.
    - {e Graceful degradation.}  An epoch that exhausts its retries or
      blows its [deadline] is {e skipped and merged}: its events stay
      pending and roll into the next epoch, its unspent allowance is
      rolled forward or forfeited per [policy], and whatever {e was}
      spent (noise recorded in a durable snapshot has been released,
      completed or not) is accounted honestly.  Every disposition is
      typed ({!outcome}) and journalled; {!overspend} is provably [0.0].

    Shutdown integration: one SIGINT ({!Wpinq_infer.Shutdown.requested})
    drains — the in-flight epoch finishes, {!run} stops before the next.
    A second ({!Wpinq_infer.Shutdown.forced}) interrupts the walk itself;
    the fit writes a final snapshot and {!tick} returns [None] with the
    epoch left in-flight, to be resumed by a later tick or process. *)

module Schedule = Wpinq_core.Budget.Schedule

type config = {
  queries : Wpinq_infer.Workflow.query list;  (** non-empty *)
  steps : int;  (** MCMC steps per epoch *)
  pow : float;
  jobs : int;
  trace_every : int option;
  refresh_every : int;
  audit_every : int;
  audit_tolerance : float;
  checkpoint_every : int;  (** fit snapshot cadence, in steps *)
  keep : int;  (** snapshot generations retained, all stores *)
  fsync : bool;
  retries : int;  (** transient-failure retries per epoch *)
  backoff : float;  (** base seconds; doubles per retry ([0.] = none) *)
  deadline : float;  (** per-epoch wall-clock seconds ([0.] = none) *)
  per_epoch : float;  (** ε granted per epoch *)
  epochs : int;  (** total epochs the schedule may grant *)
  policy : Policy.degrade;
  seed : int;  (** master PRNG seed; epoch rng = [split_nth (create seed) epoch] *)
}

val config :
  ?queries:Wpinq_infer.Workflow.query list ->
  ?steps:int ->
  ?pow:float ->
  ?jobs:int ->
  ?trace_every:int ->
  ?refresh_every:int ->
  ?audit_every:int ->
  ?audit_tolerance:float ->
  ?checkpoint_every:int ->
  ?keep:int ->
  ?fsync:bool ->
  ?retries:int ->
  ?backoff:float ->
  ?deadline:float ->
  ?policy:Policy.degrade ->
  ?seed:int ->
  per_epoch:float ->
  epochs:int ->
  unit ->
  config
(** Defaults: [queries = [Tbi]], [steps = 2000], [pow = 100.], [jobs = 1],
    [checkpoint_every = 500], [keep = 3], [fsync = true], [retries = 2],
    [backoff = 0.], [deadline = 0.], [policy = Roll_forward], [seed = 1].
    Raises [Invalid_argument] on an empty [queries] list. *)

type completed = {
  epoch : int;
  allowance : float;  (** ε granted (per-epoch + carried) *)
  spent : float;  (** ε actually debited by this epoch's measurements *)
  steps : int;  (** walk length *)
  initial_energy : float;  (** posterior energy at the warm start *)
  final_energy : float;
  events : int;  (** stream events consumed (committed) by this epoch *)
  stream_seq : int;  (** ingest position the release covers *)
  retries : int;  (** transient-failure retries this epoch survived *)
}

type merged = {
  m_epoch : int;
  m_allowance : float;
  m_spent : float;  (** ε released before the failure (durable snapshots) *)
  rolled : float;  (** unspent ε carried to the next epoch *)
  forfeited : float;  (** unspent ε destroyed ([Forfeit] policy) *)
  reason : string;
  deferred : int;  (** events left pending for the next epoch *)
  m_retries : int;
}

type refused = { r_epoch : int; r_deferred : int }

(** The typed disposition of one epoch — every branch is journalled and
    reproduced bit-identically across kill/resume. *)
type outcome =
  | Completed of completed
  | Merged of merged
  | Refused of refused
      (** the budget schedule is exhausted: typed refusal, nothing spent *)

val outcome_to_string : outcome -> string

type recovery = {
  torn_bytes : int;  (** journal bytes trimmed across both journals *)
  replayed_events : int;  (** uncommitted events recovered *)
  replayed_records : int;  (** epoch-ledger records replayed past the snapshot *)
  resumed_epoch : int option;  (** an epoch was in flight at the crash *)
  rejected : Wpinq_persist.Persist.Store.rejected list;
}

type t

val open_dir :
  ?chaos:(epoch:int -> attempt:int -> string option) ->
  config:config ->
  string ->
  t * recovery
(** Opens (creating or recovering) a supervisor rooted at [dir].  Recovery
    replays both journals and lands on the exact pre-crash state; an
    in-flight epoch is left armed for the next {!tick} to resume.  [chaos]
    is the deterministic transient-failure hook for tests and benches:
    consulted at the start of each epoch attempt, a [Some reason] makes
    the attempt fail as a retryable {!Policy.Chaos}. *)

val submit : t -> Event.t -> int
(** Durably appends one event and returns its sequence number — an
    acknowledgment: the event survives any subsequent crash and will be
    consumed by a future epoch.  Raises
    {!Wpinq_persist.Journal.Io_error} if durability cannot be promised. *)

val pending : t -> int
(** Acknowledged events not yet committed by a completed epoch. *)

val tick : t -> outcome option
(** Runs (or resumes) one epoch and returns its settled outcome.  [None]
    means the epoch was interrupted by shutdown and stays in flight —
    durable, resumable by a later tick or a fresh process. *)

val run : ?cadence:float -> t -> epochs:int -> outcome list
(** Up to [epochs] ticks, sleeping [cadence] seconds between them
    (default [0.]), stopping early on {!Wpinq_infer.Shutdown.requested}
    or an interrupted epoch.  Returns the outcomes, oldest first. *)

val outcomes : t -> outcome list
(** Every settled outcome since the stream began, oldest first. *)

val synthetic : t -> Wpinq_graph.Graph.t option
(** The most recently released synthetic graph, if any epoch completed. *)

val books : t -> Schedule.books

val overspend : t -> float
(** [Schedule.overspend]: ε spent beyond ε granted.  Always [0.0] — the
    fault matrix asserts this across every crash/retry/degrade path. *)

val schedule_log : t -> Schedule.entry list
val consumed : t -> int
val head : t -> int
val protected_edges : t -> (int * int) list
(** The current secret edge set (committed events plus those fed to the
    live input by in-flight or merged epochs) — test oracle only. *)

val warm_seed :
  rng:Wpinq_prng.Prng.t ->
  degrees:int array ->
  previous:Wpinq_graph.Graph.t ->
  Wpinq_graph.Graph.t
(** The warm-start seed: keeps every edge of [previous] that fits within
    the new degree sequence's per-vertex capacities, then wires the
    residual degree stubs uniformly at random (self-loops and duplicates
    rejected, leftover stubs dropped).  Exposed for the warm-vs-cold
    bench. *)

val dir : t -> string
val close : t -> unit
