module Journal = Wpinq_persist.Journal
module Persist = Wpinq_persist.Persist
module Codec = Persist.Codec
module Schedule = Wpinq_core.Budget.Schedule
module Budget = Wpinq_core.Budget
module Batch = Wpinq_core.Batch
module Prng = Wpinq_prng.Prng
module Graph = Wpinq_graph.Graph
module Workflow = Wpinq_infer.Workflow
module Shutdown = Wpinq_infer.Shutdown
module Dataflow = Wpinq_dataflow.Dataflow
module Wdata = Wpinq_weighted.Wdata

let magic = "WPQEPO1\x00"
let snapshot_magic = "wPINQEPO"
let snapshot_version = 1

exception Chaos of string

type config = {
  queries : Workflow.query list;
  steps : int;
  pow : float;
  jobs : int;
  trace_every : int option;
  refresh_every : int;
  audit_every : int;
  audit_tolerance : float;
  checkpoint_every : int;
  keep : int;
  fsync : bool;
  retries : int;
  backoff : float;
  deadline : float;
  per_epoch : float;
  epochs : int;
  policy : Policy.degrade;
  seed : int;
}

let config ?(queries = [ Workflow.Tbi ]) ?(steps = 2000) ?(pow = 100.0) ?(jobs = 1)
    ?trace_every ?(refresh_every = 100_000) ?(audit_every = 0) ?(audit_tolerance = 1e-6)
    ?(checkpoint_every = 500) ?(keep = 3) ?(fsync = true) ?(retries = 2) ?(backoff = 0.0)
    ?(deadline = 0.0) ?(policy = Policy.Roll_forward) ?(seed = 1) ~per_epoch ~epochs () =
  if queries = [] then invalid_arg "Supervisor.config: queries must be non-empty";
  {
    queries;
    steps;
    pow;
    jobs;
    trace_every;
    refresh_every;
    audit_every;
    audit_tolerance;
    checkpoint_every;
    keep;
    fsync;
    retries;
    backoff;
    deadline;
    per_epoch;
    epochs;
    policy;
    seed;
  }

type completed = {
  epoch : int;
  allowance : float;
  spent : float;
  steps : int;
  initial_energy : float;
  final_energy : float;
  events : int;
  stream_seq : int;
  retries : int;
}

type merged = {
  m_epoch : int;
  m_allowance : float;
  m_spent : float;
  rolled : float;
  forfeited : float;
  reason : string;
  deferred : int;
  m_retries : int;
}

type refused = { r_epoch : int; r_deferred : int }
type outcome = Completed of completed | Merged of merged | Refused of refused

let outcome_to_string = function
  | Completed { epoch; spent; final_energy; events; retries; _ } ->
      Printf.sprintf "epoch %d completed: spent %.4g, energy %.4g, %d events%s" epoch
        spent final_energy events
        (if retries > 0 then Printf.sprintf " (%d retries)" retries else "")
  | Merged { m_epoch; m_spent; rolled; forfeited; reason; deferred; _ } ->
      Printf.sprintf
        "epoch %d merged (%s): spent %.4g, rolled %.4g, forfeited %.4g, %d deferred"
        m_epoch reason m_spent rolled forfeited deferred
  | Refused { r_epoch; r_deferred } ->
      Printf.sprintf "epoch %d refused: budget schedule exhausted, %d pending" r_epoch
        r_deferred

type recovery = {
  torn_bytes : int;
  replayed_events : int;
  replayed_records : int;
  resumed_epoch : int option;
  rejected : Persist.Store.rejected list;
}

type t = {
  cfg : config;
  dir : string;
  ingest : Ingest.t;
  epochs_j : Journal.t;
  sched : Schedule.t;
  engine : Dataflow.Engine.t;
  input : (int * int) Dataflow.Input.t;
  chaos : (epoch:int -> attempt:int -> string option) option;
  mutable jseq : int;
  mutable next_epoch : int;
  mutable consumed_seq : int;  (* stream position committed by completed epochs *)
  mutable fed_seq : int;  (* events already applied to the live input (>= consumed) *)
  mutable committed : (int * int) list;  (* secret edges at consumed_seq *)
  mutable synthetic : Graph.t option;
  mutable outcomes : outcome list;  (* newest first *)
  mutable in_flight : (int * float * int) option;  (* epoch, allowance, head *)
  mutable recent : (int * string) list;  (* (jseq, payload), newest first *)
}

(* ---- Codecs ----------------------------------------------------------- *)

let encode_graph buf g =
  Codec.write_int buf (Graph.n g);
  Codec.write_list
    (fun buf (u, v) ->
      Codec.write_int buf u;
      Codec.write_int buf v)
    buf (Graph.edges g)

let read_edge r =
  let u = Codec.read_int r in
  let v = Codec.read_int r in
  (u, v)

let decode_graph r =
  let n = Codec.read_int r in
  let edges = Codec.read_list read_edge r in
  Graph.of_edges ~n edges

let encode_outcome buf = function
  | Completed
      {
        epoch;
        allowance;
        spent;
        steps;
        initial_energy;
        final_energy;
        events;
        stream_seq;
        retries;
      } ->
      Codec.write_int buf 0;
      Codec.write_int buf epoch;
      Codec.write_float buf allowance;
      Codec.write_float buf spent;
      Codec.write_int buf steps;
      Codec.write_float buf initial_energy;
      Codec.write_float buf final_energy;
      Codec.write_int buf events;
      Codec.write_int buf stream_seq;
      Codec.write_int buf retries
  | Merged { m_epoch; m_allowance; m_spent; rolled; forfeited; reason; deferred; m_retries }
    ->
      Codec.write_int buf 1;
      Codec.write_int buf m_epoch;
      Codec.write_float buf m_allowance;
      Codec.write_float buf m_spent;
      Codec.write_float buf rolled;
      Codec.write_float buf forfeited;
      Codec.write_string buf reason;
      Codec.write_int buf deferred;
      Codec.write_int buf m_retries
  | Refused { r_epoch; r_deferred } ->
      Codec.write_int buf 2;
      Codec.write_int buf r_epoch;
      Codec.write_int buf r_deferred

let decode_outcome r =
  match Codec.read_int r with
  | 0 ->
      let epoch = Codec.read_int r in
      let allowance = Codec.read_float r in
      let spent = Codec.read_float r in
      let steps = Codec.read_int r in
      let initial_energy = Codec.read_float r in
      let final_energy = Codec.read_float r in
      let events = Codec.read_int r in
      let stream_seq = Codec.read_int r in
      let retries = Codec.read_int r in
      Completed
        {
          epoch;
          allowance;
          spent;
          steps;
          initial_energy;
          final_energy;
          events;
          stream_seq;
          retries;
        }
  | 1 ->
      let m_epoch = Codec.read_int r in
      let m_allowance = Codec.read_float r in
      let m_spent = Codec.read_float r in
      let rolled = Codec.read_float r in
      let forfeited = Codec.read_float r in
      let reason = Codec.read_string r in
      let deferred = Codec.read_int r in
      let m_retries = Codec.read_int r in
      Merged { m_epoch; m_allowance; m_spent; rolled; forfeited; reason; deferred; m_retries }
  | 2 ->
      let r_epoch = Codec.read_int r in
      let r_deferred = Codec.read_int r in
      Refused { r_epoch; r_deferred }
  | tag -> raise (Codec.Decode_error (Printf.sprintf "supervisor: outcome tag %d" tag))

(* Epoch-ledger records.  Every record leads with its jseq so replay and
   retention can order them without knowing the variant. *)
type record =
  | Rec_start of { epoch : int; allowance : float; head : int }
  | Rec_outcome of { outcome : outcome; synthetic : Graph.t option }

let encode_record ~jseq record =
  let buf = Buffer.create 128 in
  Codec.write_int buf jseq;
  (match record with
  | Rec_start { epoch; allowance; head } ->
      Codec.write_int buf 0;
      Codec.write_int buf epoch;
      Codec.write_float buf allowance;
      Codec.write_int buf head
  | Rec_outcome { outcome; synthetic } ->
      Codec.write_int buf 1;
      encode_outcome buf outcome;
      (match synthetic with
      | None -> Codec.write_bool buf false
      | Some g ->
          Codec.write_bool buf true;
          encode_graph buf g));
  Buffer.contents buf

let decode_record payload =
  let r = Codec.reader payload in
  let jseq = Codec.read_int r in
  let record =
    match Codec.read_int r with
    | 0 ->
        let epoch = Codec.read_int r in
        let allowance = Codec.read_float r in
        let head = Codec.read_int r in
        Rec_start { epoch; allowance; head }
    | 1 ->
        let outcome = decode_outcome r in
        let synthetic = if Codec.read_bool r then Some (decode_graph r) else None in
        Rec_outcome { outcome; synthetic }
    | tag -> raise (Codec.Decode_error (Printf.sprintf "supervisor: record tag %d" tag))
  in
  (jseq, record)

let record_jseq payload = Codec.read_int (Codec.reader payload)

let encode_snapshot t =
  let buf = Buffer.create 1024 in
  Codec.write_int buf t.jseq;
  Codec.write_int buf t.next_epoch;
  Codec.write_int buf t.consumed_seq;
  Codec.write_int buf t.fed_seq;
  Codec.write_list
    (fun buf (u, v) ->
      Codec.write_int buf u;
      Codec.write_int buf v)
    buf t.committed;
  (match t.synthetic with
  | None -> Codec.write_bool buf false
  | Some g ->
      Codec.write_bool buf true;
      encode_graph buf g);
  Schedule.save t.sched buf;
  Codec.write_list (fun buf o -> encode_outcome buf o) buf (List.rev t.outcomes);
  Buffer.contents buf

(* ---- The live secret -------------------------------------------------- *)

(* The protected graph lives as a dataflow input of directed edges: each
   undirected edge contributes both orientations at weight 1, matching the
   symmetric source the one-shot workflow measures.  Arrivals of present
   edges and departures of absent ones are counted no-ops, so at-least-once
   replay converges. *)
let apply_event input (e : Event.t) =
  let present = Wdata.mem (Dataflow.Input.current input) (e.u, e.v) in
  match e.op with
  | Event.Arrive when present -> false
  | Event.Depart when not present -> false
  | Event.Arrive ->
      Dataflow.Input.feed input [ ((e.u, e.v), 1.0); ((e.v, e.u), 1.0) ];
      true
  | Event.Depart ->
      Dataflow.Input.feed input [ ((e.u, e.v), -1.0); ((e.v, e.u), -1.0) ];
      true

(* Feed every acknowledged event up to [upto] that the live input has not
   absorbed yet.  Merged epochs leave their events fed-but-uncommitted;
   [fed_seq] keeps them from being applied twice. *)
let feed_to t ~upto =
  if upto > t.fed_seq then begin
    List.iter
      (fun (seq, e) -> if seq <= upto then ignore (apply_event t.input e))
      (Ingest.events_after t.ingest t.fed_seq);
    t.fed_seq <- upto
  end

let current_edges t =
  List.filter_map
    (fun ((u, v), _w) -> if u < v then Some (u, v) else None)
    (Wdata.to_sorted_list (Dataflow.Input.current t.input))

(* ---- Warm start ------------------------------------------------------- *)

let warm_seed ~rng ~degrees ~previous =
  let n = Array.length degrees in
  let deg = Array.make n 0 in
  (* Keep every previous edge that fits the new per-vertex capacities. *)
  let kept =
    List.filter
      (fun (u, v) ->
        if u < n && v < n && deg.(u) < degrees.(u) && deg.(v) < degrees.(v) then begin
          deg.(u) <- deg.(u) + 1;
          deg.(v) <- deg.(v) + 1;
          true
        end
        else false)
      (Graph.edges previous)
  in
  (* Wire the residual degree stubs uniformly at random (configuration
     model on the deficit), rejecting self-loops and duplicates. *)
  let stubs = ref [] in
  for v = n - 1 downto 0 do
    for _ = 1 to degrees.(v) - deg.(v) do
      stubs := v :: !stubs
    done
  done;
  let stubs = Array.of_list !stubs in
  let len = Array.length stubs in
  for i = len - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let tmp = stubs.(i) in
    stubs.(i) <- stubs.(j);
    stubs.(j) <- tmp
  done;
  let seen = Hashtbl.create (List.length kept * 2) in
  List.iter (fun (u, v) -> Hashtbl.replace seen (u, v) ()) kept;
  let extra = ref [] in
  for i = 0 to (len / 2) - 1 do
    let u = stubs.(2 * i) and v = stubs.((2 * i) + 1) in
    let u, v = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      extra := (u, v) :: !extra
    end
  done;
  Graph.of_edges ~n (kept @ List.rev !extra)

(* ---- Durable plumbing ------------------------------------------------- *)

let fit_dir t epoch = Filename.concat t.dir (Printf.sprintf "fit-%d" epoch)

let remove_dir_recursive path =
  if Sys.file_exists path && Sys.is_directory path then begin
    Array.iter
      (fun entry -> try Sys.remove (Filename.concat path entry) with Sys_error _ -> ())
      (Sys.readdir path);
    try Sys.rmdir path with Sys_error _ -> ()
  end

(* Drop fit checkpoints of epochs that can never resume: everything but
   the in-flight epoch's.  Run at open and after each settle, so a crash
   between settle and cleanup only leaves garbage for the next open. *)
let sweep_fit_dirs t =
  let live = match t.in_flight with Some (e, _, _) -> Some e | None -> None in
  Array.iter
    (fun entry ->
      match Scanf.sscanf_opt entry "fit-%d%!" (fun e -> e) with
      | Some e when Some e <> live -> remove_dir_recursive (Filename.concat t.dir entry)
      | _ -> ())
    (Sys.readdir t.dir)

let journal_record t record =
  t.jseq <- t.jseq + 1;
  let payload = encode_record ~jseq:t.jseq record in
  Journal.append t.epochs_j payload;
  t.recent <- (t.jseq, payload) :: t.recent

(* Snapshot the settled supervisor state and compact both journals.  Only
   called at settled boundaries (no outstanding epoch), so recovery from
   the snapshot alone is always consistent. *)
let checkpoint_state t =
  let floor = ref t.jseq in
  let retain oldest =
    floor := oldest;
    List.rev
      (List.filter_map
         (fun (jseq, payload) -> if jseq > oldest then Some payload else None)
         t.recent)
  in
  Journal.compact t.epochs_j ~seq:t.jseq ~snapshot:(encode_snapshot t) ~retain;
  t.recent <- List.filter (fun (jseq, _) -> jseq > !floor) t.recent;
  if t.consumed_seq > fst (Ingest.base t.ingest) then
    Ingest.compact t.ingest ~upto:t.consumed_seq ~edges:t.committed

(* ---- Epoch execution -------------------------------------------------- *)

(* Per-use ε from the epoch allowance: seed measurements cost 3 uses, each
   query its derived use count. *)
let per_use_epsilon cfg ~allowance =
  let uses =
    3.0
    +. List.fold_left (fun acc q -> acc +. Workflow.query_cost q 1.0) 0.0 cfg.queries
  in
  allowance /. uses

let measure t ~rng ~allowance =
  let per_use = per_use_epsilon t.cfg ~allowance in
  let budget = Budget.create ~name:"stream-secret" allowance in
  let rows = Wdata.to_sorted_list (Dataflow.Input.current t.input) in
  let sym = Batch.source ~budget rows in
  let seed_ms = Workflow.measure_seed ~rng ~epsilon:per_use ~sym in
  let degrees = Workflow.fit_degrees seed_ms in
  let qms = Workflow.measure_queries ~rng ~epsilon:per_use ~sym t.cfg.queries in
  (budget, per_use, degrees, qms)

(* ε already released by a failed epoch: noise recorded in a durable fit
   snapshot is out in the world whether or not the epoch completed, so a
   degraded epoch settles with the newest valid generation's spend.  No
   durable generation means the noise was drawn but never released — the
   measurement died with the process — and the honest figure is zero. *)
let durable_spent t epoch =
  let dirpath = fit_dir t epoch in
  if not (Sys.file_exists dirpath) then 0.0
  else
    let store = Persist.Store.open_dir ~keep:t.cfg.keep dirpath in
    let rec scan = function
      | [] -> 0.0
      | (_step, path) :: rest -> (
          match Workflow.checkpoint_epsilon path with
          | eps -> eps
          | exception Workflow.Corrupt_checkpoint _ -> scan rest)
    in
    scan (Persist.Store.generations store)

(* One attempt at the epoch's fit: resume the durable checkpoint when one
   exists, otherwise measure + warm-start from scratch.  The epoch PRNG is
   a pure function of (seed, epoch), so a from-scratch retry re-derives
   identical noise — the same release, not a second one. *)
let run_fit t ~epoch ~allowance ~head ~attempt =
  (match t.chaos with
  | Some f -> (
      match f ~epoch ~attempt with Some reason -> raise (Chaos reason) | None -> ())
  | None -> ());
  let store = Persist.Store.open_dir ~keep:t.cfg.keep (fit_dir t epoch) in
  let cfg = t.cfg in
  let deadline = if cfg.deadline > 0.0 then Some cfg.deadline else None in
  let fresh () =
    let rng = Prng.split_nth (Prng.create cfg.seed) epoch in
    let budget, per_use, degrees, qms = measure t ~rng ~allowance in
    let warm =
      match t.synthetic with
      | Some previous -> warm_seed ~rng ~degrees ~previous
      | None -> Workflow.seed_graph ~rng ~degrees
    in
    Workflow.fit_stream ~pow:cfg.pow ~steps:cfg.steps ?trace_every:cfg.trace_every
      ~refresh_every:cfg.refresh_every ~audit_every:cfg.audit_every
      ~audit_tolerance:cfg.audit_tolerance ~jobs:cfg.jobs
      ~checkpoint:{ Workflow.every = cfg.checkpoint_every; sink = Workflow.Store store }
      ~stop:Shutdown.forced ?deadline ~rng ~budget ~epsilon:per_use ~warm ~qms ~epoch
      ~stream_seq:head ()
  in
  if Persist.Store.generations store = [] then fresh ()
  else
    match
      Workflow.resume_latest ~store ~stop:Shutdown.forced ?deadline ~jobs:cfg.jobs ()
    with
    | result -> result
    | exception Workflow.Corrupt_checkpoint _ -> fresh ()

let failure_of_exn = function
  | Journal.Io_error { op; path; cause } -> Some (Policy.Io { op; path; cause })
  | Sys_error cause -> Some (Policy.Io { op = "checkpoint"; path = ""; cause })
  | Chaos reason -> Some (Policy.Chaos reason)
  | _ -> None

let settle t outcome ~synthetic =
  journal_record t (Rec_outcome { outcome; synthetic });
  (match outcome with
  | Completed { epoch; spent; stream_seq; _ } ->
      Schedule.complete t.sched ~epoch ~spent;
      t.consumed_seq <- stream_seq;
      t.committed <- current_edges t;
      (match synthetic with Some g -> t.synthetic <- Some g | None -> ());
      t.next_epoch <- epoch + 1
  | Merged { m_epoch; m_spent; _ } ->
      Schedule.degrade t.sched ~epoch:m_epoch ~spent:m_spent;
      t.next_epoch <- m_epoch + 1
  | Refused { r_epoch; _ } ->
      Schedule.refuse t.sched ~epoch:r_epoch;
      t.next_epoch <- r_epoch + 1);
  t.in_flight <- None;
  t.outcomes <- outcome :: t.outcomes;
  checkpoint_state t;
  sweep_fit_dirs t;
  outcome

let execute t ~epoch ~allowance ~head =
  let cfg = t.cfg in
  let merged ~spent ~retries failure =
    let unspent = Float.max 0.0 (allowance -. spent) in
    let rolled, forfeited =
      match cfg.policy with
      | Policy.Roll_forward -> (unspent, 0.0)
      | Policy.Forfeit -> (0.0, unspent)
    in
    Merged
      {
        m_epoch = epoch;
        m_allowance = allowance;
        m_spent = spent;
        rolled;
        forfeited;
        reason = Policy.describe failure;
        deferred = head - t.consumed_seq;
        m_retries = retries;
      }
  in
  let rec attempt k =
    match run_fit t ~epoch ~allowance ~head ~attempt:k with
    | result -> Ok (result, k)
    | exception exn -> (
        match failure_of_exn exn with
        | Some f when Policy.transient f && k < cfg.retries ->
            if cfg.backoff > 0.0 then Unix.sleepf (cfg.backoff *. (2.0 ** float_of_int k));
            attempt (k + 1)
        | Some f -> Error (f, k)
        | None -> raise exn)
  in
  match attempt 0 with
  | Error (failure, retries) ->
      let spent = durable_spent t epoch in
      Some (settle t (merged ~spent ~retries failure) ~synthetic:None)
  | Ok (result, retries) ->
      if result.Workflow.stats.Wpinq_infer.Mcmc.interrupted then
        if Shutdown.requested () then None
          (* graceful stop: the fit wrote its final snapshot; the epoch
             stays in flight for a later tick or process to resume *)
        else
          let spent = durable_spent t epoch in
          Some (settle t (merged ~spent ~retries Policy.Deadline) ~synthetic:None)
      else begin
        let initial_energy =
          match result.Workflow.trace with
          | first :: _ -> first.Workflow.energy
          | [] -> result.Workflow.stats.Wpinq_infer.Mcmc.initial_energy
        in
        let outcome =
          Completed
            {
              epoch;
              allowance;
              spent = result.Workflow.total_epsilon;
              steps = cfg.steps;
              initial_energy;
              final_energy = result.Workflow.stats.Wpinq_infer.Mcmc.final_energy;
              events = head - t.consumed_seq;
              stream_seq = head;
              retries;
            }
        in
        Some (settle t outcome ~synthetic:(Some result.Workflow.synthetic))
      end

(* ---- Public API ------------------------------------------------------- *)

let submit t e = Ingest.append t.ingest e
let pending t = Ingest.head t.ingest - t.consumed_seq

let tick t =
  match t.in_flight with
  | Some (epoch, allowance, head) -> execute t ~epoch ~allowance ~head
  | None -> (
      let epoch = t.next_epoch in
      match Schedule.next t.sched ~epoch with
      | Error _refusal ->
          let outcome = Refused { r_epoch = epoch; r_deferred = pending t } in
          Some (settle t outcome ~synthetic:None)
      | Ok allowance ->
          let head = Ingest.head t.ingest in
          journal_record t (Rec_start { epoch; allowance; head });
          feed_to t ~upto:head;
          t.in_flight <- Some (epoch, allowance, head);
          execute t ~epoch ~allowance ~head)

let run ?(cadence = 0.0) t ~epochs =
  let results = ref [] in
  (try
     for i = 1 to epochs do
       if Shutdown.requested () then raise Exit;
       (match tick t with
       | Some outcome -> results := outcome :: !results
       | None -> raise Exit);
       if cadence > 0.0 && i < epochs then Unix.sleepf cadence
     done
   with Exit -> ());
  List.rev !results

let outcomes t = List.rev t.outcomes
let synthetic t = t.synthetic
let books t = Schedule.books t.sched
let overspend t = Schedule.overspend t.sched
let schedule_log t = Schedule.log t.sched
let consumed t = t.consumed_seq
let head t = Ingest.head t.ingest
let protected_edges t = current_edges t
let dir t = t.dir

let close t =
  Ingest.close t.ingest;
  Journal.close t.epochs_j

(* ---- Open / recovery -------------------------------------------------- *)

let decode_snapshot payload =
  let r = Codec.reader payload in
  let jseq = Codec.read_int r in
  let next_epoch = Codec.read_int r in
  let consumed_seq = Codec.read_int r in
  let fed_seq = Codec.read_int r in
  let committed = Codec.read_list read_edge r in
  let synthetic = if Codec.read_bool r then Some (decode_graph r) else None in
  let sched = Schedule.load r in
  (* oldest first, as written; the caller flips to the internal
     newest-first order *)
  let outcomes = Codec.read_list decode_outcome r in
  (jseq, next_epoch, consumed_seq, fed_seq, committed, synthetic, sched, outcomes)

let open_dir ?chaos ~config:cfg dirname =
  let ingest, ingest_rec =
    Ingest.open_dir ~keep:cfg.keep ~fsync:cfg.fsync (Filename.concat dirname "events")
  in
  let epochs_j, epochs_rec =
    Journal.open_dir ~keep:cfg.keep ~fsync:cfg.fsync ~sites:"epoch" ~magic
      ~snapshot_magic ~snapshot_version
      (Filename.concat dirname "epochs")
  in
  let jseq0, next_epoch, consumed_seq, fed_seq, committed, synthetic, sched, outcomes =
    match epochs_rec.Journal.snapshot with
    | Some (payload, _) -> decode_snapshot payload
    | None ->
        ( 0,
          0,
          0,
          0,
          [],
          None,
          Schedule.create ~name:"stream" ~per_epoch:cfg.per_epoch ~epochs:cfg.epochs
            ~policy:cfg.policy,
          [] )
  in
  let engine = Dataflow.Engine.create () in
  let input = Dataflow.Input.create engine in
  let t =
    {
      cfg;
      dir = dirname;
      ingest;
      epochs_j;
      sched;
      engine;
      input;
      chaos;
      jseq = jseq0;
      next_epoch;
      consumed_seq;
      fed_seq = consumed_seq;
      committed;
      synthetic;
      outcomes = List.rev outcomes;
      in_flight = None;
      recent = [];
    }
  in
  (* Rebuild the live secret: the committed edge set, then the events a
     merged or in-flight epoch had already fed when the snapshot was
     written. *)
  if committed <> [] then
    Dataflow.Input.feed input
      (List.concat_map (fun (u, v) -> [ ((u, v), 1.0); ((v, u), 1.0) ]) committed);
  feed_to t ~upto:fed_seq;
  (* Replay epoch-ledger records past the snapshot; keep every surviving
     record (including pre-snapshot ones retained for older generations)
     for the next compaction's retain closure. *)
  t.recent <- List.rev_map (fun payload -> (record_jseq payload, payload)) epochs_rec.records;
  let replayed = ref 0 in
  List.iter
    (fun payload ->
      let jseq, record = decode_record payload in
      if jseq > jseq0 then begin
        incr replayed;
        t.jseq <- max t.jseq jseq;
        match record with
        | Rec_start { epoch; allowance; head } ->
            (match Schedule.next t.sched ~epoch with
            | Ok _ -> ()
            | Error _ ->
                raise
                  (Codec.Decode_error
                     (Printf.sprintf
                        "supervisor: replayed epoch %d start but schedule is exhausted"
                        epoch)));
            feed_to t ~upto:head;
            t.in_flight <- Some (epoch, allowance, head)
        | Rec_outcome { outcome; synthetic } ->
            (match outcome with
            | Completed { epoch; spent; stream_seq; _ } ->
                Schedule.complete t.sched ~epoch ~spent;
                t.consumed_seq <- stream_seq;
                t.committed <- current_edges t;
                (match synthetic with Some g -> t.synthetic <- Some g | None -> ());
                t.next_epoch <- epoch + 1
            | Merged { m_epoch; m_spent; _ } ->
                Schedule.degrade t.sched ~epoch:m_epoch ~spent:m_spent;
                t.next_epoch <- m_epoch + 1
            | Refused { r_epoch; _ } ->
                Schedule.refuse t.sched ~epoch:r_epoch;
                t.next_epoch <- r_epoch + 1);
            t.in_flight <- None;
            t.outcomes <- outcome :: t.outcomes
      end)
    epochs_rec.records;
  sweep_fit_dirs t;
  let recovery =
    {
      torn_bytes = ingest_rec.Ingest.torn_bytes + epochs_rec.Journal.torn_bytes;
      replayed_events = List.length ingest_rec.Ingest.replayed;
      replayed_records = !replayed;
      resumed_epoch = (match t.in_flight with Some (e, _, _) -> Some e | None -> None);
      rejected = ingest_rec.Ingest.rejected @ epochs_rec.Journal.rejected;
    }
  in
  (t, recovery)
