(** Crash-safe persistence: a binary codec, atomic file replacement, a
    versioned checksummed container format, and a fault-injection hook for
    testing recovery paths.

    This is the storage layer under the synthesis runtime's checkpoints and
    the graph IO: long Metropolis–Hastings fits snapshot their state through
    {!File} so a killed run can resume, and every write goes through
    {!Atomic} so a crash mid-write never corrupts the previous good file.

    Nothing in this library knows about privacy: callers are responsible
    for serializing only {e released} values (noisy measurements, public
    synthetic graphs, budget audit logs) — never protected data. *)

module Codec : sig
  (** A minimal self-describing-free binary codec.  All integers are
      little-endian fixed-width 64-bit; floats are serialized by bit
      pattern, so round-trips are exact (NaN payloads included).  Decoders
      raise {!Decode_error} instead of returning garbage on malformed or
      truncated input. *)

  exception Decode_error of string

  type reader
  (** A cursor over an immutable byte string. *)

  val reader : string -> reader
  val remaining : reader -> int

  val write_int64 : Buffer.t -> int64 -> unit
  val read_int64 : reader -> int64
  val write_int : Buffer.t -> int -> unit
  val read_int : reader -> int
  val write_float : Buffer.t -> float -> unit

  val read_float : reader -> float
  (** Exact bit-pattern round-trip of {!write_float}. *)

  val write_bool : Buffer.t -> bool -> unit
  val read_bool : reader -> bool
  val write_string : Buffer.t -> string -> unit
  val read_string : reader -> string
  val write_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit

  val read_list : (reader -> 'a) -> reader -> 'a list
  (** Preserves order. *)

  val write_array : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a array -> unit
  val read_array : (reader -> 'a) -> reader -> 'a array
end

module Fault : sig
  (** Injectable failures for crash-recovery tests.

      A test arms one {e site} with a countdown; the [n]-th time execution
      passes that site's {!point}, {!Injected} is raised (and the fault
      disarms itself, so cleanup and subsequent recovery code run
      normally).  Production code paths call {!point} at the moments a real
      crash would be most damaging — mid-write, pre-rename, per MCMC step —
      at the cost of one reference read when no fault is armed. *)

  exception Injected of string

  val arm : site:string -> after:int -> unit
  (** [arm ~site ~after:n] makes the [n]-th call to [point site] raise
      ([n >= 1]).  Only one site is armed at a time; re-arming replaces the
      previous fault. *)

  val disarm : unit -> unit
  (** Remove any armed fault. *)

  val point : string -> unit
  (** [point site] raises {!Injected} if an armed countdown on [site]
      reaches zero; otherwise a no-op. *)
end

module Atomic : sig
  val write : path:string -> (out_channel -> unit) -> unit
  (** [write ~path f] runs [f] on a channel for [path ^ ".tmp"], then
      atomically renames the temp file over [path].  A crash at any point
      leaves the previous contents of [path] intact; at worst a stale
      [.tmp] file remains (and is overwritten by the next write).  The
      channel is binary; [f] must not close it. *)
end

module File : sig
  (** A checksummed, versioned container: [magic | version | length |
      MD5(payload) | payload].  Any single corrupted byte — header or
      payload — turns {!load} into a typed [Error], never into garbage
      handed to a decoder. *)

  type error =
    | Io_error of string  (** open/read failure (missing file, permissions) *)
    | Bad_magic  (** the file is not this container (or the magic is damaged) *)
    | Unsupported_version of { found : int; expected : int }
    | Truncated  (** shorter than its header claims *)
    | Checksum_mismatch  (** payload bytes do not hash to the stored digest *)

  val error_to_string : error -> string

  val save : path:string -> magic:string -> version:int -> string -> unit
  (** [save ~path ~magic ~version payload] writes the framed payload through
      {!Atomic.write}. *)

  val load : path:string -> magic:string -> version:int -> (string, error) result
  (** [load ~path ~magic ~version] verifies the frame and returns the
      payload. *)
end
