(** Crash-safe persistence: a binary codec, atomic file replacement, a
    versioned checksummed container format, a generational checkpoint store,
    and a fault-injection hook for testing recovery paths.

    This is the storage layer under the synthesis runtime's checkpoints and
    the graph IO: long Metropolis–Hastings fits snapshot their state through
    {!File} so a killed run can resume, every write goes through {!Atomic}
    so a crash mid-write never corrupts the previous good file, and {!Store}
    keeps several checkpoint generations so a {e corrupted} newest snapshot
    still leaves an older one to fall back to.

    Nothing in this library knows about privacy: callers are responsible
    for serializing only {e released} values (noisy measurements, public
    synthetic graphs, budget audit logs) — never protected data. *)

module Codec : sig
  (** A minimal self-describing-free binary codec.  All integers are
      little-endian fixed-width 64-bit; floats are serialized by bit
      pattern, so round-trips are exact (NaN payloads included).  Decoders
      raise {!Decode_error} instead of returning garbage on malformed or
      truncated input, and validate every claimed length against the bytes
      actually remaining {e before} allocating — an adversarial or corrupted
      length prefix can never trigger a multi-gigabyte allocation. *)

  exception Decode_error of string

  type reader
  (** A cursor over an immutable byte string. *)

  val reader : string -> reader
  val remaining : reader -> int

  val write_int64 : Buffer.t -> int64 -> unit
  val read_int64 : reader -> int64
  val write_int : Buffer.t -> int -> unit
  val read_int : reader -> int
  val write_float : Buffer.t -> float -> unit

  val read_float : reader -> float
  (** Exact bit-pattern round-trip of {!write_float}. *)

  val write_bool : Buffer.t -> bool -> unit
  val read_bool : reader -> bool
  val write_string : Buffer.t -> string -> unit
  val read_string : reader -> string
  val write_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit

  val read_list : (reader -> 'a) -> reader -> 'a list
  (** Preserves order. *)

  val write_array : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a array -> unit
  val read_array : (reader -> 'a) -> reader -> 'a array
end

module Fault : sig
  (** Injectable failures for crash-recovery tests.

      A test arms one {e site} with a countdown; the [n]-th time execution
      passes that site's {!point}, the fault fires — raising {!Injected}
      (simulating a crash at that instant) or, with {!arm_action}, running
      an arbitrary hook (delivering a signal, corrupting a file) — and the
      fault disarms itself, so cleanup and subsequent recovery code run
      normally.  Production code paths call {!point} at the moments a real
      crash would be most damaging — mid-write, pre-fsync, pre-rename, per
      MCMC step, per audit — at the cost of one reference read when no
      fault is armed. *)

  exception Injected of string

  val arm : site:string -> after:int -> unit
  (** [arm ~site ~after:n] makes the [n]-th call to [point site] raise
      ([n >= 1]).  Only one site is armed at a time; re-arming replaces the
      previous fault. *)

  val arm_action : site:string -> after:int -> (unit -> unit) -> unit
  (** Like {!arm}, but the [n]-th call runs the given hook instead of
      raising — the mechanism tests use to act (send a signal, flip a bit
      on disk) at an exact execution point without killing the run.
      Shares the single armed slot with {!arm}. *)

  val disarm : unit -> unit
  (** Remove any armed fault. *)

  val point : string -> unit
  (** [point site] fires an armed countdown on [site] when it reaches
      zero; otherwise a no-op. *)

  type corruption =
    | Bit_flip of int  (** flip bit [off mod 8] of byte [(off / 8) mod size] *)
    | Truncate_at of int  (** keep only the first [n] bytes *)

  val corrupt : path:string -> corruption -> unit
  (** [corrupt ~path c] damages the file in place — deterministic bit rot
      or a torn write, for recovery tests. *)
end

module Atomic : sig
  val write : path:string -> (out_channel -> unit) -> unit
  (** [write ~path f] runs [f] on a channel for a uniquely-named temp file
      ([path ^ ".tmp.<pid>.<n>"]), fsyncs it, atomically renames it over
      [path], then best-effort fsyncs the containing directory.  A crash at
      any point leaves the previous contents of [path] intact; at worst a
      stale temp file remains, and any such stale temps from crashed runs
      are unlinked by the next write to the same path.  The channel is
      binary; [f] must not close it. *)

  val sweep_stale : ?except:string -> path:string -> unit -> int
  (** [sweep_stale ~path ()] unlinks stale temp files left next to [path]
      by crashed runs (skipping [except], if given) and returns how many
      were removed.  Called automatically by {!write}. *)
end

module File : sig
  (** A checksummed, versioned container: [magic | version | length |
      MD5(payload) | payload].  Any single corrupted byte — header or
      payload — turns {!load} into a typed [Error], never into garbage
      handed to a decoder. *)

  type error =
    | Io_error of string  (** open/read failure (missing file, permissions) *)
    | Bad_magic  (** the file is not this container (or the magic is damaged) *)
    | Unsupported_version of { found : int; expected : int }
    | Truncated  (** shorter than its header claims *)
    | Checksum_mismatch  (** payload bytes do not hash to the stored digest *)

  val error_to_string : error -> string

  val save : path:string -> magic:string -> version:int -> string -> unit
  (** [save ~path ~magic ~version payload] writes the framed payload through
      {!Atomic.write}. *)

  val load : path:string -> magic:string -> version:int -> (string, error) result
  (** [load ~path ~magic ~version] verifies the frame and returns the
      payload. *)
end

module Store : sig
  (** A generational checkpoint store: a directory of [ckpt-<step>.wpq]
      files, newest-first retention, and corruption fallback.

      Each {!save} adds a generation and prunes the oldest beyond the
      retention count.  {!load_latest} walks generations newest-first,
      quarantining each invalid one (renamed to [.corrupt], with the reason
      logged next to it in a [.corrupt.reason] file) until a valid
      generation is found — so one corrupted snapshot costs only the steps
      since the previous one, not the whole run. *)

  type t

  type rejected = { path : string; reason : string }
  (** A generation that failed validation during {!load_latest}, and why. *)

  val open_dir : ?keep:int -> string -> t
  (** [open_dir ?keep dir] creates [dir] if needed, sweeps stale temp files
      left by crashed runs, and returns a store retaining the newest [keep]
      generations (default 3, must be [>= 1]). *)

  val dir : t -> string
  val keep : t -> int

  val path_for : t -> step:int -> string
  (** The path the generation for [step] is (or would be) stored at. *)

  val generations : t -> (int * string) list
  (** Present generations as [(step, path)], newest first.  Quarantined
      [.corrupt] files are not generations and are never listed. *)

  val save : t -> step:int -> magic:string -> version:int -> string -> string
  (** [save t ~step ~magic ~version payload] writes the generation through
      {!File.save}, prunes generations beyond the retention count (never
      touching quarantined files), and returns the written path. *)

  val quarantine : path:string -> reason:string -> string
  (** [quarantine ~path ~reason] renames [path] to a fresh [.corrupt] name,
      records [reason] in a sibling [.reason] file, and returns the new
      path.  The evidence is retained for post-mortems under the same
      rotation policy as live generations (see {!sweep_quarantine}) —
      never deleted by {!save}'s generation pruning. *)

  val sweep_quarantine : t -> int
  (** Applies the store's retention count to quarantined evidence: the
      newest [keep] [.corrupt] files (newest by modification time) survive,
      older ones are deleted along with their [.reason] siblings.  Returns
      the number of files removed.  Runs automatically at {!open_dir}, after
      {!save}'s rotation, and after any {!load_latest} walk that quarantined
      something — a long-running service that keeps hitting (and surviving)
      corruption no longer accumulates evidence without bound. *)

  val load_latest :
    t ->
    magic:string ->
    version:int ->
    decode:(string -> ('a, string) result) ->
    ('a * int * string) option * rejected list
  (** [load_latest t ~magic ~version ~decode] walks generations newest
      first.  Each generation failing the container check or [decode] is
      quarantined and recorded; the first valid one is returned as
      [(value, step, path)].  [None] means no valid generation remains. *)
end
