module Codec = struct
  exception Decode_error of string

  type reader = { buf : string; mutable pos : int }

  let reader s = { buf = s; pos = 0 }
  let remaining r = String.length r.buf - r.pos

  let need r n what =
    if remaining r < n then
      raise
        (Decode_error
           (Printf.sprintf "truncated input: need %d bytes for %s at offset %d (have %d)" n
              what r.pos (remaining r)))

  (* An adversarial (or corrupted) length prefix must be rejected *before*
     any allocation is sized from it: a claimed element count can never
     exceed the bytes left in the buffer, because every element occupies at
     least one encoded byte in the formats this codec frames. *)
  let check_length r n what =
    if n < 0 then raise (Decode_error (Printf.sprintf "negative %s length %d" what n));
    if n > remaining r then
      raise
        (Decode_error
           (Printf.sprintf "%s length %d exceeds the %d bytes remaining at offset %d" what n
              (remaining r) r.pos))

  let write_int64 buf v = Buffer.add_int64_le buf v

  let read_int64 r =
    need r 8 "int64";
    let v = String.get_int64_le r.buf r.pos in
    r.pos <- r.pos + 8;
    v

  let write_int buf v = write_int64 buf (Int64.of_int v)

  let read_int r = Int64.to_int (read_int64 r)

  let write_float buf v = write_int64 buf (Int64.bits_of_float v)
  let read_float r = Int64.float_of_bits (read_int64 r)
  let write_bool buf v = Buffer.add_char buf (if v then '\001' else '\000')

  let read_bool r =
    need r 1 "bool";
    let c = r.buf.[r.pos] in
    r.pos <- r.pos + 1;
    match c with
    | '\000' -> false
    | '\001' -> true
    | c -> raise (Decode_error (Printf.sprintf "invalid bool byte %C" c))

  let write_string buf s =
    write_int buf (String.length s);
    Buffer.add_string buf s

  let read_string r =
    let n = read_int r in
    check_length r n "string";
    let s = String.sub r.buf r.pos n in
    r.pos <- r.pos + n;
    s

  let write_list write_item buf xs =
    write_int buf (List.length xs);
    List.iter (fun x -> write_item buf x) xs

  let read_list read_item r =
    let n = read_int r in
    check_length r n "list";
    List.init n (fun _ -> read_item r)

  let write_array write_item buf xs =
    write_int buf (Array.length xs);
    Array.iter (fun x -> write_item buf x) xs

  let read_array read_item r =
    let n = read_int r in
    check_length r n "array";
    Array.init n (fun _ -> read_item r)
end

module Fault = struct
  exception Injected of string

  (* [None] action means "simulate a crash": raise [Injected].  [Some f]
     runs [f] instead — the hook tests use to deliver a signal or corrupt a
     cell at an exact execution point without killing the run. *)
  type armed = { site : string; count : int ref; action : (unit -> unit) option }

  let armed : armed option ref = ref None

  let arm_with ~site ~after action =
    if after < 1 then invalid_arg "Fault.arm: after must be >= 1";
    armed := Some { site; count = ref after; action }

  let arm ~site ~after = arm_with ~site ~after None
  let arm_action ~site ~after f = arm_with ~site ~after (Some f)
  let disarm () = armed := None

  let point site =
    match !armed with
    | None -> ()
    | Some { site = s; count; action } ->
        if String.equal s site then begin
          decr count;
          if !count <= 0 then begin
            disarm ();
            match action with None -> raise (Injected site) | Some f -> f ()
          end
        end

  type corruption = Bit_flip of int | Truncate_at of int

  (* Deterministic file damage for recovery tests: a real bit rot or torn
     write, applied in place.  [Bit_flip off] flips bit [off mod 8] of byte
     [off / 8]; [Truncate_at n] cuts the file to its first [n] bytes. *)
  let corrupt ~path = function
    | Bit_flip off ->
        if off < 0 then invalid_arg "Fault.corrupt: bit offset must be non-negative";
        let ic = open_in_bin path in
        let raw =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        if raw = "" then invalid_arg "Fault.corrupt: cannot bit-flip an empty file";
        let byte = off / 8 mod String.length raw in
        let mask = 1 lsl (off mod 8) in
        let b = Bytes.of_string raw in
        Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor mask));
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_bytes oc b)
    | Truncate_at n ->
        if n < 0 then invalid_arg "Fault.corrupt: truncation offset must be non-negative";
        let ic = open_in_bin path in
        let raw =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let keep = min n (String.length raw) in
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (String.sub raw 0 keep))
end

module Atomic = struct
  (* Temp names are unique per (process, write): two concurrent writers
     aiming at the same destination can no longer clobber each other's
     half-written temp, and a temp left behind by a crashed run is
     recognizably stale. *)
  let seq = ref 0

  let temp_prefix path = path ^ ".tmp."

  let is_temp_of ~base name = String.length base > 0 && String.starts_with ~prefix:base name

  (* Unlink temps a crashed run left next to [path].  Best-effort: a file
     disappearing underneath us (another sweeper) is not an error. *)
  let sweep_stale ?except ~path () =
    let dir = Filename.dirname path in
    let base = Filename.basename (temp_prefix path) in
    match Sys.readdir dir with
    | exception Sys_error _ -> 0
    | entries ->
        Array.fold_left
          (fun removed name ->
            if is_temp_of ~base name && Some name <> Option.map Filename.basename except then (
              match Sys.remove (Filename.concat dir name) with
              | () -> removed + 1
              | exception Sys_error _ -> removed)
            else removed)
          0 entries

  let fsync_dir dir =
    (* Persist the rename itself.  Directory fsync is not supported by
       every filesystem; where it fails the rename is still atomic, just
       not yet durable, so degrade silently rather than fail the write. *)
    match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

  let write ~path f =
    incr seq;
    let tmp = Printf.sprintf "%s%d.%d" (temp_prefix path) (Unix.getpid ()) !seq in
    ignore (sweep_stale ~except:tmp ~path ());
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Fault.point "atomic.write";
        f oc;
        flush oc;
        Fault.point "atomic.fsync";
        Unix.fsync (Unix.descr_of_out_channel oc));
    Fault.point "atomic.rename";
    Sys.rename tmp path;
    Fault.point "atomic.dirsync";
    fsync_dir (Filename.dirname path)
end

module File = struct
  type error =
    | Io_error of string
    | Bad_magic
    | Unsupported_version of { found : int; expected : int }
    | Truncated
    | Checksum_mismatch

  let error_to_string = function
    | Io_error msg -> "io error: " ^ msg
    | Bad_magic -> "bad magic (not a checkpoint file, or a corrupted header)"
    | Unsupported_version { found; expected } ->
        Printf.sprintf "unsupported format version %d (expected %d)" found expected
    | Truncated -> "file shorter than its header claims"
    | Checksum_mismatch -> "payload checksum mismatch (corrupted file)"

  let save ~path ~magic ~version payload =
    Atomic.write ~path (fun oc ->
        output_string oc magic;
        let header = Buffer.create 32 in
        Codec.write_int64 header (Int64.of_int version);
        Codec.write_int64 header (Int64.of_int (String.length payload));
        Buffer.output_buffer oc header;
        output_string oc (Digest.string payload);
        output_string oc payload)

  let load ~path ~magic ~version =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error (Io_error msg)
    | contents -> (
        let mlen = String.length magic in
        let header_len = mlen + 8 + 8 + 16 in
        if String.length contents < header_len then
          if String.length contents >= mlen && String.sub contents 0 mlen = magic then
            Error Truncated
          else Error Bad_magic
        else if String.sub contents 0 mlen <> magic then Error Bad_magic
        else
          let r = Codec.reader (String.sub contents mlen 16) in
          let found = Int64.to_int (Codec.read_int64 r) in
          let payload_len = Int64.to_int (Codec.read_int64 r) in
          if found <> version then Error (Unsupported_version { found; expected = version })
          else if payload_len < 0 || String.length contents < header_len + payload_len then
            Error Truncated
          else
            let digest = String.sub contents (mlen + 16) 16 in
            let payload = String.sub contents header_len payload_len in
            if not (String.equal (Digest.string payload) digest) then Error Checksum_mismatch
            else Ok payload)
end

module Store = struct
  type t = { dir : string; keep : int }
  type rejected = { path : string; reason : string }

  let filename_of_step step = Printf.sprintf "ckpt-%d.wpq" step

  let step_of_filename name =
    match Scanf.sscanf_opt name "ckpt-%d.wpq%!" (fun s -> s) with
    | Some s when s >= 0 && String.equal name (filename_of_step s) -> Some s
    | _ -> None

  let rec mkdir_p dir =
    if not (Sys.file_exists dir) then begin
      let parent = Filename.dirname dir in
      if parent <> dir then mkdir_p parent;
      match Sys.mkdir dir 0o755 with
      | () -> ()
      | exception Sys_error _ when Sys.file_exists dir -> ()
    end

  let sweep_temps t =
    match Sys.readdir t.dir with
    | exception Sys_error _ -> 0
    | entries ->
        Array.fold_left
          (fun removed name ->
            (* Any generation's stale temp: "<gen>.tmp.<pid>.<n>" (or the
               bare legacy "<gen>.tmp"). *)
            let is_stale =
              match String.index_opt name '.' with
              | None -> false
              | Some _ ->
                  Filename.check_suffix name ".tmp"
                  ||
                  (match String.split_on_char '.' name with
                  | _ :: rest -> List.mem "tmp" rest && not (Filename.check_suffix name ".wpq")
                  | [] -> false)
            in
            if is_stale then (
              match Sys.remove (Filename.concat t.dir name) with
              | () -> removed + 1
              | exception Sys_error _ -> removed)
            else removed)
          0 entries

  (* Quarantined evidence ("<gen>.corrupt[.<i>]" plus its ".reason"
     sibling) follows the same retention policy as live generations:
     the newest [keep] quarantine groups are preserved for post-mortems,
     older ones are swept — otherwise a long-running service that keeps
     hitting (and surviving) corruption fills its checkpoint directory
     with evidence forever. *)
  let is_quarantine_file name =
    (not (Filename.check_suffix name ".reason"))
    &&
    let rec contains i =
      i >= 0
      && (String.length name - i >= 8 && String.sub name i 8 = ".corrupt"
         || contains (i - 1))
    in
    contains (String.length name - 8)

  let sweep_quarantine t =
    match Sys.readdir t.dir with
    | exception Sys_error _ -> 0
    | entries ->
        let groups =
          Array.to_list entries
          |> List.filter is_quarantine_file
          |> List.map (fun name ->
                 let path = Filename.concat t.dir name in
                 let mtime =
                   match Unix.stat path with
                   | { Unix.st_mtime; _ } -> st_mtime
                   | exception Unix.Unix_error _ -> 0.0
                 in
                 (mtime, name, path))
          |> List.sort (fun (ma, na, _) (mb, nb, _) ->
                 match compare mb ma with 0 -> compare nb na | c -> c)
        in
        List.fold_left
          (fun (i, removed) (_, _, path) ->
            if i >= t.keep then begin
              let removed =
                match Sys.remove path with
                | () -> removed + 1
                | exception Sys_error _ -> removed
              in
              let removed =
                match Sys.remove (path ^ ".reason") with
                | () -> removed + 1
                | exception Sys_error _ -> removed
              in
              (i + 1, removed)
            end
            else (i + 1, removed))
          (0, 0) groups
        |> snd

  let open_dir ?(keep = 3) dir =
    if keep < 1 then invalid_arg "Store.open_dir: keep must be >= 1";
    mkdir_p dir;
    let t = { dir; keep } in
    ignore (sweep_temps t);
    ignore (sweep_quarantine t);
    t

  let dir t = t.dir
  let keep t = t.keep
  let path_for t ~step = Filename.concat t.dir (filename_of_step step)

  let generations t =
    match Sys.readdir t.dir with
    | exception Sys_error _ -> []
    | entries ->
        Array.to_list entries
        |> List.filter_map (fun name ->
               match step_of_filename name with
               | Some step -> Some (step, Filename.concat t.dir name)
               | None -> None)
        |> List.sort (fun (a, _) (b, _) -> compare b a)

  let save t ~step ~magic ~version payload =
    let path = path_for t ~step in
    File.save ~path ~magic ~version payload;
    (* Rotation: keep the newest [keep] generations.  Quarantined
       [.corrupt] files are evidence, not generations — never touched. *)
    List.iteri
      (fun i (_, p) ->
        if i >= t.keep then try Sys.remove p with Sys_error _ -> ())
      (generations t);
    ignore (sweep_quarantine t);
    path

  let quarantine ~path ~reason =
    let rec fresh i =
      let candidate =
        if i = 0 then path ^ ".corrupt" else Printf.sprintf "%s.corrupt.%d" path i
      in
      if Sys.file_exists candidate then fresh (i + 1) else candidate
    in
    let dst = fresh 0 in
    Sys.rename path dst;
    (try
       let oc = open_out (dst ^ ".reason") in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc (reason ^ "\n"))
     with Sys_error _ -> ());
    dst

  let load_latest t ~magic ~version ~decode =
    let rec walk rejected = function
      | [] -> (None, List.rev rejected)
      | (step, path) :: older -> (
          let reject reason =
            let reason =
              match quarantine ~path ~reason with
              | quarantined -> Printf.sprintf "%s (quarantined to %s)" reason quarantined
              | exception Sys_error msg ->
                  Printf.sprintf "%s (quarantine failed: %s)" reason msg
            in
            walk ({ path; reason } :: rejected) older
          in
          match File.load ~path ~magic ~version with
          | Error e -> reject ("container layer: " ^ File.error_to_string e)
          | Ok payload -> (
              match decode payload with
              | Ok v -> (Some (v, step, path), List.rev rejected)
              | Error msg -> reject ("decode layer: " ^ msg)))
    in
    let result = walk [] (generations t) in
    (* A walk that quarantined anything just grew the evidence pile; apply
       the same retention policy before handing the result back. *)
    (match result with _, [] -> () | _, _ :: _ -> ignore (sweep_quarantine t));
    result
end
