module Codec = struct
  exception Decode_error of string

  type reader = { buf : string; mutable pos : int }

  let reader s = { buf = s; pos = 0 }
  let remaining r = String.length r.buf - r.pos

  let need r n what =
    if remaining r < n then
      raise
        (Decode_error
           (Printf.sprintf "truncated input: need %d bytes for %s at offset %d (have %d)" n
              what r.pos (remaining r)))

  let write_int64 buf v = Buffer.add_int64_le buf v

  let read_int64 r =
    need r 8 "int64";
    let v = String.get_int64_le r.buf r.pos in
    r.pos <- r.pos + 8;
    v

  let write_int buf v = write_int64 buf (Int64.of_int v)

  let read_int r = Int64.to_int (read_int64 r)

  let write_float buf v = write_int64 buf (Int64.bits_of_float v)
  let read_float r = Int64.float_of_bits (read_int64 r)
  let write_bool buf v = Buffer.add_char buf (if v then '\001' else '\000')

  let read_bool r =
    need r 1 "bool";
    let c = r.buf.[r.pos] in
    r.pos <- r.pos + 1;
    match c with
    | '\000' -> false
    | '\001' -> true
    | c -> raise (Decode_error (Printf.sprintf "invalid bool byte %C" c))

  let write_string buf s =
    write_int buf (String.length s);
    Buffer.add_string buf s

  let read_string r =
    let n = read_int r in
    if n < 0 then raise (Decode_error (Printf.sprintf "negative string length %d" n));
    need r n "string";
    let s = String.sub r.buf r.pos n in
    r.pos <- r.pos + n;
    s

  let write_list write_item buf xs =
    write_int buf (List.length xs);
    List.iter (fun x -> write_item buf x) xs

  let read_list read_item r =
    let n = read_int r in
    if n < 0 then raise (Decode_error (Printf.sprintf "negative list length %d" n));
    List.init n (fun _ -> read_item r)

  let write_array write_item buf xs =
    write_int buf (Array.length xs);
    Array.iter (fun x -> write_item buf x) xs

  let read_array read_item r =
    let n = read_int r in
    if n < 0 then raise (Decode_error (Printf.sprintf "negative array length %d" n));
    Array.init n (fun _ -> read_item r)
end

module Fault = struct
  exception Injected of string

  let armed : (string * int ref) option ref = ref None

  let arm ~site ~after =
    if after < 1 then invalid_arg "Fault.arm: after must be >= 1";
    armed := Some (site, ref after)

  let disarm () = armed := None

  let point site =
    match !armed with
    | None -> ()
    | Some (s, count) ->
        if String.equal s site then begin
          decr count;
          if !count <= 0 then begin
            disarm ();
            raise (Injected site)
          end
        end
end

module Atomic = struct
  let write ~path f =
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Fault.point "atomic.write";
        f oc;
        flush oc);
    Fault.point "atomic.rename";
    Sys.rename tmp path
end

module File = struct
  type error =
    | Io_error of string
    | Bad_magic
    | Unsupported_version of { found : int; expected : int }
    | Truncated
    | Checksum_mismatch

  let error_to_string = function
    | Io_error msg -> "io error: " ^ msg
    | Bad_magic -> "bad magic (not a checkpoint file, or a corrupted header)"
    | Unsupported_version { found; expected } ->
        Printf.sprintf "unsupported format version %d (expected %d)" found expected
    | Truncated -> "file shorter than its header claims"
    | Checksum_mismatch -> "payload checksum mismatch (corrupted file)"

  let save ~path ~magic ~version payload =
    Atomic.write ~path (fun oc ->
        output_string oc magic;
        let header = Buffer.create 32 in
        Codec.write_int64 header (Int64.of_int version);
        Codec.write_int64 header (Int64.of_int (String.length payload));
        Buffer.output_buffer oc header;
        output_string oc (Digest.string payload);
        output_string oc payload)

  let load ~path ~magic ~version =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Error (Io_error msg)
    | contents -> (
        let mlen = String.length magic in
        let header_len = mlen + 8 + 8 + 16 in
        if String.length contents < header_len then
          if String.length contents >= mlen && String.sub contents 0 mlen = magic then
            Error Truncated
          else Error Bad_magic
        else if String.sub contents 0 mlen <> magic then Error Bad_magic
        else
          let r = Codec.reader (String.sub contents mlen 16) in
          let found = Int64.to_int (Codec.read_int64 r) in
          let payload_len = Int64.to_int (Codec.read_int64 r) in
          if found <> version then Error (Unsupported_version { found; expected = version })
          else if payload_len < 0 || String.length contents < header_len + payload_len then
            Error Truncated
          else
            let digest = String.sub contents (mlen + 16) 16 in
            let payload = String.sub contents header_len payload_len in
            if not (String.equal (Digest.string payload) digest) then Error Checksum_mismatch
            else Ok payload)
end
