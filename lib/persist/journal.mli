(** A generic checksummed append-only journal with snapshot compaction.

    This is the payload-polymorphic core shared by the budget ledger's
    write-ahead log ([Wpinq_service.Wal]) and the continual-observation
    stream's ingestion and epoch journals ([Wpinq_stream.Ingest],
    [Wpinq_stream.Supervisor]).  Payloads are opaque strings; callers
    layer their own record encoding (and sequence-number discipline) on
    top.

    On disk a journal is one append-only file ([wal.log]) of
    self-checking records: [u64-le length | 16-byte MD5(payload) |
    payload], preceded by a caller-chosen 8-byte magic.  A record is only
    acknowledged after it is flushed and fsynced, so an acknowledged
    append survives any crash.  Torn tails — a crash mid-append — are
    detected on open (bad length, bad digest, missing bytes) and trimmed
    back to the last whole record; everything after the first damaged
    record is discarded, because record order is the replay order and
    nothing later can be trusted to apply cleanly.

    Compaction bounds the journal: the caller serializes its full state
    into a snapshot written as a generation of a {!Persist.Store}
    ([ckpt-<seq>.wpq], checksummed, retained/rotated), and the journal is
    atomically rewritten to the records the {e oldest retained}
    generation still needs — so recovery can fall back past a corrupt
    newest snapshot and still replay forward to the present.  A crash
    between the two writes is benign as long as every record carries a
    monotone sequence number and replay skips records at or below the
    snapshot's.

    Fault-injection sites are namespaced per instance by [sites]: with
    [~sites:"wal"] the journal fires ["wal.append"], ["wal.fsync"],
    ["wal.compact"], ["wal.reset"] and ["wal.replay"] — the exact sites
    the ledger fault matrix arms — while a [~sites:"stream"] instance
    gets its own independent ["stream.*"] family.  Every [atomic.*] site
    under the snapshot and reset writes fires as well. *)

exception Io_error of { path : string; op : string; cause : string }
(** A real I/O failure (disk full, permission, unplugged volume) during a
    journal operation, wrapping the underlying [Sys_error] or
    [Unix.Unix_error] message.  [op] is one of ["open"], ["read"],
    ["trim"], ["append"], ["fsync"], ["snapshot"] or ["reset"], so retry
    logic can distinguish a transient append/fsync failure from a
    corrupted-directory open.  Injected test faults
    ({!Persist.Fault.Injected}) are never wrapped: they model crashes,
    not errors, and must escape unchanged. *)

type t

type recovery = {
  snapshot : (string * int) option;
      (** newest valid snapshot payload and its sequence number *)
  records : string list;
      (** surviving journal records, append order (the valid prefix) *)
  torn_bytes : int;
      (** journal bytes discarded after the last whole record *)
  rejected : Persist.Store.rejected list;
      (** snapshot generations quarantined while finding a valid one *)
}

val open_dir :
  ?keep:int ->
  ?fsync:bool ->
  sites:string ->
  magic:string ->
  snapshot_magic:string ->
  snapshot_version:int ->
  string ->
  t * recovery
(** [open_dir ~sites ~magic ~snapshot_magic ~snapshot_version dir]
    creates [dir] if needed, loads the newest valid snapshot
    (quarantining corrupt generations, exactly as checkpoint recovery
    does), parses the journal's valid prefix, trims any torn tail, and
    opens the journal for appending.  [magic] must be exactly 8 bytes and
    prefixes the journal file; [snapshot_magic]/[snapshot_version] frame
    the snapshot container.  [sites] prefixes this instance's
    fault-injection site names.  [keep] is the snapshot retention count
    (default 3).  [fsync] (default [true]) may be disabled for throughput
    experiments — never in production, since an unfsynced acknowledgment
    can be lost by a power failure. *)

val append : t -> string -> unit
(** [append t payload] durably appends one record: the write is flushed
    and fsynced before returning.  The payload is opaque to the journal. *)

val compact : t -> seq:int -> snapshot:string -> retain:(int -> string list) -> unit
(** [compact t ~seq ~snapshot ~retain] writes [snapshot] as generation
    [seq] of the snapshot store, then atomically rewrites the journal to
    [retain oldest], where [oldest] is the sequence number of the oldest
    snapshot generation that survived rotation.  The caller must return
    (in append order) every record newer than [oldest]: that is exactly
    the history recovery needs if it has to fall back past a corrupted
    newer snapshot to that oldest generation.  After a crash between the
    two writes, the stale journal's records all carry sequence numbers
    the new snapshot already covers, and replay skips them. *)

val records_since_compact : t -> int
(** Appends since the last {!compact} (sizing heuristic for
    auto-compaction; the rewritten journal's retained records do not
    count). *)

val dir : t -> string
val close : t -> unit
(** Closes the journal channel.  Further appends raise. *)
