module Fault = Persist.Fault

exception Io_error of { path : string; op : string; cause : string }

let () =
  Printexc.register_printer (function
    | Io_error { path; op; cause } ->
        Some (Printf.sprintf "Journal.Io_error(%s on %s: %s)" op path cause)
    | _ -> None)

(* Wrap real I/O failures in the typed exception so supervisors can
   retry them; injected faults model crashes and must escape unwrapped
   (they are a distinct constructor, so this catch never sees them). *)
let io ~path ~op f =
  try f () with
  | Sys_error cause -> raise (Io_error { path; op; cause })
  | Unix.Unix_error (err, fn, arg) ->
      let cause =
        Printf.sprintf "%s: %s%s" fn (Unix.error_message err)
          (if arg = "" then "" else " (" ^ arg ^ ")")
      in
      raise (Io_error { path; op; cause })

(* Journal layout: an 8-byte magic, then records of
   [u64-le payload length | 16-byte MD5(payload) | payload].  The digest
   makes every record self-checking: bit rot anywhere inside a record is
   detected, not replayed. *)

type t = {
  dir : string;
  journal_path : string;
  store : Persist.Store.t;
  magic : string;
  snapshot_magic : string;
  snapshot_version : int;
  site_replay : string;
  site_append : string;
  site_fsync : string;
  site_compact : string;
  site_reset : string;
  fsync : bool;
  mutable oc : out_channel option;
  mutable since_compact : int;
}

type recovery = {
  snapshot : (string * int) option;
  records : string list;
  torn_bytes : int;
  rejected : Persist.Store.rejected list;
}

let dir t = t.dir
let records_since_compact t = t.since_compact

(* Parse the journal's valid prefix.  Returns the surviving records, the
   byte offset of the end of the last whole record, and how many trailing
   bytes were discarded.  A missing or foreign-magic file counts as fully
   torn: the caller's state then rests on the snapshot alone, which is
   the conservative reading of an unreadable journal. *)
let parse_journal t contents =
  let len = String.length contents in
  let mlen = String.length t.magic in
  if len < mlen || String.sub contents 0 mlen <> t.magic then ([], 0, len)
  else begin
    let records = ref [] in
    let pos = ref mlen in
    let valid_end = ref mlen in
    let ok = ref true in
    while !ok && !pos + 24 <= len do
      Fault.point t.site_replay;
      let n = Int64.to_int (String.get_int64_le contents !pos) in
      if n < 0 || !pos + 24 + n > len then ok := false
      else begin
        let digest = String.sub contents (!pos + 8) 16 in
        let payload = String.sub contents (!pos + 24) n in
        if not (String.equal (Digest.string payload) digest) then ok := false
        else begin
          records := payload :: !records;
          pos := !pos + 24 + n;
          valid_end := !pos
        end
      end
    done;
    (List.rev !records, !valid_end, len - !valid_end)
  end

let write_header t oc = output_string oc t.magic

let open_append t =
  io ~path:t.journal_path ~op:"open" (fun () ->
      let oc =
        open_out_gen
          [ Open_wronly; Open_append; Open_binary; Open_creat ]
          0o644 t.journal_path
      in
      t.oc <- Some oc)

let open_dir ?(keep = 3) ?(fsync = true) ~sites ~magic ~snapshot_magic ~snapshot_version dir
    =
  if String.length magic <> 8 then invalid_arg "Journal.open_dir: magic must be 8 bytes";
  let store = io ~path:dir ~op:"open" (fun () -> Persist.Store.open_dir ~keep dir) in
  let journal_path = Filename.concat dir "wal.log" in
  let t =
    {
      dir;
      journal_path;
      store;
      magic;
      snapshot_magic;
      snapshot_version;
      site_replay = sites ^ ".replay";
      site_append = sites ^ ".append";
      site_fsync = sites ^ ".fsync";
      site_compact = sites ^ ".compact";
      site_reset = sites ^ ".reset";
      fsync;
      oc = None;
      since_compact = 0;
    }
  in
  let snapshot, rejected =
    match
      Persist.Store.load_latest store ~magic:snapshot_magic ~version:snapshot_version
        ~decode:(fun payload -> Ok payload)
    with
    | Some (payload, seq, _path), rejected -> (Some (payload, seq), rejected)
    | None, rejected -> (None, rejected)
  in
  let contents =
    if not (Sys.file_exists journal_path) then None
    else
      io ~path:journal_path ~op:"read" (fun () ->
          let ic = open_in_bin journal_path in
          Some
            (Fun.protect
               ~finally:(fun () -> close_in_noerr ic)
               (fun () -> really_input_string ic (in_channel_length ic))))
  in
  let records, torn_bytes =
    match contents with
    | None ->
        (* Fresh journal: write the header through the atomic layer so a
           crash mid-creation leaves either nothing or a whole header. *)
        io ~path:journal_path ~op:"trim" (fun () ->
            Persist.Atomic.write ~path:journal_path (write_header t));
        ([], 0)
    | Some raw ->
        let records, valid_end, torn = parse_journal t raw in
        if torn > 0 then
          (* Trim the torn tail before appending: new records must land
             immediately after the last whole one, never after garbage. *)
          io ~path:journal_path ~op:"trim" (fun () ->
              Persist.Atomic.write ~path:journal_path (fun oc ->
                  output_string oc (String.sub raw 0 (max valid_end 0));
                  if valid_end = 0 then write_header t oc));
        (records, torn)
  in
  open_append t;
  t.since_compact <- List.length records;
  (t, { snapshot; records; torn_bytes; rejected })

let channel t =
  match t.oc with Some oc -> oc | None -> invalid_arg "Journal: journal is closed"

let frame_record oc payload =
  let header = Bytes.create 8 in
  Bytes.set_int64_le header 0 (Int64.of_int (String.length payload));
  output_bytes oc header;
  output_string oc (Digest.string payload);
  output_string oc payload

let append t payload =
  let oc = channel t in
  Fault.point t.site_append;
  io ~path:t.journal_path ~op:"append" (fun () ->
      frame_record oc payload;
      flush oc);
  Fault.point t.site_fsync;
  if t.fsync then
    io ~path:t.journal_path ~op:"fsync" (fun () ->
        Unix.fsync (Unix.descr_of_out_channel oc));
  t.since_compact <- t.since_compact + 1

let compact t ~seq ~snapshot ~retain =
  Fault.point t.site_compact;
  io ~path:t.dir ~op:"snapshot" (fun () ->
      ignore
        (Persist.Store.save t.store ~step:seq ~magic:t.snapshot_magic
           ~version:t.snapshot_version snapshot));
  (* The store's rotation just ran: ask the caller which records the
     *oldest* surviving snapshot generation still needs, and rewrite the
     journal to exactly those — so recovery can fall back past a corrupt
     newest snapshot and still replay forward to the present. *)
  let oldest_retained =
    match List.rev (Persist.Store.generations t.store) with
    | (step, _) :: _ -> step
    | [] -> seq
  in
  let kept = retain oldest_retained in
  Fault.point t.site_reset;
  (match t.oc with
  | Some oc ->
      close_out_noerr oc;
      t.oc <- None
  | None -> ());
  io ~path:t.journal_path ~op:"reset" (fun () ->
      Persist.Atomic.write ~path:t.journal_path (fun oc ->
          write_header t oc;
          List.iter (frame_record oc) kept));
  open_append t;
  t.since_compact <- 0

let close t =
  match t.oc with
  | Some oc ->
      close_out_noerr oc;
      t.oc <- None
  | None -> ()
