(** The paper's graph analyses, written once in the wPINQ language
    (Sections 3.1–3.5, 5.2–5.3).

    Every query consumes the {e symmetric directed} edge dataset: both
    orientations of each undirected edge, weight 1.0 each (the data model of
    Section 3).  Instantiate {!Make} with {!Wpinq_core.Batch} to measure a
    protected graph, with {!Wpinq_core.Flow} to drive the MCMC fit, or with
    {!Wpinq_core.Plan} to reify the pipeline as a first-class DAG — the
    query text, and hence the privacy accounting, is identical.

    Privacy costs are no longer asserted here by hand: they are {e derived}
    by {!Wpinq_core.Plan.uses} from the reified pipeline (the number of
    root-to-source paths, the multiplier sequential composition applies to
    ε) and property-tested to match both the per-query doc-comments below
    (degree CCDF / sequence / histogram 1×, paths3 3×, JDD 4×, TbI 4×,
    SbI 6×, TbD 9×, SbD 12×, over the symmetric source) and what
    {!Wpinq_core.Batch} actually debits from a {!Wpinq_core.Budget.t}.
    Comparisons against work on undirected graphs double these
    (Theorems 2–3), because one undirected edge is two records here.

    Pipeline builders are memoized on the physical identity of their input
    (e.g. [tbd sym == tbd sym]), so measurements built from the same
    collection share intermediates — over {!Wpinq_core.Plan} the shared
    values are shared DAG nodes, and a multi-target fit propagates each
    MCMC delta through the common prefix once per step. *)

module Make (L : Wpinq_core.Lang.S) : sig
  type edge = int * int

  val symmetrize : edge L.t -> edge L.t
  (** From an undirected edge list (one orientation per edge) to the
      symmetric directed dataset.  Counts as two uses of the input. *)

  val degrees : edge L.t -> (int * int) L.t
  (** [(vertex, degree)] pairs, each at weight 0.5 (Section 2.5). *)

  val degree_ccdf : edge L.t -> int L.t
  (** Record [i] weighted by the number of vertices of degree > [i]
      (Section 3.1). *)

  val degree_sequence : edge L.t -> int L.t
  (** Record [j] weighted by the [j]-th largest vertex degree: the
      non-increasing degree sequence, obtained by transposing the CCDF
      (Section 3.1). *)

  val nodes : edge L.t -> int L.t
  (** Each vertex at weight 0.5 (the Shave pipeline of Section 2.8). *)

  val node_count : edge L.t -> unit L.t
  (** A single record [()] of weight [|V| / 2]. *)

  val edge_count : edge L.t -> unit L.t
  (** A single record [()] of weight [2m] (each directed record counts). *)

  val paths2 : edge L.t -> (int * int * int) L.t
  (** Length-two paths [(a,b,c)], [a ≠ c], each at weight [1/(2 d_b)]
      (Section 2.7). *)

  val jdd : edge L.t -> (int * int) L.t
  (** Joint degree distribution: record [(d_a, d_b)] for each directed edge
      [(a,b)], at weight [1 / (2 + 2 d_a + 2 d_b)] (Section 3.2, Eq. 3).
      Costs 4 uses. *)

  val tbd : ?bucket:int -> edge L.t -> (int * int * int) L.t
  (** Triangles by degree (Section 3.3): sorted degree triples, where each
      triangle with degrees [x ≤ y ≤ z] contributes total weight
      [3 / (x² + y² + z²)] (Eq. 4 across its six permutations).  [bucket]
      (default 1) divides reported degrees by [k], the Section 5.2 remedy
      that concentrates signal in fewer records.  Costs 9 uses. *)

  val sbd : ?bucket:int -> edge L.t -> (int * int * int * int) L.t
  (** Squares (4-cycles) by degree (Section 3.4): sorted degree quadruples;
      each square [a-b-c-d] contributes weight Eq. (6) through each of its
      eight traversals.  Costs 12 uses. *)

  val tbi : edge L.t -> unit L.t
  (** Triangles by intersect (Section 5.3): a single record [()] whose
      weight is Eq. (8) — paths intersected with their rotation.  Little
      direct meaning, strong MCMC signal, and only 4 uses. *)

  val degree_histogram : edge L.t -> int L.t
  (** Record [d] weighted by [0.5 × (number of vertices of degree d)] —
      the degree histogram, at the same 1-use cost as the sequence. *)

  val paths3 : edge L.t -> (int * int * int * int) L.t
  (** Length-three paths [(a,b,c,d)] with no repeated endpoints against
      their neighbors ([a ≠ c], [b ≠ d], [a ≠ d]); building block for
      4-vertex motifs (Section 3.5).  Costs 3 uses. *)

  val sbi : edge L.t -> unit L.t
  (** Squares by intersect — our Section 3.5-style generalization of TbI to
      4-cycles: length-three paths intersected with their double rotation,
      collapsed to a single count.  A record survives the intersection iff
      the path closes into a 4-cycle, so the count is a weighted square
      signal measured at constant noise for 6 uses (vs. SbD's 12). *)
end

(** {1 Interpretation helpers}

    Closed-form record weights, for turning noisy weights back into counts
    and for tests. *)

val tbd_triple_weight : int * int * int -> float
(** Total TbD weight a triangle with (sorted) vertex degrees [(x,y,z)]
    contributes to its record: [3 / (x² + y² + z²)]. *)

val jdd_pair_weight : int * int -> float
(** TbD analogue for the JDD: [1 / (2 + 2 d_a + 2 d_b)] per directed
    edge. *)

val sbd_cycle_weight : int -> int -> int -> int -> float
(** [sbd_cycle_weight da db dc dd] is Eq. (6): the weight of one traversal
    [a-b-c-d] of a square whose vertices have those degrees in cycle
    order.  A square contributes through 8 traversals. *)

val tbi_triangle_term : int -> int -> int -> float
(** One triangle's contribution to the TbI count (Eq. 8):
    [min(1/da,1/db) + min(1/da,1/dc) + min(1/db,1/dc)]. *)
