(* Per-record helpers that close over other bindings live at module level,
   OUTSIDE the functor: OCaml statically allocates a closed lambda once,
   but a lambda referencing a functor-local binding is re-allocated per
   instantiation.  Keeping these global means two instantiations of [Make]
   embed physically identical closures in their plans — which is what lets
   {!Wpinq_core.Plan}'s hash-consing recognize [Make (Plan)] built twice
   as one DAG. *)
let rotate3 (a, b, c) = (b, c, a)
let rotate3_keyed (p, d) = (rotate3 p, d)
let rotate2 (a, b, c, d) = (c, d, a, b)
let rotate2_keyed (p, db, dc) = (rotate2 p, db, dc)

(* Bucketed reduces capture the bucket width, so they are interned by it:
   [tbd ~bucket:2] over two functor instances must embed the same closure.
   Guarded by a mutex — plans are built from service worker domains too. *)
let bucket_reduce_tbl : (int, (int * int) list -> int) Hashtbl.t = Hashtbl.create 8
let bucket_reduce_lock = Mutex.create ()

let bucket_reduce bucket =
  Mutex.protect bucket_reduce_lock (fun () ->
      match Hashtbl.find_opt bucket_reduce_tbl bucket with
      | Some f -> f
      | None ->
          let f l = List.length l / bucket in
          Hashtbl.add bucket_reduce_tbl bucket f;
          f)

module Make (L : Wpinq_core.Lang.S) = struct
  type edge = int * int

  (* Cross-query sharing: every pipeline builder is memoized on the
     *physical identity* of its input collection (bounded per-builder
     caches), so [tbd sym] and [jdd sym] over the same [sym] return
     pipelines built from the same intermediate values — the same
     [degrees], the same [paths2], the same path-degree join.  Over
     {!Wpinq_core.Plan} a reused value *is* a shared DAG node, so a
     multi-measurement fit lowers the common prefixes once; over the
     direct interpreters reuse was already harmless (Batch diamonds
     evaluate once; Flow nodes accept many subscribers). *)
  let cache_limit = 16

  let memo1 f =
    let cache = ref [] in
    fun x ->
      match List.assq_opt x !cache with
      | Some v -> v
      | None ->
          let v = f x in
          let keep =
            if List.length !cache >= cache_limit then
              List.filteri (fun i _ -> i < cache_limit - 1) !cache
            else !cache
          in
          cache := (x, v) :: keep;
          v

  let memo_bucket f =
    let cache = ref [] in
    fun ~bucket x ->
      match List.find_opt (fun (b, k, _) -> b = bucket && k == x) !cache with
      | Some (_, _, v) -> v
      | None ->
          let v = f ~bucket x in
          let keep =
            if List.length !cache >= cache_limit then
              List.filteri (fun i _ -> i < cache_limit - 1) !cache
            else !cache
          in
          cache := (bucket, x, v) :: keep;
          v

  let symmetrize = memo1 (fun edges -> L.concat (L.select (fun (a, b) -> (b, a)) edges) edges)
  let degrees = memo1 (fun sym -> L.group_by ~key:fst ~reduce:List.length sym)

  let degree_ccdf = memo1 (fun sym -> L.select snd (L.shave_const 1.0 (L.select fst sym)))

  let degree_sequence = memo1 (fun sym -> L.select snd (L.shave_const 1.0 (degree_ccdf sym)))

  let nodes =
    memo1 (fun sym ->
        (* Section 2.8: SelectMany to endpoints (each at d_v/2 after
           accumulation), Shave into 0.5 slabs, keep slab 0. *)
        L.select fst
          (L.where (fun (_, i) -> i = 0)
             (L.shave_const 0.5 (L.select_many (fun (a, b) -> [ (a, 0.5); (b, 0.5) ]) sym))))

  let node_count = memo1 (fun sym -> L.select (fun _ -> ()) (nodes sym))
  let edge_count = memo1 (fun sym -> L.select (fun _ -> ()) sym)

  let paths2 =
    memo1 (fun sym ->
        L.where
          (fun (a, _, c) -> a <> c)
          (L.join ~kl:snd ~kr:fst ~reduce:(fun (a, b) (_, c) -> (a, b, c)) sym sym))

  let jdd =
    memo1 (fun sym ->
        let degs = degrees sym in
        (* ((a,b), d_a) for each directed edge. *)
        let temp =
          L.join
            ~kl:(fun (v, _) -> v)
            ~kr:fst
            ~reduce:(fun (_, d) e -> (e, d))
            degs sym
        in
        L.join
          ~kl:(fun (e, _) -> e)
          ~kr:(fun ((a, b), _) -> (b, a))
          ~reduce:(fun (_, da) (_, db) -> (da, db))
          temp temp)

  let sort3 (a, b, c) =
    let x = min a (min b c) and z = max a (max b c) in
    (x, a + b + c - x - z, z)

  let bucketed_degrees_raw =
    memo_bucket (fun ~bucket sym ->
        L.group_by ~key:fst ~reduce:(bucket_reduce bucket) sym)

  let bucketed_degrees ~bucket sym =
    if bucket < 1 then invalid_arg "Queries: bucket must be >= 1";
    (* Dividing by 1 is the identity, so bucket-1 queries alias the plain
       [degrees] pipeline — TbD at the default bucket then shares its
       degree node with JDD. *)
    if bucket = 1 then degrees sym else bucketed_degrees_raw ~bucket sym

  (* (path, degree-of-middle-vertex): 〈(a,b,c), d_b〉 at 1/(2 d_b²).  The
     common prefix of TbD and SbD. *)
  let path_middle_degree =
    memo_bucket (fun ~bucket sym ->
        L.join
          ~kl:(fun (_, b, _) -> b)
          ~kr:fst
          ~reduce:(fun p (_, d) -> (p, d))
          (paths2 sym)
          (bucketed_degrees ~bucket sym))

  let tbd_raw =
    memo_bucket (fun ~bucket sym ->
        let abc = path_middle_degree ~bucket sym in
        (* Rotations carry the same degree to the other two positions:
           bca holds 〈(b,c,a), d_b〉 (first vertex), cab 〈(c,a,b), d_b〉 (last). *)
        let bca = L.select rotate3_keyed abc in
        let cab = L.select rotate3_keyed bca in
        (* Joining all three on the path key matches exactly when all rotations
           exist, i.e. on triangles; the degrees collected are those of the
           middle, first and last vertices of the shared path. *)
        let partial =
          L.join
            ~kl:(fun (p, _) -> p)
            ~kr:(fun (p, _) -> p)
            ~reduce:(fun (p, d_mid) (_, d_first) -> (p, d_mid, d_first))
            abc bca
        in
        let tris =
          L.join
            ~kl:(fun (p, _, _) -> p)
            ~kr:(fun (p, _) -> p)
            ~reduce:(fun (_, d_mid, d_first) (_, d_last) -> (d_first, d_mid, d_last))
            partial cab
        in
        L.select sort3 tris)

  let tbd ?(bucket = 1) sym =
    if bucket < 1 then invalid_arg "Queries: bucket must be >= 1";
    tbd_raw ~bucket sym

  let sort4 (a, b, c, d) =
    match List.sort compare [ a; b; c; d ] with
    | [ w; x; y; z ] -> (w, x, y, z)
    | _ -> assert false

  let sbd_raw =
    memo_bucket (fun ~bucket sym ->
        let abc = path_middle_degree ~bucket sym in
        (* Length-three paths (a,b,c,d) with the degrees of both middle
           vertices, keyed by the shared edge (b,c). *)
        let abcd =
          L.where
            (fun ((a, _, _, d), _, _) -> a <> d)
            (L.join
               ~kl:(fun ((_, b, c), _) -> (b, c))
               ~kr:(fun ((b, c, _), _) -> (b, c))
               ~reduce:(fun ((a, b, c), db) ((_, _, d), dc) -> ((a, b, c, d), db, dc))
               abc abc)
        in
        let cdab = L.select rotate2_keyed abcd in
        (* A record (a,b,c,d) in cdab descends from the path (c,d,a,b), so it
           carries (d_d, d_a); matching it with abcd's (d_b, d_c) collects all
           four degrees of the square. *)
        let squares =
          L.join
            ~kl:(fun (p, _, _) -> p)
            ~kr:(fun (p, _, _) -> p)
            ~reduce:(fun (_, db, dc) (_, dd, da) -> (da, db, dc, dd))
            abcd cdab
        in
        L.select sort4 squares)

  let sbd ?(bucket = 1) sym =
    if bucket < 1 then invalid_arg "Queries: bucket must be >= 1";
    sbd_raw ~bucket sym

  let tbi =
    memo1 (fun sym ->
        let paths = paths2 sym in
        let rotated = L.select rotate3 paths in
        let triangles = L.intersect rotated paths in
        L.select (fun _ -> ()) triangles)

  let degree_histogram = memo1 (fun sym -> L.select snd (degrees sym))

  let paths3 =
    memo1 (fun sym ->
        (* Extend each 2-path by one edge (3 uses: 2 for the paths + 1 for the
           edges), keeping walks whose four vertices are distinct. *)
        L.where
          (fun (a, b, _, d) -> a <> d && b <> d)
          (L.join
             ~kl:(fun (_, _, c) -> c)
             ~kr:fst
             ~reduce:(fun (a, b, c) (_, d) -> (a, b, c, d))
             (paths2 sym) sym))

  let sbi =
    memo1 (fun sym ->
        let paths = paths3 sym in
        (* A length-3 path a-b-c-d closes into a square exactly when c-d-a-b is
           also a path; intersecting with the double rotation keeps only
           those. *)
        let rotated = L.select rotate2 paths in
        let squares = L.intersect rotated paths in
        L.select (fun _ -> ()) squares)
end

let tbd_triple_weight (x, y, z) =
  3.0 /. float_of_int ((x * x) + (y * y) + (z * z))

let jdd_pair_weight (da, db) = 1.0 /. float_of_int (2 + (2 * da) + (2 * db))

let sbd_cycle_weight da db dc dd =
  1.0
  /. (2.0
     *. float_of_int
          ((da * da * (dd - 1))
          + (dd * dd * (da - 1))
          + (db * db * (dc - 1))
          + (dc * dc * (db - 1))))

let tbi_triangle_term da db dc =
  let ra = 1.0 /. float_of_int da
  and rb = 1.0 /. float_of_int db
  and rc = 1.0 /. float_of_int dc in
  Float.min ra rb +. Float.min ra rc +. Float.min rb rc
