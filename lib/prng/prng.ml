type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }
let save t = Printf.sprintf "%016Lx" t.state

let restore s =
  if String.length s <> 16 then
    invalid_arg "Prng.restore: state must be exactly 16 hex characters";
  match Int64.of_string_opt ("0x" ^ s) with
  | Some state -> { state }
  | None -> invalid_arg "Prng.restore: malformed hex state"

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (bits64 t) }

(* Cursor introspection, for bit-exact rollback of speculative draws: a
   [mark] taken before a draw and a later [rewind] put the generator back
   on the identical stream, so the next draw reproduces the same bits. *)
let mark t = t.state
let rewind t cursor = t.state <- cursor

(* The stream the (i+1)-th of [i+1] consecutive [split] calls would
   return, computed without moving [t]'s cursor.  The cursor walks the
   golden-gamma lattice one increment per draw, so the i-th future split
   is a pure function of (state, i): lookahead streams can be dealt for
   steps not yet taken, in any order, without perturbing the master
   stream — the foundation of the parallel speculative walk. *)
let split_nth t i =
  if i < 0 then invalid_arg "Prng.split_nth: negative index";
  { state = mix64 (mix64 (Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma))) }

(* Deal the first [n] lookahead streams in one call: [deal t n] equals
   [Array.init n (split_nth t)] but walks the lattice with one running
   cursor instead of recomputing the offset product per stream.  The
   scheduler re-deals per batch with a batch-dependent [n] (adaptive
   lookahead width), so this is on the dispatch hot path. *)
let deal t n =
  if n < 0 then invalid_arg "Prng.deal: negative count";
  let cursor = ref t.state in
  Array.init n (fun _ ->
      cursor := Int64.add !cursor golden_gamma;
      { state = mix64 (mix64 !cursor) })

(* Advance the cursor as if [k] draws ([bits64] or [split]) had been
   taken, in O(1).  After [advance t k], [split t] returns exactly what
   [split_nth t k] returned before. *)
let advance t k =
  if k < 0 then invalid_arg "Prng.advance: negative count";
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int k) golden_gamma)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top bits for exact uniformity. *)
  let b = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r b in
    if Int64.(sub r v > add (sub max_int b) 1L) then draw ()
    else Int64.to_int v
  in
  draw ()

let uniform t =
  (* 53 random bits scaled into [0,1). *)
  let r = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float r *. 0x1.0p-53

let uniform_pos t = 1.0 -. uniform t
let float t bound = uniform t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L

let laplace t ~scale =
  (* Inverse-CDF: u uniform in (-1/2, 1/2]; x = -b * sgn(u) * ln(1 - 2|u|). *)
  let u = uniform_pos t -. 0.5 in
  let s = if u >= 0.0 then 1.0 else -1.0 in
  -.scale *. s *. log (1.0 -. (2.0 *. Float.abs u))

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  -.log (uniform_pos t) /. rate

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let u = uniform_pos t in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let gaussian t =
  let u1 = uniform_pos t and u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))
