(** Deterministic, splittable pseudo-random number generation and the noise
    distributions used by differentially-private mechanisms.

    Every randomized component of the platform (the Laplace mechanism, graph
    generators, the Metropolis–Hastings walk) draws from a {!t} so that whole
    experiments are reproducible from a single integer seed.  The generator is
    SplitMix64: a small, fast, well-tested mixer whose streams can be
    {!split} into statistically independent child streams, which lets
    concurrent subsystems (e.g. one noise stream per measurement) share one
    master seed without correlation. *)

type t
(** A mutable pseudo-random stream. *)

val create : int -> t
(** [create seed] builds a stream deterministically from [seed].  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] duplicates the stream state; the copy and the original then
    evolve independently but identically if fed the same draw sequence. *)

val save : t -> string
(** [save t] serializes the full generator state exactly (16 hex
    characters).  [restore (save t)] continues the stream bit-for-bit where
    [t] stands — the contract checkpoint/resume depends on. *)

val restore : string -> t
(** [restore s] rebuilds a stream from {!save} output.  Raises
    [Invalid_argument] on anything that is not exactly the serialized
    form. *)

val split : t -> t
(** [split t] advances [t] and returns a child stream that is statistically
    independent of the parent's subsequent output. *)

val mark : t -> int64
(** [mark t] snapshots the stream cursor.  Paired with {!rewind} it rolls a
    speculative draw back bit-exactly: after [rewind t (mark t)], the next
    draw reproduces the same bits the unwound draws produced. *)

val rewind : t -> int64 -> unit
(** [rewind t cursor] restores a cursor taken with {!mark} on the same
    stream. *)

val split_nth : t -> int -> t
(** [split_nth t i] is the stream the [(i+1)]-th of [i+1] consecutive
    {!split} calls would return, computed {e without} moving [t]'s cursor
    ([i >= 0]; raises [Invalid_argument] otherwise).  Because the cursor
    walks a fixed lattice one increment per draw, the [i]-th future split is
    a pure function of [(state, i)]: lookahead streams for steps not yet
    taken can be dealt in any order without perturbing the master stream —
    the foundation of the parallel speculative walk.  The dealt streams are
    pairwise distinct and independent of both each other and the parent. *)

val deal : t -> int -> t array
(** [deal t n] deals the first [n] lookahead streams without moving [t]'s
    cursor: element [i] equals [split_nth t i], but the whole batch is
    produced with one pass over the lattice ([n >= 0]; raises
    [Invalid_argument] otherwise).  This is the per-batch dispatch
    primitive of the parallel lookahead scheduler, whose batch width
    varies between batches. *)

val advance : t -> int -> unit
(** [advance t k] moves the cursor as if [k] draws ({!bits64} or {!split})
    had been taken, in O(1) ([k >= 0]).  After [advance t k], [split t]
    returns exactly what [split_nth t k] returned before — so a scheduler
    that consumed the first [k] dealt streams leaves the master exactly
    where a serial walk taking [k] steps would have left it. *)

val bits64 : t -> int64
(** [bits64 t] draws 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound] must be
    positive.  Uses rejection sampling, so the result is exactly uniform. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val uniform : t -> float
(** [uniform t] draws uniformly from [0, 1). *)

val uniform_pos : t -> float
(** [uniform_pos t] draws uniformly from (0, 1]; never returns [0.], making
    it safe as input to [log]. *)

val bool : t -> bool
(** [bool t] draws a fair coin flip. *)

val laplace : t -> scale:float -> float
(** [laplace t ~scale] draws from the zero-mean Laplace distribution with
    scale parameter [b = scale]: density [exp (-|x| / b) / 2b], variance
    [2 b²].  The Laplace mechanism for an [eps]-DP count uses
    [~scale:(1. /. eps)]. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] draws from the exponential distribution with the
    given rate (mean [1. /. rate]). *)

val geometric : t -> p:float -> int
(** [geometric t ~p] draws the number of failures before the first success
    of a Bernoulli([p]) sequence; support {0, 1, 2, ...}. *)

val gaussian : t -> float
(** [gaussian t] draws from the standard normal distribution
    (Box–Muller). *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] uniformly in place (Fisher–Yates). *)

val choose : t -> 'a array -> 'a
(** [choose t a] draws a uniformly random element.  [a] must be nonempty. *)
