(** Incremental execution of wPINQ queries over a synthetic dataset, with
    live scoring against released measurements.

    This is the fitting half of the platform (paper, Section 4): after the
    protected data has been measured and discarded, the same query text —
    instantiated through this module instead of {!Batch} — runs over a
    public synthetic candidate.  {!Target}s subscribe below each pipeline
    and maintain [‖Q(A) − m‖₁] incrementally as the candidate is edited, so
    a Metropolis–Hastings step costs only the propagation of its delta. *)

type 'a t
(** A collection in the incremental engine. *)

include Lang.S with type 'a t := 'a t

type 'a collection = 'a t
(** Alias usable where [t] is shadowed (inside {!Target}). *)

type 'a handle
(** The feed side of a synthetic input. *)

val input : Wpinq_dataflow.Dataflow.Engine.t -> 'a handle * 'a t
(** Declares a synthetic (public) input collection, initially empty. *)

val feed : 'a handle -> ('a * float) list -> unit
(** Applies a weight-change batch to the input and propagates it through
    every query and target built on it.  Feed related changes (e.g. all
    edge records of one swap) as {e one} batch: correctness never depends
    on batching, but weight-preserving batches take Join's fast path. *)

val current : 'a handle -> 'a Wpinq_weighted.Wdata.t
(** The synthetic collection as accumulated so far. *)

val node : 'a t -> 'a Wpinq_dataflow.Dataflow.node
(** Escape hatch to the underlying dataflow node (used by tests and custom
    sinks). *)

(** Lowering of reified {!Plan}s into the incremental engine.

    The payoff of reification on the fitting side: lower several targets'
    plans through {e one} context and every shared plan prefix becomes one
    physical dataflow sub-DAG — each MCMC delta propagates through the
    common prefix once per step, feeding all the distance sinks below it.
    Speculation/undo, audit enrollment, and checkpointing are unaffected:
    sharing only changes {e which} nodes exist, and every stateful cell
    still logs its own undo closures and audit hooks exactly once.

    Unlike the interpreter-agnostic {!Plan.Lower}, a context here is tied to
    an engine: memo hits are credited to the engine-wide
    {!Wpinq_dataflow.Dataflow.Engine.nodes_shared} counter as lowering
    proceeds. *)
module Plans : sig
  type ctx

  val create : Wpinq_dataflow.Dataflow.Engine.t -> ctx

  val bind : ctx -> 'a Plan.t -> 'a t -> unit
  (** Route a plan source leaf to a synthetic input (the collection half of
      {!input}).  Raises [Invalid_argument] on a non-source node. *)

  val lower : ctx -> 'a Plan.t -> 'a t
  (** Lower a plan, reusing every node already lowered in this context.
      Raises [Invalid_argument] on an unbound source. *)

  val nodes_built : ctx -> int
  val nodes_shared : ctx -> int
end

module Target : sig
  type t
  (** A fitted measurement: one wPINQ pipeline over the synthetic input,
      scored against the noisy observations [m] of the corresponding
      pipeline over the (discarded) protected input. *)

  val create : 'a collection -> 'a Measurement.t -> t
  (** [create q m] attaches a scoring sink under [q].  Records [m] observed
      at measurement time contribute immediately; records that first appear
      in the synthetic output draw (and memoize) their noisy observation
      lazily, exactly as {!Measurement.value} specifies.

      The maintained distance participates in speculative evaluation: when
      the engine is speculating (see
      {!Wpinq_dataflow.Dataflow.Engine.begin_speculation}), every distance
      update is enrolled in the undo log, so
      {!Wpinq_dataflow.Dataflow.Engine.abort} restores the distance to its
      exact pre-speculation bit pattern. *)

  val of_plan : Plans.ctx -> 'a Plan.t -> 'a Measurement.t -> t
  (** [of_plan ctx p m] lowers [p] through [ctx] and attaches a scoring sink
      under the result — {!create} over {!Plans.lower}.  Build all of a
      fit's targets through one [ctx] and their shared plan prefixes share
      physical nodes. *)

  val distance : t -> float
  (** Current [‖Q(A) − m‖₁] over all tracked records, up to a constant
      offset per lazily-observed record (constant offsets cancel in the
      MCMC acceptance ratio; see the implementation note). *)

  val weighted_distance : t -> float
  (** [epsilon m × distance t] — this target's term in the posterior energy
      [Σ_i ε_i ‖Q_i(A) − m_i‖₁]. *)

  val audit_distance : t -> float
  (** The convention-free [‖Q(A) − m‖₁] over every tracked record,
      re-derived from the sink on each call.  Unlike {!distance}, this sum
      carries no per-lazy-record offset, so it is directly comparable
      between two target instances attached to the {e same} measurement —
      a live incrementally-maintained target and a from-scratch batch
      replica — which is exactly what the fit-level audit cross-validates.
      Read-only and draws no noise (every tracked record is already
      memoized in the measurement). *)

  val epsilon : t -> float

  val recompute : t -> unit
  (** Recomputes the distance from the sink's current state, discarding any
      floating-point drift accumulated by incremental updates.  Cheap; call
      it every ~10⁵ steps on long MCMC runs.

      {!create} also enrolls the maintained distance in the engine's
      self-audit ({!Wpinq_dataflow.Dataflow.Engine.audit}): the audit
      compares it against the same from-scratch derivation without mutating
      anything, so a clean audit leaves the walk bit-identical. *)

  val inject_drift : t -> float -> unit
  (** [inject_drift t dw] corrupts the maintained distance by [dw] {e
      without} touching the underlying sink — a fault-injection hook for
      testing that {!Wpinq_dataflow.Dataflow.Engine.audit} detects the
      divergence and that recovery repairs it.  Never call it outside
      tests. *)

  val energy : t list -> float
  (** [energy targets] is [Σ weighted_distance] — the quantity
      Metropolis–Hastings exponentiates. *)
end
