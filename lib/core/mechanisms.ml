module Prng = Wpinq_prng.Prng
module Wdata = Wpinq_weighted.Wdata

let clip clamp v = Float.max (-.clamp) (Float.min clamp v)

let noisy_sum ~rng ~epsilon ~clamp ~f c =
  if clamp <= 0.0 then invalid_arg "Mechanisms.noisy_sum: clamp must be positive";
  if not (Float.is_finite epsilon) || epsilon <= 0.0 then
    invalid_arg "Mechanisms.noisy_sum: epsilon must be finite and positive";
  Batch.charge ~label:"noisy_sum" ~epsilon c;
  let data = Batch.unsafe_value c in
  let total = Wdata.fold (fun x w acc -> acc +. (w *. clip clamp (f x))) data 0.0 in
  total +. Prng.laplace rng ~scale:(clamp /. epsilon)

let noisy_average ~rng ~epsilon ~clamp ~f c =
  if clamp <= 0.0 then invalid_arg "Mechanisms.noisy_average: clamp must be positive";
  if not (Float.is_finite epsilon) || epsilon <= 0.0 then
    invalid_arg "Mechanisms.noisy_average: epsilon must be finite and positive";
  Batch.charge ~label:"noisy_average" ~epsilon c;
  let data = Batch.unsafe_value c in
  let half = epsilon /. 2.0 in
  let sum = Wdata.fold (fun x w acc -> acc +. (w *. clip clamp (f x))) data 0.0 in
  let noisy_sum = sum +. Prng.laplace rng ~scale:(clamp /. half) in
  let noisy_weight = Wdata.total data +. Prng.laplace rng ~scale:(1.0 /. half) in
  noisy_sum /. Float.max 1.0 noisy_weight

let exponential ~rng ~epsilon ~candidates ~score c =
  if candidates = [] then invalid_arg "Mechanisms.exponential: no candidates";
  if not (Float.is_finite epsilon) || epsilon <= 0.0 then
    invalid_arg "Mechanisms.exponential: epsilon must be finite and positive";
  Batch.charge ~label:"exponential" ~epsilon c;
  let data = Batch.unsafe_value c in
  let scores = List.map (fun r -> (r, score r data)) candidates in
  (* Normalize by the max score so the exponentials stay finite. *)
  let best = List.fold_left (fun acc (_, s) -> Float.max acc s) neg_infinity scores in
  let weights = List.map (fun (r, s) -> (r, exp (epsilon *. (s -. best) /. 2.0))) scores in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 weights in
  let draw = Prng.uniform rng *. total in
  let rec pick acc = function
    | [] -> fst (List.hd (List.rev weights))
    | (r, w) :: rest -> if acc +. w >= draw then r else pick (acc +. w) rest
  in
  pick 0.0 weights
