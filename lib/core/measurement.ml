module Wdata = Wpinq_weighted.Wdata
module Prng = Wpinq_prng.Prng

type 'a t = {
  epsilon : float;
  rng : Prng.t; (* private stream for lazily-drawn records *)
  values : ('a, float) Hashtbl.t;
}

let create ~rng ~epsilon ~true_data =
  if not (Float.is_finite epsilon) || epsilon <= 0.0 then
    invalid_arg "Measurement.create: epsilon must be finite and positive";
  let rng = Prng.split rng in
  let values = Hashtbl.create (max 16 (Wdata.support_size true_data)) in
  (* Noise is assigned in canonical (sorted-record) order, not hashtable
     order: together with Wdata's canonical accumulation this makes the
     released values — noise draws included — a function of the true
     multiset alone, so a measurement taken through an optimizer-rewritten
     plan is bit-identical to one taken through the original. *)
  List.iter
    (fun (x, w) -> Hashtbl.replace values x (w +. Prng.laplace rng ~scale:(1.0 /. epsilon)))
    (Wdata.to_sorted_list true_data);
  { epsilon; rng; values }

let epsilon t = t.epsilon

(* An independent deep copy: same released values, same private noise
   cursor.  A replica fit built over copies draws bit-identical lazy
   observations to the original as long as both replay the same record
   sequence — the invariant the parallel lookahead pool maintains. *)
let copy t = { epsilon = t.epsilon; rng = Prng.copy t.rng; values = Hashtbl.copy t.values }

(* Speculative-draw rollback support.  [mark] snapshots the private noise
   cursor; [undo_draw] drops one lazily-cached observation and rewinds the
   cursor to the snapshot, so re-encountering any record after an abort
   re-draws the identical noise.  This keeps the measurement state a pure
   function of the *committed* walk prefix, which is what lets K replica
   engines evaluate disjoint speculations and still agree bit-for-bit. *)
type mark = int64

let mark t = Prng.mark t.rng

let undo_draw t x m =
  Hashtbl.remove t.values x;
  Prng.rewind t.rng m

let value t x =
  match Hashtbl.find_opt t.values x with
  | Some v -> v
  | None ->
      let v = Prng.laplace t.rng ~scale:(1.0 /. t.epsilon) in
      Hashtbl.replace t.values x v;
      v

let observed t = Hashtbl.fold (fun x v acc -> (x, v) :: acc) t.values []
let observed_size t = Hashtbl.length t.values

module Codec = Wpinq_persist.Persist.Codec

(* Only released values cross this boundary: the noisy counts, the noise
   parameter, and the private noise stream's cursor (so lazily-drawn
   records keep drawing the same sequence after a resume).  The protected
   [true_data] was consumed by [create] and is not part of the state. *)
let save write_key t buf =
  Codec.write_float buf t.epsilon;
  Codec.write_string buf (Prng.save t.rng);
  Codec.write_list
    (fun buf (x, v) ->
      write_key buf x;
      Codec.write_float buf v)
    buf
    (Hashtbl.fold (fun x v acc -> (x, v) :: acc) t.values [])

let load read_key r =
  let epsilon = Codec.read_float r in
  let rng = Prng.restore (Codec.read_string r) in
  let entries =
    Codec.read_list
      (fun r ->
        let x = read_key r in
        let v = Codec.read_float r in
        (x, v))
      r
  in
  if not (Float.is_finite epsilon) || epsilon <= 0.0 then
    raise (Codec.Decode_error "Measurement.load: epsilon must be finite and positive");
  let values = Hashtbl.create (max 16 (List.length entries)) in
  List.iter (fun (x, v) -> Hashtbl.replace values x v) entries;
  { epsilon; rng; values }
