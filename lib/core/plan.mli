(** Reified wPINQ query plans: one DAG, many execution targets.

    {!Batch} and {!Flow} both implement {!Lang.S} directly, so a query
    functor can run against either — but each instantiation {e is} its
    execution: building [Queries.Make (Flow)] twice builds two physical
    dataflow pipelines even when the query texts coincide.  A {!t} instead
    {e reifies} the query as a first-class value: a typed operator DAG with
    a unique id per node, built once and lowered as many times — and into as
    many interpreters — as needed.

    Because [Plan] itself implements {!Lang.S}, the paper's queries run over
    plans with no textual change ([Queries.Make (Plan)]); what changes is
    what a query {e value} means.  Reusing a plan value twice is structural
    sharing: the node keeps its id, so a memoizing lowering ({!Lower})
    reconstructs the diamond instead of duplicating the subtree.  Two
    measurement targets whose plans share a prefix therefore share one
    physical sub-DAG in the incremental engine — deltas propagate through
    the common prefix once per MCMC step, feeding both distance sinks.

    Reification also makes the privacy bookkeeping a checkable artifact
    rather than a documentation claim: {!uses} derives the number of times a
    plan touches each protected source — the multiplier sequential
    composition applies to ε (paper, Section 2.3) and the exact quantity
    {!Batch.charge} debits.  The per-query costs documented in
    {!Wpinq_queries.Queries} are property-tested against this function. *)

type 'a t
(** A reified query over records of type ['a]: one node of a typed operator
    DAG.  Immutable; cheap to build; interpreter-independent. *)

include Lang.S with type 'a t := 'a t

val source : ?name:string -> unit -> 'a t
(** A fresh source leaf — the placeholder a lowering later binds to a
    concrete collection ({!Batch.Plans.bind} to a protected batch
    collection, {!Flow.Plans.bind} to a synthetic dataflow input).  [name]
    (default ["source"]) appears in diagnostics and {!source_uses}. *)

val id : 'a t -> int
(** The node's unique id.  Ids are allocated from one global counter, so
    equal ids imply physical equality; lowerings key their memo tables on
    this. *)

val is_source : 'a t -> bool

val operator : 'a t -> string
(** The root operator's name ("source", "select", "join", …), for
    diagnostics. *)

val uses : 'a t -> int
(** How many times evaluating this plan touches source leaves, counted with
    path multiplicity: a shared subplan reached through [k] paths
    contributes [k] times its own count, exactly as wPINQ's sequential
    composition charges it.  This is the multiplier {!Batch.charge} applies
    to ε when the plan is lowered and aggregated (property-tested to
    agree). *)

val source_uses : 'a t -> (string * int) list
(** Per-source breakdown of {!uses}, one entry per distinct source leaf in
    first-reached order, labelled with the leaf's name. *)

val size : 'a t -> int
(** Number of {e distinct} nodes in the DAG ([size] counts a diamond once;
    {!uses} counts its paths). *)

(** Memoized lowering of plans into any {!Lang.S} interpreter.

    A [ctx] carries the source bindings and the node-id-keyed memo table:
    within one context, every distinct plan node is lowered exactly once,
    and every further reference — inside one plan or across several —
    reuses the first lowering.  Lower several targets' plans through one
    context and their shared prefixes become shared interpreter values:
    shared lazy datasets under {!Batch}, shared physical operator nodes
    under {!Flow}. *)
module type LOWERING = sig
  type 'a target
  (** The interpreter's collection type. *)

  type ctx

  val create : unit -> ctx

  val bind : ctx -> 'a t -> 'a target -> unit
  (** [bind ctx src v] routes the source leaf [src] to the concrete
      collection [v].  Raises [Invalid_argument] if [src] is not a source
      leaf.  Binding the same leaf again replaces the binding (the memo
      table of already-lowered nodes is {e not} invalidated; bind before
      lowering). *)

  val lower : ctx -> 'a t -> 'a target
  (** Lowers a plan, reusing every node already lowered in this context.
      Raises [Invalid_argument] on a source leaf with no binding, naming
      the leaf. *)

  val nodes_built : ctx -> int
  (** Distinct plan nodes lowered through this context so far. *)

  val nodes_shared : ctx -> int
  (** Memo hits: plan-node references that reused an earlier lowering
      instead of rebuilding it.  [nodes_built + nodes_shared] is the total
      number of node references lowered. *)
end

module Lower (L : Lang.S) : LOWERING with type 'a target = 'a L.t
