(** Reified wPINQ query plans: one hash-consed DAG, many execution targets.

    {!Batch} and {!Flow} both implement {!Lang.S} directly, so a query
    functor can run against either — but each instantiation {e is} its
    execution: building [Queries.Make (Flow)] twice builds two physical
    dataflow pipelines even when the query texts coincide.  A {!t} instead
    {e reifies} the query as a first-class value: a typed operator DAG,
    built once and lowered as many times — and into as many interpreters —
    as needed.

    Nodes are {e hash-consed}: constructing a node whose operator, embedded
    closures (compared physically — a closed lambda is allocated once,
    statically, even across functor instantiations) and children all match
    an existing node returns that node.  Equal subtrees therefore get equal
    ids automatically; [Queries.Make (Plan)] instantiated twice yields
    physically identical DAGs, and cross-query sharing no longer depends on
    analysts reusing values by hand.  Only {!source} leaves are exempt: a
    source is a binding point, and distinct leaves express deliberately
    unshared inputs.

    Reification also makes the privacy bookkeeping a checkable artifact
    rather than a documentation claim: {!uses} derives the number of times a
    plan touches each protected source — the multiplier sequential
    composition applies to ε (paper, Section 2.3) and the exact quantity
    {!Batch.charge} debits.  The per-query costs documented in
    {!Wpinq_queries.Queries} are property-tested against this function.

    On top of the canonical DAG sits {!optimize}: cost-guided, privacy-sound
    rewrites (filter fusion and pushdown, distinct fusion, join operand
    reordering, and opt-in select fusion), each preserving {!uses} and
    {!source_uses} exactly — derived ε charges never move — and, for
    {!exact_rules}, preserving released measurement values bit for bit. *)

type 'a t
(** A reified query over records of type ['a]: one node of a typed,
    hash-consed operator DAG.  Immutable; cheap to build;
    interpreter-independent. *)

include Lang.S with type 'a t := 'a t

val source : ?name:string -> unit -> 'a t
(** A fresh source leaf — the placeholder a lowering later binds to a
    concrete collection ({!Batch.Plans.bind} to a protected batch
    collection, {!Flow.Plans.bind} to a synthetic dataflow input).  [name]
    (default ["source"]) appears in diagnostics and {!source_uses}.
    Sources are never hash-consed: every call returns a distinct leaf, so
    deliberately unshared analyses stay unshared.  To share one input
    across many fits, hold on to a single source value and build every
    pipeline over it. *)

val id : 'a t -> int
(** The node's unique id.  Ids are allocated from one global counter, so
    equal ids imply physical equality; lowerings key their memo tables on
    this.  Hash-consing makes the converse useful too: structurally equal
    plans (same operators, same closures, same children) have equal ids. *)

val is_source : 'a t -> bool

val operator : 'a t -> string
(** The root operator's name ("source", "select", "join", …), for
    diagnostics. *)

val consumers : 'a t -> int
(** How many distinct parent nodes have been interned over this node, over
    the life of the process.  The optimizer's cost guards use this to
    refuse rewrites that would split a shared subtree. *)

val uses : 'a t -> int
(** How many times evaluating this plan touches source leaves, counted with
    path multiplicity: a shared subplan reached through [k] paths
    contributes [k] times its own count, exactly as wPINQ's sequential
    composition charges it.  This is the multiplier {!Batch.charge} applies
    to ε when the plan is lowered and aggregated (property-tested to
    agree).  Counts are memoized per node for the life of the process, so
    deep diamond ladders cost linear work, not one walk per path. *)

val source_uses : 'a t -> (string * int) list
(** Per-source breakdown of {!uses}, one entry per distinct source leaf in
    first-reached order, labelled with the leaf's name. *)

val size : 'a t -> int
(** Number of {e distinct} nodes in the DAG ([size] counts a diamond once;
    {!uses} counts its paths). *)

val canonical_hash : 'a t -> string
(** A hex digest of the plan's structure: operators, scalar parameters,
    source names and wiring.  Embedded closures are {e not} represented
    (they have no canonical form), so the hash identifies the plan's shape
    — equal plans share a hash, and hash-equal plans share a shape but may
    differ in their functions.  Checkpoints record the hash of each
    optimized plan so a resume can verify it re-lowered the same dataflow;
    the {!optimize} cache keys on it (and double-checks node identity). *)

val estimated_size : 'a t -> float
(** A deterministic, structure-only cardinality estimate.  Absolute values
    are meaningless; the optimizer compares siblings to order join
    operands, and ties never reorder. *)

val pp : Format.formatter -> 'a t -> unit
(** Prints the DAG as a deduplicated let-listing, leaves first: one line
    per distinct node, [#id operator scalars <- #child …].  A shared
    subtree appears once and is referenced by id thereafter. *)

val to_dot : ?label:string -> 'a t -> string
(** Graphviz export of the DAG: one node per distinct plan node (sources
    boxed), edges in dataflow direction, each edge labelled [xk] where [k]
    is the number of root-to-parent paths — the multiplicity that edge
    contributes to the child's ε multiplier.  Summing the labels of a
    source leaf's outgoing edges gives its {!source_uses} entry. *)

(** {1 The optimizer} *)

type rule =
  | Fuse_where  (** [where p (where q u)] → [where (q && p) u]. *)
  | Push_where_below_select
      (** [where p (select f u)] → [select f (where (p ∘ f) u)]: filters
          run before projections, shrinking every downstream delta. *)
  | Fuse_distinct
      (** [distinct b1 (distinct b2 u)] → [distinct (min b1 b2) u]. *)
  | Reorder_join
      (** Puts the operand with the smaller {!estimated_size} on the left
          (flipping the reduce), canonicalizing join order; fires only on a
          strict inequality. *)
  | Fuse_select  (** [select f (select g u)] → [select (f ∘ g) u]. *)
  | Fuse_select_into_join
      (** [select f (join ~reduce u v)] → [join ~reduce:(f ∘∘ reduce) u v]. *)

val rule_name : rule -> string

val exact_rules : rule list
(** [Fuse_where; Push_where_below_select; Fuse_distinct; Reorder_join] —
    the default rule set.  These rewrites never regroup a floating-point
    summation (filters copy weights, distinct bounds combine through exact
    min, a join swap only commutes IEEE [+.] and [*.]), so together with
    the canonical accumulation order in {!Wpinq_weighted.Wdata} they
    preserve released measurements — noise draws included — bit for bit. *)

val all_rules : rule list
(** {!exact_rules} plus [Fuse_select] and [Fuse_select_into_join].  The
    select fusions collapse a two-stage weight accumulation into one: the
    same real number, but potentially different in the last ulps, so they
    are opt-in and validated to a tolerance rather than bitwise. *)

val optimize : ?rules:rule list -> 'a t -> 'a t
(** Rewrites the plan bottom-up to a fixpoint under the given rules
    (default {!exact_rules}).  Every rule preserves {!uses} and
    {!source_uses} — derived ε charges never move (property-tested) — and
    fusion rules are cost-guarded: they only fire when the fused child has
    a single consumer, so shared subtrees are never split.  Results are
    cached globally, keyed on {!canonical_hash} plus the rule set: the same
    submitted plan — across fits, tenants, stream epochs — optimizes once
    and lowers to the same physical dataflow.  Deterministic: the same
    plan and rule set always yield the same optimized DAG, which is what
    lets checkpoints resume onto bit-identical pipelines. *)

val plan_cache_stats : unit -> int * int
(** [(hits, misses)] of the {!optimize} cache, cumulative for the
    process. *)

val optimizer_fires : unit -> (string * int) list
(** Cumulative count of rewrites applied, per rule name. *)

val hashcons_stats : unit -> int * int
(** [(hits, nodes)]: constructor calls answered from the hash-cons table,
    and distinct nodes allocated (sources included). *)

(** Memoized lowering of plans into any {!Lang.S} interpreter.

    A [ctx] carries the source bindings and the node-id-keyed memo table:
    within one context, every distinct plan node is lowered exactly once,
    and every further reference — inside one plan or across several —
    reuses the first lowering.  Lower several targets' plans through one
    context and their shared prefixes become shared interpreter values:
    shared lazy datasets under {!Batch}, shared physical operator nodes
    under {!Flow}. *)
module type LOWERING = sig
  type 'a target
  (** The interpreter's collection type. *)

  type ctx

  val create : unit -> ctx

  val bind : ctx -> 'a t -> 'a target -> unit
  (** [bind ctx src v] routes the source leaf [src] to the concrete
      collection [v].  Raises [Invalid_argument] if [src] is not a source
      leaf, or if any node has already been lowered through [ctx] —
      rebinding after a lower would leave memoized nodes silently reading
      the old source, so every source must be bound before the first
      {!lower}. *)

  val lower : ctx -> 'a t -> 'a target
  (** Lowers a plan, reusing every node already lowered in this context.
      Raises [Invalid_argument] on a source leaf with no binding, naming
      the leaf. *)

  val nodes_built : ctx -> int
  (** Distinct plan nodes lowered through this context so far. *)

  val nodes_shared : ctx -> int
  (** Memo hits: plan-node references that reused an earlier lowering
      instead of rebuilding it.  [nodes_built + nodes_shared] is the total
      number of node references lowered. *)
end

module Lower (L : Lang.S) : LOWERING with type 'a target = 'a L.t
