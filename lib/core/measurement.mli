(** Differentially-private measurements: the output of [NoisyCount]
    (paper, Section 2.2).

    A measurement is a dictionary from records to noisy counts.  Records
    that carried nonzero weight at measurement time are materialized
    eagerly; any other record's value is fresh Laplace noise, drawn on first
    request and memoized so later requests (and the MCMC scorer) see a
    consistent function.  The protected data is captured only long enough to
    draw the noisy values — nothing unnoised escapes this module. *)

type 'a t

val create :
  rng:Wpinq_prng.Prng.t -> epsilon:float -> true_data:'a Wpinq_weighted.Wdata.t -> 'a t
(** [create ~rng ~epsilon ~true_data] draws [true_data x + Laplace(1/epsilon)]
    for every supported record.  The caller ({!Batch.noisy_count}) is
    responsible for budget accounting {e before} calling this. *)

val epsilon : 'a t -> float
(** The per-record noise parameter (counts carry [Laplace(1/epsilon)]
    noise).  This is the ε the posterior weighs this measurement by. *)

val copy : 'a t -> 'a t
(** An independent deep copy: same released values, same private noise
    cursor.  A replica fit built over copies draws bit-identical lazy
    observations to the original as long as both replay the same record
    sequence — the invariant the parallel lookahead pool maintains. *)

type mark
(** A snapshot of the private noise stream's cursor. *)

val mark : 'a t -> mark

val undo_draw : 'a t -> 'a -> mark -> unit
(** [undo_draw m x mk] rolls back a lazy draw made after [mk] was taken:
    drops the cached observation for [x] and rewinds the noise cursor, so a
    record re-encountered after a speculative abort re-draws identical
    noise.  This keeps the measurement a pure function of the committed walk
    prefix. *)

val value : 'a t -> 'a -> float
(** [value m x] is the released noisy count for [x]; memoized fresh noise if
    [x] had zero weight and has not been asked before. *)

val observed : 'a t -> ('a * float) list
(** All records materialized so far (eager support plus any lazily-drawn
    records), with their noisy counts. *)

val observed_size : 'a t -> int

val save : (Buffer.t -> 'a -> unit) -> 'a t -> Buffer.t -> unit
(** [save write_key m buf] serializes the measurement for checkpointing:
    epsilon, the private noise stream's exact state, and every materialized
    [(record, noisy count)] pair.  Only {e released} values are written —
    the protected data was consumed at creation and cannot be recovered
    from a checkpoint. *)

val load : (Wpinq_persist.Persist.Codec.reader -> 'a) -> Wpinq_persist.Persist.Codec.reader -> 'a t
(** Rebuilds a measurement written by {!save}.  The restored measurement
    returns bit-identical values for every materialized record and draws
    the same future noise sequence for new ones.  Raises
    [Wpinq_persist.Persist.Codec.Decode_error] on malformed input. *)
