module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops

type 'a t = { data : 'a Wdata.t Lazy.t; uses : (Budget.t * int) list }

(* Use-lists are merged by physical identity of the budget: one budget per
   protected source. *)
let merge_uses ua ub =
  List.fold_left
    (fun acc (b, n) ->
      let rec bump = function
        | [] -> [ (b, n) ]
        | (b', n') :: rest when b' == b -> (b', n' + n) :: rest
        | pair :: rest -> pair :: bump rest
      in
      bump acc)
    ua ub

let lift1 op c = { data = lazy (op (Lazy.force c.data)); uses = c.uses }

let lift2 op a b =
  { data = lazy (op (Lazy.force a.data) (Lazy.force b.data)); uses = merge_uses a.uses b.uses }

let select f = lift1 (Ops.select f)
let where p = lift1 (Ops.where p)
let select_many f = lift1 (Ops.select_many f)
let select_many_list f = lift1 (Ops.select_many_list f)
let concat a b = lift2 Ops.concat a b
let except a b = lift2 Ops.except a b
let union a b = lift2 Ops.union a b
let intersect a b = lift2 Ops.intersect a b
let join ~kl ~kr ~reduce a b = lift2 (Ops.join ~kl ~kr ~reduce) a b
let group_by ~key ~reduce = lift1 (Ops.group_by ~key ~reduce)
let distinct ?bound c = lift1 (Ops.distinct ?bound) c
let shave f = lift1 (Ops.shave f)
let shave_const w = lift1 (Ops.shave_const w)

let source ~budget rows = { data = lazy (Wdata.of_list rows); uses = [ (budget, 1) ] }
let source_records ~budget xs = { data = lazy (Wdata.of_records xs); uses = [ (budget, 1) ] }
let public rows = { data = lazy (Wdata.of_list rows); uses = [] }
let uses c = c.uses

let privacy_cost ~epsilon c =
  List.map (fun (b, n) -> (Budget.name b, float_of_int n *. epsilon)) c.uses

let partition ~keys ~key c =
  (* One parallel group per source budget, shared by all parts of this
     partition; each part charges its own child of that group. *)
  let groups = List.map (fun (b, n) -> (b, n, Budget.parallel_group b)) c.uses in
  List.map
    (fun k ->
      let uses =
        List.map
          (fun (b, n, g) -> (Budget.parallel_child g ~name:(Budget.name b ^ "[part]"), n))
          groups
      in
      (k, { data = lazy (Ops.where (fun x -> key x = k) (Lazy.force c.data)); uses }))
    keys

let charge ?(label = "noisy_count") ~epsilon c =
  if not (Float.is_finite epsilon) || epsilon < 0.0 then
    invalid_arg "Batch.charge: epsilon must be finite and non-negative";
  (* Check all budgets before charging any, so a failed aggregation leaves
     every budget untouched. *)
  List.iter
    (fun (b, n) ->
      let cost = float_of_int n *. epsilon in
      if cost > Budget.remaining b +. 1e-9 then
        raise
          (Budget.Exhausted
             { name = Budget.name b; requested = cost; remaining = Budget.remaining b }))
    c.uses;
  List.iter (fun (b, n) -> Budget.charge ~label b (float_of_int n *. epsilon)) c.uses

let noisy_count ~rng ~epsilon c =
  charge ~epsilon c;
  Measurement.create ~rng ~epsilon ~true_data:(Lazy.force c.data)

let unsafe_value c = Lazy.force c.data

module Plans = Plan.Lower (struct
  type nonrec 'a t = 'a t

  let select = select
  let where = where
  let select_many = select_many
  let select_many_list = select_many_list
  let concat = concat
  let except = except
  let union = union
  let intersect = intersect
  let join = join
  let group_by = group_by
  let distinct = distinct
  let shave = shave
  let shave_const = shave_const
end)
