module Codec = Wpinq_persist.Persist.Codec

type t = {
  name : string;
  total : float; (* for children: capacity is dynamic; see [remaining] *)
  mutable spent : float;
  mutable log : (string * float) list;
  kind : kind;
}

and kind = Root | Child of { group : group; cap : float }
and group = { parent : t; mutable max_spent : float }

type exhausted = { name : string; requested : float; remaining : float }

exception Exhausted of { name : string; requested : float; remaining : float }

let check_epsilon fn eps =
  if not (Float.is_finite eps) then invalid_arg (fn ^ ": epsilon must be finite");
  if eps < 0.0 then invalid_arg (fn ^ ": negative epsilon")

let create ~name total =
  if not (Float.is_finite total) then invalid_arg "Budget.create: budget must be finite";
  if total < 0.0 then invalid_arg "Budget.create: negative budget";
  { name; total; spent = 0.0; log = []; kind = Root }

let name (t : t) = t.name

(* Tolerate float rounding when a sequence of charges sums to the total. *)
let slack = 1e-9

let rec remaining t =
  match t.kind with
  | Root -> t.total -. t.spent
  | Child { group = g; cap } ->
      (* The child may reuse the headroom other siblings already paid for
         (up to the group maximum), plus whatever the parent still has —
         bounded by the child's own allocation cap, if it was given one. *)
      Float.min (cap -. t.spent) (remaining g.parent +. g.max_spent -. t.spent)

let total t = match t.kind with Root -> t.total | Child _ -> t.spent +. remaining t
let spent t = t.spent

(* A dry run of [commit] that reports which budget in the chain would be
   overdrawn, without mutating anything — so both charge flavors are atomic
   across parallel-composition parents. *)
let rec check t eps =
  match t.kind with
  | Root ->
      if eps > t.total -. t.spent +. slack then
        Some { name = t.name; requested = eps; remaining = t.total -. t.spent }
      else None
  | Child { group = g; cap } ->
      if eps > cap -. t.spent +. slack then
        Some { name = t.name; requested = eps; remaining = cap -. t.spent }
      else
        (* Parallel composition: only the excess over the group's maximum
           reaches the parent. *)
        let excess = Float.max 0.0 (t.spent +. eps -. g.max_spent) in
        if excess > 0.0 then check g.parent excess else None

let rec commit ~label t eps =
  (match t.kind with
  | Root -> ()
  | Child { group = g; _ } ->
      let excess = Float.max 0.0 (t.spent +. eps -. g.max_spent) in
      if excess > 0.0 then commit ~label:(t.name ^ "/" ^ label) g.parent excess);
  t.spent <- t.spent +. eps;
  (match t.kind with
  | Root -> ()
  | Child { group = g; _ } -> g.max_spent <- Float.max g.max_spent t.spent);
  t.log <- (label, eps) :: t.log

let charge ?(label = "noisy_count") t eps =
  check_epsilon "Budget.charge" eps;
  match check t eps with
  | Some { name; requested; remaining } -> raise (Exhausted { name; requested; remaining })
  | None -> commit ~label t eps

let try_charge ?(label = "noisy_count") t eps =
  check_epsilon "Budget.try_charge" eps;
  match check t eps with
  | Some denial -> Error denial
  | None ->
      commit ~label t eps;
      Ok ()

let log t = List.rev t.log
let parallel_group parent = { parent; max_spent = 0.0 }

let parallel_child ?allocation g ~name =
  (* Validate the allocation at creation, exactly as [try_charge] treats
     ε: a NaN or negative cap would silently poison every later charge
     decision through this account, so it is a programming error here —
     never a constructed-then-broken budget. *)
  let cap =
    match allocation with
    | None -> Float.infinity
    | Some a ->
        if Float.is_nan a then
          invalid_arg "Budget.parallel_child: allocation must not be NaN";
        if not (Float.is_finite a) then
          invalid_arg "Budget.parallel_child: allocation must be finite";
        if a < 0.0 then invalid_arg "Budget.parallel_child: negative allocation";
        a
  in
  { name; total = 0.0; spent = 0.0; log = []; kind = Child { group = g; cap } }

let save t buf =
  (match t.kind with
  | Root -> ()
  | Child _ -> invalid_arg "Budget.save: parallel children are not serializable");
  Codec.write_string buf t.name;
  Codec.write_float buf t.total;
  Codec.write_float buf t.spent;
  Codec.write_list
    (fun buf (label, eps) ->
      Codec.write_string buf label;
      Codec.write_float buf eps)
    buf (List.rev t.log)

let load r =
  let name = Codec.read_string r in
  let total = Codec.read_float r in
  let spent = Codec.read_float r in
  let log_oldest_first =
    Codec.read_list
      (fun r ->
        let label = Codec.read_string r in
        let eps = Codec.read_float r in
        (label, eps))
      r
  in
  { name; total; spent; log = List.rev log_oldest_first; kind = Root }
