module Codec = Wpinq_persist.Persist.Codec

type t = {
  name : string;
  total : float; (* for children: capacity is dynamic; see [remaining] *)
  mutable spent : float;
  mutable log : (string * float) list;
  kind : kind;
}

and kind = Root | Child of { group : group; cap : float }
and group = { parent : t; mutable max_spent : float }

type exhausted = { name : string; requested : float; remaining : float }

exception Exhausted of { name : string; requested : float; remaining : float }

let check_epsilon fn eps =
  if not (Float.is_finite eps) then invalid_arg (fn ^ ": epsilon must be finite");
  if eps < 0.0 then invalid_arg (fn ^ ": negative epsilon")

let create ~name total =
  if not (Float.is_finite total) then invalid_arg "Budget.create: budget must be finite";
  if total < 0.0 then invalid_arg "Budget.create: negative budget";
  { name; total; spent = 0.0; log = []; kind = Root }

let name (t : t) = t.name

(* Tolerate float rounding when a sequence of charges sums to the total. *)
let slack = 1e-9

let rec remaining t =
  match t.kind with
  | Root -> t.total -. t.spent
  | Child { group = g; cap } ->
      (* The child may reuse the headroom other siblings already paid for
         (up to the group maximum), plus whatever the parent still has —
         bounded by the child's own allocation cap, if it was given one. *)
      Float.min (cap -. t.spent) (remaining g.parent +. g.max_spent -. t.spent)

let total t = match t.kind with Root -> t.total | Child _ -> t.spent +. remaining t
let spent t = t.spent

(* A dry run of [commit] that reports which budget in the chain would be
   overdrawn, without mutating anything — so both charge flavors are atomic
   across parallel-composition parents. *)
let rec check t eps =
  match t.kind with
  | Root ->
      if eps > t.total -. t.spent +. slack then
        Some { name = t.name; requested = eps; remaining = t.total -. t.spent }
      else None
  | Child { group = g; cap } ->
      if eps > cap -. t.spent +. slack then
        Some { name = t.name; requested = eps; remaining = cap -. t.spent }
      else
        (* Parallel composition: only the excess over the group's maximum
           reaches the parent. *)
        let excess = Float.max 0.0 (t.spent +. eps -. g.max_spent) in
        if excess > 0.0 then check g.parent excess else None

let rec commit ~label t eps =
  (match t.kind with
  | Root -> ()
  | Child { group = g; _ } ->
      let excess = Float.max 0.0 (t.spent +. eps -. g.max_spent) in
      if excess > 0.0 then commit ~label:(t.name ^ "/" ^ label) g.parent excess);
  t.spent <- t.spent +. eps;
  (match t.kind with
  | Root -> ()
  | Child { group = g; _ } -> g.max_spent <- Float.max g.max_spent t.spent);
  t.log <- (label, eps) :: t.log

let charge ?(label = "noisy_count") t eps =
  check_epsilon "Budget.charge" eps;
  match check t eps with
  | Some { name; requested; remaining } -> raise (Exhausted { name; requested; remaining })
  | None -> commit ~label t eps

let try_charge ?(label = "noisy_count") t eps =
  check_epsilon "Budget.try_charge" eps;
  match check t eps with
  | Some denial -> Error denial
  | None ->
      commit ~label t eps;
      Ok ()

let log t = List.rev t.log
let parallel_group parent = { parent; max_spent = 0.0 }

let parallel_child ?allocation g ~name =
  (* Validate the allocation at creation, exactly as [try_charge] treats
     ε: a NaN or negative cap would silently poison every later charge
     decision through this account, so it is a programming error here —
     never a constructed-then-broken budget. *)
  let cap =
    match allocation with
    | None -> Float.infinity
    | Some a ->
        if Float.is_nan a then
          invalid_arg "Budget.parallel_child: allocation must not be NaN";
        if not (Float.is_finite a) then
          invalid_arg "Budget.parallel_child: allocation must be finite";
        if a < 0.0 then invalid_arg "Budget.parallel_child: negative allocation";
        a
  in
  { name; total = 0.0; spent = 0.0; log = []; kind = Child { group = g; cap } }

let save t buf =
  (match t.kind with
  | Root -> ()
  | Child _ -> invalid_arg "Budget.save: parallel children are not serializable");
  Codec.write_string buf t.name;
  Codec.write_float buf t.total;
  Codec.write_float buf t.spent;
  Codec.write_list
    (fun buf (label, eps) ->
      Codec.write_string buf label;
      Codec.write_float buf eps)
    buf (List.rev t.log)

let load r =
  let name = Codec.read_string r in
  let total = Codec.read_float r in
  let spent = Codec.read_float r in
  let log_oldest_first =
    Codec.read_list
      (fun r ->
        let label = Codec.read_string r in
        let eps = Codec.read_float r in
        (label, eps))
      r
  in
  { name; total; spent; log = List.rev log_oldest_first; kind = Root }

module Schedule = struct
  type policy = Roll_forward | Forfeit
  type refusal = { name : string; epoch : int; epochs : int }

  type entry =
    | Completed of { epoch : int; granted : float; spent : float }
    | Degraded of {
        epoch : int;
        granted : float;
        spent : float;
        rolled : float;
        forfeited : float;
      }
    | Refused of { epoch : int }

  type books = {
    granted : float;
    spent : float;
    carried : float;
    forfeited : float;
    outstanding : float;
  }

  type t = {
    name : string;
    per_epoch : float;
    epochs : int;
    policy : policy;
    mutable granted_epochs : int;
    mutable carried : float;
    mutable granted : float; (* fresh ε issued: per_epoch × granted_epochs *)
    mutable spent : float;
    mutable forfeited : float;
    mutable outstanding : (int * float) option; (* epoch, unsettled allowance *)
    mutable entries : entry list; (* newest first *)
  }

  let create ~name ~per_epoch ~epochs ~policy =
    if not (Float.is_finite per_epoch) then
      invalid_arg "Budget.Schedule.create: per-epoch epsilon must be finite";
    if per_epoch < 0.0 then invalid_arg "Budget.Schedule.create: negative per-epoch epsilon";
    if epochs < 0 then invalid_arg "Budget.Schedule.create: negative epoch count";
    {
      name;
      per_epoch;
      epochs;
      policy;
      granted_epochs = 0;
      carried = 0.0;
      granted = 0.0;
      spent = 0.0;
      forfeited = 0.0;
      outstanding = None;
      entries = [];
    }

  let name t = t.name
  let per_epoch t = t.per_epoch
  let epochs t = t.epochs
  let policy t = t.policy
  let granted_epochs t = t.granted_epochs
  let log t = List.rev t.entries

  let books t =
    {
      granted = t.granted;
      spent = t.spent;
      carried = t.carried;
      forfeited = t.forfeited;
      outstanding = (match t.outstanding with None -> 0.0 | Some (_, a) -> a);
    }

  let overspend t = Float.max 0.0 (t.spent -. t.granted)

  let next t ~epoch =
    (match t.outstanding with
    | Some (e, _) ->
        invalid_arg
          (Printf.sprintf "Budget.Schedule.next: epoch %d is still outstanding" e)
    | None -> ());
    if t.granted_epochs >= t.epochs then
      Error { name = t.name; epoch; epochs = t.epochs }
    else begin
      let allowance = t.per_epoch +. t.carried in
      t.carried <- 0.0;
      t.granted <- t.granted +. t.per_epoch;
      t.granted_epochs <- t.granted_epochs + 1;
      t.outstanding <- Some (epoch, allowance);
      Ok allowance
    end

  let settle fn t ~epoch ~spent =
    check_epsilon fn spent;
    match t.outstanding with
    | None -> invalid_arg (fn ^ ": no outstanding epoch to settle")
    | Some (e, allowance) ->
        if e <> epoch then
          invalid_arg
            (Printf.sprintf "%s: settling epoch %d but epoch %d is outstanding" fn epoch e);
        if spent > allowance +. slack then
          invalid_arg
            (Printf.sprintf "%s: epoch %d spent %.17g over its allowance %.17g" fn epoch
               spent allowance);
        t.outstanding <- None;
        t.spent <- t.spent +. spent;
        let unspent = Float.max 0.0 (allowance -. spent) in
        let rolled, forfeited =
          match t.policy with
          | Roll_forward -> (unspent, 0.0)
          | Forfeit -> (0.0, unspent)
        in
        t.carried <- t.carried +. rolled;
        t.forfeited <- t.forfeited +. forfeited;
        (allowance, rolled, forfeited)

  let complete t ~epoch ~spent =
    let granted, _, _ = settle "Budget.Schedule.complete" t ~epoch ~spent in
    t.entries <- Completed { epoch; granted; spent } :: t.entries

  let degrade t ~epoch ~spent =
    let granted, rolled, forfeited = settle "Budget.Schedule.degrade" t ~epoch ~spent in
    t.entries <- Degraded { epoch; granted; spent; rolled; forfeited } :: t.entries

  let refuse t ~epoch =
    (match t.outstanding with
    | Some (e, _) ->
        invalid_arg
          (Printf.sprintf "Budget.Schedule.refuse: epoch %d is still outstanding" e)
    | None -> ());
    t.entries <- Refused { epoch } :: t.entries

  let save t buf =
    Codec.write_string buf t.name;
    Codec.write_float buf t.per_epoch;
    Codec.write_int buf t.epochs;
    Codec.write_bool buf (t.policy = Roll_forward);
    Codec.write_int buf t.granted_epochs;
    Codec.write_float buf t.carried;
    Codec.write_float buf t.granted;
    Codec.write_float buf t.spent;
    Codec.write_float buf t.forfeited;
    (match t.outstanding with
    | None -> Codec.write_bool buf false
    | Some (e, a) ->
        Codec.write_bool buf true;
        Codec.write_int buf e;
        Codec.write_float buf a);
    Codec.write_list
      (fun buf entry ->
        match entry with
        | Completed { epoch; granted; spent } ->
            Codec.write_int buf 0;
            Codec.write_int buf epoch;
            Codec.write_float buf granted;
            Codec.write_float buf spent
        | Degraded { epoch; granted; spent; rolled; forfeited } ->
            Codec.write_int buf 1;
            Codec.write_int buf epoch;
            Codec.write_float buf granted;
            Codec.write_float buf spent;
            Codec.write_float buf rolled;
            Codec.write_float buf forfeited
        | Refused { epoch } ->
            Codec.write_int buf 2;
            Codec.write_int buf epoch)
      buf (List.rev t.entries)

  let load r =
    let name = Codec.read_string r in
    let per_epoch = Codec.read_float r in
    let epochs = Codec.read_int r in
    let policy = if Codec.read_bool r then Roll_forward else Forfeit in
    let granted_epochs = Codec.read_int r in
    let carried = Codec.read_float r in
    let granted = Codec.read_float r in
    let spent = Codec.read_float r in
    let forfeited = Codec.read_float r in
    let outstanding =
      if Codec.read_bool r then begin
        let e = Codec.read_int r in
        let a = Codec.read_float r in
        Some (e, a)
      end
      else None
    in
    let entries_oldest_first =
      Codec.read_list
        (fun r ->
          match Codec.read_int r with
          | 0 ->
              let epoch = Codec.read_int r in
              let granted = Codec.read_float r in
              let spent = Codec.read_float r in
              Completed { epoch; granted; spent }
          | 1 ->
              let epoch = Codec.read_int r in
              let granted = Codec.read_float r in
              let spent = Codec.read_float r in
              let rolled = Codec.read_float r in
              let forfeited = Codec.read_float r in
              Degraded { epoch; granted; spent; rolled; forfeited }
          | 2 ->
              let epoch = Codec.read_int r in
              Refused { epoch }
          | tag ->
              raise
                (Wpinq_persist.Persist.Codec.Decode_error
                   (Printf.sprintf "Budget.Schedule: unknown entry tag %d" tag)))
        r
    in
    {
      name;
      per_epoch;
      epochs;
      policy;
      granted_epochs;
      carried;
      granted;
      spent;
      forfeited;
      outstanding;
      entries = List.rev entries_oldest_first;
    }
end
