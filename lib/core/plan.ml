(* Reified query plans: a typed operator DAG with per-node unique ids.
   Reusing a plan value is structural sharing — the memoizing lowering
   below rebuilds diamonds instead of duplicating subtrees — and the
   source-use count that Budget debits is derived by walking the DAG
   instead of asserted in documentation. *)

type 'a t = { id : int; tid : 'a Type.Id.t; shape : 'a shape }

and _ shape =
  | Source : string -> 'a shape
  | Select : ('b -> 'a) * 'b t -> 'a shape
  | Where : ('a -> bool) * 'a t -> 'a shape
  | Select_many : ('b -> ('a * float) list) * 'b t -> 'a shape
  | Select_many_list : ('b -> 'a list) * 'b t -> 'a shape
  | Concat : 'a t * 'a t -> 'a shape
  | Except : 'a t * 'a t -> 'a shape
  | Union : 'a t * 'a t -> 'a shape
  | Intersect : 'a t * 'a t -> 'a shape
  | Join : ('b -> 'k) * ('c -> 'k) * ('b -> 'c -> 'a) * 'b t * 'c t -> 'a shape
  | Group_by : ('b -> 'k) * ('b list -> 'r) * 'b t -> ('k * 'r) shape
  | Distinct : float option * 'a t -> 'a shape
  | Shave : ('b -> float Seq.t) * 'b t -> ('b * int) shape
  | Shave_const : float * 'b t -> ('b * int) shape

let counter = ref 0

let node shape =
  incr counter;
  { id = !counter; tid = Type.Id.make (); shape }

let source ?(name = "source") () = node (Source name)
let select f c = node (Select (f, c))
let where p c = node (Where (p, c))
let select_many f c = node (Select_many (f, c))
let select_many_list f c = node (Select_many_list (f, c))
let concat a b = node (Concat (a, b))
let except a b = node (Except (a, b))
let union a b = node (Union (a, b))
let intersect a b = node (Intersect (a, b))
let join ~kl ~kr ~reduce a b = node (Join (kl, kr, reduce, a, b))
let group_by ~key ~reduce c = node (Group_by (key, reduce, c))
let distinct ?bound c = node (Distinct (bound, c))
let shave f c = node (Shave (f, c))
let shave_const w c = node (Shave_const (w, c))
let id c = c.id

let is_source (type a) (c : a t) =
  match c.shape with Source _ -> true | _ -> false

let operator (type a) (c : a t) =
  match c.shape with
  | Source _ -> "source"
  | Select _ -> "select"
  | Where _ -> "where"
  | Select_many _ -> "select_many"
  | Select_many_list _ -> "select_many_list"
  | Concat _ -> "concat"
  | Except _ -> "except"
  | Union _ -> "union"
  | Intersect _ -> "intersect"
  | Join _ -> "join"
  | Group_by _ -> "group_by"
  | Distinct _ -> "distinct"
  | Shave _ -> "shave"
  | Shave_const _ -> "shave_const"

(* Source uses with path multiplicity: the count of root-to-leaf paths,
   which is exactly the multiplier sequential composition applies to
   epsilon (and what Batch.merge_uses computes operationally).  Memoized
   per node id so diamonds cost O(nodes), not O(paths). *)

type src_counts = (int * string * int) list (* source id, name, count *)

let merge_counts (a : src_counts) (b : src_counts) : src_counts =
  List.fold_left
    (fun acc (sid, name, n) ->
      let rec bump = function
        | [] -> [ (sid, name, n) ]
        | (sid', name', n') :: rest when sid' = sid -> (sid', name', n' + n) :: rest
        | entry :: rest -> entry :: bump rest
      in
      bump acc)
    a b

let counts_of (root : 'a t) : src_counts =
  let memo : (int, src_counts) Hashtbl.t = Hashtbl.create 16 in
  let rec go : type x. x t -> src_counts =
   fun c ->
    match Hashtbl.find_opt memo c.id with
    | Some counts -> counts
    | None ->
        let counts : src_counts =
          match c.shape with
          | Source name -> [ (c.id, name, 1) ]
          | Select (_, u) -> go u
          | Where (_, u) -> go u
          | Select_many (_, u) -> go u
          | Select_many_list (_, u) -> go u
          | Concat (a, b) -> merge_counts (go a) (go b)
          | Except (a, b) -> merge_counts (go a) (go b)
          | Union (a, b) -> merge_counts (go a) (go b)
          | Intersect (a, b) -> merge_counts (go a) (go b)
          | Join (_, _, _, a, b) -> merge_counts (go a) (go b)
          | Group_by (_, _, u) -> go u
          | Distinct (_, u) -> go u
          | Shave (_, u) -> go u
          | Shave_const (_, u) -> go u
        in
        Hashtbl.replace memo c.id counts;
        counts
  in
  go root

let uses c = List.fold_left (fun acc (_, _, n) -> acc + n) 0 (counts_of c)
let source_uses c = List.map (fun (_, name, n) -> (name, n)) (counts_of c)

let size (root : 'a t) =
  let seen = Hashtbl.create 16 in
  let rec go : type x. x t -> unit =
   fun c ->
    if not (Hashtbl.mem seen c.id) then begin
      Hashtbl.add seen c.id ();
      match c.shape with
      | Source _ -> ()
      | Select (_, u) -> go u
      | Where (_, u) -> go u
      | Select_many (_, u) -> go u
      | Select_many_list (_, u) -> go u
      | Group_by (_, _, u) -> go u
      | Distinct (_, u) -> go u
      | Shave (_, u) -> go u
      | Shave_const (_, u) -> go u
      | Concat (a, b) ->
          go a;
          go b
      | Except (a, b) ->
          go a;
          go b
      | Union (a, b) ->
          go a;
          go b
      | Intersect (a, b) ->
          go a;
          go b
      | Join (_, _, _, a, b) ->
          go a;
          go b
    end
  in
  go root;
  Hashtbl.length seen

module type LOWERING = sig
  type 'a target
  type ctx

  val create : unit -> ctx
  val bind : ctx -> 'a t -> 'a target -> unit
  val lower : ctx -> 'a t -> 'a target
  val nodes_built : ctx -> int
  val nodes_shared : ctx -> int
end

module Lower (L : Lang.S) = struct
  type 'a target = 'a L.t

  (* Heterogeneous entries: the node's runtime type witness lets us
     recover the lowered value at its original type on memo hits, without
     any unsafe casts. *)
  type entry = E : 'x Type.Id.t * 'x L.t -> entry

  type ctx = {
    bindings : (int, entry) Hashtbl.t; (* source node id -> bound input *)
    memo : (int, entry) Hashtbl.t; (* node id -> lowered value *)
    mutable built : int;
    mutable shared : int;
  }

  let create () =
    { bindings = Hashtbl.create 16; memo = Hashtbl.create 64; built = 0; shared = 0 }

  let recover : type a. a Type.Id.t -> entry -> a L.t =
   fun tid (E (tid', v)) ->
    match Type.Id.provably_equal tid' tid with
    | Some Type.Equal -> v
    | None -> assert false (* ids are unique, so witnesses always match *)

  let bind ctx (c : 'a t) (v : 'a L.t) =
    match c.shape with
    | Source _ -> Hashtbl.replace ctx.bindings c.id (E (c.tid, v))
    | _ ->
        invalid_arg
          (Printf.sprintf "Plan.bind: node #%d (%s) is not a source" c.id (operator c))

  let lower ctx root =
    let rec go : type x. x t -> x L.t =
     fun c ->
      match Hashtbl.find_opt ctx.memo c.id with
      | Some entry ->
          ctx.shared <- ctx.shared + 1;
          recover c.tid entry
      | None ->
          let v : x L.t =
            match c.shape with
            | Source name -> (
                match Hashtbl.find_opt ctx.bindings c.id with
                | Some entry -> recover c.tid entry
                | None ->
                    invalid_arg
                      (Printf.sprintf "Plan.lower: unbound source #%d (%s)" c.id name))
            | Select (f, u) -> L.select f (go u)
            | Where (p, u) -> L.where p (go u)
            | Select_many (f, u) -> L.select_many f (go u)
            | Select_many_list (f, u) -> L.select_many_list f (go u)
            | Concat (a, b) -> L.concat (go a) (go b)
            | Except (a, b) -> L.except (go a) (go b)
            | Union (a, b) -> L.union (go a) (go b)
            | Intersect (a, b) -> L.intersect (go a) (go b)
            | Join (kl, kr, reduce, a, b) -> L.join ~kl ~kr ~reduce (go a) (go b)
            | Group_by (key, reduce, u) -> L.group_by ~key ~reduce (go u)
            | Distinct (bound, u) -> L.distinct ?bound (go u)
            | Shave (f, u) -> L.shave f (go u)
            | Shave_const (w, u) -> L.shave_const w (go u)
          in
          ctx.built <- ctx.built + 1;
          Hashtbl.replace ctx.memo c.id (E (c.tid, v));
          v
    in
    go root

  let nodes_built ctx = ctx.built
  let nodes_shared ctx = ctx.shared
end
