(* Reified query plans: a typed operator DAG, hash-consed so that equal
   subtrees are equal nodes.  Building the same pipeline twice — in one
   functor instantiation or across several — returns the same physical
   node, so cross-query sharing no longer depends on analysts reusing
   values by hand: the memoizing lowering sees one id and builds one
   interpreter node.  On top of the canonical DAG sits a small optimizer
   (cost-guided, privacy-sound rewrites) and a plan cache keyed on the
   canonical structural hash, so repeated queries across fits, tenants
   and stream epochs lower to the same dataflow. *)

type 'a t = {
  id : int;
  tid : 'a Type.Id.t;
  shape : 'a shape;
  mutable consumers : int;
      (* Distinct parent nodes ever interned over this node.  Used by the
         optimizer's cost guards: a rewrite that would duplicate work is
         only applied when the rewritten child has a single consumer. *)
}

and _ shape =
  | Source : string -> 'a shape
  | Select : ('b -> 'a) * 'b t -> 'a shape
  | Where : ('a -> bool) * 'a t -> 'a shape
  | Select_many : ('b -> ('a * float) list) * 'b t -> 'a shape
  | Select_many_list : ('b -> 'a list) * 'b t -> 'a shape
  | Concat : 'a t * 'a t -> 'a shape
  | Except : 'a t * 'a t -> 'a shape
  | Union : 'a t * 'a t -> 'a shape
  | Intersect : 'a t * 'a t -> 'a shape
  | Join : ('b -> 'k) * ('c -> 'k) * ('b -> 'c -> 'a) * 'b t * 'c t -> 'a shape
  | Group_by : ('b -> 'k) * ('b list -> 'r) * 'b t -> ('k * 'r) shape
  | Distinct : float option * 'a t -> 'a shape
  | Shave : ('b -> float Seq.t) * 'b t -> ('b * int) shape
  | Shave_const : float * 'b t -> ('b * int) shape

type ex = Ex : 'a t -> ex

(* All global plan state (the hash-cons table, the memoized cost / hash /
   estimate caches, the optimizer's plan cache) is guarded by one mutex:
   plans are built and optimized from service worker domains as well as
   the main fit loop.  Public entry points take the lock once; internal
   [*0] helpers assume it is held. *)
let lock = Mutex.create ()
let locked f = Mutex.protect lock f

let counter = ref 0

(* ---------- Hash-consing ---------- *)

(* Structural identity is (operator, physical identity of the embedded
   closures, identity of the children).  Closures are compared with
   physical equality: OCaml allocates a closed lambda once, statically,
   so the same source text yields the same closure value across calls —
   and across functor instantiations ([Queries.Make (Plan)] twice builds
   physically identical DAGs, which the tests pin down.  A lambda that
   captures a fresh environment is a fresh closure and correctly hashes
   to a fresh node. *)

let obj_eq a b = Obj.repr a == Obj.repr b

let shape_hash : type a. a shape -> int = function
  | Source _ -> assert false (* sources are never interned; see [source] *)
  | Select (_, u) -> Hashtbl.hash (1, u.id)
  | Where (_, u) -> Hashtbl.hash (2, u.id)
  | Select_many (_, u) -> Hashtbl.hash (3, u.id)
  | Select_many_list (_, u) -> Hashtbl.hash (4, u.id)
  | Concat (a, b) -> Hashtbl.hash (5, a.id, b.id)
  | Except (a, b) -> Hashtbl.hash (6, a.id, b.id)
  | Union (a, b) -> Hashtbl.hash (7, a.id, b.id)
  | Intersect (a, b) -> Hashtbl.hash (8, a.id, b.id)
  | Join (_, _, _, a, b) -> Hashtbl.hash (9, a.id, b.id)
  | Group_by (_, _, u) -> Hashtbl.hash (10, u.id)
  | Distinct (bound, u) -> Hashtbl.hash (11, bound, u.id)
  | Shave (_, u) -> Hashtbl.hash (12, u.id)
  | Shave_const (w, u) -> Hashtbl.hash (13, Int64.bits_of_float w, u.id)

let shape_equal : type a b. a shape -> b shape -> bool =
 fun s1 s2 ->
  match (s1, s2) with
  | Select (f1, u1), Select (f2, u2) -> obj_eq f1 f2 && u1.id = u2.id
  | Where (p1, u1), Where (p2, u2) -> obj_eq p1 p2 && u1.id = u2.id
  | Select_many (f1, u1), Select_many (f2, u2) -> obj_eq f1 f2 && u1.id = u2.id
  | Select_many_list (f1, u1), Select_many_list (f2, u2) ->
      obj_eq f1 f2 && u1.id = u2.id
  | Concat (a1, b1), Concat (a2, b2) -> a1.id = a2.id && b1.id = b2.id
  | Except (a1, b1), Except (a2, b2) -> a1.id = a2.id && b1.id = b2.id
  | Union (a1, b1), Union (a2, b2) -> a1.id = a2.id && b1.id = b2.id
  | Intersect (a1, b1), Intersect (a2, b2) -> a1.id = a2.id && b1.id = b2.id
  | Join (kl1, kr1, r1, a1, b1), Join (kl2, kr2, r2, a2, b2) ->
      obj_eq kl1 kl2 && obj_eq kr1 kr2 && obj_eq r1 r2 && a1.id = a2.id
      && b1.id = b2.id
  | Group_by (k1, r1, u1), Group_by (k2, r2, u2) ->
      obj_eq k1 k2 && obj_eq r1 r2 && u1.id = u2.id
  | Distinct (b1, u1), Distinct (b2, u2) -> b1 = b2 && u1.id = u2.id
  | Shave (f1, u1), Shave (f2, u2) -> obj_eq f1 f2 && u1.id = u2.id
  | Shave_const (w1, u1), Shave_const (w2, u2) ->
      Int64.bits_of_float w1 = Int64.bits_of_float w2 && u1.id = u2.id
  | _ -> false

let table : (int, ex list ref) Hashtbl.t = Hashtbl.create 256
let cons_hits = ref 0
let cons_nodes = ref 0

let bump_children : type a. a shape -> unit = function
  | Source _ -> ()
  | Select (_, u) -> u.consumers <- u.consumers + 1
  | Where (_, u) -> u.consumers <- u.consumers + 1
  | Select_many (_, u) -> u.consumers <- u.consumers + 1
  | Select_many_list (_, u) -> u.consumers <- u.consumers + 1
  | Group_by (_, _, u) -> u.consumers <- u.consumers + 1
  | Distinct (_, u) -> u.consumers <- u.consumers + 1
  | Shave (_, u) -> u.consumers <- u.consumers + 1
  | Shave_const (_, u) -> u.consumers <- u.consumers + 1
  | Concat (a, b) ->
      a.consumers <- a.consumers + 1;
      b.consumers <- b.consumers + 1
  | Except (a, b) ->
      a.consumers <- a.consumers + 1;
      b.consumers <- b.consumers + 1
  | Union (a, b) ->
      a.consumers <- a.consumers + 1;
      b.consumers <- b.consumers + 1
  | Intersect (a, b) ->
      a.consumers <- a.consumers + 1;
      b.consumers <- b.consumers + 1
  | Join (_, _, _, a, b) ->
      a.consumers <- a.consumers + 1;
      b.consumers <- b.consumers + 1

(* On a table hit the stored node is returned at the caller's type via
   [Obj.magic].  Soundness: [shape_equal] demands the same operator, the
   same children (physically — ids come from one counter) and the same
   closures (physically).  The node's record type is determined by its
   children's types and its closures' types, so a physically identical
   shape has the same type; the only loophole is a closure polymorphic in
   its *result* used at two types, and such a function can never produce
   a value witnessing either type (it can only raise or produce values —
   like [[]] — that inhabit both), so no ill-typed record is ever
   materialized. *)
let cons0 : type a. a shape -> a t =
 fun shape ->
  let h = shape_hash shape in
  let bucket =
    match Hashtbl.find_opt table h with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add table h b;
        b
  in
  match List.find_opt (fun (Ex n) -> shape_equal n.shape shape) !bucket with
  | Some (Ex n) ->
      incr cons_hits;
      (Obj.magic (n : _ t) : a t)
  | None ->
      incr counter;
      incr cons_nodes;
      let n = { id = !counter; tid = Type.Id.make (); shape; consumers = 0 } in
      bump_children shape;
      bucket := Ex n :: !bucket;
      n

let cons shape = locked (fun () -> cons0 shape)

(* Sources are deliberately NOT hash-consed: a source leaf is a binding
   point, and two analyses that must not share an input (the unshared
   baseline in the bench, independent tenants) express that by creating
   fresh leaves.  Callers that want cross-fit sharing hold on to one
   source value (e.g. Workflow keeps a single module-level leaf), and
   every pipeline over it then interns to the same DAG. *)
let source ?(name = "source") () =
  locked (fun () ->
      incr counter;
      incr cons_nodes;
      { id = !counter; tid = Type.Id.make (); shape = Source name; consumers = 0 })

let select f c = cons (Select (f, c))
let where p c = cons (Where (p, c))
let select_many f c = cons (Select_many (f, c))
let select_many_list f c = cons (Select_many_list (f, c))
let concat a b = cons (Concat (a, b))
let except a b = cons (Except (a, b))
let union a b = cons (Union (a, b))
let intersect a b = cons (Intersect (a, b))
let join ~kl ~kr ~reduce a b = cons (Join (kl, kr, reduce, a, b))
let group_by ~key ~reduce c = cons (Group_by (key, reduce, c))
let distinct ?bound c = cons (Distinct (bound, c))
let shave f c = cons (Shave (f, c))
let shave_const w c = cons (Shave_const (w, c))
let id c = c.id
let consumers c = c.consumers
let hashcons_stats () = locked (fun () -> (!cons_hits, !cons_nodes))

let is_source (type a) (c : a t) =
  match c.shape with Source _ -> true | _ -> false

let operator (type a) (c : a t) =
  match c.shape with
  | Source _ -> "source"
  | Select _ -> "select"
  | Where _ -> "where"
  | Select_many _ -> "select_many"
  | Select_many_list _ -> "select_many_list"
  | Concat _ -> "concat"
  | Except _ -> "except"
  | Union _ -> "union"
  | Intersect _ -> "intersect"
  | Join _ -> "join"
  | Group_by _ -> "group_by"
  | Distinct _ -> "distinct"
  | Shave _ -> "shave"
  | Shave_const _ -> "shave_const"

let children : type a. a t -> ex list =
 fun c ->
  match c.shape with
  | Source _ -> []
  | Select (_, u) -> [ Ex u ]
  | Where (_, u) -> [ Ex u ]
  | Select_many (_, u) -> [ Ex u ]
  | Select_many_list (_, u) -> [ Ex u ]
  | Group_by (_, _, u) -> [ Ex u ]
  | Distinct (_, u) -> [ Ex u ]
  | Shave (_, u) -> [ Ex u ]
  | Shave_const (_, u) -> [ Ex u ]
  | Concat (a, b) -> [ Ex a; Ex b ]
  | Except (a, b) -> [ Ex a; Ex b ]
  | Union (a, b) -> [ Ex a; Ex b ]
  | Intersect (a, b) -> [ Ex a; Ex b ]
  | Join (_, _, _, a, b) -> [ Ex a; Ex b ]

let scalar_label : type a. a t -> string =
 fun c ->
  match c.shape with
  | Source name -> Printf.sprintf " %S" name
  | Distinct (Some b, _) -> Printf.sprintf " ~bound:%g" b
  | Shave_const (w, _) -> Printf.sprintf " %g" w
  | _ -> ""

(* ---------- Source uses (memoized per node, globally) ---------- *)

(* Source uses with path multiplicity: the count of root-to-leaf paths,
   which is exactly the multiplier sequential composition applies to
   epsilon (and what Batch.merge_uses computes operationally).  Nodes are
   immutable and interned, so the counts are cached once per node id for
   the life of the process: a 40-deep diamond ladder (2^40 paths) costs
   41 table lookups, not 2^40 walks. *)

type src_counts = (int * string * int) list (* source id, name, count *)

let merge_counts (a : src_counts) (b : src_counts) : src_counts =
  List.fold_left
    (fun acc (sid, name, n) ->
      let rec bump = function
        | [] -> [ (sid, name, n) ]
        | (sid', name', n') :: rest when sid' = sid -> (sid', name', n' + n) :: rest
        | entry :: rest -> entry :: bump rest
      in
      bump acc)
    a b

let counts_cache : (int, src_counts) Hashtbl.t = Hashtbl.create 256

let counts_of0 (root : 'a t) : src_counts =
  let rec go : type x. x t -> src_counts =
   fun c ->
    match Hashtbl.find_opt counts_cache c.id with
    | Some counts -> counts
    | None ->
        let counts : src_counts =
          match c.shape with
          | Source name -> [ (c.id, name, 1) ]
          | Select (_, u) -> go u
          | Where (_, u) -> go u
          | Select_many (_, u) -> go u
          | Select_many_list (_, u) -> go u
          | Concat (a, b) -> merge_counts (go a) (go b)
          | Except (a, b) -> merge_counts (go a) (go b)
          | Union (a, b) -> merge_counts (go a) (go b)
          | Intersect (a, b) -> merge_counts (go a) (go b)
          | Join (_, _, _, a, b) -> merge_counts (go a) (go b)
          | Group_by (_, _, u) -> go u
          | Distinct (_, u) -> go u
          | Shave (_, u) -> go u
          | Shave_const (_, u) -> go u
        in
        Hashtbl.replace counts_cache c.id counts;
        counts
  in
  go root

let counts_of root = locked (fun () -> counts_of0 root)
let uses c = List.fold_left (fun acc (_, _, n) -> acc + n) 0 (counts_of c)
let source_uses c = List.map (fun (_, name, n) -> (name, n)) (counts_of c)

let size (root : 'a t) =
  let seen = Hashtbl.create 16 in
  let rec go : ex -> unit =
   fun (Ex c) ->
    if not (Hashtbl.mem seen c.id) then begin
      Hashtbl.add seen c.id ();
      List.iter go (children c)
    end
  in
  go (Ex root);
  Hashtbl.length seen

(* ---------- Canonical structural hash ---------- *)

(* A digest of the plan's *shape*: operators, scalar parameters, source
   names and wiring — everything except the embedded closures, which have
   no canonical representation.  Two structurally equal plans share a
   hash even when their closures differ, so users of the hash as a cache
   key must double-check node identity (the optimizer's plan cache does).
   Checkpoints record the hash of each optimized plan so a resume can
   verify it re-lowered the very same dataflow before continuing. *)

let hash_cache : (int, string) Hashtbl.t = Hashtbl.create 256

let canonical_hash0 root =
  let rec go : type x. x t -> string =
   fun c ->
    match Hashtbl.find_opt hash_cache c.id with
    | Some d -> d
    | None ->
        let payload =
          match c.shape with
          | Source name -> "source:" ^ name
          | Distinct (bound, u) ->
              Printf.sprintf "distinct:%s:%s"
                (match bound with
                | None -> "-"
                | Some b -> Int64.to_string (Int64.bits_of_float b))
                (go u)
          | Shave_const (w, u) ->
              Printf.sprintf "shave_const:%Ld:%s" (Int64.bits_of_float w) (go u)
          | _ ->
              String.concat ":"
                (operator c :: List.map (fun (Ex u) -> go u) (children c))
        in
        let d = Digest.string payload in
        Hashtbl.replace hash_cache c.id d;
        d
  in
  Digest.to_hex (go root)

let canonical_hash root = locked (fun () -> canonical_hash0 root)

(* ---------- Pretty-printing and Graphviz export ---------- *)

(* Deduplicated postorder: leaves first, each node once, root last. *)
let topo (root : 'a t) : ex list =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go : ex -> unit =
   fun (Ex c) ->
    if not (Hashtbl.mem seen c.id) then begin
      Hashtbl.add seen c.id ();
      List.iter go (children c);
      out := Ex c :: !out
    end
  in
  go (Ex root);
  List.rev !out

let pp fmt root =
  let nodes = topo root in
  Format.fprintf fmt "@[<v>";
  List.iteri
    (fun i (Ex c) ->
      if i > 0 then Format.fprintf fmt "@,";
      let kids = children c in
      Format.fprintf fmt "#%d %s%s" c.id (operator c) (scalar_label c);
      if kids <> [] then
        Format.fprintf fmt " <-%s"
          (String.concat ""
             (List.map (fun (Ex u) -> Printf.sprintf " #%d" u.id) kids)))
    nodes;
  Format.fprintf fmt "@]"

(* Root-to-node path counts, top-down: the label on an edge parent<-child
   is the number of root-to-parent paths — the multiplicity that edge
   contributes to the child's epsilon multiplier (summing edge labels
   into a source leaf gives exactly its [source_uses] entry). *)
let path_counts (root : 'a t) : (int, int) Hashtbl.t =
  let paths = Hashtbl.create 16 in
  Hashtbl.replace paths root.id 1;
  (* Reverse postorder = parents before children, so each node's own
     count is final before it is pushed into its children. *)
  List.iter
    (fun (Ex c) ->
      let mine = try Hashtbl.find paths c.id with Not_found -> 0 in
      List.iter
        (fun (Ex u) ->
          let cur = try Hashtbl.find paths u.id with Not_found -> 0 in
          Hashtbl.replace paths u.id (cur + mine))
        (children c))
    (List.rev (topo root));
  paths

let to_dot ?(label = "plan") root =
  let buf = Buffer.create 1024 in
  let paths = path_counts root in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" label);
  Buffer.add_string buf "  rankdir=BT;\n  node [fontname=\"monospace\"];\n";
  let nodes = topo root in
  List.iter
    (fun (Ex c) ->
      let shape = if is_source c then ", shape=box" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"#%d %s%s\"%s];\n" c.id c.id (operator c)
           (String.map (fun ch -> if ch = '"' then '\'' else ch) (scalar_label c))
           shape))
    nodes;
  List.iter
    (fun (Ex c) ->
      let mine = try Hashtbl.find paths c.id with Not_found -> 0 in
      List.iter
        (fun (Ex u) ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"x%d\"];\n" u.id c.id mine))
        (children c))
    nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ---------- Cardinality estimates ---------- *)

(* A deterministic, structure-only fan-out estimate used to order join
   operands.  The absolute numbers are meaningless; only comparisons
   between sibling subplans matter, and ties never reorder. *)
let est_cache : (int, float) Hashtbl.t = Hashtbl.create 256

let estimate0 root =
  let rec go : type x. x t -> float =
   fun c ->
    match Hashtbl.find_opt est_cache c.id with
    | Some e -> e
    | None ->
        let e =
          match c.shape with
          | Source _ -> 1024.0
          | Select (_, u) -> go u
          | Where (_, u) -> go u /. 2.0
          | Select_many (_, u) -> go u *. 2.0
          | Select_many_list (_, u) -> go u *. 2.0
          | Concat (a, b) -> go a +. go b
          | Union (a, b) -> go a +. go b
          | Intersect (a, b) -> Float.min (go a) (go b)
          | Except (a, _) -> go a
          | Join (_, _, _, a, b) -> go a *. go b /. 16.0
          | Group_by (_, _, u) -> go u /. 2.0
          | Distinct (_, u) -> go u
          | Shave (_, u) -> go u *. 2.0
          | Shave_const (_, u) -> go u *. 2.0
        in
        Hashtbl.replace est_cache c.id e;
        e
  in
  go root

let estimated_size root = locked (fun () -> estimate0 root)

(* ---------- The optimizer ---------- *)

type rule =
  | Fuse_where
  | Push_where_below_select
  | Fuse_distinct
  | Reorder_join
  | Fuse_select
  | Fuse_select_into_join

let rule_name = function
  | Fuse_where -> "fuse_where"
  | Push_where_below_select -> "push_where_below_select"
  | Fuse_distinct -> "fuse_distinct"
  | Reorder_join -> "reorder_join"
  | Fuse_select -> "fuse_select"
  | Fuse_select_into_join -> "fuse_select_into_join"

(* The exact rules preserve released measurements bit for bit (given the
   canonical Wdata/Measurement evaluation order): they never regroup a
   floating-point summation — filters move or fuse (weights copied),
   distinct bounds combine through exact min/max, and a join swap only
   commutes the two operands of IEEE [+.] and [*.].  The remaining two
   rules are algebraic: they collapse a two-stage accumulation into one,
   which is the same real number but can differ in the last ulps, so they
   are opt-in. *)
let exact_rules = [ Fuse_where; Push_where_below_select; Fuse_distinct; Reorder_join ]
let all_rules = exact_rules @ [ Fuse_select; Fuse_select_into_join ]

let fires : (rule, int) Hashtbl.t = Hashtbl.create 8

let optimizer_fires () =
  locked (fun () ->
      List.filter_map
        (fun r ->
          match Hashtbl.find_opt fires r with
          | Some n -> Some (rule_name r, n)
          | None -> None)
        all_rules)

(* The plan cache: canonical hash (plus the rule set) -> optimized root.
   Because the canonical hash ignores closures, each entry also records
   the root id it was computed for and only matches on both — a
   hash-equal plan with different closures re-optimizes and gets its own
   entry. *)
let plan_cache : (string, (int * ex) list ref) Hashtbl.t = Hashtbl.create 64
let cache_hits = ref 0
let cache_misses = ref 0
let plan_cache_stats () = locked (fun () -> (!cache_hits, !cache_misses))

let rules_tag rules =
  String.concat "," (List.sort_uniq compare (List.map rule_name rules))

let optimize ?(rules = exact_rules) (root : 'a t) : 'a t =
  locked @@ fun () ->
  let key = canonical_hash0 root ^ "|" ^ rules_tag rules in
  let entries =
    match Hashtbl.find_opt plan_cache key with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add plan_cache key l;
        l
  in
  match List.assoc_opt root.id !entries with
  | Some (Ex n) ->
      incr cache_hits;
      (Obj.magic (n : _ t) : 'a t)
  | None ->
      incr cache_misses;
      let on r = List.mem r rules in
      let fire r = Hashtbl.replace fires r (1 + Option.value ~default:0 (Hashtbl.find_opt fires r)) in
      (* Consumer counts are snapshotted before any rewriting: interning
         rewritten parents bumps the live counters, and cost guards must
         judge sharing as it stood in the submitted plan.  [refof] maps
         an optimized node back to its original's snapshot; nodes minted
         by the rewrites themselves fall through to the live counter. *)
      let snap : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let rec presnap : ex -> unit =
       fun (Ex c) ->
        if not (Hashtbl.mem snap c.id) then begin
          Hashtbl.add snap c.id c.consumers;
          List.iter presnap (children c)
        end
      in
      presnap (Ex root);
      let refmap : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let refof : type x. x t -> int =
       fun c ->
        match Hashtbl.find_opt snap c.id with
        | Some n -> n
        | None -> (
            match Hashtbl.find_opt refmap c.id with
            | Some n -> n
            | None -> c.consumers)
      in
      let memo : (int, ex) Hashtbl.t = Hashtbl.create 64 in
      let rec opt : type x. x t -> x t =
       fun c ->
        match Hashtbl.find_opt memo c.id with
        | Some (Ex n) -> (Obj.magic (n : _ t) : x t)
        | None ->
            let c' = rebuild c in
            let c'' = rewrite c' in
            Hashtbl.replace memo c.id (Ex c'');
            Hashtbl.replace memo c''.id (Ex c'');
            c''
      and rebuild : type x. x t -> x t =
       fun c ->
        let remap : type y. y t -> y t -> y t =
         fun u u' ->
          if u' != u then
            Hashtbl.replace refmap u'.id
              (max
                 (Option.value ~default:0 (Hashtbl.find_opt refmap u'.id))
                 (refof u));
          u'
        in
        match c.shape with
        | Source _ -> c
        | Select (f, u) ->
            let u' = remap u (opt u) in
            if u' == u then c else cons0 (Select (f, u'))
        | Where (p, u) ->
            let u' = remap u (opt u) in
            if u' == u then c else cons0 (Where (p, u'))
        | Select_many (f, u) ->
            let u' = remap u (opt u) in
            if u' == u then c else cons0 (Select_many (f, u'))
        | Select_many_list (f, u) ->
            let u' = remap u (opt u) in
            if u' == u then c else cons0 (Select_many_list (f, u'))
        | Group_by (k, r, u) ->
            let u' = remap u (opt u) in
            if u' == u then c else cons0 (Group_by (k, r, u'))
        | Distinct (b, u) ->
            let u' = remap u (opt u) in
            if u' == u then c else cons0 (Distinct (b, u'))
        | Shave (f, u) ->
            let u' = remap u (opt u) in
            if u' == u then c else cons0 (Shave (f, u'))
        | Shave_const (w, u) ->
            let u' = remap u (opt u) in
            if u' == u then c else cons0 (Shave_const (w, u'))
        | Concat (a, b) ->
            let a' = remap a (opt a) and b' = remap b (opt b) in
            if a' == a && b' == b then c else cons0 (Concat (a', b'))
        | Except (a, b) ->
            let a' = remap a (opt a) and b' = remap b (opt b) in
            if a' == a && b' == b then c else cons0 (Except (a', b'))
        | Union (a, b) ->
            let a' = remap a (opt a) and b' = remap b (opt b) in
            if a' == a && b' == b then c else cons0 (Union (a', b'))
        | Intersect (a, b) ->
            let a' = remap a (opt a) and b' = remap b (opt b) in
            if a' == a && b' == b then c else cons0 (Intersect (a', b'))
        | Join (kl, kr, r, a, b) ->
            let a' = remap a (opt a) and b' = remap b (opt b) in
            if a' == a && b' == b then c else cons0 (Join (kl, kr, r, a', b'))
      and rewrite : type x. x t -> x t =
       fun c ->
        match c.shape with
        | Where (p, inner) -> (
            match inner.shape with
            | Where (q, u) when on Fuse_where && refof inner <= 1 ->
                fire Fuse_where;
                rewrite (cons0 (Where ((fun x -> q x && p x), u)))
            | Select (f, u) when on Push_where_below_select && refof inner <= 1 ->
                fire Push_where_below_select;
                let pushed = rewrite (cons0 (Where ((fun x -> p (f x)), u))) in
                rewrite (cons0 (Select (f, pushed)))
            | _ -> c)
        | Distinct (b1, inner) -> (
            match inner.shape with
            | Distinct (b2, u) when on Fuse_distinct && refof inner <= 1 ->
                fire Fuse_distinct;
                let v = Option.value ~default:1.0 in
                rewrite (cons0 (Distinct (Some (Float.min (v b1) (v b2)), u)))
            | _ -> c)
        | Select (f, inner) -> (
            match inner.shape with
            | Select (g, u) when on Fuse_select && refof inner <= 1 ->
                fire Fuse_select;
                rewrite (cons0 (Select ((fun x -> f (g x)), u)))
            | Join (kl, kr, r, a, b)
              when on Fuse_select_into_join && refof inner <= 1 ->
                fire Fuse_select_into_join;
                rewrite (cons0 (Join (kl, kr, (fun x y -> f (r x y)), a, b)))
            | _ -> c)
        | Join (kl, kr, r, a, b)
          when on Reorder_join && estimate0 b < estimate0 a ->
            fire Reorder_join;
            rewrite (cons0 (Join (kr, kl, (fun y x -> r x y), b, a)))
        | _ -> c
      in
      let optimized = opt root in
      entries := (root.id, Ex optimized) :: !entries;
      optimized

(* ---------- Lowering ---------- *)

module type LOWERING = sig
  type 'a target
  type ctx

  val create : unit -> ctx
  val bind : ctx -> 'a t -> 'a target -> unit
  val lower : ctx -> 'a t -> 'a target
  val nodes_built : ctx -> int
  val nodes_shared : ctx -> int
end

module Lower (L : Lang.S) = struct
  type 'a target = 'a L.t

  (* Heterogeneous entries: the node's runtime type witness lets us
     recover the lowered value at its original type on memo hits, without
     any unsafe casts. *)
  type entry = E : 'x Type.Id.t * 'x L.t -> entry

  type ctx = {
    bindings : (int, entry) Hashtbl.t; (* source node id -> bound input *)
    memo : (int, entry) Hashtbl.t; (* node id -> lowered value *)
    mutable built : int;
    mutable shared : int;
  }

  let create () =
    { bindings = Hashtbl.create 16; memo = Hashtbl.create 64; built = 0; shared = 0 }

  let recover : type a. a Type.Id.t -> entry -> a L.t =
   fun tid (E (tid', v)) ->
    match Type.Id.provably_equal tid' tid with
    | Some Type.Equal -> v
    | None -> assert false (* ids are unique, so witnesses always match *)

  let bind ctx (c : 'a t) (v : 'a L.t) =
    (match c.shape with
    | Source _ -> ()
    | _ ->
        invalid_arg
          (Printf.sprintf "Plan.bind: node #%d (%s) is not a source" c.id (operator c)));
    if Hashtbl.length ctx.memo > 0 then
      invalid_arg
        (Printf.sprintf
           "Plan.bind: source #%d bound after lowering began — already-lowered \
            nodes would keep reading the old binding; bind every source before \
            the first lower"
           c.id);
    Hashtbl.replace ctx.bindings c.id (E (c.tid, v))

  let lower ctx root =
    let rec go : type x. x t -> x L.t =
     fun c ->
      match Hashtbl.find_opt ctx.memo c.id with
      | Some entry ->
          ctx.shared <- ctx.shared + 1;
          recover c.tid entry
      | None ->
          let v : x L.t =
            match c.shape with
            | Source name -> (
                match Hashtbl.find_opt ctx.bindings c.id with
                | Some entry -> recover c.tid entry
                | None ->
                    invalid_arg
                      (Printf.sprintf "Plan.lower: unbound source #%d (%s)" c.id name))
            | Select (f, u) -> L.select f (go u)
            | Where (p, u) -> L.where p (go u)
            | Select_many (f, u) -> L.select_many f (go u)
            | Select_many_list (f, u) -> L.select_many_list f (go u)
            | Concat (a, b) -> L.concat (go a) (go b)
            | Except (a, b) -> L.except (go a) (go b)
            | Union (a, b) -> L.union (go a) (go b)
            | Intersect (a, b) -> L.intersect (go a) (go b)
            | Join (kl, kr, reduce, a, b) -> L.join ~kl ~kr ~reduce (go a) (go b)
            | Group_by (key, reduce, u) -> L.group_by ~key ~reduce (go u)
            | Distinct (bound, u) -> L.distinct ?bound (go u)
            | Shave (f, u) -> L.shave f (go u)
            | Shave_const (w, u) -> L.shave_const w (go u)
          in
          ctx.built <- ctx.built + 1;
          Hashtbl.replace ctx.memo c.id (E (c.tid, v));
          v
    in
    go root

  let nodes_built ctx = ctx.built
  let nodes_shared ctx = ctx.shared
end
