module Dataflow = Wpinq_dataflow.Dataflow

type 'a t = 'a Dataflow.node
type 'a collection = 'a t
type 'a handle = 'a Dataflow.Input.t

let select = Dataflow.select
let where = Dataflow.where
let select_many = Dataflow.select_many
let select_many_list = Dataflow.select_many_list
let concat = Dataflow.concat
let except = Dataflow.except
let union = Dataflow.union
let intersect = Dataflow.intersect
let join = Dataflow.join
let group_by = Dataflow.group_by
let distinct = Dataflow.distinct
let shave = Dataflow.shave
let shave_const = Dataflow.shave_const

let input engine =
  let i = Dataflow.Input.create engine in
  (i, Dataflow.Input.node i)

let feed = Dataflow.Input.feed
let current = Dataflow.Input.current
let node n = n

module Plans = struct
  module L = Plan.Lower (struct
    type nonrec 'a t = 'a t

    let select = select
    let where = where
    let select_many = select_many
    let select_many_list = select_many_list
    let concat = concat
    let except = except
    let union = union
    let intersect = intersect
    let join = join
    let group_by = group_by
    let distinct = distinct
    let shave = shave
    let shave_const = shave_const
  end)

  type ctx = { lctx : L.ctx; engine : Dataflow.Engine.t; mutable reported : int }

  let create engine = { lctx = L.create (); engine; reported = 0 }
  let bind ctx p v = L.bind ctx.lctx p v

  (* Memo hits inside the shared lowering context are physical dataflow
     nodes *not* rebuilt; credit them to the engine's [nodes_shared]
     counter incrementally so interleaved lowerings stay accurate. *)
  let lower ctx p =
    let v = L.lower ctx.lctx p in
    let shared = L.nodes_shared ctx.lctx in
    Dataflow.Engine.add_shared_nodes ctx.engine (shared - ctx.reported);
    ctx.reported <- shared;
    v

  let nodes_built ctx = L.nodes_built ctx.lctx
  let nodes_shared ctx = L.nodes_shared ctx.lctx
end

module Target = struct
  (* The distance is maintained over a growing "tracked" set: the records
     the measurement materialized, plus any record that has ever appeared in
     the synthetic output.  A record entering the tracked set lazily (its
     observation drawn on first sight) shifts the distance by the constant
     [-|m x|] relative to the mathematical ‖Q(A) − m‖₁ over that record;
     constants cancel in energy differences, which is all MCMC consumes.
     [recompute] re-derives the same convention from scratch. *)
  type t = {
    epsilon : float;
    distance : unit -> float;
    audit_distance : unit -> float;
    recompute : unit -> unit;
    inject : float -> unit;
  }

  let create (type a) (q : a collection) (m : a Measurement.t) =
    let sink = Dataflow.Sink.attach q in
    let engine = Dataflow.Sink.engine sink in
    (* Tracked state is indexed by the sink's interned record ids —
       struct-of-arrays instead of a record-keyed hashtable: [obs] holds
       the drawn observation, [status] distinguishes untracked (0),
       baseline (1: observed at measurement time, whose |0 - m x| is part
       of the initial distance) and lazily-drawn (2) records.  Intern ids
       are monotone and never recycled, so direct indexing needs no
       hashing and leaves no abort residue to iterate over. *)
    let obs = ref [||] in
    let status = ref Bytes.empty in
    let ensure id =
      let cap = Bytes.length !status in
      if id >= cap then begin
        let cap' = max 64 (max (2 * cap) (id + 1)) in
        let o = Array.make cap' 0.0 and s = Bytes.make cap' '\000' in
        Array.blit !obs 0 o 0 cap;
        Bytes.blit !status 0 s 0 cap;
        obs := o;
        status := s
      end
    in
    (* [from_scratch] and [audit_distance] must not iterate the sink's
       state directly: its entry order keeps residue from aborted
       speculations, which would make the recomputed distance's rounding
       order depend on abort history.  The dense [order] array records
       committed first-seen order of ids instead; the speculative undo
       pops it exactly. *)
    let order = ref ([||] : int array) in
    let tracked_n = ref 0 in
    let note id =
      let n = !tracked_n in
      let cap = Array.length !order in
      if n = cap then begin
        let arr = Array.make (if cap = 0 then 64 else 2 * cap) 0 in
        Array.blit !order 0 arr 0 n;
        order := arr
      end;
      !order.(n) <- id;
      tracked_n := n + 1
    in
    let distance = ref 0.0 in
    List.iter
      (fun (x, v) ->
        let id = Dataflow.Sink.intern_id sink x in
        ensure id;
        !obs.(id) <- v;
        Bytes.set !status id '\001';
        note id;
        distance := !distance +. Float.abs v)
      (Measurement.observed m);
    Dataflow.Sink.on_change_id sink (fun id x ~old_weight ~new_weight ->
        ensure id;
        let obs_x =
          if Bytes.get !status id <> '\000' then !obs.(id)
          else begin
            (* A record first seen during a speculative propagation draws
               its observation under the undo log: an abort removes it
               from the tracked set and rewinds the measurement's private
               noise cursor, so the tracked set and the noise stream are
               pure functions of the committed walk prefix.  (A replica
               engine evaluating a discarded lookahead speculation
               therefore leaves no trace, which is what keeps K replicas
               bit-identical to each other and to the serial walk.) *)
            (if Dataflow.Engine.speculating engine then
               let mk = Measurement.mark m in
               Dataflow.Engine.log_undo engine (fun () ->
                   Bytes.set !status id '\000';
                   decr tracked_n;
                   Measurement.undo_draw m x mk));
            let v = Measurement.value m x in
            !obs.(id) <- v;
            Bytes.set !status id '\002';
            note id;
            v
          end
        in
        (* Enroll the maintained distance in the speculative rollback: the
           undo log restores the pre-speculation value directly instead of
           reversing the arithmetic, so an abort is bit-exact. *)
        (if Dataflow.Engine.speculating engine then
           let d0 = !distance in
           Dataflow.Engine.log_undo engine (fun () -> distance := d0));
        distance := !distance +. Float.abs (new_weight -. obs_x) -. Float.abs (old_weight -. obs_x));
    let from_scratch () =
      let d = ref 0.0 in
      for i = 0 to !tracked_n - 1 do
        let id = !order.(i) in
        let v = !obs.(id) in
        let q = Dataflow.Sink.weight_id sink id in
        d := !d +. Float.abs (q -. v);
        if Bytes.get !status id = '\002' then d := !d -. Float.abs v
      done;
      !d
    in
    let recompute () = distance := from_scratch () in
    (* The convention-free ‖Q(A) − m‖₁ over the tracked set, for comparing
       two *different* target instances over the same measurement: the
       lazy-record [-|m x|] shift depends on which records were observed at
       construction, so maintained distances of a live target and a freshly
       attached replica differ by a constant even when their sinks agree.
       Every tracked record is memoized in [m], so both instances track the
       same set and this sum is directly comparable. *)
    let audit_distance () =
      let d = ref 0.0 in
      for i = 0 to !tracked_n - 1 do
        let id = !order.(i) in
        d := !d +. Float.abs (Dataflow.Sink.weight_id sink id -. !obs.(id))
      done;
      !d
    in
    (* Enroll the maintained distance in the engine's self-audit: the hook
       re-derives it from the sink without mutating anything, so a clean
       audit leaves the walk bit-identical. *)
    let op = Dataflow.Engine.fresh_op_id engine in
    Dataflow.Engine.register_audit engine (fun ~tolerance ->
        let cell = Printf.sprintf "target#%d.distance" op in
        match
          Dataflow.Audit.check ~tolerance ~cell ~maintained:!distance ~recomputed:(from_scratch ())
        with
        | None -> (1, [])
        | Some d -> (1, [ d ]));
    {
      epsilon = Measurement.epsilon m;
      distance = (fun () -> !distance);
      audit_distance;
      recompute;
      inject = (fun dw -> distance := !distance +. dw);
    }

  let of_plan ctx p m = create (Plans.lower ctx p) m
  let distance t = t.distance ()
  let audit_distance t = t.audit_distance ()
  let weighted_distance t = t.epsilon *. t.distance ()
  let epsilon t = t.epsilon
  let recompute t = t.recompute ()
  let inject_drift t dw = t.inject dw
  let energy targets = List.fold_left (fun acc t -> acc +. weighted_distance t) 0.0 targets
end
