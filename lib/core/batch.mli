(** Whole-input execution of wPINQ queries over protected data.

    A {!t} pairs a lazily-evaluated weighted dataset with a static record of
    how many times each protected source appears in the query plan.  The
    use-count is what sequential composition needs: a query that mentions a
    source [k] times and is aggregated with an ε-DP [NoisyCount] is [k·ε]-DP
    for that source (paper, Section 2.3), so {!noisy_count} debits [k·ε]
    from each source's budget before releasing anything.

    Laziness means building a plan is free; evaluation happens at the first
    aggregation (and is shared: diamonds in the plan evaluate once). *)

type 'a t

include Lang.S with type 'a t := 'a t

val source : budget:Budget.t -> ('a * float) list -> 'a t
(** [source ~budget rows] declares a protected weighted dataset (duplicate
    records accumulate).  Every occurrence of the returned collection in a
    query plan counts as one use of [budget]. *)

val source_records : budget:Budget.t -> 'a list -> 'a t
(** Like {!source} with every listed occurrence given weight [1.0]. *)

val public : ('a * float) list -> 'a t
(** A collection with no privacy cost (auxiliary public data). *)

val uses : 'a t -> (Budget.t * int) list
(** How many times each protected source appears in the plan. *)

val charge : ?label:string -> epsilon:float -> 'a t -> unit
(** [charge ~epsilon c] debits [uses × epsilon] from every source budget
    in the plan, checking every budget before spending any, so a failed
    charge (raising {!Budget.Exhausted}) normally leaves them all
    untouched.  (The check is per-budget: in the corner case of a query
    joining two sibling parts of one {!partition}, a later sibling's
    charge can still fail after an earlier one succeeded — the exception
    then still prevents any release, it merely burns budget
    conservatively.)  This is the accounting step every aggregation
    mechanism performs before releasing output. *)

val partition : keys:'k list -> key:('a -> 'k) -> 'a t -> ('k * 'a t) list
(** PINQ's [Partition]: splits a collection into the disjoint parts
    selected by [keys] (records mapping to unlisted keys are dropped).
    Because the parts are disjoint, aggregations against different parts
    compose {e in parallel}: each source budget is debited the {e maximum}
    spent across the parts of this partition, not the sum
    ({!Budget.parallel_child}).  Partitioning itself costs nothing. *)

val noisy_count :
  rng:Wpinq_prng.Prng.t -> epsilon:float -> 'a t -> 'a Measurement.t
(** The differentially-private aggregation: charges [uses × epsilon] to each
    source's budget (raising {!Budget.Exhausted} and releasing nothing if
    any lacks funds), then releases per-record counts perturbed with
    [Laplace(1/epsilon)] noise. *)

val privacy_cost : epsilon:float -> 'a t -> (string * float) list
(** [privacy_cost ~epsilon c] previews what {!noisy_count} would charge:
    the per-source ε cost of aggregating this plan, by source name. *)

val unsafe_value : 'a t -> 'a Wpinq_weighted.Wdata.t
(** The exact, unnoised contents.  {b Not differentially private} — bypasses
    the budget entirely.  Exists for tests, ground-truth columns in the
    experiment harness, and debugging; never call it on real secrets. *)

module Plans : Plan.LOWERING with type 'a target = 'a t
(** Lowering of reified {!Plan}s into batch collections.  Bind each plan
    source to a {!source} (or {!public}) collection, then [lower] the
    measured plans through one shared context: plan nodes reached by several
    measurements lower to {e one} lazy dataset, evaluated once, and the
    resulting collection's {!uses} equals {!Plan.uses} of the plan
    (property-tested) — so the budget debit is derived from the plan DAG. *)
