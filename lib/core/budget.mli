(** Privacy budgets.

    Every protected dataset owns a budget: the total ε it is willing to
    spend across all differentially-private aggregations (sequential
    composition, paper Section 2.1).  Aggregations charge the budget before
    releasing anything; once the budget is exhausted, further measurements
    raise {!Exhausted} and release nothing. *)

type t

type exhausted = { name : string; requested : float; remaining : float }
(** The denial report of a failed charge: which budget refused, what was
    asked, what it had left. *)

exception Exhausted of { name : string; requested : float; remaining : float }
(** Raised by {!charge} when a request would overdraw the budget. *)

val create : name:string -> float -> t
(** [create ~name total] makes a budget of [total] ε for the dataset called
    [name].  [total] must be finite and non-negative. *)

val name : t -> string
val total : t -> float
val spent : t -> float
val remaining : t -> float

val charge : ?label:string -> t -> float -> unit
(** [charge ?label b eps] debits [eps], recording [label] in the audit
    log.  Raises {!Exhausted} — {e before} spending anything — if
    [eps > remaining b] (with a tiny tolerance for rounding).  [eps] must
    be finite and non-negative: NaN and infinities raise
    [Invalid_argument] instead of silently poisoning the accounting. *)

val try_charge : ?label:string -> t -> float -> (unit, exhausted) result
(** Non-raising {!charge}: [Error denial] where [charge] would raise
    {!Exhausted}, with every budget untouched.  Invalid epsilon (NaN,
    infinite, negative) is still a programming error and raises
    [Invalid_argument]. *)

val log : t -> (string * float) list
(** Audit log of successful charges, oldest first. *)

val save : t -> Buffer.t -> unit
(** Serializes a {e root} budget — name, total, spent, and the full audit
    log — for checkpointing.  Only released accounting metadata is written;
    raises [Invalid_argument] on a parallel-composition child (children are
    transient per-partition views). *)

val load : Wpinq_persist.Persist.Codec.reader -> t
(** Rebuilds a root budget written by {!save}.  Raises
    [Wpinq_persist.Persist.Codec.Decode_error] on malformed input. *)

(** {1 Parallel composition}

    Queries over {e disjoint} parts of a dataset compose in parallel
    (McSherry, PINQ): the dataset's exposure is the {e maximum} spent on
    any one part, not the sum.  A {!group} represents one partitioning of
    a parent budget; each part charges its own {!parallel_child}, and the
    parent is debited only when some child's cumulative spend exceeds the
    group's previous maximum. *)

type group

val parallel_group : t -> group
(** A fresh parallel account over [parent] (one per Partition operation). *)

val parallel_child : ?allocation:float -> group -> name:string -> t
(** A child budget for one part.  [charge child eps] forwards
    [max 0 (child_spent + eps − group_max)] to the parent — checking the
    parent {e before} recording anything, so exhaustion is atomic.  A
    child's [remaining] reflects what it could still spend given the
    parent's state and the group maximum.

    [allocation], if given, additionally caps the child's cumulative
    spend: a charge beyond the cap is denied ({!Exhausted} names the
    child) even when the group still has headroom.  The allocation is
    validated at creation exactly as {!try_charge} validates ε — NaN,
    infinite, or negative values raise [Invalid_argument] instead of
    constructing an account whose every later charge decision is
    silently poisoned. *)
