(** Privacy budgets.

    Every protected dataset owns a budget: the total ε it is willing to
    spend across all differentially-private aggregations (sequential
    composition, paper Section 2.1).  Aggregations charge the budget before
    releasing anything; once the budget is exhausted, further measurements
    raise {!Exhausted} and release nothing. *)

type t

type exhausted = { name : string; requested : float; remaining : float }
(** The denial report of a failed charge: which budget refused, what was
    asked, what it had left. *)

exception Exhausted of { name : string; requested : float; remaining : float }
(** Raised by {!charge} when a request would overdraw the budget. *)

val create : name:string -> float -> t
(** [create ~name total] makes a budget of [total] ε for the dataset called
    [name].  [total] must be finite and non-negative. *)

val name : t -> string
val total : t -> float
val spent : t -> float
val remaining : t -> float

val charge : ?label:string -> t -> float -> unit
(** [charge ?label b eps] debits [eps], recording [label] in the audit
    log.  Raises {!Exhausted} — {e before} spending anything — if
    [eps > remaining b] (with a tiny tolerance for rounding).  [eps] must
    be finite and non-negative: NaN and infinities raise
    [Invalid_argument] instead of silently poisoning the accounting. *)

val try_charge : ?label:string -> t -> float -> (unit, exhausted) result
(** Non-raising {!charge}: [Error denial] where [charge] would raise
    {!Exhausted}, with every budget untouched.  Invalid epsilon (NaN,
    infinite, negative) is still a programming error and raises
    [Invalid_argument]. *)

val log : t -> (string * float) list
(** Audit log of successful charges, oldest first. *)

val save : t -> Buffer.t -> unit
(** Serializes a {e root} budget — name, total, spent, and the full audit
    log — for checkpointing.  Only released accounting metadata is written;
    raises [Invalid_argument] on a parallel-composition child (children are
    transient per-partition views). *)

val load : Wpinq_persist.Persist.Codec.reader -> t
(** Rebuilds a root budget written by {!save}.  Raises
    [Wpinq_persist.Persist.Codec.Decode_error] on malformed input. *)

(** {1 Parallel composition}

    Queries over {e disjoint} parts of a dataset compose in parallel
    (McSherry, PINQ): the dataset's exposure is the {e maximum} spent on
    any one part, not the sum.  A {!group} represents one partitioning of
    a parent budget; each part charges its own {!parallel_child}, and the
    parent is debited only when some child's cumulative spend exceeds the
    group's previous maximum. *)

type group

val parallel_group : t -> group
(** A fresh parallel account over [parent] (one per Partition operation). *)

val parallel_child : ?allocation:float -> group -> name:string -> t
(** A child budget for one part.  [charge child eps] forwards
    [max 0 (child_spent + eps − group_max)] to the parent — checking the
    parent {e before} recording anything, so exhaustion is atomic.  A
    child's [remaining] reflects what it could still spend given the
    parent's state and the group maximum.

    [allocation], if given, additionally caps the child's cumulative
    spend: a charge beyond the cap is denied ({!Exhausted} names the
    child) even when the group still has headroom.  The allocation is
    validated at creation exactly as {!try_charge} validates ε — NaN,
    infinite, or negative values raise [Invalid_argument] instead of
    constructing an account whose every later charge decision is
    silently poisoned. *)

(** {1 Epoch schedules}

    Continual observation re-releases measurements on a cadence: each
    re-release epoch gets a fixed ε allowance, and the stream's total
    exposure is bounded by [per_epoch × epochs] (sequential composition
    across epochs).  A {!Schedule.t} is the accounting object for that
    cadence: it grants one allowance per epoch, refuses further grants
    once the schedule is exhausted (a typed refusal, not an exception —
    the stream keeps running, it just stops releasing), and records how
    each epoch settled.  A degraded epoch — skipped for lateness or
    merged after repeated failure — settles its unspent allowance per
    {!Schedule.policy}: rolled forward into the next epoch's allowance,
    or forfeited outright.  Both are typed and logged, so the books
    always satisfy
    [spent + carried + forfeited + outstanding = granted]. *)

module Schedule : sig
  type t

  type policy = Roll_forward | Forfeit
      (** What happens to the unspent part of a settled allowance:
          [Roll_forward] adds it to the next grant, [Forfeit] burns it.
          Forfeit gives the tighter per-epoch exposure bound ([per_epoch]
          per release, always); roll-forward preserves total utility
          across degraded epochs at the cost of a lumpier release. *)

  type refusal = { name : string; epoch : int; epochs : int }
      (** A typed refusal: the schedule's [epochs] grants are all
          issued, so [epoch] gets no allowance. *)

  type entry =
    | Completed of { epoch : int; granted : float; spent : float }
    | Degraded of {
        epoch : int;
        granted : float;
        spent : float;
        rolled : float;
        forfeited : float;
      }
    | Refused of { epoch : int }
        (** One settled epoch in the audit log.  [Degraded] records both
            dispositions of the unspent allowance — exactly one is
            nonzero, per the schedule's policy. *)

  type books = {
    granted : float;  (** fresh ε issued: [per_epoch × granted epochs] *)
    spent : float;  (** settled spend across all epochs *)
    carried : float;  (** unspent ε rolled into the next grant *)
    forfeited : float;  (** unspent ε burned by policy *)
    outstanding : float;  (** granted but not yet settled *)
  }

  val create : name:string -> per_epoch:float -> epochs:int -> policy:policy -> t
  (** [per_epoch] must be finite and non-negative; [epochs] non-negative. *)

  val next : t -> epoch:int -> (float, refusal) result
  (** Grant epoch [epoch] its allowance ([per_epoch] plus any carried
      remainder), or refuse if all [epochs] grants are issued.  The grant
      is outstanding until settled by {!complete} or {!degrade}; granting
      over an outstanding epoch raises [Invalid_argument] (a supervisor
      bug, not an operational condition). *)

  val complete : t -> epoch:int -> spent:float -> unit
  (** Settle the outstanding epoch as completed, having spent [spent] of
      its allowance (≤ allowance, up to rounding slack — more raises
      [Invalid_argument]).  The unspent remainder follows the policy. *)

  val degrade : t -> epoch:int -> spent:float -> unit
  (** Settle the outstanding epoch as degraded (late, or failed after
      retries): [spent] was already released (measurement noise is spent
      the moment it is drawn, even if the fit never finished) and the
      remainder rolls or is forfeited per policy. *)

  val refuse : t -> epoch:int -> unit
  (** Record a {!type-refusal} in the log (no allowance is outstanding). *)

  val name : t -> string
  val per_epoch : t -> float
  val epochs : t -> int
  val policy : t -> policy
  val granted_epochs : t -> int

  val books : t -> books

  val overspend : t -> float
  (** [max 0 (spent − granted)] — the zero-overspend safety check the
      fault matrix and bench assert after every recovery. *)

  val log : t -> entry list
  (** Settled epochs, oldest first. *)

  val save : t -> Buffer.t -> unit
  (** Full serialization (configuration, counters, audit log) for the
      supervisor's durable state. *)

  val load : Wpinq_persist.Persist.Codec.reader -> t
  (** Rebuilds a schedule written by {!save}.  Raises
      [Wpinq_persist.Persist.Codec.Decode_error] on malformed input. *)
end
