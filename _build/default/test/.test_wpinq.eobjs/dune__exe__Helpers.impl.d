test/helpers.ml: Alcotest Float Format List Printf QCheck String Wpinq_prng Wpinq_weighted
