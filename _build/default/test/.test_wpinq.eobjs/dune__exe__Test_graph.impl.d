test/test_graph.ml: Alcotest Array Filename Float Fun Helpers List Sys Wpinq_graph Wpinq_prng
