test/test_data.ml: Alcotest List Printf Wpinq_data Wpinq_graph Wpinq_prng
