test/test_edge_cases.ml: Alcotest Array Filename Float Format Fun Helpers List String Sys Wpinq_core Wpinq_dataflow Wpinq_graph Wpinq_infer Wpinq_postprocess Wpinq_prng Wpinq_queries Wpinq_weighted
