test/test_dataflow.ml: Alcotest Format Helpers List QCheck QCheck_alcotest String Wpinq_dataflow Wpinq_weighted
