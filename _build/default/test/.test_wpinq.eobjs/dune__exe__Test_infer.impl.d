test/test_infer.ml: Alcotest Array Float Helpers List Printf Wpinq_core Wpinq_graph Wpinq_infer Wpinq_prng Wpinq_queries
