test/test_weighted.ml: Alcotest Format Helpers List QCheck QCheck_alcotest String Wpinq_weighted
