test/test_queries.ml: Alcotest Array Fmt Format Hashtbl Helpers List Option Printf Wpinq_core Wpinq_dataflow Wpinq_graph Wpinq_prng Wpinq_queries Wpinq_weighted
