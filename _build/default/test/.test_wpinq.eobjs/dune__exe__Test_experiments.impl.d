test/test_experiments.ml: Alcotest Wpinq_experiments
