test/test_postprocess.ml: Alcotest Array Float Helpers List Printf QCheck QCheck_alcotest Wpinq_postprocess Wpinq_prng
