test/test_wpinq.mli:
