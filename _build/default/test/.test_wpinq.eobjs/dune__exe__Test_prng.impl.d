test/test_prng.ml: Alcotest Array Float List Wpinq_prng
