test/test_core.ml: Alcotest Float Format Hashtbl Helpers List Option Wpinq_core Wpinq_dataflow Wpinq_prng Wpinq_weighted
