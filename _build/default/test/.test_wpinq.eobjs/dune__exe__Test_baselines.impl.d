test/test_baselines.ml: Alcotest Array Helpers List Printf Wpinq_baselines Wpinq_core Wpinq_graph Wpinq_prng
