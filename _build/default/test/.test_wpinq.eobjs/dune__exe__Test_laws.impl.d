test/test_laws.ml: Alcotest Float Helpers List QCheck QCheck_alcotest Wpinq_core Wpinq_prng Wpinq_weighted
