module Graph = Wpinq_graph.Graph
module Gen = Wpinq_graph.Gen
module Rewire = Wpinq_graph.Rewire
module Fenwick = Wpinq_graph.Fenwick
module Io = Wpinq_graph.Io
module Prng = Wpinq_prng.Prng
open Helpers

let k4 () = Graph.of_edges [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
let c5 () = Graph.of_edges [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ]
let c4 () = Graph.of_edges [ (0, 1); (1, 2); (2, 3); (3, 0) ]
let star n = Graph.of_edges (List.init n (fun i -> (0, i + 1)))

let test_construction () =
  let g = Graph.of_edges [ (0, 1); (1, 0); (1, 1); (1, 2); (0, 1) ] in
  Alcotest.(check int) "dedup + no loops" 2 (Graph.m g);
  Alcotest.(check int) "n inferred" 3 (Graph.n g);
  Alcotest.(check bool) "has_edge both ways" true (Graph.has_edge g 2 1);
  Alcotest.(check bool) "no loop" false (Graph.has_edge g 1 1);
  let g2 = Graph.of_edges ~n:10 [ (0, 1) ] in
  Alcotest.(check int) "explicit n" 10 (Graph.n g2);
  Alcotest.(check int) "isolated vertex degree" 0 (Graph.degree g2 7)

let test_degrees () =
  let g = star 4 in
  Alcotest.(check int) "hub degree" 4 (Graph.degree g 0);
  Alcotest.(check int) "dmax" 4 (Graph.dmax g);
  Alcotest.(check int) "sum d^2" (16 + 4) (Graph.sum_deg_sq g);
  Alcotest.(check (array int)) "sequence desc" [| 4; 1; 1; 1; 1 |] (Graph.degree_sequence_desc g);
  (* ccdf: 5 vertices of degree > 0, 1 of degree > 1,2,3. *)
  Alcotest.(check (array int)) "ccdf" [| 5; 1; 1; 1 |] (Graph.degree_ccdf g)

let test_directed_edges () =
  let g = c4 () in
  Alcotest.(check int) "2m directed records" 8 (List.length (Graph.directed_edges g));
  Alcotest.(check int) "m undirected" 4 (List.length (Graph.edges g))

let test_triangles () =
  Alcotest.(check int) "K4 triangles" 4 (Graph.triangle_count (k4 ()));
  Alcotest.(check int) "C5 triangles" 0 (Graph.triangle_count (c5 ()));
  Alcotest.(check int) "star triangles" 0 (Graph.triangle_count (star 5));
  let tbd = Graph.triangles_by_degree (k4 ()) in
  Alcotest.(check (list (pair (triple int int int) int))) "K4 TbD" [ ((3, 3, 3), 4) ] tbd

let test_squares () =
  Alcotest.(check int) "C4 squares" 1 (Graph.square_count (c4 ()));
  Alcotest.(check int) "C5 squares" 0 (Graph.square_count (c5 ()));
  Alcotest.(check int) "K4 squares" 3 (Graph.square_count (k4 ()));
  match Graph.squares_by_degree (c4 ()) with
  | [ ((2, 2, 2, 2), 1) ] -> ()
  | other -> Alcotest.failf "unexpected C4 SbD (%d entries)" (List.length other)

let test_square_count_matches_by_degree () =
  let rng = Prng.create 42 in
  for _ = 1 to 10 do
    let g = Gen.erdos_renyi ~n:25 ~m:60 rng in
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 (Graph.squares_by_degree g) in
    Alcotest.(check int) "square totals agree" (Graph.square_count g) total
  done

let test_triangle_count_brute_force () =
  let rng = Prng.create 7 in
  for _ = 1 to 10 do
    let g = Gen.erdos_renyi ~n:20 ~m:50 rng in
    let n = Graph.n g in
    let brute = ref 0 in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        for c = b + 1 to n - 1 do
          if Graph.has_edge g a b && Graph.has_edge g b c && Graph.has_edge g a c then incr brute
        done
      done
    done;
    Alcotest.(check int) "triangles vs brute force" !brute (Graph.triangle_count g)
  done

let test_jdd () =
  let g = star 3 in
  (* 3 edges, all between degree 3 and degree 1. *)
  Alcotest.(check (list (pair (pair int int) int))) "star JDD" [ ((1, 3), 3) ]
    (Graph.joint_degree_counts g)

let test_assortativity () =
  (* Star graphs are maximally disassortative (r = -1). *)
  let r = Graph.assortativity (star 6) in
  check_close ~tol:1e-9 "star r" (-1.0) r;
  (* Two disjoint cliques of different sizes: perfectly assortative. *)
  let clique off k =
    List.concat_map (fun i -> List.init (k - i - 1) (fun j -> (off + i, off + i + j + 1))) (List.init k (fun i -> i))
  in
  let g = Graph.of_edges (clique 0 4 @ clique 4 3) in
  check_close ~tol:1e-9 "cliques r" 1.0 (Graph.assortativity g)

let test_clustering () =
  check_close "K4 clustering" 1.0 (Graph.clustering_coefficient (k4 ()));
  check_close "C5 clustering" 0.0 (Graph.clustering_coefficient (c5 ()))

let test_tbi_signal () =
  (* K3: one triangle, all degrees 2: signal = 3 * (1/2) = 1.5. *)
  let g = Graph.of_edges [ (0, 1); (1, 2); (2, 0) ] in
  check_close "K3 tbi" 1.5 (Graph.tbi_signal g);
  check_close "C5 tbi" 0.0 (Graph.tbi_signal (c5 ()));
  (* K4: 4 triangles, degrees 3: each contributes 3 * 1/3 = 1. *)
  check_close "K4 tbi" 4.0 (Graph.tbi_signal (k4 ()))

(* ---- Fenwick ---- *)

let test_fenwick_prefix_sums () =
  let t = Fenwick.create 10 in
  let reference = Array.make 10 0.0 in
  let rng = Prng.create 3 in
  for _ = 1 to 200 do
    let i = Prng.int rng 10 in
    let w = Prng.float rng 5.0 in
    Fenwick.set t i w;
    reference.(i) <- w;
    let k = Prng.int rng 11 in
    let expect = Array.fold_left ( +. ) 0.0 (Array.sub reference 0 k) in
    check_close ~tol:1e-9 "prefix sum" expect (Fenwick.prefix_sum t k)
  done;
  check_close ~tol:1e-9 "total" (Array.fold_left ( +. ) 0.0 reference) (Fenwick.total t)

let test_fenwick_sample_distribution () =
  let t = Fenwick.create 4 in
  Fenwick.set t 0 1.0;
  Fenwick.set t 1 3.0;
  Fenwick.set t 2 0.0;
  Fenwick.set t 3 6.0;
  let rng = Prng.create 5 in
  let counts = Array.make 4 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Fenwick.sample t rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never sampled" 0 counts.(2);
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check bool) "proportions" true
    (Float.abs (frac 0 -. 0.1) < 0.01
    && Float.abs (frac 1 -. 0.3) < 0.01
    && Float.abs (frac 3 -. 0.6) < 0.01)

(* ---- Generators ---- *)

let test_erdos_renyi () =
  let g = Gen.erdos_renyi ~n:100 ~m:250 (Prng.create 1) in
  Alcotest.(check int) "n" 100 (Graph.n g);
  Alcotest.(check int) "m exact" 250 (Graph.m g)

let test_erdos_renyi_p () =
  let g = Gen.erdos_renyi_p ~n:80 ~p:0.1 (Prng.create 2) in
  let expected = 0.1 *. float_of_int (80 * 79 / 2) in
  Alcotest.(check bool) "m near expectation" true
    (Float.abs (float_of_int (Graph.m g) -. expected) < 60.0)

let test_barabasi_albert () =
  let g = Gen.barabasi_albert ~n:500 ~m:4 (Prng.create 3) in
  Alcotest.(check int) "n" 500 (Graph.n g);
  (* Each of the n - m - 1 arrivals adds ~m edges (minus erased dups). *)
  Alcotest.(check bool) "m near m(n-m)" true
    (Graph.m g > 4 * 450 && Graph.m g <= 4 * 500);
  Alcotest.(check bool) "hub formed" true (Graph.dmax g > 15)

let test_barabasi_albert_alpha_skews () =
  (* Higher alpha concentrates degree: dmax and sum d^2 should rise. *)
  let stat alpha =
    let gs = List.init 3 (fun i -> Gen.barabasi_albert ~n:800 ~m:5 ~alpha (Prng.create (100 + i))) in
    List.fold_left (fun acc g -> acc + Graph.sum_deg_sq g) 0 gs
  in
  let low = stat 1.0 and high = stat 1.4 in
  Alcotest.(check bool) "alpha raises sum d^2" true (high > low)

let test_configuration_model () =
  let degrees = Array.of_list (List.init 60 (fun i -> 1 + (i mod 5))) in
  let g = Gen.configuration_model ~degrees (Prng.create 4) in
  Alcotest.(check int) "n" 60 (Graph.n g);
  (* Erased model: realized degree never exceeds requested, total close. *)
  let requested = Array.fold_left ( + ) 0 degrees in
  let realized = 2 * Graph.m g in
  Array.iteri
    (fun v d -> Alcotest.(check bool) "deg <= requested" true (Graph.degree g v <= d))
    degrees;
  Alcotest.(check bool) "mass mostly preserved" true
    (float_of_int realized > 0.85 *. float_of_int requested)

let test_clustered_generator () =
  let g = Gen.clustered ~n:300 ~community:12 ~p_in:0.6 ~extra:100 (Prng.create 5) in
  Alcotest.(check bool) "many triangles" true (Graph.triangle_count g > 100);
  Alcotest.(check bool) "clustered" true (Graph.clustering_coefficient g > 0.2)

let test_rewire_preserves_degrees_kills_triangles () =
  let g = Gen.clustered ~n:300 ~community:12 ~p_in:0.6 ~extra:100 (Prng.create 6) in
  let r = Rewire.randomize g (Prng.create 7) in
  Alcotest.(check (array int)) "degrees preserved" (Graph.degrees g) (Graph.degrees r);
  Alcotest.(check bool) "triangles collapse" true
    (Graph.triangle_count r * 4 < Graph.triangle_count g)

(* ---- Mutable graphs ---- *)

let test_mutable_swap_roundtrip () =
  let g = Gen.erdos_renyi ~n:50 ~m:120 (Prng.create 8) in
  let mg = Graph.Mutable.of_graph g in
  let rng = Prng.create 9 in
  let original = Graph.degrees g in
  let applied = ref [] in
  for _ = 1 to 500 do
    match Graph.Mutable.propose_swap mg rng with
    | None -> ()
    | Some s ->
        Graph.Mutable.apply mg s;
        applied := s :: !applied
  done;
  Alcotest.(check bool) "some swaps applied" true (List.length !applied > 50);
  Alcotest.(check (array int)) "degrees preserved" original
    (Graph.degrees (Graph.Mutable.to_graph mg));
  (* Undo everything: back to the original edge set. *)
  List.iter (fun s -> Graph.Mutable.apply mg (Graph.Mutable.invert s)) !applied;
  let restored = Graph.Mutable.to_graph mg in
  Alcotest.(check (list (pair int int))) "edges restored"
    (List.sort compare (Graph.edges g))
    (List.sort compare (Graph.edges restored))

let test_mutable_swap_delta () =
  let s =
    Graph.Mutable.{ remove = ((1, 2), (3, 4)); add = ((1, 4), (3, 2)) }
  in
  let d = Graph.Mutable.delta s in
  Alcotest.(check int) "8 record changes" 8 (List.length d);
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 d in
  check_close "weight preserved" 0.0 total;
  Alcotest.(check bool) "contains both orientations" true
    (List.mem ((2, 1), -1.0) d && List.mem ((4, 1), 1.0) d)

let test_io_roundtrip () =
  let g = Gen.erdos_renyi ~n:40 ~m:80 (Prng.create 10) in
  let path = Filename.temp_file "wpinq_graph" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write g path;
      let g' = Io.read path in
      Alcotest.(check int) "n" (Graph.n g) (Graph.n g');
      Alcotest.(check (list (pair int int))) "edges"
        (List.sort compare (Graph.edges g))
        (List.sort compare (Graph.edges g')))

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "degrees/ccdf" `Quick test_degrees;
    Alcotest.test_case "directed edges" `Quick test_directed_edges;
    Alcotest.test_case "triangles" `Quick test_triangles;
    Alcotest.test_case "squares" `Quick test_squares;
    Alcotest.test_case "square count consistency" `Quick test_square_count_matches_by_degree;
    Alcotest.test_case "triangles vs brute force" `Quick test_triangle_count_brute_force;
    Alcotest.test_case "joint degrees" `Quick test_jdd;
    Alcotest.test_case "assortativity" `Quick test_assortativity;
    Alcotest.test_case "clustering" `Quick test_clustering;
    Alcotest.test_case "tbi signal" `Quick test_tbi_signal;
    Alcotest.test_case "fenwick prefix sums" `Quick test_fenwick_prefix_sums;
    Alcotest.test_case "fenwick sampling" `Quick test_fenwick_sample_distribution;
    Alcotest.test_case "erdos-renyi" `Quick test_erdos_renyi;
    Alcotest.test_case "erdos-renyi p" `Quick test_erdos_renyi_p;
    Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
    Alcotest.test_case "barabasi-albert alpha" `Quick test_barabasi_albert_alpha_skews;
    Alcotest.test_case "configuration model" `Quick test_configuration_model;
    Alcotest.test_case "clustered generator" `Quick test_clustered_generator;
    Alcotest.test_case "rewire" `Quick test_rewire_preserves_degrees_kills_triangles;
    Alcotest.test_case "mutable swap roundtrip" `Quick test_mutable_swap_roundtrip;
    Alcotest.test_case "mutable swap delta" `Quick test_mutable_swap_delta;
    Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip;
  ]
