(* Algebraic laws of the weighted-dataset operators, and the composition
   property that underwrites the whole platform: any pipeline of stable
   transformations is stable. *)

module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops
open Helpers

let law ?(count = 300) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let eq = Wdata.equal ~tol:1e-9

let one = wdata_arb ()
let two = QCheck.pair (wdata_arb ()) (wdata_arb ())
let three = QCheck.triple (wdata_arb ()) (wdata_arb ()) (wdata_arb ())

let algebra_suite =
  [
    law "select fusion: select f . select g = select (f.g)" one (fun a ->
        let f x = x mod 3 and g x = x + 1 in
        eq (Ops.select f (Ops.select g a)) (Ops.select (fun x -> f (g x)) a));
    law "where fusion: where p . where q = where (p && q)" one (fun a ->
        let p x = x mod 2 = 0 and q x = x < 5 in
        eq (Ops.where p (Ops.where q a)) (Ops.where (fun x -> p x && q x) a));
    law "concat commutative" two (fun (a, b) -> eq (Ops.concat a b) (Ops.concat b a));
    law "concat associative" three (fun (a, b, c) ->
        eq (Ops.concat a (Ops.concat b c)) (Ops.concat (Ops.concat a b) c));
    law "union commutative" two (fun (a, b) -> eq (Ops.union a b) (Ops.union b a));
    law "union idempotent" one (fun a -> eq (Ops.union a a) a);
    law "intersect commutative" two (fun (a, b) -> eq (Ops.intersect a b) (Ops.intersect b a));
    law "intersect idempotent" one (fun a -> eq (Ops.intersect a a) a);
    law "except self = empty" one (fun a -> Wdata.support_size (Ops.except a a) = 0);
    law "except inverts concat" two (fun (a, b) -> eq (Ops.except (Ops.concat a b) b) a);
    law "union + intersect = concat (min+max=sum)" two (fun (a, b) ->
        eq (Ops.concat (Ops.union a b) (Ops.intersect a b)) (Ops.concat a b));
    law "distinct idempotent" one (fun a -> eq (Ops.distinct a) (Ops.distinct (Ops.distinct a)));
    law "shave then select recovers positive part" one (fun a ->
        let positive = Wdata.filter (fun _ w -> w > 0.0) a in
        eq (Ops.select fst (Ops.shave_const 0.4 a)) positive);
    law "select distributes over concat" two (fun (a, b) ->
        let f x = x mod 4 in
        eq (Ops.select f (Ops.concat a b)) (Ops.concat (Ops.select f a) (Ops.select f b)));
    law "norm after select is preserved for non-negative data"
      (wdata_arb ~signed:false ()) (fun a ->
        Float.abs (Wdata.norm (Ops.select (fun x -> x mod 2) a) -. Wdata.norm a) < 1e-9);
    law "join norm bounded by min of input norms" two (fun (a, b) ->
        (* ‖Join(A,B)‖ = Σ_k |Ak||Bk|/(|Ak|+|Bk|) <= min(‖A‖,‖B‖). *)
        let j = Ops.join ~kl:(fun x -> x mod 2) ~kr:(fun x -> x mod 2) ~reduce:(fun x y -> (x, y)) a b in
        Wdata.norm j <= Float.min (Wdata.norm a) (Wdata.norm b) +. 1e-9);
    law "group_by output norm at most half input (positives)"
      (wdata_arb ~signed:false ()) (fun a ->
        let g = Ops.group_by ~key:(fun x -> x mod 2) ~reduce:(fun l -> List.sort compare l) a in
        Wdata.norm g <= (Wdata.norm a /. 2.0) +. 1e-9);
  ]

(* Random pipelines of unary stable operators: composition must stay
   stable.  Each step is drawn from a small operator menu. *)
let random_pipeline_stable =
  let op_of_code code (d : int Wdata.t) : int Wdata.t =
    match code mod 7 with
    | 0 -> Ops.select (fun x -> (x * 3) mod 7) d
    | 1 -> Ops.where (fun x -> x mod 2 = 0) d
    | 2 -> Ops.select_many (fun x -> List.init (x mod 3) (fun i -> (i + x, 0.8))) d
    | 3 -> Ops.select (fun (k, l) -> k + List.length l)
             (Ops.group_by ~key:(fun x -> x mod 2) ~reduce:(fun l -> List.sort compare l) d)
    | 4 -> Ops.select fst (Ops.shave_const 0.6 d)
    | 5 -> Ops.distinct ~bound:1.2 d
    | _ -> Ops.select (fun (x, _) -> x) (Ops.join ~kl:(fun x -> x mod 2) ~kr:(fun x -> x mod 2)
             ~reduce:(fun x y -> (x, y)) d d)
  in
  let apply codes d = List.fold_left (fun acc code -> op_of_code code acc) d codes in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"random pipelines are stable"
       QCheck.(
         triple
           (list_of_size (QCheck.Gen.int_range 1 5) (int_bound 6))
           (wdata_arb ()) (wdata_arb ()))
       (fun (codes, a, a') ->
         (* Self-joins double the bound: track a use multiplier alongside. *)
         let uses =
           List.fold_left (fun u code -> if code mod 7 = 6 then 2 * u else u) 1 codes
         in
         Wdata.dist (apply codes a) (apply codes a')
         <= (float_of_int uses *. Wdata.dist a a') +. 1e-6))

(* Sequential composition of measurements: spending adds up exactly. *)
let test_sequential_composition () =
  let module Budget = Wpinq_core.Budget in
  let module Batch = Wpinq_core.Batch in
  let b = Budget.create ~name:"d" 1.0 in
  let c = Batch.source ~budget:b [ (1, 1.0) ] in
  let rng = Wpinq_prng.Prng.create 1 in
  List.iter
    (fun eps -> ignore (Batch.noisy_count ~rng ~epsilon:eps c))
    [ 0.1; 0.2; 0.3 ];
  check_close "sum of charges" 0.6 (Budget.spent b)

let suite =
  algebra_suite
  @ [
      random_pipeline_stable;
      Alcotest.test_case "sequential composition" `Quick test_sequential_composition;
    ]
