module Isotonic = Wpinq_postprocess.Isotonic
module Gridpath = Wpinq_postprocess.Gridpath
module Pqueue = Wpinq_postprocess.Pqueue
module Prng = Wpinq_prng.Prng
open Helpers

(* O(n^3) reference for non-decreasing isotonic L2 with unit weights:
   fit(i) = max_{j<=i} min_{k>=i} mean(y[j..k]). *)
let reference_non_decreasing y =
  let n = Array.length y in
  let mean j k =
    let acc = ref 0.0 in
    for t = j to k do
      acc := !acc +. y.(t)
    done;
    !acc /. float_of_int (k - j + 1)
  in
  Array.init n (fun i ->
      let best = ref neg_infinity in
      for j = 0 to i do
        let inner = ref infinity in
        for k = i to n - 1 do
          inner := Float.min !inner (mean j k)
        done;
        best := Float.max !best !inner
      done;
      !best)

let is_monotone cmp a =
  let ok = ref true in
  for i = 0 to Array.length a - 2 do
    if not (cmp a.(i) a.(i + 1)) then ok := false
  done;
  !ok

let test_pava_matches_reference () =
  let rng = Prng.create 1 in
  for _ = 1 to 50 do
    let n = 1 + Prng.int rng 12 in
    let y = Array.init n (fun _ -> Prng.float rng 10.0 -. 5.0) in
    let got = Isotonic.non_decreasing y in
    let expect = reference_non_decreasing y in
    Array.iteri (fun i e -> check_close ~tol:1e-6 (Printf.sprintf "fit[%d]" i) e got.(i)) expect
  done

let test_pava_monotone_property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"pava output is monotone"
       QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (float_bound_exclusive 100.0))
       (fun l ->
         let y = Array.of_list l in
         is_monotone ( <= ) (Isotonic.non_decreasing y)
         && is_monotone ( >= ) (Isotonic.non_increasing y)))

let test_pava_idempotent_on_sorted () =
  let y = [| 5.0; 4.0; 4.0; 2.5; 1.0 |] in
  Alcotest.(check (array (float 1e-9))) "already non-increasing" y (Isotonic.non_increasing y)

let test_pava_mean_preserved () =
  let rng = Prng.create 2 in
  for _ = 1 to 20 do
    let y = Array.init 20 (fun _ -> Prng.float rng 10.0) in
    let fit = Isotonic.non_increasing y in
    let sum a = Array.fold_left ( +. ) 0.0 a in
    check_close ~tol:1e-6 "total preserved" (sum y) (sum fit)
  done

let test_pava_weighted () =
  (* A heavily-weighted violator drags its pool toward itself. *)
  let y = [| 0.0; 10.0 |] in
  let fit = Isotonic.non_increasing ~weights:[| 1.0; 99.0 |] y in
  Alcotest.(check bool) "pooled" true (Float.abs (fit.(0) -. fit.(1)) < 1e-9);
  check_close ~tol:1e-6 "weighted mean" 9.9 fit.(0)

(* ---- priority queue ---- *)

let test_pqueue_sorts () =
  let q = Pqueue.create () in
  let rng = Prng.create 3 in
  let items = List.init 500 (fun i -> (Prng.float rng 100.0, i)) in
  List.iter (fun (p, x) -> Pqueue.push q p x) items;
  Alcotest.(check int) "size" 500 (Pqueue.size q);
  let rec drain last acc =
    match Pqueue.pop q with
    | None -> acc
    | Some (p, _) ->
        Alcotest.(check bool) "non-decreasing pops" true (p >= last);
        drain p (acc + 1)
  in
  Alcotest.(check int) "all popped" 500 (drain neg_infinity 0);
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q)

(* ---- grid path ---- *)

let exact_inputs degrees =
  (* Noiseless v (degree sequence) and h (ccdf) for a degree multiset. *)
  let sorted = Array.copy degrees in
  Array.sort (fun a b -> compare b a) sorted;
  let dmax = if Array.length sorted = 0 then 0 else sorted.(0) in
  let v = Array.map float_of_int sorted in
  let h =
    Array.init dmax (fun i ->
        float_of_int (Array.length (Array.of_list (List.filter (fun d -> d > i) (Array.to_list sorted)))))
  in
  (sorted, v, h)

let test_gridpath_recovers_exact () =
  let degrees = [| 5; 5; 4; 3; 3; 3; 2; 1; 1; 0 |] in
  let sorted, v, h = exact_inputs degrees in
  let fit, cost = Gridpath.fit_cost ~v ~h in
  Alcotest.(check (array int)) "exact recovery" sorted fit;
  check_close ~tol:1e-9 "zero cost" 0.0 cost

let test_gridpath_output_monotone =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"gridpath output non-increasing"
       QCheck.(
         pair
           (list_of_size (QCheck.Gen.int_range 1 15) (float_bound_exclusive 8.0))
           (list_of_size (QCheck.Gen.int_range 1 8) (float_bound_exclusive 15.0)))
       (fun (vl, hl) ->
         let fit = Gridpath.fit ~v:(Array.of_list vl) ~h:(Array.of_list hl) in
         is_monotone ( >= ) fit))

let test_gridpath_denoises () =
  (* With moderate noise on both views, the joint fit lands closer to the
     truth than the raw noisy sequence. *)
  let rng = Prng.create 4 in
  let degrees = Array.init 60 (fun i -> max 0 (12 - (i / 4))) in
  let sorted, v, h = exact_inputs degrees in
  let noisy a = Array.map (fun x -> x +. Prng.laplace rng ~scale:2.0) a in
  let nv = noisy v and nh = noisy h in
  let fit = Gridpath.fit ~v:nv ~h:nh in
  let err a = Array.to_list a |> List.mapi (fun i x -> Float.abs (float_of_int sorted.(i) -. x))
              |> List.fold_left ( +. ) 0.0 in
  let fit_err = err (Array.map float_of_int fit) in
  let raw_err = err nv in
  Alcotest.(check bool)
    (Printf.sprintf "fit error %.1f < raw error %.1f" fit_err raw_err)
    true (fit_err < raw_err)

let suite =
  [
    Alcotest.test_case "pava vs reference" `Quick test_pava_matches_reference;
    test_pava_monotone_property;
    Alcotest.test_case "pava idempotent" `Quick test_pava_idempotent_on_sorted;
    Alcotest.test_case "pava preserves mean" `Quick test_pava_mean_preserved;
    Alcotest.test_case "pava weighted" `Quick test_pava_weighted;
    Alcotest.test_case "pqueue heap order" `Quick test_pqueue_sorts;
    Alcotest.test_case "gridpath exact recovery" `Quick test_gridpath_recovers_exact;
    test_gridpath_output_monotone;
    Alcotest.test_case "gridpath denoises" `Quick test_gridpath_denoises;
  ]
