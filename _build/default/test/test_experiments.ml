(* Smoke tests: every experiment and ablation runs end to end at micro
   scale without raising.  (Output goes to the captured test log; numeric
   claims are validated by the per-library suites — here we exercise the
   orchestration and printing paths.) *)

module E = Wpinq_experiments.Experiments

let micro =
  { E.default with E.scale = 0.15; E.steps = 200; E.repeats = 1; E.seed = 7 }

let smoke name f = Alcotest.test_case name `Slow (fun () -> f micro)

let suite =
  [
    smoke "table1" E.table1;
    smoke "figure3" E.figure3;
    smoke "table2" E.table2;
    smoke "figure4" E.figure4;
    smoke "figure5" E.figure5;
    smoke "table3" (fun cfg -> E.table3 { cfg with E.scale = 0.1 });
    smoke "figure6" (fun cfg -> E.figure6 { cfg with E.scale = 0.1 });
    smoke "baselines" E.baselines;
    smoke "ablation: combined" E.ablation_combined;
    smoke "ablation: incremental" E.ablation_incremental;
    smoke "ablation: join" E.ablation_join;
    smoke "ablation: seed" E.ablation_seed;
    smoke "ablation: postprocess" E.ablation_postprocess;
  ]
