(* Unit tests: the paper's worked examples (Section 2) computed exactly.
   Property tests: stability of every transformation (Definition 2). *)

module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops
open Helpers

(* The running examples of Section 2.1. *)
let ex_a () = Wdata.of_list [ (1, 0.75); (2, 2.0); (3, 1.0) ]
let ex_b () = Wdata.of_list [ (1, 3.0); (4, 2.0) ]

let test_basics () =
  let a = ex_a () in
  check_close "A(2)" 2.0 (Wdata.weight a 2);
  check_close "A(0)" 0.0 (Wdata.weight a 0);
  check_close "norm" 3.75 (Wdata.norm a);
  check_close "dist A B" (2.25 +. 2.0 +. 1.0 +. 2.0) (Wdata.dist a (ex_b ()));
  Alcotest.(check int) "support" 3 (Wdata.support_size a)

let test_of_list_accumulates () =
  let d = Wdata.of_list [ (1, 1.0); (1, 0.5); (2, -0.25); (2, 0.25) ] in
  check_close "accumulated" 1.5 (Wdata.weight d 1);
  Alcotest.(check int) "cancelled record dropped" 1 (Wdata.support_size d)

let test_update_and_add () =
  let d = Wdata.of_list [ (1, 1.0) ] in
  let d = Wdata.add d 1 (-1.0) in
  Alcotest.(check int) "cancel removes" 0 (Wdata.support_size d);
  let d2 = Wdata.update (ex_a ()) [ (1, 0.25); (9, 1.0) ] in
  check_close "update bump" 1.0 (Wdata.weight d2 1);
  check_close "update insert" 1.0 (Wdata.weight d2 9)

let test_scale_total () =
  let d = Wdata.scale (-2.0) (ex_a ()) in
  check_close "scaled" (-4.0) (Wdata.weight d 2);
  check_close "total" (-7.5) (Wdata.total d);
  check_close "norm abs" 7.5 (Wdata.norm d)

(* Section 2.4: Where with x^2 < 5, Select with x mod 2. *)
let test_where_paper () =
  let got = Ops.where (fun x -> x * x < 5) (ex_a ()) in
  check_wdata pp_int "where" (Wdata.of_list [ (1, 0.75); (2, 2.0) ]) got

let test_select_paper () =
  let got = Ops.select (fun x -> x mod 2) (ex_a ()) in
  check_wdata pp_int "select accumulates" (Wdata.of_list [ (0, 2.0); (1, 1.75) ]) got

(* Section 2.4: SelectMany with f(x) = {1..x}, unit weights. *)
let test_select_many_paper () =
  let got = Ops.select_many_list (fun x -> List.init x (fun i -> i + 1)) (ex_a ()) in
  let third = 1.0 /. 3.0 in
  check_wdata pp_int "select_many"
    (Wdata.of_list [ (1, 0.75 +. 1.0 +. third); (2, 1.0 +. third); (3, third) ])
    got

let test_select_many_norm_le_one () =
  (* A record mapping to sub-unit total weight is not scaled up. *)
  let a = Wdata.of_list [ (1, 2.0) ] in
  let got = Ops.select_many (fun _ -> [ (10, 0.25) ]) a in
  check_wdata pp_int "no upscaling" (Wdata.of_list [ (10, 0.5) ]) got

(* Section 2.5's example: grouping C by parity. *)
let test_group_by_paper () =
  let c = Wdata.of_list [ (1, 0.75); (2, 2.0); (3, 1.0); (4, 2.0); (5, 2.0) ] in
  let got = Ops.group_by ~key:(fun x -> x mod 2) ~reduce:(fun l -> List.sort compare l) c in
  let expected =
    Wdata.of_list
      [
        ((1, [ 1; 3; 5 ]), 0.375);
        ((1, [ 3; 5 ]), 0.125);
        ((1, [ 5 ]), 0.5);
        ((0, [ 2; 4 ]), 1.0);
      ]
  in
  let pp fmt (k, l) =
    Format.fprintf fmt "(%d,[%s])" k (String.concat ";" (List.map string_of_int l))
  in
  check_wdata pp "group_by parity" expected got

let test_group_by_unit_weights_halved () =
  (* Grouping unit-weight records yields just the full group at weight 1/2
     (the degree computation of Section 2.5). *)
  let edges = Wdata.of_records [ (0, 1); (0, 2); (0, 3); (5, 1) ] in
  let got = Ops.group_by ~key:fst ~reduce:List.length edges in
  check_wdata
    (fun fmt (k, n) -> Format.fprintf fmt "(%d,%d)" k n)
    "degrees"
    (Wdata.of_list [ ((0, 3), 0.5); ((5, 1), 0.5) ])
    got

let test_union_intersect_concat_except_paper () =
  let a = ex_a () and b = ex_b () in
  check_wdata pp_int "concat"
    (Wdata.of_list [ (1, 3.75); (2, 2.0); (3, 1.0); (4, 2.0) ])
    (Ops.concat a b);
  check_wdata pp_int "intersect" (Wdata.of_list [ (1, 0.75) ]) (Ops.intersect a b);
  check_wdata pp_int "union"
    (Wdata.of_list [ (1, 3.0); (2, 2.0); (3, 1.0); (4, 2.0) ])
    (Ops.union a b);
  check_wdata pp_int "except"
    (Wdata.of_list [ (1, -2.25); (2, 2.0); (3, 1.0); (4, -2.0) ])
    (Ops.except a b)

(* Section 2.7's Join example.  (The paper's printed numbers use A(1)=0.5 —
   a typo against its own Section 2.1 definition of A; we check the values
   Eq. (1) actually yields for A(1)=0.75.) *)
let test_join_paper () =
  let a = ex_a () and b = ex_b () in
  let got =
    Ops.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 2) ~reduce:(fun x y -> (x, y)) a b
  in
  (* Even: A0={2:2}, B0={4:2}: denom 4, (2,4) -> 2*2/4 = 1.
     Odd: A1={1:.75,3:1}, B1={1:3}: denom 4.75. *)
  let expected =
    Wdata.of_list
      [ ((2, 4), 1.0); ((1, 1), 0.75 *. 3.0 /. 4.75); ((3, 1), 3.0 /. 4.75) ]
  in
  let pp fmt (x, y) = Format.fprintf fmt "(%d,%d)" x y in
  check_wdata pp "join" expected got

let test_join_paths_weights () =
  (* Length-two paths a-b-c through vertex b get weight 1/(2 d_b)
     (Section 2.7, "Join and paths") on a symmetric directed edge set. *)
  let edges = [ (0, 1); (1, 0); (1, 2); (2, 1); (2, 0); (0, 2) ] in
  let e = Wdata.of_records edges in
  let paths = Ops.join ~kl:snd ~kr:fst ~reduce:(fun (a, b) (_, c) -> (a, b, c)) e e in
  (* Triangle on 3 vertices: every vertex has degree 2, every path weight 1/4. *)
  Wdata.iter
    (fun (_a, _b, _c) w -> check_close "path weight 1/(2db)" 0.25 w)
    paths;
  (* Includes the degenerate a-b-a paths; 3 vertices * 2 choices of (neighbor)² = 12 paths. *)
  Alcotest.(check int) "path count" 12 (Wdata.support_size paths)

let test_shave_paper () =
  let got = Ops.shave_const 1.0 (ex_a ()) in
  let expected =
    Wdata.of_list [ ((1, 0), 0.75); ((2, 0), 1.0); ((2, 1), 1.0); ((3, 0), 1.0) ]
  in
  let pp fmt (x, i) = Format.fprintf fmt "(%d,%d)" x i in
  check_wdata pp "shave" expected got

let test_shave_select_inverse () =
  (* Section 2.8: Select(fst) inverts Shave. *)
  let a = ex_a () in
  let got = Ops.select fst (Ops.shave_const 1.0 a) in
  check_wdata pp_int "select o shave = id" a got

let test_shave_custom_sequence () =
  let a = Wdata.of_list [ (7, 2.0) ] in
  let got = Ops.shave (fun _ -> List.to_seq [ 0.5; 1.0; 10.0 ]) a in
  let pp fmt (x, i) = Format.fprintf fmt "(%d,%d)" x i in
  check_wdata pp "clipped slabs"
    (Wdata.of_list [ ((7, 0), 0.5); ((7, 1), 1.0); ((7, 2), 0.5) ])
    got

let test_shave_emissions_stop_conditions () =
  Alcotest.(check (list (pair int (float 1e-9))))
    "stops at nonpositive slab"
    [ (0, 1.0) ]
    (Ops.shave_emissions (List.to_seq [ 1.0; 0.0; 5.0 ]) 3.0);
  Alcotest.(check (list (pair int (float 1e-9))))
    "empty for nonpositive weight" []
    (Ops.shave_emissions (List.to_seq [ 1.0 ]) (-2.0))

(* Edges-to-nodes pipeline of Section 2.8: each node ends with weight 0.5. *)
let test_edges_to_nodes () =
  let edges = Wdata.of_records [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  let nodes =
    Ops.select fst
      (Ops.where
         (fun (_, i) -> i = 0)
         (Ops.shave_const 0.5 (Ops.select_many_list (fun (a, b) -> [ a; b ]) edges)))
  in
  check_wdata pp_int "nodes at 0.5"
    (Wdata.of_list [ (0, 0.5); (1, 0.5); (2, 0.5); (3, 0.5) ])
    nodes

let test_distinct () =
  let d = Wdata.of_list [ (1, 2.5); (2, 0.4); (3, -1.0) ] in
  check_wdata pp_int "caps into [0,1]"
    (Wdata.of_list [ (1, 1.0); (2, 0.4) ])
    (Ops.distinct d);
  check_wdata pp_int "custom bound"
    (Wdata.of_list [ (1, 2.0); (2, 0.4) ])
    (Ops.distinct ~bound:2.0 d)

(* ---- Stability properties (Definition 2) ---- *)

let unary_stable name op =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name
       QCheck.(pair (wdata_arb ()) (wdata_arb ()))
       (fun (a, a') -> Wdata.dist (op a) (op a') <= Wdata.dist a a' +. 1e-9))

let binary_stable name op =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name
       QCheck.(
         pair (pair (wdata_arb ()) (wdata_arb ())) (pair (wdata_arb ()) (wdata_arb ())))
       (fun ((a, a'), (b, b')) ->
         Wdata.dist (op a b) (op a' b')
         <= Wdata.dist a a' +. Wdata.dist b b' +. 1e-9))

let stability_suite =
  [
    unary_stable "stability: select" (Ops.select (fun x -> x mod 3));
    unary_stable "stability: where" (Ops.where (fun x -> x mod 2 = 0));
    unary_stable "stability: select_many"
      (Ops.select_many (fun x -> List.init (x mod 4) (fun i -> (i, 0.5 +. float_of_int i))));
    unary_stable "stability: group_by"
      (Ops.group_by ~key:(fun x -> x mod 2) ~reduce:(fun l -> List.sort compare l));
    unary_stable "stability: shave" (Ops.shave_const 0.7);
    unary_stable "stability: distinct" (Ops.distinct ~bound:1.0);
    binary_stable "stability: union" Ops.union;
    binary_stable "stability: intersect" Ops.intersect;
    binary_stable "stability: concat" Ops.concat;
    binary_stable "stability: except" Ops.except;
    binary_stable "stability: join"
      (Ops.join ~kl:(fun x -> x mod 2) ~kr:(fun y -> y mod 2) ~reduce:(fun x y -> (x, y)));
  ]

let suite =
  [
    Alcotest.test_case "wdata basics" `Quick test_basics;
    Alcotest.test_case "of_list accumulates" `Quick test_of_list_accumulates;
    Alcotest.test_case "update/add" `Quick test_update_and_add;
    Alcotest.test_case "scale/total" `Quick test_scale_total;
    Alcotest.test_case "where (paper)" `Quick test_where_paper;
    Alcotest.test_case "select (paper)" `Quick test_select_paper;
    Alcotest.test_case "select_many (paper)" `Quick test_select_many_paper;
    Alcotest.test_case "select_many no upscale" `Quick test_select_many_norm_le_one;
    Alcotest.test_case "group_by (paper)" `Quick test_group_by_paper;
    Alcotest.test_case "group_by unit weights" `Quick test_group_by_unit_weights_halved;
    Alcotest.test_case "union/intersect/concat/except (paper)" `Quick
      test_union_intersect_concat_except_paper;
    Alcotest.test_case "join (paper)" `Quick test_join_paper;
    Alcotest.test_case "join path weights" `Quick test_join_paths_weights;
    Alcotest.test_case "shave (paper)" `Quick test_shave_paper;
    Alcotest.test_case "shave/select inverse" `Quick test_shave_select_inverse;
    Alcotest.test_case "shave custom sequence" `Quick test_shave_custom_sequence;
    Alcotest.test_case "shave stop conditions" `Quick test_shave_emissions_stop_conditions;
    Alcotest.test_case "edges to nodes (paper)" `Quick test_edges_to_nodes;
    Alcotest.test_case "distinct" `Quick test_distinct;
  ]
  @ stability_suite
