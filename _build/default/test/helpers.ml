(* Shared test helpers: Wdata testables and generators. *)

module Wdata = Wpinq_weighted.Wdata
module Ops = Wpinq_weighted.Ops
module Prng = Wpinq_prng.Prng

let check_close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let pp_int = Format.pp_print_int

let check_wdata ?(tol = 1e-9) pp msg expected actual =
  if not (Wdata.equal ~tol expected actual) then
    Alcotest.failf "%s:@ expected %a@ got %a (distance %g)" msg (Wdata.pp pp) expected
      (Wdata.pp pp) actual (Wdata.dist expected actual)

(* QCheck generator for small weighted datasets over int records. *)
let wdata_gen ?(max_record = 8) ?(signed = true) () =
  let open QCheck.Gen in
  let weight =
    if signed then float_range (-3.0) 3.0
    else float_range 0.05 3.0
  in
  let entry = pair (int_range 0 max_record) weight in
  map Wdata.of_list (list_size (int_range 0 12) entry)

let wdata_arb ?max_record ?signed () =
  QCheck.make
    ~print:(fun d ->
      Format.asprintf "%a" (Wdata.pp pp_int) d)
    (wdata_gen ?max_record ?signed ())

(* A generator of record-level deltas for incremental/batch comparisons. *)
let delta_gen ?(max_record = 8) () =
  let open QCheck.Gen in
  let entry = pair (int_range 0 max_record) (float_range (-2.0) 2.0) in
  list_size (int_range 1 6) entry

let deltas_arb ?(batches = 8) ?max_record () =
  QCheck.make
    ~print:(fun ds ->
      String.concat "; "
        (List.map
           (fun d ->
             "["
             ^ String.concat ","
                 (List.map (fun (x, w) -> Printf.sprintf "(%d,%.3f)" x w) d)
             ^ "]")
           ds))
    QCheck.Gen.(list_size (int_range 1 batches) (delta_gen ?max_record ()))

